#!/usr/bin/env bash
# Builds the benchmarks in Release and runs every bench binary found in the
# build directory, emitting one bench-results/BENCH_<name>.json per figure so
# the perf trajectory accumulates across PRs.
#
# Bench binaries are discovered from the build directory (any executable
# whose name matches a bench/*.cpp translation unit), so adding a new
# bench/*.cpp is picked up automatically — no hardcoded list to maintain.
#
# Env:
#   BLOBCR_BENCH_FAST  1 (default) = reduced sweeps (CI smoke);
#                      0 = full paper-scale sweeps
#   BUILD_DIR          build directory (default: build-bench)
#   OUT_DIR            results directory (default: bench-results)
#   BENCH_FILTER       optional egrep pattern to run a subset by name
set -euo pipefail
cd "$(dirname "$0")/.."

export BLOBCR_BENCH_FAST="${BLOBCR_BENCH_FAST:-1}"
BUILD_DIR="${BUILD_DIR:-build-bench}"
OUT_DIR="${OUT_DIR:-bench-results}"
BENCH_FILTER="${BENCH_FILTER:-}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)"

mkdir -p "$OUT_DIR"
status=0
found=0
for bin in "$BUILD_DIR"/*; do
  [ -f "$bin" ] && [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  # A bench binary is one built from a bench/ translation unit.
  [ -f "bench/$name.cpp" ] || continue
  if [ -n "$BENCH_FILTER" ] && ! echo "$name" | grep -Eq "$BENCH_FILTER"; then
    continue
  fi
  found=$((found + 1))
  echo "=== $name (BLOBCR_BENCH_FAST=$BLOBCR_BENCH_FAST) ==="
  if ! "$bin" --benchmark_out="$OUT_DIR/BENCH_${name}.json" \
              --benchmark_out_format=json; then
    echo "FAIL $name" >&2
    status=1
  fi
done
if [ "$found" -eq 0 ]; then
  echo "No bench binaries found in $BUILD_DIR (benchmark library missing?)" >&2
  status=1
fi
exit $status
