#!/usr/bin/env bash
# Builds the benchmarks in Release and runs one binary per bench/*.cpp
# translation unit, emitting one bench-results/BENCH_<name>.json per figure
# so the perf trajectory accumulates across PRs.
#
# The expected set is enumerated from bench/*.cpp (adding a new bench is
# picked up automatically — no hardcoded list), and a source whose binary is
# missing from the build directory fails the run: a silent skip would
# quietly drop that figure from the regression gate's coverage.
#
# Env:
#   BLOBCR_BENCH_FAST  1 (default) = reduced sweeps (CI smoke);
#                      0 = full paper-scale sweeps
#   BUILD_DIR          build directory (default: build-bench)
#   OUT_DIR            results directory (default: bench-results)
#   BENCH_FILTER       optional egrep pattern to run a subset by name
set -euo pipefail
cd "$(dirname "$0")/.."

export BLOBCR_BENCH_FAST="${BLOBCR_BENCH_FAST:-1}"
BUILD_DIR="${BUILD_DIR:-build-bench}"
OUT_DIR="${OUT_DIR:-bench-results}"
BENCH_FILTER="${BENCH_FILTER:-}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)"

mkdir -p "$OUT_DIR"
status=0
found=0
# Every bench/*.cpp translation unit is an expected binary: a missing one
# (benchmark library absent, target dropped from the build) is an error,
# not a silent skip — otherwise the regression gate quietly loses coverage.
for src in bench/*.cpp; do
  name="$(basename "$src" .cpp)"
  if [ -n "$BENCH_FILTER" ] && ! echo "$name" | grep -Eq "$BENCH_FILTER"; then
    continue
  fi
  bin="$BUILD_DIR/$name"
  if [ ! -f "$bin" ] || [ ! -x "$bin" ]; then
    echo "MISSING bench binary: $bin (expected from $src)" >&2
    status=1
    continue
  fi
  found=$((found + 1))
  echo "=== $name (BLOBCR_BENCH_FAST=$BLOBCR_BENCH_FAST) ==="
  if ! "$bin" --benchmark_out="$OUT_DIR/BENCH_${name}.json" \
              --benchmark_out_format=json; then
    echo "FAIL $name" >&2
    status=1
  fi
done
if [ "$found" -eq 0 ] && [ "$status" -eq 0 ]; then
  echo "No bench binaries matched in $BUILD_DIR (benchmark library missing?)" >&2
  status=1
fi
exit $status
