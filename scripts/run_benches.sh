#!/usr/bin/env bash
# Builds the benchmarks in Release and runs one binary per bench/*.cpp
# translation unit, emitting one bench-results/BENCH_<name>.json per figure
# so the perf trajectory accumulates across PRs.
#
# The expected set is enumerated from bench/*.cpp (adding a new bench is
# picked up automatically — no hardcoded list). Before ANY bench runs, the
# full expected set is pre-scanned and the run fails fast with the complete
# list of missing binaries: a silent skip would quietly drop figures from
# the regression gate's coverage, and failing on the first one would hide
# the rest of the list behind repeated runs.
#
# Env:
#   BLOBCR_BENCH_FAST  1 (default) = reduced sweeps (CI smoke);
#                      0 = full paper-scale sweeps
#   BUILD_DIR          build directory (default: build-bench)
#   OUT_DIR            results directory (default: bench-results)
#   BENCH_FILTER       optional egrep pattern to run a subset by name
set -euo pipefail
cd "$(dirname "$0")/.."

export BLOBCR_BENCH_FAST="${BLOBCR_BENCH_FAST:-1}"
BUILD_DIR="${BUILD_DIR:-build-bench}"
OUT_DIR="${OUT_DIR:-bench-results}"
BENCH_FILTER="${BENCH_FILTER:-}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)"

mkdir -p "$OUT_DIR"

# Pre-scan: every bench/*.cpp translation unit is an expected binary. A
# missing one (benchmark library absent, target dropped from the build) is
# an error — collect the COMPLETE list and fail before running anything, so
# one CI round surfaces every gap at once.
names=()
missing=()
for src in bench/*.cpp; do
  name="$(basename "$src" .cpp)"
  if [ -n "$BENCH_FILTER" ] && ! echo "$name" | grep -Eq "$BENCH_FILTER"; then
    continue
  fi
  if [ ! -f "$BUILD_DIR/$name" ] || [ ! -x "$BUILD_DIR/$name" ]; then
    missing+=("$BUILD_DIR/$name (expected from $src)")
  else
    names+=("$name")
  fi
done
if [ "${#missing[@]}" -gt 0 ]; then
  echo "${#missing[@]} MISSING bench binaries — refusing to run any:" >&2
  for m in "${missing[@]}"; do
    echo "  MISSING $m" >&2
  done
  exit 1
fi

status=0
found=0
for name in "${names[@]}"; do
  bin="$BUILD_DIR/$name"
  found=$((found + 1))
  echo "=== $name (BLOBCR_BENCH_FAST=$BLOBCR_BENCH_FAST) ==="
  if ! "$bin" --benchmark_out="$OUT_DIR/BENCH_${name}.json" \
              --benchmark_out_format=json; then
    echo "FAIL $name" >&2
    status=1
  fi
done
if [ "$found" -eq 0 ] && [ "$status" -eq 0 ]; then
  echo "No bench binaries matched in $BUILD_DIR (benchmark library missing?)" >&2
  status=1
fi
exit $status
