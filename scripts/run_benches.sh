#!/usr/bin/env bash
# Builds the benchmarks in Release and runs each bench/ binary, emitting one
# bench-results/BENCH_<name>.json per figure so the perf trajectory
# accumulates across PRs.
#
# Env:
#   BLOBCR_BENCH_FAST  1 (default) = reduced sweeps (CI smoke);
#                      0 = full paper-scale sweeps
#   BUILD_DIR          build directory (default: build-bench)
#   OUT_DIR            results directory (default: bench-results)
set -euo pipefail
cd "$(dirname "$0")/.."

export BLOBCR_BENCH_FAST="${BLOBCR_BENCH_FAST:-1}"
BUILD_DIR="${BUILD_DIR:-build-bench}"
OUT_DIR="${OUT_DIR:-bench-results}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)"

mkdir -p "$OUT_DIR"
status=0
for src in bench/*.cpp; do
  name="$(basename "$src" .cpp)"
  [ "$name" = "bench_common" ] && continue
  bin="$BUILD_DIR/$name"
  if [ ! -x "$bin" ]; then
    echo "SKIP $name (no binary — benchmark library missing?)" >&2
    continue
  fi
  echo "=== $name (BLOBCR_BENCH_FAST=$BLOBCR_BENCH_FAST) ==="
  if ! "$bin" --benchmark_out="$OUT_DIR/BENCH_${name}.json" \
              --benchmark_out_format=json; then
    echo "FAIL $name" >&2
    status=1
  fi
done
exit $status
