#!/usr/bin/env python3
"""Compare fresh fast-mode bench JSON against the bench-results/ baselines.

The CI release leg runs the restart-path AND commit-path benches under
BLOBCR_BENCH_FAST=1 and calls this script; the build fails when restart
makespan, repository-bytes-fetched, shipped snapshot bytes, commit
blocked-time or the multi-tenant headline metrics regress beyond the
tolerance band, or when a bit-exactness / invariant check (the `verified`
counter) flips to 0.

Both sides are *simulated* results, so run-to-run noise is zero for an
unchanged binary; the tolerance band only absorbs intentional modeling
churn between PRs. Regressions are one-sided: getting faster / fetching
fewer repository bytes never fails the gate (but refresh the baselines so
the improvement is locked in). Throughput-style counters gate the other
way (HIGHER_IS_BETTER): dropping below (1 - tolerance) x baseline fails,
gaining never does.

A counter present in a baseline row but absent from the fresh row is an
ERROR, not a skip: the bench silently stopped emitting a gated metric,
which would otherwise drop it from coverage forever. Remove it from the
committed baseline deliberately when retiring a counter.

When $GITHUB_STEP_SUMMARY is set (or --summary FILE is given) a per-counter
markdown delta table — current vs baseline, allowed band, verdict — is
appended there for the Actions run page.

Usage:
  check_bench.py --fresh DIR [--baseline bench-results] [--tolerance 0.25]
                 [--file BENCH_foo.json ...] [--summary FILE]

Exit status: 0 = no regressions, 1 = regression or missing inputs.
"""
from __future__ import annotations

import argparse
import json
import os
import sys

# Gated metrics: benchmark-local counter name -> (pretty label, absolute
# slack below which differences are ignored).
GATED_COUNTERS = {
    # Restart path.
    "restart_s": ("restart makespan [s]", 0.05),
    "repo_mb_per_inst": ("repo bytes fetched [MB/inst]", 0.5),
    # Commit path.
    "blocked_s": ("commit blocked time [s]", 0.02),
    "snap_MB_per_vm": ("snapshot shipped [MB/VM]", 0.5),
    "repo_MB": ("repository growth [MB]", 2.0),
    # Multi-tenant repository.
    "repo_mb_per_job": ("repository bytes shipped [MB/job]", 0.5),
    "blocked_p95_s": ("p95 commit blocked time [s]", 0.02),
    # Redundancy tier: repository scavenge duration after a full outage.
    # (repo_mb_per_inst above also gates the parity restart path, and the
    # `verified` flip check covers the strictly-fewer-repo-bytes inequality
    # and the bit-exact post-scavenge restart.)
    "rebuild_s": ("repository scavenge rebuild [s]", 0.05),
    # Elastic (N -> M) restart: cold shrink rescale makespan.
    # (repo_mb_per_inst above also gates the rescale's repository pull, and
    # `verified` covers the union digest check + M-tuple catalog invariant.)
    "rescale_restart_s": ("elastic rescale restart makespan [s]", 0.05),
    # Sharded metadata plane: per-tenant commit completion under tenant
    # scale. (`verified` covers the sharded-vs-single p95 and throughput
    # inequalities plus bit-exact sampled restores.)
    "commit_p95_s": ("p95 commit completion [s]", 0.02),
    # Federation: zone-loss restart makespan (restart + warm working set
    # from surviving zones) and total cross-zone WAN traffic. (`verified`
    # covers the hot-beats-floor inequality and bit-exact restores.)
    "zone_loss_restart_s": ("zone-loss restart makespan [s]", 0.05),
    "cross_zone_mb": ("federation cross-zone traffic [MB]", 0.5),
    # End-to-end QoS: the small tenant's tail latency on the commit and
    # restart paths under a bulk mass-rollback storm. (`verified` covers the
    # fair-beats-FIFO inequality on both axes at equal gate capacity.)
    "small_job_p99_commit_s": ("small-job p99 commit blocked [s]", 0.02),
    "small_job_p99_restart_s": ("small-job p99 restart [s]", 0.05),
}
# Throughput-style metrics gate one-sided the OTHER way: the fresh value
# must not drop below (1 - tolerance) x baseline - slack. Getting faster
# never fails.
HIGHER_IS_BETTER = {
    # Sharded metadata plane: digest-index lookups served per second of
    # repository makespan.
    "index_lookups_per_s": ("index lookup throughput [1/s]", 100.0),
    # Federation: hot-chunk replication's zone-loss restart speedup over
    # floor-only replication at the same zone count.
    "zone_loss_speedup": ("zone-loss hot-replication speedup [x]", 0.05),
}
# Default file set: the restart- and commit-path benches the gate protects.
DEFAULT_FILES = [
    "BENCH_fig3_restart_scaling.json",
    "BENCH_ablation_prefetch.json",
    "BENCH_fig2_checkpoint_scaling.json",
    "BENCH_fig5_successive_checkpoints.json",
    "BENCH_ablation_async_flush.json",
    "BENCH_ablation_multitenant.json",
    "BENCH_ablation_redundancy.json",
    "BENCH_ablation_elastic.json",
    "BENCH_ablation_shard_sweep.json",
    "BENCH_ablation_federation.json",
    "BENCH_ablation_qos_e2e.json",
]


def load_benchmarks(path):
    """name -> {metric: value} for one google-benchmark JSON file."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        metrics = {}
        keys = list(GATED_COUNTERS) + list(HIGHER_IS_BETTER)
        for key in keys + ["verified", "real_time"]:
            if key in b:
                metrics[key] = float(b[key])
        out[b["name"]] = metrics
    return out


def format_summary(rows):
    """Markdown delta table for $GITHUB_STEP_SUMMARY."""
    lines = [
        "### Bench regression gate",
        "",
        "| file | benchmark | counter | baseline | current | delta | "
        "allowed | verdict |",
        "|---|---|---|---:|---:|---:|---:|---|",
    ]
    for fname, name, label, b, f, limit, ok in rows:
        missing = f != f  # NaN: counter vanished from the fresh run
        cur = "—" if missing else f"{f:.4g}"
        delta = ("—" if missing or b == 0
                 else f"{(f - b) / b * 100.0:+.1f}%")
        verdict = "ok" if ok else "**FAIL**"
        lines.append(
            f"| {fname} | {name} | {label} | {b:.4g} | {cur} | {delta} | "
            f"{limit} | {verdict} |")
    lines.append("")
    return "\n".join(lines)


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fresh", required=True,
                    help="directory with freshly emitted BENCH_*.json")
    ap.add_argument("--baseline", default="bench-results",
                    help="directory with committed baseline BENCH_*.json")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="relative regression band (0.25 = +25%%)")
    ap.add_argument("--file", action="append", default=None,
                    help="gate only these files (repeatable); default: "
                         + ", ".join(DEFAULT_FILES))
    ap.add_argument("--summary", default=None,
                    help="append a markdown delta table to this file "
                         "(defaults to $GITHUB_STEP_SUMMARY when set)")
    args = ap.parse_args(argv)

    files = args.file if args.file else DEFAULT_FILES
    regressions = []
    notes = []
    rows = []  # (file, bench, counter label, base, fresh, band, ok)
    compared = 0
    baseline_points = 0

    for fname in files:
        fresh_path = os.path.join(args.fresh, fname)
        base_path = os.path.join(args.baseline, fname)
        if not os.path.exists(fresh_path):
            regressions.append(f"{fname}: fresh results missing "
                               f"(bench crashed or was not run)")
            continue
        if not os.path.exists(base_path):
            notes.append(f"{fname}: no committed baseline — skipped "
                         f"(commit one via scripts/run_benches.sh)")
            continue
        fresh = load_benchmarks(fresh_path)
        base = load_benchmarks(base_path)
        baseline_points += len(base)

        for name, bmetrics in sorted(base.items()):
            fmetrics = fresh.get(name)
            if fmetrics is None:
                notes.append(f"{name}: present in baseline, absent in fresh "
                             f"run (renamed sweep point?)")
                continue
            compared += 1
            # Bit-exactness must never flip off.
            if bmetrics.get("verified", 1.0) >= 1.0 > fmetrics.get(
                    "verified", 1.0):
                regressions.append(
                    f"{name}: restored-image verification FAILED "
                    f"(verified {fmetrics.get('verified')})")
            if "verified" in bmetrics and "verified" in fmetrics:
                rows.append((fname, name, "verified", bmetrics["verified"],
                             fmetrics["verified"], ">= baseline",
                             not (bmetrics["verified"] >= 1.0 >
                                  fmetrics["verified"])))
            both = {**GATED_COUNTERS, **HIGHER_IS_BETTER}
            for key, (label, slack) in both.items():
                if key not in bmetrics:
                    continue
                if key not in fmetrics:
                    # The bench stopped emitting a gated counter: failing
                    # loudly beats silently shrinking the gate's coverage.
                    regressions.append(
                        f"{name}: counter '{key}' present in baseline but "
                        f"missing from the fresh run — retire it from the "
                        f"committed baseline if that is intentional")
                    rows.append((fname, name, label, bmetrics[key],
                                 float("nan"), "missing", False))
                    continue
                b, f = bmetrics[key], fmetrics[key]
                if key in HIGHER_IS_BETTER:
                    limit = b * (1.0 - args.tolerance) - slack
                    ok = f >= limit
                    if not ok:
                        regressions.append(
                            f"{name}: {label} dropped "
                            f"{b:.3f} -> {f:.3f} (floor {limit:.3f})")
                    rows.append((fname, name, label, b, f,
                                 f">= {limit:.4g}", ok))
                else:
                    limit = b * (1.0 + args.tolerance) + slack
                    ok = f <= limit
                    if not ok:
                        regressions.append(
                            f"{name}: {label} regressed "
                            f"{b:.3f} -> {f:.3f} (limit {limit:.3f})")
                    rows.append((fname, name, label, b, f,
                                 f"<= {limit:.4g}", ok))
        for name in sorted(set(fresh) - set(base)):
            notes.append(f"{name}: new benchmark, no baseline yet")

    summary_path = args.summary or os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path and rows:
        with open(summary_path, "a") as sf:
            sf.write(format_summary(rows) + "\n")

    for n in notes:
        print(f"note: {n}")
    print(f"check_bench: compared {compared} benchmark points "
          f"(tolerance +{args.tolerance * 100:.0f}%)")
    if baseline_points > 0 and compared == 0:
        # Baselines exist but nothing matched by name (renamed sweep
        # points?): a vacuous pass would let any regression through.
        regressions.append(
            "no benchmark points matched between fresh and baseline — "
            "regenerate bench-results/ via scripts/run_benches.sh")
    if regressions:
        print(f"\n{len(regressions)} REGRESSION(S):", file=sys.stderr)
        for r in regressions:
            print(f"  FAIL {r}", file=sys.stderr)
        return 1
    print("check_bench: OK — no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
