"""pytest coverage for scripts/check_bench.py (the CI bench regression gate).

Covers the gate's contract: the tolerance band (within / beyond), one-sided
regressions (improvements never fail), higher-is-better counters (drops
fail, gains never do), the `verified` never-flips-to-0 rule, gated counters
vanishing from the fresh run (hard fail), missing fresh files (hard fail)
vs missing baselines (note + pass), the vacuous-pass guard when nothing
matches, and the markdown delta-table summary.

Run:  python3 -m pytest scripts/test_check_bench.py -q
"""
from __future__ import annotations

import importlib.util
import json
import os

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_bench",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "check_bench.py"))
check_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_bench)

FILE = "BENCH_fig3_restart_scaling.json"


@pytest.fixture(autouse=True)
def _no_github_summary(monkeypatch):
    # Keep unit runs from appending delta tables to a real Actions summary.
    monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)


def bench_json(points):
    """points: {name: {counter: value}} -> google-benchmark JSON payload."""
    return {
        "benchmarks": [
            {"name": name, "run_type": "iteration", "real_time": 1.0,
             **counters}
            for name, counters in points.items()
        ]
    }


def write(dirpath, fname, points):
    dirpath.mkdir(parents=True, exist_ok=True)
    (dirpath / fname).write_text(json.dumps(bench_json(points)))


def run_gate(tmp_path, fresh, base, tolerance=0.25, files=(FILE,)):
    write(tmp_path / "fresh", FILE, fresh)
    if base is not None:
        write(tmp_path / "base", FILE, base)
    else:
        (tmp_path / "base").mkdir(parents=True, exist_ok=True)
    argv = ["--fresh", str(tmp_path / "fresh"),
            "--baseline", str(tmp_path / "base"),
            "--tolerance", str(tolerance)]
    for f in files:
        argv += ["--file", f]
    return check_bench.main(argv)


def test_within_tolerance_band_passes(tmp_path):
    base = {"Fig3/p": {"restart_s": 10.0, "verified": 1}}
    fresh = {"Fig3/p": {"restart_s": 12.0, "verified": 1}}  # +20% < +25%
    assert run_gate(tmp_path, fresh, base) == 0


def test_regression_beyond_band_fails(tmp_path):
    base = {"Fig3/p": {"restart_s": 10.0, "verified": 1}}
    fresh = {"Fig3/p": {"restart_s": 13.0, "verified": 1}}  # +30% > +25%
    assert run_gate(tmp_path, fresh, base) == 1


def test_regressions_are_one_sided(tmp_path):
    # Getting faster / shipping fewer bytes never fails, however large the
    # improvement.
    base = {"Fig3/p": {"restart_s": 10.0, "repo_mb_per_inst": 100.0}}
    fresh = {"Fig3/p": {"restart_s": 0.1, "repo_mb_per_inst": 1.0}}
    assert run_gate(tmp_path, fresh, base) == 0


def test_absolute_slack_absorbs_tiny_diffs(tmp_path):
    # 0.01 -> 0.04 is +300% but under the 0.05 absolute slack for restart_s.
    base = {"Fig3/p": {"restart_s": 0.01}}
    fresh = {"Fig3/p": {"restart_s": 0.04}}
    assert run_gate(tmp_path, fresh, base) == 0


def test_verified_flip_to_zero_fails(tmp_path):
    base = {"Fig3/p": {"restart_s": 10.0, "verified": 1}}
    fresh = {"Fig3/p": {"restart_s": 10.0, "verified": 0}}
    assert run_gate(tmp_path, fresh, base) == 1


def test_commit_path_counters_are_gated(tmp_path):
    base = {"Fig5/p": {"blocked_s": 1.0, "repo_MB": 50.0}}
    fresh_ok = {"Fig5/p": {"blocked_s": 1.1, "repo_MB": 55.0}}
    fresh_bad = {"Fig5/p": {"blocked_s": 2.0, "repo_MB": 50.0}}
    assert run_gate(tmp_path, fresh_ok, base) == 0
    assert run_gate(tmp_path, fresh_bad, base) == 1


def test_elastic_rescale_makespan_is_gated(tmp_path):
    base = {"AblationElastic/rescale-restart":
            {"rescale_restart_s": 10.0, "verified": 1}}
    fresh_ok = {"AblationElastic/rescale-restart":
                {"rescale_restart_s": 12.0, "verified": 1}}  # +20% < +25%
    fresh_bad = {"AblationElastic/rescale-restart":
                 {"rescale_restart_s": 13.0, "verified": 1}}  # +30% > +25%
    assert run_gate(tmp_path, fresh_ok, base) == 0
    assert run_gate(tmp_path, fresh_bad, base) == 1


def test_missing_fresh_file_fails(tmp_path):
    # A bench that crashed (no fresh JSON) must fail the gate, not skip.
    write(tmp_path / "base", FILE, {"Fig3/p": {"restart_s": 1.0}})
    (tmp_path / "fresh").mkdir(parents=True, exist_ok=True)
    assert check_bench.main(["--fresh", str(tmp_path / "fresh"),
                             "--baseline", str(tmp_path / "base"),
                             "--file", FILE]) == 1


def test_missing_baseline_is_note_not_failure(tmp_path):
    # New bench with no committed baseline yet: note + pass.
    fresh = {"Fig3/p": {"restart_s": 1.0}}
    assert run_gate(tmp_path, fresh, None) == 0


def test_missing_counter_in_fresh_fails(tmp_path):
    # A gated counter present only in the baseline means the bench silently
    # stopped emitting it — the gate must fail loudly, not shrink its own
    # coverage. (Retiring a counter means removing it from the committed
    # baseline in the same PR.)
    base = {"Fig3/p": {"restart_s": 1.0, "repo_mb_per_inst": 5.0}}
    fresh = {"Fig3/p": {"restart_s": 1.0}}
    assert run_gate(tmp_path, fresh, base) == 1


def test_counter_retired_from_baseline_passes(tmp_path):
    # The deliberate retirement path: the counter is gone from BOTH sides.
    base = {"Fig3/p": {"restart_s": 1.0}}
    fresh = {"Fig3/p": {"restart_s": 1.0, "new_counter": 3.0}}
    assert run_gate(tmp_path, fresh, base) == 0


def test_higher_is_better_within_band_passes(tmp_path):
    # -20% throughput is inside the 25% band.
    base = {"Sweep/t1000/s16": {"index_lookups_per_s": 100000.0}}
    fresh = {"Sweep/t1000/s16": {"index_lookups_per_s": 80000.0}}
    assert run_gate(tmp_path, fresh, base) == 0


def test_higher_is_better_drop_beyond_band_fails(tmp_path):
    # -30% throughput breaches the floor.
    base = {"Sweep/t1000/s16": {"index_lookups_per_s": 100000.0}}
    fresh = {"Sweep/t1000/s16": {"index_lookups_per_s": 70000.0}}
    assert run_gate(tmp_path, fresh, base) == 1


def test_higher_is_better_improvement_never_fails(tmp_path):
    base = {"Sweep/t1000/s16": {"index_lookups_per_s": 100000.0}}
    fresh = {"Sweep/t1000/s16": {"index_lookups_per_s": 10000000.0}}
    assert run_gate(tmp_path, fresh, base) == 0


def test_higher_is_better_slack_absorbs_tiny_baselines(tmp_path):
    # 200 -> 60 lookups/s is -70%, but the floor 200*0.75 - 100 = 50 absorbs
    # it: tiny absolute rates should not gate on percentages.
    base = {"Sweep/t10/s1": {"index_lookups_per_s": 200.0}}
    fresh = {"Sweep/t10/s1": {"index_lookups_per_s": 60.0}}
    assert run_gate(tmp_path, fresh, base) == 0


def test_commit_p95_is_gated_lower_better(tmp_path):
    base = {"Sweep/t1000/s16": {"commit_p95_s": 1.0, "verified": 1}}
    fresh_ok = {"Sweep/t1000/s16": {"commit_p95_s": 1.2, "verified": 1}}
    fresh_bad = {"Sweep/t1000/s16": {"commit_p95_s": 1.3, "verified": 1}}
    assert run_gate(tmp_path, fresh_ok, base) == 0
    assert run_gate(tmp_path, fresh_bad, base) == 1


def test_summary_table_is_written(tmp_path):
    base = {"Fig3/p": {"restart_s": 10.0, "verified": 1},
            "Sweep/t1000/s16": {"index_lookups_per_s": 100000.0}}
    fresh = {"Fig3/p": {"restart_s": 13.0, "verified": 1},  # +30%: FAIL
             "Sweep/t1000/s16": {"index_lookups_per_s": 110000.0}}
    write(tmp_path / "fresh", FILE, fresh)
    write(tmp_path / "base", FILE, base)
    summary = tmp_path / "summary.md"
    rc = check_bench.main(["--fresh", str(tmp_path / "fresh"),
                           "--baseline", str(tmp_path / "base"),
                           "--file", FILE,
                           "--summary", str(summary)])
    assert rc == 1
    text = summary.read_text()
    assert "| file | benchmark | counter |" in text
    assert "**FAIL**" in text            # the restart_s regression row
    assert "+10.0%" in text              # the throughput improvement row
    assert "restart makespan [s]" in text


def test_summary_honors_github_step_summary_env(tmp_path, monkeypatch):
    base = {"Fig3/p": {"restart_s": 1.0}}
    fresh = {"Fig3/p": {"restart_s": 1.0}}
    summary = tmp_path / "gh_summary.md"
    monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
    assert run_gate(tmp_path, fresh, base) == 0
    assert "Bench regression gate" in summary.read_text()


def test_no_matching_points_is_vacuous_fail(tmp_path):
    # Baselines exist but every point was renamed: a vacuous pass would let
    # any regression through, so the gate fails.
    base = {"Fig3/old-name": {"restart_s": 1.0}}
    fresh = {"Fig3/new-name": {"restart_s": 1.0}}
    assert run_gate(tmp_path, fresh, base) == 1


def test_aggregate_rows_are_ignored(tmp_path):
    payload = {
        "benchmarks": [
            {"name": "Fig3/p", "run_type": "iteration", "real_time": 1.0,
             "restart_s": 1.0},
            {"name": "Fig3/p_mean", "run_type": "aggregate", "real_time": 1.0,
             "restart_s": 99.0},
        ]
    }
    (tmp_path / "base").mkdir(parents=True)
    (tmp_path / "fresh").mkdir(parents=True)
    (tmp_path / "base" / FILE).write_text(json.dumps(payload))
    (tmp_path / "fresh" / FILE).write_text(json.dumps(payload))
    loaded = check_bench.load_benchmarks(str(tmp_path / "fresh" / FILE))
    assert "Fig3/p_mean" not in loaded
    assert check_bench.main(["--fresh", str(tmp_path / "fresh"),
                             "--baseline", str(tmp_path / "base"),
                             "--file", FILE]) == 0


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
