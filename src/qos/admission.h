// qos::AdmissionPlane — the repository's single QoS choke point.
//
// Every path that touches the shared repository is admitted here, tagged
// with a tenant-carrying IoContext and classified into one of three gates:
//
//            +---------------------- AdmissionPlane ---------------------+
//            |  TenantRegistry (identities + weights)                    |
//            |                                                           |
//   commits  |  [Commit gate]          one slot per in-flight commit /   |
//   drains --+-> FairGate              async drain, reduction→publish    |
//            |                                                           |
//   stores   |  [ProviderIo gate]      one slot per chunk store/fetch    |
//   fetches -+-> FairGate              at the data-provider pool — QoS   |
//   repairs  |                         holds when disk is the bottleneck |
//            |                                                           |
//   restart  |  [RestartPrefetch gate] one slot per prefetch worker —    |
//   prefetch-+-> FairGate              a mass rollback queues through    |
//            |                         the same plane as live commits    |
//            +-----------------------------------------------------------+
//
// The gates share one TenantRegistry, so a tenant's weight means the same
// thing on the commit path, the disk path and the restart path. Permits are
// RAII (net::FairGate::Permit) and kill-safe: a coroutine killed while
// queued unlinks, one killed while holding releases as its frame unwinds.
//
// All knobs live in one validated qos::Config (per-gate slot counts plus
// the restart-prefetch byte budget); the scattered predecessors
// (net::QosConfig, CloudConfig::restart_prefetch_budget) survive one
// release as deprecated forwarding aliases.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "common/units.h"
#include "net/qos.h"
#include "sim/sim.h"

namespace blobcr::qos {

/// The admission classes the plane arbitrates. Every repository request
/// belongs to exactly one.
enum class GateClass {
  Commit,           // synchronous commits and async flush drains
  ProviderIo,       // chunk store/fetch at the data-provider pool
  RestartPrefetch,  // restart-scheduler prefetch workers
};

inline const char* gate_class_name(GateClass g) {
  switch (g) {
    case GateClass::Commit: return "commit";
    case GateClass::ProviderIo: return "provider-io";
    case GateClass::RestartPrefetch: return "restart-prefetch";
  }
  return "?";
}

/// Tenant tag threaded through every repository-touching path. Constructed
/// at the request's origin (BlobClient commit, MirrorDevice restart,
/// repair scrub, federation replicator) and carried down to the gates.
struct IoContext {
  net::TenantId tenant = net::kDefaultTenant;
  GateClass gate = GateClass::ProviderIo;
};

/// All QoS knobs for one repository, validated as a unit.
struct Config {
  /// Weighted-fair ordering at every gate and shared service queue.
  /// Off = FIFO everywhere at identical capacity (the ablation baseline).
  bool enabled = false;
  /// Concurrently admitted commits/drains (each holds one slot from
  /// reduction through publish). 0 = gate disabled (unbounded).
  std::size_t commit_slots = 0;
  /// Concurrent chunk stores/fetches admitted at the data-provider pool.
  /// 0 = gate disabled. Sized like a disk queue depth, not a commit count.
  std::size_t provider_slots = 0;
  /// Concurrent restart-prefetch workers admitted repository-wide.
  /// 0 = gate disabled (each device still bounds its own local streams).
  std::size_t prefetch_slots = 0;
  /// Repository bytes the restart scheduler may prefetch per instance.
  /// (Moved here from CloudConfig::restart_prefetch_budget.)
  std::uint64_t restart_prefetch_budget = 64 * common::kMB;

  std::size_t slots(GateClass g) const {
    switch (g) {
      case GateClass::Commit: return commit_slots;
      case GateClass::ProviderIo: return provider_slots;
      case GateClass::RestartPrefetch: return prefetch_slots;
    }
    return 0;
  }

  /// Rejects incoherent setups: QoS "enabled" with every gate unbounded
  /// arbitrates nothing — the fair ordering would silently never engage.
  void validate() const {
    if (enabled && commit_slots == 0 && provider_slots == 0 &&
        prefetch_slots == 0) {
      throw std::invalid_argument(
          "qos::Config: enabled with zero slots on every gate — fairness "
          "cannot engage; set commit_slots/provider_slots/prefetch_slots "
          "or disable qos");
    }
  }
};

/// Repository-scoped admission plane: owns the tenant table and one
/// weighted-fair gate per admission class. Lives in BlobStore, declared
/// before the providers/managers whose requests it arbitrates.
class AdmissionPlane {
 public:
  AdmissionPlane(sim::Simulation& sim, const Config& cfg)
      : cfg_(cfg),
        commit_(sim, cfg.commit_slots, &tenants_, cfg.enabled),
        provider_(sim, cfg.provider_slots, &tenants_, cfg.enabled),
        prefetch_(sim, cfg.prefetch_slots, &tenants_, cfg.enabled) {
    cfg.validate();
  }
  AdmissionPlane(const AdmissionPlane&) = delete;
  AdmissionPlane& operator=(const AdmissionPlane&) = delete;

  const Config& config() const { return cfg_; }
  bool fair() const { return cfg_.enabled; }

  net::TenantRegistry& tenants() { return tenants_; }
  const net::TenantRegistry& tenants() const { return tenants_; }

  net::FairGate& gate(GateClass g) {
    switch (g) {
      case GateClass::Commit: return commit_;
      case GateClass::ProviderIo: return provider_;
      case GateClass::RestartPrefetch: return prefetch_;
    }
    return provider_;
  }
  const net::FairGate& gate(GateClass g) const {
    return const_cast<AdmissionPlane*>(this)->gate(g);
  }

  /// Admits `ctx` at its class's gate; `cost` is the request's service
  /// demand (bytes). The returned permit is the RAII slot.
  sim::Task<net::FairGate::Permit> admit(IoContext ctx, double cost) {
    return gate(ctx.gate).enter(ctx.tenant, cost);
  }

  /// Cumulative queueing time of `tenant` at `g`'s gate.
  sim::Duration wait(GateClass g, net::TenantId tenant) const {
    return gate(g).wait_time(tenant);
  }

 private:
  Config cfg_;
  /// Declared before the gates: they hold a registry pointer.
  net::TenantRegistry tenants_;
  net::FairGate commit_;
  net::FairGate provider_;
  net::FairGate prefetch_;
};

}  // namespace blobcr::qos

namespace blobcr::net {
/// Deprecated alias (one release): net::QosConfig grew per-class slots and
/// moved to qos::Config alongside the AdmissionPlane it configures.
using QosConfig = blobcr::qos::Config;
}  // namespace blobcr::net
