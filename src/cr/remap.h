// Elastic restart remap: the control-plane transform that lets an
// N-instance checkpoint come back as M instances (ROADMAP "elastic
// restart"; the related checkpointing-as-a-service work makes the
// elasticity pitch explicit — jobs shrink on spot reclaim and grow on
// queue drain).
//
// The content-addressed restart data plane already makes snapshot chunks
// instance-agnostic, so rescaling is pure bookkeeping: the catalog's N
// per-instance snapshot tuples are assigned to M fresh instances as
// contiguous shards.
//
//   M == N  every instance gets exactly its own tuple — bit-identical to
//           the classic restart path;
//   M <  N  instance i boots from tuple i*N/M and adopts the rest of its
//           shard [i*N/M, (i+1)*N/M) as attached data volumes, so the
//           union of device images across the deployment is unchanged;
//   M >  N  several instances share one source tuple: the first keeps the
//           checkpoint image for its own subsequent commits, later ones
//           are marked fresh_image so their first commit derives a fresh
//           checkpoint image (no two instances ever commit into the same
//           image).
//
// qcow2-full checkpoints resume full VM state (guest RAM included); an MPI
// job's rank count is baked into that state, so rescaling them is refused.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cloud.h"

namespace blobcr::cr {

/// The source tuple index new instance `i` of `m` boots from when
/// rescaling an `n`-tuple checkpoint: contiguous shards, in order.
inline std::size_t remap_source(std::size_t i, std::size_t n, std::size_t m) {
  return i * n / m;
}

/// Builds the per-instance restart plan for rescaling the given snapshot
/// line onto `m` instances (see file comment for the shard assignment).
/// Throws CrError when the line is empty, `m` is 0, or any tuple is a
/// qcow2-full checkpoint while m != n.
core::RestartPlan build_restart_plan(
    const std::vector<core::InstanceSnapshot>& tuples, std::size_t m);

}  // namespace blobcr::cr
