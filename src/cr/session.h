// cr::Session: the checkpoint-restart facade owning a deployment's CR
// lifecycle. It turns the mechanism layer (Deployment snapshots, the
// coordinated protocol, the garbage collector) into a service with explicit
// selection and retention semantics:
//
//   checkpoint(tag)    snapshot every instance, then commit a catalog record
//                      (external / full-VM style checkpoints);
//   stage_last() +     the two protocol-driven halves: stage a durable
//   publish_staged()   record once every rank's snapshot is captured, then
//                      mark it Complete after the async drains published
//                      (mpi::CoordinatedHooks::stage_record/publish_record);
//   commit_last(tag)   both halves plus the drain wait, for drivers that
//                      coordinate checkpoints with their own barriers;
//   restart(Selector)  tear down and restart the deployment from a cataloged
//                      checkpoint — latest, by id, or by tag;
//   apply_retention()  retire records past the RetentionPolicy and reclaim
//                      their snapshot versions.
//
// A failed drain between stage and publish marks the record Incomplete; a
// restart marks every dangling Staged record Incomplete (its stager cannot
// complete it anymore). Incomplete records are never selectable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cr/catalog.h"
#include "cr/checkpoint.h"
#include "sim/sim.h"

namespace blobcr::cr {

/// Outcome of a repository scavenge pass (Session::scavenge).
struct ScavengeReport {
  std::size_t chunks_checked = 0;   // distinct chunks referenced by keepers
  std::size_t chunks_restored = 0;  // re-stored from the peer tier
  std::uint64_t bytes_restored = 0;        // stored payload bytes re-created
  std::uint64_t parity_bytes_rebuilt = 0;  // share recovered via parity
  std::size_t unrecoverable = 0;    // chunks no tier could produce
  std::size_t catalog_records = 0;  // records rewritten into the new log
  /// Every keeper chunk has a live replica again and the catalog log is
  /// durable — the repository is fully restartable.
  bool complete() const { return unrecoverable == 0; }
};

class Session {
 public:
  struct Config {
    RetentionPolicy retention;
    Catalog::Config catalog;
    /// Job identity in a multi-tenant repository: non-empty namespaces the
    /// catalog name ("<catalog.name>/<job>"), so this session's tenant
    /// lists, restarts and retires only its own lineage — other jobs'
    /// catalogs are separate named blobs in the same repository.
    std::string job;
    /// Run retention after every completed checkpoint (reclaimed bytes
    /// accumulate in gc_reclaimed_bytes()).
    bool auto_retention = true;
  };

  explicit Session(core::Deployment& deployment)
      : Session(deployment, Config()) {}
  Session(core::Deployment& deployment, Config cfg);

  core::Deployment& deployment() { return *dep_; }
  Catalog& catalog() { return catalog_; }
  const Config& config() const { return cfg_; }

  /// Re-points the session at a replacement deployment (the FT runner's
  /// from-scratch resubmission constructs a new Deployment object). The
  /// catalog — repository state — is untouched.
  void attach(core::Deployment& deployment) { dep_ = &deployment; }

  /// External checkpoint: snapshots every instance in parallel, then
  /// commits the line to the catalog (stage -> drain -> Complete). On a
  /// drain failure the record is marked Incomplete and the error rethrown.
  sim::Task<CheckpointRecord> checkpoint(std::string tag = "");

  /// Commits the deployment's current last-snapshot line (guest-triggered
  /// coordinated checkpoints whose driver runs its own barriers).
  sim::Task<CheckpointRecord> commit_last(std::string tag = "");

  /// Protocol half 1: durably stage a record of the current snapshot line
  /// (snapshots may still be provisional under the async pipeline). Any
  /// previously dangling staged record is first marked Incomplete.
  sim::Task<> stage_last(std::string tag = "");

  /// Protocol half 2: refresh the staged record's tuples from the published
  /// version records and mark it Complete. Runs retention when configured.
  sim::Task<CheckpointRecord> publish_staged();

  /// Marks the currently staged record (if any) Incomplete — the drain died
  /// mid-publish and the record can never complete.
  sim::Task<> abandon_staged();

  /// Restart knobs beyond the selector.
  struct RestartOptions {
    /// Node shift for the rebuilt instances (fresh machines).
    std::size_t node_offset = 0;
    /// Drop the deployment's decoded-chunk caches first (§4.3.1's restart-
    /// on-different-nodes semantics); leave false for FT rollbacks where
    /// survivors keep serving peer copies.
    bool cold_caches = false;
    /// Elastic restart: target instance count M. 0 (or the record's own
    /// tuple count) restarts 1:1 like today; any other value remaps the N
    /// recorded tuples onto M fresh instances through the content-addressed
    /// plane (see cr/remap.h — contiguous shards, attached volumes for
    /// M < N, fresh checkpoint images for M > N clones). Rescaling a
    /// qcow2-full record throws CrError.
    std::size_t instances = 0;
  };

  /// Tears the deployment down and restarts it from the selected Complete
  /// checkpoint on nodes shifted by `node_offset`. `cold_caches` drops the
  /// deployment's decoded-chunk caches first (§4.3.1's restart-on-different-
  /// nodes semantics); leave false for FT rollbacks where survivors keep
  /// serving peer copies. Returns the record restarted from.
  sim::Task<CheckpointRecord> restart(const Selector& sel,
                                      std::size_t node_offset,
                                      bool cold_caches = false);

  /// Restart with explicit options — the elastic (N -> M) entry point. The
  /// restart writes no new catalog state: the record restarted from stays
  /// the lineage head, so the next checkpoint's `parent` still points at
  /// the pre-rescale record (now with M tuples).
  sim::Task<CheckpointRecord> restart(const Selector& sel,
                                      const RestartOptions& opts);

  sim::Task<std::vector<CheckpointRecord>> list() { return catalog_.list(); }

  /// Disaster recovery after a repository outage (SCR-style scavenge): every
  /// data provider died and its stored chunks are gone, but compute nodes —
  /// and their decoded-chunk caches plus parity groups — survive. Rejoins
  /// the failed providers with empty stores, re-creates every chunk a
  /// restartable (Complete/Staged) record references from the peer tier
  /// (surviving cache copies first, parity rebuild second), re-registers the
  /// new placements, and rewrites the catalog log into a fresh blob under
  /// the same name. After a complete() pass the repository is bit-exact
  /// restartable again. BlobCR backend only.
  sim::Task<ScavengeReport> scavenge();

  /// Applies the retention policy now: Complete records beyond keep-last-N
  /// (minus tagged ones when keep_tagged) retire, their snapshot versions
  /// are garbage-collected (BlobCR) or their snapshot files removed
  /// (qcow2-disk), and the catalog log itself is compacted. Returns the
  /// bytes reclaimed by this pass.
  sim::Task<std::uint64_t> apply_retention();

  /// The checkpoint the deployment currently descends from (restart target
  /// or last committed record; 0 before either).
  CheckpointId lineage_head() const { return lineage_head_; }
  /// The most recent record this session committed (publish_staged /
  /// checkpoint / commit_last), for drivers that need its tuples.
  const std::optional<CheckpointRecord>& last_committed() const {
    return last_committed_;
  }
  /// Total bytes reclaimed by retention over this session's lifetime.
  std::uint64_t gc_reclaimed_bytes() const { return gc_reclaimed_bytes_; }

 private:
  sim::Task<> init_lineage();
  sim::Task<> mark_incomplete(CheckpointId id);
  /// Elastic M > N on qcow2-disk: clone instances must not share their
  /// source's snapshot container (both would commit into the same PVFS
  /// file) — copy the container to a fresh path for every fresh_image
  /// instance in the plan, rewriting its boot tuple in place.
  sim::Task<> clone_qcow_containers(core::RestartPlan& plan);

  core::Deployment* dep_;
  Config cfg_;
  Catalog catalog_;
  CheckpointId staged_ = 0;
  CheckpointId lineage_head_ = 0;
  bool lineage_init_ = false;
  std::optional<CheckpointRecord> last_committed_;
  std::uint64_t gc_reclaimed_bytes_ = 0;
};

}  // namespace blobcr::cr
