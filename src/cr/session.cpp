#include "cr/session.h"

#include <algorithm>
#include <exception>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include <map>

#include "blob/gc.h"
#include "blob/store.h"
#include "common/strutil.h"
#include "cr/remap.h"
#include "pfs/pvfs.h"
#include "redundancy/manager.h"
#include "reduce/rle.h"

namespace blobcr::cr {

using core::Deployment;
using sim::Task;

namespace {

/// Applies the per-job namespacing and tenant identity before the catalog
/// is constructed from the config.
Session::Config finalize(const Deployment& dep, Session::Config cfg) {
  if (!cfg.job.empty()) cfg.catalog.name += "/" + cfg.job;
  if (cfg.catalog.tenant == net::kDefaultTenant) {
    cfg.catalog.tenant = dep.tenant();
  }
  return cfg;
}

}  // namespace

Session::Session(Deployment& deployment, Config cfg)
    : dep_(&deployment),
      cfg_(finalize(deployment, std::move(cfg))),
      catalog_(deployment.cloud(), cfg_.catalog) {}

Task<> Session::init_lineage() {
  co_await catalog_.open();
  if (lineage_init_) co_return;
  lineage_init_ = true;
  // A fresh session descends from whatever the repository says was the last
  // complete line (0 on a virgin repository).
  for (const CheckpointRecord& rec : catalog_.records()) {
    if (rec.selectable()) lineage_head_ = rec.id;
  }
}

Task<> Session::mark_incomplete(CheckpointId id) {
  for (const CheckpointRecord& rec : catalog_.records()) {
    if (rec.id != id || rec.state != RecordState::Staged) continue;
    CheckpointRecord dead = rec;
    dead.state = RecordState::Incomplete;
    co_await catalog_.update(std::move(dead));
    co_return;
  }
}

Task<> Session::stage_last(std::string tag) {
  co_await init_lineage();
  // A dangling staged record (its epoch failed before publishing) can never
  // complete — supersede it before staging the new line.
  if (staged_ != 0) {
    co_await mark_incomplete(staged_);
    staged_ = 0;
  }
  CheckpointRecord rec;
  rec.parent = lineage_head_;
  rec.tag = std::move(tag);
  rec.snapshots = dep_->collect_last_snapshots().snapshots;
  rec = co_await catalog_.stage(std::move(rec));
  staged_ = rec.id;
}

Task<CheckpointRecord> Session::publish_staged() {
  if (staged_ == 0)
    throw CrError("publish_staged: no checkpoint record is staged");
  CheckpointRecord rec;
  bool found = false;
  for (const CheckpointRecord& r : catalog_.records()) {
    if (r.id == staged_) {
      rec = r;
      found = true;
      break;
    }
  }
  if (!found) throw CrError("staged checkpoint record vanished from catalog");

  // Refresh the tuples: provisional (async) snapshots recorded bytes == 0
  // at stage time; the published version records know their sizes now.
  rec.snapshots = dep_->collect_last_snapshots().snapshots;

  // A record is Complete only when every snapshot is *published*. Callers
  // must have drained first (the protocol's drain barrier / commit_last);
  // finding a still-pending version here means the line is not global.
  if (dep_->cloud().blob_store() != nullptr) {
    for (const core::InstanceSnapshot& s : rec.snapshots) {
      if (s.backend != core::Backend::BlobCR || s.image == 0 ||
          s.version == 0) {
        continue;
      }
      // Commit affinity can land each instance's image in its own zone.
      const blob::BlobMeta& meta =
          dep_->cloud().store_of_blob(s.image)->version_manager().peek(
              s.image);
      if (s.version > meta.versions.size() ||
          meta.version(s.version).pending) {
        co_await abandon_staged();
        throw CrError("checkpoint record " + std::to_string(rec.id) +
                      " cannot complete: instance " +
                      std::to_string(s.instance) +
                      "'s snapshot never published");
      }
    }
  }

  // A committed global checkpoint is a durability boundary for the peer
  // parity tier too: partially filled groups seal now, so every chunk this
  // record references is rebuildable — not just those whose group happened
  // to fill during the drain.
  if (redundancy::Manager* mgr = dep_->redundancy()) mgr->seal_open_groups();

  rec.state = RecordState::Complete;
  co_await catalog_.update(rec);
  staged_ = 0;
  lineage_head_ = rec.id;
  last_committed_ = rec;
  if (cfg_.auto_retention) (void)co_await apply_retention();
  co_return rec;
}

Task<> Session::abandon_staged() {
  if (staged_ == 0) co_return;
  const CheckpointId dead = staged_;
  staged_ = 0;
  co_await mark_incomplete(dead);
}

Task<CheckpointRecord> Session::commit_last(std::string tag) {
  co_await stage_last(std::move(tag));
  std::exception_ptr drain_error;
  try {
    // Async pipeline: a complete global checkpoint means globally published.
    for (std::size_t i = 0; i < dep_->size(); ++i) {
      co_await dep_->wait_drained(i);
    }
  } catch (...) {
    drain_error = std::current_exception();
  }
  if (drain_error) {
    // The drain died mid-publish: the staged record can never complete.
    co_await abandon_staged();
    std::rethrow_exception(drain_error);
  }
  co_return co_await publish_staged();
}

Task<CheckpointRecord> Session::checkpoint(std::string tag) {
  co_await init_lineage();
  (void)co_await dep_->checkpoint_all();
  co_return co_await commit_last(std::move(tag));
}

Task<CheckpointRecord> Session::restart(const Selector& sel,
                                        std::size_t node_offset,
                                        bool cold_caches) {
  co_return co_await restart(sel,
                             RestartOptions{node_offset, cold_caches, 0});
}

Task<> Session::clone_qcow_containers(core::RestartPlan& plan) {
  pfs::PvfsClient client(*dep_->cloud().pvfs(), cfg_.catalog.client_node);
  for (std::size_t i = 0; i < plan.instances.size(); ++i) {
    core::InstancePlan& ip = plan.instances[i];
    if (!ip.fresh_image || ip.boot.backend != core::Backend::Qcow2Disk)
      continue;
    const std::string dst = common::strf(
        "/ckpt/rescale_d%llu_inst%zu.qcow2",
        static_cast<unsigned long long>(dep_->cloud().next_deployment_seq()),
        i);
    const std::uint64_t total = co_await client.stat_size(ip.boot.pvfs_path);
    const pfs::FileId src = co_await client.open(ip.boot.pvfs_path);
    const pfs::FileId file = co_await client.create(dst);
    constexpr std::uint64_t kPiece = 16 * 1024 * 1024;
    std::uint64_t off = 0;
    while (off < total) {
      const std::uint64_t len = std::min(kPiece, total - off);
      co_await client.write(file, off, co_await client.read(src, off, len));
      off += len;
    }
    ip.boot.pvfs_path = dst;
  }
}

Task<CheckpointRecord> Session::restart(const Selector& sel,
                                        const RestartOptions& opts) {
  // Zone loss first: if the catalog's home zone died, rebind it to a
  // survivor (recovering the record set from replicated frames when this
  // driver never opened the log) *before* any catalog read touches dead
  // providers.
  co_await catalog_.rehome_if_dead();
  co_await init_lineage();
  CheckpointRecord rec = co_await catalog_.select(sel);
  // Whatever was staged (by this session or a dead driver this catalog was
  // recovered from) can never complete once the deployment rolls back.
  staged_ = 0;
  for (const CheckpointRecord& r : catalog_.records()) {
    if (r.state == RecordState::Staged) co_await mark_incomplete(r.id);
  }

  const std::size_t n = rec.snapshots.size();
  const std::size_t m = opts.instances == 0 ? n : opts.instances;
  if (m != n) {
    // Elastic path: build the remap plan BEFORE touching the deployment, so
    // a refused rescale (qcow2-full, m == 0) leaves it running.
    core::RestartPlan plan = build_restart_plan(rec.snapshots, m);
    if (dep_->cloud().pvfs() != nullptr) co_await clone_qcow_containers(plan);
    dep_->destroy_all();
    if (opts.cold_caches) dep_->forget_node_caches();
    co_await dep_->restart_from(plan, opts.node_offset);
    lineage_head_ = rec.id;
    co_return std::move(rec);
  }

  dep_->destroy_all();
  if (opts.cold_caches) dep_->forget_node_caches();
  // Lend the tuples to the restart payload instead of deep-copying every
  // snapshot (incl. qcow table state) per rollback; restart_from takes the
  // checkpoint by reference and only copies each instance's own snapshot.
  core::GlobalCheckpoint ckpt;
  ckpt.snapshots = std::move(rec.snapshots);
  try {
    co_await dep_->restart_from(ckpt, opts.node_offset);
  } catch (...) {
    // Give the tuples back: the returned-record path (and any retry from
    // the same record object) must see the full snapshot line even though
    // the deployment is half-built. lineage_head_ stays untouched.
    rec.snapshots = std::move(ckpt.snapshots);
    throw;
  }
  rec.snapshots = std::move(ckpt.snapshots);
  lineage_head_ = rec.id;
  co_return std::move(rec);
}

namespace {

/// Maps a recovered *decoded* payload back to the stored form the metadata
/// leaf describes, so a later read decodes it bit-exactly. Every encoding
/// is deterministic, so re-encoding the same logical bytes reproduces the
/// same stored payload the dead provider held.
common::Buffer encode_for_store(const blob::ChunkLocation& loc,
                                const common::Buffer& decoded) {
  switch (loc.encoding) {
    case blob::ChunkEncoding::Raw:
    case blob::ChunkEncoding::Zero:
      return decoded;
    case blob::ChunkEncoding::Rle:
      // RLE leaves are only ever written for fully-real payloads; a phantom
      // recovery (modeled-RS rebuild) cannot happen for them, but stay
      // honest if it somehow does.
      if (!decoded.fully_real()) return common::Buffer::phantom(loc.size);
      return common::Buffer::real(reduce::rle_encode(decoded.bytes()));
    case blob::ChunkEncoding::PhantomRatio:
      // Stored form is a size-only placeholder at the modeled ratio.
      return common::Buffer::phantom(loc.size);
  }
  return decoded;
}

}  // namespace

Task<ScavengeReport> Session::scavenge() {
  co_await init_lineage();
  blob::BlobStore* store = dep_->cloud().blob_store();
  if (store == nullptr)
    throw CrError("scavenge requires the BlobCR backend");
  ScavengeReport rep;

  // 1. Bring the failed providers back into service with empty stores (the
  //    outage wiped their disks; the repository skeleton restarts empty).
  for (const auto& p : store->providers()) p->rejoin();

  // 2. The working set: every payload-bearing leaf referenced by a record
  //    that must stay restartable, deduplicated by ChunkId. An ordered map
  //    keeps the restore sequence deterministic.
  blob::BlobClient client(*store, cfg_.catalog.client_node);
  client.set_tenant(cfg_.catalog.tenant);
  std::map<blob::ChunkId, blob::ChunkLocation> want;
  for (const CheckpointRecord& r : catalog_.records()) {
    if (r.state != RecordState::Complete && r.state != RecordState::Staged)
      continue;
    for (const core::InstanceSnapshot& s : r.snapshots) {
      if (s.backend != core::Backend::BlobCR || s.image == 0 || s.version == 0)
        continue;
      const blob::BlobMeta& meta = store->version_manager().peek(s.image);
      if (s.version > meta.versions.size()) continue;
      const std::uint64_t size = meta.version(s.version).size;
      if (size == 0) continue;
      const auto refs =
          co_await client.resolve_chunks(s.image, s.version, 0, size);
      for (const blob::BlobClient::ChunkRef& ref : refs) {
        if (ref.loc.id == 0 || ref.loc.encoding == blob::ChunkEncoding::Zero)
          continue;
        want.emplace(ref.loc.id, ref.loc);
      }
    }
  }
  rep.chunks_checked = want.size();

  // 3. Re-create every chunk with no surviving replica from the peer tier
  //    and point the placement registry at the new homes.
  blob::ProviderManager& pm = store->provider_manager();
  redundancy::Manager* mgr = dep_->redundancy();
  const std::uint64_t parity_before = mgr ? mgr->stats().rebuild_bytes : 0;
  for (const auto& [id, loc] : want) {
    std::vector<net::NodeId> live;
    const auto place = pm.placements().find(id);
    if (place != pm.placements().end()) {
      for (const net::NodeId n : place->second.replicas) {
        blob::DataProvider* p = store->provider_at(n);
        if (p != nullptr && p->has(id)) live.push_back(n);
      }
    }
    if (!live.empty()) {
      // A survivor (e.g. a provider that rejoined with data, or a partial
      // outage) — just prune the dead replicas from the registry.
      if (place->second.replicas != live) pm.update_placement(id, live);
      continue;
    }
    // Least-loaded live provider takes the restored copy (the manager's
    // usual balance policy, applied to the scavenge stream).
    blob::DataProvider* target = nullptr;
    for (const auto& p : store->providers()) {
      if (!p->alive()) continue;
      if (target == nullptr || p->stored_bytes() < target->stored_bytes())
        target = p.get();
    }
    if (target == nullptr) {
      ++rep.unrecoverable;
      continue;
    }
    const auto payload =
        co_await dep_->recover_chunk_payload(core::ChunkKey::of(loc),
                                             target->node());
    if (!payload.has_value()) {
      ++rep.unrecoverable;
      continue;
    }
    common::Buffer stored = encode_for_store(loc, payload->data);
    const std::uint64_t stored_bytes = stored.size();
    co_await target->store(
        target->node(), id, std::move(stored),
        qos::IoContext{dep_->tenant(), qos::GateClass::ProviderIo});
    if (place != pm.placements().end())
      pm.update_placement(id, {target->node()});
    ++rep.chunks_restored;
    rep.bytes_restored += stored_bytes;
  }
  rep.parity_bytes_rebuilt =
      (mgr ? mgr->stats().rebuild_bytes : 0) - parity_before;

  // 4. The catalog log's own chunks died with the repository: rewrite the
  //    in-memory record set into a fresh blob under the same name.
  co_await catalog_.rebuild();
  rep.catalog_records = catalog_.records().size();
  co_return rep;
}

Task<std::uint64_t> Session::apply_retention() {
  co_await catalog_.open();
  const RetentionPolicy& pol = cfg_.retention;
  if (pol.keep_last == 0) co_return 0;

  // Keep the newest keep_last Complete records (+ tagged ones).
  std::vector<CheckpointId> complete;
  for (const CheckpointRecord& r : catalog_.records()) {
    if (r.state == RecordState::Complete) complete.push_back(r.id);
  }
  std::unordered_set<CheckpointId> kept;
  const std::size_t n = complete.size();
  for (std::size_t i = n > pol.keep_last ? n - pol.keep_last : 0; i < n; ++i) {
    kept.insert(complete[i]);
  }
  std::vector<CheckpointRecord> retire;
  for (const CheckpointRecord& r : catalog_.records()) {
    if (r.state != RecordState::Complete || kept.count(r.id) != 0) continue;
    if (pol.keep_tagged && !r.tag.empty()) continue;
    retire.push_back(r);
  }
  if (retire.empty()) co_return 0;
  for (CheckpointRecord r : retire) {
    r.state = RecordState::Retired;
    co_await catalog_.update(std::move(r));
  }

  std::uint64_t reclaimed = 0;
  core::Cloud& cloud = dep_->cloud();
  if (cloud.blob_store() != nullptr) {
    // Per-image floors from every record that must stay restartable (or is
    // still in flight): versions below a floor are handed to the GC; images
    // referenced by no such record (abandoned lineages) are dropped whole.
    std::unordered_map<blob::BlobId, blob::VersionId> floor;
    std::unordered_map<blob::BlobId, blob::VersionId> drop_max;
    for (const CheckpointRecord& r : catalog_.records()) {
      const bool keeper = r.state == RecordState::Complete ||
                          r.state == RecordState::Staged;
      for (const core::InstanceSnapshot& s : r.snapshots) {
        if (s.image == 0 || s.version == 0) continue;
        if (keeper) {
          const auto it = floor.find(s.image);
          floor[s.image] = it == floor.end() ? s.version
                                             : std::min(it->second, s.version);
        } else {
          const auto it = drop_max.find(s.image);
          drop_max[s.image] = it == drop_max.end()
                                  ? s.version
                                  : std::max(it->second, s.version);
        }
      }
    }
    // The retention sweep runs inside a simulation process, so it uses the
    // epoch-based concurrent collector: commits and drains of live jobs
    // keep flowing between the per-shard mark slices and erase batches
    // instead of stalling behind a full-store mark.
    // Each image's GC runs against the store that owns it (federated
    // deployments spread images across zone stores).
    for (const auto& [image, keep_from] : floor) {
      if (keep_from > 1) {
        blob::GarbageCollector gc(*cloud.store_of_blob(image));
        reclaimed +=
            (co_await gc.collect_concurrent(image, keep_from)).reclaimed_bytes;
      }
    }
    for (const auto& [image, max_dropped] : drop_max) {
      if (floor.count(image) != 0) continue;
      blob::GarbageCollector gc(*cloud.store_of_blob(image));
      reclaimed +=
          (co_await gc.collect_concurrent(image, max_dropped + 1))
              .reclaimed_bytes;
    }
    reclaimed += catalog_.compact();
  } else {
    // qcow2-disk: retired snapshot copies on PVFS are whole files; remove
    // the ones no kept record references. (qcow2-full already removes its
    // previous copy at each new checkpoint — leave those alone.)
    std::unordered_set<std::string> kept_paths;
    for (const CheckpointRecord& r : catalog_.records()) {
      if (r.state != RecordState::Complete && r.state != RecordState::Staged)
        continue;
      for (const core::InstanceSnapshot& s : r.snapshots) {
        if (!s.pvfs_path.empty()) kept_paths.insert(s.pvfs_path);
      }
    }
    pfs::PvfsClient client(*cloud.pvfs(), cfg_.catalog.client_node);
    for (const CheckpointRecord& r : retire) {
      for (const core::InstanceSnapshot& s : r.snapshots) {
        if (s.backend != core::Backend::Qcow2Disk || s.pvfs_path.empty() ||
            kept_paths.count(s.pvfs_path) != 0) {
          continue;
        }
        try {
          reclaimed += co_await client.stat_size(s.pvfs_path);
          co_await client.remove(s.pvfs_path);
        } catch (const pfs::PvfsError&) {
          // Already gone (e.g. removed with a failed node) — nothing to do.
        }
      }
    }
  }
  gc_reclaimed_bytes_ += reclaimed;
  co_return reclaimed;
}

}  // namespace blobcr::cr
