#include "cr/remap.h"

#include <algorithm>

#include "cr/checkpoint.h"

namespace blobcr::cr {

core::RestartPlan build_restart_plan(
    const std::vector<core::InstanceSnapshot>& tuples, std::size_t m) {
  const std::size_t n = tuples.size();
  if (n == 0)
    throw CrError("elastic restart: checkpoint record has no snapshot tuples");
  if (m == 0)
    throw CrError("elastic restart: target instance count must be > 0");
  if (m != n) {
    for (const core::InstanceSnapshot& s : tuples) {
      if (s.backend == core::Backend::Qcow2Full) {
        throw CrError(
            "elastic restart: qcow2-full checkpoints resume full VM state "
            "(rank count included) and cannot rescale to a different "
            "instance count");
      }
    }
  }

  core::RestartPlan plan;
  plan.instances.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t lo = remap_source(i, n, m);
    const std::size_t hi = std::max(lo + 1, remap_source(i + 1, n, m));
    core::InstancePlan& ip = plan.instances[i];
    ip.boot = tuples[lo];
    ip.boot.instance = i;  // renumbered: records collected later see M tuples
    // A source shared by several new instances (M > N) keeps its checkpoint
    // image with the FIRST user only; the others derive fresh images on
    // their first commit so no two instances write the same image.
    ip.fresh_image = i > 0 && remap_source(i - 1, n, m) == lo;
    for (std::size_t s = lo + 1; s < hi; ++s) ip.attached.push_back(tuples[s]);
  }
  return plan;
}

}  // namespace blobcr::cr
