// Checkpoint control-plane types: the first-class notion of "a global
// checkpoint" the paper's middleware reasons about (§3.2 maps "the last
// complete global checkpoint" to a restart).
//
// A CheckpointRecord is the durable identity of one coordinated checkpoint:
// a monotonically-issued CheckpointId, the per-instance snapshot tuples that
// make it restartable, lineage (which checkpoint the deployment itself was
// running from), an optional user tag, and a completeness state. Records
// live in the repository (see cr::Catalog), not in any driver's memory, so
// they survive total driver loss.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/cloud.h"
#include "sim/time.h"

namespace blobcr::cr {

/// Globally monotonic checkpoint identity, issued by the catalog. 0 = none.
using CheckpointId = std::uint64_t;

class CrError : public std::runtime_error {
 public:
  explicit CrError(const std::string& what) : std::runtime_error(what) {}
};

/// Completeness of a checkpoint record.
///
///   Staged     the coordinated protocol captured every instance's snapshot
///              (possibly still provisional under the async commit
///              pipeline) and durably recorded the intent;
///   Complete   every snapshot is published — the record is selectable for
///              restart;
///   Incomplete a drain (or the driver) died between Staged and Complete.
///              The record is kept for forensics and lineage but is never
///              selectable for restart;
///   Retired    reclaimed by the retention policy; its snapshot versions
///              may have been garbage-collected.
enum class RecordState : std::uint8_t {
  Staged = 0,
  Complete = 1,
  Incomplete = 2,
  Retired = 3,
};

const char* record_state_name(RecordState s);

struct CheckpointRecord {
  CheckpointId id = 0;
  /// The checkpoint the deployment was running from when this one was taken
  /// (0 for a fresh deployment) — the restart lineage.
  CheckpointId parent = 0;
  RecordState state = RecordState::Staged;
  /// Optional user label; selectable via Selector::by_tag. Tagged complete
  /// records are exempt from keep-last-N retention by default.
  std::string tag;
  sim::Time created = 0;
  /// One snapshot tuple per VM instance, in instance order.
  std::vector<core::InstanceSnapshot> snapshots;

  bool selectable() const { return state == RecordState::Complete; }

  std::uint64_t total_bytes() const {
    std::uint64_t sum = 0;
    for (const auto& s : snapshots) sum += s.bytes;
    return sum;
  }

  /// The restart payload Deployment::restart_from consumes.
  core::GlobalCheckpoint to_global() const {
    core::GlobalCheckpoint ckpt;
    ckpt.snapshots = snapshots;
    return ckpt;
  }
};

/// How a restart (or a lookup) picks a record from the catalog.
struct Selector {
  enum class Kind { Latest, ById, ByTag };
  Kind kind = Kind::Latest;
  CheckpointId id = 0;
  std::string tag;

  /// The newest Complete record.
  static Selector latest() { return Selector{}; }
  /// The record with this exact id (any state; selection still refuses
  /// records that are not Complete).
  static Selector by_id(CheckpointId id) {
    Selector s;
    s.kind = Kind::ById;
    s.id = id;
    return s;
  }
  /// The newest Complete record carrying this tag.
  static Selector by_tag(std::string tag) {
    Selector s;
    s.kind = Kind::ByTag;
    s.tag = std::move(tag);
    return s;
  }

  std::string describe() const;
};

/// What the catalog keeps when a session applies retention. Reclaimed
/// records become Retired and their snapshot versions are handed to the
/// garbage collector (BlobCR) / removed from PVFS (qcow2-disk copies).
struct RetentionPolicy {
  /// Keep the newest N Complete records; 0 keeps everything (no retention).
  std::size_t keep_last = 0;
  /// Tagged Complete records never retire under keep_last.
  bool keep_tagged = true;
};

}  // namespace blobcr::cr
