#include "cr/catalog.h"

#include <algorithm>
#include <utility>

#include "blob/gc.h"
#include "common/codec.h"

namespace blobcr::cr {

using common::Buffer;
using common::ByteReader;
using common::ByteWriter;
using sim::Task;

namespace {

constexpr std::uint32_t kFrameMagic = 0x4b524342;  // "BCRK"

void encode_u64_map(ByteWriter& w,
                    const std::map<std::uint64_t, std::uint64_t>& m) {
  w.u32(static_cast<std::uint32_t>(m.size()));
  for (const auto& [k, v] : m) {
    w.u64(k);
    w.u64(v);
  }
}

std::map<std::uint64_t, std::uint64_t> decode_u64_map(ByteReader& r) {
  std::map<std::uint64_t, std::uint64_t> m;
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t k = r.u64();
    m[k] = r.u64();
  }
  return m;
}

void encode_u64_set(ByteWriter& w, const std::set<std::uint64_t>& s) {
  w.u32(static_cast<std::uint32_t>(s.size()));
  for (const std::uint64_t v : s) w.u64(v);
}

std::set<std::uint64_t> decode_u64_set(ByteReader& r) {
  std::set<std::uint64_t> s;
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) s.insert(r.u64());
  return s;
}

void encode_qcow_state(ByteWriter& w, const img::QcowImage::State& st) {
  encode_u64_map(w, st.l2);
  encode_u64_set(w, st.frozen);
  encode_u64_set(w, st.l2_covered);
  w.u64(st.l2_tables);
  w.u64(st.host_end);
  w.u32(static_cast<std::uint32_t>(st.snapshots.size()));
  for (const auto& snap : st.snapshots) {
    encode_u64_map(w, snap.l2);
    w.u64(snap.vmstate_offset);
    w.u64(snap.vmstate_bytes);
  }
  w.u64(st.guest_bytes_written);
}

img::QcowImage::State decode_qcow_state(ByteReader& r) {
  img::QcowImage::State st;
  st.l2 = decode_u64_map(r);
  st.frozen = decode_u64_set(r);
  st.l2_covered = decode_u64_set(r);
  st.l2_tables = r.u64();
  st.host_end = r.u64();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    img::QcowImage::Snapshot snap;
    snap.l2 = decode_u64_map(r);
    snap.vmstate_offset = r.u64();
    snap.vmstate_bytes = r.u64();
    st.snapshots.push_back(std::move(snap));
  }
  st.guest_bytes_written = r.u64();
  return st;
}

void encode_snapshot(ByteWriter& w, const core::InstanceSnapshot& s) {
  w.u64(s.instance);
  w.u8(static_cast<std::uint8_t>(s.backend));
  w.u64(s.image);
  w.u32(s.version);
  w.u64(s.bytes);
  w.u64(static_cast<std::uint64_t>(s.vm_downtime));
  w.str(s.pvfs_path);
  const bool has_qcow = s.backend != core::Backend::BlobCR;
  w.u8(has_qcow ? 1 : 0);
  if (has_qcow) encode_qcow_state(w, s.qcow_state);
}

core::InstanceSnapshot decode_snapshot(ByteReader& r) {
  core::InstanceSnapshot s;
  s.instance = static_cast<std::size_t>(r.u64());
  s.backend = static_cast<core::Backend>(r.u8());
  s.image = r.u64();
  s.version = r.u32();
  s.bytes = r.u64();
  s.vm_downtime = static_cast<sim::Duration>(r.u64());
  s.pvfs_path = r.str();
  if (r.u8() != 0) s.qcow_state = decode_qcow_state(r);
  return s;
}

CheckpointRecord decode_record(ByteReader& r) {
  CheckpointRecord rec;
  rec.id = r.u64();
  rec.parent = r.u64();
  rec.state = static_cast<RecordState>(r.u8());
  rec.created = static_cast<sim::Time>(r.u64());
  rec.tag = r.str();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    rec.snapshots.push_back(decode_snapshot(r));
  }
  return rec;
}

}  // namespace

const char* record_state_name(RecordState s) {
  switch (s) {
    case RecordState::Staged:
      return "staged";
    case RecordState::Complete:
      return "complete";
    case RecordState::Incomplete:
      return "incomplete";
    case RecordState::Retired:
      return "retired";
  }
  return "?";
}

std::string Selector::describe() const {
  switch (kind) {
    case Kind::Latest:
      return "latest";
    case Kind::ById:
      return "id " + std::to_string(id);
    case Kind::ByTag:
      return "tag \"" + tag + "\"";
  }
  return "?";
}

Catalog::Catalog(core::Cloud& cloud, Config cfg)
    : cloud_(&cloud), cfg_(std::move(cfg)) {
  if (cloud.blob_store() != nullptr) {
    home_store_ = cloud.blob_store();
    blob_client_ = std::make_unique<blob::BlobClient>(*home_store_,
                                                      cfg_.client_node);
    blob_client_->set_tenant(cfg_.tenant);
  } else {
    pvfs_client_ =
        std::make_unique<pfs::PvfsClient>(*cloud.pvfs(), cfg_.client_node);
  }
}

Buffer Catalog::encode_frame(const CheckpointRecord& rec,
                             std::uint64_t pad_to) const {
  ByteWriter payload;
  payload.u64(rec.id);
  payload.u64(rec.parent);
  payload.u8(static_cast<std::uint8_t>(rec.state));
  payload.u64(static_cast<std::uint64_t>(rec.created));
  payload.str(rec.tag);
  payload.u32(static_cast<std::uint32_t>(rec.snapshots.size()));
  for (const auto& s : rec.snapshots) encode_snapshot(payload, s);
  Buffer body = payload.take();

  const std::uint64_t raw = 12 + body.size();  // magic + frame_len + payload_len
  std::uint64_t padded =
      (raw + cfg_.record_align - 1) / cfg_.record_align * cfg_.record_align;
  if (pad_to != 0) {
    if (raw > pad_to)
      throw CrError("checkpoint record " + std::to_string(rec.id) +
                    " grew past its catalog frame");
    padded = pad_to;
  }

  ByteWriter frame;
  frame.u32(kFrameMagic);
  frame.u32(static_cast<std::uint32_t>(padded));
  frame.u32(static_cast<std::uint32_t>(body.size()));
  Buffer out = frame.take();
  out.append(std::move(body));
  if (out.size() < padded) out.append(Buffer::zeros(padded - out.size()));
  return out;
}

void Catalog::parse_log(const Buffer& log) {
  records_.clear();
  frames_.clear();
  end_ = 0;
  next_id_ = 1;
  std::uint64_t off = 0;
  while (off + 12 <= log.size()) {
    // The sliced buffers must outlive their readers (a ByteReader holds a
    // span into the buffer it was constructed from).
    const Buffer header_bytes = log.slice(off, 12);
    ByteReader header(header_bytes);
    if (header.u32() != kFrameMagic) break;  // zero tail / end of log
    const std::uint32_t frame_len = header.u32();
    const std::uint32_t payload_len = header.u32();
    if (frame_len < 12 + payload_len || off + frame_len > log.size())
      throw CrError("corrupt checkpoint catalog frame at offset " +
                    std::to_string(off));
    const Buffer payload_bytes = log.slice(off + 12, payload_len);
    ByteReader payload(payload_bytes);
    CheckpointRecord rec = decode_record(payload);
    next_id_ = std::max(next_id_, rec.id + 1);
    records_.push_back(std::move(rec));
    frames_.push_back({off, frame_len});
    off += frame_len;
  }
  end_ = off;
}

Task<Buffer> Catalog::read_all() {
  if (blob_client_) {
    const blob::BlobMeta meta = co_await blob_client_->stat(blob_id_);
    blob_version_ = meta.latest();
    if (blob_version_ == 0) co_return Buffer();
    const std::uint64_t size = meta.version(blob_version_).size;
    if (size == 0) co_return Buffer();
    co_return co_await blob_client_->read(blob_id_, blob_version_, 0, size);
  }
  const std::uint64_t size = co_await pvfs_client_->stat_size(cfg_.name);
  if (size == 0) co_return Buffer();
  co_return co_await pvfs_client_->read(pvfs_file_, 0, size);
}

Task<> Catalog::write_at(std::uint64_t offset, Buffer frame) {
  if (blob_client_) {
    std::vector<blob::Extent> extents;
    extents.push_back({offset, std::move(frame)});
    blob_version_ =
        co_await blob_client_->write_extents(blob_id_, std::move(extents));
    co_return;
  }
  co_await pvfs_client_->write(pvfs_file_, offset, std::move(frame));
}

Task<> Catalog::open() {
  if (opened_) co_return;
  if (blob_client_) {
    blob_id_ = co_await blob_client_->lookup_name(cfg_.name);
    if (blob_id_ == 0) {
      // First catalog on this repository: create the log blob (its own,
      // small chunk size — frames are chunk-aligned for in-place rewrites)
      // and publish its name so any later driver can discover it.
      blob_id_ = co_await blob_client_->create(cfg_.record_align);
      co_await blob_client_->bind_name(cfg_.name, blob_id_);
    }
  } else {
    bool missing = false;
    try {
      pvfs_file_ = co_await pvfs_client_->open(cfg_.name);
    } catch (const pfs::PvfsError&) {
      missing = true;
    }
    if (missing) pvfs_file_ = co_await pvfs_client_->create(cfg_.name);
  }
  parse_log(co_await read_all());
  opened_ = true;
}

Task<CheckpointRecord> Catalog::stage(CheckpointRecord rec) {
  co_await open();
  // Per-tenant catalog-record ceiling: admission is checked before any
  // durable write, so a rejected stage leaves the log untouched.
  if (blob_client_ != nullptr && home_store_ != nullptr) {
    const blob::BlobStore::TenantQuota& q =
        home_store_->tenant_quota(cfg_.tenant);
    if (q.max_catalog_records != 0 &&
        records_.size() >= q.max_catalog_records) {
      throw blob::QuotaExceededError(
          "tenant " + std::to_string(cfg_.tenant) + " catalog quota (" +
          std::to_string(q.max_catalog_records) +
          " records) exhausted — retire checkpoints before staging more");
    }
  }
  rec.id = next_id_;
  rec.state = RecordState::Staged;
  rec.created = cloud_->now();
  Buffer frame = encode_frame(rec, 0);
  const Frame slot{end_, frame.size()};
  Buffer replica = frame;
  co_await write_at(slot.offset, std::move(frame));
  // In-memory state follows the durable write (a caller killed mid-write
  // must leave the catalog exactly as the repository says).
  ++next_id_;
  end_ = slot.offset + slot.length;
  records_.push_back(rec);
  frames_.push_back(slot);
  if (federation::Fabric* fed = cloud_->federation();
      fed != nullptr && fed->enabled() && blob_client_ != nullptr) {
    co_await fed->replicate_catalog(cfg_.name, rec.id, std::move(replica),
                                    cfg_.client_node);
  }
  co_return rec;
}

Task<> Catalog::update(CheckpointRecord rec) {
  co_await open();
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].id != rec.id) continue;
    const Frame slot = frames_[i];
    Buffer frame = encode_frame(rec, slot.length);
    Buffer replica = frame;
    co_await write_at(slot.offset, std::move(frame));
    records_[i] = std::move(rec);
    if (federation::Fabric* fed = cloud_->federation();
        fed != nullptr && fed->enabled() && blob_client_ != nullptr) {
      co_await fed->replicate_catalog(cfg_.name, records_[i].id,
                                      std::move(replica), cfg_.client_node);
    }
    co_return;
  }
  throw CrError("update of unknown checkpoint record " +
                std::to_string(rec.id));
}

Task<std::vector<CheckpointRecord>> Catalog::list() {
  co_await open();
  // One catalog round-trip: listing is a control-plane read, not free.
  if (blob_client_) {
    (void)co_await blob_client_->stat(blob_id_);
  } else {
    (void)co_await pvfs_client_->stat_size(cfg_.name);
  }
  co_return records_;
}

Task<std::optional<CheckpointRecord>> Catalog::find(const Selector& sel) {
  co_await open();
  switch (sel.kind) {
    case Selector::Kind::ById:
      for (const auto& rec : records_) {
        if (rec.id == sel.id) co_return rec;
      }
      co_return std::nullopt;
    case Selector::Kind::Latest:
    case Selector::Kind::ByTag:
      for (std::size_t i = records_.size(); i > 0; --i) {
        const CheckpointRecord& rec = records_[i - 1];
        if (!rec.selectable()) continue;
        if (sel.kind == Selector::Kind::ByTag && rec.tag != sel.tag) continue;
        co_return rec;
      }
      co_return std::nullopt;
  }
  co_return std::nullopt;
}

Task<CheckpointRecord> Catalog::select(const Selector& sel) {
  const std::optional<CheckpointRecord> rec = co_await find(sel);
  if (!rec.has_value())
    throw CrError("no checkpoint matches selector " + sel.describe());
  if (!rec->selectable())
    throw CrError("checkpoint " + std::to_string(rec->id) + " is " +
                  record_state_name(rec->state) +
                  " — only complete checkpoints are selectable for restart");
  co_return *rec;
}

Task<> Catalog::rebuild() {
  if (!blob_client_)
    throw CrError("catalog rebuild requires the BlobCR backend");
  if (!opened_) throw CrError("catalog rebuild requires an opened catalog");
  // A fresh blob, not a new version of the old one: the old blob's chunk
  // tuples reference reclaimed chunks, and a partial in-place rewrite would
  // leave a log that half-reads. Rebinding the name makes the swap atomic
  // from a discovering driver's point of view.
  blob_id_ = co_await blob_client_->create(cfg_.record_align);
  blob_version_ = 0;
  Buffer log;
  frames_.clear();
  for (const CheckpointRecord& rec : records_) {
    Buffer frame = encode_frame(rec, 0);
    frames_.push_back({log.size(), frame.size()});
    log.append(std::move(frame));
  }
  end_ = log.size();
  if (log.size() != 0) {
    std::vector<blob::Extent> extents;
    extents.push_back({0, std::move(log)});
    blob_version_ =
        co_await blob_client_->write_extents(blob_id_, std::move(extents));
  }
  co_await blob_client_->bind_name(cfg_.name, blob_id_);
}

std::uint64_t Catalog::compact() {
  if (!blob_client_ || blob_id_ == 0 || blob_version_ <= 1) return 0;
  blob::GarbageCollector gc(*home_store_);
  return gc.collect(blob_id_, blob_version_).reclaimed_bytes;
}

Task<> Catalog::rehome_if_dead() {
  federation::Fabric* fed = cloud_->federation();
  if (blob_client_ == nullptr || fed == nullptr || !fed->enabled()) co_return;
  if (fed->alive(home_store_->config().zone)) co_return;
  // The home zone's store is gone: every chunk of the old log blob is
  // unreachable, so rebind the client to a survivor *before* any read —
  // open()'s read_all against dead providers would fail, not recover.
  home_store_ = fed->store(fed->first_live_zone());
  blob_client_ =
      std::make_unique<blob::BlobClient>(*home_store_, cfg_.client_node);
  blob_client_->set_tenant(cfg_.tenant);
  blob_id_ = 0;
  blob_version_ = 0;
  if (!opened_) {
    // A fresh driver after the loss never read the log. Recover the record
    // set from the federation's replicated frames (id order == append
    // order, so the reassembled log parses like the original).
    Buffer log;
    if (const auto* frames = fed->catalog_records(cfg_.name)) {
      for (const auto& [id, frame] : *frames) log.append(frame);
    }
    parse_log(log);
    opened_ = true;
  }
  co_await rebuild();
}

}  // namespace blobcr::cr
