// cr::Catalog: the durable checkpoint catalog. Records live *in the
// repository itself* — an append-only log of framed CheckpointRecords kept
// in a dedicated catalog blob (BlobCR backend, discovered through the
// version manager's named-blob registry) or in a well-known PVFS file (the
// qcow baselines). A freshly constructed Catalog — a new driver process
// after total loss, a Deployment that never took a checkpoint — re-reads
// the log and can list, inspect and restart from checkpoints it never took.
//
// Write model: stage() appends a new frame and issues the next monotonic
// CheckpointId; update() rewrites a record's frame in place (state
// transitions Staged -> Complete / Incomplete / Retired, snapshot-size
// refreshes after an async drain publishes). Frames are padded to the
// record alignment so an in-place rewrite replaces exactly the chunks the
// original frame occupied. In-memory state mutates only after the
// repository write completes, so a caller killed mid-write leaves the
// catalog exactly as durable as the repository says it is.
//
// One *live* writer per catalog name at a time (the driver); recovery is a
// fresh Catalog re-reading the log, never two writers appending
// concurrently.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "blob/client.h"
#include "cr/checkpoint.h"
#include "pfs/pvfs.h"
#include "sim/sim.h"

namespace blobcr::cr {

class Catalog {
 public:
  struct Config {
    /// Named-blob key (BlobCR) / file path (PVFS baselines). Multi-tenant
    /// drivers namespace this per job (cr::Session::Config::job), so each
    /// tenant lists and restarts only its own lineage.
    std::string name = "/blobcr/checkpoint-catalog";
    /// Frame padding; doubles as the catalog blob's chunk size, so every
    /// in-place frame rewrite is chunk-aligned.
    std::uint64_t record_align = 4096;
    /// Node the catalog client issues its repository requests from.
    net::NodeId client_node = 0;
    /// Tenant the catalog's repository requests run as.
    net::TenantId tenant = net::kDefaultTenant;
  };

  explicit Catalog(core::Cloud& cloud) : Catalog(cloud, Config()) {}
  Catalog(core::Cloud& cloud, Config cfg);

  /// Discovers (or creates) the repository-resident log and loads every
  /// record. Idempotent; all other operations ensure it ran.
  sim::Task<> open();
  bool opened() const { return opened_; }

  /// Appends a new record: issues the next CheckpointId, stamps the
  /// creation time, forces state = Staged, and durably writes the frame.
  /// Returns the record as written.
  sim::Task<CheckpointRecord> stage(CheckpointRecord rec);

  /// Rewrites an existing record's frame in place (matched by rec.id).
  sim::Task<> update(CheckpointRecord rec);

  /// All records, oldest first (one simulated catalog round-trip).
  sim::Task<std::vector<CheckpointRecord>> list();

  /// Resolves a selector without judging selectability: Latest/ByTag find
  /// the newest Complete (matching) record, ById finds the exact record in
  /// any state. nullopt when nothing matches.
  sim::Task<std::optional<CheckpointRecord>> find(const Selector& sel);

  /// Resolves a selector for restart. Throws CrError when nothing matches
  /// or when the matched record is not Complete (Staged/Incomplete records
  /// are never selectable — §3.2's "last *complete* global checkpoint").
  sim::Task<CheckpointRecord> select(const Selector& sel);

  /// In-process peek at the loaded records (no simulated cost) — GC
  /// bookkeeping and tests. Valid after open().
  const std::vector<CheckpointRecord>& records() const { return records_; }

  /// Drops superseded catalog blob versions (every append/rewrite published
  /// a new one; rewrites orphan their old frames' chunks). Returns
  /// reclaimed bytes. No-op on the PVFS backend (rewrites are in-place).
  std::uint64_t compact();

  /// Disaster recovery (cr::Session::scavenge): re-creates the durable log
  /// from the in-memory record set after a repository outage destroyed the
  /// old log's chunks. Writes every record into a *fresh* catalog blob in
  /// one commit and rebinds the catalog name to it, so a later driver
  /// discovers the rebuilt lineage exactly as it would the original.
  /// BlobCR backend only; requires an opened catalog.
  sim::Task<> rebuild();

  /// Federated zone loss: when the catalog's home zone store is dead,
  /// rebind to a surviving zone and rebuild the durable log there. A
  /// never-opened catalog (fresh driver after the loss) recovers its record
  /// set from the federation's replicated frames first, so survivors can
  /// still list and restart every checkpoint. No-op when the home zone is
  /// alive or federation is off.
  sim::Task<> rehome_if_dead();

  blob::BlobId catalog_blob() const { return blob_id_; }
  /// Store the durable log currently lives on (rehomes after zone loss).
  blob::BlobStore* home_store() const { return home_store_; }

 private:
  struct Frame {
    std::uint64_t offset = 0;  // byte offset of the frame in the log
    std::uint64_t length = 0;  // padded frame length
  };

  common::Buffer encode_frame(const CheckpointRecord& rec,
                              std::uint64_t pad_to) const;
  sim::Task<> write_at(std::uint64_t offset, common::Buffer frame);
  sim::Task<common::Buffer> read_all();
  void parse_log(const common::Buffer& log);

  core::Cloud* cloud_;
  Config cfg_;
  bool opened_ = false;
  blob::BlobStore* home_store_ = nullptr;  // where the log blob lives

  // Exactly one of the two persistence clients is used, by backend.
  std::unique_ptr<blob::BlobClient> blob_client_;
  blob::BlobId blob_id_ = 0;
  blob::VersionId blob_version_ = 0;  // latest published catalog version
  std::unique_ptr<pfs::PvfsClient> pvfs_client_;
  pfs::FileId pvfs_file_ = 0;

  std::vector<CheckpointRecord> records_;  // append order == id order
  std::vector<Frame> frames_;              // parallel to records_
  std::uint64_t end_ = 0;                  // append cursor
  CheckpointId next_id_ = 1;
};

}  // namespace blobcr::cr
