// Umbrella public API for the BlobCR reproduction.
#pragma once

#include "core/cloud.h"          // IWYU pragma: export
#include "core/mirror_device.h"  // IWYU pragma: export
#include "cr/catalog.h"          // IWYU pragma: export
#include "cr/checkpoint.h"       // IWYU pragma: export
#include "cr/session.h"          // IWYU pragma: export
#include "core/proxy.h"          // IWYU pragma: export
#include "core/qcow_proxy.h"     // IWYU pragma: export
#include "core/rest_proxy.h"     // IWYU pragma: export
#include "core/wire.h"           // IWYU pragma: export
#include "mpi/blcr.h"            // IWYU pragma: export
#include "mpi/coordinated.h"     // IWYU pragma: export
#include "mpi/mpi.h"             // IWYU pragma: export
