#include "core/cloud.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/strutil.h"
#include "flush/flush_agent.h"
#include "img/mem_device.h"
#include "redundancy/manager.h"
#include "reduce/digest_index.h"
#include "reduce/reducer.h"
#include "sim/when_all.h"
#include "vm/guest_os.h"

namespace blobcr::core {

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::BlobCR:
      return "BlobCR";
    case Backend::Qcow2Disk:
      return "qcow2-disk";
    case Backend::Qcow2Full:
      return "qcow2-full";
  }
  return "?";
}

// --- Cloud -------------------------------------------------------------------

Cloud::Cloud(CloudConfig cfg) : cfg_(std::move(cfg)) {
  // Deprecated-alias resolution: a non-default CloudConfig::
  // restart_prefetch_budget forwards into the admission plane's config,
  // but only when qos.restart_prefetch_budget itself was left at its
  // default (the new knob wins when both are set).
  {
    constexpr std::uint64_t kDefaultBudget = 64 * common::kMB;
    if (cfg_.restart_prefetch_budget != kDefaultBudget &&
        cfg_.qos.restart_prefetch_budget == kDefaultBudget) {
      cfg_.qos.restart_prefetch_budget = cfg_.restart_prefetch_budget;
    }
  }
  // Incoherent QoS setups fail here for every backend (the BlobCR stores
  // validate again when their admission planes construct).
  cfg_.qos.validate();
  // Node layout: [0, C) compute nodes, then service nodes. With federation
  // the compute pool splits into Z contiguous zone slabs and each zone gets
  // its own service-node set; Z == 1 reproduces the classic layout (and
  // node numbering) exactly.
  const std::size_t c = cfg_.compute_nodes;
  const std::size_t zones =
      cfg_.backend == Backend::BlobCR
          ? std::max<std::size_t>(1, cfg_.federation.zones)
          : 1;
  if (zones > c) {
    throw std::invalid_argument(common::strf(
        "federation of %zu zones needs at least one compute node per zone "
        "(%zu available)",
        zones, c));
  }
  std::size_t total = c;
  struct ZoneNodes {
    net::NodeId vm_mgr = 0;
    net::NodeId pm = 0;
    std::vector<net::NodeId> meta;
  };
  std::vector<ZoneNodes> znodes(zones);
  const std::size_t meta_per_zone =
      std::max<std::size_t>(1, cfg_.metadata_nodes / zones);
  for (std::size_t z = 0; z < zones; ++z) {
    znodes[z].vm_mgr = static_cast<net::NodeId>(total++);
    znodes[z].pm = static_cast<net::NodeId>(total++);
    const std::size_t meta =
        zones == 1 ? cfg_.metadata_nodes : meta_per_zone;
    for (std::size_t i = 0; i < meta; ++i) {
      znodes[z].meta.push_back(static_cast<net::NodeId>(total++));
    }
  }
  const net::NodeId pvfs_meta = static_cast<net::NodeId>(total++);

  net::Fabric::Config fcfg;
  fcfg.node_count = total;
  fcfg.nic_bandwidth_bps = cfg_.nic_bandwidth_bps;
  fcfg.latency = cfg_.net_latency;
  fabric_ = std::make_unique<net::Fabric>(sim_, fcfg);

  storage::Disk::Config dcfg;
  dcfg.bandwidth_bps = cfg_.disk_bandwidth_bps;
  dcfg.position_cost = cfg_.disk_position_cost;
  disks_.reserve(total);
  streams_.resize(total);
  for (std::size_t n = 0; n < total; ++n) {
    disks_.push_back(std::make_unique<storage::Disk>(
        sim_, common::strf("disk%zu", n), dcfg));
  }

  if (cfg_.backend == Backend::BlobCR) {
    const std::size_t slab = c / zones;
    for (std::size_t z = 0; z < zones; ++z) {
      const std::size_t begin = z * slab;
      const std::size_t end = (z + 1 == zones) ? c : (z + 1) * slab;
      blob::BlobStore::Config bcfg;
      bcfg.version_manager_node = znodes[z].vm_mgr;
      bcfg.provider_manager_node = znodes[z].pm;
      bcfg.metadata_nodes = znodes[z].meta;
      for (std::size_t n = begin; n < end; ++n) {
        bcfg.data_providers.push_back({static_cast<net::NodeId>(n),
                                       disks_[n].get(),
                                       streams_[n].next()});
      }
      bcfg.default_chunk_size = cfg_.chunk_size;
      bcfg.replication = cfg_.replication;
      bcfg.qos = cfg_.qos;
      bcfg.version_shards = cfg_.version_shards;
      bcfg.zone = static_cast<std::uint32_t>(z);
      auto store = std::make_unique<blob::BlobStore>(sim_, *fabric_, bcfg);
      if (z > 0) {
        // Disjoint id ranges per zone: a blob/chunk id decodes to its home
        // zone, and replica copies can keep their origin ChunkId anywhere.
        store->version_manager().seed_blob_ids(
            1 + (static_cast<blob::BlobId>(z)
                 << federation::Fabric::kBlobZoneShift));
        store->chunk_id_counter() =
            1 + (static_cast<blob::ChunkId>(z)
                 << federation::Fabric::kChunkZoneShift);
        store->node_ref_counter() =
            1 + (static_cast<blob::NodeRef>(z)
                 << federation::Fabric::kChunkZoneShift);
      }
      if (z == 0) {
        blob_ = std::move(store);
      } else {
        zone_stores_.push_back(std::move(store));
      }
    }
    if (zones > 1) {
      federation_ = std::make_unique<federation::Fabric>(sim_, *fabric_,
                                                         cfg_.federation);
      for (std::size_t z = 0; z < zones; ++z) {
        const std::size_t begin = z * slab;
        const std::size_t end = (z + 1 == zones) ? c : (z + 1) * slab;
        federation_->add_zone(blob_store(static_cast<std::uint32_t>(z)),
                              static_cast<net::NodeId>(begin),
                              static_cast<net::NodeId>(end));
      }
    }
  } else {
    pfs::PvfsCluster::Config pcfg;
    pcfg.meta_node = pvfs_meta;
    for (std::size_t n = 0; n < c; ++n) {
      pcfg.io_servers.push_back(
          {static_cast<net::NodeId>(n), disks_[n].get()});
    }
    pcfg.stripe_size = cfg_.pvfs_stripe;
    pvfs_ = std::make_unique<pfs::PvfsCluster>(sim_, *fabric_, pcfg);
  }
}

Cloud::~Cloud() {
  // Kill any still-live processes while the services they reference exist.
  sim_.shutdown();
}

void Cloud::run(sim::Task<> body) {
  auto p = sim_.spawn("driver", std::move(body));
  sim_.run();
  if (p->error()) std::rethrow_exception(p->error());
  if (!p->finished()) {
#ifdef BLOBCR_DEBUG_STALL
    for (const auto& pr : sim_.debug_processes()) {
      if (pr && !pr->finished()) fprintf(stderr, "STALLED: %s\n", pr->name().c_str());
    }
#endif
    // The queue drained with the driver still blocked: some process it was
    // waiting on died or deadlocked. Surface any failed process's error.
    sim_.shutdown();
    throw std::runtime_error(
        "simulation stalled: driver blocked when the event queue drained "
        "(a guest process likely failed before reaching a barrier)");
  }
}

sim::Task<> Cloud::provision_base_image() {
  if (base_uploaded_) co_return;
  // Author the image offline.
  img::MemDevice author(cfg_.os.image_size);
  co_await vm::GuestOs::build_image(author, cfg_.os);
  base_content_ = author.content();

  // Upload from the client side (node 0 stands in for the cloud client's
  // entry point; upload time is part of provisioning, not of any figure).
  if (cfg_.backend == Backend::BlobCR) {
    // Chunk-aligned extents; FS regions are 256 KiB-aligned so real
    // metadata never shares a chunk with phantom data.
    std::vector<blob::Extent> extents;
    const std::uint64_t cs = cfg_.chunk_size;
    const std::uint64_t end = base_content_.size();  // last written byte
    std::uint64_t run_begin = 0;
    bool in_run = false;
    common::Buffer run_data;
    for (std::uint64_t off = 0; off < end; off += cs) {
      const std::uint64_t len = std::min(cs, end - off);
      common::Buffer piece = base_content_.read(off, len);
      if (!in_run) {
        run_begin = off;
        run_data = std::move(piece);
        in_run = true;
      } else {
        run_data.overwrite(off - run_begin, piece);
      }
      if (run_data.size() >= 64 * cs) {  // bound extent size
        extents.push_back({run_begin, std::move(run_data)});
        run_data = common::Buffer();
        in_run = false;
      }
    }
    if (in_run) extents.push_back({run_begin, std::move(run_data)});
    // One copy of the base image per zone, uploaded from the zone's first
    // compute node: a fresh instance clones its zone's copy, so its later
    // commits stay zone-local (the federation's placement affinity).
    const std::size_t zone_count = zones();
    const std::size_t slab = cfg_.compute_nodes / zone_count;
    base_blobs_.clear();
    for (std::uint32_t z = 0; z < zone_count; ++z) {
      blob::BlobStore* store = blob_store(z);
      blob::BlobClient client(*store,
                              static_cast<net::NodeId>(z * slab));
      const blob::BlobId blob = co_await client.create(cfg_.chunk_size);
      std::vector<blob::Extent> copy = extents;
      (void)co_await client.write_extents(blob, std::move(copy));
      base_blobs_.push_back(blob);
    }
    base_blob_ = base_blobs_.front();
  } else {
    base_pvfs_path_ = "/images/base.raw";
    pfs::PvfsClient client(*pvfs_, compute_node(0));
    const pfs::FileId file = co_await client.create(base_pvfs_path_);
    // Ship the authored extents as-is (raw image on PVFS).
    std::uint64_t off = 0;
    const std::uint64_t total = base_content_.size();
    constexpr std::uint64_t kPiece = 16 * 1024 * 1024;
    while (off < total) {
      const std::uint64_t len = std::min(kPiece, total - off);
      co_await client.write(file, off, base_content_.read(off, len));
      off += len;
    }
  }
  base_uploaded_ = true;
}

net::TenantId Cloud::register_tenant(const std::string& name, double weight) {
  if (blob_ != nullptr) {
    // Same registration order on every zone store => the same TenantId
    // everywhere, so one id tags a job's requests across the federation.
    const net::TenantId id = blob_->tenants().register_tenant(name, weight);
    for (auto& s : zone_stores_) s->tenants().register_tenant(name, weight);
    return id;
  }
  // PVFS baselines have no QoS-enforcing repository; ids still namespace
  // per-job artifacts and counters.
  return ++pvfs_tenant_seq_;
}

void Cloud::set_tenant_quota(net::TenantId t, blob::BlobStore::TenantQuota q) {
  if (blob_ != nullptr) blob_->set_tenant_quota(t, q);
  for (auto& s : zone_stores_) s->set_tenant_quota(t, q);
}

reduce::ChunkDigestIndex* Cloud::shared_digest_index() {
  if (blob_ == nullptr) return nullptr;
  if (shared_index_ == nullptr) {
    shared_index_ = std::make_unique<reduce::ChunkDigestIndex>(
        cfg_.reduction.index_shards);
    shared_index_->attach_service(
        sim_, cfg_.reduction.index_lookup_cost,
        cfg_.qos.enabled ? &blob_->tenants() : nullptr);
    // Repository-lifetime hooks (one set, owned here): entries must drop
    // when the GC reclaims chunks, epoch logging must open/close with the
    // concurrent sweep, and logged hits must count as pinned — all even
    // while no deployment (and thus no reducer) is alive, e.g. a retention
    // sweep between jobs.
    // Every zone's store shares the one index — its GC must invalidate
    // entries and its sweeps must see epoch hits just like zone 0's.
    for (std::uint32_t z = 0; z < zones(); ++z) {
      blob::BlobStore* s = blob_store(z);
      s->add_chunk_reclaim_hook(
          [index =
               shared_index_.get()](const std::vector<blob::ChunkId>& ids) {
            index->forget_chunks(ids);
          });
      s->add_gc_epoch_hook([index = shared_index_.get()](bool open) {
        if (open) {
          index->open_gc_epoch();
        } else {
          index->close_gc_epoch();
        }
      });
      s->add_chunk_pin_source(
          [index = shared_index_.get()](
              std::unordered_set<blob::ChunkId>& out) {
            index->collect_epoch_hits(out);
          });
    }
    if (federation_ != nullptr) {
      federation_->set_digest_index(shared_index_.get());
    }
  }
  return shared_index_.get();
}

redundancy::Manager* Cloud::redundancy() {
  if (blob_ == nullptr || !cfg_.redundancy.enabled) return nullptr;
  if (redundancy_ == nullptr) {
    redundancy_ = std::make_unique<redundancy::Manager>(
        sim_, *fabric_, cfg_.redundancy,
        net::Fabric::Shape{cfg_.peer_latency, cfg_.peer_bandwidth_bps});
    // One repository-lifetime reclaim hook: GC reclaim of a member chunk
    // invalidates its whole parity group (no orphaned parity blocks), even
    // while no deployment is alive — e.g. a retention sweep between jobs.
    for (std::uint32_t z = 0; z < zones(); ++z) {
      blob_store(z)->add_chunk_reclaim_hook(
          [mgr = redundancy_.get()](const std::vector<blob::ChunkId>& ids) {
            mgr->forget_chunks(ids);
          });
    }
  }
  return redundancy_.get();
}

void Cloud::fail_node(net::NodeId node) {
  // Provider slabs are disjoint across zones — at most one store reacts.
  if (blob_) blob_->fail_node(node);
  for (auto& s : zone_stores_) s->fail_node(node);
}

std::uint64_t Cloud::repository_bytes() const {
  if (blob_) {
    std::uint64_t total =
        blob_->total_stored_bytes() + blob_->total_meta_bytes();
    for (const auto& s : zone_stores_) {
      total += s->total_stored_bytes() + s->total_meta_bytes();
    }
    return total;
  }
  if (pvfs_) return pvfs_->total_stored_bytes();
  return 0;
}

// --- Deployment -----------------------------------------------------------------

Deployment::Deployment(Cloud& cloud, std::size_t instances,
                       std::size_t node_offset)
    : Deployment(cloud, instances, Options{node_offset, net::kDefaultTenant,
                                           std::nullopt}) {}

Deployment::Deployment(Cloud& cloud, std::size_t instances,
                       const Options& opts)
    : cloud_(&cloud),
      count_(instances),
      node_offset_(opts.node_offset),
      tenant_(opts.tenant),
      flush_cfg_(opts.flush.has_value() ? *opts.flush : cloud.config().flush),
      seq_(cloud.next_deployment_seq()) {
  PrefetchBus::Config bcfg;
  bcfg.hint_latency = cloud.config().hint_latency;
  bcfg.peer_shape = net::Fabric::Shape{cloud.config().peer_latency,
                                       cloud.config().peer_bandwidth_bps};
  bus_ = std::make_unique<PrefetchBus>(cloud.simulation(), bcfg);
  if (cloud.config().backend == Backend::BlobCR &&
      cloud.config().reduction.enabled) {
    // The digest index is repository-scoped by default — concurrent jobs
    // dedup against each other's committed chunks — while the reducer
    // (stats, epochs, in-flight pins) stays deployment-scoped.
    // One reducer per zone: the reducer's store drives dedup's preferred
    // zone, in-flight pin registration and the zone-local Ref check, so it
    // must match the store a mirror actually commits against.
    for (std::uint32_t z = 0; z < cloud.zones(); ++z) {
      reducers_.push_back(std::make_unique<reduce::Reducer>(
          *cloud.blob_store(z), cloud.config().reduction,
          cloud.config().reduction.shared_index ? cloud.shared_digest_index()
                                                : nullptr,
          tenant_));
    }
  }
  mpi_ = std::make_unique<mpi::MpiWorld>(cloud.simulation(), cloud.fabric());
  validate_placement();
}

void Deployment::validate_placement() const {
  const std::size_t c = cloud_->config().compute_nodes;
  if (count_ > c) {
    // compute_node() wraps modulo the pool, so a deployment wider than the
    // pool would silently co-locate two instances on one physical node —
    // breaking the redundancy tier's distinct-node durability assumption
    // and corrupting peer-vs-repository byte accounting. Refuse loudly.
    throw std::invalid_argument(common::strf(
        "deployment of %zu instances cannot be placed on %zu compute nodes "
        "without co-locating two instances on one node",
        count_, c));
  }
}

Deployment::~Deployment() {
  kill_restart_scheduler();
  destroy_all();
}

void Deployment::build_instance_fresh(std::size_t i, net::NodeId node) {
  auto inst = std::make_unique<Instance>();
  inst->index = i;
  inst->node = node;
  Cloud& cloud = *cloud_;
  const CloudConfig& cfg = cloud.config();

  if (cfg.backend == Backend::BlobCR) {
    MirrorDevice::Config mcfg;
    mcfg.capacity = cloud.image_size();
    mcfg.flush = flush_cfg_;
    mcfg.tenant = tenant_;
    mcfg.redundancy = cloud.redundancy();
    mcfg.federation = cloud.federation();
    // Placement affinity: a fresh instance clones its own zone's base image
    // so its commits land in the zone-local repository.
    const std::uint32_t zone = cloud.zone_of_node(node);
    blob::BlobStore* store = cloud.blob_store(zone);
    if (store == nullptr) store = cloud.blob_store();
    inst->mirror = std::make_unique<MirrorDevice>(
        *store, node, cloud.disk(node), cloud.next_disk_stream(node),
        cloud.base_blob(zone), 1, mcfg,
        cfg.adaptive_prefetch ? bus_.get() : nullptr, reducer_for_store(store),
        cloud.chunk_cache(node));
    inst->proxy = std::make_unique<CheckpointProxy>(
        cloud.simulation(), cloud.fabric(), node, cfg.proxy_auth_cost);
  } else {
    // The qcow chain is opened inside boot_instance (needs a coroutine).
    inst->qdisk_proxy = std::make_unique<QcowDiskProxy>(
        cloud.simulation(), cloud.fabric(), node, cfg.proxy_auth_cost);
    inst->qfull_proxy = std::make_unique<QcowFullProxy>(
        cloud.simulation(), cloud.fabric(), node, cfg.proxy_auth_cost);
  }
  instances_.push_back(std::move(inst));
}

sim::Task<> Deployment::boot_instance(std::size_t i) {
  Instance& inst = *instances_.at(i);
  Cloud& cloud = *cloud_;
  const CloudConfig& cfg = cloud.config();

  if (cfg.backend != Backend::BlobCR && !inst.qcow) {
    // qemu-img create -b <base-on-pvfs> <local qcow2>.
    auto backing = co_await pfs::PvfsFileStore::open(
        *cloud.pvfs(), inst.node, cloud.base_pvfs_path(), false);
    inst.qcow_backing = std::move(backing);
    inst.qcow_container = std::make_unique<storage::LocalFile>(
        cloud.disk(inst.node), cloud.next_disk_stream(inst.node));
    img::QcowImage::Config qcfg;
    qcfg.cluster_size = cfg.qcow_cluster_size;
    qcfg.virtual_size = cloud.image_size();
    inst.qcow = std::make_unique<img::QcowImage>(
        *inst.qcow_container, inst.qcow_backing.get(), qcfg);
    inst.qcow_dev = std::make_unique<img::QcowDevice>(*inst.qcow);
  }

  vm::VmConfig vmc = cfg.vm;
  vmc.name = common::strf("vm%zu", inst.index);
  inst.vm = std::make_unique<vm::VmInstance>(cloud.simulation(), inst.node,
                                             inst.device(), vmc);
  co_await vm::GuestOs::boot(*inst.vm, cfg.os);
}

sim::Task<> Deployment::deploy_and_boot() {
  assert(cloud_->provisioned() && "provision_base_image() first");
  instances_.clear();
  for (std::size_t i = 0; i < count_; ++i) {
    build_instance_fresh(i, cloud_->compute_node(node_offset_ + i));
  }
  std::vector<sim::Task<>> boots;
  boots.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i) boots.push_back(boot_instance(i));
  co_await sim::when_all(cloud_->simulation(), std::move(boots));
}

sim::Task<InstanceSnapshot> Deployment::snapshot_instance(std::size_t i) {
  Instance& inst = *instances_.at(i);
  const CloudConfig& cfg = cloud_->config();
  InstanceSnapshot snap;
  snap.instance = i;
  snap.backend = cfg.backend;
  ++inst.snapshot_counter;

  if (cfg.backend == Backend::BlobCR) {
    const CheckpointProxy::Result r =
        co_await inst.proxy->request_checkpoint(*inst.vm, *inst.mirror);
    snap.image = r.image;
    snap.version = r.version;
    snap.vm_downtime = r.vm_downtime;
    // Snapshot size: incremental chunk payload + new metadata. A
    // provisional (async) version doesn't know its size yet — the record
    // fills in when the drain publishes.
    const blob::BlobMeta& meta =
        cloud_->store_of_blob(r.image)->version_manager().peek(r.image);
    if (r.version != 0) {
      const blob::VersionInfo& v = meta.version(r.version);
      if (!v.pending) snap.bytes = v.new_chunk_bytes + v.new_meta_bytes;
    }
  } else if (cfg.backend == Backend::Qcow2Disk) {
    const std::string path = common::strf(
        "/ckpt/d%llu_inst%zu_v%llu.qcow2",
        static_cast<unsigned long long>(seq_), i,
        static_cast<unsigned long long>(inst.snapshot_counter));
    const QcowSnapshotResult r = co_await inst.qdisk_proxy->request_checkpoint(
        *inst.vm, *inst.qcow, *inst.qcow_container, *cloud_->pvfs(), path);
    snap.pvfs_path = r.pvfs_path;
    snap.qcow_state = r.state;
    snap.bytes = r.bytes;
    snap.vm_downtime = r.vm_downtime;
  } else {
    const std::string path = common::strf(
        "/ckpt/d%llu_inst%zu_full_v%llu.qcow2",
        static_cast<unsigned long long>(seq_), i,
        static_cast<unsigned long long>(inst.snapshot_counter));
    const QcowSnapshotResult r = co_await inst.qfull_proxy->request_checkpoint(
        *inst.vm, *inst.qcow, *inst.qcow_container, *cloud_->pvfs(), path,
        inst.last_snapshot.pvfs_path);
    snap.pvfs_path = r.pvfs_path;
    snap.qcow_state = r.state;
    snap.bytes = r.bytes;
    snap.vm_downtime = r.vm_downtime;
  }
  inst.last_snapshot = snap;
  co_return snap;
}

sim::Task<GlobalCheckpoint> Deployment::checkpoint_all() {
  auto result = std::make_shared<GlobalCheckpoint>();
  result->snapshots.resize(count_);
  std::vector<sim::Task<>> tasks;
  tasks.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    tasks.push_back(
        [](Deployment* self, std::size_t idx,
           std::shared_ptr<GlobalCheckpoint> out) -> sim::Task<> {
          out->snapshots[idx] = co_await self->snapshot_instance(idx);
        }(this, i, result));
  }
  co_await sim::when_all(cloud_->simulation(), std::move(tasks));
  co_return *result;
}

GlobalCheckpoint Deployment::collect_last_snapshots() const {
  GlobalCheckpoint ckpt;
  for (const auto& inst : instances_) {
    InstanceSnapshot snap = inst->last_snapshot;
    // An async snapshot recorded while still provisional has bytes == 0;
    // once the drain published, the version record knows the size — refresh
    // so Fig4/Table1-style accounting sees drained snapshots.
    if (snap.backend == Backend::BlobCR && snap.image != 0 &&
        snap.version != 0 && snap.bytes == 0 &&
        cloud_->store_of_blob(snap.image) != nullptr &&
        cloud_->store_of_blob(snap.image)->version_manager().exists(
            snap.image)) {
      const blob::BlobMeta& meta =
          cloud_->store_of_blob(snap.image)->version_manager().peek(snap.image);
      if (snap.version <= meta.versions.size()) {
        const blob::VersionInfo& v = meta.version(snap.version);
        if (!v.pending) snap.bytes = v.new_chunk_bytes + v.new_meta_bytes;
      }
    }
    ckpt.snapshots.push_back(std::move(snap));
  }
  return ckpt;
}

void Deployment::destroy_all() {
  for (auto& inst : instances_) {
    if (inst && inst->vm) inst->vm->destroy();
  }
}

void Deployment::forget_node_caches() {
  bus_->drop_all_holders();
  cloud_->reset_chunk_caches();
  // Every cache was emptied, so every parity group's payloads and blocks
  // are gone with them.
  if (redundancy::Manager* mgr = cloud_->redundancy()) mgr->drop_all();
}

void Deployment::fail_instance(std::size_t i) {
  Instance& inst = *instances_.at(i);
  inst.failed = true;
  if (inst.vm) inst.vm->destroy();
  // Fail-stop takes the node's drain agent down with it: an in-flight
  // drain dies mid-stage (its pins and index entries are withdrawn as the
  // frame unwinds) and staged generations are lost.
  if (inst.mirror && inst.mirror->flush_agent() != nullptr) {
    inst.mirror->flush_agent()->fail_stop();
  }
  // The node's decoded-chunk cache dies with the node: peers must not be
  // offered copies a dead machine can no longer serve, and a replacement
  // instance later placed on this node id must come up cold.
  bus_->drop_node(inst.node);
  if (DecodedChunkCache* cache = cloud_->chunk_cache(inst.node)) {
    cache->clear();
  }
  // Open parity groups touching the node die with it, as do sealed groups
  // whose parity *holder* it was (their blocks are gone with the cache);
  // sealed groups where it was only a member stay — rebuilding this node's
  // members is exactly what the tier is for.
  if (redundancy::Manager* mgr = cloud_->redundancy()) mgr->drop_node(inst.node);
  cloud_->fail_node(inst.node);
}

bool Deployment::flush_enabled() const {
  return cloud_->config().backend == Backend::BlobCR && flush_cfg_.enabled;
}

sim::Task<> Deployment::wait_drained(std::size_t i) {
  Instance& inst = *instances_.at(i);
  if (inst.mirror) co_await inst.mirror->wait_drained();
}

sim::Task<> Deployment::build_instance_from_snapshot(std::size_t i,
                                                     net::NodeId node,
                                                     InstanceSnapshot snap,
                                                     bool adopt_image) {
  if (restart_probe_) restart_probe_(i);
  auto inst = std::make_unique<Instance>();
  inst->index = i;
  inst->node = node;
  inst->last_snapshot = snap;
  inst->snapshot_counter = 0;
  Cloud& cloud = *cloud_;
  const CloudConfig& cfg = cloud.config();

  if (cfg.backend == Backend::BlobCR) {
    // Federated restart: if the snapshot's home zone died, resolve the
    // tuple to a survivor-zone adoption of the replicated manifest before
    // the mirror binds a store. The instance records the *resolved* tuple
    // so later restarts and retention act on the adopted lineage.
    if (snap.image != 0 && snap.version != 0 &&
        cloud.federation() != nullptr && cloud.federation()->enabled()) {
      const auto resolved = co_await cloud.federation()->resolve_restart(
          snap.image, snap.version, node, tenant_);
      snap.image = resolved.first;
      snap.version = resolved.second;
      inst->last_snapshot.image = snap.image;
      inst->last_snapshot.version = snap.version;
    }
    MirrorDevice::Config mcfg;
    mcfg.capacity = cloud.image_size();
    mcfg.flush = flush_cfg_;
    mcfg.tenant = tenant_;
    mcfg.redundancy = cloud.redundancy();
    mcfg.federation = cloud.federation();
    blob::BlobStore* store = cloud.store_of_blob(snap.image);
    if (store == nullptr) store = cloud.blob_store();
    inst->mirror = std::make_unique<MirrorDevice>(
        *store, node, cloud.disk(node), cloud.next_disk_stream(node),
        snap.image, snap.version, mcfg,
        cfg.adaptive_prefetch ? bus_.get() : nullptr, reducer_for_store(store),
        cloud.chunk_cache(node));
    // Subsequent checkpoints land in the same checkpoint image — except for
    // an elastic clone (M > N), which shares its source tuple with another
    // instance and must derive a fresh image on its first commit instead.
    if (adopt_image) inst->mirror->set_checkpoint_blob(snap.image, snap.version);
    inst->proxy = std::make_unique<CheckpointProxy>(
        cloud.simulation(), cloud.fabric(), node, cfg.proxy_auth_cost);
  } else {
    // The snapshot file is opened straight through the PVFS mount.
    auto backing = co_await pfs::PvfsFileStore::open(
        *cloud.pvfs(), node, cloud.base_pvfs_path(), false);
    inst->qcow_backing = std::move(backing);
    auto container = co_await pfs::PvfsFileStore::open(
        *cloud.pvfs(), node, snap.pvfs_path, false);
    inst->qcow_container = std::move(container);
    img::QcowImage::Config qcfg;
    qcfg.cluster_size = cfg.qcow_cluster_size;
    qcfg.virtual_size = cloud.image_size();
    inst->qcow = std::make_unique<img::QcowImage>(
        *inst->qcow_container, inst->qcow_backing.get(), qcfg);
    co_await inst->qcow->open_existing(snap.qcow_state);
    inst->qcow_dev = std::make_unique<img::QcowDevice>(*inst->qcow);
    inst->qdisk_proxy = std::make_unique<QcowDiskProxy>(
        cloud.simulation(), cloud.fabric(), node, cfg.proxy_auth_cost);
    inst->qfull_proxy = std::make_unique<QcowFullProxy>(
        cloud.simulation(), cloud.fabric(), node, cfg.proxy_auth_cost);
  }

  vm::VmConfig vmc = cfg.vm;
  vmc.name = common::strf("vm%zu-r", i);
  inst->vm = std::make_unique<vm::VmInstance>(cloud.simulation(), node,
                                              inst->device(), vmc);
  instances_[i] = std::move(inst);

  if (cfg.backend == Backend::Qcow2Full) {
    // Resume from the full snapshot: load the VM state, no reboot.
    Instance& ref = *instances_[i];
    (void)co_await ref.qcow->load_vm_state();
    co_await cloud.simulation().delay(500 * sim::kMillisecond);  // resume cpu
    // The resumed guest's file system, re-mounted from the virtual disk.
    // (The model does not serialize the guest page cache into the RAM
    // snapshot, so unsynced dirty pages do not survive a full-VM resume.)
    ref.vm->adopt_fs(co_await guestfs::SimpleFs::mount(ref.device()));
  } else {
    co_await vm::GuestOs::boot(*instances_[i]->vm, cfg.os);
  }
}

void Deployment::kill_restart_scheduler() {
  if (restart_scheduler_ && !restart_scheduler_->finished()) {
    restart_scheduler_->kill();
  }
  restart_scheduler_ = nullptr;
}

void Deployment::prepare_restart(std::size_t count, std::size_t node_offset) {
  kill_restart_scheduler();  // it references the mirrors cleared below
  destroy_all();
  // Fresh namespace for post-restart snapshot files.
  seq_ = cloud_->next_deployment_seq();
  node_offset_ = node_offset;
  count_ = count;
  validate_placement();
  instances_.clear();
  instances_.resize(count_);
}

void Deployment::spawn_restart_scheduler() {
  // Restart scheduler: resolve every attached mirror's snapshot to chunk
  // identity tuples and start popularity-ordered background prefetch
  // (most-shared chunks first), so one repository fetch per distinct chunk
  // feeds the whole deployment through peer copies while the guests
  // restore. The bus iterates ALL attached mirrors — elastic shrink's
  // attached data volumes are in the popularity order automatically. Runs
  // as a background process — control-plane resolution overlaps the
  // restore instead of serializing inside the restart window.
  const CloudConfig& cfg = cloud_->config();
  if (cfg.backend == Backend::BlobCR && cfg.adaptive_prefetch &&
      cfg.qos.restart_prefetch_budget > 0) {
    restart_scheduler_ = cloud_->simulation().spawn(
        "restart-scheduler",
        bus_->schedule_restart_prefetch(cfg.qos.restart_prefetch_budget));
  }
}

sim::Task<> Deployment::restart_from(const GlobalCheckpoint& ckpt,
                                     std::size_t node_offset) {
  prepare_restart(ckpt.snapshots.size(), node_offset);
  std::vector<sim::Task<>> boots;
  boots.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    boots.push_back(build_instance_from_snapshot(
        i, cloud_->compute_node(node_offset + i), ckpt.snapshots[i]));
  }
  co_await sim::when_all(cloud_->simulation(), std::move(boots));
  spawn_restart_scheduler();
}

sim::Task<> Deployment::restart_from(const RestartPlan& plan,
                                     std::size_t node_offset) {
  prepare_restart(plan.instances.size(), node_offset);
  std::vector<sim::Task<>> boots;
  boots.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    boots.push_back(build_instance_from_plan(
        i, cloud_->compute_node(node_offset + i), plan.instances[i]));
  }
  co_await sim::when_all(cloud_->simulation(), std::move(boots));
  spawn_restart_scheduler();
}

sim::Task<> Deployment::build_instance_from_plan(std::size_t i,
                                                 net::NodeId node,
                                                 const InstancePlan& plan) {
  co_await build_instance_from_snapshot(i, node, plan.boot,
                                        /*adopt_image=*/!plan.fresh_image);
  // Extra shards (elastic M < N) come up as attached data volumes on the
  // same node, served by the same restart data plane as the boot device.
  Instance& inst = *instances_.at(i);
  Cloud& cloud = *cloud_;
  const CloudConfig& cfg = cloud.config();
  for (const InstanceSnapshot& src : plan.attached) {
    auto vol = std::make_unique<AttachedVolume>();
    vol->source = src;
    if (cfg.backend == Backend::BlobCR) {
      InstanceSnapshot resolved = src;
      if (resolved.image != 0 && resolved.version != 0 &&
          cloud.federation() != nullptr && cloud.federation()->enabled()) {
        const auto r = co_await cloud.federation()->resolve_restart(
            resolved.image, resolved.version, node, tenant_);
        resolved.image = r.first;
        resolved.version = r.second;
        vol->source = resolved;
      }
      MirrorDevice::Config acfg;
      acfg.capacity = cloud.image_size();
      // Nothing commits through a data volume: no async drain, but the
      // parity tier still protects chunks its fetches seed into the cache.
      acfg.flush = flush::FlushConfig{};
      acfg.tenant = tenant_;
      acfg.redundancy = cloud.redundancy();
      acfg.federation = cloud.federation();
      blob::BlobStore* store = cloud.store_of_blob(resolved.image);
      if (store == nullptr) store = cloud.blob_store();
      vol->mirror = std::make_unique<MirrorDevice>(
          *store, node, cloud.disk(node), cloud.next_disk_stream(node),
          resolved.image, resolved.version, acfg,
          cfg.adaptive_prefetch ? bus_.get() : nullptr,
          reducer_for_store(store), cloud.chunk_cache(node));
    } else {
      auto backing = co_await pfs::PvfsFileStore::open(
          *cloud.pvfs(), node, cloud.base_pvfs_path(), false);
      vol->qcow_backing = std::move(backing);
      auto container = co_await pfs::PvfsFileStore::open(
          *cloud.pvfs(), node, src.pvfs_path, false);
      vol->qcow_container = std::move(container);
      img::QcowImage::Config qcfg;
      qcfg.cluster_size = cfg.qcow_cluster_size;
      qcfg.virtual_size = cloud.image_size();
      vol->qcow = std::make_unique<img::QcowImage>(
          *vol->qcow_container, vol->qcow_backing.get(), qcfg);
      co_await vol->qcow->open_existing(src.qcow_state);
      vol->qcow_dev = std::make_unique<img::QcowDevice>(*vol->qcow);
    }
    inst.attached.push_back(std::move(vol));
  }
}

sim::Task<sim::Duration> Deployment::migrate_instance(std::size_t i,
                                                      net::NodeId target) {
  const sim::Time t0 = cloud_->simulation().now();
  const InstanceSnapshot snap = co_await snapshot_instance(i);
  instances_.at(i)->vm->destroy();
  // Fresh namespace: the rebuilt instance's snapshot counter restarts at 0,
  // and its files must not overwrite the pre-migration checkpoint files.
  seq_ = cloud_->next_deployment_seq();
  co_await build_instance_from_snapshot(i, target, snap);
  co_return cloud_->simulation().now() - t0;
}

std::uint64_t Deployment::boot_remote_bytes() const {
  std::uint64_t total = 0;
  for (const auto& inst : instances_) {
    if (!inst) continue;
    if (inst->mirror) total += inst->mirror->remote_bytes_fetched();
    for (const auto& vol : inst->attached) {
      if (vol->mirror) total += vol->mirror->remote_bytes_fetched();
    }
  }
  return total;
}

std::uint64_t Deployment::boot_repo_bytes() const {
  std::uint64_t total = 0;
  for (const auto& inst : instances_) {
    if (!inst) continue;
    if (inst->mirror) total += inst->mirror->repo_bytes_fetched();
    for (const auto& vol : inst->attached) {
      if (vol->mirror) total += vol->mirror->repo_bytes_fetched();
    }
  }
  return total;
}

std::uint64_t Deployment::boot_peer_bytes() const {
  std::uint64_t total = 0;
  for (const auto& inst : instances_) {
    if (!inst) continue;
    if (inst->mirror) total += inst->mirror->peer_bytes_fetched();
    for (const auto& vol : inst->attached) {
      if (vol->mirror) total += vol->mirror->peer_bytes_fetched();
    }
  }
  return total;
}

std::uint64_t Deployment::boot_parity_bytes() const {
  std::uint64_t total = 0;
  for (const auto& inst : instances_) {
    if (!inst) continue;
    if (inst->mirror) total += inst->mirror->parity_bytes_rebuilt();
    for (const auto& vol : inst->attached) {
      if (vol->mirror) total += vol->mirror->parity_bytes_rebuilt();
    }
  }
  return total;
}

std::uint64_t Deployment::boot_wan_bytes() const {
  std::uint64_t total = 0;
  for (const auto& inst : instances_) {
    if (!inst) continue;
    if (inst->mirror) total += inst->mirror->wan_bytes_fetched();
    for (const auto& vol : inst->attached) {
      if (vol->mirror) total += vol->mirror->wan_bytes_fetched();
    }
  }
  return total;
}

sim::Task<std::optional<Deployment::PeerPayload>>
Deployment::recover_chunk_payload(const ChunkKey& key, net::NodeId dst) {
  // A surviving node's cached copy first: a real intra-deployment transfer
  // through the bus's fan-out accounting, like any restart peer copy.
  if (auto peer = bus_->find_holder(key, dst)) {
    struct CopyGuard {
      PrefetchBus* bus;
      ChunkKey key;
      net::NodeId node;
      ~CopyGuard() { bus->finish_peer_copy(key, node); }
    } guard{bus_.get(), key, peer->node};
    co_await cloud_->fabric().transfer(peer->node, dst, peer->data.size(),
                                       bus_->peer_shape());
    co_return PeerPayload{std::move(peer->data), peer->node};
  }
  // Parity-group rebuild second.
  if (redundancy::Manager* mgr = cloud_->redundancy()) {
    if (auto rebuilt = co_await mgr->rebuild(key, dst)) {
      co_return PeerPayload{std::move(*rebuilt), dst};
    }
  }
  // Last resort: scan the attached caches directly — content can be
  // resident on a node that never published to the bus (e.g. seeded by the
  // parity encode path on a deployment without adaptive prefetch).
  for (const auto& inst : instances_) {
    if (!inst || inst->failed || !inst->mirror) continue;
    DecodedChunkCache* cache = cloud_->chunk_cache(inst->node);
    if (cache == nullptr) continue;
    if (const common::Buffer* hit = cache->get(key)) {
      common::Buffer data = *hit;
      co_await cloud_->fabric().transfer(inst->node, dst, data.size(),
                                         bus_->peer_shape());
      co_return PeerPayload{std::move(data), inst->node};
    }
  }
  co_return std::nullopt;
}

}  // namespace blobcr::core
