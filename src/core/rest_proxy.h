// RestProxyFrontend: the text-protocol entry point of the checkpointing
// proxy (§3.3). Guests that handle checkpointing at application level
// contact the proxy directly with a one-line REST request; the frontend
// authenticates the caller by token, drives the typed proxy, and encodes
// the outcome — including failures — as a status-coded response, so the
// guest never needs a client library.
#pragma once

#include <string>

#include "core/mirror_device.h"
#include "core/proxy.h"
#include "core/wire.h"

namespace blobcr::core {

class RestProxyFrontend {
 public:
  /// `token`: the shared secret the proxy expects from co-located VMs
  /// (stands in for the paper's "the proxy authenticates the VM instance").
  RestProxyFrontend(CheckpointProxy& proxy, std::string token)
      : proxy_(&proxy), token_(std::move(token)) {}

  /// Serves one request. Never throws: protocol and execution errors come
  /// back as 4xx/5xx responses, exactly like an HTTP service.
  sim::Task<std::string> handle(std::string request_text,
                                vm::VmInstance& vm, MirrorDevice& dev) {
    WireRequest req;
    try {
      req = parse_request(request_text);
    } catch (const WireError& e) {
      co_return error_response(400, "Bad Request", e.what());
    }
    if (req.method != "POST")
      co_return error_response(405, "Method Not Allowed",
                               "only POST is supported");
    if (req.path != "/checkpoint")
      co_return error_response(404, "Not Found", "unknown path");
    const auto token = req.params.find("token");
    if (token == req.params.end() || token->second != token_)
      co_return error_response(403, "Forbidden", "bad or missing token");

    try {
      const CheckpointProxy::Result result =
          co_await proxy_->request_checkpoint(vm, dev);
      WireResponse resp;
      resp.status = 200;
      resp.reason = "OK";
      resp.fields["image"] = std::to_string(result.image);
      resp.fields["version"] = std::to_string(result.version);
      resp.fields["payload-bytes"] = std::to_string(result.payload_bytes);
      resp.fields["downtime-us"] =
          std::to_string(result.vm_downtime / sim::kMicrosecond);
      co_return encode_response(resp);
    } catch (const std::exception& e) {
      // §3.3: the proxy resumes the VM and reports the failure either way.
      co_return error_response(500, "Internal Server Error", e.what());
    }
  }

 private:
  static std::string error_response(int status, const std::string& reason,
                                    const std::string& detail) {
    WireResponse resp;
    resp.status = status;
    resp.reason = reason;
    resp.fields["error"] = detail;
    return encode_response(resp);
  }

  CheckpointProxy* proxy_;
  std::string token_;
};

}  // namespace blobcr::core
