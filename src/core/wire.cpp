#include "core/wire.h"

namespace blobcr::core {

namespace {

constexpr std::string_view kCrlf = "\r\n";
constexpr std::string_view kVersion = "HTTP/1.0";

bool unreserved(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
         (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '~' ||
         c == '-';
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Splits "k1=v1&k2=v2" into a decoded map.
std::map<std::string, std::string> parse_params(std::string_view query) {
  std::map<std::string, std::string> out;
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string_view::npos) amp = query.size();
    const std::string_view pair = query.substr(pos, amp - pos);
    if (!pair.empty()) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos)
        throw WireError("query parameter without '='");
      out[percent_decode(pair.substr(0, eq))] =
          percent_decode(pair.substr(eq + 1));
    }
    pos = amp + 1;
  }
  return out;
}

}  // namespace

std::string percent_encode(std::string_view raw) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    if (unreserved(c)) {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(kHex[static_cast<unsigned char>(c) >> 4]);
      out.push_back(kHex[static_cast<unsigned char>(c) & 0xf]);
    }
  }
  return out;
}

std::string percent_decode(std::string_view encoded) {
  std::string out;
  out.reserve(encoded.size());
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    if (encoded[i] != '%') {
      out.push_back(encoded[i]);
      continue;
    }
    if (i + 2 >= encoded.size()) throw WireError("truncated percent escape");
    const int hi = hex_digit(encoded[i + 1]);
    const int lo = hex_digit(encoded[i + 2]);
    if (hi < 0 || lo < 0) throw WireError("non-hex percent escape");
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

std::string encode_request(const WireRequest& req) {
  std::string line = req.method + " " + req.path;
  char sep = '?';
  for (const auto& [k, v] : req.params) {
    line += sep + percent_encode(k) + "=" + percent_encode(v);
    sep = '&';
  }
  line += " ";
  line += kVersion;
  line += kCrlf;
  line += kCrlf;
  return line;
}

WireRequest parse_request(std::string_view text) {
  const std::size_t eol = text.find(kCrlf);
  if (eol == std::string_view::npos)
    throw WireError("request line not terminated");
  const std::string_view line = text.substr(0, eol);

  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) throw WireError("missing method");
  const std::size_t sp2 = line.rfind(' ');
  if (sp2 == sp1) throw WireError("missing HTTP version");
  if (line.substr(sp2 + 1) != kVersion)
    throw WireError("unsupported protocol version");

  WireRequest req;
  req.method = std::string(line.substr(0, sp1));
  if (req.method.empty()) throw WireError("empty method");
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/')
    throw WireError("target must start with '/'");
  const std::size_t q = target.find('?');
  if (q == std::string_view::npos) {
    req.path = std::string(target);
  } else {
    req.path = std::string(target.substr(0, q));
    req.params = parse_params(target.substr(q + 1));
  }
  return req;
}

std::string encode_response(const WireResponse& resp) {
  // Piecewise appends: the `"a" + str + "b"` temporary chain trips gcc-12's
  // -Wrestrict false positive under -O3 inlining (and allocates more).
  std::string out(kVersion);
  out += ' ';
  out += std::to_string(resp.status);
  out += ' ';
  out += resp.reason;
  out += kCrlf;
  for (const auto& [k, v] : resp.fields) {
    out += k;
    out += ": ";
    out += v;
    out += kCrlf;
  }
  out += kCrlf;
  return out;
}

WireResponse parse_response(std::string_view text) {
  std::size_t eol = text.find(kCrlf);
  if (eol == std::string_view::npos)
    throw WireError("status line not terminated");
  std::string_view line = text.substr(0, eol);
  if (line.substr(0, kVersion.size()) != kVersion)
    throw WireError("unsupported protocol version");
  line.remove_prefix(kVersion.size());
  if (line.empty() || line[0] != ' ') throw WireError("missing status code");
  line.remove_prefix(1);
  const std::size_t sp = line.find(' ');
  if (sp == std::string_view::npos) throw WireError("missing reason phrase");

  WireResponse resp;
  for (const char c : line.substr(0, sp)) {
    if (c < '0' || c > '9') throw WireError("non-numeric status code");
    resp.status = resp.status * 10 + (c - '0');
  }
  resp.reason = std::string(line.substr(sp + 1));

  std::size_t pos = eol + kCrlf.size();
  while (pos < text.size()) {
    eol = text.find(kCrlf, pos);
    if (eol == std::string_view::npos)
      throw WireError("header line not terminated");
    const std::string_view field = text.substr(pos, eol - pos);
    pos = eol + kCrlf.size();
    if (field.empty()) break;  // end of header block
    const std::size_t colon = field.find(": ");
    if (colon == std::string_view::npos)
      throw WireError("malformed header field");
    resp.fields[std::string(field.substr(0, colon))] =
        std::string(field.substr(colon + 2));
  }
  return resp;
}

}  // namespace blobcr::core
