// Baseline checkpointing proxies (paper §4.2):
//
//  * QcowDiskProxy — "qcow2-disk": suspend the VM and copy the whole local
//    qcow2 container file to PVFS as a new file. No incremental support, so
//    every checkpoint re-ships everything written since boot.
//  * QcowFullProxy — "qcow2-full": savevm first (append full RAM + device
//    state into the image), then copy the container. Only the latest copy
//    is kept (qcow2 keeps all internal snapshots inside one file).
#pragma once

#include <string>

#include "img/qcow.h"
#include "net/fabric.h"
#include "pfs/pvfs.h"
#include "sim/sim.h"
#include "sim/when_all.h"
#include "storage/byte_store.h"
#include "vm/vm_instance.h"

namespace blobcr::core {

struct QcowSnapshotResult {
  std::string pvfs_path;
  std::uint64_t bytes = 0;  // container bytes shipped
  img::QcowImage::State state;
  sim::Duration vm_downtime = 0;
};

namespace detail {

/// Pipelined copy of the local container file into a fresh PVFS file:
/// 4 MiB windows, two in flight (read window N+1 while window N is on the
/// wire), which is how a streaming cp through a mount behaves. Extent-aware
/// reads preserve the real/phantom content structure of the source.
inline sim::Task<std::uint64_t> copy_container_to_pvfs(
    sim::Simulation& sim, storage::ByteStore& container,
    std::uint64_t container_bytes, pfs::PvfsCluster& pvfs, net::NodeId node,
    const std::string& dest_path) {
  pfs::PvfsClient client(pvfs, node);
  const pfs::FileId dest = co_await client.create(dest_path);
  constexpr std::uint64_t kWindow = 4 * 1024 * 1024;
  std::vector<sim::Task<>> windows;
  for (std::uint64_t off = 0; off < container_bytes; off += kWindow) {
    const std::uint64_t len = std::min(kWindow, container_bytes - off);
    windows.push_back(
        [](storage::ByteStore* src, pfs::PvfsCluster* cluster,
           net::NodeId n, pfs::FileId f, std::uint64_t o,
           std::uint64_t l) -> sim::Task<> {
          storage::ByteStore::Pieces pieces =
              co_await src->read_extents(o, l);
          pfs::PvfsClient c(*cluster, n);
          for (auto& [piece_off, piece] : pieces) {
            co_await c.write(f, piece_off, std::move(piece));
          }
        }(&container, &pvfs, node, dest, off, len));
  }
  co_await sim::run_window(sim, 2, std::move(windows));
  co_return container_bytes;
}

}  // namespace detail

class QcowDiskProxy {
 public:
  QcowDiskProxy(sim::Simulation& sim, net::Fabric& fabric, net::NodeId node,
                sim::Duration auth_cost = 500 * sim::kMicrosecond)
      : sim_(&sim), fabric_(&fabric), node_(node), auth_cost_(auth_cost) {}

  sim::Task<QcowSnapshotResult> request_checkpoint(
      vm::VmInstance& vm, img::QcowImage& image,
      storage::ByteStore& container, pfs::PvfsCluster& pvfs,
      std::string dest_path) {
    co_await fabric_->message(node_, node_);
    co_await sim_->delay(auth_cost_);
    const sim::Time pause_start = sim_->now();
    vm.pause();
    QcowSnapshotResult result;
    result.pvfs_path = dest_path;
    result.bytes = co_await detail::copy_container_to_pvfs(
        *sim_, container, image.container_bytes(), pvfs, node_, dest_path);
    result.state = image.export_state();
    vm.resume();
    result.vm_downtime = sim_->now() - pause_start;
    co_await fabric_->message(node_, node_);
    co_return result;
  }

 private:
  sim::Simulation* sim_;
  net::Fabric* fabric_;
  net::NodeId node_;
  sim::Duration auth_cost_;
};

class QcowFullProxy {
 public:
  QcowFullProxy(sim::Simulation& sim, net::Fabric& fabric, net::NodeId node,
                sim::Duration auth_cost = 500 * sim::kMicrosecond)
      : sim_(&sim), fabric_(&fabric), node_(node), auth_cost_(auth_cost) {}

  /// savevm + copy. When `previous_path` is non-empty the earlier copy is
  /// removed: the latest container subsumes all internal snapshots.
  sim::Task<QcowSnapshotResult> request_checkpoint(
      vm::VmInstance& vm, img::QcowImage& image,
      storage::ByteStore& container, pfs::PvfsCluster& pvfs,
      std::string dest_path, std::string previous_path) {
    co_await sim_->delay(auth_cost_);
    const sim::Time pause_start = sim_->now();
    vm.pause();
    // Full VM state into the image (RAM + devices).
    co_await image.save_vm_state(
        common::Buffer::phantom(vm.ram_state_bytes()));
    QcowSnapshotResult result;
    result.pvfs_path = dest_path;
    result.bytes = co_await detail::copy_container_to_pvfs(
        *sim_, container, image.container_bytes(), pvfs, node_, dest_path);
    result.state = image.export_state();
    if (!previous_path.empty()) {
      pfs::PvfsClient client(pvfs, node_);
      co_await client.remove(previous_path);
    }
    vm.resume();
    result.vm_downtime = sim_->now() - pause_start;
    co_return result;
  }

 private:
  sim::Simulation* sim_;
  net::Fabric* fabric_;
  net::NodeId node_;
  sim::Duration auth_cost_;
};

}  // namespace blobcr::core
