#include "core/mirror_device.h"

#include <algorithm>
#include <cassert>

namespace blobcr::core {

MirrorDevice::MirrorDevice(blob::BlobStore& store, net::NodeId host,
                           storage::Disk& local_disk,
                           std::uint64_t disk_stream,
                           blob::BlobId backing_blob,
                           blob::VersionId backing_version, const Config& cfg,
                           PrefetchBus* bus, blob::CommitReducer* reducer)
    : store_(&store),
      host_(host),
      disk_(&local_disk),
      stream_(disk_stream),
      backing_blob_(backing_blob),
      backing_version_(backing_version),
      cfg_(cfg),
      bus_(bus),
      reducer_(reducer),
      client_(store, host),
      fetch_done_(store.simulation()) {
  assert(cfg_.capacity > 0);
  prefetch_slots_ = std::make_unique<sim::Semaphore>(
      store.simulation(), static_cast<std::int64_t>(cfg_.prefetch_streams));
  if (bus_ != nullptr) bus_->attach(this);
}

MirrorDevice::~MirrorDevice() {
  for (const auto& p : prefetchers_) {
    if (p && !p->finished()) p->kill();
  }
  if (bus_ != nullptr) bus_->detach(this);
}

std::uint64_t MirrorDevice::chunk_size() const {
  return store_->config().default_chunk_size;
}

sim::Task<> MirrorDevice::ensure_available(std::uint64_t begin,
                                           std::uint64_t end, bool announce) {
  end = std::min(end, cfg_.capacity);
  if (begin >= end) co_return;
  while (!available_.contains(begin, end)) {
    const auto gaps = available_.gaps(begin, end);
    assert(!gaps.empty());
    const common::Range gap = gaps.front();
    // If someone else is already fetching this gap, wait for progress.
    const auto free_parts = inflight_.gaps(gap.begin, gap.end);
    if (free_parts.empty()) {
      co_await fetch_done_.wait();
      continue;
    }
    const common::Range part = free_parts.front();
    inflight_.insert(part.begin, part.end);
    if (announce && bus_ != nullptr) {
      bus_->announce(this, part.begin, part.end - part.begin);
    }
    common::Buffer data;
    bool failed = false;
    try {
      data = co_await client_.read(backing_blob_, backing_version_,
                                   part.begin, part.end - part.begin);
    } catch (...) {
      inflight_.erase(part.begin, part.end);
      fetch_done_.set();
      fetch_done_.reset();
      failed = true;
    }
    if (failed) throw blob::BlobError("mirror fetch failed");
    if (data.size() < part.end - part.begin) {
      data.resize(part.end - part.begin);  // backing hole reads zeros
    }
    remote_fetched_ += data.size();
    // Only fill bytes that are still missing — a concurrent guest write
    // must never be clobbered by stale backing content.
    for (const common::Range& missing :
         available_.gaps(part.begin, part.end)) {
      cache_.write(missing.begin,
                   data.slice(missing.begin - part.begin, missing.length()));
      available_.insert(missing.begin, missing.end);
    }
    co_await disk_->write(stream_, part.begin, part.end - part.begin);
    inflight_.erase(part.begin, part.end);
    // Pulse waiters.
    fetch_done_.set();
    fetch_done_.reset();
  }
}

sim::Task<common::Buffer> MirrorDevice::read(std::uint64_t offset,
                                             std::uint64_t len) {
  if (offset + len > cfg_.capacity)
    len = offset < cfg_.capacity ? cfg_.capacity - offset : 0;
  if (len == 0) co_return common::Buffer();
  // Charge local-disk time only for content that was already cached (fresh
  // fetches are served from memory as they land).
  std::uint64_t pre_cached = 0;
  for (const common::Range& r : available_.intersection(offset, offset + len))
    pre_cached += r.length();
  co_await ensure_available(offset, offset + len, /*announce=*/true);
  if (pre_cached > 0) co_await disk_->read(stream_, offset, pre_cached);
  co_return cache_.read(offset, len);
}

sim::Task<> MirrorDevice::write(std::uint64_t offset, common::Buffer data) {
  const std::uint64_t len = data.size();
  if (len == 0) co_return;
  if (offset + len > cfg_.capacity)
    throw std::runtime_error("mirror write beyond capacity");
  cache_.write(offset, std::move(data));
  available_.insert(offset, offset + len);
  dirty_.insert(offset, offset + len);
  co_await disk_->write(stream_, offset, len);
}

sim::Task<blob::BlobId> MirrorDevice::ioctl_clone() {
  if (ckpt_blob_ == 0) {
    ckpt_blob_ = co_await client_.clone(backing_blob_, backing_version_);
  }
  co_return ckpt_blob_;
}

sim::Task<blob::VersionId> MirrorDevice::ioctl_commit() {
  co_await ioctl_clone();
  // Round dirty ranges out to chunk boundaries (the repository stores whole
  // chunks; the remainder of a partially-dirty chunk is copied up from the
  // backing snapshot if not locally present).
  const std::uint64_t cs = chunk_size();
  common::RangeSet rounded;
  for (const common::Range& d : dirty_.to_vector()) {
    const std::uint64_t lo = d.begin / cs * cs;
    const std::uint64_t hi = std::min((d.end + cs - 1) / cs * cs,
                                      cfg_.capacity);
    rounded.insert(lo, hi);
  }
  if (rounded.empty()) {
    // Unchanged disk: the previous snapshot already captures this state.
    last_commit_payload_ = 0;
    last_commit_shipped_ = 0;
    co_return last_version_;
  }

  // Copy-up whatever part of the rounded ranges is not locally present.
  std::vector<blob::BlobClient::ExtentSpec> specs;
  std::uint64_t payload = 0;
  for (const common::Range& r : rounded.to_vector()) {
    co_await ensure_available(r.begin, r.end, /*announce=*/false);
    specs.push_back({r.begin, r.length()});
    payload += r.length();
  }
  // Stream the commit: chunks are read from the local cache disk inside the
  // store pipeline, overlapping local I/O with provider transfers. Reads
  // are spooled with 4 MiB readahead (the FUSE module scans its
  // modification log sequentially), so the local disk stays near streaming
  // rate instead of seeking per 256 KiB chunk.
  struct Spool {
    common::RangeSet done;
    common::RangeSet ranges;
  };
  Spool spool;
  spool.ranges = rounded;
  Spool* sp = &spool;  // outlives the pipeline (this frame awaits it)
  constexpr std::uint64_t kReadahead = 4 * 1024 * 1024;
  blob::BlobClient::ExtentReader reader =
      [this, sp](std::uint64_t offset,
                 std::uint64_t length) -> sim::Task<common::Buffer> {
    if (!sp->done.contains(offset, offset + length)) {
      // Spool forward within the dirty range containing this chunk.
      std::uint64_t spool_end = offset + length;
      for (const common::Range& full : sp->ranges.to_vector()) {
        if (full.begin <= offset && offset < full.end) {
          spool_end = std::max(spool_end,
                               std::min(full.end, offset + kReadahead));
          break;
        }
      }
      // Reserve before awaiting so concurrent window slots don't issue
      // overlapping reads; readahead means their data is already streaming.
      sp->done.insert(offset, spool_end);
      co_await disk_->read(stream_, offset, spool_end - offset);
    }
    co_return cache_.read(offset, length);
  };
  const blob::VersionId v =
      co_await client_.write_extents_via(ckpt_blob_, std::move(specs),
                                         &reader, reducer_);
  dirty_.clear();
  last_commit_payload_ = payload;
  last_commit_shipped_ = client_.last_commit_stored_bytes();
  last_version_ = v;
  co_return v;
}

void MirrorDevice::hint(std::uint64_t offset, std::uint64_t len) {
  const std::uint64_t end = std::min(offset + len, cfg_.capacity);
  if (offset >= end) return;
  if (available_.contains(offset, end)) return;
  // Prune finished workers, then spawn a background fetch.
  std::erase_if(prefetchers_,
                [](const sim::ProcessPtr& p) { return !p || p->finished(); });
  prefetchers_.push_back(store_->simulation().spawn(
      "prefetch", prefetch_worker(offset, end)));
}

sim::Task<> MirrorDevice::prefetch_worker(std::uint64_t begin,
                                          std::uint64_t end) {
  co_await prefetch_slots_->acquire();
  bool failed = false;
  try {
    co_await ensure_available(begin, end, /*announce=*/false);
  } catch (...) {
    failed = true;  // backing unavailable: demand path will surface it
  }
  (void)failed;
  prefetch_slots_->release();
}

}  // namespace blobcr::core
