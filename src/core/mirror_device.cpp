#include "core/mirror_device.h"

#include <algorithm>
#include <cassert>

#include "blob/spool.h"
#include "flush/flush_agent.h"

namespace blobcr::core {

MirrorDevice::MirrorDevice(blob::BlobStore& store, net::NodeId host,
                           storage::Disk& local_disk,
                           std::uint64_t disk_stream,
                           blob::BlobId backing_blob,
                           blob::VersionId backing_version, const Config& cfg,
                           PrefetchBus* bus, blob::CommitReducer* reducer)
    : store_(&store),
      host_(host),
      disk_(&local_disk),
      stream_(disk_stream),
      backing_blob_(backing_blob),
      backing_version_(backing_version),
      cfg_(cfg),
      bus_(bus),
      reducer_(reducer),
      client_(store, host),
      fetch_done_(store.simulation()) {
  assert(cfg_.capacity > 0);
  prefetch_slots_ = std::make_unique<sim::Semaphore>(
      store.simulation(), static_cast<std::int64_t>(cfg_.prefetch_streams));
  if (bus_ != nullptr) bus_->attach(this);
  if (cfg_.flush.enabled) {
    flush_agent_ = std::make_unique<flush::FlushAgent>(
        store, client_, local_disk, disk_stream, reducer_, cfg_.flush);
  }
}

MirrorDevice::~MirrorDevice() {
  for (const auto& p : prefetchers_) {
    if (p && !p->finished()) p->kill();
  }
  if (bus_ != nullptr) bus_->detach(this);
}

std::uint64_t MirrorDevice::chunk_size() const {
  return store_->config().default_chunk_size;
}

std::uint64_t MirrorDevice::last_commit_shipped() const {
  if (flush_agent_ != nullptr) return flush_agent_->last_drain_stored_bytes();
  return last_commit_shipped_;
}

sim::Task<> MirrorDevice::wait_drained() {
  if (flush_agent_ != nullptr) co_await flush_agent_->wait_drained();
}

sim::Task<> MirrorDevice::ensure_available(std::uint64_t begin,
                                           std::uint64_t end, bool announce) {
  end = std::min(end, cfg_.capacity);
  if (begin >= end) co_return;
  while (!available_.contains(begin, end)) {
    const auto gaps = available_.gaps(begin, end);
    assert(!gaps.empty());
    const common::Range gap = gaps.front();
    // If someone else is already fetching this gap, wait for progress.
    const auto free_parts = inflight_.gaps(gap.begin, gap.end);
    if (free_parts.empty()) {
      co_await fetch_done_.wait();
      continue;
    }
    const common::Range part = free_parts.front();
    inflight_.insert(part.begin, part.end);
    if (announce && bus_ != nullptr) {
      bus_->announce(this, part.begin, part.end - part.begin);
    }
    common::Buffer data;
    bool failed = false;
    try {
      data = co_await client_.read(backing_blob_, backing_version_,
                                   part.begin, part.end - part.begin);
    } catch (...) {
      inflight_.erase(part.begin, part.end);
      fetch_done_.set();
      fetch_done_.reset();
      failed = true;
    }
    if (failed) throw blob::BlobError("mirror fetch failed");
    if (data.size() < part.end - part.begin) {
      data.resize(part.end - part.begin);  // backing hole reads zeros
    }
    remote_fetched_ += data.size();
    // Only fill bytes that are still missing — a concurrent guest write
    // must never be clobbered by stale backing content.
    for (const common::Range& missing :
         available_.gaps(part.begin, part.end)) {
      cache_.write(missing.begin,
                   data.slice(missing.begin - part.begin, missing.length()));
      available_.insert(missing.begin, missing.end);
    }
    co_await disk_->write(stream_, part.begin, part.end - part.begin);
    inflight_.erase(part.begin, part.end);
    // Pulse waiters.
    fetch_done_.set();
    fetch_done_.reset();
  }
}

sim::Task<common::Buffer> MirrorDevice::read(std::uint64_t offset,
                                             std::uint64_t len) {
  if (offset + len > cfg_.capacity)
    len = offset < cfg_.capacity ? cfg_.capacity - offset : 0;
  if (len == 0) co_return common::Buffer();
  // Charge local-disk time only for content that was already cached (fresh
  // fetches are served from memory as they land).
  std::uint64_t pre_cached = 0;
  for (const common::Range& r : available_.intersection(offset, offset + len))
    pre_cached += r.length();
  co_await ensure_available(offset, offset + len, /*announce=*/true);
  if (pre_cached > 0) co_await disk_->read(stream_, offset, pre_cached);
  co_return cache_.read(offset, len);
}

sim::Task<> MirrorDevice::write(std::uint64_t offset, common::Buffer data) {
  const std::uint64_t len = data.size();
  if (len == 0) co_return;
  if (offset + len > cfg_.capacity)
    throw std::runtime_error("mirror write beyond capacity");
  cache_.write(offset, std::move(data));
  available_.insert(offset, offset + len);
  dirty_.insert(offset, offset + len);
  co_await disk_->write(stream_, offset, len);
}

sim::Task<blob::BlobId> MirrorDevice::ioctl_clone() {
  if (ckpt_blob_ == 0) {
    ckpt_blob_ = co_await client_.clone(backing_blob_, backing_version_);
  }
  co_return ckpt_blob_;
}

sim::Task<blob::VersionId> MirrorDevice::ioctl_commit() {
  co_await ioctl_clone();
  // Round dirty ranges out to chunk boundaries (the repository stores whole
  // chunks; the remainder of a partially-dirty chunk is copied up from the
  // backing snapshot if not locally present).
  const std::uint64_t cs = chunk_size();
  common::RangeSet rounded;
  for (const common::Range& d : dirty_.to_vector()) {
    const std::uint64_t lo = d.begin / cs * cs;
    const std::uint64_t hi = std::min((d.end + cs - 1) / cs * cs,
                                      cfg_.capacity);
    rounded.insert(lo, hi);
  }
  if (rounded.empty()) {
    // Unchanged disk: the previous snapshot already captures this state.
    last_commit_payload_ = 0;
    last_commit_shipped_ = 0;
    co_return last_version_;
  }

  // Copy-up whatever part of the rounded ranges is not locally present.
  std::uint64_t payload = 0;
  for (const common::Range& r : rounded.to_vector()) {
    co_await ensure_available(r.begin, r.end, /*announce=*/false);
    payload += r.length();
  }

  if (flush_agent_ != nullptr) {
    // Asynchronous pipeline: freeze the dirty content — a COW snapshot of
    // the local difference log, so staging costs no simulated I/O — and
    // hand it to the drain agent. The VM resumes as soon as submit()
    // returns the provisional version; the drain charges the local-disk
    // reads and repository transfers in the background. read_extents keeps
    // the real/phantom pieces exact, matching the synchronous reader's
    // per-chunk fidelity.
    common::SparseFile staged;
    for (const common::Range& r : rounded.to_vector()) {
      for (auto& [off, piece] : cache_.read_extents(r.begin, r.length())) {
        staged.write(off, std::move(piece));
      }
    }
    dirty_.clear();
    last_commit_payload_ = payload;
    const blob::VersionId v = co_await flush_agent_->submit(
        ckpt_blob_, std::move(staged), std::move(rounded));
    last_version_ = v;
    co_return v;
  }

  // Stream the commit: chunks are read from the local cache disk inside the
  // store pipeline, overlapping local I/O with provider transfers (spooled
  // readahead policy in blob/spool.h). Both `rounded` and the reader live
  // in this frame, which awaits the pipeline.
  std::vector<blob::BlobClient::ExtentSpec> specs;
  for (const common::Range& r : rounded.to_vector()) {
    specs.push_back({r.begin, r.length()});
  }
  blob::SpooledCommitReader spool(
      *disk_, stream_, &rounded,
      [this](std::uint64_t offset, std::uint64_t length) {
        return cache_.read(offset, length);
      });
  const blob::VersionId v =
      co_await client_.write_extents_via(ckpt_blob_, std::move(specs),
                                         spool.reader(), reducer_);
  dirty_.clear();
  last_commit_payload_ = payload;
  last_commit_shipped_ = client_.last_commit_stored_bytes();
  last_version_ = v;
  co_return v;
}

void MirrorDevice::hint(std::uint64_t offset, std::uint64_t len) {
  const std::uint64_t end = std::min(offset + len, cfg_.capacity);
  if (offset >= end) return;
  if (available_.contains(offset, end)) return;
  // Prune finished workers, then spawn a background fetch.
  std::erase_if(prefetchers_,
                [](const sim::ProcessPtr& p) { return !p || p->finished(); });
  prefetchers_.push_back(store_->simulation().spawn(
      "prefetch", prefetch_worker(offset, end)));
}

sim::Task<> MirrorDevice::prefetch_worker(std::uint64_t begin,
                                          std::uint64_t end) {
  co_await prefetch_slots_->acquire();
  bool failed = false;
  try {
    co_await ensure_available(begin, end, /*announce=*/false);
  } catch (...) {
    failed = true;  // backing unavailable: demand path will surface it
  }
  (void)failed;
  prefetch_slots_->release();
}

}  // namespace blobcr::core
