#include "core/mirror_device.h"

#include <algorithm>
#include <cassert>

#include "blob/spool.h"
#include "federation/federation.h"
#include "flush/flush_agent.h"
#include "redundancy/manager.h"
#include "sim/when_all.h"

namespace blobcr::core {

namespace {
/// Byte budget of the private fallback cache for standalone devices (the
/// Cloud sizes shared per-node caches from CloudConfig instead).
constexpr std::uint64_t kFallbackCacheBytes = 512ULL * 1024 * 1024;
}  // namespace

MirrorDevice::MirrorDevice(blob::BlobStore& store, net::NodeId host,
                           storage::Disk& local_disk,
                           std::uint64_t disk_stream,
                           blob::BlobId backing_blob,
                           blob::VersionId backing_version, const Config& cfg,
                           PrefetchBus* bus, blob::CommitReducer* reducer,
                           DecodedChunkCache* node_cache)
    : store_(&store),
      host_(host),
      disk_(&local_disk),
      stream_(disk_stream),
      backing_blob_(backing_blob),
      backing_version_(backing_version),
      cfg_(cfg),
      bus_(bus),
      reducer_(reducer),
      client_(store, host),
      fetch_done_(store.simulation()),
      node_cache_(node_cache) {
  assert(cfg_.capacity > 0);
  client_.set_tenant(cfg_.tenant);
  prefetch_slots_ = std::make_unique<sim::Semaphore>(
      store.simulation(), static_cast<std::int64_t>(cfg_.prefetch_streams));
  if (bus_ != nullptr) bus_->attach(this);
  if (cfg_.redundancy != nullptr)
    cfg_.redundancy->attach(host_, &this->node_cache());
  if (cfg_.flush.enabled) {
    flush_agent_ = std::make_unique<flush::FlushAgent>(
        store, client_, local_disk, disk_stream, reducer_, cfg_.flush,
        cfg_.redundancy, cfg_.federation);
  }
}

MirrorDevice::~MirrorDevice() {
  for (const auto& p : prefetchers_) {
    if (p && !p->finished()) p->kill();
  }
  if (bus_ != nullptr) bus_->detach(this);
  // A privately-owned cache dies with the device; the parity tier must not
  // keep serving rebuilds out of it (shared Cloud caches stay registered).
  if (cfg_.redundancy != nullptr && own_cache_ != nullptr)
    cfg_.redundancy->detach_cache(own_cache_.get());
}

DecodedChunkCache& MirrorDevice::node_cache() {
  if (node_cache_ == nullptr) {
    own_cache_ = std::make_unique<DecodedChunkCache>(kFallbackCacheBytes);
    node_cache_ = own_cache_.get();
  }
  return *node_cache_;
}

std::uint64_t MirrorDevice::chunk_size() const {
  return store_->config().default_chunk_size;
}

std::uint64_t MirrorDevice::last_commit_shipped() const {
  if (flush_agent_ != nullptr) return flush_agent_->last_drain_stored_bytes();
  return last_commit_shipped_;
}

sim::Task<> MirrorDevice::wait_drained() {
  if (flush_agent_ != nullptr) co_await flush_agent_->wait_drained();
}

namespace {

/// Releases the deployment-wide repository-fetch claim even when the
/// committing coroutine frame is destroyed mid-flight (fail-stop kill):
/// a claim that outlives its fetch would wedge every other instance
/// waiting to materialize the same content.
struct RepoClaimGuard {
  PrefetchBus* bus = nullptr;
  ChunkKey key;
  bool active = false;
  void release() {
    if (active && bus != nullptr) bus->release_repo_fetch(key);
    active = false;
  }
  ~RepoClaimGuard() { release(); }
};

}  // namespace

/// Drops a device's inflight claim and pulses waiters — on normal
/// completion, on error, and on coroutine-frame destruction (a killed
/// snapshot/restore process), so no claim ever outlives its fetch.
struct MirrorDevice::InflightGuard {
  MirrorDevice* m;
  std::uint64_t begin;
  std::uint64_t end;
  ~InflightGuard() {
    m->inflight_.erase(begin, end);
    m->fetch_done_.set();
    m->fetch_done_.reset();
  }
};

sim::Task<> MirrorDevice::materialize_chunk(std::uint64_t clo,
                                            std::uint64_t chi,
                                            const blob::ChunkLocation* loc,
                                            bool announce) {
  InflightGuard inflight{this, clo, chi};
  const std::uint64_t len = chi - clo;
  common::Buffer data;
  // A leaf-less index or a Zero-encoded leaf is a hole: it materializes
  // locally with no repository or peer transfer and no disk payload (the
  // sparse local cache reads holes as zeros).
  const bool hole = loc == nullptr || loc->id == 0 ||
                    loc->encoding == blob::ChunkEncoding::Zero;
  if (hole) {
    zero_bytes_ += len;
  } else {
    const ChunkKey key = ChunkKey::of(*loc);
    if (announce && bus_ != nullptr) bus_->announce(this, key, clo, len);
    bool peer_sourced = false;
    for (;;) {
      // 1. Decoded once per node: any rank on this node already paid.
      if (const common::Buffer* hit = node_cache().get(key)) {
        data = *hit;
        cache_hit_bytes_ += data.size();
        break;
      }
      // 2. Peer copy: intra-deployment transfer instead of the repo.
      if (bus_ != nullptr) {
        if (auto peer = bus_->find_holder(key, host_)) {
          // RAII: the holder's fan-out slot frees even if this copier is
          // fail-stopped mid-transfer.
          struct CopyGuard {
            PrefetchBus* bus;
            ChunkKey key;
            net::NodeId node;
            ~CopyGuard() { bus->finish_peer_copy(key, node); }
          } copy_guard{bus_, key, peer->node};
          co_await store_->fabric().transfer(peer->node, host_,
                                             peer->data.size(),
                                             bus_->peer_shape());
          peer_bytes_fetched_ += peer->data.size();
          data = std::move(peer->data);
          peer_sourced = true;
          break;
        }
      }
      // 3. Redundancy tier (SCR-style, cloud-scoped so it survives a
      //    rollback onto a fresh deployment): first a direct copy out of a
      //    registered node cache the (deployment-scoped) bus does not know
      //    about, then a parity-group rebuild — the lost member recomputed
      //    as the XOR of the surviving members' cached payloads and the
      //    parity block. Fabric traffic only; the repository is not touched.
      if (cfg_.redundancy != nullptr) {
        if (auto resident = co_await cfg_.redundancy->fetch_resident(key,
                                                                     host_)) {
          peer_bytes_fetched_ += resident->size();
          data = std::move(*resident);
          peer_sourced = true;
          break;
        }
        if (auto rebuilt = co_await cfg_.redundancy->rebuild(key, host_)) {
          parity_bytes_rebuilt_ += rebuilt->size();
          data = std::move(*rebuilt);
          peer_sourced = true;  // same cache-put + publish path as a peer copy
          break;
        }
      }
      // 4. Repository fetch, single-flight per content key across the
      //    deployment: the losers wait and take the peer copy instead.
      if (bus_ == nullptr || bus_->claim_repo_fetch(key)) {
        RepoClaimGuard claim{bus_, key, bus_ != nullptr};
        bool fetch_failed = false;
        // Federated routing: a chunk in a dead zone or a zone other than
        // this node's resolves through nearest-zone order (local replica,
        // peer zone over the WAN class, origin). An in-zone chunk whose
        // store is alive keeps the plain client fetch — with its full
        // provider-replica fallback — untouched.
        federation::Fabric* fed = cfg_.federation;
        const bool fed_route =
            fed != nullptr && fed->enabled() &&
            (!fed->alive(loc->zone) ||
             fed->zone_of_node(host_) != loc->zone);
        try {
          if (fed_route) {
            auto fr = co_await fed->fetch_decoded(
                *loc, host_,
                qos::IoContext{cfg_.tenant, qos::GateClass::ProviderIo});
            if (fr.wan) wan_bytes_fetched_ += fr.data.size();
            data = std::move(fr.data);
          } else {
            data = co_await client_.fetch_decoded(*loc);
          }
        } catch (...) {
          fetch_failed = true;
        }
        if (fetch_failed) throw blob::BlobError("mirror fetch failed");
        repo_wire_fetched_ += loc->size;
        repo_logical_fetched_ += data.size();
        if (data.size() < len) data.resize(len);  // version tail: zeros
        node_cache().put(key, data);
        if (bus_ != nullptr) bus_->publish(key, host_, &node_cache());
        // Release only after publishing, so woken waiters find a holder.
        claim.release();
        break;
      }
      co_await bus_->wait_repo_fetch();
    }
    // The repo branch registered inline (its publish must precede the
    // claim release); a cache hit is already resident. Only a peer copy
    // still needs to enter this node's cache and holder registry.
    if (peer_sourced) {
      if (data.size() < len) data.resize(len);
      node_cache().put(key, data);
      if (bus_ != nullptr) bus_->publish(key, host_, &node_cache());
    }
    // Cached copies were padded by whoever produced them, but devices can
    // differ in capacity clamp — pad locally, without re-entering the cache.
    if (data.size() < len) data.resize(len);
  }
  // Only fill bytes that are still missing — a concurrent guest write
  // must never be clobbered by stale backing content.
  for (const common::Range& missing : available_.gaps(clo, chi)) {
    if (!hole) {
      cache_.write(missing.begin,
                   data.slice(missing.begin - clo, missing.length()));
    }
    available_.insert(missing.begin, missing.end);
  }
  if (!hole) co_await disk_->write(stream_, clo, chi - clo);
}

sim::Task<> MirrorDevice::ensure_available(std::uint64_t begin,
                                           std::uint64_t end, bool announce) {
  end = std::min(end, cfg_.capacity);
  if (begin >= end) co_return;
  const std::uint64_t cs = chunk_size();
  while (!available_.contains(begin, end)) {
    // Claim the missing chunks of the chunk-aligned covering window that
    // nobody else is materializing yet.
    const std::uint64_t lo = begin / cs * cs;
    const std::uint64_t hi = std::min((end + cs - 1) / cs * cs,
                                      cfg_.capacity);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> claimed;
    for (const common::Range& gap : available_.gaps(lo, hi)) {
      const std::uint64_t first = gap.begin / cs;
      const std::uint64_t last = (gap.end + cs - 1) / cs;
      for (std::uint64_t idx = first; idx < last; ++idx) {
        const std::uint64_t clo = idx * cs;
        const std::uint64_t chi = std::min(clo + cs, cfg_.capacity);
        if (available_.contains(clo, chi)) continue;
        if (inflight_.gaps(clo, chi).empty()) continue;  // someone on it
        inflight_.insert(clo, chi);
        claimed.emplace_back(clo, chi);
      }
    }
    if (claimed.empty()) {
      // Everything missing is already in flight; wait for progress.
      co_await fetch_done_.wait();
      continue;
    }
    // Batch guard: a kill during resolve (or before a queued materialize
    // job ever ran) must not leave claims behind. Each finished chunk's own
    // guard already erased its range, so the second erase is a no-op.
    struct BatchGuard {
      MirrorDevice* m;
      const std::vector<std::pair<std::uint64_t, std::uint64_t>>* claimed;
      ~BatchGuard() {
        for (const auto& [clo, chi] : *claimed) m->inflight_.erase(clo, chi);
        m->fetch_done_.set();
        m->fetch_done_.reset();
      }
    } batch_guard{this, &claimed};
    // Resolve the claimed window to chunk identity tuples, then
    // materialize each claimed chunk (window-limited like a client read).
    std::vector<blob::BlobClient::ChunkRef> refs;
    bool failed = false;
    try {
      refs = co_await client_.resolve_chunks(
          backing_blob_, backing_version_, claimed.front().first,
          claimed.back().second - claimed.front().first);
    } catch (...) {
      failed = true;
    }
    if (failed) throw blob::BlobError("mirror fetch failed");
    std::unordered_map<std::uint64_t, const blob::ChunkLocation*> by_index;
    by_index.reserve(refs.size());
    for (const auto& r : refs) by_index[r.index] = &r.loc;
    std::vector<sim::Task<>> jobs;
    jobs.reserve(claimed.size());
    for (const auto& [clo, chi] : claimed) {
      const auto it = by_index.find(clo / cs);
      jobs.push_back(materialize_chunk(
          clo, chi, it == by_index.end() ? nullptr : it->second, announce));
    }
    try {
      co_await sim::run_window(store_->simulation(),
                               store_->config().read_window, std::move(jobs));
    } catch (...) {
      failed = true;
    }
    if (failed) throw blob::BlobError("mirror fetch failed");
  }
}

sim::Task<common::Buffer> MirrorDevice::read(std::uint64_t offset,
                                             std::uint64_t len) {
  if (offset + len > cfg_.capacity)
    len = offset < cfg_.capacity ? cfg_.capacity - offset : 0;
  if (len == 0) co_return common::Buffer();
  // Charge local-disk time only for content that was already cached (fresh
  // fetches are served from memory as they land).
  std::uint64_t pre_cached = 0;
  for (const common::Range& r : available_.intersection(offset, offset + len))
    pre_cached += r.length();
  co_await ensure_available(offset, offset + len, /*announce=*/true);
  if (pre_cached > 0) co_await disk_->read(stream_, offset, pre_cached);
  co_return cache_.read(offset, len);
}

sim::Task<> MirrorDevice::write(std::uint64_t offset, common::Buffer data) {
  const std::uint64_t len = data.size();
  if (len == 0) co_return;
  if (offset + len > cfg_.capacity)
    throw std::runtime_error("mirror write beyond capacity");
  cache_.write(offset, std::move(data));
  available_.insert(offset, offset + len);
  dirty_.insert(offset, offset + len);
  co_await disk_->write(stream_, offset, len);
}

sim::Task<blob::BlobId> MirrorDevice::ioctl_clone() {
  if (ckpt_blob_ == 0) {
    ckpt_blob_ = co_await client_.clone(backing_blob_, backing_version_);
  }
  co_return ckpt_blob_;
}

sim::Task<blob::VersionId> MirrorDevice::ioctl_commit() {
  co_await ioctl_clone();
  // Round dirty ranges out to chunk boundaries (the repository stores whole
  // chunks; the remainder of a partially-dirty chunk is copied up from the
  // backing snapshot if not locally present).
  const std::uint64_t cs = chunk_size();
  common::RangeSet rounded;
  for (const common::Range& d : dirty_.to_vector()) {
    const std::uint64_t lo = d.begin / cs * cs;
    const std::uint64_t hi = std::min((d.end + cs - 1) / cs * cs,
                                      cfg_.capacity);
    rounded.insert(lo, hi);
  }
  if (rounded.empty()) {
    // Unchanged disk: the previous snapshot already captures this state.
    last_commit_payload_ = 0;
    last_commit_shipped_ = 0;
    co_return last_version_;
  }

  // Copy-up whatever part of the rounded ranges is not locally present.
  std::uint64_t payload = 0;
  for (const common::Range& r : rounded.to_vector()) {
    co_await ensure_available(r.begin, r.end, /*announce=*/false);
    payload += r.length();
  }

  if (flush_agent_ != nullptr) {
    // Asynchronous pipeline: freeze the dirty content — a COW snapshot of
    // the local difference log, so staging costs no simulated I/O — and
    // hand it to the drain agent. The VM resumes as soon as submit()
    // returns the provisional version; the drain charges the local-disk
    // reads and repository transfers in the background. read_extents keeps
    // the real/phantom pieces exact, matching the synchronous reader's
    // per-chunk fidelity.
    common::SparseFile staged;
    for (const common::Range& r : rounded.to_vector()) {
      for (auto& [off, piece] : cache_.read_extents(r.begin, r.length())) {
        staged.write(off, std::move(piece));
      }
    }
    dirty_.clear();
    last_commit_payload_ = payload;
    const blob::VersionId v = co_await flush_agent_->submit(
        ckpt_blob_, std::move(staged), std::move(rounded));
    last_version_ = v;
    co_return v;
  }

  // Stream the commit: chunks are read from the local cache disk inside the
  // store pipeline, overlapping local I/O with provider transfers (spooled
  // readahead policy in blob/spool.h). Both `rounded` and the reader live
  // in this frame, which awaits the pipeline.
  std::vector<blob::BlobClient::ExtentSpec> specs;
  for (const common::Range& r : rounded.to_vector()) {
    specs.push_back({r.begin, r.length()});
  }
  blob::SpooledCommitReader spool(
      *disk_, stream_, &rounded,
      [this](std::uint64_t offset, std::uint64_t length) {
        return cache_.read(offset, length);
      });
  const blob::VersionId v =
      co_await client_.write_extents_via(ckpt_blob_, std::move(specs),
                                         spool.reader(), reducer_);
  dirty_.clear();
  last_commit_payload_ = payload;
  last_commit_shipped_ = client_.last_commit_stored_bytes();
  last_version_ = v;
  co_return v;
}

void MirrorDevice::hint(std::uint64_t offset, std::uint64_t len) {
  const std::uint64_t end = std::min(offset + len, cfg_.capacity);
  if (offset >= end) return;
  if (available_.contains(offset, end)) return;
  // Prune finished workers, then spawn a background fetch.
  std::erase_if(prefetchers_,
                [](const sim::ProcessPtr& p) { return !p || p->finished(); });
  prefetchers_.push_back(store_->simulation().spawn(
      "prefetch", prefetch_worker(offset, end)));
}

sim::Task<> MirrorDevice::prefetch_worker(std::uint64_t begin,
                                          std::uint64_t end) {
  // Repository-wide admission first: a mass rollback's prefetch storm
  // queues at the admission plane's restart-prefetch gate alongside live
  // commits. The permit is RAII-held across the fetch — the destructor
  // kills prefetchers_ at teardown, and a leaked permit would wedge the
  // next deployment's restart against this store.
  net::FairGate::Permit admission = co_await store_->admission().admit(
      qos::IoContext{cfg_.tenant, qos::GateClass::RestartPrefetch},
      static_cast<double>(end - begin));
  (void)admission;
  // Local stream bound, released through the same RAII pattern as
  // ServiceQueue::process — a plain release() after the co_await would
  // leak the slot whenever the worker is killed mid-fetch.
  co_await prefetch_slots_->acquire();
  struct Slot {
    sim::Semaphore* slots;
    ~Slot() { slots->release(); }
  } slot{prefetch_slots_.get()};
  try {
    co_await ensure_available(begin, end, /*announce=*/false);
  } catch (...) {
    // Backing unavailable: the demand path will surface it.
  }
}

sim::Task<std::vector<blob::BlobClient::ChunkRef>>
MirrorDevice::resolve_backing_chunks() {
  co_return co_await client_.resolve_chunks(backing_blob_, backing_version_,
                                            0, cfg_.capacity);
}

void MirrorDevice::start_scheduled_prefetch(
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges) {
  if (ranges.empty()) return;
  std::erase_if(prefetchers_,
                [](const sim::ProcessPtr& p) { return !p || p->finished(); });
  prefetchers_.push_back(store_->simulation().spawn(
      "restart-prefetch", scheduled_prefetch_body(std::move(ranges))));
}

sim::Task<> MirrorDevice::scheduled_prefetch_body(
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges) {
  // Each range worker gates on prefetch_slots_, so at most
  // prefetch_streams chunks are in flight while the order is preserved.
  std::vector<sim::Task<>> jobs;
  jobs.reserve(ranges.size());
  for (const auto& [begin, end] : ranges) {
    jobs.push_back(prefetch_worker(begin, end));
  }
  co_await sim::when_all(store_->simulation(), std::move(jobs));
}

// --- PrefetchBus -------------------------------------------------------------

void PrefetchBus::detach(MirrorDevice* m) {
  std::erase(*mirrors_, m);
  if (m->own_cache_ != nullptr) {
    // The device's private fallback cache dies with it; holder entries
    // pointing at it must not dangle. Shared per-node caches are owned by
    // the Cloud and outlive any device, so they stay registered.
    DecodedChunkCache* dead = m->own_cache_.get();
    for (auto it = holders_.begin(); it != holders_.end();) {
      auto& vec = it->second;
      std::erase_if(vec, [dead](const Holder& h) { return h.cache == dead; });
      it = vec.empty() ? holders_.erase(it) : std::next(it);
    }
  }
}

void PrefetchBus::announce(MirrorDevice* self, const ChunkKey& key,
                           std::uint64_t offset, std::uint64_t len) {
  if (!announced_.insert(key).second) return;  // once per deployment
  ++hints_sent_;
  hinted_bytes_ += len;
  for (MirrorDevice* m : *mirrors_) {
    if (m == self) continue;
    // The timer may outlive the bus or the device (failure mid-restart
    // destroys instances with hints still queued): a weak reference to the
    // attach list gates both — bus gone drops the hint, device gone means
    // it is no longer listed.
    std::weak_ptr<std::vector<MirrorDevice*>> alive = mirrors_;
    sim_->call_in(cfg_.hint_latency, [alive, m, offset, len] {
      const auto mirrors = alive.lock();
      if (!mirrors) return;
      if (std::find(mirrors->begin(), mirrors->end(), m) == mirrors->end())
        return;
      m->hint(offset, len);
    });
  }
}

void PrefetchBus::publish(const ChunkKey& key, net::NodeId node,
                          DecodedChunkCache* cache) {
  auto& vec = holders_[key];
  for (const Holder& h : vec) {
    if (h.node == node && h.cache == cache) return;
  }
  vec.push_back(Holder{node, cache});
}

void PrefetchBus::drop_node(net::NodeId node) {
  for (auto it = holders_.begin(); it != holders_.end();) {
    auto& vec = it->second;
    std::erase_if(vec, [node](const Holder& h) { return h.node == node; });
    it = vec.empty() ? holders_.erase(it) : std::next(it);
  }
}

std::optional<PrefetchBus::PeerHit> PrefetchBus::find_holder(
    const ChunkKey& key, net::NodeId self) {
  const auto it = holders_.find(key);
  if (it == holders_.end()) return std::nullopt;
  auto& vec = it->second;
  // `best` is a stable index: it only ever points at an already-visited
  // valid entry, and swap-pop eviction only rewrites positions at or after
  // the scan cursor, never an earlier index.
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t best = kNone;
  const common::Buffer* best_buf = nullptr;
  for (std::size_t i = 0; i < vec.size();) {
    if (vec[i].node == self) {
      ++i;
      continue;
    }
    const common::Buffer* buf = vec[i].cache->get(key);
    if (buf == nullptr) {
      // Evicted on the holder side: deregister and keep scanning.
      vec[i] = vec.back();
      vec.pop_back();
      continue;
    }
    if (best == kNone || vec[i].active < vec[best].active) {
      best = i;
      best_buf = buf;  // stable: nothing puts into these caches mid-scan
    }
    ++i;
  }
  if (vec.empty()) {
    holders_.erase(it);
    return std::nullopt;
  }
  if (best == kNone || vec[best].active >= kPeerFanout) {
    return std::nullopt;  // swarm oversubscribed: grow through the repo
  }
  ++vec[best].active;
  ++peer_copies_;
  return PeerHit{vec[best].node, *best_buf};
}

void PrefetchBus::finish_peer_copy(const ChunkKey& key, net::NodeId node) {
  const auto it = holders_.find(key);
  if (it != holders_.end()) {
    for (Holder& h : it->second) {
      if (h.node == node && h.active > 0) {
        --h.active;
        break;
      }
    }
  }
  // A freed fan-out slot is progress for anyone parked on this content.
  repo_waiters_.notify_all();
}

sim::Task<> PrefetchBus::schedule_restart_prefetch(
    std::uint64_t per_instance_budget) {
  if (mirrors_->empty() || per_instance_budget == 0) co_return;
  // Resolve every instance's backing window to chunk tuples, in parallel
  // (this is metadata traffic only; it warms each client's node cache).
  struct InstanceMap {
    MirrorDevice* m = nullptr;
    std::vector<blob::BlobClient::ChunkRef> refs;
  };
  auto maps = std::make_shared<std::vector<InstanceMap>>(mirrors_->size());
  std::vector<sim::Task<>> resolves;
  resolves.reserve(mirrors_->size());
  for (std::size_t i = 0; i < mirrors_->size(); ++i) {
    (*maps)[i].m = (*mirrors_)[i];
    resolves.push_back(
        [](MirrorDevice* m, InstanceMap* out) -> sim::Task<> {
          out->refs = co_await m->resolve_backing_chunks();
        }((*mirrors_)[i], &(*maps)[i]));
  }
  co_await sim::when_all(*sim_, std::move(resolves));

  // Popularity: how many instances share each content identity.
  std::unordered_map<ChunkKey, std::uint32_t, ChunkKeyHash> popularity;
  for (const InstanceMap& im : *maps) {
    for (const auto& r : im.refs) {
      if (r.loc.id == 0 || r.loc.encoding == blob::ChunkEncoding::Zero)
        continue;
      ++popularity[ChunkKey::of(r.loc)];
    }
  }

  for (std::size_t i = 0; i < maps->size(); ++i) {
    InstanceMap& im = (*maps)[i];
    std::vector<blob::BlobClient::ChunkRef>& refs = im.refs;
    std::erase_if(refs, [](const blob::BlobClient::ChunkRef& r) {
      return r.loc.id == 0 || r.loc.encoding == blob::ChunkEncoding::Zero;
    });
    std::stable_sort(refs.begin(), refs.end(),
                     [&popularity](const auto& a, const auto& b) {
                       return popularity[ChunkKey::of(a.loc)] >
                              popularity[ChunkKey::of(b.loc)];
                     });
    const std::uint64_t cs = im.m->chunk_size();
    // Rotate each instance's start so concurrent repository fetches spread
    // over distinct popular chunks (the single-flight claim turns the rest
    // into peer copies); globally the most-shared content still lands
    // first.
    const std::size_t rot =
        refs.empty() ? 0 : (i * refs.size()) / maps->size();
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
    std::uint64_t budget = per_instance_budget;
    for (std::size_t k = 0; k < refs.size(); ++k) {
      const auto& r = refs[(k + rot) % refs.size()];
      const std::uint64_t len = r.loc.logical();
      if (len > budget) break;
      budget -= len;
      const std::uint64_t clo = r.index * cs;
      ranges.emplace_back(clo,
                          std::min(clo + len, im.m->capacity()));
    }
    im.m->start_scheduled_prefetch(std::move(ranges));
  }
}

}  // namespace blobcr::core
