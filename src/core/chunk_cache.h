// DecodedChunkCache: the per-compute-node cache of *decoded* snapshot
// chunks that backs the content-addressed restart data plane.
//
// Every mirroring module on a node shares one cache, so a chunk fetched
// from the repository (or copied from a peer) is decoded once per node —
// not once per rank — and every later rank on the node materializes it with
// a memory copy instead of any transfer. The deployment-wide PrefetchBus
// records which nodes' caches hold which content, turning one instance's
// fetch into a cheap intra-deployment peer copy for everyone else.
//
// Keys are content identities, not storage identities: a chunk that carries
// a real content digest (reduction pipeline) is keyed on (digest, logical
// length) so distinct ChunkIds with identical bytes share one cached copy;
// digest-less chunks (plain commits, phantom payloads) fall back to their
// globally-unique ChunkId.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "blob/types.h"
#include "common/buffer.h"
#include "common/rng.h"

namespace blobcr::core {

/// Content identity of a stored chunk (see file comment for the keying
/// rule). Zero-encoded holes have no key — they are materialized locally.
struct ChunkKey {
  std::uint64_t a = 0;  // content digest, or ChunkId when digest-less
  std::uint64_t b = 0;  // (logical_size << 1) | 1 for digest keys; 0 for id keys

  static ChunkKey of(const blob::ChunkLocation& loc) {
    if (loc.digest != 0) {
      return ChunkKey{loc.digest,
                      (static_cast<std::uint64_t>(loc.logical()) << 1) | 1};
    }
    return ChunkKey{loc.id, 0};
  }

  bool operator==(const ChunkKey&) const = default;
};

struct ChunkKeyHash {
  std::size_t operator()(const ChunkKey& k) const {
    return static_cast<std::size_t>(common::mix64(k.a ^ common::mix64(k.b)));
  }
};

class DecodedChunkCache {
 public:
  explicit DecodedChunkCache(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  DecodedChunkCache(const DecodedChunkCache&) = delete;
  DecodedChunkCache& operator=(const DecodedChunkCache&) = delete;

  /// The decoded bytes for `key`, or nullptr. A hit refreshes LRU order.
  /// The pointer is valid until the next put() (eviction may free it).
  const common::Buffer* get(const ChunkKey& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return &it->second->data;
  }

  /// Inserts (or refreshes) a decoded chunk, evicting LRU entries to stay
  /// within the byte budget. Entries larger than the whole budget are not
  /// cached.
  void put(const ChunkKey& key, common::Buffer data) {
    if (data.size() > capacity_) return;
    const auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return;  // identical content by key; keep the resident copy
    }
    bytes_ += data.size();
    lru_.push_front(Entry{key, std::move(data)});
    map_[key] = lru_.begin();
    while (bytes_ > capacity_ && !lru_.empty()) {
      const Entry& victim = lru_.back();
      bytes_ -= victim.data.size();
      map_.erase(victim.key);
      lru_.pop_back();
      ++evictions_;
    }
  }

  /// Drops one entry (e.g. a parity block whose group was invalidated by
  /// GC — see redundancy::Manager). Returns false when absent.
  bool erase(const ChunkKey& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return false;
    bytes_ -= it->second->data.size();
    lru_.erase(it->second);
    map_.erase(it);
    return true;
  }

  /// Drops every entry (node reclaimed/reimaged). Counters are kept.
  void clear() {
    lru_.clear();
    map_.clear();
    bytes_ = 0;
  }

  std::uint64_t bytes() const { return bytes_; }
  std::size_t entries() const { return map_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    ChunkKey key;
    common::Buffer data;
  };

  std::uint64_t capacity_;
  std::uint64_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::list<Entry> lru_;
  std::unordered_map<ChunkKey, std::list<Entry>::iterator, ChunkKeyHash> map_;
};

}  // namespace blobcr::core
