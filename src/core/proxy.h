// CheckpointProxy: the per-node service that accepts checkpoint requests
// from VM instances hosted on the same compute node (paper §3.2). It
// authenticates the caller, suspends the VM, drives the CLONE/COMMIT ioctls
// of the mirroring module, resumes the VM and reports the result. The proxy
// is deliberately not reachable from other nodes.
#pragma once

#include "core/mirror_device.h"
#include "net/fabric.h"
#include "sim/sim.h"
#include "vm/vm_instance.h"

namespace blobcr::core {

class CheckpointProxy {
 public:
  struct Result {
    blob::BlobId image = 0;
    blob::VersionId version = 0;
    std::uint64_t payload_bytes = 0;  // chunk payload committed
    sim::Duration vm_downtime = 0;
  };

  CheckpointProxy(sim::Simulation& sim, net::Fabric& fabric, net::NodeId node,
                  sim::Duration auth_cost = 500 * sim::kMicrosecond)
      : sim_(&sim), fabric_(&fabric), node_(node), auth_cost_(auth_cost) {}

  net::NodeId node() const { return node_; }

  /// Serves one checkpoint request from a VM hosted on this node.
  sim::Task<Result> request_checkpoint(vm::VmInstance& vm,
                                       MirrorDevice& dev) {
    if (vm.host() != node_)
      throw std::runtime_error("proxy rejects non-local VM");
    // Guest -> proxy over the node-local (loopback) connection.
    co_await fabric_->message(node_, node_);
    co_await sim_->delay(auth_cost_);

    const sim::Time pause_start = sim_->now();
    vm.pause();
    Result result;
    bool failed = false;
    std::exception_ptr error;
    try {
      result.image = co_await dev.ioctl_clone();
      result.version = co_await dev.ioctl_commit();
      result.payload_bytes = dev.last_commit_payload();
    } catch (...) {
      failed = true;
      error = std::current_exception();
    }
    // The VM is resumed no matter whether the checkpoint succeeded (§3.3).
    vm.resume();
    result.vm_downtime = sim_->now() - pause_start;
    ++requests_;
    if (failed) std::rethrow_exception(error);
    // Result notification back to the guest.
    co_await fabric_->message(node_, node_);
    co_return result;
  }

  std::uint64_t requests_served() const { return requests_; }

 private:
  sim::Simulation* sim_;
  net::Fabric* fabric_;
  net::NodeId node_;
  sim::Duration auth_cost_;
  std::uint64_t requests_ = 0;
};

}  // namespace blobcr::core
