// MirrorDevice: BlobCR's mirroring module (paper §3.2/§3.3, built on FUSE in
// the original). Exposes a raw-image BlockDevice to the hypervisor while:
//
//  * lazily fetching the hot content of the backing snapshot from the
//    checkpoint repository on first access ("lazy transfer"), caching it on
//    the compute node's local disk;
//  * storing guest writes locally as incremental differences (COW);
//  * serving the CLONE ioctl — derive the checkpoint image from the base
//    image (zero-copy, shares all content);
//  * serving the COMMIT ioctl — publish the local modifications since the
//    last commit as one new incremental snapshot of the checkpoint image;
//  * cooperating with a deployment-wide PrefetchBus: chunks one instance
//    fetched are pushed ahead of time to the others ("adaptive
//    prefetching", exploiting boot jitter between instances).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "blob/client.h"
#include "blob/store.h"
#include "common/rangeset.h"
#include "common/sparse.h"
#include "flush/flush.h"
#include "img/block_device.h"
#include "storage/disk.h"

namespace blobcr::flush {
class FlushAgent;
}

namespace blobcr::core {

class PrefetchBus;

class MirrorDevice : public img::BlockDevice {
 public:
  struct Config {
    std::uint64_t capacity = 0;
    std::size_t prefetch_streams = 2;  // background fetches in flight
    /// Asynchronous commit pipeline (src/flush/): when enabled, COMMIT
    /// freezes the dirty set and returns a provisional version while a
    /// background agent drains it to the repository.
    flush::FlushConfig flush;
  };

  MirrorDevice(blob::BlobStore& store, net::NodeId host,
               storage::Disk& local_disk, std::uint64_t disk_stream,
               blob::BlobId backing_blob, blob::VersionId backing_version,
               const Config& cfg, PrefetchBus* bus = nullptr,
               blob::CommitReducer* reducer = nullptr);
  ~MirrorDevice() override;

  // --- BlockDevice ---
  std::uint64_t capacity() const override { return cfg_.capacity; }
  sim::Task<> write(std::uint64_t offset, common::Buffer data) override;
  sim::Task<common::Buffer> read(std::uint64_t offset,
                                 std::uint64_t len) override;

  // --- ioctls (invoked by the checkpointing proxy) ---
  /// Derives the checkpoint image from the backing image if not yet done.
  sim::Task<blob::BlobId> ioctl_clone();
  /// Commits local modifications since the last commit as a new snapshot.
  /// Returns the new version of the checkpoint image. With the async
  /// pipeline enabled the version is provisional (readable only once its
  /// background drain publishes it — see wait_drained()).
  sim::Task<blob::VersionId> ioctl_commit();

  /// Resolves once every provisional commit of this device has published;
  /// rethrows the first drain failure. No-op in synchronous mode.
  sim::Task<> wait_drained();

  /// The async drain agent (nullptr when the pipeline is disabled).
  flush::FlushAgent* flush_agent() const { return flush_agent_.get(); }

  /// Restarted instances commit straight into their backing checkpoint
  /// image rather than cloning a new one.
  void set_checkpoint_blob(blob::BlobId blob, blob::VersionId last_version) {
    ckpt_blob_ = blob;
    last_version_ = last_version;
  }
  blob::BlobId checkpoint_blob() const { return ckpt_blob_; }
  /// Most recent snapshot of the checkpoint image (0 if none yet).
  blob::VersionId last_version() const { return last_version_; }
  blob::BlobId backing_blob() const { return backing_blob_; }
  blob::VersionId backing_version() const { return backing_version_; }

  std::uint64_t dirty_bytes() const { return dirty_.total_length(); }
  std::uint64_t locally_available_bytes() const {
    return available_.total_length();
  }
  std::uint64_t remote_bytes_fetched() const { return remote_fetched_; }
  /// Raw (pre-reduction) payload of the last commit.
  std::uint64_t last_commit_payload() const { return last_commit_payload_; }
  /// Payload that actually shipped to the repository for the last commit
  /// (== last_commit_payload() when no reduction pipeline is attached).
  /// Async mode: reflects the most recent *completed* drain.
  std::uint64_t last_commit_shipped() const;

  /// Prefetch hint from the bus: fetch [offset, offset+len) in the
  /// background if missing.
  void hint(std::uint64_t offset, std::uint64_t len);

  net::NodeId host() const { return host_; }

 private:
  friend class PrefetchBus;

  std::uint64_t chunk_size() const;
  /// Fetches the chunk-aligned gaps of [begin, end) from the backing
  /// snapshot into the local cache. Announces on-demand fetches to the bus.
  sim::Task<> ensure_available(std::uint64_t begin, std::uint64_t end,
                               bool announce);
  sim::Task<> prefetch_worker(std::uint64_t begin, std::uint64_t end);

  blob::BlobStore* store_;
  net::NodeId host_;
  storage::Disk* disk_;
  std::uint64_t stream_;
  blob::BlobId backing_blob_;
  blob::VersionId backing_version_;
  Config cfg_;
  PrefetchBus* bus_;
  blob::CommitReducer* reducer_;  // deployment-scoped reduction pipeline
  blob::BlobClient client_;

  common::SparseFile cache_;      // local content (fetched + written)
  common::RangeSet available_;    // byte ranges present locally
  common::RangeSet dirty_;        // modified since last commit
  common::RangeSet inflight_;     // fetches in progress (dedup)
  sim::Event fetch_done_;         // pulsed whenever a fetch completes
  blob::BlobId ckpt_blob_ = 0;
  blob::VersionId last_version_ = 0;
  std::uint64_t remote_fetched_ = 0;
  std::uint64_t last_commit_payload_ = 0;
  std::uint64_t last_commit_shipped_ = 0;
  std::vector<sim::ProcessPtr> prefetchers_;
  std::unique_ptr<sim::Semaphore> prefetch_slots_;
  // Declared after client_/cache_: the agent's drain loop references both
  // and must be torn down (killed) first.
  std::unique_ptr<flush::FlushAgent> flush_agent_;
};

/// Deployment-scoped prefetch coordination: one instance's on-demand fetch
/// becomes a hint to every other instance, which pulls the same range from
/// its own backing snapshot ahead of demand. Hints travel as control-plane
/// messages (modeled as a fixed latency, not per-pair data flows).
class PrefetchBus {
 public:
  PrefetchBus(sim::Simulation& sim, sim::Duration hint_latency)
      : sim_(&sim), hint_latency_(hint_latency) {}

  void attach(MirrorDevice* m) { mirrors_.push_back(m); }
  void detach(MirrorDevice* m) { std::erase(mirrors_, m); }

  void announce(MirrorDevice* self, std::uint64_t offset, std::uint64_t len) {
    // Deduplicate: each byte range is broadcast once per deployment. A range
    // partially overlapping earlier announcements is trimmed to the
    // uncovered gaps, not re-broadcast in full.
    const auto gaps = announced_.gaps(offset, offset + len);
    if (gaps.empty()) return;
    announced_.insert(offset, offset + len);
    for (const common::Range& gap : gaps) {
      ++hints_sent_;
      hinted_bytes_ += gap.length();
      for (MirrorDevice* m : mirrors_) {
        if (m == self) continue;
        sim_->call_in(hint_latency_,
                      [m, gap] { m->hint(gap.begin, gap.length()); });
      }
    }
  }

  std::size_t attached() const { return mirrors_.size(); }
  /// Hint ranges broadcast (each counted once per deployment, not per peer).
  std::uint64_t hints_sent() const { return hints_sent_; }
  std::uint64_t hinted_bytes() const { return hinted_bytes_; }

 private:
  sim::Simulation* sim_;
  sim::Duration hint_latency_;
  std::vector<MirrorDevice*> mirrors_;
  common::RangeSet announced_;
  std::uint64_t hints_sent_ = 0;
  std::uint64_t hinted_bytes_ = 0;
};

}  // namespace blobcr::core
