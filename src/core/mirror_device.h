// MirrorDevice: BlobCR's mirroring module (paper §3.2/§3.3, built on FUSE in
// the original). Exposes a raw-image BlockDevice to the hypervisor while:
//
//  * lazily fetching the hot content of the backing snapshot from the
//    checkpoint repository on first access ("lazy transfer"), caching it on
//    the compute node's local disk;
//  * storing guest writes locally as incremental differences (COW);
//  * serving the CLONE ioctl — derive the checkpoint image from the base
//    image (zero-copy, shares all content);
//  * serving the COMMIT ioctl — publish the local modifications since the
//    last commit as one new incremental snapshot of the checkpoint image;
//  * cooperating with a deployment-wide PrefetchBus: the content-addressed
//    restart data plane. The lazy-fetch window resolves to chunk identity
//    tuples (ChunkId, digest, encoding) instead of opaque byte ranges, so a
//    chunk any instance of the deployment has already fetched-and-decoded
//    is copied peer-to-peer over the fabric (intra-deployment shaping)
//    instead of refetched from the repository, Zero holes materialize with
//    no transfer at all, and a shared per-node DecodedChunkCache decodes
//    each chunk once per node, not once per rank.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "blob/client.h"
#include "blob/store.h"
#include "common/rangeset.h"
#include "common/sparse.h"
#include "core/chunk_cache.h"
#include "flush/flush.h"
#include "img/block_device.h"
#include "storage/disk.h"

namespace blobcr::federation {
class Fabric;
}
namespace blobcr::flush {
class FlushAgent;
}
namespace blobcr::redundancy {
class Manager;
}

namespace blobcr::core {

class PrefetchBus;

class MirrorDevice : public img::BlockDevice {
 public:
  struct Config {
    std::uint64_t capacity = 0;
    std::size_t prefetch_streams = 2;  // background fetches in flight
    /// Asynchronous commit pipeline (src/flush/): when enabled, COMMIT
    /// freezes the dirty set and returns a provisional version while a
    /// background agent drains it to the repository.
    flush::FlushConfig flush;
    /// Repository tenant this device's commits and fetches run as (QoS
    /// admission + per-tenant accounting at the shared store).
    net::TenantId tenant = net::kDefaultTenant;
    /// The deployment's peer parity tier (redundancy::Manager): commits
    /// fold into XOR groups across peers, and restart gains a parity-
    /// rebuild level between peer copy and repository fetch. nullptr = off.
    redundancy::Manager* redundancy = nullptr;
    /// Multi-zone federation fabric: repository fetches whose chunk lives
    /// in a dead or foreign zone route through nearest-zone resolution
    /// (local replica, peer zone over the WAN class, origin). nullptr or a
    /// single-zone fabric = plain in-zone fetches. nullptr = off.
    federation::Fabric* federation = nullptr;
  };

  MirrorDevice(blob::BlobStore& store, net::NodeId host,
               storage::Disk& local_disk, std::uint64_t disk_stream,
               blob::BlobId backing_blob, blob::VersionId backing_version,
               const Config& cfg, PrefetchBus* bus = nullptr,
               blob::CommitReducer* reducer = nullptr,
               DecodedChunkCache* node_cache = nullptr);
  ~MirrorDevice() override;

  // --- BlockDevice ---
  std::uint64_t capacity() const override { return cfg_.capacity; }
  sim::Task<> write(std::uint64_t offset, common::Buffer data) override;
  sim::Task<common::Buffer> read(std::uint64_t offset,
                                 std::uint64_t len) override;

  // --- ioctls (invoked by the checkpointing proxy) ---
  /// Derives the checkpoint image from the backing image if not yet done.
  sim::Task<blob::BlobId> ioctl_clone();
  /// Commits local modifications since the last commit as a new snapshot.
  /// Returns the new version of the checkpoint image. With the async
  /// pipeline enabled the version is provisional (readable only once its
  /// background drain publishes it — see wait_drained()).
  sim::Task<blob::VersionId> ioctl_commit();

  /// Resolves once every provisional commit of this device has published;
  /// rethrows the first drain failure. No-op in synchronous mode.
  sim::Task<> wait_drained();

  /// The async drain agent (nullptr when the pipeline is disabled).
  flush::FlushAgent* flush_agent() const { return flush_agent_.get(); }

  /// Restarted instances commit straight into their backing checkpoint
  /// image rather than cloning a new one.
  void set_checkpoint_blob(blob::BlobId blob, blob::VersionId last_version) {
    ckpt_blob_ = blob;
    last_version_ = last_version;
  }
  blob::BlobId checkpoint_blob() const { return ckpt_blob_; }
  /// Most recent snapshot of the checkpoint image (0 if none yet).
  blob::VersionId last_version() const { return last_version_; }
  blob::BlobId backing_blob() const { return backing_blob_; }
  blob::VersionId backing_version() const { return backing_version_; }

  std::uint64_t dirty_bytes() const { return dirty_.total_length(); }
  std::uint64_t locally_available_bytes() const {
    return available_.total_length();
  }
  /// Logical bytes materialized from any remote source (repository + peer
  /// copies + parity rebuilds). Zero holes and node-cache hits cost no
  /// transfer and are not counted here.
  std::uint64_t remote_bytes_fetched() const {
    return repo_logical_fetched_ + peer_bytes_fetched_ +
           parity_bytes_rebuilt_;
  }
  /// Wire bytes pulled from repository data providers (post-reduction
  /// stored size — what the repository actually shipped).
  std::uint64_t repo_bytes_fetched() const { return repo_wire_fetched_; }
  /// Decoded bytes copied from deployment peers instead of the repository.
  std::uint64_t peer_bytes_fetched() const { return peer_bytes_fetched_; }
  /// Decoded bytes reconstructed from peer parity groups (the redundancy
  /// tier) instead of fetched from the repository.
  std::uint64_t parity_bytes_rebuilt() const { return parity_bytes_rebuilt_; }
  /// Decoded bytes served by this node's shared chunk cache (no transfer).
  std::uint64_t cache_hit_bytes() const { return cache_hit_bytes_; }
  /// Logical bytes whose repository fetch crossed a zone boundary (served
  /// over the federation's WAN traffic class). Subset of
  /// repo-fetched logical bytes, not an extra source.
  std::uint64_t wan_bytes_fetched() const { return wan_bytes_fetched_; }
  /// Bytes of Zero holes materialized locally (no transfer, no payload).
  std::uint64_t zero_bytes_materialized() const { return zero_bytes_; }
  /// Raw (pre-reduction) payload of the last commit.
  std::uint64_t last_commit_payload() const { return last_commit_payload_; }
  /// Payload that actually shipped to the repository for the last commit
  /// (== last_commit_payload() when no reduction pipeline is attached).
  /// Async mode: reflects the most recent *completed* drain.
  std::uint64_t last_commit_shipped() const;

  /// Prefetch hint from the bus: fetch [offset, offset+len) in the
  /// background if missing.
  void hint(std::uint64_t offset, std::uint64_t len);

  /// Resolves the whole backing window to chunk identity tuples (restart
  /// scheduler input; warms the metadata cache as a side effect).
  sim::Task<std::vector<blob::BlobClient::ChunkRef>> resolve_backing_chunks();

  /// Kicks a background worker that materializes the given chunk-aligned
  /// ranges in order, bounded by prefetch_streams (the restart scheduler
  /// hands popularity-ordered ranges here).
  void start_scheduled_prefetch(
      std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges);

  net::NodeId host() const { return host_; }
  /// The deployment's chunk exchange this device cooperates with (nullptr
  /// when adaptive prefetching is off).
  PrefetchBus* bus() const { return bus_; }

 private:
  friend class PrefetchBus;
  struct InflightGuard;

  std::uint64_t chunk_size() const;
  /// Materializes the chunk-aligned gaps of [begin, end) into the local
  /// cache, chunk by chunk: Zero holes locally, then the node's decoded
  /// cache, then a peer copy, then a parity-group rebuild (redundancy
  /// tier), then (last) a repository fetch. Announces on-demand chunks to
  /// the bus.
  sim::Task<> ensure_available(std::uint64_t begin, std::uint64_t end,
                               bool announce);
  /// One chunk of ensure_available (the [clo, chi) range); `loc` is the
  /// resolved leaf or nullptr for a never-written hole.
  sim::Task<> materialize_chunk(std::uint64_t clo, std::uint64_t chi,
                                const blob::ChunkLocation* loc,
                                bool announce);
  sim::Task<> prefetch_worker(std::uint64_t begin, std::uint64_t end);
  sim::Task<> scheduled_prefetch_body(
      std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges);
  DecodedChunkCache& node_cache();

  blob::BlobStore* store_;
  net::NodeId host_;
  storage::Disk* disk_;
  std::uint64_t stream_;
  blob::BlobId backing_blob_;
  blob::VersionId backing_version_;
  Config cfg_;
  PrefetchBus* bus_;
  blob::CommitReducer* reducer_;  // deployment-scoped reduction pipeline
  blob::BlobClient client_;

  common::SparseFile cache_;      // local content (fetched + written)
  common::RangeSet available_;    // byte ranges present locally
  common::RangeSet dirty_;        // modified since last commit
  common::RangeSet inflight_;     // chunk fetches in progress (dedup)
  sim::Event fetch_done_;         // pulsed whenever a fetch completes
  blob::BlobId ckpt_blob_ = 0;
  blob::VersionId last_version_ = 0;
  std::uint64_t repo_wire_fetched_ = 0;
  std::uint64_t repo_logical_fetched_ = 0;
  std::uint64_t peer_bytes_fetched_ = 0;
  std::uint64_t parity_bytes_rebuilt_ = 0;
  std::uint64_t cache_hit_bytes_ = 0;
  std::uint64_t wan_bytes_fetched_ = 0;
  std::uint64_t zero_bytes_ = 0;
  std::uint64_t last_commit_payload_ = 0;
  std::uint64_t last_commit_shipped_ = 0;
  std::vector<sim::ProcessPtr> prefetchers_;
  std::unique_ptr<sim::Semaphore> prefetch_slots_;
  /// Shared per-node cache (owned by the Cloud) or, when none was supplied
  /// (standalone devices in tests), a private fallback.
  DecodedChunkCache* node_cache_;
  std::unique_ptr<DecodedChunkCache> own_cache_;
  // Declared after client_/cache_: the agent's drain loop references both
  // and must be torn down (killed) first.
  std::unique_ptr<flush::FlushAgent> flush_agent_;
};

/// PrefetchBus: the deployment-scoped content-addressed chunk exchange.
///
/// What used to broadcast byte-range hints now coordinates on chunk
/// identity (ChunkKey — content digest when known, ChunkId otherwise):
///
///  * holders_ records which nodes' DecodedChunkCaches hold which decoded
///    chunks, so an instance materializes a chunk a peer already has via an
///    intra-deployment fabric copy (peer_shape: latency/bandwidth distinct
///    from repository transfers) instead of a repository fetch;
///  * repository fetches are claimed per content key deployment-wide: only
///    one instance pulls a given chunk from the repository at a time,
///    everyone else waits and then takes the peer copy;
///  * on-demand fetches still broadcast prefetch hints (once per content
///    key per deployment, exploiting boot jitter), and schedule_restart_
///    prefetch() orders each instance's background prefetch by chunk
///    popularity — chunks shared by the most ranks first — with per-
///    instance rotation so concurrent repository fetches spread over
///    distinct popular chunks.
class PrefetchBus {
 public:
  struct Config {
    sim::Duration hint_latency = 300 * sim::kMicrosecond;
    /// Shaping of peer-to-peer chunk copies (intra-deployment traffic
    /// class; distinct from repository transfers which run unshaped).
    net::Fabric::Shape peer_shape{};
  };

  PrefetchBus(sim::Simulation& sim, const Config& cfg)
      : sim_(&sim),
        cfg_(cfg),
        mirrors_(std::make_shared<std::vector<MirrorDevice*>>()),
        repo_waiters_(sim) {}
  PrefetchBus(sim::Simulation& sim, sim::Duration hint_latency)
      : PrefetchBus(sim, Config{hint_latency, {}}) {}

  void attach(MirrorDevice* m) { mirrors_->push_back(m); }
  void detach(MirrorDevice* m);

  /// A demand fetch of `key` (living at [offset, offset+len) of the
  /// announcing instance's image) — peers prefetch the same range from
  /// their own backing, which resolves to the same content for shared
  /// chunks. Broadcast once per content key per deployment.
  void announce(MirrorDevice* self, const ChunkKey& key, std::uint64_t offset,
                std::uint64_t len);

  /// Registers `node`'s cache as holding the decoded chunk.
  void publish(const ChunkKey& key, net::NodeId node,
               DecodedChunkCache* cache);
  /// Drops every holder entry on `node` (fail-stop: its cache is gone).
  void drop_node(net::NodeId node);
  /// Drops the whole holder registry and the per-deployment announce
  /// dedup (cold restart: every node was reclaimed).
  void drop_all_holders() {
    holders_.clear();
    announced_.clear();
  }

  struct PeerHit {
    net::NodeId node;
    common::Buffer data;  // copied out so holder-side eviction cannot race
  };
  /// A peer (different node) whose cache holds the decoded chunk — the
  /// least-loaded one. Returns nullopt when no holder exists OR every
  /// holder is already serving kPeerFanout copies: an oversubscribed swarm
  /// falls through to another repository fetch (idle provider bandwidth)
  /// instead of funneling the whole deployment through one NIC. The caller
  /// must bracket the copy with begin/finish accounting (finish via RAII so
  /// a killed copier never pins a holder's slot).
  std::optional<PeerHit> find_holder(const ChunkKey& key, net::NodeId self);
  void finish_peer_copy(const ChunkKey& key, net::NodeId node);

  /// Concurrent peer copies one holder serves before the swarm grows new
  /// replicas through the repository instead.
  static constexpr int kPeerFanout = 4;

  /// Deployment-wide single-flight on repository fetches: true = caller
  /// fetches; false = someone else is already fetching this content.
  bool claim_repo_fetch(const ChunkKey& key) {
    return repo_inflight_.insert(key).second;
  }
  void release_repo_fetch(const ChunkKey& key) {
    repo_inflight_.erase(key);
    repo_waiters_.notify_all();
  }
  auto wait_repo_fetch() { return repo_waiters_.wait(); }

  /// Restart scheduler: resolves every attached instance's backing window
  /// to chunk tuples, ranks content by popularity (instances sharing it),
  /// and starts each instance's background prefetch over the most-shared
  /// chunks first, up to `per_instance_budget` logical bytes.
  sim::Task<> schedule_restart_prefetch(std::uint64_t per_instance_budget);

  const net::Fabric::Shape& peer_shape() const { return cfg_.peer_shape; }

  std::size_t attached() const { return mirrors_->size(); }
  /// Hint broadcasts (each content key counted once per deployment).
  std::uint64_t hints_sent() const { return hints_sent_; }
  std::uint64_t hinted_bytes() const { return hinted_bytes_; }
  /// Peer copies served (chunks that skipped the repository).
  std::uint64_t peer_copies() const { return peer_copies_; }

 private:
  struct Holder {
    net::NodeId node;
    DecodedChunkCache* cache;
    int active = 0;  // peer copies currently streaming from this holder
  };

  sim::Simulation* sim_;
  Config cfg_;
  /// Held behind a shared_ptr so scheduled hint timers can hold a weak
  /// reference: a timer firing after the bus (or a device) is gone checks
  /// liveness instead of dereferencing freed memory.
  std::shared_ptr<std::vector<MirrorDevice*>> mirrors_;
  std::unordered_map<ChunkKey, std::vector<Holder>, ChunkKeyHash> holders_;
  std::unordered_set<ChunkKey, ChunkKeyHash> announced_;
  std::unordered_set<ChunkKey, ChunkKeyHash> repo_inflight_;
  sim::WaitQueue repo_waiters_;
  std::uint64_t hints_sent_ = 0;
  std::uint64_t hinted_bytes_ = 0;
  std::uint64_t peer_copies_ = 0;
};

}  // namespace blobcr::core
