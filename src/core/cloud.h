// Cloud + Deployment: the IaaS middleware of the paper's Figure 1.
//
// Cloud owns the simulated testbed (nodes, disks, fabric), the persistent
// repository (BlobSeer store for BlobCR, PVFS for the qcow baselines) and
// the uploaded base image. Deployment implements multi-deployment of VM
// instances from the base image, guest-triggered disk snapshots through the
// node-local proxies, the checkpoint -> snapshot mapping, and restart from
// a globally consistent set of snapshots on fresh nodes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "blob/client.h"
#include "blob/store.h"
#include "common/sparse.h"
#include "federation/federation.h"
#include "common/units.h"
#include "core/chunk_cache.h"
#include "core/mirror_device.h"
#include "flush/flush.h"
#include "core/proxy.h"
#include "core/qcow_proxy.h"
#include "img/qcow.h"
#include "mpi/mpi.h"
#include "net/fabric.h"
#include "pfs/pvfs.h"
#include "pfs/pvfs_store.h"
#include "qos/admission.h"
#include "redundancy/parity.h"
#include "reduce/reduction.h"
#include "sim/sim.h"
#include "storage/disk.h"
#include "vm/guest_os.h"
#include "vm/vm_instance.h"

namespace blobcr::reduce {
class ChunkDigestIndex;
class Reducer;
}
namespace blobcr::redundancy {
class Manager;
}

namespace blobcr::core {

enum class Backend { BlobCR, Qcow2Disk, Qcow2Full };

const char* backend_name(Backend b);

struct CloudConfig {
  std::size_t compute_nodes = 120;   // paper: 120 graphene nodes
  std::size_t metadata_nodes = 20;   // paper: 20 BlobSeer metadata providers

  double nic_bandwidth_bps = 117.5e6;                 // measured GbE
  sim::Duration net_latency = 100 * sim::kMicrosecond;
  double disk_bandwidth_bps = 55e6;                   // SATA II
  sim::Duration disk_position_cost = 6 * sim::kMillisecond;

  std::uint64_t chunk_size = 256 * 1024;  // BlobSeer stripe (paper-tuned)
  int replication = 1;
  std::uint64_t pvfs_stripe = 256 * 1024;
  std::uint64_t qcow_cluster_size = 64 * 1024;

  Backend backend = Backend::BlobCR;
  /// Snapshot data-reduction pipeline on the commit path (BlobCR backend
  /// only). Off by default; see src/reduce/reduction.h for the knobs.
  reduce::ReductionConfig reduction;
  /// End-to-end QoS (BlobCR backend only): weighted-fair per-tenant
  /// ordering at the version/provider manager queues and the repository's
  /// admission plane (commit, provider-io and restart-prefetch gates), all
  /// configured here. Off (FIFO, unbounded) by default; see
  /// src/qos/admission.h.
  qos::Config qos;
  /// Version-manager shards (BlobCR backend only): blob version-slot table
  /// by blob-id hash, named-blob registry by name hash, one request queue
  /// per shard. 1 = the single-daemon pre-sharding behavior.
  std::size_t version_shards = 1;
  /// Asynchronous commit pipeline (BlobCR backend only). Off by default;
  /// see src/flush/flush.h for the knobs and failure semantics.
  flush::FlushConfig flush;
  /// Peer parity redundancy tier (BlobCR backend, requires flush.enabled:
  /// the encode rides the async drain). Off by default; see
  /// src/redundancy/parity.h for the knobs.
  redundancy::RedundancyConfig redundancy;
  /// Cross-repo federation (BlobCR backend only): federation.zones > 1
  /// splits the compute pool into that many availability zones, each with
  /// its own BlobStore (own managers, own metadata plane, own provider
  /// slab), joined into one logical repository by federation::Fabric.
  /// Manifest registration and chunk replication ride the async drain, so
  /// zone-loss failover requires flush.enabled. See
  /// src/federation/federation.h for the knobs.
  federation::FederationConfig federation;
  bool adaptive_prefetch = true;
  sim::Duration hint_latency = 300 * sim::kMicrosecond;
  /// Content-addressed restart data plane: intra-deployment peer copies of
  /// decoded chunks run as their own traffic class — typically same-rack,
  /// so lower latency than repository requests; bandwidth 0 = NIC-limited
  /// (the fabric's fair share still applies either way).
  sim::Duration peer_latency = 50 * sim::kMicrosecond;
  double peer_bandwidth_bps = 0;
  /// Per-compute-node decoded-chunk cache (shared by all mirroring modules
  /// on the node; backs the peer exchange). 0 disables.
  std::uint64_t chunk_cache_bytes = 512 * common::kMB;
  /// Deprecated alias: forwards into qos.restart_prefetch_budget (the
  /// admission plane owns all QoS knobs now). A non-default value here
  /// wins only when the qos field was left at its default.
  std::uint64_t restart_prefetch_budget = 64 * common::kMB;
  sim::Duration proxy_auth_cost = 500 * sim::kMicrosecond;

  vm::GuestOsConfig os = vm::GuestOsConfig::debian_like();
  vm::VmConfig vm;
};

/// One VM instance's snapshot inside a global checkpoint.
struct InstanceSnapshot {
  std::size_t instance = 0;
  Backend backend = Backend::BlobCR;
  // BlobCR: (checkpoint image, snapshot version).
  blob::BlobId image = 0;
  blob::VersionId version = 0;
  // qcow baselines: the PVFS copy and the image tables.
  std::string pvfs_path;
  img::QcowImage::State qcow_state;
  /// Per-snapshot size metric (Figure 4 / Table 1): incremental payload for
  /// BlobCR, shipped container bytes for the baselines.
  std::uint64_t bytes = 0;
  sim::Duration vm_downtime = 0;
};

struct GlobalCheckpoint {
  std::vector<InstanceSnapshot> snapshots;
  std::uint64_t total_bytes() const {
    std::uint64_t sum = 0;
    for (const auto& s : snapshots) sum += s.bytes;
    return sum;
  }
};

/// One new instance's share of an elastic (N -> M) restart: the snapshot it
/// boots from, plus any extra source tuples it adopts as attached data
/// volumes (M < N shards). Built by cr::build_restart_plan (src/cr/remap.h).
struct InstancePlan {
  InstanceSnapshot boot;
  /// M > N clones: the instance lazy-fetches the source snapshot but must
  /// NOT adopt its checkpoint image — the first commit derives a fresh one,
  /// so no two instances ever commit into the same image.
  bool fresh_image = false;
  std::vector<InstanceSnapshot> attached;
};

/// The instance-level payload of a rescaling restart: one InstancePlan per
/// new instance, replacing the classic path's implied 1:1 tuple mapping.
struct RestartPlan {
  std::vector<InstancePlan> instances;
};

class Deployment;

class Cloud {
 public:
  explicit Cloud(CloudConfig cfg);
  ~Cloud();

  sim::Simulation& simulation() { return sim_; }
  const sim::Simulation& simulation() const { return sim_; }
  /// Current simulated time, readable from const contexts (status banners,
  /// record stamping) without reaching through the mutable simulation.
  sim::Time now() const { return sim_.now(); }
  const CloudConfig& config() const { return cfg_; }
  net::Fabric& fabric() { return *fabric_; }
  blob::BlobStore* blob_store() { return blob_.get(); }
  /// Zone z's store (zone 0 == blob_store()); nullptr for unknown zones or
  /// non-BlobCR backends.
  blob::BlobStore* blob_store(std::uint32_t zone) {
    if (zone == 0) return blob_.get();
    return zone <= zone_stores_.size() ? zone_stores_[zone - 1].get()
                                       : nullptr;
  }
  /// Availability zones the repository spans (1 without federation).
  std::size_t zones() const { return blob_ ? 1 + zone_stores_.size() : 1; }
  /// The federation fabric joining the zone stores; nullptr when
  /// federation is off (zones == 1) or the backend is not BlobCR.
  federation::Fabric* federation() { return federation_.get(); }
  /// The store owning `id` (decoded from the blob id's zone bits; always
  /// the single store without federation).
  blob::BlobStore* store_of_blob(blob::BlobId id) {
    return federation_ != nullptr ? federation_->store_of_blob(id)
                                  : blob_.get();
  }
  std::uint32_t zone_of_node(net::NodeId node) const {
    return federation_ != nullptr ? federation_->zone_of_node(node) : 0;
  }
  /// Per-tenant capacity ceiling, installed on every zone's store.
  void set_tenant_quota(net::TenantId t, blob::BlobStore::TenantQuota q);
  pfs::PvfsCluster* pvfs() { return pvfs_.get(); }
  storage::Disk& disk(net::NodeId node) { return *disks_.at(node); }
  std::uint64_t next_disk_stream(net::NodeId node) {
    return streams_.at(node).next();
  }

  /// The node's shared decoded-chunk cache (lazily created; one per compute
  /// node, shared by every mirroring module that ever runs there). With
  /// CloudConfig::chunk_cache_bytes == 0 this is a zero-capacity cache:
  /// every insert is rejected, so nothing is cached and — since the peer
  /// exchange serves out of these caches — no peer copies happen either.
  /// (Returning nullptr instead would silently hand each device a private
  /// fallback cache, un-disabling the ablation's "off" data point.)
  DecodedChunkCache* chunk_cache(net::NodeId node) {
    auto& slot = chunk_caches_[node];
    if (!slot) {
      slot = std::make_unique<DecodedChunkCache>(cfg_.chunk_cache_bytes);
    }
    return slot.get();
  }

  /// Empties every node's decoded-chunk cache (the machines were reclaimed
  /// / reimaged). Cache objects stay alive — mirroring modules hold
  /// pointers to them — only their contents are dropped.
  void reset_chunk_caches() {
    for (auto& [node, cache] : chunk_caches_) {
      if (cache) cache->clear();
    }
  }

  net::NodeId compute_node(std::size_t i) const {
    return static_cast<net::NodeId>(i % cfg_.compute_nodes);
  }

  /// Authors the base image and uploads it to the repository. Run once,
  /// inside a simulation process, before deploying.
  sim::Task<> provision_base_image();
  bool provisioned() const { return base_uploaded_; }
  blob::BlobId base_blob() const { return base_blob_; }
  /// The base image as uploaded into zone `zone`'s store (federation
  /// uploads one copy per zone so fresh instances clone — and later commit
  /// — zone-locally). Falls back to the zone-0 blob for unknown zones.
  blob::BlobId base_blob(std::uint32_t zone) const {
    return zone < base_blobs_.size() ? base_blobs_[zone] : base_blob_;
  }
  const std::string& base_pvfs_path() const { return base_pvfs_path_; }
  std::uint64_t image_size() const { return cfg_.os.image_size; }

  /// Fail-stop of a compute node (takes its data provider down with it).
  void fail_node(net::NodeId node);

  /// Bytes persisted in the checkpoint repository (payload + metadata).
  std::uint64_t repository_bytes() const;

  /// Convenience driver: spawn `body` as a process and run to completion.
  /// Rethrows the driver's error; if the event queue drains while the
  /// driver is still blocked (a deadlock — e.g. a failed guest never
  /// reaching a barrier), throws with a diagnostic.
  void run(sim::Task<> body);

  /// Monotonic sequence used to namespace per-deployment artifacts (e.g.
  /// snapshot files on PVFS).
  std::uint64_t next_deployment_seq() { return ++deployment_seq_; }

  // --- multi-tenancy --------------------------------------------------------

  /// Registers a job with the repository's tenant table and returns its
  /// TenantId (tag Deployment::Options::tenant with it). `weight` is the
  /// job's relative share at the QoS-controlled service queues. Works on
  /// every backend; only the BlobCR repository enforces weights.
  net::TenantId register_tenant(const std::string& name, double weight = 1.0);

  /// The repository-scoped chunk digest index shared by every deployment
  /// whose ReductionConfig::shared_index is on (lazily created; one GC
  /// reclaim hook, owned here, keeps it honest across deployment
  /// lifetimes). nullptr on non-BlobCR backends.
  reduce::ChunkDigestIndex* shared_digest_index();

  /// The cloud-scoped peer parity redundancy tier (lazily created; one GC
  /// reclaim hook keeps parity groups honest across deployment lifetimes).
  /// Like the repository, the tier outlives any single deployment: a
  /// rollback onto fresh nodes still rebuilds the dead node's chunks from
  /// the previous deployment's surviving caches. nullptr when
  /// CloudConfig::redundancy is off or the backend is not BlobCR.
  redundancy::Manager* redundancy();

 private:
  CloudConfig cfg_;
  sim::Simulation sim_;
  std::unique_ptr<net::Fabric> fabric_;
  std::vector<std::unique_ptr<storage::Disk>> disks_;
  std::vector<storage::StreamIdAllocator> streams_;
  std::unique_ptr<blob::BlobStore> blob_;
  /// Zones 1..N-1 of a federated repository (zone 0 is blob_, so every
  /// pre-federation caller keeps working against it).
  std::vector<std::unique_ptr<blob::BlobStore>> zone_stores_;
  /// Declared after the stores: destroyed first, while the stores (whose
  /// reclaim hooks reference them) never fire hooks during destruction.
  std::unique_ptr<reduce::ChunkDigestIndex> shared_index_;
  /// Same ordering contract as shared_index_.
  std::unique_ptr<redundancy::Manager> redundancy_;
  /// Same ordering contract (holds one reclaim hook per zone store).
  std::unique_ptr<federation::Fabric> federation_;
  std::unique_ptr<pfs::PvfsCluster> pvfs_;
  std::unordered_map<net::NodeId, std::unique_ptr<DecodedChunkCache>>
      chunk_caches_;
  common::SparseFile base_content_;
  bool base_uploaded_ = false;
  blob::BlobId base_blob_ = 0;
  std::vector<blob::BlobId> base_blobs_;  // per zone (federation)
  std::string base_pvfs_path_;
  std::uint64_t deployment_seq_ = 0;
  net::TenantId pvfs_tenant_seq_ = 0;  // fallback ids for non-BlobCR backends
};

class Deployment {
 public:
  /// Per-job construction knobs for multi-tenant clouds. The defaults give
  /// the classic single-job deployment (default tenant, cloud-level flush).
  struct Options {
    std::size_t node_offset = 0;
    /// Repository tenant identity (from Cloud::register_tenant). Tags every
    /// repository request of this deployment's instances for QoS admission
    /// and per-tenant accounting.
    net::TenantId tenant = net::kDefaultTenant;
    /// Per-job override of CloudConfig::flush (a bulk job can drain
    /// asynchronously while an interactive job commits synchronously).
    std::optional<flush::FlushConfig> flush;
  };

  /// An extra source snapshot an instance adopted across an elastic shrink
  /// (M < N): a full device image of one pre-rescale instance, attached as
  /// a data volume next to the boot disk. Read-only in spirit — nothing
  /// commits through it — but served by the same content-addressed restart
  /// data plane (lazy fetch, peer copies, scheduled prefetch) as the boot
  /// device.
  struct AttachedVolume {
    InstanceSnapshot source;
    // Exactly one device family is populated, by backend.
    std::unique_ptr<MirrorDevice> mirror;
    std::unique_ptr<pfs::PvfsFileStore> qcow_backing;
    std::unique_ptr<storage::ByteStore> qcow_container;
    std::unique_ptr<img::QcowImage> qcow;
    std::unique_ptr<img::QcowDevice> qcow_dev;

    img::BlockDevice& device() {
      if (mirror) return *mirror;
      return *qcow_dev;
    }
  };

  struct Instance {
    std::size_t index = 0;
    net::NodeId node = 0;
    bool failed = false;
    // Exactly one device family is populated, by backend.
    std::unique_ptr<MirrorDevice> mirror;
    std::unique_ptr<pfs::PvfsFileStore> qcow_backing;
    std::unique_ptr<storage::ByteStore> qcow_container;
    std::unique_ptr<img::QcowImage> qcow;
    std::unique_ptr<img::QcowDevice> qcow_dev;
    std::unique_ptr<vm::VmInstance> vm;
    std::unique_ptr<CheckpointProxy> proxy;
    std::unique_ptr<QcowDiskProxy> qdisk_proxy;
    std::unique_ptr<QcowFullProxy> qfull_proxy;
    std::uint64_t snapshot_counter = 0;
    InstanceSnapshot last_snapshot;
    /// Extra pre-rescale shards adopted by this instance (elastic M < N).
    std::vector<std::unique_ptr<AttachedVolume>> attached;

    img::BlockDevice& device() {
      if (mirror) return *mirror;
      return *qcow_dev;
    }
  };

  Deployment(Cloud& cloud, std::size_t instances,
             std::size_t node_offset = 0);
  Deployment(Cloud& cloud, std::size_t instances, const Options& opts);
  ~Deployment();

  std::size_t size() const { return count_; }
  Cloud& cloud() const { return *cloud_; }
  /// Attached data volumes instance i adopted across an elastic shrink
  /// (0 outside a rescaled deployment).
  std::size_t attached_count(std::size_t i) const {
    return instances_.at(i)->attached.size();
  }
  AttachedVolume& attached_volume(std::size_t i, std::size_t k) {
    return *instances_.at(i)->attached.at(k);
  }
  /// The repository tenant this deployment's instances commit as.
  net::TenantId tenant() const { return tenant_; }
  /// The flush configuration this deployment's mirrors actually run
  /// (Options::flush override, else CloudConfig::flush).
  const flush::FlushConfig& flush_config() const { return flush_cfg_; }
  Instance& instance(std::size_t i) { return *instances_.at(i); }
  vm::VmInstance& vm(std::size_t i) { return *instances_.at(i)->vm; }
  mpi::MpiWorld& mpi() { return *mpi_; }
  PrefetchBus& prefetch_bus() { return *bus_; }
  /// The cloud-scoped peer parity tier this deployment's mirrors encode
  /// into (nullptr when CloudConfig::redundancy is off or the backend is
  /// not BlobCR). Cloud-owned so parity groups survive a rollback onto a
  /// fresh Deployment — the rebuild level is precisely for restarts whose
  /// own deployment-scoped state (bus holders, staged images) is gone.
  redundancy::Manager* redundancy() { return cloud_->redundancy(); }
  /// Deployment-wide reduction pipeline (nullptr when reduction is off or
  /// the backend is not BlobCR). Shared by all mirroring modules, like the
  /// prefetch bus, so dedup works across ranks and snapshot versions. With
  /// federation there is one reducer per zone (dedup Refs stay zone-local);
  /// this returns zone 0's.
  reduce::Reducer* reducer() {
    return reducers_.empty() ? nullptr : reducers_.front().get();
  }

  /// True when the asynchronous commit pipeline runs on this deployment's
  /// mirroring modules (BlobCR backend with CloudConfig::flush enabled).
  bool flush_enabled() const;
  /// Waits until instance i's staged snapshots have all published;
  /// rethrows a drain failure. No-op for synchronous commits / baselines.
  sim::Task<> wait_drained(std::size_t i);

  /// Creates devices and VMs from the base image and boots all instances in
  /// parallel.
  sim::Task<> deploy_and_boot();

  /// Guest-triggered disk snapshot of one instance (dispatches to the
  /// backend's proxy). Updates the instance's last-snapshot record.
  sim::Task<InstanceSnapshot> snapshot_instance(std::size_t i);

  /// Snapshots every instance in parallel (the qcow2-full driver and
  /// external checkpoint tests).
  sim::Task<GlobalCheckpoint> checkpoint_all();

  /// The most recent snapshot of every instance — the globally consistent
  /// line the middleware would pick for a restart. Mechanism layer:
  /// drivers go through cr::Session, which records this line durably in
  /// the checkpoint catalog instead of holding it in memory.
  GlobalCheckpoint collect_last_snapshots() const;

  /// Kills all instances (termination or simulated global failure).
  void destroy_all();
  /// Cold-restart semantics: the deployment's machines were reclaimed, so
  /// their decoded-chunk caches and the bus's holder registry are gone.
  /// The paper's restart experiments call this between destroy_all() and
  /// restart_from(); the FT runner does NOT — surviving nodes keep serving
  /// peer copies across a rollback (cooperative restart), and failed nodes
  /// are dropped individually by fail_instance().
  void forget_node_caches();
  /// Fail-stop of one instance's node.
  void fail_instance(std::size_t i);

  /// Tears down whatever is left and re-deploys every instance from its
  /// snapshot in `ckpt`, shifted to fresh nodes, booting in parallel.
  /// For BlobCR/qcow2-disk instances this reboots the guest OS; qcow2-full
  /// resumes from the full VM snapshot without a reboot. `ckpt` must stay
  /// alive until the task completes (each instance copies only its own
  /// snapshot; the checkpoint is no longer deep-copied per rollback).
  sim::Task<> restart_from(const GlobalCheckpoint& ckpt,
                           std::size_t node_offset);

  /// Elastic restart: rebuilds the deployment from a per-instance plan
  /// (possibly a different instance count than before — see cr/remap.h for
  /// the shard assignment). Each instance boots from its plan's boot
  /// snapshot; extra shards come up as attached data volumes; fresh_image
  /// instances derive a new checkpoint image on their first commit. The
  /// plan must stay alive until the task completes.
  sim::Task<> restart_from(const RestartPlan& plan, std::size_t node_offset);

  /// Test scaffolding (crash-harness style, like flush's stage probes):
  /// invoked with the instance index at the start of every per-instance
  /// rebuild inside restart_from. A throwing probe models a mid-restart
  /// boot failure. nullptr disables.
  void set_restart_probe(std::function<void(std::size_t)> probe) {
    restart_probe_ = std::move(probe);
  }

  /// Migrates one instance to `target` through a disk snapshot (§3.1.3:
  /// snapshots "are much easier to migrate" than difference files). The
  /// virtual disk state as of the snapshot moves; guest processes do not
  /// survive (BlobCR/qcow2-disk reboot the guest OS; qcow2-full resumes
  /// from the full VM snapshot). Unsynced guest page-cache data is lost,
  /// exactly as for a checkpoint. Returns the end-to-end migration time
  /// (snapshot + teardown + redeploy + boot/resume).
  sim::Task<sim::Duration> migrate_instance(std::size_t i, net::NodeId target);

  std::uint64_t boot_remote_bytes() const;  // lazy-fetch traffic observed
  /// Repository wire bytes vs intra-deployment peer-copy bytes vs parity-
  /// rebuilt bytes behind boot_remote_bytes() (the restart data plane's
  /// transfer classes).
  std::uint64_t boot_repo_bytes() const;
  std::uint64_t boot_peer_bytes() const;
  std::uint64_t boot_parity_bytes() const;
  /// Bytes the restart data plane pulled from outside each reader's own
  /// zone (subset of boot_repo_bytes; 0 without federation).
  std::uint64_t boot_wan_bytes() const;

  /// Scavenge support (cr::Session::scavenge): best-effort recovery of one
  /// chunk's decoded payload from the peer tier — a surviving node's cache
  /// copy first, a parity-group rebuild second. Returns the payload and the
  /// node it came from, or nullopt when the tier cannot produce it.
  struct PeerPayload {
    common::Buffer data;
    net::NodeId node = 0;
  };
  sim::Task<std::optional<PeerPayload>> recover_chunk_payload(
      const ChunkKey& key, net::NodeId dst);

 private:
  void kill_restart_scheduler();
  /// Throws when `count_` instances cannot be placed on distinct compute
  /// nodes (the redundancy tier's durability and the peer-vs-repo byte
  /// accounting both assume one instance per node).
  void validate_placement() const;
  /// Shared restart prologue: kill the scheduler, tear down, re-namespace,
  /// adopt the new count/offset (validated) and clear the instance table.
  void prepare_restart(std::size_t count, std::size_t node_offset);
  /// Spawns the popularity-ordered background prefetch over every mirror
  /// attached to the bus (boot devices AND attached volumes).
  void spawn_restart_scheduler();
  void build_instance_fresh(std::size_t i, net::NodeId node);
  sim::Task<> build_instance_from_snapshot(std::size_t i, net::NodeId node,
                                           InstanceSnapshot snap,
                                           bool adopt_image = true);
  sim::Task<> build_instance_from_plan(std::size_t i, net::NodeId node,
                                       const InstancePlan& plan);
  sim::Task<> boot_instance(std::size_t i);
  /// The reducer matching a mirror's store: commits through a zone-z store
  /// must reduce through the zone-z reducer, whose index lookups prefer —
  /// and whose GC pins register in — that same zone.
  reduce::Reducer* reducer_for_store(blob::BlobStore* store) {
    if (reducers_.empty() || store == nullptr) return nullptr;
    const std::uint32_t z = store->config().zone;
    return reducers_[z < reducers_.size() ? z : 0].get();
  }

  Cloud* cloud_;
  std::size_t count_;
  std::size_t node_offset_;
  net::TenantId tenant_;
  flush::FlushConfig flush_cfg_;  // resolved Options::flush override
  std::uint64_t seq_;  // unique per deployment; namespaces snapshot files
  /// The restart scheduler runs in the background (it references the
  /// instances' mirrors, so it is killed before they are torn down).
  sim::ProcessPtr restart_scheduler_;
  std::function<void(std::size_t)> restart_probe_;
  std::unique_ptr<PrefetchBus> bus_;
  /// One reducer per zone (index 0 without federation): stats, epochs and
  /// in-flight pins are per (deployment, zone).
  std::vector<std::unique_ptr<reduce::Reducer>> reducers_;
  std::unique_ptr<mpi::MpiWorld> mpi_;
  std::vector<std::unique_ptr<Instance>> instances_;
};

}  // namespace blobcr::core
