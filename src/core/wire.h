// The guest <-> checkpointing-proxy wire protocol (§3.3: "for maximum
// compatibility, the communication protocol used by the proxy is a simple
// REST-ful access interface"). Application-level code inside the guest can
// speak this text protocol directly — no client library needed — which is
// exactly why the paper chose it.
//
//   request:   POST /checkpoint?vm=vm07&token=s3cret HTTP/1.0\r\n\r\n
//   response:  HTTP/1.0 200 OK\r\n
//              image: 12\r\nversion: 3\r\npayload-bytes: 52428800\r\n\r\n
//
// Param values are percent-encoded; header field names are lower-case.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>

namespace blobcr::core {

class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

struct WireRequest {
  std::string method;  // e.g. "POST"
  std::string path;    // e.g. "/checkpoint"
  std::map<std::string, std::string> params;
};

struct WireResponse {
  int status = 0;      // 200, 403, 404, 500...
  std::string reason;  // "OK", "Forbidden"...
  std::map<std::string, std::string> fields;
};

/// Percent-encodes everything outside [A-Za-z0-9._~-].
std::string percent_encode(std::string_view raw);
/// Decodes %XX sequences; throws WireError on truncated or non-hex escapes.
std::string percent_decode(std::string_view encoded);

std::string encode_request(const WireRequest& req);
/// Parses a request line + empty header block; throws WireError on
/// malformed input (bad verb line, missing HTTP suffix, bad escapes).
WireRequest parse_request(std::string_view text);

std::string encode_response(const WireResponse& resp);
WireResponse parse_response(std::string_view text);

}  // namespace blobcr::core
