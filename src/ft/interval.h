// Checkpoint-interval analytics: Young's and Daly's optimal intervals and
// the renewal-model expected makespan under exponential (fail-stop) node
// failures. The paper motivates BlobCR with exactly this trade-off: "it is
// crucial to ... checkpoint the application frequently with minimal
// overhead" (§1) — a cheaper checkpoint C shifts the optimum interval down
// and the machine efficiency up. These closed forms let the benchmarks
// overlay analytic predictions on the simulated runner's measurements.
//
// All quantities are plain seconds (double); callers convert to sim time.
#pragma once

#include <cmath>
#include <limits>
#include <stdexcept>

namespace blobcr::ft {

/// Young's first-order optimum: tau* = sqrt(2 * C * M), for checkpoint cost
/// C and system MTBF M (both seconds). Valid when C << M.
inline double young_interval(double ckpt_cost, double mtbf) {
  if (ckpt_cost <= 0 || mtbf <= 0)
    throw std::invalid_argument("young_interval: costs must be positive");
  return std::sqrt(2.0 * ckpt_cost * mtbf);
}

/// Daly's higher-order perturbation solution (J. T. Daly, "A higher order
/// estimate of the optimum checkpoint interval for restart dumps", FGCS
/// 2006). For C < 2M:
///   tau* = sqrt(2*C*M) * [1 + (1/3)*sqrt(C/(2M)) + (1/9)*(C/(2M))] - C
/// and tau* = M when C >= 2M (checkpointing cannot pay for itself).
inline double daly_interval(double ckpt_cost, double mtbf) {
  if (ckpt_cost <= 0 || mtbf <= 0)
    throw std::invalid_argument("daly_interval: costs must be positive");
  if (ckpt_cost >= 2.0 * mtbf) return mtbf;
  const double ratio = ckpt_cost / (2.0 * mtbf);
  return std::sqrt(2.0 * ckpt_cost * mtbf) *
             (1.0 + std::sqrt(ratio) / 3.0 + ratio / 9.0) -
         ckpt_cost;
}

/// System MTBF of n identical nodes each with MTBF m (exponential,
/// independent): M = m / n.
inline double system_mtbf(double node_mtbf, std::size_t nodes) {
  if (node_mtbf <= 0 || nodes == 0)
    throw std::invalid_argument("system_mtbf: bad arguments");
  return node_mtbf / static_cast<double>(nodes);
}

/// Expected wall-clock seconds to complete one segment of `length` seconds
/// followed by committing it, with restart overhead R charged before every
/// attempt after a failure, under exponential failures of rate 1/M. This is
/// the exact memoryless renewal expectation
///   E = (M + R) * (exp(length / M) - 1)
/// (failures during restart itself restart the restart).
inline double expected_segment_time(double length, double restart_cost,
                                    double mtbf) {
  if (mtbf <= 0) throw std::invalid_argument("expected_segment_time: mtbf");
  const double x = length / mtbf;
  // exp() overflows double around x ~ 709; such a segment effectively never
  // completes.
  if (x > 600.0) return std::numeric_limits<double>::infinity();
  return (mtbf + restart_cost) * std::expm1(x);
}

/// Expected makespan of a job of `work` useful seconds checkpointed every
/// `interval` seconds with per-checkpoint cost `ckpt_cost` and per-failure
/// restart cost `restart_cost`, under exponential failures with system MTBF
/// `mtbf`. The job is split into full segments of (interval + ckpt_cost)
/// plus a remainder segment; each segment must complete failure-free, and a
/// failure pays restart_cost plus the lost partial segment (captured by the
/// renewal expectation).
inline double expected_makespan(double work, double interval,
                                double ckpt_cost, double restart_cost,
                                double mtbf) {
  if (work <= 0) return 0.0;
  if (interval <= 0)
    throw std::invalid_argument("expected_makespan: interval must be > 0");
  const double full_segments = std::floor(work / interval);
  const double remainder = work - full_segments * interval;
  double total =
      full_segments * expected_segment_time(interval + ckpt_cost,
                                            restart_cost, mtbf);
  if (remainder > 0)
    total += expected_segment_time(remainder + ckpt_cost, restart_cost, mtbf);
  return total;
}

// --- two-level (peer / repository) checkpoint model -------------------------
//
// The redundancy tier (src/redundancy/) makes most failures recoverable
// from surviving peers: only every k-th checkpoint needs the full
// repository durability. First-order overhead rate of checkpointing every
// tau of work at the cheap level (cost C1, covers failures with MTBF M1)
// and every k*tau at the expensive level (extra cost C2, covers the rarer
// multi-node/repository losses with MTBF M2):
//
//   overhead(tau, k) = (C1 + C2/k)/tau + tau/(2*M1) + k*tau/(2*M2)
//
// Joint stationarity gives the closed forms
//   tau*     = sqrt(2 * C1 * M1)            (Young's optimum at level 1)
//   k*       = sqrt((C2 * M2) / (C1 * M1))  (the optimal level ratio)
//   k*·tau*  = sqrt(2 * C2 * M2)            (Young's optimum at level 2)
// i.e. each level independently runs at its own Young interval.

/// Overhead rate (dimensionless, lost fraction of machine time to first
/// order) of the two-level scheme at cadence (tau, k). k >= 1.
inline double two_level_overhead(double tau, double k, double c1, double c2,
                                 double m1, double m2) {
  if (tau <= 0 || k < 1 || c1 <= 0 || c2 < 0 || m1 <= 0 || m2 <= 0)
    throw std::invalid_argument("two_level_overhead: bad arguments");
  return (c1 + c2 / k) / tau + tau / (2.0 * m1) + k * tau / (2.0 * m2);
}

/// Jointly optimal two-level cadence.
struct TwoLevelPlan {
  double tau = 0;       // cheap-level interval (seconds of useful work)
  double k = 1;         // level ratio: every k-th checkpoint goes durable
  double overhead = 0;  // overhead rate at the optimum
};

inline TwoLevelPlan two_level_optimum(double c1, double c2, double m1,
                                      double m2) {
  if (c1 <= 0 || c2 < 0 || m1 <= 0 || m2 <= 0)
    throw std::invalid_argument("two_level_optimum: bad arguments");
  TwoLevelPlan plan;
  plan.k = c2 > 0 ? std::sqrt((c2 * m2) / (c1 * m1)) : 1.0;
  if (plan.k <= 1.0) {
    // The expensive level is cheap (or failures there frequent) enough that
    // every checkpoint should be durable — the scheme degenerates to a
    // single level of combined cost, at its own Young interval.
    plan.k = 1.0;
    plan.tau = std::sqrt((c1 + c2) / (1.0 / (2.0 * m1) + 1.0 / (2.0 * m2)));
  } else {
    plan.tau = std::sqrt(2.0 * c1 * m1);
  }
  plan.overhead = two_level_overhead(plan.tau, plan.k, c1, c2, m1, m2);
  return plan;
}

/// Machine efficiency: useful work over expected makespan, in (0, 1].
inline double expected_efficiency(double work, double interval,
                                  double ckpt_cost, double restart_cost,
                                  double mtbf) {
  const double t =
      expected_makespan(work, interval, ckpt_cost, restart_cost, mtbf);
  return t > 0 ? work / t : 1.0;
}

}  // namespace blobcr::ft
