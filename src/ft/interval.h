// Checkpoint-interval analytics: Young's and Daly's optimal intervals and
// the renewal-model expected makespan under exponential (fail-stop) node
// failures. The paper motivates BlobCR with exactly this trade-off: "it is
// crucial to ... checkpoint the application frequently with minimal
// overhead" (§1) — a cheaper checkpoint C shifts the optimum interval down
// and the machine efficiency up. These closed forms let the benchmarks
// overlay analytic predictions on the simulated runner's measurements.
//
// All quantities are plain seconds (double); callers convert to sim time.
#pragma once

#include <cmath>
#include <limits>
#include <stdexcept>

namespace blobcr::ft {

/// Young's first-order optimum: tau* = sqrt(2 * C * M), for checkpoint cost
/// C and system MTBF M (both seconds). Valid when C << M.
inline double young_interval(double ckpt_cost, double mtbf) {
  if (ckpt_cost <= 0 || mtbf <= 0)
    throw std::invalid_argument("young_interval: costs must be positive");
  return std::sqrt(2.0 * ckpt_cost * mtbf);
}

/// Daly's higher-order perturbation solution (J. T. Daly, "A higher order
/// estimate of the optimum checkpoint interval for restart dumps", FGCS
/// 2006). For C < 2M:
///   tau* = sqrt(2*C*M) * [1 + (1/3)*sqrt(C/(2M)) + (1/9)*(C/(2M))] - C
/// and tau* = M when C >= 2M (checkpointing cannot pay for itself).
inline double daly_interval(double ckpt_cost, double mtbf) {
  if (ckpt_cost <= 0 || mtbf <= 0)
    throw std::invalid_argument("daly_interval: costs must be positive");
  if (ckpt_cost >= 2.0 * mtbf) return mtbf;
  const double ratio = ckpt_cost / (2.0 * mtbf);
  return std::sqrt(2.0 * ckpt_cost * mtbf) *
             (1.0 + std::sqrt(ratio) / 3.0 + ratio / 9.0) -
         ckpt_cost;
}

/// System MTBF of n identical nodes each with MTBF m (exponential,
/// independent): M = m / n.
inline double system_mtbf(double node_mtbf, std::size_t nodes) {
  if (node_mtbf <= 0 || nodes == 0)
    throw std::invalid_argument("system_mtbf: bad arguments");
  return node_mtbf / static_cast<double>(nodes);
}

/// Expected wall-clock seconds to complete one segment of `length` seconds
/// followed by committing it, with restart overhead R charged before every
/// attempt after a failure, under exponential failures of rate 1/M. This is
/// the exact memoryless renewal expectation
///   E = (M + R) * (exp(length / M) - 1)
/// (failures during restart itself restart the restart).
inline double expected_segment_time(double length, double restart_cost,
                                    double mtbf) {
  if (mtbf <= 0) throw std::invalid_argument("expected_segment_time: mtbf");
  const double x = length / mtbf;
  // exp() overflows double around x ~ 709; such a segment effectively never
  // completes.
  if (x > 600.0) return std::numeric_limits<double>::infinity();
  return (mtbf + restart_cost) * std::expm1(x);
}

/// Expected makespan of a job of `work` useful seconds checkpointed every
/// `interval` seconds with per-checkpoint cost `ckpt_cost` and per-failure
/// restart cost `restart_cost`, under exponential failures with system MTBF
/// `mtbf`. The job is split into full segments of (interval + ckpt_cost)
/// plus a remainder segment; each segment must complete failure-free, and a
/// failure pays restart_cost plus the lost partial segment (captured by the
/// renewal expectation).
inline double expected_makespan(double work, double interval,
                                double ckpt_cost, double restart_cost,
                                double mtbf) {
  if (work <= 0) return 0.0;
  if (interval <= 0)
    throw std::invalid_argument("expected_makespan: interval must be > 0");
  const double full_segments = std::floor(work / interval);
  const double remainder = work - full_segments * interval;
  double total =
      full_segments * expected_segment_time(interval + ckpt_cost,
                                            restart_cost, mtbf);
  if (remainder > 0)
    total += expected_segment_time(remainder + ckpt_cost, restart_cost, mtbf);
  return total;
}

/// Machine efficiency: useful work over expected makespan, in (0, 1].
inline double expected_efficiency(double work, double interval,
                                  double ckpt_cost, double restart_cost,
                                  double mtbf) {
  const double t =
      expected_makespan(work, interval, ckpt_cost, restart_cost, mtbf);
  return t > 0 ? work / t : 1.0;
}

}  // namespace blobcr::ft
