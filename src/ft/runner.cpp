#include "ft/runner.h"

#include <algorithm>
#include <exception>
#include <memory>

#include "blob/repair.h"
#include "common/strutil.h"
#include "cr/remap.h"
#include "cr/session.h"
#include "mpi/blcr.h"
#include "mpi/coordinated.h"

namespace blobcr::ft {

using core::Cloud;
using core::Deployment;
using core::GlobalCheckpoint;
using sim::Task;

const char* dump_mode_name(DumpMode mode) {
  switch (mode) {
    case DumpMode::AppLevel:
      return "app";
    case DumpMode::Blcr:
      return "blcr";
  }
  return "?";
}

namespace {

/// Memory-fill rate for refreshing rank state between checkpoints.
constexpr double kMemFillBps = 4e9;

constexpr const char* kStatePath = "/data/state.bin";
constexpr const char* kBlcrPath = "/data/proc.blcr";

/// Stable indirection to the current Deployment: a failure before the first
/// checkpoint forces a from-scratch redeployment (a new Deployment object),
/// and the injector must follow the driver to the live one.
struct DepHolder {
  std::unique_ptr<Deployment> dep;
};

/// Driver/worker/injector rendezvous state for one whole job.
struct JobShared {
  JobShared(sim::Simulation& sim, std::size_t n)
      : n(n), wq(sim), active_wq(sim) {
    pending_digests.assign(n, 0);
    committed_digests.assign(n, 0);
    restore_ok.assign(n, true);
  }

  /// Current job width — mutable: elastic rescales change it mid-job.
  std::size_t n;

  // --- per-epoch fields, reset by begin_epoch() ---
  std::size_t finished = 0;
  bool failed = false;
  std::size_t epoch_failures = 0;
  sim::Time ckpt_phase_start = 0;  // first rank entering the ckpt phase
  std::exception_ptr worker_error;

  // --- whole-job fields ---
  bool epoch_active = false;
  int epoch = 0;
  sim::Duration ckpt_blocked = 0;  // VM pause time across snapshot requests
  /// Digests of the state each rank produced in the current epoch...
  std::vector<std::uint64_t> pending_digests;
  /// ...promoted here only when the epoch's global checkpoint commits, so a
  /// rollback verifies against what the repository actually holds.
  std::vector<std::uint64_t> committed_digests;
  std::vector<bool> restore_ok;

  sim::WaitQueue wq;         // worker completion / failure -> driver
  sim::WaitQueue active_wq;  // epoch start -> deferred injector events

  void begin_epoch() {
    finished = 0;
    failed = false;
    epoch_failures = 0;
    ckpt_phase_start = 0;
    worker_error = nullptr;
  }

  /// Adopts width `m` across an elastic restart: new instance i's boot
  /// device holds source remap_source(i, n, m)'s committed state, so the
  /// restore wave right after the rescale verifies against the remapped
  /// digest line. (The forced checkpoint that follows re-records a fresh
  /// m-tuple line, so the remap only ever serves that one wave.)
  void rescale(std::size_t m) {
    std::vector<std::uint64_t> remapped(m, 0);
    for (std::size_t i = 0; i < m; ++i)
      remapped[i] = committed_digests[cr::remap_source(i, n, m)];
    committed_digests = std::move(remapped);
    pending_digests.assign(m, 0);
    restore_ok.assign(m, true);
    n = m;
  }

  /// Plain width change with no digest mapping (a rollback restored a
  /// record whose tuple count differs from the current width — the old
  /// line's digests are unrecoverable after the lossy rescale remap, so
  /// that restore wave skips verification).
  void resize_unverified(std::size_t m) {
    committed_digests.assign(m, 0);
    pending_digests.assign(m, 0);
    restore_ok.assign(m, true);
    n = m;
  }
};

/// Scalar parameters an epoch worker needs (copied into its frame so the
/// lambda has no dangling references).
struct EpochParams {
  std::size_t rank = 0;
  int epoch = 0;
  sim::Duration work = 0;
  sim::Duration step = 0;
  std::uint64_t state_bytes = 0;
  bool real_data = false;
  DumpMode mode = DumpMode::AppLevel;
};

/// One rank's epoch: refresh state, compute `work` in barrier-synchronized
/// steps, then run the coordinated checkpoint protocol. Errors are reported
/// as a job failure (the checkpoint could not complete), not propagated —
/// the driver rolls back, which is exactly what the middleware would do.
Task<> epoch_worker(Deployment* dep, cr::Session* session, EpochParams p,
                    std::shared_ptr<JobShared> st, vm::GuestProcess* gp) {
  try {
    dep->mpi().register_rank(static_cast<int>(p.rank), gp);
    mpi::MpiWorld::Comm comm = dep->mpi().comm(static_cast<int>(p.rank));

    // The rank's state evolves every epoch: fresh content, fresh digest.
    const std::uint64_t seed = common::mix64(
        0xf7a11ULL * (p.rank + 1) + static_cast<std::uint64_t>(p.epoch));
    gp->set_region("state",
                   p.real_data
                       ? common::Buffer::pattern(p.state_bytes, seed)
                       : common::Buffer::phantom(p.state_bytes));
    co_await gp->compute(sim::transfer_time(p.state_bytes, kMemFillBps));
    st->pending_digests[p.rank] = gp->region("state").digest();

    for (sim::Duration done = 0; done < p.work;) {
      const sim::Duration chunk = std::min(p.step, p.work - done);
      co_await gp->compute(chunk);
      done += chunk;
      co_await comm.barrier();  // tightly coupled: lock-step ranks
    }

    if (st->ckpt_phase_start == 0)
      st->ckpt_phase_start = gp->vm().simulation().now();
    mpi::CoordinatedHooks hooks;
    hooks.vm_leader = true;  // one rank per VM
    hooks.fs = gp->vm().fs();
    hooks.reducer = dep->reducer();
    hooks.epoch_leader = (p.rank == 0);
    if (p.mode == DumpMode::AppLevel) {
      hooks.dump = [gp]() -> Task<> {
        co_await gp->vm().gate();
        co_await gp->vm().fs()->write_file(kStatePath, gp->region("state"));
      };
    } else {
      hooks.dump = [gp]() -> Task<> {
        co_await mpi::Blcr::dump(*gp, kBlcrPath);
      };
    }
    hooks.request_disk_snapshot = [dep, st, i = p.rank]() -> Task<> {
      const core::InstanceSnapshot snap = co_await dep->snapshot_instance(i);
      st->ckpt_blocked += snap.vm_downtime;
    };
    if (dep->flush_enabled()) {
      // Async pipeline: a "complete global checkpoint" means globally
      // published — every VM leader waits out its node's drain before the
      // protocol's final barrier.
      hooks.wait_drained = [dep, i = p.rank]() -> Task<> {
        co_await dep->wait_drained(i);
      };
    }
    // Catalog control plane: the epoch leader stages the checkpoint record
    // once every snapshot is captured and publishes it Complete after the
    // drains — the record, not any driver memory, is what a rollback (or a
    // whole fresh driver) selects.
    hooks.stage_record = [session]() -> Task<> {
      co_await session->stage_last();
    };
    hooks.publish_record = [session]() -> Task<> {
      (void)co_await session->publish_staged();
    };
    co_await mpi::coordinated_checkpoint(comm, hooks);

    ++st->finished;
    st->wq.notify_all();
  } catch (...) {
    // A checkpoint that cannot complete (e.g. repository write failure after
    // a provider died) is a job failure: request a rollback.
    st->worker_error = std::current_exception();
    st->failed = true;
    st->wq.notify_all();
  }
}

/// One rank's restore after a rollback: read the state back, verify it,
/// rebind the rank. Throws on unreadable state (surfaces data loss).
Task<> restore_worker(Deployment* dep, EpochParams p,
                      std::shared_ptr<JobShared> st, vm::GuestProcess* gp) {
  dep->mpi().register_rank(static_cast<int>(p.rank), gp);
  bool ok = false;
  if (p.mode == DumpMode::AppLevel) {
    guestfs::SimpleFs* fs = gp->vm().fs();
    co_await gp->vm().gate();
    common::Buffer data = co_await fs->read_file(kStatePath);
    ok = data.size() == p.state_bytes &&
         data.digest() == st->committed_digests[p.rank];
    gp->set_region("state", std::move(data));
  } else {
    ok = co_await mpi::Blcr::restore(*gp, kBlcrPath);
    ok = ok && gp->region("state").digest() == st->committed_digests[p.rank];
  }
  if (p.real_data) st->restore_ok[p.rank] = ok;
}

/// Replays the failure schedule against the live deployment. Events landing
/// outside an active epoch (during detection/rollback) are deferred to the
/// next epoch start.
Task<> injector_body(sim::Simulation* sim, std::shared_ptr<DepHolder> holder,
                     std::shared_ptr<JobShared> st, FailureSchedule sched) {
  for (const FailureEvent& ev : sched.events()) {
    if (ev.at > sim->now()) co_await sim->delay(ev.at - sim->now());
    while (!st->epoch_active) co_await st->active_wq.wait();
    Deployment& dep = *holder->dep;
    const std::size_t victim = ev.victim % st->n;
    if (dep.instance(victim).failed) continue;  // node already down
    dep.fail_instance(victim);
    ++st->epoch_failures;
    st->failed = true;
    st->wq.notify_all();
  }
}

Task<> ft_driver(Cloud* cloud, const FtJobConfig* cfg, FtReport* report) {
  sim::Simulation& sim = cloud->simulation();
  std::size_t n = cfg->instances;  // current width; rescales change it
  std::vector<FtJobConfig::RescaleEvent> rescales = cfg->rescales;
  std::stable_sort(rescales.begin(), rescales.end(),
                   [](const FtJobConfig::RescaleEvent& a,
                      const FtJobConfig::RescaleEvent& b) {
                     return a.after_checkpoints < b.after_checkpoints;
                   });
  std::size_t next_rescale = 0;
  bool force_ckpt = false;  // zero-work epoch right after a rescale
  co_await cloud->provision_base_image();

  // Usage baseline after provisioning: the reported tenant_* counters cover
  // exactly this job's commits (a default-tenant job must not inherit the
  // base-image upload, which also runs as tenant 0).
  const blob::BlobStore::TenantUsage usage_base =
      cloud->blob_store() != nullptr
          ? cloud->blob_store()->tenant_usage_snapshot(cfg->tenant)
          : blob::BlobStore::TenantUsage{};

  auto holder = std::make_shared<DepHolder>();
  std::size_t shift = 0;
  holder->dep = std::make_unique<Deployment>(
      *cloud, n, Deployment::Options{shift, cfg->tenant, std::nullopt});
  co_await holder->dep->deploy_and_boot();
  holder->dep->mpi().set_size(static_cast<int>(n));

  // The middleware's control plane: checkpoint identity lives in the
  // repository-resident catalog, not in this driver's memory.
  cr::Session::Config scfg;
  scfg.retention = cfg->retention;
  if (scfg.retention.keep_last == 0 && cfg->gc_keep_last > 0) {
    scfg.retention.keep_last = static_cast<std::size_t>(cfg->gc_keep_last);
  }
  scfg.job = cfg->job;
  auto session = std::make_unique<cr::Session>(*holder->dep, scfg);

  auto st = std::make_shared<JobShared>(sim, n);
  sim::ProcessPtr injector =
      sim.spawn("ft-injector", injector_body(&sim, holder, st, cfg->failures));

  const sim::Time job_start = sim.now();
  sim::Duration completed = 0;
  bool gave_up = false;

  // Epoch 0 takes the initial checkpoint (work = 0) so the very first
  // failure has a rollback target; later epochs advance the job.
  while (true) {
    Deployment& dep = *holder->dep;
    const sim::Duration epoch_work =
        (st->epoch == 0 || force_ckpt)
            ? 0
            : std::min(cfg->checkpoint_interval, cfg->total_work - completed);
    st->begin_epoch();
    // Catalog head before the epoch: if it advances, the epoch leader
    // durably published this epoch's record — the checkpoint is complete
    // even if a failure then kills a rank before every worker returns.
    const cr::CheckpointId epoch_head = session->lineage_head();
    EpochRecord rec;
    rec.start = sim.now();
    st->epoch_active = true;
    st->active_wq.notify_all();

    for (std::size_t i = 0; i < n; ++i) {
      EpochParams p;
      p.rank = i;
      p.epoch = st->epoch;
      p.work = epoch_work;
      p.step = cfg->step;
      p.state_bytes = cfg->state_bytes;
      p.real_data = cfg->real_data;
      p.mode = cfg->mode;
      Deployment* dp = &dep;
      cr::Session* sp = session.get();
      dep.vm(i).start_guest(
          common::strf("ft-e%d-r%zu", st->epoch, i),
          [dp, sp, p, st](vm::GuestProcess& gp) -> Task<> {
            co_await epoch_worker(dp, sp, p, st, &gp);
          });
    }

    while (st->finished < n && !st->failed) co_await st->wq.wait();
    st->epoch_active = false;
    rec.end = sim.now();
    // "Success" means the global checkpoint committed: either every worker
    // returned, or the catalog record published before the failure hit
    // (the published line is durable and IS the next rollback target, so
    // the driver must promote its digests and work accounting in step —
    // otherwise the restore would verify epoch-N state against epoch-N-1
    // digests and falsely report corruption).
    rec.success = st->finished == n || session->lineage_head() != epoch_head;
    rec.failures = st->epoch_failures;
    report->epochs.push_back(rec);
    report->failures += st->epoch_failures;

    if (rec.success) {
      // The epoch leader already published the catalog record inside the
      // coordinated protocol (and the session's retention pass ran); the
      // driver only keeps its verification digests in step.
      completed += epoch_work;
      ++report->checkpoints;
      force_ckpt = false;  // the post-rescale width has its record now
      st->committed_digests = st->pending_digests;
      if (st->ckpt_phase_start != 0)
        report->checkpoint_overhead += rec.end - st->ckpt_phase_start;
    } else {
      report->wasted_compute += rec.end - rec.start;
    }

    // Job done: even if a failure landed after the final commit, there is
    // nothing left to roll back for.
    if (st->epoch > 0 && completed >= cfg->total_work) break;

    if (st->failed) {
      // Failure detection (heartbeat timeout), then global rollback.
      co_await sim.delay(cfg->detect_latency);
      dep.destroy_all();
      ++report->restarts;
      if (report->restarts > cfg->max_restarts) {
        gave_up = true;
        break;
      }
      const sim::Time t0 = sim.now();
      shift += n;  // place every instance on fresh nodes
      const std::optional<cr::CheckpointRecord> target =
          co_await session->catalog().find(cr::Selector::latest());
      if (target.has_value()) {
        // §3.2: roll back to the last *complete* global checkpoint — the
        // catalog's selection, not a driver-held snapshot vector.
        (void)co_await session->restart(cr::Selector::latest(), shift);
        // A failure in the tiny window between a rescale and its forced
        // checkpoint rolls back to the pre-rescale record: the deployment
        // snapped back to the old width, whose digest line is gone after
        // the lossy remap — adopt the width and skip verification for
        // this one restore wave.
        const bool width_kept = dep.size() == n;
        if (!width_kept) {
          st->resize_unverified(dep.size());
          n = dep.size();
        }
        dep.mpi().reset_for_restart();
        dep.mpi().resize_world(static_cast<int>(n));
        for (std::size_t i = 0; i < n; ++i) {
          EpochParams p;
          p.rank = i;
          p.epoch = st->epoch;
          p.state_bytes = cfg->state_bytes;
          p.real_data = cfg->real_data && width_kept;
          p.mode = cfg->mode;
          Deployment* dp = &dep;
          dep.vm(i).start_guest(
              common::strf("ft-restore-r%zu", i),
              [dp, p, st](vm::GuestProcess& gp) -> Task<> {
                co_await restore_worker(dp, p, st, &gp);
              });
        }
        for (std::size_t i = 0; i < n; ++i) co_await dep.vm(i).join_guests();
        // Fresh mirrors per rollback: the counters cover this restart's
        // lazy-fetch traffic (sampled before the next epoch adds copy-ups).
        report->restart_repo_bytes += dep.boot_repo_bytes();
        report->restart_peer_bytes += dep.boot_peer_bytes();
        report->parity_bytes_rebuilt += dep.boot_parity_bytes();
      } else {
        // Failure during the initial checkpoint: no rollback target exists,
        // so resubmit from scratch — a fresh deployment from the base image.
        co_await session->abandon_staged();
        holder->dep = std::make_unique<Deployment>(
            *cloud, n, Deployment::Options{shift, cfg->tenant, std::nullopt});
        co_await holder->dep->deploy_and_boot();
        holder->dep->mpi().set_size(static_cast<int>(n));
        session->attach(*holder->dep);
      }
      // Heal the repository: re-replicate what the dead node's provider
      // held, so the next failure is just as survivable as this one was.
      if (cfg->repair_after_restart && cloud->blob_store() != nullptr) {
        blob::RepairService repair(*cloud->blob_store());
        const blob::RepairService::Report r =
            co_await repair.repair(cloud->config().replication);
        report->repair_copies += r.copies_made;
        report->repair_bytes += r.bytes_copied;
      }
      report->restart_overhead += sim.now() - t0 + cfg->detect_latency;
      if (rec.success) ++st->epoch;  // the failure hit after the commit
      continue;  // retry the interrupted work chunk
    }

    // Elastic rescale (shrink on spot reclaim / grow on queue drain): after
    // the scheduled number of committed checkpoints, restart the job from
    // the latest record onto M fresh instances through the catalog's
    // elastic path, restore every new rank from its remapped shard, then
    // force a zero-work checkpoint so the new width has its own rollback
    // target.
    if (next_rescale < rescales.size() &&
        report->checkpoints >= rescales[next_rescale].after_checkpoints) {
      const std::size_t m = rescales[next_rescale].instances;
      ++next_rescale;
      if (m != 0 && m != n) {
        const sim::Time t0 = sim.now();
        dep.destroy_all();
        shift += n;  // fresh machines, like any restart
        cr::Session::RestartOptions ropts;
        ropts.node_offset = shift;
        ropts.instances = m;
        (void)co_await session->restart(cr::Selector::latest(), ropts);
        dep.mpi().reset_for_restart();
        dep.mpi().resize_world(static_cast<int>(m));
        st->rescale(m);
        n = m;
        for (std::size_t i = 0; i < n; ++i) {
          EpochParams p;
          p.rank = i;
          p.epoch = st->epoch;
          p.state_bytes = cfg->state_bytes;
          p.real_data = cfg->real_data;
          p.mode = cfg->mode;
          Deployment* dp = &dep;
          dep.vm(i).start_guest(
              common::strf("ft-rescale-r%zu", i),
              [dp, p, st](vm::GuestProcess& gp) -> Task<> {
                co_await restore_worker(dp, p, st, &gp);
              });
        }
        for (std::size_t i = 0; i < n; ++i) co_await dep.vm(i).join_guests();
        report->restart_repo_bytes += dep.boot_repo_bytes();
        report->restart_peer_bytes += dep.boot_peer_bytes();
        report->parity_bytes_rebuilt += dep.boot_parity_bytes();
        ++report->rescales;
        report->rescale_overhead += sim.now() - t0;
        force_ckpt = true;
      }
    }

    ++st->epoch;
  }

  injector->kill();
  report->makespan = sim.now() - job_start;
  report->useful_work = completed;
  report->gc_reclaimed_bytes = session->gc_reclaimed_bytes();
  if (cloud->blob_store() != nullptr) {
    const blob::BlobStore::TenantUsage usage =
        cloud->blob_store()->tenant_usage_snapshot(cfg->tenant);
    report->tenant_raw_bytes = usage.raw_bytes - usage_base.raw_bytes;
    report->tenant_shipped_bytes =
        usage.shipped_bytes - usage_base.shipped_bytes;
    report->tenant_commit_wait = usage.commit_wait - usage_base.commit_wait;
    report->tenant_provider_wait =
        usage.provider_wait - usage_base.provider_wait;
    report->tenant_prefetch_wait =
        usage.prefetch_wait - usage_base.prefetch_wait;
  }
  report->ckpt_blocked = st->ckpt_blocked;
  report->completed = !gave_up && completed >= cfg->total_work;
  if (cfg->real_data) {
    for (const bool ok : st->restore_ok)
      report->verified = report->verified && ok;
  }
}

}  // namespace

FtReport run_ft_job(Cloud& cloud, const FtJobConfig& cfg) {
  if (cfg.instances == 0)
    throw std::invalid_argument("run_ft_job: instances must be > 0");
  if (cfg.checkpoint_interval <= 0)
    throw std::invalid_argument("run_ft_job: checkpoint_interval must be > 0");
  if (cfg.step <= 0)
    throw std::invalid_argument("run_ft_job: step must be > 0");
  if (cfg.total_work <= 0)
    throw std::invalid_argument("run_ft_job: total_work must be > 0");
  FtReport report;
  cloud.run(ft_driver(&cloud, &cfg, &report));
  return report;
}

}  // namespace blobcr::ft
