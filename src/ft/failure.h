// Failure schedules: pre-sampled fail-stop events for the FT runner's
// injector. The infrastructure model (§2.1) is fail-stop commodity hardware
// where "component failure is the norm rather than the exception"; we sample
// per-instance failure times from exponential or Weibull lifetime
// distributions with a deterministic RNG so every run replays identically.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "sim/time.h"

namespace blobcr::ft {

/// One injected fail-stop: at virtual time `at`, the node currently hosting
/// logical instance `victim` dies (VM + local disk + co-located provider).
struct FailureEvent {
  sim::Time at = 0;
  std::size_t victim = 0;
};

/// Lifetime distribution for sampling inter-failure gaps.
struct FailureLaw {
  enum class Kind { Exponential, Weibull };
  Kind kind = Kind::Exponential;
  /// Mean time between failures of one node, seconds.
  double node_mtbf_s = 0;
  /// Weibull shape (k < 1: infant mortality, k = 1: exponential, k > 1:
  /// wear-out). Ignored for Exponential.
  double weibull_shape = 0.7;

  static FailureLaw exponential(double node_mtbf_s) {
    return {Kind::Exponential, node_mtbf_s, 1.0};
  }
  static FailureLaw weibull(double node_mtbf_s, double shape) {
    return {Kind::Weibull, node_mtbf_s, shape};
  }
};

/// A time-sorted batch of failure events over a horizon.
class FailureSchedule {
 public:
  FailureSchedule() = default;

  /// Samples per-instance failure processes over [0, horizon). Each of the
  /// `instances` logical slots gets an independent renewal process of the
  /// given law; events are merged into one time-ordered schedule.
  static FailureSchedule sample(const FailureLaw& law, std::size_t instances,
                                sim::Duration horizon, std::uint64_t seed) {
    if (law.node_mtbf_s <= 0)
      throw std::invalid_argument("FailureSchedule: node_mtbf_s must be > 0");
    FailureSchedule s;
    common::Rng root(seed);
    for (std::size_t i = 0; i < instances; ++i) {
      common::Rng rng = root.fork(i);
      sim::Time t = 0;
      while (true) {
        t += sample_gap(law, rng);
        if (t >= horizon) break;
        s.events_.push_back({t, i});
      }
    }
    std::sort(s.events_.begin(), s.events_.end(),
              [](const FailureEvent& a, const FailureEvent& b) {
                return a.at != b.at ? a.at < b.at : a.victim < b.victim;
              });
    return s;
  }

  /// A hand-written schedule (tests).
  static FailureSchedule fixed(std::vector<FailureEvent> events) {
    FailureSchedule s;
    s.events_ = std::move(events);
    std::sort(s.events_.begin(), s.events_.end(),
              [](const FailureEvent& a, const FailureEvent& b) {
                return a.at != b.at ? a.at < b.at : a.victim < b.victim;
              });
    return s;
  }

  static FailureSchedule none() { return FailureSchedule(); }

  const std::vector<FailureEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

 private:
  static sim::Duration sample_gap(const FailureLaw& law, common::Rng& rng) {
    // Inverse-CDF sampling; clamp u away from 0 so log() is finite.
    const double u = std::max(rng.uniform01(), 1e-12);
    double gap_s = 0;
    switch (law.kind) {
      case FailureLaw::Kind::Exponential:
        gap_s = -law.node_mtbf_s * std::log(u);
        break;
      case FailureLaw::Kind::Weibull: {
        // Scale lambda chosen so the mean is node_mtbf_s:
        // mean = lambda * Gamma(1 + 1/k).
        const double k = law.weibull_shape;
        const double lambda = law.node_mtbf_s / std::tgamma(1.0 + 1.0 / k);
        gap_s = lambda * std::pow(-std::log(u), 1.0 / k);
        break;
      }
    }
    // Never two failures at the same instant on one node.
    return std::max<sim::Duration>(sim::from_seconds(gap_s), 1);
  }

  std::vector<FailureEvent> events_;
};

}  // namespace blobcr::ft
