// FtRunner: closes the checkpoint-restart loop the paper motivates but only
// exercises piecewise. It runs a tightly-coupled job on a Cloud deployment
// under injected fail-stop node failures (§2.1's infrastructure model),
// taking a coordinated disk-snapshot checkpoint every `checkpoint_interval`
// of useful work, and on every failure rolls the whole application back to
// the last *complete* global checkpoint on fresh nodes (§3.2's middleware
// mapping), until the job's total work is done.
//
// The report separates useful work, wasted compute, checkpoint overhead and
// restart overhead, so benchmarks can compare the measured makespan against
// the analytic renewal model in ft/interval.h and show how BlobCR's cheaper
// snapshots shift the optimum interval (Young/Daly) and raise efficiency.
//
// Modeling notes:
//  * The job is `instances` ranks, one per VM, synchronized by a barrier
//    every `step` of compute (tightly coupled: one lost rank stalls all).
//  * A failure event fail-stops the victim's node: the VM dies and so does
//    the co-located data provider (use replication >= 2 to keep the
//    repository readable — exactly the paper's design point).
//  * Failure events that fire while a restart is in progress are deferred
//    to the next epoch start (cost-wise equivalent to a failure during
//    restart: another restart is paid almost immediately).
//  * An initial checkpoint is taken right after deployment so a failure in
//    the first epoch has a rollback target.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cloud.h"
#include "cr/checkpoint.h"
#include "ft/failure.h"
#include "sim/sim.h"

namespace blobcr::ft {

/// How rank state reaches the virtual disk (paper §4.2, minus full-VM which
/// has no per-process dump).
enum class DumpMode { AppLevel, Blcr };

const char* dump_mode_name(DumpMode mode);

struct FtJobConfig {
  std::size_t instances = 4;
  /// Useful compute per rank for the whole job.
  sim::Duration total_work = 600 * sim::kSecond;
  /// Useful compute between coordinated checkpoints (tau).
  sim::Duration checkpoint_interval = 120 * sim::kSecond;
  /// Compute granularity; ranks barrier after every step.
  sim::Duration step = 5 * sim::kSecond;
  /// Per-rank process state dumped at each checkpoint.
  std::uint64_t state_bytes = 50 * common::kMB;
  /// Real buffers with digest verification (tests) vs phantom (benchmarks).
  bool real_data = false;
  DumpMode mode = DumpMode::AppLevel;
  /// Injected fail-stop events (empty = failure-free run).
  FailureSchedule failures;
  /// Heartbeat timeout: delay between a failure and the middleware reacting.
  sim::Duration detect_latency = 2 * sim::kSecond;
  /// Give up after this many rollbacks (guards pathological configs).
  std::size_t max_restarts = 64;
  /// After every rollback, run a repository repair pass that re-replicates
  /// chunks whose provider died with the node (BlobCR backend only). Keeps
  /// the *next* failure survivable instead of just the first.
  bool repair_after_restart = false;
  /// Catalog retention (the paper's §6 future work): after every committed
  /// checkpoint the runner's cr::Session retires records beyond
  /// keep-last-N and reclaims their snapshot versions through the garbage
  /// collector. keep_last == 0 disables. The runner only ever rolls back
  /// to the latest complete checkpoint, so keeping 1 is always safe.
  cr::RetentionPolicy retention;
  /// Deprecated alias for retention.keep_last (> 0 wins only when the
  /// policy above was left at its default).
  int gc_keep_last = 0;
  /// Repository tenant this job runs as (multi-tenant clouds; see
  /// Cloud::register_tenant). Namespaces the job's checkpoint catalog and
  /// tags its commits for QoS admission and per-tenant accounting.
  net::TenantId tenant = net::kDefaultTenant;
  /// Catalog namespace for this job (cr::Session::Config::job). Empty keeps
  /// the single-job default catalog name.
  std::string job;
  /// One scheduled elastic rescale: once `after_checkpoints` global
  /// checkpoints have committed, the job restarts from the latest record
  /// onto `instances` fresh instances (shrink on a spot reclaim, grow on a
  /// queue drain) through cr::Session's elastic restart. The runner forces
  /// an immediate zero-work checkpoint afterwards so the new width has its
  /// own rollback target.
  struct RescaleEvent {
    std::size_t after_checkpoints = 0;
    std::size_t instances = 0;
  };
  /// Scheduled rescales, applied in after_checkpoints order.
  std::vector<RescaleEvent> rescales;
};

/// One epoch (work span between checkpoints) as the driver observed it.
struct EpochRecord {
  sim::Time start = 0;
  sim::Time end = 0;
  bool success = false;          // checkpoint committed for all ranks
  std::size_t failures = 0;      // injected failures during the epoch
};

struct FtReport {
  bool completed = false;        // all work done within max_restarts
  bool verified = true;          // every restored state digest matched
  sim::Duration makespan = 0;
  sim::Duration useful_work = 0;         // checkpoint-committed compute
  sim::Duration wasted_compute = 0;      // epoch time lost to rollbacks
  sim::Duration checkpoint_overhead = 0; // dump + snapshot (+ drain) phases
  /// VM pause time summed over all snapshot requests: the app-blocked share
  /// of checkpoint_overhead. With the async commit pipeline this collapses
  /// to the local staging cost while the drain overlaps other ranks.
  sim::Duration ckpt_blocked = 0;
  sim::Duration restart_overhead = 0;    // detection + redeploy + restore
  /// Restart lazy-fetch transfer split, summed over all rollbacks
  /// (BlobCR): repository wire bytes vs intra-deployment peer-copy bytes
  /// vs bytes reconstructed from peer parity groups (redundancy tier).
  std::uint64_t restart_repo_bytes = 0;
  std::uint64_t restart_peer_bytes = 0;
  std::uint64_t parity_bytes_rebuilt = 0;
  std::size_t checkpoints = 0;   // committed global checkpoints
  std::size_t failures = 0;      // injected failures that hit the job
  std::size_t restarts = 0;      // rollbacks performed
  std::size_t rescales = 0;      // elastic N -> M restarts performed
  /// Teardown + elastic restart + restore time across all rescales.
  sim::Duration rescale_overhead = 0;
  std::size_t repair_copies = 0; // replica copies re-created by repair
  std::uint64_t repair_bytes = 0;
  std::uint64_t gc_reclaimed_bytes = 0;
  /// Per-tenant repository accounting for this job (BlobCR backend),
  /// measured from a post-provisioning baseline so it covers exactly this
  /// job's commits: raw commit payload vs post-reduction bytes shipped, and
  /// the time this tenant's requests sat queued at the shared admission
  /// points (commit gate + fair manager queues).
  std::uint64_t tenant_raw_bytes = 0;
  std::uint64_t tenant_shipped_bytes = 0;
  sim::Duration tenant_commit_wait = 0;
  /// Queueing at the admission plane's provider-io / restart-prefetch
  /// gates, same baseline-diff convention.
  sim::Duration tenant_provider_wait = 0;
  sim::Duration tenant_prefetch_wait = 0;
  std::vector<EpochRecord> epochs;

  /// Useful-work fraction of the makespan, in (0, 1].
  double efficiency() const {
    return makespan > 0 ? sim::to_seconds(useful_work) /
                              sim::to_seconds(makespan)
                        : 1.0;
  }
};

/// Runs the job to completion (or max_restarts) on the given cloud.
/// The cloud's backend decides BlobCR vs the qcow2-disk baseline.
FtReport run_ft_job(core::Cloud& cloud, const FtJobConfig& cfg);

}  // namespace blobcr::ft
