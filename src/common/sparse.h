// SparseFile: an in-memory sparse byte container (holes read as zeros) used
// as the payload representation for PVFS files, local host files and qcow
// containers. Handles phantom payloads with the same contagion rule as
// Buffer.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/buffer.h"

namespace blobcr::common {

class SparseFile {
 public:
  void write(std::uint64_t offset, Buffer data);

  /// Reads [offset, offset+len); holes are zeros. If any byte of the range
  /// comes from a phantom extent, the result is phantom.
  Buffer read(std::uint64_t offset, std::uint64_t len) const;

  /// Exact written pieces of [offset, offset+len) — holes skipped, adjacent
  /// pieces of equal phantomness merged (capped at max_piece). Lets a copy
  /// preserve real content next to phantom content instead of contaminating
  /// the whole range.
  std::vector<std::pair<std::uint64_t, Buffer>> read_extents(
      std::uint64_t offset, std::uint64_t len,
      std::uint64_t max_piece = 4 * 1024 * 1024) const;

  /// Total bytes covered by extents.
  std::uint64_t allocated_bytes() const { return allocated_; }
  /// One past the last written byte.
  std::uint64_t size() const { return size_; }
  bool empty() const { return extents_.empty(); }
  std::size_t extent_count() const { return extents_.size(); }
  void clear();

  /// Removes [offset, offset+len) (punches a hole).
  void erase(std::uint64_t offset, std::uint64_t len);

 private:
  // offset -> payload; disjoint.
  std::map<std::uint64_t, Buffer> extents_;
  std::uint64_t allocated_ = 0;
  std::uint64_t size_ = 0;
};

}  // namespace blobcr::common
