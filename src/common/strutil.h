// Small string helpers (printf-style formatting; GCC 12 lacks <format>).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace blobcr::common {

/// printf-style formatting into a std::string.
std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// "1.50 MB"-style human-readable byte count (decimal units, like the paper).
std::string human_bytes(std::uint64_t bytes);

std::vector<std::string> split(const std::string& s, char sep);

bool starts_with(const std::string& s, const std::string& prefix);

}  // namespace blobcr::common
