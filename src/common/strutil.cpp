#include "common/strutil.h"

#include <cstdarg>
#include <cstdio>

namespace blobcr::common {

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string human_bytes(std::uint64_t bytes) {
  const double b = static_cast<double>(bytes);
  if (bytes >= 1000ULL * 1000 * 1000) return strf("%.2f GB", b / 1e9);
  if (bytes >= 1000ULL * 1000) return strf("%.2f MB", b / 1e6);
  if (bytes >= 1000ULL) return strf("%.2f KB", b / 1e3);
  return strf("%llu B", static_cast<unsigned long long>(bytes));
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace blobcr::common
