#include "common/rangeset.h"

#include <algorithm>
#include <cassert>

namespace blobcr::common {

void RangeSet::insert(std::uint64_t begin, std::uint64_t end) {
  if (end <= begin) return;
  // Find the first range that could overlap or touch [begin, end).
  auto it = ranges_.lower_bound(begin);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) it = prev;  // touches or overlaps from the left
  }
  // Merge all overlapping/adjacent ranges into [begin, end).
  while (it != ranges_.end() && it->first <= end) {
    begin = std::min(begin, it->first);
    end = std::max(end, it->second);
    it = ranges_.erase(it);
  }
  ranges_.emplace(begin, end);
}

void RangeSet::erase(std::uint64_t begin, std::uint64_t end) {
  if (end <= begin) return;
  auto it = ranges_.lower_bound(begin);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > begin) it = prev;
  }
  while (it != ranges_.end() && it->first < end) {
    const std::uint64_t r_begin = it->first;
    const std::uint64_t r_end = it->second;
    it = ranges_.erase(it);
    if (r_begin < begin) ranges_.emplace(r_begin, begin);
    if (r_end > end) {
      ranges_.emplace(end, r_end);
      break;
    }
  }
}

bool RangeSet::contains(std::uint64_t begin, std::uint64_t end) const {
  if (end <= begin) return true;
  auto it = ranges_.upper_bound(begin);
  if (it == ranges_.begin()) return false;
  --it;
  return it->first <= begin && it->second >= end;
}

bool RangeSet::intersects(std::uint64_t begin, std::uint64_t end) const {
  if (end <= begin) return false;
  auto it = ranges_.lower_bound(begin);
  if (it != ranges_.end() && it->first < end) return true;
  if (it == ranges_.begin()) return false;
  --it;
  return it->second > begin;
}

std::vector<Range> RangeSet::intersection(std::uint64_t begin,
                                          std::uint64_t end) const {
  std::vector<Range> out;
  if (end <= begin) return out;
  auto it = ranges_.upper_bound(begin);
  if (it != ranges_.begin()) --it;
  for (; it != ranges_.end() && it->first < end; ++it) {
    const std::uint64_t lo = std::max(begin, it->first);
    const std::uint64_t hi = std::min(end, it->second);
    if (lo < hi) out.push_back({lo, hi});
  }
  return out;
}

std::vector<Range> RangeSet::gaps(std::uint64_t begin, std::uint64_t end) const {
  std::vector<Range> out;
  std::uint64_t cursor = begin;
  for (const Range& r : intersection(begin, end)) {
    if (r.begin > cursor) out.push_back({cursor, r.begin});
    cursor = r.end;
  }
  if (cursor < end) out.push_back({cursor, end});
  return out;
}

std::uint64_t RangeSet::total_length() const {
  std::uint64_t total = 0;
  for (const auto& [b, e] : ranges_) total += e - b;
  return total;
}

std::vector<Range> RangeSet::to_vector() const {
  std::vector<Range> out;
  out.reserve(ranges_.size());
  for (const auto& [b, e] : ranges_) out.push_back({b, e});
  return out;
}

}  // namespace blobcr::common
