// Byte-size and rate literals used across the code base.
#pragma once

#include <cstdint>

namespace blobcr::common {

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/// The paper reports sizes in decimal megabytes (e.g. "50 MB data buffer").
inline constexpr std::uint64_t kMB = 1000ULL * 1000ULL;

constexpr std::uint64_t kib(std::uint64_t n) { return n * kKiB; }
constexpr std::uint64_t mib(std::uint64_t n) { return n * kMiB; }
constexpr std::uint64_t gib(std::uint64_t n) { return n * kGiB; }
constexpr std::uint64_t mb(std::uint64_t n) { return n * kMB; }

/// Bandwidths are expressed in bytes per (virtual) second.
constexpr double mb_per_s(double n) { return n * 1e6; }
constexpr double mib_per_s(double n) { return n * static_cast<double>(kMiB); }

}  // namespace blobcr::common
