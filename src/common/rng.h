// Deterministic pseudo-random number generation (SplitMix64 seeding +
// xoshiro256** state). The whole simulator must be reproducible from a single
// seed, so no std::random_device anywhere.
#pragma once

#include <array>
#include <cstdint>

namespace blobcr::common {

/// SplitMix64 step; also usable as a cheap integer mixer / hash finalizer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes a value once (stateless convenience wrapper over splitmix64).
constexpr std::uint64_t mix64(std::uint64_t v) {
  std::uint64_t s = v;
  return splitmix64(s);
}

/// xoshiro256** — fast, high-quality, 256-bit state PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed'b10b'c0de'cafeULL) {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform(std::uint64_t n) { return next_u64() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return uniform01() < p; }

  /// Derives an independent child stream; used to give each simulated entity
  /// its own generator without correlation.
  Rng fork(std::uint64_t stream_id) {
    return Rng(next_u64() ^ mix64(stream_id));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace blobcr::common
