// ByteWriter/ByteReader: little-endian binary serialization used for the
// guest file system's on-disk metadata. Round-tripping through real bytes is
// what makes "mount the disk snapshot and read the files back" a genuine
// operation rather than bookkeeping.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/buffer.h"

namespace blobcr::common {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u16(std::uint16_t v) { raw(&v, 2); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

  std::size_t size() const { return out_.size(); }
  Buffer take() { return Buffer::real(std::move(out_)); }

 private:
  void raw(const void* p, std::size_t n) {
    const std::size_t at = out_.size();
    out_.resize(at + n);
    std::memcpy(out_.data() + at, p, n);
  }
  std::vector<std::byte> out_;
};

class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

class ByteReader {
 public:
  explicit ByteReader(const Buffer& buf) : data_(buf.bytes()) {
    if (!buf.fully_real())
      throw CodecError("cannot decode phantom payload (metadata must be real)");
  }

  std::uint8_t u8() { return read_int<std::uint8_t>(); }
  std::uint16_t u16() { return read_int<std::uint16_t>(); }
  std::uint32_t u32() { return read_int<std::uint32_t>(); }
  std::uint64_t u64() { return read_int<std::uint64_t>(); }
  std::string str() {
    const std::uint32_t n = u32();
    check(n);
    std::string s(n, '\0');
    std::memcpy(s.data(), data_.data() + pos_, n);
    pos_ += n;
    return s;
  }
  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  template <class T>
  T read_int() {
    check(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void check(std::size_t n) const {
    if (pos_ + n > data_.size()) throw CodecError("decode past end");
  }
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace blobcr::common
