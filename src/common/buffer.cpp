#include "common/buffer.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/digest.h"

namespace blobcr::common {

namespace {
constexpr std::uint64_t kPhantomSalt = 0x941707011ULL;
}

Buffer Buffer::real(std::vector<std::byte> data) {
  Buffer b;
  b.size_ = data.size();
  if (!data.empty()) {
    Segment seg;
    seg.data = std::move(data);
    b.segs_.push_back(std::move(seg));
  }
  return b;
}

Buffer Buffer::zeros(std::size_t n) {
  // Built in place (not via real()) — the moved-temporary form trips
  // gcc-12's -Wfree-nonheap-object false positive under -O3 inlining.
  Buffer b;
  b.size_ = n;
  if (n > 0) {
    Segment seg;
    seg.data.assign(n, std::byte{0});
    b.segs_.push_back(std::move(seg));
  }
  return b;
}

Buffer Buffer::pattern(std::size_t n, std::uint64_t seed) {
  std::vector<std::byte> data(n);
  std::uint64_t state = seed;
  std::size_t i = 0;
  while (i + 8 <= n) {
    const std::uint64_t word = splitmix64(state);
    std::memcpy(data.data() + i, &word, 8);
    i += 8;
  }
  if (i < n) {
    const std::uint64_t word = splitmix64(state);
    std::memcpy(data.data() + i, &word, n - i);
  }
  return real(std::move(data));
}

Buffer Buffer::random(std::size_t n, Rng& rng) {
  return pattern(n, rng.next_u64());
}

Buffer Buffer::from_string(std::string_view text) {
  std::vector<std::byte> data(text.size());
  std::memcpy(data.data(), text.data(), text.size());
  return real(std::move(data));
}

Buffer Buffer::phantom(std::size_t n) {
  Buffer b;
  b.size_ = n;
  if (n > 0) {
    Segment seg;
    seg.phantom = true;
    seg.length = n;
    b.segs_.push_back(std::move(seg));
  }
  return b;
}

bool Buffer::is_phantom() const {
  for (const Segment& s : segs_) {
    if (s.phantom) return true;
  }
  return false;
}

bool Buffer::fully_real() const { return !is_phantom(); }

bool Buffer::fully_phantom() const {
  if (segs_.empty()) return false;
  for (const Segment& s : segs_) {
    if (!s.phantom) return false;
  }
  return true;
}

bool Buffer::all_zero() const {
  if (segs_.empty()) return false;
  for (const Segment& s : segs_) {
    if (s.phantom) return false;
    for (const std::byte b : s.data) {
      if (b != std::byte{0}) return false;
    }
  }
  return true;
}

std::span<const std::byte> Buffer::bytes() const {
  if (segs_.empty()) return {};
  // Canonical form: a fully-real buffer is one merged segment.
  if (segs_.size() != 1 || segs_[0].phantom) return {};
  return {segs_[0].data.data(), segs_[0].data.size()};
}

std::span<std::byte> Buffer::mutable_bytes() {
  if (segs_.empty()) return {};
  if (segs_.size() != 1 || segs_[0].phantom) return {};
  return {segs_[0].data.data(), segs_[0].data.size()};
}

std::uint64_t Buffer::digest() const {
  if (segs_.empty()) return fnv1a(std::span<const std::byte>{});
  if (segs_.size() == 1 && segs_[0].phantom) {
    // Keep the historical pure-phantom formula.
    return mix64(kPhantomSalt ^ size_);
  }
  std::uint64_t h = kFnvOffset;
  for (const Segment& s : segs_) {
    if (s.phantom) {
      const std::uint64_t marker = mix64(kPhantomSalt ^ s.length);
      for (int i = 0; i < 8; ++i) {
        h = fnv1a_step(h, static_cast<std::uint8_t>(marker >> (i * 8)));
      }
    } else {
      h = fnv1a({s.data.data(), s.data.size()}, h);
    }
  }
  return h;
}

void Buffer::push_segment(Segment seg) {
  if (seg.size() == 0) return;
  size_ += seg.size();
  if (!segs_.empty()) {
    Segment& last = segs_.back();
    if (last.phantom && seg.phantom) {
      last.length += seg.length;
      return;
    }
    if (!last.phantom && !seg.phantom) {
      last.data.insert(last.data.end(), seg.data.begin(), seg.data.end());
      return;
    }
  }
  segs_.push_back(std::move(seg));
}

Buffer Buffer::slice_segments(std::size_t off, std::size_t len) const {
  Buffer out;
  std::uint64_t pos = 0;
  const std::uint64_t end = off + len;
  for (const Segment& s : segs_) {
    const std::uint64_t s_end = pos + s.size();
    if (s_end > off && pos < end) {
      const std::uint64_t lo = std::max<std::uint64_t>(pos, off);
      const std::uint64_t hi = std::min<std::uint64_t>(s_end, end);
      Segment piece;
      piece.phantom = s.phantom;
      if (s.phantom) {
        piece.length = hi - lo;
      } else {
        piece.data.assign(
            s.data.begin() + static_cast<std::ptrdiff_t>(lo - pos),
            s.data.begin() + static_cast<std::ptrdiff_t>(hi - pos));
      }
      out.push_segment(std::move(piece));
    }
    pos = s_end;
    if (pos >= end) break;
  }
  return out;
}

Buffer Buffer::slice(std::size_t off, std::size_t len) const {
  assert(off + len <= size_);
  return slice_segments(off, len);
}

void Buffer::append(const Buffer& src) {
  for (const Segment& s : src.segs_) {
    Segment copy = s;
    push_segment(std::move(copy));
  }
}

void Buffer::overwrite(std::size_t off, const Buffer& src) {
  if (src.size() == 0) return;
  // Fast path: a real write fully inside a single real buffer.
  if (segs_.size() == 1 && !segs_[0].phantom && src.segs_.size() == 1 &&
      !src.segs_[0].phantom && off + src.size() <= size_) {
    std::memcpy(segs_[0].data.data() + off, src.segs_[0].data.data(),
                src.size());
    return;
  }
  Buffer out;
  if (off > 0) {
    if (off <= size_) {
      out = slice_segments(0, off);
    } else {
      out = slice_segments(0, size_);
      out.push_segment([&] {
        Segment gap;
        gap.data.assign(off - size_, std::byte{0});
        return gap;
      }());
    }
  }
  out.append(src);
  const std::uint64_t tail_at = off + src.size();
  if (tail_at < size_) {
    out.append(slice_segments(tail_at, size_ - tail_at));
  }
  *this = std::move(out);
}

void Buffer::resize(std::size_t n) {
  if (n == size_) return;
  if (n < size_) {
    *this = slice_segments(0, n);
    return;
  }
  Segment tail;
  tail.data.assign(n - size_, std::byte{0});
  push_segment(std::move(tail));
}

std::string Buffer::to_string() const {
  const auto view = bytes();
  if (view.empty() && size_ != 0) return std::string();
  std::string s(view.size(), '\0');
  std::memcpy(s.data(), view.data(), view.size());
  return s;
}

bool operator==(const Buffer& a, const Buffer& b) {
  if (a.size_ != b.size_) return false;
  // Canonical form makes segment-wise comparison exact.
  if (a.segs_.size() != b.segs_.size()) return false;
  for (std::size_t i = 0; i < a.segs_.size(); ++i) {
    const auto& sa = a.segs_[i];
    const auto& sb = b.segs_[i];
    if (sa.phantom != sb.phantom || sa.size() != sb.size()) return false;
    if (!sa.phantom && sa.data != sb.data) return false;
  }
  return true;
}

}  // namespace blobcr::common
