#include "common/sparse.h"

#include <algorithm>

namespace blobcr::common {

void SparseFile::erase(std::uint64_t offset, std::uint64_t len) {
  if (len == 0) return;
  const std::uint64_t end = offset + len;
  auto it = extents_.lower_bound(offset);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.size() > offset) it = prev;
  }
  while (it != extents_.end() && it->first < end) {
    const std::uint64_t e_begin = it->first;
    const std::uint64_t e_end = e_begin + it->second.size();
    Buffer data = std::move(it->second);
    allocated_ -= data.size();
    it = extents_.erase(it);
    if (e_begin < offset) {
      Buffer left = data.slice(0, offset - e_begin);
      allocated_ += left.size();
      extents_.emplace(e_begin, std::move(left));
    }
    if (e_end > end) {
      Buffer right = data.slice(end - e_begin, e_end - end);
      allocated_ += right.size();
      extents_.emplace(end, std::move(right));
      break;
    }
  }
}

void SparseFile::write(std::uint64_t offset, Buffer data) {
  if (data.size() == 0) return;
  erase(offset, data.size());
  size_ = std::max(size_, offset + data.size());
  allocated_ += data.size();
  extents_.emplace(offset, std::move(data));
}

Buffer SparseFile::read(std::uint64_t offset, std::uint64_t len) const {
  if (len == 0) return Buffer();
  const std::uint64_t end = offset + len;
  auto it = extents_.lower_bound(offset);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.size() > offset) it = prev;
  }
  // Piecewise assembly preserves real content next to phantom content.
  Buffer out;
  std::uint64_t cursor = offset;
  for (; it != extents_.end() && it->first < end; ++it) {
    const std::uint64_t e_begin = it->first;
    const std::uint64_t e_end = e_begin + it->second.size();
    const std::uint64_t lo = std::max(offset, e_begin);
    const std::uint64_t hi = std::min(end, e_end);
    if (lo >= hi) continue;
    if (lo > cursor) out.append(Buffer::zeros(lo - cursor));  // hole
    out.append(it->second.slice(lo - e_begin, hi - lo));
    cursor = hi;
  }
  if (cursor < end) out.append(Buffer::zeros(end - cursor));
  return out;
}

std::vector<std::pair<std::uint64_t, Buffer>> SparseFile::read_extents(
    std::uint64_t offset, std::uint64_t len, std::uint64_t max_piece) const {
  std::vector<std::pair<std::uint64_t, Buffer>> out;
  if (len == 0) return out;
  const std::uint64_t end = offset + len;
  auto it = extents_.lower_bound(offset);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.size() > offset) it = prev;
  }
  for (; it != extents_.end() && it->first < end; ++it) {
    const std::uint64_t e_begin = it->first;
    const std::uint64_t e_end = e_begin + it->second.size();
    const std::uint64_t lo = std::max(offset, e_begin);
    const std::uint64_t hi = std::min(end, e_end);
    if (lo >= hi) continue;
    Buffer piece = it->second.slice(lo - e_begin, hi - lo);
    // Merge with the previous piece when contiguous, same phantomness and
    // under the size cap.
    if (!out.empty()) {
      auto& [prev_off, prev_buf] = out.back();
      if (prev_off + prev_buf.size() == lo &&
          prev_buf.is_phantom() == piece.is_phantom() &&
          prev_buf.size() + piece.size() <= max_piece) {
        prev_buf.overwrite(prev_buf.size(), piece);
        continue;
      }
    }
    out.emplace_back(lo, std::move(piece));
  }
  return out;
}

void SparseFile::clear() {
  extents_.clear();
  allocated_ = 0;
  size_ = 0;
}

}  // namespace blobcr::common
