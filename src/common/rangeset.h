// RangeSet: a set of disjoint half-open byte ranges [begin, end), kept
// coalesced. Used for dirty-block tracking in the mirroring module, local
// availability maps for lazy fetching, and free-extent accounting.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace blobcr::common {

struct Range {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;  // exclusive

  std::uint64_t length() const { return end - begin; }
  bool empty() const { return end <= begin; }
  friend bool operator==(const Range&, const Range&) = default;
};

class RangeSet {
 public:
  void insert(std::uint64_t begin, std::uint64_t end);
  void insert(const Range& r) { insert(r.begin, r.end); }
  void erase(std::uint64_t begin, std::uint64_t end);

  /// True iff [begin, end) is fully covered.
  bool contains(std::uint64_t begin, std::uint64_t end) const;
  /// True iff any byte of [begin, end) is covered.
  bool intersects(std::uint64_t begin, std::uint64_t end) const;

  /// Portions of [begin, end) that are covered, in order.
  std::vector<Range> intersection(std::uint64_t begin, std::uint64_t end) const;
  /// Portions of [begin, end) that are NOT covered, in order.
  std::vector<Range> gaps(std::uint64_t begin, std::uint64_t end) const;

  std::uint64_t total_length() const;
  bool empty() const { return ranges_.empty(); }
  std::size_t piece_count() const { return ranges_.size(); }
  void clear() { ranges_.clear(); }

  std::vector<Range> to_vector() const;

 private:
  // begin -> end, disjoint, non-adjacent (always coalesced).
  std::map<std::uint64_t, std::uint64_t> ranges_;
};

}  // namespace blobcr::common
