// Buffer: a byte payload composed of *real* segments (actual bytes) and
// *phantom* segments (length-only placeholders).
//
// The simulator's data plane is exercised with real bytes in unit tests,
// integration tests and examples, so content round-trips can be verified by
// digest. Large-scale benchmark sweeps (120 VMs x 200 MB of checkpoint
// state) would not fit in memory, so bulk payloads run as phantoms: all
// sizes, placement decisions and transfer timings are identical, only the
// memcpy is skipped. Because a buffer is piecewise, real content (file
// system metadata, dump headers) survives any assembly that also touches
// phantom content — e.g. a 256 KiB repository chunk holding a real BLCR
// header next to phantom memory pages.
//
// Canonical form invariant: segments are contiguous from offset 0, adjacent
// segments of the same kind are merged; a fully-real buffer therefore has
// exactly one segment and exposes a flat byte view.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"

namespace blobcr::common {

class Buffer {
 public:
  /// Empty buffer.
  Buffer() = default;

  static Buffer real(std::vector<std::byte> data);
  static Buffer zeros(std::size_t n);
  /// Deterministic pseudo-random content derived from `seed`.
  static Buffer pattern(std::size_t n, std::uint64_t seed);
  static Buffer random(std::size_t n, Rng& rng);
  static Buffer from_string(std::string_view text);
  static Buffer phantom(std::size_t n);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// True iff any byte is phantom.
  bool is_phantom() const;
  /// True iff every byte is real (an empty buffer is fully real).
  bool fully_real() const;
  /// True iff non-empty, every byte phantom (no real segments).
  bool fully_phantom() const;
  /// True iff every byte is real and zero (phantom content is unknowable,
  /// so any phantom segment makes this false; empty buffers are not zero).
  bool all_zero() const;

  /// Flat view of the payload; requires fully_real() (empty span otherwise).
  std::span<const std::byte> bytes() const;
  std::span<std::byte> mutable_bytes();

  /// Order-sensitive digest over content; phantom segments contribute a
  /// length-derived sentinel. Equal buffers digest equally; a pure-phantom
  /// buffer's digest depends only on its length.
  std::uint64_t digest() const;

  /// Copy of [off, off+len). Requires off+len <= size().
  Buffer slice(std::size_t off, std::size_t len) const;

  /// Overwrites [off, off+src.size()) with `src`, growing if needed (a gap
  /// beyond the current end is zero-filled).
  void overwrite(std::size_t off, const Buffer& src);

  /// Appends `src` at the end.
  void append(const Buffer& src);

  /// Shrinks or zero-extends to exactly n bytes.
  void resize(std::size_t n);

  std::string to_string() const;  // fully_real() only; empty otherwise

  friend bool operator==(const Buffer& a, const Buffer& b);

  std::size_t segment_count() const { return segs_.size(); }

 private:
  struct Segment {
    bool phantom = false;
    std::uint64_t length = 0;      // phantom only
    std::vector<std::byte> data;   // real only

    std::uint64_t size() const {
      return phantom ? length : data.size();
    }
  };

  void push_segment(Segment seg);          // appends + merges
  Buffer slice_segments(std::size_t off, std::size_t len) const;

  std::vector<Segment> segs_;
  std::uint64_t size_ = 0;
};

}  // namespace blobcr::common
