// Content digests for end-to-end data integrity checks (FNV-1a 64-bit).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace blobcr::common {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr std::uint64_t fnv1a_step(std::uint64_t h, std::uint8_t byte) {
  return (h ^ byte) * kFnvPrime;
}

inline std::uint64_t fnv1a(std::span<const std::byte> data,
                           std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (const std::byte b : data) h = fnv1a_step(h, std::to_integer<std::uint8_t>(b));
  return h;
}

constexpr std::uint64_t fnv1a(std::string_view text,
                              std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (const char c : text) h = fnv1a_step(h, static_cast<std::uint8_t>(c));
  return h;
}

}  // namespace blobcr::common
