// GuestOs: builds the base disk image (a Debian-like file population) and
// models the guest boot sequence — mount the root FS, read the boot hot set
// (kernel, initrd, init, shared libraries), burn boot CPU time, write the
// boot-time noise (logs, machine-id, dhcp leases...) that every disk
// snapshot inevitably carries (the paper's 7–13 MB "minor updates").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "guestfs/simplefs.h"
#include "img/mem_device.h"
#include "sim/sim.h"
#include "vm/vm_instance.h"

namespace blobcr::vm {

struct GuestOsConfig {
  struct FileSpec {
    std::string path;
    std::uint64_t bytes = 0;
    bool hot = false;  // read during boot
  };

  std::vector<FileSpec> files;
  guestfs::FsConfig fs;
  std::uint64_t image_size = 2000 * common::kMB;  // paper: 2 GB raw image

  /// Boot-time writes (logs, generated configs).
  std::uint64_t boot_noise_bytes = 7 * common::kMB;
  std::uint32_t boot_noise_files = 48;
  sim::Duration boot_cpu_time = 5 * sim::kSecond;
  sim::Duration per_file_open_cost = 200 * sim::kMicrosecond;

  /// When true, install phantom payloads (benchmark scale); tests use real.
  bool phantom_content = true;

  std::uint64_t hot_set_bytes() const {
    std::uint64_t total = 0;
    for (const auto& f : files) {
      if (f.hot) total += f.bytes;
    }
    return total;
  }

  /// A Debian-Sid-like population: ~96 MB hot boot set, ~500 MB of cold
  /// content, FS block scattering comparable to ext3 block groups.
  static GuestOsConfig debian_like();

  /// A tiny image for unit tests (real content, a few MB).
  static GuestOsConfig test_tiny();
};

class GuestOs {
 public:
  /// Authors the base image into `dev` (no simulated cost — image
  /// preparation happens before the experiments).
  static sim::Task<> build_image(img::BlockDevice& dev,
                                 const GuestOsConfig& cfg);

  /// Boot sequence on a VM whose disk holds a built image. Mounts the FS
  /// into the VM, performs hot reads / noise writes / CPU burn.
  static sim::Task<> boot(VmInstance& vm, const GuestOsConfig& cfg);
};

}  // namespace blobcr::vm
