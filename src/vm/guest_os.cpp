#include "vm/guest_os.h"

#include "common/strutil.h"

namespace blobcr::vm {

using common::kMB;

GuestOsConfig GuestOsConfig::debian_like() {
  GuestOsConfig cfg;
  cfg.fs.block_size = 4096;
  cfg.fs.metadata_blocks = 512;
  cfg.fs.alloc_scatter_blocks = 12;  // spread files like block groups do
  cfg.files.push_back({"/boot/vmlinuz", 8 * kMB, true});
  cfg.files.push_back({"/boot/initrd.img", 28 * kMB, true});
  cfg.files.push_back({"/sbin/init", 1 * kMB, true});
  // Hot shared libraries and daemons (~60 MB over 30 files).
  for (int i = 0; i < 30; ++i) {
    cfg.files.push_back(
        {common::strf("/usr/lib/lib%02d.so", i), 2 * kMB, true});
  }
  // Cold content: /usr, /var, locales... (~500 MB over 100 files).
  for (int i = 0; i < 100; ++i) {
    cfg.files.push_back(
        {common::strf("/usr/share/data%03d.bin", i), 5 * kMB, false});
  }
  return cfg;
}

GuestOsConfig GuestOsConfig::test_tiny() {
  GuestOsConfig cfg;
  cfg.image_size = 64 * kMB;
  cfg.fs.block_size = 4096;
  cfg.fs.metadata_blocks = 128;
  cfg.fs.alloc_scatter_blocks = 16;
  cfg.phantom_content = false;
  cfg.boot_noise_bytes = 256 * 1024;
  cfg.boot_noise_files = 8;
  cfg.boot_cpu_time = sim::kSecond;
  cfg.files.push_back({"/boot/vmlinuz", 2 * kMB, true});
  cfg.files.push_back({"/boot/initrd.img", 1 * kMB, true});
  cfg.files.push_back({"/usr/lib/libc.so", 512 * 1024, true});
  cfg.files.push_back({"/usr/share/doc.bin", 4 * kMB, false});
  return cfg;
}

sim::Task<> GuestOs::build_image(img::BlockDevice& dev,
                                 const GuestOsConfig& cfg) {
  co_await guestfs::SimpleFs::mkfs(dev, cfg.fs);
  auto fs = co_await guestfs::SimpleFs::mount(dev);
  fs->mkdir("/boot");
  fs->mkdir("/sbin");
  fs->mkdir("/usr");
  fs->mkdir("/usr/lib");
  fs->mkdir("/usr/share");
  fs->mkdir("/var");
  fs->mkdir("/var/log");
  fs->mkdir("/etc");
  fs->mkdir("/data");
  // Applications may add their own files (e.g. a reference dataset shared
  // through the base image, §2.2) anywhere in the tree: create parents.
  auto ensure_parents = [&fs](const std::string& path) {
    for (std::size_t pos = path.find('/', 1); pos != std::string::npos;
         pos = path.find('/', pos + 1)) {
      const std::string dir = path.substr(0, pos);
      if (!fs->exists(dir)) fs->mkdir(dir);
    }
  };
  std::uint64_t seed = 0xdeb1a11;
  for (const auto& spec : cfg.files) {
    ensure_parents(spec.path);
    common::Buffer content =
        cfg.phantom_content ? common::Buffer::phantom(spec.bytes)
                            : common::Buffer::pattern(spec.bytes, seed++);
    co_await fs->write_file(spec.path, std::move(content));
  }
  co_await fs->sync();
}

sim::Task<> GuestOs::boot(VmInstance& vm, const GuestOsConfig& cfg) {
  co_await vm.gate();
  auto fs = co_await guestfs::SimpleFs::mount(vm.disk());
  guestfs::SimpleFs& ref = *fs;
  vm.adopt_fs(std::move(fs));

  // Read the hot set (kernel, initrd, libraries) through the virtual disk —
  // this is the traffic that lazy fetching accelerates on restart.
  for (const auto& spec : cfg.files) {
    if (!spec.hot) continue;
    co_await vm.gate();
    co_await vm.simulation().delay(cfg.per_file_open_cost);
    (void)co_await ref.read_file(spec.path);
  }

  // Init scripts, daemon start-up.
  co_await vm.guest_compute(cfg.boot_cpu_time);

  // Boot-time file system noise: logs, generated configs.
  const std::uint64_t per_file =
      cfg.boot_noise_files == 0
          ? 0
          : cfg.boot_noise_bytes / cfg.boot_noise_files;
  for (std::uint32_t i = 0; i < cfg.boot_noise_files; ++i) {
    co_await vm.gate();
    common::Buffer content =
        cfg.phantom_content
            ? common::Buffer::phantom(per_file)
            : common::Buffer::pattern(per_file, 0xb007'0000ULL + i);
    co_await ref.write_file(common::strf("/var/log/boot%03u.log", i),
                            std::move(content));
  }
  co_await ref.sync();
}

}  // namespace blobcr::vm
