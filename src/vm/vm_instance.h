// VmInstance + GuestProcess: the KVM instance model.
//
// A VmInstance runs on a compute node, owns a virtual disk (any
// BlockDevice), a mounted guest file system after boot, and a set of guest
// processes (sim processes gated by the VM's pause state). pause()/resume()
// implement the hypervisor's vCPU freeze used while the proxy snapshots the
// disk; destroy() is the fail-stop path (or teardown before re-deployment).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/units.h"
#include "guestfs/simplefs.h"
#include "img/block_device.h"
#include "net/fabric.h"
#include "sim/sim.h"

namespace blobcr::vm {

struct VmConfig {
  std::string name = "vm";
  int vcpus = 4;
  /// RAM used by the guest OS itself (kernel, daemons, page cache, device
  /// state) — the paper measures ~118 MB of full-snapshot overhead.
  std::uint64_t os_ram_bytes = 118 * common::kMB;
  /// Per-process runtime overhead beyond registered regions (libs, stack).
  std::uint64_t process_overhead_bytes = 2 * common::kMB;
};

class VmInstance;

/// One process inside the guest. Its "memory" is a set of named regions the
/// application registers; BLCR dumps exactly these regions plus overhead.
class GuestProcess {
 public:
  GuestProcess(VmInstance& vm, std::string name, int id)
      : vm_(&vm), name_(std::move(name)), id_(id) {}

  VmInstance& vm() { return *vm_; }
  const std::string& name() const { return name_; }
  int id() const { return id_; }

  common::Buffer& region(const std::string& name) { return regions_[name]; }
  void set_region(const std::string& name, common::Buffer data) {
    regions_[name] = std::move(data);
  }
  const std::map<std::string, common::Buffer>& regions() const {
    return regions_;
  }
  std::uint64_t memory_bytes() const;

  /// Gated compute: consumes virtual time unless the VM is paused.
  sim::Task<> compute(sim::Duration d);

 private:
  VmInstance* vm_;
  std::string name_;
  int id_;
  std::map<std::string, common::Buffer> regions_;
};

class VmInstance {
 public:
  VmInstance(sim::Simulation& sim, net::NodeId host, img::BlockDevice& disk,
             VmConfig cfg)
      : sim_(&sim),
        host_(host),
        disk_(&disk),
        cfg_(std::move(cfg)),
        run_event_(sim) {
    run_event_.set();
  }

  sim::Simulation& simulation() const { return *sim_; }
  net::NodeId host() const { return host_; }
  img::BlockDevice& disk() { return *disk_; }
  const VmConfig& config() const { return cfg_; }
  const std::string& name() const { return cfg_.name; }

  bool paused() const { return paused_; }
  bool destroyed() const { return destroyed_; }

  /// Freezes vCPUs: guest compute and new guest I/O stall until resume().
  void pause() {
    paused_ = true;
    run_event_.reset();
  }
  void resume() {
    paused_ = false;
    run_event_.set();
  }

  /// Suspends the caller until the VM is running.
  sim::Task<> gate() {
    while (paused_) co_await run_event_.wait();
    if (destroyed_) throw std::runtime_error("vm destroyed");
  }

  sim::Task<> guest_compute(sim::Duration d) {
    co_await gate();
    co_await sim_->delay(d);
  }

  /// The mounted guest file system (set by boot; null before).
  guestfs::SimpleFs* fs() { return fs_.get(); }
  void adopt_fs(std::unique_ptr<guestfs::SimpleFs> fs) { fs_ = std::move(fs); }

  /// Creates a guest process and runs `body(process)` as a sim process.
  /// The callable is moved into the trampoline's coroutine frame so that
  /// capturing lambdas stay alive for the process's whole lifetime.
  GuestProcess& start_guest(const std::string& name,
                            std::function<sim::Task<>(GuestProcess&)> body) {
    auto gp = std::make_unique<GuestProcess>(*this, name,
                                             static_cast<int>(guests_.size()));
    GuestProcess& ref = *gp;
    guests_.push_back(std::move(gp));
    procs_.push_back(
        sim_->spawn(cfg_.name + "/" + name, guest_trampoline(std::move(body), &ref)));
    return ref;
  }

  const std::vector<std::unique_ptr<GuestProcess>>& guests() const {
    return guests_;
  }
  const std::vector<sim::ProcessPtr>& guest_procs() const { return procs_; }

  /// Waits until every guest process has finished.
  sim::Task<> join_guests() {
    for (const auto& p : procs_) co_await p->join();
    for (const auto& p : procs_) {
      if (p->error()) std::rethrow_exception(p->error());
    }
  }

  /// Fail-stop / teardown: kills all guest activity. The virtual disk's
  /// local state dies with the node; only snapshots in the repository
  /// survive.
  void destroy() {
    destroyed_ = true;
    for (const auto& p : procs_) p->kill();
  }

  /// RAM captured by a full VM snapshot: guest OS + all process images.
  std::uint64_t ram_state_bytes() const {
    std::uint64_t total = cfg_.os_ram_bytes;
    for (const auto& g : guests_) total += g->memory_bytes();
    return total;
  }

 private:
  static sim::Task<> guest_trampoline(
      std::function<sim::Task<>(GuestProcess&)> body, GuestProcess* gp) {
    co_await body(*gp);
  }

  sim::Simulation* sim_;
  net::NodeId host_;
  img::BlockDevice* disk_;
  VmConfig cfg_;
  sim::Event run_event_;
  bool paused_ = false;
  bool destroyed_ = false;
  std::unique_ptr<guestfs::SimpleFs> fs_;
  std::vector<std::unique_ptr<GuestProcess>> guests_;
  std::vector<sim::ProcessPtr> procs_;
};

inline std::uint64_t GuestProcess::memory_bytes() const {
  std::uint64_t total = vm_->config().process_overhead_bytes;
  for (const auto& [name, buf] : regions_) total += buf.size();
  return total;
}

inline sim::Task<> GuestProcess::compute(sim::Duration d) {
  co_await vm_->guest_compute(d);
}

}  // namespace blobcr::vm
