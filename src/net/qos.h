// Per-tenant quality of service for the shared repository services.
//
// A multi-tenant repository runs many jobs' commits, drains and restarts
// through one provider pool and one set of manager daemons. Two primitives
// keep a bulk-checkpointing tenant from starving everyone else:
//
//  * TenantRegistry — the repository-wide identity and weight table. Jobs
//    register once (Cloud::register_tenant) and tag their repository
//    requests with the returned TenantId. Tenant 0 is the implicit default
//    (single-job deployments never need to register).
//  * FairGate — a weighted-fair counting gate. In fair mode, waiters are
//    admitted in start-time-fair order: each tenant accumulates normalized
//    service (cost / weight) and the pending tenant with the least service
//    goes next, so a tenant with one small request overtakes a tenant with
//    a deep backlog while long-run throughput converges to the weight
//    ratio. In FIFO mode the gate is a plain bounded queue — the "QoS off"
//    baseline with identical capacity. Zero slots disable the gate (every
//    enter admits immediately), which is the single-tenant default.
//
// Kill-safety follows the simulator's fail-stop rules: a waiter killed in
// the queue unlinks itself; a waiter killed between hand-off and resume
// returns its slot; an admitted holder releases through the RAII Permit as
// its frame unwinds.
#pragma once

#include <algorithm>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/sim.h"

namespace blobcr::net {

/// Repository-wide job identity. 0 is the implicit default tenant.
using TenantId = std::uint32_t;
inline constexpr TenantId kDefaultTenant = 0;

// Admission policy knobs live in qos::Config (src/qos/admission.h), which
// owns per-gate slot counts for the whole admission plane; net::QosConfig
// survives there as a deprecated alias.

class TenantRegistry {
 public:
  struct Info {
    std::string name;
    double weight = 1.0;
  };

  /// Registers a tenant and returns its id (1-based; 0 stays the default
  /// tenant with weight 1). Weights are relative shares; non-positive
  /// weights are clamped to 1.
  TenantId register_tenant(std::string name, double weight = 1.0) {
    infos_.push_back(Info{std::move(name), weight > 0 ? weight : 1.0});
    return static_cast<TenantId>(infos_.size());
  }

  double weight(TenantId t) const {
    return (t == kDefaultTenant || t > infos_.size()) ? 1.0
                                                      : infos_[t - 1].weight;
  }
  const std::string& name(TenantId t) const {
    static const std::string kDefault = "default";
    return (t == kDefaultTenant || t > infos_.size()) ? kDefault
                                                      : infos_[t - 1].name;
  }
  std::size_t size() const { return infos_.size(); }

 private:
  std::vector<Info> infos_;
};

class FairGate {
 public:
  /// `slots` == 0 disables the gate (unbounded admission). `registry` may
  /// be nullptr (every tenant weighs 1). `fair` == false keeps strict FIFO
  /// order — the equal-capacity baseline for QoS ablations.
  FairGate(sim::Simulation& sim, std::size_t slots,
           const TenantRegistry* registry, bool fair)
      : sim_(&sim), slots_(slots), registry_(registry), fair_(fair) {}
  FairGate(const FairGate&) = delete;
  FairGate& operator=(const FairGate&) = delete;

  /// RAII admission slot. A default-constructed (or moved-from) permit owns
  /// nothing — enter() on a disabled gate returns such a permit.
  class Permit {
   public:
    Permit() = default;
    explicit Permit(FairGate* gate) : gate_(gate) {}
    Permit(Permit&& o) noexcept : gate_(std::exchange(o.gate_, nullptr)) {}
    Permit& operator=(Permit&& o) noexcept {
      if (this != &o) {
        release();
        gate_ = std::exchange(o.gate_, nullptr);
      }
      return *this;
    }
    Permit(const Permit&) = delete;
    Permit& operator=(const Permit&) = delete;
    ~Permit() { release(); }
    void release() {
      if (gate_ != nullptr) std::exchange(gate_, nullptr)->release_slot();
    }

   private:
    FairGate* gate_ = nullptr;
  };

  /// Blocks until a slot is granted (in fair or FIFO order) and returns the
  /// holding permit. `cost` is the request's service demand in arbitrary
  /// units (seconds for manager requests, bytes for commits) — only ratios
  /// between requests matter for the fair ordering.
  sim::Task<Permit> enter(TenantId tenant, double cost) {
    if (slots_ == 0) co_return Permit();  // gate disabled
    if (in_use_ < slots_ && pending_.empty()) {
      ++in_use_;
      charge(tenant, cost);
      ++admitted_[tenant];
      co_return Permit(this);
    }
    Waiter w(*sim_, tenant, cost);
    w.enqueued = sim_->now();
    on_enqueue(tenant);
    pending_.push_back(&w);
    // Kill-safety: unlink on frame destruction; a granted-but-killed waiter
    // refunds the service it was charged at hand-off (it never ran) and
    // hands its slot onward instead of leaking it.
    struct Unlink {
      FairGate* gate;
      Waiter* w;
      ~Unlink() {
        if (w->consumed) return;
        if (w->granted) {
          gate->used_[w->tenant] -= w->charged;
          gate->release_slot();
        } else {
          gate->pending_.remove(w);
        }
      }
    } unlink{this, &w};
    while (!w.granted) co_await w.wq.wait();
    w.consumed = true;
    wait_time_[tenant] += sim_->now() - w.enqueued;
    ++admitted_[tenant];
    co_return Permit(this);
  }

  bool enabled() const { return slots_ > 0; }
  bool fair() const { return fair_; }
  std::size_t pending() const { return pending_.size(); }
  std::size_t in_use() const { return in_use_; }

  /// Cumulative time `tenant`'s requests spent queued at this gate.
  sim::Duration wait_time(TenantId tenant) const {
    const auto it = wait_time_.find(tenant);
    return it == wait_time_.end() ? 0 : it->second;
  }
  std::uint64_t admitted(TenantId tenant) const {
    const auto it = admitted_.find(tenant);
    return it == admitted_.end() ? 0 : it->second;
  }

 private:
  friend class Permit;

  struct Waiter {
    Waiter(sim::Simulation& sim, TenantId tenant, double cost)
        : tenant(tenant), cost(cost), wq(sim) {}
    TenantId tenant;
    double cost;
    sim::Time enqueued = 0;
    double charged = 0;  // normalized service charged at hand-off
    bool granted = false;
    bool consumed = false;
    sim::WaitQueue wq;
  };

  double weight(TenantId t) const {
    return registry_ != nullptr ? registry_->weight(t) : 1.0;
  }

  /// Start-time clamp: a tenant going idle must not bank credit — when it
  /// becomes active again its service level starts at the gate's virtual
  /// clock, not at whatever it had consumed long ago.
  void on_enqueue(TenantId t) {
    for (const Waiter* w : pending_) {
      if (w->tenant == t) return;  // already active
    }
    auto& used = used_[t];
    used = std::max(used, vclock_);
  }

  void charge(TenantId t, double cost) {
    auto& used = used_[t];
    used = std::max(used, vclock_);
    vclock_ = used;  // virtual start time of the request being admitted
    used += cost / weight(t);
  }

  void release_slot() {
    if (pending_.empty()) {
      --in_use_;
      return;
    }
    // Hand the slot to the next waiter: least normalized service first in
    // fair mode (FIFO within a tenant by queue order), arrival order in
    // FIFO mode.
    auto next = pending_.begin();
    if (fair_) {
      for (auto it = std::next(pending_.begin()); it != pending_.end(); ++it) {
        const double a = tenant_usage((*it)->tenant);
        const double b = tenant_usage((*next)->tenant);
        if (a < b) next = it;
      }
    }
    Waiter* w = *next;
    pending_.erase(next);
    charge(w->tenant, w->cost);
    w->charged = w->cost / weight(w->tenant);
    w->granted = true;
    w->wq.notify_one();
  }

  double tenant_usage(TenantId t) const {
    const auto it = used_.find(t);
    return it == used_.end() ? 0.0 : it->second;
  }

  sim::Simulation* sim_;
  std::size_t slots_;
  const TenantRegistry* registry_;
  bool fair_;
  std::size_t in_use_ = 0;
  std::list<Waiter*> pending_;
  std::unordered_map<TenantId, double> used_;
  double vclock_ = 0.0;
  std::unordered_map<TenantId, sim::Duration> wait_time_;
  std::unordered_map<TenantId, std::uint64_t> admitted_;
};

}  // namespace blobcr::net
