// ServiceQueue: models a server daemon that handles requests with a fixed
// CPU cost and bounded concurrency (1 worker = fully serialized, the PVFS
// metadata-server case). Also provides an RPC convenience that combines
// request transfer, server processing and response transfer.
#pragma once

#include <cstdint>
#include <string>

#include "net/fabric.h"
#include "sim/sim.h"

namespace blobcr::net {

class ServiceQueue {
 public:
  ServiceQueue(sim::Simulation& sim, std::string name,
               sim::Duration per_request_cost, std::int64_t workers = 1)
      : name_(std::move(name)),
        per_request_cost_(per_request_cost),
        sim_(&sim),
        workers_(sim, workers) {}

  /// Occupies a worker for the request cost.
  sim::Task<> process() { return process(per_request_cost_); }

  sim::Task<> process(sim::Duration cost) {
    co_await workers_.acquire();
    // RAII: a client process fail-stopped mid-request (crash harness, FT
    // injection) must return the worker, or a 1-worker service — the
    // version and provider managers — is wedged for every later caller.
    struct Permit {
      sim::Semaphore* workers;
      ~Permit() { workers->release(); }
    } permit{&workers_};
    ++requests_;
    co_await sim_->delay(cost);
  }

  std::uint64_t requests_served() const { return requests_; }
  std::size_t queue_depth() const { return workers_.waiting(); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  sim::Duration per_request_cost_;
  sim::Simulation* sim_;
  sim::Semaphore workers_;
  std::uint64_t requests_ = 0;
};

/// Round-trip RPC: request payload to the server, serialized processing,
/// response payload back.
inline sim::Task<> rpc(Fabric& fabric, ServiceQueue& service, NodeId client,
                       NodeId server, std::uint64_t request_bytes,
                       std::uint64_t response_bytes) {
  co_await fabric.transfer(client, server, request_bytes);
  co_await service.process();
  co_await fabric.transfer(server, client, response_bytes);
}

}  // namespace blobcr::net
