// ServiceQueue: models a server daemon that handles requests with a fixed
// CPU cost and bounded concurrency (1 worker = fully serialized, the PVFS
// metadata-server case). Also provides an RPC convenience that combines
// request transfer, server processing and response transfer.
//
// Multi-tenant repositories can switch a queue to weighted-fair admission
// (enable_fair): requests tagged with a TenantId are then dispatched in
// start-time-fair order instead of FIFO, so one tenant's backlog cannot
// starve another tenant's single request. Untagged requests run as the
// default tenant.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/fabric.h"
#include "net/qos.h"
#include "sim/sim.h"

namespace blobcr::net {

class ServiceQueue {
 public:
  ServiceQueue(sim::Simulation& sim, std::string name,
               sim::Duration per_request_cost, std::int64_t workers = 1)
      : name_(std::move(name)),
        per_request_cost_(per_request_cost),
        sim_(&sim),
        worker_count_(workers),
        workers_(sim, workers) {}

  /// Switches this queue to weighted-fair dispatch over `registry`'s tenant
  /// weights (same worker capacity; only the ordering changes). Call before
  /// traffic starts — waiters queued under the old discipline stay there.
  void enable_fair(const TenantRegistry* registry) {
    if (fair_ == nullptr) {
      fair_ = std::make_unique<FairGate>(
          *sim_, static_cast<std::size_t>(worker_count_), registry,
          /*fair=*/true);
    }
  }
  bool fair_enabled() const { return fair_ != nullptr; }

  /// Occupies a worker for the request cost.
  sim::Task<> process() { return process(kDefaultTenant, per_request_cost_); }
  sim::Task<> process(TenantId tenant) {
    return process(tenant, per_request_cost_);
  }

  sim::Task<> process(TenantId tenant, sim::Duration cost) {
    if (fair_ != nullptr) {
      FairGate::Permit permit =
          co_await fair_->enter(tenant, sim::to_seconds(cost));
      (void)permit;
      ++requests_;
      co_await sim_->delay(cost);
      co_return;  // permit releases (RAII) — also on kill-unwind
    }
    co_await workers_.acquire();
    // RAII: a client process fail-stopped mid-request (crash harness, FT
    // injection) must return the worker, or a 1-worker service — the
    // version and provider managers — is wedged for every later caller.
    struct Permit {
      sim::Semaphore* workers;
      ~Permit() { workers->release(); }
    } permit{&workers_};
    ++requests_;
    co_await sim_->delay(cost);
  }

  std::uint64_t requests_served() const { return requests_; }
  std::size_t queue_depth() const {
    return fair_ != nullptr ? fair_->pending() : workers_.waiting();
  }
  /// Per-tenant cumulative admission wait (zero unless fair mode is on).
  sim::Duration tenant_wait(TenantId tenant) const {
    return fair_ != nullptr ? fair_->wait_time(tenant) : 0;
  }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  sim::Duration per_request_cost_;
  sim::Simulation* sim_;
  std::int64_t worker_count_;
  sim::Semaphore workers_;
  std::unique_ptr<FairGate> fair_;
  std::uint64_t requests_ = 0;
};

/// Round-trip RPC: request payload to the server, serialized processing,
/// response payload back.
inline sim::Task<> rpc(Fabric& fabric, ServiceQueue& service, NodeId client,
                       NodeId server, std::uint64_t request_bytes,
                       std::uint64_t response_bytes) {
  co_await fabric.transfer(client, server, request_bytes);
  co_await service.process();
  co_await fabric.transfer(server, client, response_bytes);
}

}  // namespace blobcr::net
