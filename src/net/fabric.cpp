#include "net/fabric.h"

namespace blobcr::net {

Fabric::Fabric(sim::Simulation& sim, const Config& cfg)
    : sim_(&sim),
      cfg_(cfg),
      ports_tx_(cfg.node_count),
      ports_rx_(cfg.node_count) {}

sim::Task<> Fabric::transfer(NodeId src, NodeId dst, std::uint64_t bytes) {
  co_await transfer(src, dst, bytes, Shape{});
}

sim::Task<> Fabric::transfer(NodeId src, NodeId dst, std::uint64_t bytes,
                             Shape shape) {
  assert(src < ports_tx_.size() && dst < ports_rx_.size());
  co_await sim_->delay(shape.latency > 0 ? shape.latency : cfg_.latency);
  if (src == dst || bytes == 0) co_return;  // loopback: memory copy, no NIC
  total_bytes_ += bytes;
  co_await FlowAwaiter(*this, src, dst, bytes, shape.rate_cap_bps);
}

sim::Task<> Fabric::message(NodeId src, NodeId dst) {
  // Control messages are latency-bound on GbE; payload is negligible.
  co_await transfer(src, dst, 0);
}

double Fabric::FlowAwaiter::fair_rate() const {
  const double tx_share = fab_->cfg_.nic_bandwidth_bps /
                          static_cast<double>(fab_->ports_tx_[src_].flows.size());
  const double rx_share = fab_->cfg_.nic_bandwidth_bps /
                          static_cast<double>(fab_->ports_rx_[dst_].flows.size());
  const double share = tx_share < rx_share ? tx_share : rx_share;
  return (rate_cap_ > 0 && rate_cap_ < share) ? rate_cap_ : share;
}

void Fabric::settle_and_retime(FlowAwaiter* f) {
  const sim::Time now = sim_->now();
  const sim::Duration dt = now - f->last_update_;
  if (dt > 0) {
    f->remaining_ -= f->rate_ * sim::to_seconds(dt);
    if (f->remaining_ < 0) f->remaining_ = 0;
  }
  f->last_update_ = now;
  f->rate_ = f->fair_rate();
  f->done_ev_.cancel();
  const sim::Duration eta = sim::transfer_time(
      static_cast<std::uint64_t>(f->remaining_ + 0.5), f->rate_);
  f->done_ev_ = sim_->call_in(eta, [f] { f->complete(); });
}

void Fabric::on_ports_changed(Port& a, Port& b) {
  // A flow may appear in both ports; the generation stamp dedupes it.
  ++retime_gen_;
  for (FlowAwaiter* f : a.flows) {
    f->retime_gen_ = retime_gen_;
    settle_and_retime(f);
  }
  for (FlowAwaiter* f : b.flows) {
    if (f->retime_gen_ == retime_gen_) continue;
    settle_and_retime(f);
  }
}

void Fabric::FlowAwaiter::await_suspend(std::coroutine_handle<> h) {
  proc_ = fab_->sim_->current_process();
  assert(proc_ != nullptr && "network transfer outside a process");
  h_ = h;
  proc_->set_blocker(this);
  last_update_ = fab_->sim_->now();
  Port& tx = fab_->ports_tx_[src_];
  Port& rx = fab_->ports_rx_[dst_];
  tx_it_ = tx.flows.insert(tx.flows.end(), this);
  rx_it_ = rx.flows.insert(rx.flows.end(), this);
  ++fab_->active_flows_;
  fab_->on_ports_changed(tx, rx);
}

void Fabric::FlowAwaiter::complete() {
  Fabric* fab = fab_;
  Port& tx = fab->ports_tx_[src_];
  Port& rx = fab->ports_rx_[dst_];
  tx.flows.erase(tx_it_);
  rx.flows.erase(rx_it_);
  --fab->active_flows_;
  sim::Process* p = proc_;
  std::coroutine_handle<> h = h_;
  p->clear_blocker(this);
  fab->on_ports_changed(tx, rx);
  p->resume_leaf(h);  // may destroy `this`
}

void Fabric::FlowAwaiter::cancel() noexcept {
  Port& tx = fab_->ports_tx_[src_];
  Port& rx = fab_->ports_rx_[dst_];
  tx.flows.erase(tx_it_);
  rx.flows.erase(rx_it_);
  --fab_->active_flows_;
  done_ev_.cancel();
  fab_->on_ports_changed(tx, rx);
}

}  // namespace blobcr::net
