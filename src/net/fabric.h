// Fabric: the cluster interconnect. Star topology of nodes behind an ideal
// switch; each node has full-duplex NIC ports (tx and rx) of equal capacity.
//
// Flow model: a transfer src->dst is a fluid flow crossing src's tx port and
// dst's rx port; its instantaneous rate is min(tx_cap / tx_flows,
// rx_cap / rx_flows). Rates are recomputed only for flows touching a port
// whose flow count changed. This count-based fair share reproduces the
// first-order contention behaviour of TCP on a non-blocking GbE switch (the
// paper's testbed) at event-queue cost O(flows per port) per flow change.
#pragma once

#include <cassert>
#include <cstdint>
#include <list>
#include <string>
#include <vector>

#include "sim/sim.h"

namespace blobcr::net {

using NodeId = std::uint32_t;

class Fabric {
 public:
  struct Config {
    std::size_t node_count = 0;
    double nic_bandwidth_bps = 117.5e6;     // paper: measured GbE TCP rate
    sim::Duration latency = 100 * sim::kMicrosecond;  // paper: ~0.1 ms
  };

  Fabric(sim::Simulation& sim, const Config& cfg);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Per-transfer shaping: lets a traffic class run with its own one-way
  /// latency and an application-level rate cap on top of the NIC fair
  /// share. The restart data plane uses this to model intra-deployment
  /// peer copies distinctly from repository transfers.
  struct Shape {
    /// Overrides the fabric's default one-way latency when non-zero.
    sim::Duration latency = 0;
    /// Caps this flow's instantaneous rate (bps); 0 = NIC-limited only.
    double rate_cap_bps = 0;
  };

  /// Moves `bytes` from src to dst: one-way latency plus fluid bandwidth
  /// share. Loopback (src == dst) pays latency only.
  sim::Task<> transfer(NodeId src, NodeId dst, std::uint64_t bytes);

  /// Shaped variant: same fluid model, but the flow pays `shape.latency`
  /// (when set) and never exceeds `shape.rate_cap_bps` (when set) even if
  /// its NIC fair share is larger.
  sim::Task<> transfer(NodeId src, NodeId dst, std::uint64_t bytes,
                       Shape shape);

  /// Small control message (latency + negligible payload).
  sim::Task<> message(NodeId src, NodeId dst);

  sim::Duration latency() const { return cfg_.latency; }
  std::size_t node_count() const { return ports_tx_.size(); }
  std::uint64_t total_bytes() const { return total_bytes_; }
  std::size_t active_flows() const { return active_flows_; }

 private:
  class FlowAwaiter;
  friend class FlowAwaiter;

  struct Port {
    std::list<FlowAwaiter*> flows;
  };

  void on_ports_changed(Port& a, Port& b);
  void settle_and_retime(FlowAwaiter* f);

  sim::Simulation* sim_;
  Config cfg_;
  std::vector<Port> ports_tx_;
  std::vector<Port> ports_rx_;
  std::uint64_t total_bytes_ = 0;
  std::size_t active_flows_ = 0;
  std::uint64_t retime_gen_ = 0;
};

class Fabric::FlowAwaiter : public sim::Blocker {
 public:
  FlowAwaiter(Fabric& f, NodeId src, NodeId dst, std::uint64_t bytes,
              double rate_cap_bps = 0)
      : fab_(&f),
        src_(src),
        dst_(dst),
        remaining_(static_cast<double>(bytes)),
        bytes_(bytes),
        rate_cap_(rate_cap_bps) {}

  bool await_ready() const noexcept { return bytes_ == 0; }
  void await_suspend(std::coroutine_handle<> h);
  void await_resume() const noexcept {}
  void cancel() noexcept override;

 private:
  friend class Fabric;

  void complete();
  double fair_rate() const;

  Fabric* fab_;
  NodeId src_;
  NodeId dst_;
  double remaining_;
  std::uint64_t bytes_;
  double rate_cap_ = 0;  // 0 = uncapped
  double rate_ = 0;
  std::uint64_t retime_gen_ = 0;
  sim::Time last_update_ = 0;
  sim::Process* proc_ = nullptr;
  std::coroutine_handle<> h_{};
  std::list<FlowAwaiter*>::iterator tx_it_{};
  std::list<FlowAwaiter*>::iterator rx_it_{};
  sim::TimerHandle done_ev_;
};

}  // namespace blobcr::net
