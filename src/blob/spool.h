// SpooledCommitReader: the local-disk read policy shared by the synchronous
// COMMIT path (MirrorDevice) and the asynchronous drain (FlushAgent).
//
// Chunks are pulled inside the store's window-limited pipeline, but the
// FUSE-style mirroring module scans its modification log sequentially — so
// reads are spooled with 4 MiB readahead to keep the local disk near
// streaming rate instead of seeking per 256 KiB chunk. The spool reserves
// a range before awaiting the disk, so concurrent window slots never issue
// overlapping reads; their data is already streaming.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>

#include "blob/client.h"
#include "common/buffer.h"
#include "common/rangeset.h"
#include "sim/task.h"
#include "storage/disk.h"

namespace blobcr::blob {

class SpooledCommitReader {
 public:
  /// Serves the actual payload bytes once the disk time is charged (e.g.
  /// a slice of the mirroring module's cache or of a frozen staging
  /// generation). Synchronous: data structures only, no simulated cost.
  using ContentFn =
      std::function<common::Buffer(std::uint64_t offset, std::uint64_t len)>;

  /// `ranges` are the commit's chunk-rounded extents; both `ranges` and the
  /// reader itself must outlive the write_extents_via call.
  SpooledCommitReader(storage::Disk& disk, std::uint64_t stream,
                      const common::RangeSet* ranges, ContentFn content)
      : disk_(&disk),
        stream_(stream),
        ranges_(ranges),
        content_(std::move(content)),
        reader_([this](std::uint64_t offset, std::uint64_t length) {
          return read(offset, length);
        }) {}

  SpooledCommitReader(const SpooledCommitReader&) = delete;
  SpooledCommitReader& operator=(const SpooledCommitReader&) = delete;

  BlobClient::ExtentReader* reader() { return &reader_; }

 private:
  static constexpr std::uint64_t kReadahead = 4 * 1024 * 1024;

  sim::Task<common::Buffer> read(std::uint64_t offset, std::uint64_t length) {
    if (!done_.contains(offset, offset + length)) {
      // Spool forward within the commit range containing this chunk.
      std::uint64_t spool_end = offset + length;
      for (const common::Range& full : ranges_->to_vector()) {
        if (full.begin <= offset && offset < full.end) {
          spool_end =
              std::max(spool_end, std::min(full.end, offset + kReadahead));
          break;
        }
      }
      done_.insert(offset, spool_end);
      co_await disk_->read(stream_, offset, spool_end - offset);
    }
    co_return content_(offset, length);
  }

  storage::Disk* disk_;
  std::uint64_t stream_;
  const common::RangeSet* ranges_;
  ContentFn content_;
  common::RangeSet done_;
  BlobClient::ExtentReader reader_;
};

}  // namespace blobcr::blob
