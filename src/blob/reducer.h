// CommitReducer: the store-side seam for the snapshot data-reduction
// subsystem (src/reduce/). BlobClient::write_extents_via consults it per
// chunk before placement: a chunk can be suppressed (all zeros), resolved to
// an already-stored chunk (content-addressed dedup) or transformed
// (compression) before it ships. The concrete pipeline lives in
// reduce::Reducer; keeping only this interface in the blob layer avoids a
// blob -> reduce dependency cycle.
#pragma once

#include <cstdint>
#include <vector>

#include "blob/types.h"
#include "common/buffer.h"
#include "sim/task.h"

namespace blobcr::blob {

/// The reduction verdict for one chunk-sized commit payload.
struct ReducedChunk {
  enum class Kind {
    Store,  // ship `payload` (possibly transformed) as a new chunk
    Ref,    // reference the existing chunk at `ref`; nothing ships
    Zero,   // metadata-only hole; nothing ships or stores
  };
  Kind kind = Kind::Store;
  common::Buffer payload;  // Store: the bytes to place and ship
  ChunkEncoding encoding = ChunkEncoding::Raw;  // Store: payload encoding
  ChunkLocation ref;       // Ref: existing location (copied into the leaf)
  std::uint64_t digest = 0;      // content digest of the raw payload
  bool index_on_commit = false;  // record digest -> location once stored
};

class CommitReducer {
 public:
  virtual ~CommitReducer() = default;

  /// Reduces one raw chunk payload (called inside the commit window, so
  /// simulated digest/compression cost overlaps across chunks).
  virtual sim::Task<ReducedChunk> reduce(net::NodeId node,
                                         std::uint64_t offset,
                                         common::Buffer payload) = 0;

  /// A Store chunk reached all replicas at `loc`; safe to dedup against.
  virtual void committed(std::uint64_t digest, const ChunkLocation& loc) = 0;

  /// Byte accounting from the client: a genuinely stored chunk
  /// (stored_size == what shipped) or an intra-commit dedup alias
  /// (stored_size == 0, raw bytes saved).
  virtual void account_stored(std::uint32_t raw_size,
                              std::uint32_t stored_size) = 0;
  virtual void account_aliased(std::uint32_t raw_size) = 0;

  /// A dedup Ref pins its chunk inside reduce() (the reference is invisible
  /// to the GC until the version publishes); the committing client releases
  /// all of a commit's pins once the commit has published or failed.
  virtual void release_refs(const std::vector<ChunkId>& ids) { (void)ids; }

  /// A failed commit withdraws the chunks it had announced via committed():
  /// its version never published, so no tree references them, and leaving
  /// them indexed would hand out dedup Refs to orphans the GC can never
  /// reclaim.
  virtual void forget_indexed(const std::vector<ChunkId>& ids) { (void)ids; }
};

}  // namespace blobcr::blob
