// BlobClient: per-node access library for the BlobSeer-style store.
//
// WRITE builds new chunks (load-balanced placement from the provider
// manager, window-limited parallel stores), then path-copies the metadata
// segment tree (shadowing: all untouched subtrees are shared with the
// previous version) and publishes a new version.
//
// READ descends the tree level-by-level with per-provider batched node
// fetches, then pulls chunks from replicas (rotating, with fail-over).
//
// Immutable tree nodes are cached per client, so repeated commits and warm
// reads cost few metadata round-trips.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "blob/reducer.h"
#include "blob/store.h"
#include "blob/types.h"
#include "common/buffer.h"

namespace blobcr::blob {

/// Commit pipeline stage boundaries, in order. Staged is fired by the
/// asynchronous flush agent once a commit's payload is frozen locally; the
/// client fires the middle three as the commit moves reduce -> store ->
/// publish; ParityEncode is fired by the flush agent again after publish,
/// just before the drained chunks fold into the peer parity tier
/// (redundancy::Manager) — a kill there leaves a published-but-unprotected
/// version, never a torn one.
enum class CommitStage {
  Staged,
  Reducing,
  Putting,
  PrePublish,
  PostPublish,
  ParityEncode,
  /// Fired by the flush agent after ParityEncode, just before the drained
  /// chunks replicate asynchronously to sibling zones (federation::Fabric).
  /// A kill there leaves a published-but-unreplicated version.
  Replicate,
};

const char* commit_stage_name(CommitStage s);

/// Awaited at each stage boundary when installed. Crash-consistency tests
/// suspend inside the probe, so a fail-stop kill lands exactly on the
/// boundary under test.
using CommitProbe = std::function<sim::Task<>(CommitStage)>;

/// Extended knobs for write_extents_via (the plain overload covers the
/// common synchronous cases).
struct CommitOptions {
  CommitReducer* reducer = nullptr;
  /// Non-zero: publish into this reserved version slot (asynchronous drains
  /// reserve at stage time so snapshot numbering reflects capture order).
  VersionId reserved_version = 0;
  /// Stage-boundary hook; must outlive the commit. nullptr = no probing.
  CommitProbe* probe = nullptr;
};

class BlobClient {
 public:
  BlobClient(BlobStore& store, net::NodeId node)
      : store_(&store), node_(node) {}

  net::NodeId node() const { return node_; }

  /// Tags this client's repository requests with a tenant identity: shared
  /// service queues dispatch (and account) per tenant, and the commit gate
  /// admits per tenant. Default-tenant clients need no registration.
  void set_tenant(net::TenantId tenant) { tenant_ = tenant; }
  net::TenantId tenant() const { return tenant_; }

  sim::Task<BlobId> create(std::uint64_t chunk_size = 0);
  sim::Task<BlobId> clone(BlobId src, VersionId v);
  sim::Task<BlobMeta> stat(BlobId blob);

  /// Named-blob registry on the version manager: well-known control-plane
  /// entry points (the checkpoint catalog) publish their blob id under a
  /// name so a fresh driver can discover them. lookup_name returns 0 for
  /// an unbound name.
  sim::Task<> bind_name(const std::string& name, BlobId id);
  sim::Task<BlobId> lookup_name(const std::string& name);

  /// Writes one extent as a new version. Offset must be chunk-aligned.
  sim::Task<VersionId> write(BlobId blob, std::uint64_t offset,
                             common::Buffer data);

  /// COMMIT primitive: all extents become ONE new version (one snapshot).
  /// Extents must be chunk-aligned and non-overlapping.
  sim::Task<VersionId> write_extents(BlobId blob, std::vector<Extent> extents);

  /// A chunk-aligned extent whose payload is produced on demand.
  struct ExtentSpec {
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
  };
  using ExtentReader =
      std::function<sim::Task<common::Buffer>(std::uint64_t offset,
                                              std::uint64_t length)>;

  /// Streaming COMMIT: like write_extents, but each chunk's payload is
  /// pulled through `reader` inside the window-limited store pipeline, so
  /// producing the data (e.g. reading the mirroring module's local cache
  /// from disk) overlaps with shipping it to the providers. The caller owns
  /// `reader` and must keep it alive until this task completes.
  ///
  /// With a `reducer`, every chunk runs through the reduction pipeline
  /// first: all-zero chunks become metadata-only holes, content already in
  /// the repository (other ranks, previous versions, or earlier in this
  /// commit) is referenced instead of re-stored, and remaining payloads may
  /// be compressed. The published version's new_chunk_bytes then reflects
  /// what actually shipped.
  sim::Task<VersionId> write_extents_via(BlobId blob,
                                         std::vector<ExtentSpec> extents,
                                         ExtentReader* reader,
                                         CommitReducer* reducer = nullptr);

  /// Full-control COMMIT: reduction, a reserved (provisional) version slot
  /// and stage-boundary probes. The asynchronous drain path of
  /// flush::FlushAgent commits through this overload.
  sim::Task<VersionId> write_extents_via(BlobId blob,
                                         std::vector<ExtentSpec> extents,
                                         ExtentReader* reader,
                                         CommitOptions opts);

  /// Reads [offset, offset+len) of a version. Unwritten holes read as zeros.
  sim::Task<common::Buffer> read(BlobId blob, VersionId version,
                                 std::uint64_t offset, std::uint64_t len);

  /// Metadata-only COMMIT of verbatim leaves into `blob` (federation zone
  /// failover: a surviving zone adopts a dead zone's version by rebuilding
  /// the tree over the dead store's leaf tuples — locations kept verbatim,
  /// zone ids included, so fetches resolve through the federation's nearest-
  /// zone path). No chunk payloads move; only tree nodes are put and a
  /// version published. `leaves` maps chunk index -> location.
  sim::Task<VersionId> adopt_leaves(
      BlobId blob, std::uint64_t logical_size,
      const std::vector<std::pair<std::uint64_t, ChunkLocation>>& leaves);

  /// One resolved leaf of a version: chunk index plus the stored location
  /// (ChunkId, content digest, encoding, replicas). The restart data plane
  /// works on these identity tuples instead of opaque byte ranges.
  struct ChunkRef {
    std::uint64_t index = 0;  // chunk index within the blob
    ChunkLocation loc;
  };

  /// Resolves the chunk-aligned window covering [offset, offset+len) to its
  /// leaf tuples, warming the metadata cache along the way. Holes (never
  /// written, or beyond the logical size) are simply absent from the result
  /// — they read as zeros without any chunk behind them.
  sim::Task<std::vector<ChunkRef>> resolve_chunks(BlobId blob,
                                                  VersionId version,
                                                  std::uint64_t offset,
                                                  std::uint64_t len);

  /// Fetches one stored chunk from its replicas and decodes it back to
  /// logical bytes (RLE expansion, phantom-ratio reversal). Zero-encoded
  /// locations return a zero buffer without touching the network.
  sim::Task<common::Buffer> fetch_decoded(const ChunkLocation& loc);

  /// Maps a stored (possibly reduced) chunk payload back to logical bytes.
  static common::Buffer decode_stored(const ChunkLocation& loc,
                                      common::Buffer stored);

  /// Warms this client's metadata cache for a byte range (used by restart's
  /// lazy-fetch path to avoid per-block metadata stalls).
  sim::Task<> prefetch_metadata(BlobId blob, VersionId version,
                                std::uint64_t offset, std::uint64_t len);

  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t bytes_read() const { return bytes_read_; }
  std::size_t cached_nodes() const { return node_cache_.size(); }
  /// Raw vs. actually-shipped payload of the most recent commit (equal when
  /// no reducer ran; shipped excludes replication).
  std::uint64_t last_commit_raw_bytes() const { return last_commit_raw_; }
  std::uint64_t last_commit_stored_bytes() const { return last_commit_stored_; }
  /// Chunk size of `blob` when this client has already resolved it (the
  /// create/commit/read paths all cache it); 0 for an unseen blob.
  std::uint64_t known_chunk_size(BlobId blob) const {
    const auto it = chunk_size_cache_.find(blob);
    return it == chunk_size_cache_.end() ? 0 : it->second;
  }

 private:
  struct VersionKey {
    BlobId blob;
    VersionId version;
    bool operator==(const VersionKey&) const = default;
  };
  struct VersionKeyHash {
    std::size_t operator()(const VersionKey& k) const {
      return static_cast<std::size_t>(
          common::mix64(k.blob * 1000003ULL + k.version));
    }
  };
  struct VersionEntry {
    NodeRef root = 0;
    std::uint64_t size = 0;
    std::uint64_t chunk_size = 0;
  };

  /// Resolves (blob, version) to root/size/chunk_size, consulting the
  /// version manager once per unseen version. version==0 means latest (never
  /// cached).
  sim::Task<VersionEntry> resolve(BlobId blob, VersionId& version);

  /// Level-order descent over [lo_chunk, hi_chunk), fetching uncached nodes
  /// in per-provider batches. Collects leaves into `leaves` when non-null.
  sim::Task<> descend(NodeRef root, std::uint64_t capacity,
                      std::uint64_t lo_chunk, std::uint64_t hi_chunk,
                      std::vector<std::pair<std::uint64_t, ChunkLocation>>*
                          leaves);

  /// Path-copy rebuild. Pure (uses only the warmed cache); new nodes are
  /// appended to `out` and cached.
  NodeRef build(NodeRef old_ref, std::uint64_t lo, std::uint64_t hi,
                const std::vector<std::pair<std::uint64_t, ChunkLocation>>&
                    writes,
                std::vector<std::pair<NodeRef, TreeNode>>& out);

  sim::Task<common::Buffer> fetch_chunk(const ChunkLocation& loc);

  std::uint64_t capacity_chunks() const {
    return 1ULL << store_->config().tree_depth;
  }

  BlobStore* store_;
  net::NodeId node_;
  net::TenantId tenant_ = net::kDefaultTenant;
  std::unordered_map<NodeRef, TreeNode> node_cache_;
  std::unordered_map<VersionKey, VersionEntry, VersionKeyHash> version_cache_;
  std::unordered_map<BlobId, std::uint64_t> chunk_size_cache_;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t last_commit_raw_ = 0;
  std::uint64_t last_commit_stored_ = 0;
};

}  // namespace blobcr::blob
