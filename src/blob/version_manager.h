// VersionManager: the serialization point of the store. Assigns version
// numbers, records version -> (tree root, size) mappings and the blob
// registry, and implements CLONE (a new blob whose first version shares the
// source root — zero data copied).
//
// The manager is hash-sharded (BlobStore::Config::version_shards): the
// version-slot table partitions by blob-id hash and the named-blob registry
// by name hash, each shard serving requests through its own 1-worker queue
// (its lock). Commits against different blobs no longer serialize on one
// daemon; a shard's queue is still a strict serialization point for the
// blobs it owns, which is what publish-ordering correctness needs. Shard
// count 1 is byte-for-byte the pre-sharding single-daemon behavior.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "blob/types.h"
#include "common/rng.h"
#include "net/fabric.h"
#include "net/service.h"
#include "sim/sim.h"

namespace blobcr::blob {

class VersionManager {
 public:
  VersionManager(sim::Simulation& sim, net::Fabric& fabric, net::NodeId node,
                 sim::Duration per_request_cost = 100 * sim::kMicrosecond,
                 std::size_t shards = 1)
      : sim_(&sim), fabric_(&fabric), node_(node) {
    const std::size_t count = shards < 1 ? 1 : shards;
    shards_.reserve(count);
    for (std::size_t s = 0; s < count; ++s) {
      shards_.push_back(std::make_unique<Shard>(
          sim, "version-manager-" + std::to_string(s), per_request_cost));
    }
  }

  net::NodeId node() const { return node_; }
  std::size_t shard_count() const { return shards_.size(); }

  /// Re-bases the blob-id allocator (federation: each zone's manager issues
  /// ids from a disjoint range, so the owning zone of any blob id is a pure
  /// decode). Call before the first create().
  void seed_blob_ids(BlobId base) { next_blob_id_ = base; }

  /// Flips every shard's request queue to weighted-fair dispatch
  /// (BlobStore calls this when multi-tenant QoS is on).
  void enable_fair(const net::TenantRegistry* registry) {
    for (auto& s : shards_) s->service.enable_fair(registry);
  }
  /// Total time `tenant`'s requests spent queued across all shard queues.
  sim::Duration tenant_wait(net::TenantId tenant) const {
    sim::Duration total = 0;
    for (const auto& s : shards_) total += s->service.tenant_wait(tenant);
    return total;
  }
  /// One shard's request queue (tests; per-shard load assertions).
  net::ServiceQueue& shard_service(std::size_t shard) {
    return shards_[shard]->service;
  }
  std::uint64_t shard_requests(std::size_t shard) const {
    return shards_[shard]->service.requests_served();
  }

  sim::Task<BlobId> create(net::NodeId client, std::uint64_t chunk_size,
                           net::TenantId tenant = net::kDefaultTenant) {
    // The id is allocated at request time so the create can be served by
    // the owning shard's queue (ids are opaque handles; only the registry
    // insert below needs the shard's serialization).
    const BlobId id = next_blob_id_++;
    co_await round_trip(client, tenant, shard_for_blob(id));
    BlobMeta meta;
    meta.id = id;
    meta.chunk_size = chunk_size;
    shard_for(id).blobs[id] = std::move(meta);
    co_return id;
  }

  /// CLONE: a standalone blob sharing all content with (src, v). Served by
  /// the new blob's shard; the source (possibly another shard's blob) is
  /// read with an in-process peek — it must already be published, so the
  /// read races no writer.
  sim::Task<BlobId> clone(net::NodeId client, BlobId src, VersionId v,
                          net::TenantId tenant = net::kDefaultTenant) {
    const BlobId id = next_blob_id_++;
    co_await round_trip(client, tenant, shard_for_blob(id));
    const BlobMeta& source = lookup(src);
    const VersionInfo& sv = source.version(v);
    if (sv.pending) throw BlobError("cannot clone a version not yet published");
    BlobMeta meta;
    meta.id = id;
    meta.chunk_size = source.chunk_size;
    meta.cloned_from = src;
    meta.cloned_version = v;
    VersionInfo v1;
    v1.id = 1;
    v1.root = sv.root;
    v1.size = sv.size;
    v1.created = sim_->now();
    meta.versions.push_back(v1);
    shard_for(id).blobs[id] = std::move(meta);
    co_return id;
  }

  /// Reserves the next version slot of `blob` for a deferred (asynchronous)
  /// publish. The slot is recorded as pending — invisible to readers and to
  /// latest() — until publish() fills it, so snapshot numbering stays dense
  /// and reflects stage order even when drains complete later.
  sim::Task<VersionId> reserve(net::NodeId client, BlobId blob,
                               net::TenantId tenant = net::kDefaultTenant) {
    co_await round_trip(client, tenant, shard_for_blob(blob));
    BlobMeta& meta = lookup(blob);
    VersionInfo v;
    v.id = static_cast<VersionId>(meta.versions.size() + 1);
    v.pending = true;
    v.created = sim_->now();
    meta.versions.push_back(v);
    co_return v.id;
  }

  /// Publishes a new version (shadowed snapshot). Serialized per shard —
  /// every version of one blob goes through one queue. With `reserved`
  /// non-zero the version fills that pending slot (taken via reserve())
  /// instead of appending a new one.
  sim::Task<VersionId> publish(net::NodeId client, BlobId blob, NodeRef root,
                               std::uint64_t size, std::uint64_t new_chunk_bytes,
                               std::uint64_t new_meta_bytes,
                               VersionId reserved = 0,
                               net::TenantId tenant = net::kDefaultTenant) {
    co_await round_trip(client, tenant, shard_for_blob(blob));
    BlobMeta& meta = lookup(blob);
    if (reserved != 0) {
      if (reserved > meta.versions.size())
        throw BlobError("publish into unknown reserved version");
      VersionInfo& slot = meta.versions[reserved - 1];
      if (!slot.pending)
        throw BlobError("publish into a non-pending version slot");
      slot.root = root;
      slot.size = size;
      slot.new_chunk_bytes = new_chunk_bytes;
      slot.new_meta_bytes = new_meta_bytes;
      slot.created = sim_->now();
      slot.pending = false;
      co_return reserved;
    }
    VersionInfo v;
    v.id = static_cast<VersionId>(meta.versions.size() + 1);
    v.root = root;
    v.size = size;
    v.new_chunk_bytes = new_chunk_bytes;
    v.new_meta_bytes = new_meta_bytes;
    v.created = sim_->now();
    meta.versions.push_back(v);
    co_return v.id;
  }

  sim::Task<BlobMeta> stat(net::NodeId client, BlobId blob,
                           net::TenantId tenant = net::kDefaultTenant) {
    co_await round_trip(client, tenant, shard_for_blob(blob));
    co_return lookup(blob);
  }

  /// Named-blob registry: the control plane's well-known entry points (e.g.
  /// the checkpoint catalog) bind a name to a blob id so a fresh client —
  /// a new driver process after total loss — can discover repository-
  /// resident state it never created. Last bind wins; names are never
  /// implicitly unbound. Sharded by name hash, independently of where the
  /// target blob's version slots live.
  sim::Task<> bind_name(net::NodeId client, const std::string& name,
                        BlobId id,
                        net::TenantId tenant = net::kDefaultTenant) {
    co_await round_trip(client, tenant, shard_for_name(name));
    if (!exists(id)) throw BlobError("bind_name to unknown blob");
    shards_[shard_for_name(name)]->names[name] = id;
  }

  /// Resolves a bound name; 0 when the name was never bound.
  sim::Task<BlobId> lookup_name(net::NodeId client, const std::string& name,
                                net::TenantId tenant = net::kDefaultTenant) {
    co_await round_trip(client, tenant, shard_for_name(name));
    co_return peek_name(name);
  }

  /// In-process peek at the registry (tests, bookkeeping).
  BlobId peek_name(const std::string& name) const {
    const auto& names = shards_[shard_for_name(name)]->names;
    const auto it = names.find(name);
    return it == names.end() ? 0 : it->second;
  }

  /// Zero-cost accessors for in-process bookkeeping (benchmark harness,
  /// garbage collector) — not part of the simulated client protocol.
  const BlobMeta& peek(BlobId blob) const {
    const auto& blobs = shards_[shard_for_blob(blob)]->blobs;
    const auto it = blobs.find(blob);
    if (it == blobs.end()) throw BlobError("unknown blob");
    return it->second;
  }
  bool exists(BlobId blob) const {
    const auto& blobs = shards_[shard_for_blob(blob)]->blobs;
    return blobs.find(blob) != blobs.end();
  }
  /// Visits every registered blob (replaces the pre-sharding all() map: the
  /// registry no longer lives in one container).
  void for_each_blob(const std::function<void(const BlobMeta&)>& fn) const {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      for_each_blob_in_shard(s, fn);
    }
  }
  /// Visits one shard's blobs — the concurrent GC's incremental mark walks
  /// shard by shard, yielding in between, instead of one full-store pass.
  void for_each_blob_in_shard(
      std::size_t shard, const std::function<void(const BlobMeta&)>& fn) const {
    for (const auto& [id, meta] : shards_[shard]->blobs) fn(meta);
  }
  std::uint64_t requests_served() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s->service.requests_served();
    return total;
  }

  /// Removes version records < keep_from for a blob (GC support; chunk
  /// reclamation is handled by the garbage collector which walks trees).
  void drop_version_records(BlobId blob, VersionId keep_from) {
    BlobMeta& meta = lookup(blob);
    for (VersionId v = 1; v < keep_from && v <= meta.versions.size(); ++v) {
      meta.versions[v - 1].root = 0;  // tombstone
    }
  }

 private:
  struct Shard {
    Shard(sim::Simulation& sim, std::string name, sim::Duration cost)
        : service(sim, std::move(name), cost) {}
    net::ServiceQueue service;
    std::unordered_map<BlobId, BlobMeta> blobs;
    std::unordered_map<std::string, BlobId> names;
  };

  std::size_t shard_for_blob(BlobId blob) const {
    return static_cast<std::size_t>(common::mix64(blob)) % shards_.size();
  }
  std::size_t shard_for_name(const std::string& name) const {
    return static_cast<std::size_t>(
               common::mix64(std::hash<std::string>{}(name))) %
           shards_.size();
  }
  Shard& shard_for(BlobId blob) { return *shards_[shard_for_blob(blob)]; }

  BlobMeta& lookup(BlobId blob) {
    auto& blobs = shard_for(blob).blobs;
    const auto it = blobs.find(blob);
    if (it == blobs.end()) throw BlobError("unknown blob");
    return it->second;
  }

  sim::Task<> round_trip(net::NodeId client, net::TenantId tenant,
                         std::size_t shard) {
    co_await fabric_->message(client, node_);
    co_await shards_[shard]->service.process(tenant);
    co_await fabric_->message(node_, client);
  }

  sim::Simulation* sim_;
  net::Fabric* fabric_;
  net::NodeId node_;
  std::vector<std::unique_ptr<Shard>> shards_;
  BlobId next_blob_id_ = 1;
};

}  // namespace blobcr::blob
