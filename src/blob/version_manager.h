// VersionManager: the serialization point of the store. Assigns version
// numbers, records version -> (tree root, size) mappings and the blob
// registry, and implements CLONE (a new blob whose first version shares the
// source root — zero data copied).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "blob/types.h"
#include "net/fabric.h"
#include "net/service.h"
#include "sim/sim.h"

namespace blobcr::blob {

class VersionManager {
 public:
  VersionManager(sim::Simulation& sim, net::Fabric& fabric, net::NodeId node,
                 sim::Duration per_request_cost = 100 * sim::kMicrosecond)
      : sim_(&sim), fabric_(&fabric), node_(node),
        service_(sim, "version-manager", per_request_cost) {}

  net::NodeId node() const { return node_; }
  /// The manager's request queue (BlobStore flips it to weighted-fair
  /// dispatch when multi-tenant QoS is on).
  net::ServiceQueue& service() { return service_; }
  const net::ServiceQueue& service() const { return service_; }

  sim::Task<BlobId> create(net::NodeId client, std::uint64_t chunk_size,
                           net::TenantId tenant = net::kDefaultTenant) {
    co_await round_trip(client, tenant);
    const BlobId id = next_blob_id_++;
    BlobMeta meta;
    meta.id = id;
    meta.chunk_size = chunk_size;
    blobs_[id] = std::move(meta);
    co_return id;
  }

  /// CLONE: a standalone blob sharing all content with (src, v).
  sim::Task<BlobId> clone(net::NodeId client, BlobId src, VersionId v,
                          net::TenantId tenant = net::kDefaultTenant) {
    co_await round_trip(client, tenant);
    const BlobMeta& source = lookup(src);
    const VersionInfo& sv = source.version(v);
    if (sv.pending) throw BlobError("cannot clone a version not yet published");
    const BlobId id = next_blob_id_++;
    BlobMeta meta;
    meta.id = id;
    meta.chunk_size = source.chunk_size;
    meta.cloned_from = src;
    meta.cloned_version = v;
    VersionInfo v1;
    v1.id = 1;
    v1.root = sv.root;
    v1.size = sv.size;
    v1.created = sim_->now();
    meta.versions.push_back(v1);
    blobs_[id] = std::move(meta);
    co_return id;
  }

  /// Reserves the next version slot of `blob` for a deferred (asynchronous)
  /// publish. The slot is recorded as pending — invisible to readers and to
  /// latest() — until publish() fills it, so snapshot numbering stays dense
  /// and reflects stage order even when drains complete later.
  sim::Task<VersionId> reserve(net::NodeId client, BlobId blob,
                               net::TenantId tenant = net::kDefaultTenant) {
    co_await round_trip(client, tenant);
    BlobMeta& meta = lookup(blob);
    VersionInfo v;
    v.id = static_cast<VersionId>(meta.versions.size() + 1);
    v.pending = true;
    v.created = sim_->now();
    meta.versions.push_back(v);
    co_return v.id;
  }

  /// Publishes a new version (shadowed snapshot). Serialized per store.
  /// With `reserved` non-zero the version fills that pending slot (taken
  /// via reserve()) instead of appending a new one.
  sim::Task<VersionId> publish(net::NodeId client, BlobId blob, NodeRef root,
                               std::uint64_t size, std::uint64_t new_chunk_bytes,
                               std::uint64_t new_meta_bytes,
                               VersionId reserved = 0,
                               net::TenantId tenant = net::kDefaultTenant) {
    co_await round_trip(client, tenant);
    BlobMeta& meta = lookup(blob);
    if (reserved != 0) {
      if (reserved > meta.versions.size())
        throw BlobError("publish into unknown reserved version");
      VersionInfo& slot = meta.versions[reserved - 1];
      if (!slot.pending)
        throw BlobError("publish into a non-pending version slot");
      slot.root = root;
      slot.size = size;
      slot.new_chunk_bytes = new_chunk_bytes;
      slot.new_meta_bytes = new_meta_bytes;
      slot.created = sim_->now();
      slot.pending = false;
      co_return reserved;
    }
    VersionInfo v;
    v.id = static_cast<VersionId>(meta.versions.size() + 1);
    v.root = root;
    v.size = size;
    v.new_chunk_bytes = new_chunk_bytes;
    v.new_meta_bytes = new_meta_bytes;
    v.created = sim_->now();
    meta.versions.push_back(v);
    co_return v.id;
  }

  sim::Task<BlobMeta> stat(net::NodeId client, BlobId blob,
                           net::TenantId tenant = net::kDefaultTenant) {
    co_await round_trip(client, tenant);
    co_return lookup(blob);
  }

  /// Named-blob registry: the control plane's well-known entry points (e.g.
  /// the checkpoint catalog) bind a name to a blob id so a fresh client —
  /// a new driver process after total loss — can discover repository-
  /// resident state it never created. Last bind wins; names are never
  /// implicitly unbound.
  sim::Task<> bind_name(net::NodeId client, const std::string& name,
                        BlobId id,
                        net::TenantId tenant = net::kDefaultTenant) {
    co_await round_trip(client, tenant);
    if (!exists(id)) throw BlobError("bind_name to unknown blob");
    names_[name] = id;
  }

  /// Resolves a bound name; 0 when the name was never bound.
  sim::Task<BlobId> lookup_name(net::NodeId client, const std::string& name,
                                net::TenantId tenant = net::kDefaultTenant) {
    co_await round_trip(client, tenant);
    const auto it = names_.find(name);
    co_return it == names_.end() ? 0 : it->second;
  }

  /// In-process peek at the registry (tests, bookkeeping).
  BlobId peek_name(const std::string& name) const {
    const auto it = names_.find(name);
    return it == names_.end() ? 0 : it->second;
  }

  /// Zero-cost accessors for in-process bookkeeping (benchmark harness,
  /// garbage collector) — not part of the simulated client protocol.
  const BlobMeta& peek(BlobId blob) const {
    const auto it = blobs_.find(blob);
    if (it == blobs_.end()) throw BlobError("unknown blob");
    return it->second;
  }
  bool exists(BlobId blob) const { return blobs_.find(blob) != blobs_.end(); }
  const std::unordered_map<BlobId, BlobMeta>& all() const { return blobs_; }
  std::uint64_t requests_served() const { return service_.requests_served(); }

  /// Removes version records < keep_from for a blob (GC support; chunk
  /// reclamation is handled by the garbage collector which walks trees).
  void drop_version_records(BlobId blob, VersionId keep_from) {
    BlobMeta& meta = lookup(blob);
    for (VersionId v = 1; v < keep_from && v <= meta.versions.size(); ++v) {
      meta.versions[v - 1].root = 0;  // tombstone
    }
  }

 private:
  BlobMeta& lookup(BlobId blob) {
    const auto it = blobs_.find(blob);
    if (it == blobs_.end()) throw BlobError("unknown blob");
    return it->second;
  }

  sim::Task<> round_trip(net::NodeId client, net::TenantId tenant) {
    co_await fabric_->message(client, node_);
    co_await service_.process(tenant);
    co_await fabric_->message(node_, client);
  }

  sim::Simulation* sim_;
  net::Fabric* fabric_;
  net::NodeId node_;
  net::ServiceQueue service_;
  BlobId next_blob_id_ = 1;
  std::unordered_map<BlobId, BlobMeta> blobs_;
  std::unordered_map<std::string, BlobId> names_;
};

}  // namespace blobcr::blob
