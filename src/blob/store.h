// BlobStore: one deployed BlobSeer instance — a version manager, a provider
// manager, a set of metadata providers and a set of data providers spread
// over the cluster's compute nodes (paper §3.1.1: the checkpoint repository
// aggregates part of every compute node's local disk).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "blob/data_provider.h"
#include "blob/metadata.h"
#include "blob/provider_manager.h"
#include "blob/types.h"
#include "blob/version_manager.h"
#include "net/fabric.h"
#include "net/qos.h"
#include "qos/admission.h"
#include "sim/sim.h"
#include "storage/disk.h"

namespace blobcr::blob {

class BlobStore {
 public:
  struct Config {
    net::NodeId version_manager_node = 0;
    net::NodeId provider_manager_node = 0;
    std::vector<net::NodeId> metadata_nodes;
    /// (node, disk, disk stream id) per data provider.
    struct ProviderSlot {
      net::NodeId node = 0;
      storage::Disk* disk = nullptr;
      std::uint64_t disk_stream = 0;
    };
    std::vector<ProviderSlot> data_providers;

    std::uint64_t default_chunk_size = 256 * 1024;  // paper: 256 KB stripes
    std::uint32_t tree_depth = 16;  // leaves = 2^depth chunks per blob
    int replication = 1;
    std::size_t write_window = 8;  // outstanding chunk stores per client
    std::size_t read_window = 8;
    sim::Duration meta_request_cost = 30 * sim::kMicrosecond;
    sim::Duration manager_request_cost = 50 * sim::kMicrosecond;
    std::uint64_t meta_record_bytes = 64;
    /// Version-manager shards: the blob version-slot table partitions by
    /// blob-id hash, the named-blob registry by name hash, one request
    /// queue per shard. 1 (default) is the single-daemon pre-sharding
    /// behavior; the tenant-scale sweep raises it.
    std::size_t version_shards = 1;
    /// Multi-tenant admission control (see qos/admission.h). qos.enabled
    /// turns on weighted-fair ordering at the version/provider manager
    /// queues and every admission-plane gate; the per-class slot counts
    /// bound concurrently admitted commits, provider I/Os and prefetches.
    qos::Config qos;
    /// Availability zone this store belongs to (federation::Fabric). Stamped
    /// into every ChunkLocation the store's clients commit.
    std::uint32_t zone = 0;
  };

  BlobStore(sim::Simulation& sim, net::Fabric& fabric, const Config& cfg)
      : sim_(&sim), fabric_(&fabric), cfg_(cfg), plane_(sim, cfg.qos) {
    for (const auto& slot : cfg.data_providers) {
      providers_.push_back(std::make_unique<DataProvider>(
          sim, fabric, slot.node, *slot.disk, slot.disk_stream, &plane_));
      by_node_[slot.node] = providers_.back().get();
    }
    std::vector<DataProvider*> raw;
    raw.reserve(providers_.size());
    for (const auto& p : providers_) raw.push_back(p.get());

    MetadataCluster::Config mcfg;
    mcfg.nodes = cfg.metadata_nodes;
    mcfg.per_request_cost = cfg.meta_request_cost;
    mcfg.node_record_bytes = cfg.meta_record_bytes;
    metadata_ = std::make_unique<MetadataCluster>(sim, fabric, mcfg);

    provider_manager_ = std::make_unique<ProviderManager>(
        sim, fabric, cfg.provider_manager_node, std::move(raw),
        cfg.manager_request_cost);
    version_manager_ = std::make_unique<VersionManager>(
        sim, fabric, cfg.version_manager_node, cfg.manager_request_cost,
        cfg.version_shards);
    if (cfg.qos.enabled) {
      version_manager_->enable_fair(&plane_.tenants());
      provider_manager_->service().enable_fair(&plane_.tenants());
    }
  }

  const Config& config() const { return cfg_; }
  sim::Simulation& simulation() const { return *sim_; }
  net::Fabric& fabric() const { return *fabric_; }
  VersionManager& version_manager() { return *version_manager_; }
  ProviderManager& provider_manager() { return *provider_manager_; }
  MetadataCluster& metadata() { return *metadata_; }

  DataProvider* provider_at(net::NodeId node) {
    const auto it = by_node_.find(node);
    return it == by_node_.end() ? nullptr : it->second;
  }
  const std::vector<std::unique_ptr<DataProvider>>& providers() const {
    return providers_;
  }

  /// Fail-stop of a compute node takes its data provider down with it.
  void fail_node(net::NodeId node) {
    if (DataProvider* p = provider_at(node)) p->fail();
  }

  /// Aggregate stored chunk payload across live providers.
  std::uint64_t total_stored_bytes() const {
    std::uint64_t total = 0;
    for (const auto& p : providers_) total += p->stored_bytes();
    return total;
  }
  std::uint64_t total_meta_bytes() const {
    return metadata_->stored_meta_bytes();
  }

  ChunkId& chunk_id_counter() { return next_chunk_id_; }
  NodeRef& node_ref_counter() { return next_node_ref_; }

  // --- multi-tenant control plane -------------------------------------------

  /// The repository's admission plane: the tenant table plus one
  /// weighted-fair gate per admission class (commit, provider-io,
  /// restart-prefetch). Every path that touches this repository is
  /// admitted here with a tenant-tagged qos::IoContext.
  qos::AdmissionPlane& admission() { return plane_; }
  const qos::AdmissionPlane& admission() const { return plane_; }

  /// The repository-wide tenant table (identities + QoS weights). Tenant 0
  /// is the implicit default for single-job deployments.
  net::TenantRegistry& tenants() { return plane_.tenants(); }
  const net::TenantRegistry& tenants() const { return plane_.tenants(); }

  /// Per-tenant repository usage, updated by BlobClient on the commit path.
  struct TenantUsage {
    std::uint64_t commits = 0;        // published commits
    std::uint64_t raw_bytes = 0;      // pre-reduction commit payload
    std::uint64_t shipped_bytes = 0;  // post-reduction payload stored
    sim::Duration commit_wait = 0;    // admission wait at shared queues
    /// Queueing at the admission plane's data-path gates (filled by
    /// tenant_usage_snapshot from the gates' per-tenant clocks).
    sim::Duration provider_wait = 0;  // provider-io gate
    sim::Duration prefetch_wait = 0;  // restart-prefetch gate
    /// Re-replication done on this tenant's behalf (RepairService scrubs
    /// charge each restored copy to the chunk's owning tenant).
    std::uint64_t repair_copies = 0;
    std::uint64_t repair_bytes = 0;
  };
  const TenantUsage& tenant_usage(net::TenantId t) const {
    static const TenantUsage kEmpty;
    const auto it = usage_.find(t);
    return it == usage_.end() ? kEmpty : it->second;
  }
  /// Total time `t`'s requests spent queued at the shared admission points:
  /// the commit gate plus the (fair-mode) version/provider manager queues.
  sim::Duration tenant_queue_wait(net::TenantId t) const {
    return tenant_usage(t).commit_wait +
           version_manager_->tenant_wait(t) +
           provider_manager_->service().tenant_wait(t);
  }
  /// tenant_usage with commit_wait widened to the full queue wait above and
  /// the data-path gate waits filled from the admission plane — the
  /// snapshot drivers capture after provisioning and diff at job end, so
  /// reported per-job counters cover exactly that job's commits.
  TenantUsage tenant_usage_snapshot(net::TenantId t) const {
    TenantUsage u = tenant_usage(t);
    u.commit_wait = tenant_queue_wait(t);
    u.provider_wait = plane_.wait(qos::GateClass::ProviderIo, t);
    u.prefetch_wait = plane_.wait(qos::GateClass::RestartPrefetch, t);
    return u;
  }
  void account_commit_wait(net::TenantId t, sim::Duration wait) {
    usage_[t].commit_wait += wait;
  }
  void account_commit(net::TenantId t, std::uint64_t raw_bytes,
                      std::uint64_t shipped_bytes) {
    TenantUsage& u = usage_[t];
    ++u.commits;
    u.raw_bytes += raw_bytes;
    u.shipped_bytes += shipped_bytes;
  }
  void account_repair(net::TenantId t, std::uint64_t copies,
                      std::uint64_t bytes) {
    TenantUsage& u = usage_[t];
    u.repair_copies += copies;
    u.repair_bytes += bytes;
  }

  /// Per-tenant capacity ceilings, enforced at commit admission
  /// (BlobClient::write_extents_via) against the tenant_usage numbers and at
  /// catalog staging (cr::Catalog). 0 = unlimited.
  struct TenantQuota {
    std::uint64_t max_resident_bytes = 0;   // shipped (post-reduction) bytes
    std::uint64_t max_catalog_records = 0;  // staged checkpoint records
  };
  void set_tenant_quota(net::TenantId t, TenantQuota q) { quotas_[t] = q; }
  const TenantQuota& tenant_quota(net::TenantId t) const {
    static const TenantQuota kUnlimited;
    const auto it = quotas_.find(t);
    return it == quotas_.end() ? kUnlimited : it->second;
  }

  /// Chunk-reclaim observers: the reduction subsystem's digest indexes must
  /// drop entries for chunks the garbage collector deletes, otherwise a
  /// later dedup hit would reference reclaimed (lost) content. Hooks are
  /// deployment-scoped objects with shorter lifetimes than the store, hence
  /// the id-based deregistration.
  using ChunkReclaimHook = std::function<void(const std::vector<ChunkId>&)>;
  std::uint64_t add_chunk_reclaim_hook(ChunkReclaimHook hook) {
    const std::uint64_t id = ++next_hook_id_;
    reclaim_hooks_.emplace_back(id, std::move(hook));
    return id;
  }
  void remove_chunk_reclaim_hook(std::uint64_t id) {
    std::erase_if(reclaim_hooks_,
                  [id](const auto& h) { return h.first == id; });
  }
  void notify_chunks_reclaimed(const std::vector<ChunkId>& ids) {
    if (ids.empty()) return;
    for (const auto& [id, hook] : reclaim_hooks_) hook(ids);
  }

  /// Pin sources: chunks referenced by in-flight reduced commits (a dedup
  /// Ref taken before the version publishes is invisible to the GC's tree
  /// walk). The GC unions every source's pins into its live set.
  using ChunkPinSource = std::function<void(std::unordered_set<ChunkId>&)>;
  std::uint64_t add_chunk_pin_source(ChunkPinSource source) {
    const std::uint64_t id = ++next_hook_id_;
    pin_sources_.emplace_back(id, std::move(source));
    return id;
  }
  void remove_chunk_pin_source(std::uint64_t id) {
    std::erase_if(pin_sources_,
                  [id](const auto& h) { return h.first == id; });
  }
  void collect_pinned_chunks(std::unordered_set<ChunkId>& out) const {
    for (const auto& [id, source] : pin_sources_) source(out);
  }

  /// Concurrent-GC epoch observers: the digest indexes log every dedup hit
  /// served while a sweep's epoch is open (a Ref taken mid-epoch may
  /// publish and unpin before the sweep's final pin collection — the log is
  /// the only surviving witness). Same id-based lifecycle as the reclaim
  /// hooks.
  using GcEpochHook = std::function<void(bool /*open*/)>;
  std::uint64_t add_gc_epoch_hook(GcEpochHook hook) {
    const std::uint64_t id = ++next_hook_id_;
    gc_epoch_hooks_.emplace_back(id, std::move(hook));
    return id;
  }
  void remove_gc_epoch_hook(std::uint64_t id) {
    std::erase_if(gc_epoch_hooks_,
                  [id](const auto& h) { return h.first == id; });
  }
  void notify_gc_epoch(bool open) {
    for (const auto& [id, hook] : gc_epoch_hooks_) hook(open);
  }

 private:
  sim::Simulation* sim_;
  net::Fabric* fabric_;
  Config cfg_;
  /// Declared before the providers and managers: the providers hold a
  /// plane pointer and the managers' fair queues hold registry pointers.
  qos::AdmissionPlane plane_;
  std::unordered_map<net::TenantId, TenantUsage> usage_;
  std::unordered_map<net::TenantId, TenantQuota> quotas_;
  std::vector<std::unique_ptr<DataProvider>> providers_;
  std::unordered_map<net::NodeId, DataProvider*> by_node_;
  std::unique_ptr<MetadataCluster> metadata_;
  std::unique_ptr<ProviderManager> provider_manager_;
  std::unique_ptr<VersionManager> version_manager_;
  ChunkId next_chunk_id_ = 1;
  NodeRef next_node_ref_ = 1;
  std::vector<std::pair<std::uint64_t, ChunkReclaimHook>> reclaim_hooks_;
  std::vector<std::pair<std::uint64_t, ChunkPinSource>> pin_sources_;
  std::vector<std::pair<std::uint64_t, GcEpochHook>> gc_epoch_hooks_;
  std::uint64_t next_hook_id_ = 0;
};

}  // namespace blobcr::blob
