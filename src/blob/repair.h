// RepairService: restores the replication factor of the checkpoint
// repository after fail-stop node losses (§3.1.1: "each chunk is replicated
// on multiple local disks in order to survive failures" — surviving one
// failure is only half the story; re-replication is what keeps the *next*
// failure survivable).
//
// The service runs co-located with the provider manager and scrubs its
// placement registry: every chunk whose live replica count dropped below the
// target is copied from a surviving replica to the least-loaded live
// provider that does not already hold it, and the registry is updated so
// readers' locate() fail-over finds the new home. Copies are window-limited
// and move provider-to-provider over the fabric (the service only
// orchestrates; the data never passes through it).
#pragma once

#include <algorithm>
#include <map>
#include <vector>

#include "blob/store.h"
#include "sim/sim.h"
#include "sim/when_all.h"

namespace blobcr::blob {

class RepairService {
 public:
  struct Report {
    std::size_t chunks_scanned = 0;
    /// Replica copies created (a chunk two replicas short counts twice).
    std::size_t copies_made = 0;
    /// Chunks below target that could not be brought back up (no live
    /// source or no eligible destination).
    std::size_t unrepairable = 0;
    /// Chunks with zero live replicas: data loss the repair cannot undo.
    std::size_t lost = 0;
    std::uint64_t bytes_copied = 0;
    sim::Duration duration = 0;
    /// Repair traffic attributed to the tenant whose commit allocated each
    /// chunk (mirrored into BlobStore::tenant_usage by the pass).
    struct TenantRepair {
      std::size_t copies = 0;
      std::uint64_t bytes = 0;
    };
    std::map<net::TenantId, TenantRepair> by_tenant;
  };

  explicit RepairService(BlobStore& store) : store_(&store) {}

  /// One scrub pass: brings every chunk back to `target_replication` live
  /// replicas where possible. `window` bounds concurrent copies.
  sim::Task<Report> repair(int target_replication, std::size_t window = 8) {
    if (target_replication < 1)
      throw BlobError("repair: target replication must be >= 1");
    ProviderManager& pm = store_->provider_manager();
    Report report;
    const sim::Time t0 = store_->simulation().now();

    std::vector<sim::Task<>> copies;
    for (const auto& [id, placement] : pm.placements()) {
      ++report.chunks_scanned;
      std::vector<net::NodeId> live;
      for (const net::NodeId node : placement.replicas) {
        DataProvider* p = store_->provider_at(node);
        if (p != nullptr && p->has(id)) live.push_back(node);
      }
      if (live.empty()) {
        ++report.lost;
        continue;
      }
      const int deficit = target_replication - static_cast<int>(live.size());
      if (deficit <= 0) continue;

      std::vector<net::NodeId> homes = pick_destinations(
          live, static_cast<std::size_t>(deficit), placement.size);
      if (homes.size() < static_cast<std::size_t>(deficit))
        ++report.unrepairable;
      if (homes.empty()) continue;

      for (const net::NodeId dst : homes) {
        copies.push_back(
            copy_chunk(id, live.front(), dst, placement.tenant, &report));
        live.push_back(dst);
      }
      pm.update_placement(id, std::move(live));
      report.copies_made += homes.size();
    }
    co_await sim::run_window(store_->simulation(), window, std::move(copies));
    report.duration = store_->simulation().now() - t0;
    co_return report;
  }

  /// Live replicas of a chunk right now (test/inspection helper).
  std::size_t live_replicas(ChunkId id) const {
    const auto& placements = store_->provider_manager().placements();
    const auto it = placements.find(id);
    if (it == placements.end()) return 0;
    std::size_t n = 0;
    for (const net::NodeId node : it->second.replicas) {
      DataProvider* p = store_->provider_at(node);
      if (p != nullptr && p->has(id)) ++n;
    }
    return n;
  }

  /// Chunks whose live replica count is below `target` (0 after a
  /// successful repair pass unless data was outright lost).
  std::size_t under_replicated(int target) const {
    std::size_t n = 0;
    for (const auto& [id, placement] : store_->provider_manager().placements()) {
      const std::size_t live = live_replicas(id);
      if (live > 0 && live < static_cast<std::size_t>(target)) ++n;
    }
    return n;
  }

 private:
  /// Least-loaded live providers that do not already hold the chunk.
  std::vector<net::NodeId> pick_destinations(
      const std::vector<net::NodeId>& holders, std::size_t count,
      std::uint32_t size) {
    struct Candidate {
      DataProvider* provider;
      std::uint64_t load;
    };
    std::vector<Candidate> candidates;
    for (const auto& p : store_->providers()) {
      if (!p->alive()) continue;
      if (std::find(holders.begin(), holders.end(), p->node()) !=
          holders.end())
        continue;
      candidates.push_back({p.get(), p->stored_bytes()});
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.load < b.load;
                     });
    std::vector<net::NodeId> out;
    for (const Candidate& c : candidates) {
      if (out.size() == count) break;
      out.push_back(c.provider->node());
      (void)size;
    }
    return out;
  }

  sim::Task<> copy_chunk(ChunkId id, net::NodeId src, net::NodeId dst,
                         net::TenantId tenant, Report* report) {
    DataProvider* source = store_->provider_at(src);
    DataProvider* dest = store_->provider_at(dst);
    // Local read at the source (loopback), then one fabric hop src -> dst.
    // Repair traffic rides the provider-io gate under the chunk's owning
    // tenant, so scrub bursts are arbitrated like any other disk I/O.
    const qos::IoContext ctx{tenant, qos::GateClass::ProviderIo};
    common::Buffer data = co_await source->fetch(src, id, ctx);
    const std::uint64_t bytes = data.size();
    report->bytes_copied += bytes;
    Report::TenantRepair& tr = report->by_tenant[tenant];
    ++tr.copies;
    tr.bytes += bytes;
    store_->account_repair(tenant, 1, bytes);
    co_await dest->store(src, id, std::move(data), ctx);
  }

  BlobStore* store_;
};

}  // namespace blobcr::blob
