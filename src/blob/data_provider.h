// DataProvider: stores immutable chunks on one compute node's local disk.
// Chunks arrive over the fabric and are appended to a per-provider log
// (immutable data => log-structured => the disk stays near streaming rate
// even with many concurrent writers; see storage/disk.h).
//
// Every store/fetch is tenant-tagged (qos::IoContext) and admitted at the
// repository admission plane's provider-io gate before touching the fabric
// or the disk, so weighted fairness holds when the provider pool — not the
// commit gate — is the bottleneck.
#pragma once

#include <cstdint>

#include "blob/types.h"
#include "common/buffer.h"
#include "net/fabric.h"
#include "qos/admission.h"
#include "sim/sim.h"
#include "storage/chunk_store.h"
#include "storage/disk.h"

namespace blobcr::blob {

class DataProvider {
 public:
  DataProvider(sim::Simulation& /*sim*/, net::Fabric& fabric, net::NodeId node,
               storage::Disk& disk, std::uint64_t disk_stream,
               qos::AdmissionPlane* plane)
      : fabric_(&fabric), node_(node), store_(disk, disk_stream),
        plane_(plane) {}

  net::NodeId node() const { return node_; }
  bool alive() const { return alive_; }

  /// Fail-stop: all stored chunks are lost.
  void fail() {
    alive_ = false;
    lost_bytes_ = store_.stored_bytes();
  }

  /// Brings a failed provider back into service with an *empty* store (its
  /// disk content died with the node). The scavenge path repopulates it
  /// from surviving peer-tier copies; a no-op on a live provider.
  void rejoin() {
    if (alive_) return;
    store_.clear();
    alive_ = true;
  }

  /// Receives a chunk from `from` and persists it.
  sim::Task<> store(net::NodeId from, ChunkId id, common::Buffer data,
                    qos::IoContext ctx) {
    if (!alive_) throw BlobError("provider down");
    net::FairGate::Permit permit =
        co_await admit(ctx, static_cast<double>(data.size()));
    (void)permit;
    ++pending_stores_;
    co_await fabric_->transfer(from, node_, data.size());
    if (!alive_) {
      --pending_stores_;
      throw BlobError("provider died during store");
    }
    co_await store_.put(id, std::move(data));
    --pending_stores_;
  }

  /// Reads a chunk and ships it to `to`.
  sim::Task<common::Buffer> fetch(net::NodeId to, ChunkId id,
                                  qos::IoContext ctx) {
    if (!alive_ || !store_.has(id)) throw BlobError("chunk unavailable");
    net::FairGate::Permit permit =
        co_await admit(ctx, static_cast<double>(store_.size_of(id)));
    (void)permit;
    if (!alive_ || !store_.has(id)) throw BlobError("chunk unavailable");
    common::Buffer data = co_await store_.get(id);
    co_await fabric_->transfer(node_, to, data.size());
    co_return data;
  }

  /// fetch() over a shaped traffic class (federation: wide-area pulls ride
  /// the WAN shape instead of the intra-deployment default).
  sim::Task<common::Buffer> fetch_shaped(net::NodeId to, ChunkId id,
                                         net::Fabric::Shape shape,
                                         qos::IoContext ctx) {
    if (!alive_ || !store_.has(id)) throw BlobError("chunk unavailable");
    net::FairGate::Permit permit =
        co_await admit(ctx, static_cast<double>(store_.size_of(id)));
    (void)permit;
    if (!alive_ || !store_.has(id)) throw BlobError("chunk unavailable");
    common::Buffer data = co_await store_.get(id);
    co_await fabric_->transfer(node_, to, data.size(), shape);
    co_return data;
  }

  /// Lands an already-delivered payload on this provider's disk (no fabric
  /// transfer — the replicator moved the bytes itself, over its own traffic
  /// class, before handing them over).
  sim::Task<> put_local(ChunkId id, common::Buffer data, qos::IoContext ctx) {
    if (!alive_) throw BlobError("provider down");
    net::FairGate::Permit permit =
        co_await admit(ctx, static_cast<double>(data.size()));
    (void)permit;
    if (!alive_) throw BlobError("provider down");
    ++pending_stores_;
    co_await store_.put(id, std::move(data));
    --pending_stores_;
  }

  bool has(ChunkId id) const { return alive_ && store_.has(id); }
  bool erase(ChunkId id) { return store_.erase(id); }

  std::uint64_t stored_bytes() const { return alive_ ? store_.stored_bytes() : 0; }
  std::size_t chunk_count() const { return alive_ ? store_.chunk_count() : 0; }
  std::size_t pending_stores() const { return pending_stores_; }
  std::uint64_t lost_bytes() const { return lost_bytes_; }

 private:
  /// Provider I/O always admits at the provider-io gate regardless of the
  /// caller's class: a commit already holding a commit slot must not
  /// re-enter the commit gate (self-deadlock under bounded slots), and the
  /// permit order commit→provider / prefetch→provider stays acyclic.
  sim::Task<net::FairGate::Permit> admit(qos::IoContext ctx, double cost) {
    if (plane_ == nullptr) return empty_permit();
    ctx.gate = qos::GateClass::ProviderIo;
    return plane_->admit(ctx, cost);
  }
  static sim::Task<net::FairGate::Permit> empty_permit() {
    co_return net::FairGate::Permit();
  }

  net::Fabric* fabric_;
  net::NodeId node_;
  storage::ChunkStore store_;
  qos::AdmissionPlane* plane_;
  bool alive_ = true;
  std::size_t pending_stores_ = 0;
  std::uint64_t lost_bytes_ = 0;
};

}  // namespace blobcr::blob
