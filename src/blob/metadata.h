// MetadataCluster: the distributed metadata layer. Immutable tree nodes are
// spread over the metadata provider nodes by hashing their NodeRef; clients
// batch node reads/writes per provider (one bulk message each) — the
// decentralized metadata scheme that lets BlobSeer scale where a single
// metadata server serializes.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "blob/types.h"
#include "common/rng.h"
#include "net/fabric.h"
#include "net/service.h"
#include "sim/sim.h"
#include "sim/when_all.h"

namespace blobcr::blob {

class MetadataCluster {
 public:
  struct Config {
    std::vector<net::NodeId> nodes;
    sim::Duration per_request_cost = 30 * sim::kMicrosecond;
    std::uint64_t node_record_bytes = 64;  // serialized TreeNode size
  };

  MetadataCluster(sim::Simulation& sim, net::Fabric& fabric, const Config& cfg)
      : sim_(&sim), fabric_(&fabric), cfg_(cfg) {
    for (const net::NodeId n : cfg.nodes) {
      services_.push_back(std::make_unique<net::ServiceQueue>(
          sim, "meta@" + std::to_string(n), cfg.per_request_cost));
    }
  }

  /// Stores a batch of freshly built nodes; one bulk transfer per provider.
  sim::Task<> put_nodes(net::NodeId client,
                        std::vector<std::pair<NodeRef, TreeNode>> nodes);

  /// Fetches a batch of nodes into `out`; one bulk round-trip per provider.
  sim::Task<> get_nodes(net::NodeId client, const std::vector<NodeRef>& refs,
                        std::unordered_map<NodeRef, TreeNode>& out);

  bool has_node(NodeRef ref) const {
    return records_.find(ref) != records_.end();
  }

  /// In-process inspection (garbage collector, tests); no simulated cost.
  const TreeNode* peek_node(NodeRef ref) const {
    const auto it = records_.find(ref);
    return it == records_.end() ? nullptr : &it->second;
  }

  std::uint64_t stored_meta_bytes() const {
    return records_.size() * cfg_.node_record_bytes;
  }
  std::size_t node_count() const { return records_.size(); }
  std::uint64_t record_bytes() const { return cfg_.node_record_bytes; }

 private:
  std::size_t provider_of(NodeRef ref) const {
    return static_cast<std::size_t>(common::mix64(ref) % cfg_.nodes.size());
  }

  sim::Task<> put_batch(net::NodeId client, std::size_t provider,
                        std::uint64_t bytes);
  sim::Task<> get_batch(net::NodeId client, std::size_t provider,
                        std::uint64_t bytes);

  sim::Simulation* sim_;
  net::Fabric* fabric_;
  Config cfg_;
  std::vector<std::unique_ptr<net::ServiceQueue>> services_;
  std::unordered_map<NodeRef, TreeNode> records_;
};

inline sim::Task<> MetadataCluster::put_batch(net::NodeId client,
                                              std::size_t provider,
                                              std::uint64_t bytes) {
  co_await fabric_->transfer(client, cfg_.nodes[provider], bytes);
  co_await services_[provider]->process();
  co_await fabric_->message(cfg_.nodes[provider], client);  // ack
}

inline sim::Task<> MetadataCluster::get_batch(net::NodeId client,
                                              std::size_t provider,
                                              std::uint64_t bytes) {
  co_await fabric_->message(client, cfg_.nodes[provider]);
  co_await services_[provider]->process();
  co_await fabric_->transfer(cfg_.nodes[provider], client, bytes);
}

inline sim::Task<> MetadataCluster::put_nodes(
    net::NodeId client, std::vector<std::pair<NodeRef, TreeNode>> nodes) {
  std::vector<std::uint64_t> batch_bytes(cfg_.nodes.size(), 0);
  for (auto& [ref, node] : nodes) {
    batch_bytes[provider_of(ref)] += cfg_.node_record_bytes;
    records_[ref] = std::move(node);
  }
  std::vector<sim::Task<>> transfers;
  for (std::size_t p = 0; p < batch_bytes.size(); ++p) {
    if (batch_bytes[p] > 0) transfers.push_back(put_batch(client, p, batch_bytes[p]));
  }
  co_await sim::when_all(*sim_, std::move(transfers));
}

inline sim::Task<> MetadataCluster::get_nodes(
    net::NodeId client, const std::vector<NodeRef>& refs,
    std::unordered_map<NodeRef, TreeNode>& out) {
  std::vector<std::uint64_t> batch_bytes(cfg_.nodes.size(), 0);
  for (const NodeRef ref : refs) {
    const auto it = records_.find(ref);
    if (it == records_.end()) throw BlobError("metadata node missing");
    batch_bytes[provider_of(ref)] += cfg_.node_record_bytes;
    out[ref] = it->second;
  }
  std::vector<sim::Task<>> transfers;
  for (std::size_t p = 0; p < batch_bytes.size(); ++p) {
    if (batch_bytes[p] > 0) transfers.push_back(get_batch(client, p, batch_bytes[p]));
  }
  co_await sim::when_all(*sim_, std::move(transfers));
}

}  // namespace blobcr::blob
