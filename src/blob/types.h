// Core identifiers and metadata records for the BlobSeer-style store.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "net/fabric.h"
#include "sim/time.h"

namespace blobcr::blob {

using BlobId = std::uint64_t;     // 0 = invalid
using VersionId = std::uint32_t;  // version number within a blob, from 1
using ChunkId = std::uint64_t;    // globally unique, 0 = invalid
using NodeRef = std::uint64_t;    // metadata tree node reference, 0 = hole

class BlobError : public std::runtime_error {
 public:
  explicit BlobError(const std::string& what) : std::runtime_error(what) {}
};

/// A commit was refused at admission because the tenant's capacity ceiling
/// (resident bytes or catalog records) would be exceeded. Typed so drivers
/// can distinguish policy refusal from data-path failure.
class QuotaExceededError : public BlobError {
 public:
  explicit QuotaExceededError(const std::string& what) : BlobError(what) {}
};

/// How a stored chunk payload maps back to logical bytes (set by the
/// reduction pipeline; plain commits always store Raw).
enum class ChunkEncoding : std::uint8_t {
  Raw = 0,       // stored bytes == logical bytes
  Zero = 1,      // metadata-only hole: no stored payload, reads as zeros
  Rle = 2,       // run-length encoded real payload
  PhantomRatio = 3,  // phantom payload stored at a modeled compressed size
};

/// Where a chunk's replicas live.
struct ChunkLocation {
  ChunkId id = 0;          // 0 only for Zero-encoded (payload-free) leaves
  std::uint32_t size = 0;  // stored payload size (post-reduction)
  std::vector<net::NodeId> replicas;
  ChunkEncoding encoding = ChunkEncoding::Raw;
  std::uint32_t logical_size = 0;  // 0 => same as `size` (Raw)
  /// Raw-content digest, carried from the reduction pipeline into the leaf.
  /// Non-zero only for fully-real dedupable chunks; 0 = content unknown
  /// (plain commits, phantom payloads). The restart data plane keys its
  /// decoded-chunk caches and peer exchange on this when present, so two
  /// distinct ChunkIds holding identical content share one cached copy.
  std::uint64_t digest = 0;
  /// Availability zone of the BlobStore that owns this chunk (federation).
  /// 0 in a single-zone deployment; the restart plane uses it to resolve
  /// fetches to the nearest zone holding the content.
  std::uint32_t zone = 0;

  std::uint32_t logical() const { return logical_size != 0 ? logical_size : size; }
};

/// One node of the persistent (path-copied) metadata segment tree over the
/// chunk-index space. Inner nodes reference child subtrees; unmodified
/// subtrees are shared between versions (this is BlobSeer's *shadowing*).
struct TreeNode {
  bool leaf = false;
  NodeRef left = 0;   // inner only
  NodeRef right = 0;  // inner only
  ChunkLocation chunk;  // leaf only

  static TreeNode inner(NodeRef l, NodeRef r) {
    TreeNode n;
    n.left = l;
    n.right = r;
    return n;
  }
  static TreeNode make_leaf(ChunkLocation loc) {
    TreeNode n;
    n.leaf = true;
    n.chunk = std::move(loc);
    return n;
  }
};

/// A published snapshot of a blob.
struct VersionInfo {
  VersionId id = 0;
  NodeRef root = 0;
  std::uint64_t size = 0;            // logical blob size in bytes
  std::uint64_t new_chunk_bytes = 0; // chunk payload added by this version
  std::uint64_t new_meta_bytes = 0;  // metadata added by this version
  sim::Time created = 0;
  /// Reserved by an asynchronous commit whose drain has not published yet.
  /// Invisible to readers; a drain that dies leaves the slot pending
  /// forever (a tombstone), never a torn snapshot.
  bool pending = false;
};

struct BlobMeta {
  BlobId id = 0;
  std::uint64_t chunk_size = 0;
  BlobId cloned_from = 0;       // 0 if created fresh
  VersionId cloned_version = 0;
  std::vector<VersionInfo> versions;  // versions[i].id == i+1

  const VersionInfo& version(VersionId v) const {
    if (v == 0 || v > versions.size())
      throw BlobError("unknown version " + std::to_string(v));
    return versions[v - 1];
  }
  /// Latest *published* version (pending reservations are skipped — they
  /// are not yet readable snapshots).
  VersionId latest() const {
    for (std::size_t i = versions.size(); i > 0; --i) {
      if (!versions[i - 1].pending) return static_cast<VersionId>(i);
    }
    return 0;
  }
};

/// A chunk-aligned write extent used by the COMMIT primitive.
struct Extent {
  std::uint64_t offset = 0;
  common::Buffer data;
};

}  // namespace blobcr::blob
