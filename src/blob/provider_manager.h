// ProviderManager: allocates chunk placements. Unlike PVFS's static striping,
// allocation is load-aware: each chunk goes to the provider with the least
// cumulative assigned bytes (round-robin among ties), and the replicas of a
// chunk land on distinct providers. This is the dynamic balancing the paper
// credits for BlobSeer's write scalability under concurrency.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "blob/data_provider.h"
#include "blob/types.h"
#include "common/rng.h"
#include "net/fabric.h"
#include "net/service.h"
#include "sim/sim.h"

namespace blobcr::blob {

/// Current whereabouts of one chunk (authoritative, unlike the immutable
/// replica list snapshotted into metadata leaves at write time).
struct ChunkPlacement {
  std::uint32_t size = 0;
  std::vector<net::NodeId> replicas;
  /// Tenant whose commit allocated the chunk — repair traffic is charged
  /// back to the owner (BlobStore::tenant_usage), not smeared repository-wide.
  net::TenantId tenant = net::kDefaultTenant;
};

class ProviderManager {
 public:
  ProviderManager(sim::Simulation& sim, net::Fabric& fabric, net::NodeId node,
                  std::vector<DataProvider*> providers,
                  sim::Duration per_request_cost = 50 * sim::kMicrosecond)
      : fabric_(&fabric),
        node_(node),
        providers_(std::move(providers)),
        assigned_bytes_(providers_.size(), 0),
        service_(sim, "provider-manager", per_request_cost) {}

  net::NodeId node() const { return node_; }
  /// The manager's request queue (BlobStore flips it to weighted-fair
  /// dispatch when multi-tenant QoS is on).
  net::ServiceQueue& service() { return service_; }
  const net::ServiceQueue& service() const { return service_; }

  /// Allocates `chunk_sizes.size()` chunk placements with `replication`
  /// replicas each. One RPC round-trip (the request is a single message
  /// regardless of chunk count — BlobSeer clients ask once per write).
  sim::Task<std::vector<ChunkLocation>> allocate(
      net::NodeId client, const std::vector<std::uint32_t>& chunk_sizes,
      int replication, ChunkId& next_chunk_id,
      net::TenantId tenant = net::kDefaultTenant) {
    co_await fabric_->message(client, node_);
    co_await service_.process(tenant);
    std::vector<ChunkLocation> out;
    out.reserve(chunk_sizes.size());
    for (const std::uint32_t size : chunk_sizes) {
      ChunkLocation loc;
      loc.id = next_chunk_id++;
      loc.size = size;
      loc.replicas = pick_replicas(loc.id, size, replication);
      placements_[loc.id] = ChunkPlacement{size, loc.replicas, tenant};
      out.push_back(std::move(loc));
    }
    co_await fabric_->message(node_, client);
    co_return out;
  }

  /// RPC: where does chunk `id` live *now*? Readers fall back to this when
  /// every replica listed in the (immutable) metadata is gone — the repair
  /// service keeps the registry current after node losses. Empty when the
  /// chunk is unknown.
  sim::Task<std::vector<net::NodeId>> locate(
      net::NodeId client, ChunkId id,
      net::TenantId tenant = net::kDefaultTenant) {
    co_await fabric_->message(client, node_);
    co_await service_.process(tenant);
    std::vector<net::NodeId> out;
    const auto it = placements_.find(id);
    if (it != placements_.end()) out = it->second.replicas;
    co_await fabric_->message(node_, client);
    co_return out;
  }

  /// Registry access for the repair service (runs co-located with the
  /// manager, so these are local calls, not RPCs).
  const std::map<ChunkId, ChunkPlacement>& placements() const {
    return placements_;
  }
  void update_placement(ChunkId id, std::vector<net::NodeId> replicas) {
    placements_.at(id).replicas = std::move(replicas);
  }

  const std::vector<DataProvider*>& providers() const { return providers_; }
  std::uint64_t requests_served() const { return service_.requests_served(); }

 private:
  std::vector<net::NodeId> pick_replicas(ChunkId id, std::uint32_t size,
                                         int replication) {
    // Least-loaded-first selection over live providers. Ties break by a
    // per-chunk hash, not by index: a deterministic index order would pair
    // the same providers for every chunk, and losing that pair would lose
    // both replicas of a large chunk population at once.
    const std::size_t n = providers_.size();
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [this, id](std::size_t a, std::size_t b) {
                       if (assigned_bytes_[a] != assigned_bytes_[b])
                         return assigned_bytes_[a] < assigned_bytes_[b];
                       return common::mix64(id * 0x9e3779b9ULL + a) <
                              common::mix64(id * 0x9e3779b9ULL + b);
                     });
    std::vector<net::NodeId> replicas;
    for (const std::size_t i : order) {
      if (static_cast<int>(replicas.size()) == replication) break;
      if (!providers_[i]->alive()) continue;
      assigned_bytes_[i] += size;
      replicas.push_back(providers_[i]->node());
    }
    if (static_cast<int>(replicas.size()) < replication)
      throw BlobError("not enough live providers for replication");
    return replicas;
  }

  net::Fabric* fabric_;
  net::NodeId node_;
  std::vector<DataProvider*> providers_;
  std::vector<std::uint64_t> assigned_bytes_;
  std::map<ChunkId, ChunkPlacement> placements_;
  net::ServiceQueue service_;
};

}  // namespace blobcr::blob
