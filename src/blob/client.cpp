#include "blob/client.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <unordered_map>
#include <unordered_set>

#include "reduce/rle.h"
#include "sim/when_all.h"

namespace blobcr::blob {

common::Buffer BlobClient::decode_stored(const ChunkLocation& loc,
                                         common::Buffer stored) {
  switch (loc.encoding) {
    case ChunkEncoding::Raw:
    case ChunkEncoding::Zero:
      return stored;
    case ChunkEncoding::Rle: {
      if (!stored.fully_real()) throw BlobError("phantom RLE chunk payload");
      return common::Buffer::real(
          reduce::rle_decode(stored.bytes(), loc.logical()));
    }
    case ChunkEncoding::PhantomRatio:
      // The stored payload is a size-only placeholder at the modeled
      // compressed size; the logical content was phantom to begin with.
      return common::Buffer::phantom(loc.logical());
  }
  return stored;
}

namespace {

common::Buffer decode_chunk(const ChunkLocation& loc, common::Buffer stored) {
  return BlobClient::decode_stored(loc, std::move(stored));
}

/// True iff any write index falls in [lo, hi).
bool overlaps(const std::vector<std::pair<std::uint64_t, ChunkLocation>>& w,
              std::uint64_t lo, std::uint64_t hi) {
  const auto it = std::lower_bound(
      w.begin(), w.end(), lo,
      [](const auto& e, std::uint64_t v) { return e.first < v; });
  return it != w.end() && it->first < hi;
}

const ChunkLocation* find_write(
    const std::vector<std::pair<std::uint64_t, ChunkLocation>>& w,
    std::uint64_t index) {
  const auto it = std::lower_bound(
      w.begin(), w.end(), index,
      [](const auto& e, std::uint64_t v) { return e.first < v; });
  return (it != w.end() && it->first == index) ? &it->second : nullptr;
}

}  // namespace

const char* commit_stage_name(CommitStage s) {
  switch (s) {
    case CommitStage::Staged:
      return "staged";
    case CommitStage::Reducing:
      return "reducing";
    case CommitStage::Putting:
      return "putting";
    case CommitStage::PrePublish:
      return "pre-publish";
    case CommitStage::PostPublish:
      return "post-publish";
    case CommitStage::ParityEncode:
      return "parity-encode";
    case CommitStage::Replicate:
      return "replicate";
  }
  return "?";
}

sim::Task<BlobId> BlobClient::create(std::uint64_t chunk_size) {
  if (chunk_size == 0) chunk_size = store_->config().default_chunk_size;
  const BlobId id =
      co_await store_->version_manager().create(node_, chunk_size, tenant_);
  chunk_size_cache_[id] = chunk_size;
  co_return id;
}

sim::Task<BlobId> BlobClient::clone(BlobId src, VersionId v) {
  const BlobId id =
      co_await store_->version_manager().clone(node_, src, v, tenant_);
  co_return id;
}

sim::Task<BlobMeta> BlobClient::stat(BlobId blob) {
  BlobMeta meta = co_await store_->version_manager().stat(node_, blob, tenant_);
  co_return meta;
}

sim::Task<> BlobClient::bind_name(const std::string& name, BlobId id) {
  co_await store_->version_manager().bind_name(node_, name, id, tenant_);
}

sim::Task<BlobId> BlobClient::lookup_name(const std::string& name) {
  co_return co_await store_->version_manager().lookup_name(node_, name,
                                                           tenant_);
}

sim::Task<BlobClient::VersionEntry> BlobClient::resolve(BlobId blob,
                                                        VersionId& version) {
  if (version != 0) {
    const auto it = version_cache_.find(VersionKey{blob, version});
    if (it != version_cache_.end()) co_return it->second;
  }
  const BlobMeta meta =
      co_await store_->version_manager().stat(node_, blob, tenant_);
  chunk_size_cache_[blob] = meta.chunk_size;
  if (version == 0) version = meta.latest();
  VersionEntry entry;
  entry.chunk_size = meta.chunk_size;
  if (version == 0) {
    // Freshly created blob without versions: empty.
    entry.root = 0;
    entry.size = 0;
    co_return entry;
  }
  const VersionInfo& info = meta.version(version);
  if (info.pending)
    throw BlobError("version not yet published (drain in flight or dead)");
  if (info.root == 0 && info.size != 0)
    throw BlobError("version has been garbage-collected");
  entry.root = info.root;
  entry.size = info.size;
  version_cache_[VersionKey{blob, version}] = entry;
  co_return entry;
}

sim::Task<VersionId> BlobClient::write(BlobId blob, std::uint64_t offset,
                                       common::Buffer data) {
  std::vector<Extent> extents;
  extents.push_back(Extent{offset, std::move(data)});
  co_return co_await write_extents(blob, std::move(extents));
}

sim::Task<VersionId> BlobClient::write_extents(BlobId blob,
                                               std::vector<Extent> extents) {
  // In-memory payloads: the reader just slices them. Both the extents and
  // the reader live in this frame for the duration of the call.
  std::vector<ExtentSpec> specs;
  specs.reserve(extents.size());
  for (const Extent& e : extents) {
    specs.push_back(ExtentSpec{e.offset, e.data.size()});
  }
  const std::vector<Extent>* owned = &extents;
  ExtentReader reader = [owned](std::uint64_t offset,
                                std::uint64_t length)
      -> sim::Task<common::Buffer> {
    for (const Extent& e : *owned) {
      if (offset >= e.offset && offset + length <= e.offset + e.data.size()) {
        co_return e.data.slice(offset - e.offset, length);
      }
    }
    throw BlobError("reader miss in write_extents");
  };
  co_return co_await write_extents_via(blob, std::move(specs), &reader);
}

sim::Task<VersionId> BlobClient::write_extents_via(
    BlobId blob, std::vector<ExtentSpec> extents, ExtentReader* reader,
    CommitReducer* reducer) {
  CommitOptions opts;
  opts.reducer = reducer;
  co_return co_await write_extents_via(blob, std::move(extents), reader,
                                       std::move(opts));
}

sim::Task<VersionId> BlobClient::write_extents_via(
    BlobId blob, std::vector<ExtentSpec> extents, ExtentReader* reader,
    CommitOptions opts) {
  CommitReducer* reducer = opts.reducer;
  VersionId latest = 0;
  const VersionEntry base = co_await resolve(blob, latest);
  const std::uint64_t chunk_size = base.chunk_size;

  // Split extents into chunk-sized pieces (payloads fetched lazily).
  struct Piece {
    std::uint64_t index;
    std::uint64_t offset;
    std::uint32_t length;
  };
  std::vector<Piece> pieces;
  std::uint64_t new_size = base.size;
  std::uint64_t payload_bytes = 0;
  for (const ExtentSpec& e : extents) {
    if (e.offset % chunk_size != 0)
      throw BlobError("write offset not chunk-aligned");
    payload_bytes += e.length;
    new_size = std::max(new_size, e.offset + e.length);
    for (std::uint64_t off = 0; off < e.length; off += chunk_size) {
      const std::uint64_t piece_len = std::min(chunk_size, e.length - off);
      pieces.push_back(Piece{(e.offset + off) / chunk_size, e.offset + off,
                             static_cast<std::uint32_t>(piece_len)});
    }
  }
  if (pieces.empty()) throw BlobError("empty commit");
  std::sort(pieces.begin(), pieces.end(),
            [](const Piece& a, const Piece& b) { return a.index < b.index; });
  for (std::size_t i = 1; i < pieces.size(); ++i) {
    if (pieces[i].index == pieces[i - 1].index)
      throw BlobError("overlapping extents in commit");
  }
  if (pieces.back().index >= capacity_chunks())
    throw BlobError("write beyond blob capacity");

  const int replication = store_->config().replication;
  std::vector<ChunkLocation> locs(pieces.size());
  std::uint64_t stored_payload = payload_bytes;

  // Per-tenant capacity ceiling, checked before the gate so a refused
  // commit never consumes shared commit capacity. The pre-reduction payload
  // is the admission-time upper bound of what this commit could make
  // resident (reduction only shrinks it).
  const BlobStore::TenantQuota& quota = store_->tenant_quota(tenant_);
  if (quota.max_resident_bytes != 0 &&
      store_->tenant_usage(tenant_).shipped_bytes + payload_bytes >
          quota.max_resident_bytes) {
    throw QuotaExceededError(
        "tenant over resident-bytes quota: " +
        std::to_string(store_->tenant_usage(tenant_).shipped_bytes) + " + " +
        std::to_string(payload_bytes) + " > " +
        std::to_string(quota.max_resident_bytes));
  }

  // Commit admission: one slot per in-flight commit/drain, held from here
  // through publish. The admission plane admits tenants weighted-fair when
  // QoS is on, so a bulk tenant's backlog cannot starve a small tenant's
  // commit; with the gate unbounded (single-tenant default) this is a
  // no-op. The permit releases as this frame unwinds — including on drain
  // kill.
  const sim::Time admit_start = store_->simulation().now();
  net::FairGate::Permit admission = co_await store_->admission().admit(
      qos::IoContext{tenant_, qos::GateClass::Commit},
      static_cast<double>(payload_bytes));
  (void)admission;
  store_->account_commit_wait(tenant_,
                              store_->simulation().now() - admit_start);

  // Reduced-path commit state, function-scoped so the guard's destructor
  // runs only after the version published (or on unwind): dedup Ref pins
  // must outlive the metadata co_awaits below — otherwise a GC running
  // during put_nodes/publish sees the Ref'd chunks neither pinned nor
  // reachable and reclaims them under the about-to-publish version. On a
  // failed commit the guard also withdraws the digests this commit pushed
  // into the dedup index: no tree references those chunks, so leaving them
  // indexed would offer dedup targets the GC can never reclaim.
  std::vector<ReducedChunk> plans;
  struct CommitGuard {
    CommitReducer* red;
    const std::vector<ReducedChunk>* plans;
    std::vector<ChunkId> indexed{};  // chunks this commit put in the index
    bool published = false;
    ~CommitGuard() {
      if (red == nullptr) return;
      std::vector<ChunkId> ids;
      for (const ReducedChunk& p : *plans) {
        if (p.kind == ReducedChunk::Kind::Ref && p.ref.id != 0) {
          ids.push_back(p.ref.id);
        }
      }
      if (!ids.empty()) red->release_refs(ids);
      if (!published && !indexed.empty()) red->forget_indexed(indexed);
    }
  } guard{reducer, &plans};

  if (opts.probe != nullptr) co_await (*opts.probe)(CommitStage::Reducing);

  if (reducer == nullptr) {
    // Placement: one allocation round-trip for the whole commit.
    std::vector<std::uint32_t> sizes;
    sizes.reserve(pieces.size());
    for (const Piece& p : pieces) sizes.push_back(p.length);
    locs = co_await store_->provider_manager().allocate(
        node_, sizes, replication, store_->chunk_id_counter(), tenant_);
    for (ChunkLocation& loc : locs) loc.zone = store_->config().zone;

    if (opts.probe != nullptr) co_await (*opts.probe)(CommitStage::Putting);

    // Pipelined stores: each window slot pulls a chunk through the reader
    // (e.g. local disk) and ships it to all replicas. The reader outlives
    // the pipeline (owned by our caller's frame).
    std::vector<sim::Task<>> stores;
    stores.reserve(pieces.size());
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      stores.push_back(
          [](BlobClient* self, Piece piece, ChunkLocation loc,
             ExtentReader* rd) -> sim::Task<> {
            common::Buffer data =
                co_await (*rd)(piece.offset, piece.length);
            for (const net::NodeId replica : loc.replicas) {
              DataProvider* provider = self->store_->provider_at(replica);
              if (provider == nullptr) throw BlobError("no provider at node");
              co_await provider->store(
                  self->node_, loc.id, data,
                  qos::IoContext{self->tenant_, qos::GateClass::ProviderIo});
            }
          }(this, pieces[i], locs[i], reader));
    }
    co_await sim::run_window(store_->simulation(),
                             store_->config().write_window,
                             std::move(stores));
  } else {
    // --- Reduced commit path ------------------------------------------
    // Phase 1 (window-limited): pull each chunk through the reader and the
    // reduction pipeline. Surviving payloads stay in memory until phase 3,
    // so the local cache is read exactly once per chunk.
    plans.resize(pieces.size());
    std::vector<sim::Task<>> reduces;
    reduces.reserve(pieces.size());
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      reduces.push_back(
          [](BlobClient* self, const Piece& piece, ExtentReader* rd,
             CommitReducer* red, ReducedChunk* plan) -> sim::Task<> {
            common::Buffer data = co_await (*rd)(piece.offset, piece.length);
            *plan = co_await red->reduce(self->node_, piece.offset,
                                         std::move(data));
          }(this, pieces[i], reader, reducer, &plans[i]));
    }
    co_await sim::run_window(store_->simulation(),
                             store_->config().write_window,
                             std::move(reduces));

    // Phase 2: intra-commit dedup (identical chunks of one commit collapse
    // onto their first occurrence), then one placement round-trip covering
    // only the chunks that genuinely store.
    constexpr std::size_t kNoAlias = static_cast<std::size_t>(-1);
    std::unordered_map<std::uint64_t, std::size_t> first_of_digest;
    std::vector<std::size_t> alias(pieces.size(), kNoAlias);
    std::vector<std::size_t> store_idx;
    std::vector<std::uint32_t> sizes;
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      if (plans[i].kind != ReducedChunk::Kind::Store) continue;
      if (plans[i].index_on_commit) {
        const auto [it, fresh] =
            first_of_digest.try_emplace(plans[i].digest, i);
        // Both payloads are in memory here, so unlike the cross-commit
        // index lookup the alias can be byte-verified: the pipeline is
        // deterministic, so equal raw chunks yield equal (encoding,
        // payload), and a digest collision falls through to a store.
        if (!fresh && pieces[it->second].length == pieces[i].length &&
            plans[it->second].encoding == plans[i].encoding &&
            plans[it->second].payload == plans[i].payload) {
          alias[i] = it->second;
          reducer->account_aliased(pieces[i].length);
          continue;
        }
      }
      store_idx.push_back(i);
      sizes.push_back(static_cast<std::uint32_t>(plans[i].payload.size()));
    }
    std::vector<ChunkLocation> alloc;
    if (!sizes.empty()) {
      alloc = co_await store_->provider_manager().allocate(
          node_, sizes, replication, store_->chunk_id_counter(), tenant_);
    }
    stored_payload = 0;
    for (std::size_t k = 0; k < store_idx.size(); ++k) {
      const std::size_t i = store_idx[k];
      ChunkLocation loc = alloc[k];
      loc.zone = store_->config().zone;
      loc.encoding = plans[i].encoding;
      loc.logical_size = pieces[i].length;
      // Content identity travels into the leaf only when the digest is a
      // real-content digest (dedupable chunks) — phantom digests are
      // length-derived and would alias unrelated content.
      if (plans[i].index_on_commit) loc.digest = plans[i].digest;
      stored_payload += loc.size;
      reducer->account_stored(pieces[i].length, loc.size);
      locs[i] = std::move(loc);
    }
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      if (alias[i] != kNoAlias) {
        locs[i] = locs[alias[i]];
      } else if (plans[i].kind == ReducedChunk::Kind::Ref) {
        locs[i] = plans[i].ref;
      } else if (plans[i].kind == ReducedChunk::Kind::Zero) {
        ChunkLocation hole;
        hole.encoding = ChunkEncoding::Zero;
        hole.logical_size = pieces[i].length;
        locs[i] = hole;
      }
    }

    if (opts.probe != nullptr) co_await (*opts.probe)(CommitStage::Putting);

    // Phase 3: window-limited stores of the surviving chunks. Each chunk
    // enters the dedup index the moment every replica holds it, so other
    // ranks of the same global checkpoint can already dedup against it.
    std::vector<sim::Task<>> stores;
    stores.reserve(store_idx.size());
    for (const std::size_t i : store_idx) {
      stores.push_back(
          [](BlobClient* self, ReducedChunk* plan, const ChunkLocation& loc,
             CommitReducer* red,
             std::vector<ChunkId>* indexed) -> sim::Task<> {
            for (const net::NodeId replica : loc.replicas) {
              DataProvider* provider = self->store_->provider_at(replica);
              if (provider == nullptr) throw BlobError("no provider at node");
              co_await provider->store(
                  self->node_, loc.id, plan->payload,
                  qos::IoContext{self->tenant_, qos::GateClass::ProviderIo});
            }
            if (plan->index_on_commit) {
              red->committed(plan->digest, loc);
              indexed->push_back(loc.id);
            }
          }(this, &plans[i], locs[i], reducer, &guard.indexed));
    }
    co_await sim::run_window(store_->simulation(),
                             store_->config().write_window,
                             std::move(stores));
  }

  // Warm the metadata cache over the written range, then path-copy.
  std::vector<std::pair<std::uint64_t, ChunkLocation>> writes;
  writes.reserve(pieces.size());
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    writes.emplace_back(pieces[i].index, locs[i]);
  }
  const std::uint64_t lo = writes.front().first;
  const std::uint64_t hi = writes.back().first + 1;
  if (base.root != 0) {
    co_await descend(base.root, capacity_chunks(), lo, hi, nullptr);
  }
  std::vector<std::pair<NodeRef, TreeNode>> new_nodes;
  const NodeRef new_root = build(base.root, 0, capacity_chunks(), writes,
                                 new_nodes);
  const std::uint64_t meta_bytes =
      new_nodes.size() * store_->metadata().record_bytes();
  co_await store_->metadata().put_nodes(node_, std::move(new_nodes));

  const std::uint64_t chunk_bytes =
      stored_payload * static_cast<std::uint64_t>(replication);
  bytes_written_ += payload_bytes;
  last_commit_raw_ = payload_bytes;
  last_commit_stored_ = stored_payload;
  if (opts.probe != nullptr) co_await (*opts.probe)(CommitStage::PrePublish);
  const VersionId v = co_await store_->version_manager().publish(
      node_, blob, new_root, new_size, chunk_bytes, meta_bytes,
      opts.reserved_version, tenant_);
  guard.published = true;
  store_->account_commit(tenant_, payload_bytes, stored_payload);
  version_cache_[VersionKey{blob, v}] =
      VersionEntry{new_root, new_size, chunk_size};
  if (opts.probe != nullptr) co_await (*opts.probe)(CommitStage::PostPublish);
  co_return v;
}

NodeRef BlobClient::build(
    NodeRef old_ref, std::uint64_t lo, std::uint64_t hi,
    const std::vector<std::pair<std::uint64_t, ChunkLocation>>& writes,
    std::vector<std::pair<NodeRef, TreeNode>>& out) {
  if (!overlaps(writes, lo, hi)) return old_ref;  // shared subtree
  if (hi - lo == 1) {
    const ChunkLocation* loc = find_write(writes, lo);
    assert(loc != nullptr);
    const NodeRef ref = store_->node_ref_counter()++;
    TreeNode node = TreeNode::make_leaf(*loc);
    node_cache_[ref] = node;
    out.emplace_back(ref, std::move(node));
    return ref;
  }
  const std::uint64_t mid = lo + (hi - lo) / 2;
  NodeRef old_left = 0;
  NodeRef old_right = 0;
  if (old_ref != 0) {
    const auto it = node_cache_.find(old_ref);
    assert(it != node_cache_.end() && "cache not warmed before build");
    old_left = it->second.left;
    old_right = it->second.right;
  }
  const NodeRef l = build(old_left, lo, mid, writes, out);
  const NodeRef r = build(old_right, mid, hi, writes, out);
  const NodeRef ref = store_->node_ref_counter()++;
  TreeNode node = TreeNode::inner(l, r);
  node_cache_[ref] = node;
  out.emplace_back(ref, std::move(node));
  return ref;
}

sim::Task<> BlobClient::descend(
    NodeRef root, std::uint64_t capacity, std::uint64_t lo_chunk,
    std::uint64_t hi_chunk,
    std::vector<std::pair<std::uint64_t, ChunkLocation>>* leaves) {
  struct Frame {
    NodeRef ref;
    std::uint64_t lo;
    std::uint64_t hi;
  };
  std::vector<Frame> frontier{{root, 0, capacity}};
  while (!frontier.empty()) {
    // Fetch every uncached node of this level in per-provider batches.
    std::vector<NodeRef> missing;
    for (const Frame& f : frontier) {
      if (f.ref != 0 && node_cache_.find(f.ref) == node_cache_.end())
        missing.push_back(f.ref);
    }
    if (!missing.empty()) {
      co_await store_->metadata().get_nodes(node_, missing, node_cache_);
    }
    std::vector<Frame> next;
    for (const Frame& f : frontier) {
      if (f.ref == 0) continue;  // hole
      const TreeNode& node = node_cache_.at(f.ref);
      if (node.leaf) {
        if (leaves != nullptr) leaves->emplace_back(f.lo, node.chunk);
        continue;
      }
      const std::uint64_t mid = f.lo + (f.hi - f.lo) / 2;
      if (node.left != 0 && lo_chunk < mid && f.lo < hi_chunk) {
        next.push_back(Frame{node.left, f.lo, mid});
      }
      if (node.right != 0 && hi_chunk > mid && f.hi > lo_chunk) {
        next.push_back(Frame{node.right, mid, f.hi});
      }
    }
    frontier = std::move(next);
  }
}

sim::Task<common::Buffer> BlobClient::fetch_chunk(const ChunkLocation& loc) {
  const std::size_t n = loc.replicas.size();
  const std::size_t start = static_cast<std::size_t>(loc.id) % n;
  for (std::size_t attempt = 0; attempt < n; ++attempt) {
    const net::NodeId replica = loc.replicas[(start + attempt) % n];
    DataProvider* provider = store_->provider_at(replica);
    if (provider == nullptr || !provider->has(loc.id)) continue;
    co_return co_await provider->fetch(
        node_, loc.id, qos::IoContext{tenant_, qos::GateClass::ProviderIo});
  }
  // The metadata lists where the replicas were at write time; after a node
  // loss the repair service may have re-homed the chunk. Ask the provider
  // manager where it lives now before declaring it lost.
  const std::vector<net::NodeId> current =
      co_await store_->provider_manager().locate(node_, loc.id, tenant_);
  for (const net::NodeId replica : current) {
    DataProvider* provider = store_->provider_at(replica);
    if (provider == nullptr || !provider->has(loc.id)) continue;
    co_return co_await provider->fetch(
        node_, loc.id, qos::IoContext{tenant_, qos::GateClass::ProviderIo});
  }
  throw BlobError("all replicas of chunk lost");
}

sim::Task<common::Buffer> BlobClient::read(BlobId blob, VersionId version,
                                           std::uint64_t offset,
                                           std::uint64_t len) {
  const VersionEntry entry = co_await resolve(blob, version);
  if (offset + len > entry.size && entry.size != 0) {
    // Reads past the logical end are clipped like a sparse file.
    len = offset < entry.size ? entry.size - offset : 0;
  }
  if (len == 0 || entry.root == 0) co_return common::Buffer::zeros(len);
  const std::uint64_t chunk_size = entry.chunk_size;
  const std::uint64_t lo_chunk = offset / chunk_size;
  const std::uint64_t hi_chunk = (offset + len + chunk_size - 1) / chunk_size;

  std::vector<std::pair<std::uint64_t, ChunkLocation>> leaves;
  co_await descend(entry.root, capacity_chunks(), lo_chunk, hi_chunk, &leaves);

  // Fetch each distinct chunk once (dedup can alias many leaves onto one
  // stored chunk — re-fetching per leaf would pay on restore the transfers
  // dedup saved on commit), window-limited, then assemble per leaf.
  auto fetched =
      std::make_shared<std::unordered_map<ChunkId, common::Buffer>>();
  std::vector<sim::Task<>> fetches;
  for (const auto& [index, loc] : leaves) {
    // Zero-suppressed leaves are metadata-only holes: no payload to fetch;
    // the assembly below fills uncovered gaps with zeros.
    if (loc.encoding == ChunkEncoding::Zero || loc.id == 0) continue;
    if (!fetched->try_emplace(loc.id).second) continue;  // already scheduled
    fetches.push_back(
        [](BlobClient* self, ChunkLocation l,
           std::shared_ptr<std::unordered_map<ChunkId, common::Buffer>> res)
            -> sim::Task<> {
          (*res)[l.id] = co_await self->fetch_chunk(l);
        }(this, loc, fetched));
  }
  co_await sim::run_window(store_->simulation(), store_->config().read_window,
                           std::move(fetches));

  // Decode once per distinct chunk, in place (an RLE chunk aliased by many
  // leaves must not be re-decoded per leaf), then assemble piecewise in
  // order (holes read as zeros).
  std::sort(leaves.begin(), leaves.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::unordered_set<ChunkId> decoded;
  common::Buffer out;
  std::uint64_t cursor = offset;
  for (const auto& [index, loc] : leaves) {
    if (loc.encoding == ChunkEncoding::Zero || loc.id == 0) continue;
    common::Buffer& data = fetched->at(loc.id);
    if (decoded.insert(loc.id).second) {
      data = decode_chunk(loc, std::move(data));
    }
    const std::uint64_t chunk_begin = index * chunk_size;
    const std::uint64_t copy_begin = std::max(chunk_begin, offset);
    const std::uint64_t copy_end =
        std::min(chunk_begin + data.size(), offset + len);
    if (copy_begin >= copy_end) continue;
    if (copy_begin > cursor) out.append(common::Buffer::zeros(copy_begin - cursor));
    out.append(
        data.slice(copy_begin - chunk_begin, copy_end - copy_begin));
    cursor = copy_end;
  }
  if (cursor < offset + len) {
    out.append(common::Buffer::zeros(offset + len - cursor));
  }
  bytes_read_ += len;
  co_return out;
}

sim::Task<VersionId> BlobClient::adopt_leaves(
    BlobId blob, std::uint64_t logical_size,
    const std::vector<std::pair<std::uint64_t, ChunkLocation>>& leaves) {
  VersionId latest = 0;
  const VersionEntry base = co_await resolve(blob, latest);
  if (base.root != 0)
    throw BlobError("adopt_leaves requires a fresh (empty) blob");
  if (leaves.empty()) throw BlobError("adopt_leaves: empty leaf set");
  std::vector<std::pair<std::uint64_t, ChunkLocation>> writes = leaves;
  std::sort(writes.begin(), writes.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (writes.back().first >= capacity_chunks())
    throw BlobError("adopted leaf beyond blob capacity");
  std::vector<std::pair<NodeRef, TreeNode>> new_nodes;
  const NodeRef new_root = build(0, 0, capacity_chunks(), writes, new_nodes);
  const std::uint64_t meta_bytes =
      new_nodes.size() * store_->metadata().record_bytes();
  co_await store_->metadata().put_nodes(node_, std::move(new_nodes));
  const VersionId v = co_await store_->version_manager().publish(
      node_, blob, new_root, logical_size, 0, meta_bytes, 0, tenant_);
  version_cache_[VersionKey{blob, v}] =
      VersionEntry{new_root, logical_size, base.chunk_size};
  co_return v;
}

sim::Task<std::vector<BlobClient::ChunkRef>> BlobClient::resolve_chunks(
    BlobId blob, VersionId version, std::uint64_t offset, std::uint64_t len) {
  const VersionEntry entry = co_await resolve(blob, version);
  std::vector<ChunkRef> refs;
  if (entry.root == 0 || len == 0) co_return refs;
  if (offset + len > entry.size && entry.size != 0) {
    len = offset < entry.size ? entry.size - offset : 0;
    if (len == 0) co_return refs;
  }
  const std::uint64_t chunk_size = entry.chunk_size;
  const std::uint64_t lo_chunk = offset / chunk_size;
  const std::uint64_t hi_chunk = (offset + len + chunk_size - 1) / chunk_size;
  std::vector<std::pair<std::uint64_t, ChunkLocation>> leaves;
  co_await descend(entry.root, capacity_chunks(), lo_chunk, hi_chunk, &leaves);
  std::sort(leaves.begin(), leaves.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  refs.reserve(leaves.size());
  for (auto& [index, loc] : leaves) {
    refs.push_back(ChunkRef{index, std::move(loc)});
  }
  co_return refs;
}

sim::Task<common::Buffer> BlobClient::fetch_decoded(const ChunkLocation& loc) {
  if (loc.encoding == ChunkEncoding::Zero || loc.id == 0) {
    co_return common::Buffer::zeros(loc.logical());
  }
  common::Buffer stored = co_await fetch_chunk(loc);
  bytes_read_ += loc.logical();
  co_return decode_chunk(loc, std::move(stored));
}

sim::Task<> BlobClient::prefetch_metadata(BlobId blob, VersionId version,
                                          std::uint64_t offset,
                                          std::uint64_t len) {
  const VersionEntry entry = co_await resolve(blob, version);
  if (entry.root == 0 || len == 0) co_return;
  const std::uint64_t chunk_size = entry.chunk_size;
  const std::uint64_t lo_chunk = offset / chunk_size;
  const std::uint64_t hi_chunk = (offset + len + chunk_size - 1) / chunk_size;
  co_await descend(entry.root, capacity_chunks(), lo_chunk, hi_chunk, nullptr);
}

}  // namespace blobcr::blob
