// GarbageCollector: reclaims chunks obsoleted by newer checkpoints (the
// paper's §6 future-work feature). Mark-and-sweep over the persistent trees:
// a chunk is reclaimable iff it is reachable only from dropped versions —
// cloning means chunks can be shared across blobs, so the live set spans the
// entire store. Runs offline (no simulated cost); the ablation bench reports
// reclaimed space.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "blob/store.h"
#include "blob/types.h"

namespace blobcr::blob {

class GarbageCollector {
 public:
  explicit GarbageCollector(BlobStore& store) : store_(&store) {}

  struct Result {
    std::uint64_t reclaimed_bytes = 0;
    std::size_t chunks_deleted = 0;
    /// Chunks referenced by dropped versions that survived because another
    /// live version (possibly of another blob, via cloning or dedup) still
    /// references them.
    std::size_t chunks_kept_shared = 0;
  };

  /// Drops versions < keep_from of `blob` and reclaims chunks no longer
  /// reachable from any live version of any blob.
  Result collect(BlobId blob, VersionId keep_from) {
    std::unordered_set<ChunkId> live;
    std::unordered_map<ChunkId, ChunkLocation> dropped;
    std::unordered_set<NodeRef> visited;

    for (const auto& [id, meta] : store_->version_manager().all()) {
      for (const VersionInfo& v : meta.versions) {
        // root == 0 covers tombstones and pending (async-reserved) slots:
        // an in-flight drain's version has no tree yet; its chunk
        // references are protected below by the reducer's pins, and its
        // freshly-stored chunks are reachable from no dropped version, so
        // the sweep can never touch them.
        if (v.pending || v.root == 0) continue;
        const bool is_dropped = (id == blob && v.id < keep_from);
        if (is_dropped) continue;
        mark_live(v.root, live, visited);
      }
    }
    // Chunks referenced by commits still in flight (a dedup Ref taken
    // before its version publishes) are invisible to the tree walk; the
    // reduction pipelines pin them until the commit completes.
    store_->collect_pinned_chunks(live);
    visited.clear();
    const BlobMeta& target = store_->version_manager().peek(blob);
    for (const VersionInfo& v : target.versions) {
      if (v.pending || v.root == 0 || v.id >= keep_from) continue;
      collect_chunks(v.root, dropped, visited);
    }

    Result result;
    std::vector<ChunkId> swept;
    for (const auto& [cid, loc] : dropped) {
      // Reference check before reclaiming: with cloning and content-
      // addressed dedup a chunk may back leaves of many trees, so it is
      // reclaimable only when no live version of any blob reaches it.
      if (live.count(cid) != 0) {
        ++result.chunks_kept_shared;
        continue;
      }
      bool erased_any = false;
      for (const net::NodeId node : loc.replicas) {
        if (DataProvider* p = store_->provider_at(node)) {
          erased_any = p->erase(cid) || erased_any;
        }
      }
      if (erased_any) {
        ++result.chunks_deleted;
        result.reclaimed_bytes += loc.size;
      }
      // Swept whether or not a replica was left to erase (the chunk may
      // already be gone with its failed nodes) — either way it must leave
      // the digest indexes below.
      swept.push_back(cid);
    }
    store_->version_manager().drop_version_records(blob, keep_from);
    // Tell the reduction subsystem's digest indexes these chunks are gone —
    // a dedup hit on a reclaimed (or node-loss-orphaned) chunk would
    // silently lose data.
    store_->notify_chunks_reclaimed(swept);
    return result;
  }

 private:
  void mark_live(NodeRef ref, std::unordered_set<ChunkId>& live,
                 std::unordered_set<NodeRef>& visited) {
    if (ref == 0 || !visited.insert(ref).second) return;
    const TreeNode* node = store_->metadata().peek_node(ref);
    if (node == nullptr) return;
    if (node->leaf) {
      if (node->chunk.id != 0) live.insert(node->chunk.id);
      return;
    }
    mark_live(node->left, live, visited);
    mark_live(node->right, live, visited);
  }

  void collect_chunks(NodeRef ref,
                      std::unordered_map<ChunkId, ChunkLocation>& out,
                      std::unordered_set<NodeRef>& visited) {
    if (ref == 0 || !visited.insert(ref).second) return;
    const TreeNode* node = store_->metadata().peek_node(ref);
    if (node == nullptr) return;
    if (node->leaf) {
      // id 0 marks zero-suppressed (payload-free) leaves: nothing to sweep.
      if (node->chunk.id != 0) out[node->chunk.id] = node->chunk;
      return;
    }
    collect_chunks(node->left, out, visited);
    collect_chunks(node->right, out, visited);
  }

  BlobStore* store_;
};

}  // namespace blobcr::blob
