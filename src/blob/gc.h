// GarbageCollector: reclaims chunks obsoleted by newer checkpoints (the
// paper's §6 future-work feature). A chunk is reclaimable iff it is
// reachable only from dropped versions — cloning means chunks can be shared
// across blobs, so the live set spans the entire store.
//
// Two entry points over one epoch protocol:
//
//  * collect() — the classic synchronous sweep: the whole epoch runs in one
//    scheduler slice (no co_await), so nothing can interleave. Call sites
//    that run outside a simulation process keep working.
//  * collect_concurrent() — the epoch-based incremental sweep: the mark
//    walks the version manager's blob shards one at a time, yielding
//    between shards so in-flight commits keep draining, and the erase phase
//    sweeps in bounded batches with yields in between. No full-store
//    stop-the-world pass.
//
// The epoch protocol that keeps the concurrent walk safe against commits
// racing it:
//
//  1. Epoch open: record the chunk-id horizon (the store's next chunk id).
//     Chunks born after the open are never touched this epoch. Digest
//     indexes start logging every dedup hit (BlobStore::notify_gc_epoch);
//     in-flight pins are folded into the live set now AND at finalize.
//  2. Incremental mark: live chunks from every published tree, one version-
//     manager shard per slice.
//  3. Finalize (one atomic slice): re-collect pins + the epoch hit log,
//     decide the sweep set, and de-index it (notify_chunks_reclaimed)
//     BEFORE the first erase yield — after this no lookup can hand out a
//     new Ref to a doomed chunk, which is what makes the yielding erase
//     phase safe.
//  4. Sweep: erase replicas batch by batch.
//
// Why each racing reference is covered: a Ref taken before the epoch opened
// is either still pinned at open/finalize (pin sources) or its commit
// published, putting the chunk in a tree — if the mark already passed that
// blob's shard, the Ref's lookup... cannot have happened (pre-epoch lookups
// with post-epoch publishes hold their pin until publish, and a pin seen at
// OPEN protects the chunk even if released before finalize). A Ref taken
// during the epoch went through a lookup the index logged. A brand-new
// chunk stored during the epoch is above the horizon and reachable from no
// dropped (pre-epoch) tree.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "blob/store.h"
#include "blob/types.h"
#include "sim/sim.h"

namespace blobcr::blob {

class GarbageCollector {
 public:
  explicit GarbageCollector(BlobStore& store) : store_(&store) {}

  struct Result {
    std::uint64_t reclaimed_bytes = 0;
    std::size_t chunks_deleted = 0;
    /// Chunks referenced by dropped versions that survived because another
    /// live version (possibly of another blob, via cloning or dedup), an
    /// in-flight pin, or a mid-epoch dedup hit still references them.
    std::size_t chunks_kept_shared = 0;
    /// Candidates skipped because they were born after the epoch opened
    /// (defensive: a dropped pre-epoch tree cannot reference them).
    std::size_t deferred_post_epoch = 0;
    /// Concurrent sweep only: scheduler slices the mark/erase phases spread
    /// over (1 each for the synchronous collect()).
    std::size_t mark_slices = 0;
    std::size_t sweep_batches = 0;
  };

  /// Drops versions < keep_from of `blob` and reclaims chunks no longer
  /// reachable from any live version of any blob. Synchronous: the whole
  /// epoch runs in one slice.
  Result collect(BlobId blob, VersionId keep_from) {
    Epoch e = open_epoch(blob, keep_from);
    const std::size_t shards = store_->version_manager().shard_count();
    for (std::size_t s = 0; s < shards; ++s) mark_shard(s, e);
    e.result.mark_slices = 1;
    collect_candidates(e);
    finalize(e);
    erase_range(e, 0, e.swept.size());
    e.result.sweep_batches = 1;
    return e.result;
  }

  /// The epoch-based concurrent sweep: same result contract as collect(),
  /// but commits keep running between slices. Must run inside a simulation
  /// process (it yields).
  sim::Task<Result> collect_concurrent(BlobId blob, VersionId keep_from) {
    Epoch e = open_epoch(blob, keep_from);
    const std::size_t shards = store_->version_manager().shard_count();
    for (std::size_t s = 0; s < shards; ++s) {
      mark_shard(s, e);
      ++e.result.mark_slices;
      co_await store_->simulation().yield();
    }
    collect_candidates(e);
    // Finalize is one atomic slice: the liveness decision, the de-index and
    // the version-record tombstoning happen with no interleaving point, so
    // no commit can take a Ref between "doomed" and "unreachable".
    finalize(e);
    for (std::size_t begin = 0; begin < e.swept.size();
         begin += kSweepBatch) {
      const std::size_t end =
          begin + kSweepBatch < e.swept.size() ? begin + kSweepBatch
                                               : e.swept.size();
      erase_range(e, begin, end);
      ++e.result.sweep_batches;
      co_await store_->simulation().yield();
    }
    co_return e.result;
  }

 private:
  static constexpr std::size_t kSweepBatch = 64;

  struct Epoch {
    BlobId blob = 0;
    VersionId keep_from = 0;
    /// Chunk ids at/above this were allocated after the epoch opened.
    ChunkId horizon = 0;
    std::unordered_set<ChunkId> live;
    std::unordered_map<ChunkId, ChunkLocation> dropped;
    std::vector<ChunkLocation> swept;  // decided + de-indexed, pending erase
    Result result;
  };

  Epoch open_epoch(BlobId blob, VersionId keep_from) {
    Epoch e;
    e.blob = blob;
    e.keep_from = keep_from;
    e.horizon = store_->chunk_id_counter();
    store_->notify_gc_epoch(true);
    // Pins at open: a Ref taken before the epoch (so never hit-logged) may
    // publish — and release its pin — while the incremental mark is mid-
    // walk; the open-time snapshot is what protects it.
    store_->collect_pinned_chunks(e.live);
    return e;
  }

  void mark_shard(std::size_t shard, Epoch& e) {
    std::unordered_set<NodeRef> visited;
    store_->version_manager().for_each_blob_in_shard(
        shard, [&](const BlobMeta& meta) {
          for (const VersionInfo& v : meta.versions) {
            // root == 0 covers tombstones and pending (async-reserved)
            // slots: an in-flight drain's version has no tree yet; its
            // chunk references are protected by the reducer's pins and the
            // epoch hit log, and its freshly-stored chunks are above the
            // horizon, so the sweep can never touch them.
            if (v.pending || v.root == 0) continue;
            if (meta.id == e.blob && v.id < e.keep_from) continue;  // dropped
            mark_live(v.root, e.live, visited);
          }
        });
  }

  void collect_candidates(Epoch& e) {
    std::unordered_set<NodeRef> visited;
    const BlobMeta& target = store_->version_manager().peek(e.blob);
    for (const VersionInfo& v : target.versions) {
      if (v.pending || v.root == 0 || v.id >= e.keep_from) continue;
      collect_chunks(v.root, e.dropped, visited);
    }
  }

  void finalize(Epoch& e) {
    // Fresh pins + the epoch hit log (the indexes surface logged hits
    // through the same pin-source interface).
    store_->collect_pinned_chunks(e.live);
    std::vector<ChunkId> swept_ids;
    for (const auto& [cid, loc] : e.dropped) {
      // Reference check before reclaiming: with cloning and content-
      // addressed dedup a chunk may back leaves of many trees, so it is
      // reclaimable only when no live version of any blob reaches it.
      if (e.live.count(cid) != 0) {
        ++e.result.chunks_kept_shared;
        continue;
      }
      if (cid >= e.horizon) {
        ++e.result.deferred_post_epoch;
        continue;
      }
      e.swept.push_back(loc);
      swept_ids.push_back(cid);
    }
    store_->version_manager().drop_version_records(e.blob, e.keep_from);
    // De-index BEFORE any erase (and before the concurrent sweep's first
    // yield): a dedup hit on a doomed chunk after this point is impossible,
    // so the batched erases need no further liveness re-checks. This also
    // covers node-loss-orphaned chunks that have no replica left to erase.
    store_->notify_chunks_reclaimed(swept_ids);
    store_->notify_gc_epoch(false);
  }

  void erase_range(Epoch& e, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const ChunkLocation& loc = e.swept[i];
      bool erased_any = false;
      for (const net::NodeId node : loc.replicas) {
        if (DataProvider* p = store_->provider_at(node)) {
          erased_any = p->erase(loc.id) || erased_any;
        }
      }
      if (erased_any) {
        ++e.result.chunks_deleted;
        e.result.reclaimed_bytes += loc.size;
      }
    }
  }

  void mark_live(NodeRef ref, std::unordered_set<ChunkId>& live,
                 std::unordered_set<NodeRef>& visited) {
    if (ref == 0 || !visited.insert(ref).second) return;
    const TreeNode* node = store_->metadata().peek_node(ref);
    if (node == nullptr) return;
    if (node->leaf) {
      if (node->chunk.id != 0) live.insert(node->chunk.id);
      return;
    }
    mark_live(node->left, live, visited);
    mark_live(node->right, live, visited);
  }

  void collect_chunks(NodeRef ref,
                      std::unordered_map<ChunkId, ChunkLocation>& out,
                      std::unordered_set<NodeRef>& visited) {
    if (ref == 0 || !visited.insert(ref).second) return;
    const TreeNode* node = store_->metadata().peek_node(ref);
    if (node == nullptr) return;
    if (node->leaf) {
      // id 0 marks zero-suppressed (payload-free) leaves: nothing to sweep.
      if (node->chunk.id != 0) out[node->chunk.id] = node->chunk;
      return;
    }
    collect_chunks(node->left, out, visited);
    collect_chunks(node->right, out, visited);
  }

  BlobStore* store_;
};

}  // namespace blobcr::blob
