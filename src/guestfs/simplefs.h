// SimpleFs: the guest operating system's file system, implemented for real
// over a BlockDevice.
//
// Why a real file system: BlobCR's headline property is that a disk snapshot
// captures (and a restore rolls back) every file-system modification. That
// is only a meaningful claim if files actually live in device blocks: data
// blocks through a write-back page cache, metadata (superblock, inodes,
// directories, allocation map) serialized to a reserved region on sync().
// Mounting the block device that a snapshot restored must recover exactly
// the synced state — nothing in this module keeps host-side shadow state.
//
// Layout:  [ block 0: superblock | metadata region | data blocks ]
// The metadata region and data region are aligned to `region_align_bytes`
// (default 256 KiB) so image-level COW units never straddle real metadata
// and possibly-phantom data.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/rangeset.h"
#include "common/rng.h"
#include "img/block_device.h"
#include "sim/sim.h"

namespace blobcr::guestfs {

using Ino = std::uint32_t;
using Fd = std::int32_t;

class FsError : public std::runtime_error {
 public:
  explicit FsError(const std::string& what) : std::runtime_error(what) {}
};

struct FsConfig {
  std::uint32_t block_size = 4096;
  std::uint32_t metadata_blocks = 512;  // 2 MiB of metadata space
  std::uint64_t region_align_bytes = 256 * 1024;
  /// After creating a file, jump the next-fit allocation cursor by a random
  /// stride up to this many blocks — mimics block-group spreading of real
  /// file systems (drives the paper's snapshot-granularity overhead).
  std::uint32_t alloc_scatter_blocks = 0;
  std::uint64_t scatter_seed = 0x5ca7732dULL;
};

struct FileStat {
  Ino ino = 0;
  bool is_dir = false;
  std::uint64_t size = 0;
  std::size_t extent_count = 0;
};

class SimpleFs {
 public:
  /// Formats the device. Destroys any previous content.
  static sim::Task<> mkfs(img::BlockDevice& dev, FsConfig cfg);

  /// Mounts a formatted device by decoding the on-disk metadata.
  static sim::Task<std::unique_ptr<SimpleFs>> mount(img::BlockDevice& dev);

  // --- namespace operations (cached metadata; durable after sync()) ---
  bool exists(const std::string& path) const;
  FileStat stat(const std::string& path) const;
  void mkdir(const std::string& path);
  std::vector<std::string> readdir(const std::string& path) const;
  void unlink(const std::string& path);

  /// Opens a file; creates it if `create`. Returns a file descriptor whose
  /// cursor starts at 0 (or end if `append_mode`).
  Fd open(const std::string& path, bool create = false,
          bool append_mode = false);
  void close(Fd fd);

  // --- data operations ---
  sim::Task<> write(Fd fd, common::Buffer data);  // at cursor
  sim::Task<> pwrite(Fd fd, std::uint64_t offset, common::Buffer data);
  sim::Task<common::Buffer> read(Fd fd, std::uint64_t len);  // at cursor
  sim::Task<common::Buffer> pread(Fd fd, std::uint64_t offset,
                                  std::uint64_t len);
  void seek(Fd fd, std::uint64_t offset);
  std::uint64_t file_size(Fd fd) const;

  /// Convenience wrappers.
  sim::Task<> write_file(const std::string& path, common::Buffer data);
  sim::Task<common::Buffer> read_file(const std::string& path);

  /// Flushes dirty pages and metadata to the device (the guest's sync(2)).
  sim::Task<> sync();

  bool dirty() const { return !dirty_blocks_.empty() || meta_dirty_; }
  std::uint64_t cached_bytes() const;
  const FsConfig& config() const { return cfg_; }
  std::uint64_t data_start_block() const { return data_start_; }
  std::uint64_t total_blocks() const { return total_blocks_; }

 private:
  struct Inode {
    Ino ino = 0;
    bool dir = false;
    std::uint64_t size = 0;
    std::vector<common::Range> extents;       // physical block ranges
    std::map<std::string, Ino> entries;       // dir only
    std::uint64_t blocks() const {
      std::uint64_t n = 0;
      for (const auto& e : extents) n += e.length();
      return n;
    }
  };

  explicit SimpleFs(img::BlockDevice& dev) : dev_(&dev) {}

  common::Buffer encode_metadata() const;
  void decode_metadata(const common::Buffer& blob);

  Inode& inode_of_path(const std::string& path);
  const Inode& inode_of_path(const std::string& path) const;
  Inode* resolve(const std::string& path);
  const Inode* resolve(const std::string& path) const;
  std::pair<Inode*, std::string> resolve_parent(const std::string& path);

  /// Logical byte offset -> physical block number for an inode.
  std::uint64_t physical_block(const Inode& ino, std::uint64_t logical_block)
      const;
  /// Grows the inode to cover `blocks` logical blocks.
  void ensure_blocks(Inode& ino, std::uint64_t blocks);
  std::uint64_t allocate_block();
  void free_blocks(Inode& ino);

  sim::Task<common::Buffer> load_block(std::uint64_t block);
  sim::Task<> flush_dirty_pages();

  img::BlockDevice* dev_;
  FsConfig cfg_;
  std::uint64_t total_blocks_ = 0;
  std::uint64_t data_start_ = 0;
  common::RangeSet allocated_;  // physical data blocks in use
  std::uint64_t next_fit_ = 0;
  common::Rng scatter_rng_{0};

  std::map<Ino, Inode> inodes_;
  Ino next_ino_ = 2;  // 1 = root
  bool meta_dirty_ = false;

  // Write-back page cache: absolute block -> payload.
  std::map<std::uint64_t, common::Buffer> pages_;
  common::RangeSet dirty_blocks_;

  struct OpenFile {
    Ino ino = 0;
    std::uint64_t cursor = 0;
  };
  std::map<Fd, OpenFile> fds_;
  Fd next_fd_ = 3;
};

}  // namespace blobcr::guestfs
