#include "guestfs/simplefs.h"

#include <algorithm>
#include <cassert>

#include "common/codec.h"
#include "common/strutil.h"

namespace blobcr::guestfs {

namespace {
constexpr std::uint64_t kMagic = 0xb10bc2f5'0001ULL;

std::vector<std::string> path_parts(const std::string& path) {
  std::vector<std::string> parts;
  for (const std::string& p : common::split(path, '/')) {
    if (!p.empty()) parts.push_back(p);
  }
  return parts;
}

std::uint64_t align_up(std::uint64_t v, std::uint64_t align) {
  return (v + align - 1) / align * align;
}
}  // namespace

sim::Task<> SimpleFs::mkfs(img::BlockDevice& dev, FsConfig cfg) {
  SimpleFs fs(dev);
  fs.cfg_ = cfg;
  fs.total_blocks_ = dev.capacity() / cfg.block_size;
  const std::uint64_t meta_end_bytes =
      (1ULL + cfg.metadata_blocks) * cfg.block_size;
  fs.data_start_ =
      align_up(meta_end_bytes, cfg.region_align_bytes) / cfg.block_size;
  if (fs.data_start_ >= fs.total_blocks_) throw FsError("device too small");
  fs.next_fit_ = fs.data_start_;
  fs.scatter_rng_ = common::Rng(cfg.scatter_seed);

  Inode root;
  root.ino = 1;
  root.dir = true;
  fs.inodes_[1] = std::move(root);
  fs.meta_dirty_ = true;
  co_await fs.sync();
}

sim::Task<std::unique_ptr<SimpleFs>> SimpleFs::mount(img::BlockDevice& dev) {
  auto fs = std::unique_ptr<SimpleFs>(new SimpleFs(dev));
  // Superblock.
  common::Buffer sb = co_await dev.read(0, 4096);
  common::ByteReader r(sb);
  if (r.u64() != kMagic) throw FsError("bad superblock magic");
  fs->cfg_.block_size = r.u32();
  fs->cfg_.metadata_blocks = r.u32();
  fs->cfg_.region_align_bytes = r.u64();
  fs->cfg_.alloc_scatter_blocks = r.u32();
  fs->cfg_.scatter_seed = r.u64();
  fs->total_blocks_ = r.u64();
  fs->data_start_ = r.u64();
  const std::uint64_t meta_len = r.u64();
  fs->scatter_rng_ = common::Rng(fs->cfg_.scatter_seed);
  fs->next_fit_ = fs->data_start_;

  if (meta_len > 0) {
    common::Buffer blob =
        co_await dev.read(fs->cfg_.block_size, meta_len);
    fs->decode_metadata(blob);
  }
  co_return fs;
}

common::Buffer SimpleFs::encode_metadata() const {
  common::ByteWriter w;
  w.u32(next_ino_);
  w.u32(static_cast<std::uint32_t>(inodes_.size()));
  for (const auto& [ino, node] : inodes_) {
    w.u32(node.ino);
    w.u8(node.dir ? 1 : 0);
    w.u64(node.size);
    w.u32(static_cast<std::uint32_t>(node.extents.size()));
    for (const common::Range& e : node.extents) {
      w.u64(e.begin);
      w.u64(e.end);
    }
    w.u32(static_cast<std::uint32_t>(node.entries.size()));
    for (const auto& [name, child] : node.entries) {
      w.str(name);
      w.u32(child);
    }
  }
  const auto allocated = allocated_.to_vector();
  w.u32(static_cast<std::uint32_t>(allocated.size()));
  for (const common::Range& a : allocated) {
    w.u64(a.begin);
    w.u64(a.end);
  }
  return const_cast<common::ByteWriter&>(w).take();
}

void SimpleFs::decode_metadata(const common::Buffer& blob) {
  common::ByteReader r(blob);
  next_ino_ = r.u32();
  const std::uint32_t n_inodes = r.u32();
  inodes_.clear();
  for (std::uint32_t i = 0; i < n_inodes; ++i) {
    Inode node;
    node.ino = r.u32();
    node.dir = (r.u8() != 0);
    node.size = r.u64();
    const std::uint32_t n_ext = r.u32();
    for (std::uint32_t e = 0; e < n_ext; ++e) {
      const std::uint64_t begin = r.u64();
      const std::uint64_t end = r.u64();
      node.extents.push_back({begin, end});
    }
    const std::uint32_t n_ent = r.u32();
    for (std::uint32_t e = 0; e < n_ent; ++e) {
      std::string name = r.str();
      const Ino child = r.u32();
      node.entries[std::move(name)] = child;
    }
    inodes_[node.ino] = std::move(node);
  }
  allocated_.clear();
  const std::uint32_t n_alloc = r.u32();
  for (std::uint32_t i = 0; i < n_alloc; ++i) {
    const std::uint64_t begin = r.u64();
    const std::uint64_t end = r.u64();
    allocated_.insert(begin, end);
  }
}

// --- namespace ---------------------------------------------------------------

SimpleFs::Inode* SimpleFs::resolve(const std::string& path) {
  Inode* cur = &inodes_.at(1);
  for (const std::string& part : path_parts(path)) {
    if (!cur->dir) return nullptr;
    const auto it = cur->entries.find(part);
    if (it == cur->entries.end()) return nullptr;
    cur = &inodes_.at(it->second);
  }
  return cur;
}

const SimpleFs::Inode* SimpleFs::resolve(const std::string& path) const {
  return const_cast<SimpleFs*>(this)->resolve(path);
}

std::pair<SimpleFs::Inode*, std::string> SimpleFs::resolve_parent(
    const std::string& path) {
  auto parts = path_parts(path);
  if (parts.empty()) throw FsError("bad path: " + path);
  const std::string leaf = parts.back();
  parts.pop_back();
  Inode* cur = &inodes_.at(1);
  for (const std::string& part : parts) {
    if (!cur->dir) throw FsError("not a directory in: " + path);
    const auto it = cur->entries.find(part);
    if (it == cur->entries.end())
      throw FsError("no such directory in: " + path);
    cur = &inodes_.at(it->second);
  }
  if (!cur->dir) throw FsError("not a directory: " + path);
  return {cur, leaf};
}

bool SimpleFs::exists(const std::string& path) const {
  return resolve(path) != nullptr;
}

FileStat SimpleFs::stat(const std::string& path) const {
  const Inode* node = resolve(path);
  if (node == nullptr) throw FsError("no such file: " + path);
  return FileStat{node->ino, node->dir, node->size, node->extents.size()};
}

void SimpleFs::mkdir(const std::string& path) {
  auto [parent, leaf] = resolve_parent(path);
  if (parent->entries.count(leaf) != 0) throw FsError("exists: " + path);
  Inode node;
  node.ino = next_ino_++;
  node.dir = true;
  parent->entries[leaf] = node.ino;
  inodes_[node.ino] = std::move(node);
  meta_dirty_ = true;
}

std::vector<std::string> SimpleFs::readdir(const std::string& path) const {
  const Inode* node = resolve(path);
  if (node == nullptr || !node->dir) throw FsError("not a directory: " + path);
  std::vector<std::string> names;
  names.reserve(node->entries.size());
  for (const auto& [name, ino] : node->entries) names.push_back(name);
  return names;
}

void SimpleFs::unlink(const std::string& path) {
  auto [parent, leaf] = resolve_parent(path);
  const auto it = parent->entries.find(leaf);
  if (it == parent->entries.end()) throw FsError("no such file: " + path);
  Inode& node = inodes_.at(it->second);
  if (node.dir && !node.entries.empty()) throw FsError("directory not empty");
  free_blocks(node);
  inodes_.erase(node.ino);
  parent->entries.erase(it);
  meta_dirty_ = true;
}

Fd SimpleFs::open(const std::string& path, bool create, bool append_mode) {
  Inode* node = resolve(path);
  if (node == nullptr) {
    if (!create) throw FsError("no such file: " + path);
    auto [parent, leaf] = resolve_parent(path);
    Inode fresh;
    fresh.ino = next_ino_++;
    parent->entries[leaf] = fresh.ino;
    const Ino ino = fresh.ino;
    inodes_[ino] = std::move(fresh);
    node = &inodes_.at(ino);
    meta_dirty_ = true;
    // Scatter the allocation cursor like block-group placement would.
    if (cfg_.alloc_scatter_blocks > 0) {
      next_fit_ = data_start_ +
                  (next_fit_ - data_start_ +
                   scatter_rng_.uniform(cfg_.alloc_scatter_blocks)) %
                      std::max<std::uint64_t>(1, total_blocks_ - data_start_);
    }
  }
  if (node->dir) throw FsError("is a directory: " + path);
  const Fd fd = next_fd_++;
  fds_[fd] = OpenFile{node->ino, append_mode ? node->size : 0};
  return fd;
}

void SimpleFs::close(Fd fd) { fds_.erase(fd); }

void SimpleFs::seek(Fd fd, std::uint64_t offset) {
  fds_.at(fd).cursor = offset;
}

std::uint64_t SimpleFs::file_size(Fd fd) const {
  return inodes_.at(fds_.at(fd).ino).size;
}

// --- allocation ----------------------------------------------------------------

std::uint64_t SimpleFs::allocate_block() {
  const std::uint64_t span = total_blocks_ - data_start_;
  for (std::uint64_t probe = 0; probe < span; ++probe) {
    std::uint64_t b = next_fit_ + probe;
    if (b >= total_blocks_) b = data_start_ + (b - total_blocks_);
    if (!allocated_.intersects(b, b + 1)) {
      allocated_.insert(b, b + 1);
      next_fit_ = b + 1 >= total_blocks_ ? data_start_ : b + 1;
      return b;
    }
  }
  throw FsError("file system full");
}

void SimpleFs::ensure_blocks(Inode& ino, std::uint64_t blocks) {
  while (ino.blocks() < blocks) {
    std::uint64_t need = blocks - ino.blocks();
    // Extent-based allocation (ext4-style): large requests search for a
    // contiguous free run at/after the cursor instead of filling small
    // holes left by scattered small files.
    if (need > 8) {
      const auto gaps = allocated_.gaps(data_start_, total_blocks_);
      const common::Range* chosen = nullptr;
      for (const common::Range& g : gaps) {  // first fitting gap after cursor
        if (g.end > next_fit_ && g.length() >= need) {
          chosen = &g;
          break;
        }
      }
      if (chosen == nullptr) {  // otherwise the largest gap anywhere
        for (const common::Range& g : gaps) {
          if (chosen == nullptr || g.length() > chosen->length()) chosen = &g;
        }
      }
      if (chosen == nullptr) throw FsError("file system full");
      const std::uint64_t begin = std::max(chosen->begin, next_fit_) < chosen->end &&
                                          std::max(chosen->begin, next_fit_) +
                                                  need <=
                                              chosen->end
                                      ? std::max(chosen->begin, next_fit_)
                                      : chosen->begin;
      const std::uint64_t take = std::min(need, chosen->end - begin);
      allocated_.insert(begin, begin + take);
      next_fit_ = begin + take >= total_blocks_ ? data_start_ : begin + take;
      if (!ino.extents.empty() && ino.extents.back().end == begin) {
        ino.extents.back().end = begin + take;
      } else {
        ino.extents.push_back({begin, begin + take});
      }
      meta_dirty_ = true;
      continue;
    }
    const std::uint64_t b = allocate_block();
    if (!ino.extents.empty() && ino.extents.back().end == b) {
      ino.extents.back().end = b + 1;  // grow the tail extent
    } else {
      ino.extents.push_back({b, b + 1});
    }
    meta_dirty_ = true;
  }
}

void SimpleFs::free_blocks(Inode& ino) {
  for (const common::Range& e : ino.extents) {
    allocated_.erase(e.begin, e.end);
    dirty_blocks_.erase(e.begin, e.end);
    for (std::uint64_t b = e.begin; b < e.end; ++b) pages_.erase(b);
  }
  ino.extents.clear();
  ino.size = 0;
  meta_dirty_ = true;
}

std::uint64_t SimpleFs::physical_block(const Inode& ino,
                                       std::uint64_t logical_block) const {
  std::uint64_t remaining = logical_block;
  for (const common::Range& e : ino.extents) {
    if (remaining < e.length()) return e.begin + remaining;
    remaining -= e.length();
  }
  throw FsError("logical block out of range");
}

// --- data path -------------------------------------------------------------------

sim::Task<common::Buffer> SimpleFs::load_block(std::uint64_t block) {
  const auto it = pages_.find(block);
  if (it != pages_.end()) co_return it->second;
  common::Buffer page =
      co_await dev_->read(block * cfg_.block_size, cfg_.block_size);
  if (page.size() < cfg_.block_size && !page.is_phantom())
    page.resize(cfg_.block_size);
  pages_[block] = page;
  co_return page;
}

sim::Task<> SimpleFs::pwrite(Fd fd, std::uint64_t offset,
                             common::Buffer data) {
  const std::uint64_t bs = cfg_.block_size;
  Inode& node = inodes_.at(fds_.at(fd).ino);
  const std::uint64_t len = data.size();
  if (len == 0) co_return;
  const std::uint64_t old_size = node.size;
  ensure_blocks(node, (offset + len + bs - 1) / bs);

  for (std::uint64_t pos = offset; pos < offset + len;) {
    const std::uint64_t lblock = pos / bs;
    const std::uint64_t within = pos - lblock * bs;
    const std::uint64_t piece = std::min(bs - within, offset + len - pos);
    const std::uint64_t pblock = physical_block(node, lblock);
    if (within == 0 && piece == bs) {
      pages_[pblock] = data.slice(pos - offset, bs);
    } else {
      common::Buffer page;
      const bool had_content = lblock * bs < old_size;
      if (had_content) {
        page = co_await load_block(pblock);
      } else {
        page = common::Buffer::zeros(bs);
      }
      if (page.size() < bs) page.resize(bs);
      page.overwrite(within, data.slice(pos - offset, piece));
      pages_[pblock] = std::move(page);
    }
    dirty_blocks_.insert(pblock, pblock + 1);
    pos += piece;
  }
  if (offset + len > node.size) {
    node.size = offset + len;
    meta_dirty_ = true;
  }
}

sim::Task<> SimpleFs::write(Fd fd, common::Buffer data) {
  const std::uint64_t at = fds_.at(fd).cursor;
  const std::uint64_t n = data.size();
  co_await pwrite(fd, at, std::move(data));
  fds_.at(fd).cursor = at + n;
}

sim::Task<common::Buffer> SimpleFs::pread(Fd fd, std::uint64_t offset,
                                          std::uint64_t len) {
  const std::uint64_t bs = cfg_.block_size;
  const Inode& node = inodes_.at(fds_.at(fd).ino);
  if (offset >= node.size) co_return common::Buffer();
  len = std::min(len, node.size - offset);

  // Pass 1: populate the page cache with batched device reads — one read
  // per physically-contiguous run of uncached blocks (large files are laid
  // out in few extents, so a big read costs a handful of device ops, not
  // one per 4 KiB block).
  const std::uint64_t lb_first = offset / bs;
  const std::uint64_t lb_last = (offset + len + bs - 1) / bs;
  std::uint64_t logical_base = 0;
  for (const common::Range& e : node.extents) {
    const std::uint64_t e_blocks = e.length();
    const std::uint64_t lo = std::max(lb_first, logical_base);
    const std::uint64_t hi = std::min(lb_last, logical_base + e_blocks);
    if (lo < hi) {
      const std::uint64_t p0 = e.begin + (lo - logical_base);
      const std::uint64_t count = hi - lo;
      std::uint64_t i = 0;
      while (i < count) {
        if (pages_.find(p0 + i) != pages_.end()) {
          ++i;
          continue;
        }
        std::uint64_t j = i + 1;
        while (j < count && pages_.find(p0 + j) == pages_.end()) ++j;
        common::Buffer run =
            co_await dev_->read((p0 + i) * bs, (j - i) * bs);
        if (run.size() < (j - i) * bs) run.resize((j - i) * bs);
        for (std::uint64_t k = i; k < j; ++k) {
          pages_[p0 + k] = run.slice((k - i) * bs, bs);
        }
        i = j;
      }
    }
    logical_base += e_blocks;
    if (logical_base >= lb_last) break;
  }

  // Pass 2: assemble from the (now warm) page cache.
  common::Buffer out;
  for (std::uint64_t pos = offset; pos < offset + len;) {
    const std::uint64_t lblock = pos / bs;
    const std::uint64_t within = pos - lblock * bs;
    const std::uint64_t piece = std::min(bs - within, offset + len - pos);
    const std::uint64_t pblock = physical_block(node, lblock);
    common::Buffer& page = pages_.at(pblock);
    if (page.size() < within + piece) page.resize(within + piece);
    out.append(page.slice(within, piece));
    pos += piece;
  }
  co_return out;
}

sim::Task<common::Buffer> SimpleFs::read(Fd fd, std::uint64_t len) {
  const std::uint64_t at = fds_.at(fd).cursor;
  common::Buffer out = co_await pread(fd, at, len);
  fds_.at(fd).cursor = at + out.size();
  co_return out;
}

sim::Task<> SimpleFs::write_file(const std::string& path,
                                 common::Buffer data) {
  const Fd fd = open(path, /*create=*/true);
  Inode& node = inodes_.at(fds_.at(fd).ino);
  if (node.size > 0) free_blocks(node);  // truncate
  co_await pwrite(fd, 0, std::move(data));
  close(fd);
}

sim::Task<common::Buffer> SimpleFs::read_file(const std::string& path) {
  const Fd fd = open(path);
  common::Buffer out = co_await pread(fd, 0, file_size(fd));
  close(fd);
  co_return out;
}

sim::Task<> SimpleFs::flush_dirty_pages() {
  // Coalesce adjacent dirty blocks into single device writes; piecewise
  // buffers keep real and phantom pages distinct within one write.
  const auto ranges = dirty_blocks_.to_vector();
  dirty_blocks_.clear();
  const std::uint64_t bs = cfg_.block_size;
  for (const common::Range& r : ranges) {
    common::Buffer run;
    for (std::uint64_t b = r.begin; b < r.end; ++b) {
      common::Buffer page = pages_.at(b);
      if (page.size() < bs) page.resize(bs);
      run.append(page);
    }
    co_await dev_->write(r.begin * bs, std::move(run));
  }
}

sim::Task<> SimpleFs::sync() {
  co_await flush_dirty_pages();
  if (meta_dirty_) {
    common::Buffer blob = encode_metadata();
    if (blob.size() > static_cast<std::uint64_t>(cfg_.metadata_blocks) *
                          cfg_.block_size) {
      throw FsError("metadata region overflow");
    }
    common::ByteWriter sb;
    sb.u64(kMagic);
    sb.u32(cfg_.block_size);
    sb.u32(cfg_.metadata_blocks);
    sb.u64(cfg_.region_align_bytes);
    sb.u32(cfg_.alloc_scatter_blocks);
    sb.u64(cfg_.scatter_seed);
    sb.u64(total_blocks_);
    sb.u64(data_start_);
    sb.u64(blob.size());
    common::Buffer sb_block = sb.take();
    sb_block.resize(cfg_.block_size);
    co_await dev_->write(0, std::move(sb_block));
    co_await dev_->write(cfg_.block_size, std::move(blob));
    meta_dirty_ = false;
  }
  co_await dev_->flush();
}

std::uint64_t SimpleFs::cached_bytes() const {
  return pages_.size() * cfg_.block_size;
}

}  // namespace blobcr::guestfs
