// Snapshot data-reduction subsystem: configuration and counters.
//
// BlobCR's incremental commits already ship only dirty chunks; this
// subsystem shrinks what a dirty chunk *costs*. Three stages run on the
// commit path, between the mirroring module's COMMIT ioctl and the
// BlobSeer-style store's chunk pipeline:
//
//  * zero suppression — an all-zero chunk becomes a metadata-only hole
//    (the store already reads holes as zeros, so nothing ships or stores);
//  * content-addressed dedup — a chunk whose content already lives in the
//    repository (written by another rank, by a previous snapshot version, or
//    earlier in the same commit) is recorded as a reference to the existing
//    chunk instead of being re-stored;
//  * compression — real payloads go through an actual RLE transform (honest
//    byte accounting: what ships is what was encoded); phantom payloads use
//    a configurable ratio model so large sweeps keep their memory-free
//    bookkeeping.
//
// Stats distinguish raw (pre-reduction), shipped (sent to providers, before
// replication) and the per-stage savings, so benches can plot Fig.4-style
// curves with reduction on/off.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.h"

namespace blobcr::reduce {

struct ReductionConfig {
  /// Master switch: when false the commit path is byte-for-byte the
  /// unreduced pipeline (no digesting, no index, no transforms).
  bool enabled = false;
  /// Suppress all-zero chunks into metadata-only holes.
  bool zero_suppression = true;
  /// Content-addressed dedup across ranks, versions and within a commit.
  /// Only fully-real payloads are deduped: a phantom payload's digest is
  /// length-derived, so deduping it would fabricate savings.
  bool dedup = true;
  /// Repository-scoped digest index: every deployment (job) checkpointing
  /// into the same Cloud dedups against every other's committed chunks —
  /// shared base images and shared input datasets store once across jobs.
  /// false falls back to an isolated per-deployment index (the pre-multi-
  /// tenant behavior; the multitenant ablation's baseline).
  bool shared_index = true;
  /// Compress chunk payloads (RLE for real payloads, ratio model for pure
  /// phantom payloads). Off by default: the paper's workloads are random
  /// data, where compression only adds cost.
  bool compression = false;
  /// Stored-size ratio applied to pure-phantom payloads when compression is
  /// on (models the app-data compressibility the simulation cannot see).
  double phantom_compression_ratio = 0.6;
  /// Simulated digest throughput in bytes/s (0 = free). Charged per raw
  /// chunk byte on the committing node before placement.
  double digest_bps = 0;
  /// Simulated compression throughput in bytes/s (0 = free).
  double compress_bps = 0;
  /// Digest-index shards: the key space is hash-partitioned into this many
  /// independent slices, each with its own stats and (with a lookup cost)
  /// its own fair request queue. Routing depends only on content identity,
  /// so cross-tenant dedup is unaffected by the shard count.
  std::size_t index_shards = 8;
  /// Simulated service cost of one index lookup at its shard's queue
  /// (0 = in-process, free — the pre-sharding timing model; the tenant-
  /// scale ablation sets this nonzero to expose metadata-plane contention).
  sim::Duration index_lookup_cost = 0;
};

struct ReductionStats {
  std::uint64_t chunks_total = 0;   // chunks entering the pipeline
  std::uint64_t raw_bytes = 0;      // pre-reduction payload
  std::uint64_t shipped_bytes = 0;  // payload stored (pre-replication)
  std::uint64_t zero_chunks = 0;
  std::uint64_t zero_bytes = 0;        // raw bytes suppressed as holes
  std::uint64_t dedup_hits = 0;        // chunks resolved to existing content
  std::uint64_t dedup_bytes = 0;       // raw bytes saved by dedup
  std::uint64_t compressed_chunks = 0; // chunks stored in compressed form
  std::uint64_t compress_saved_bytes = 0;

  double dedup_hit_rate() const {
    return chunks_total == 0
               ? 0.0
               : static_cast<double>(dedup_hits) /
                     static_cast<double>(chunks_total);
  }
  /// shipped / raw (1.0 = no reduction).
  double shipped_ratio() const {
    return raw_bytes == 0
               ? 1.0
               : static_cast<double>(shipped_bytes) /
                     static_cast<double>(raw_bytes);
  }

  friend ReductionStats operator-(ReductionStats a, const ReductionStats& b) {
    a.chunks_total -= b.chunks_total;
    a.raw_bytes -= b.raw_bytes;
    a.shipped_bytes -= b.shipped_bytes;
    a.zero_chunks -= b.zero_chunks;
    a.zero_bytes -= b.zero_bytes;
    a.dedup_hits -= b.dedup_hits;
    a.dedup_bytes -= b.dedup_bytes;
    a.compressed_chunks -= b.compressed_chunks;
    a.compress_saved_bytes -= b.compress_saved_bytes;
    return a;
  }
};

}  // namespace blobcr::reduce
