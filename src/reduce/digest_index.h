// ChunkDigestIndex: content-addressed index over stored chunks (keyed on
// the FNV-1a content digest from common/digest.h via Buffer::digest,
// qualified by the raw chunk length). Repository-scoped by default
// (ReductionConfig::shared_index, Cloud-owned) so a chunk one tenant
// committed is a dedup hit for every rank of every job and for every later
// snapshot version; shared_index = false gives each deployment a private
// index (the isolated-baseline ablation).
//
// Entries are recorded only after a chunk reached all of its replicas
// (CommitReducer::committed), so the index never references in-flight data.
// The garbage collector invalidates entries whose chunks it reclaims through
// BlobStore's reclaim hooks; a stale hit after GC would silently resurrect a
// deleted chunk.
//
// Collision caveat: a cross-commit hit is trusted on (64-bit FNV-1a digest,
// raw length) equality alone — the indexed payload lives on remote
// providers, so byte verification would cost the very transfer dedup
// exists to avoid. FNV-1a is not collision-resistant; a colliding pair of
// same-length chunks would silently alias, corrupting one on read-back.
// That is accepted for this simulator (synthetic checkpoint content); a
// production store would key on a cryptographic digest. Intra-commit
// aliases, where both payloads are in memory, ARE byte-verified by
// BlobClient before collapsing.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "blob/types.h"
#include "common/rng.h"

namespace blobcr::reduce {

class ChunkDigestIndex {
 public:
  struct Key {
    std::uint64_t digest = 0;
    std::uint32_t raw_size = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return static_cast<std::size_t>(
          common::mix64(k.digest ^ (static_cast<std::uint64_t>(k.raw_size)
                                    << 32)));
    }
  };

  /// Location of an already-stored chunk with this content, or nullptr.
  const blob::ChunkLocation* lookup(std::uint64_t digest,
                                    std::uint32_t raw_size) const {
    const auto it = entries_.find(Key{digest, raw_size});
    return it == entries_.end() ? nullptr : &it->second.front();
  }

  /// Records a stored chunk. Lookups serve the first recorded location, but
  /// later same-content chunks (concurrent ranks can store the same content
  /// twice) are kept as fallbacks: forgetting one copy — a failed commit
  /// withdrawing its orphans, or the GC reclaiming — must not de-index
  /// content that still lives at another chunk.
  void record(std::uint64_t digest, std::uint32_t raw_size,
              const blob::ChunkLocation& loc) {
    const Key key{digest, raw_size};
    if (!by_chunk_.try_emplace(loc.id, key).second) return;  // known chunk
    // Stamp the content digest on the indexed location: dedup Refs copy it
    // into their leaves, so the restart data plane can recognize identical
    // content across ChunkIds (peer exchange / decoded-chunk cache keys).
    blob::ChunkLocation stamped = loc;
    stamped.digest = digest;
    entries_[key].push_back(std::move(stamped));
  }

  /// Invalidation (GC reclaim, failed-commit withdrawal): drops every
  /// location whose chunk is gone; remaining same-content fallbacks keep
  /// serving lookups.
  void forget_chunks(const std::vector<blob::ChunkId>& ids) {
    for (const blob::ChunkId id : ids) {
      const auto it = by_chunk_.find(id);
      if (it == by_chunk_.end()) continue;
      const auto e = entries_.find(it->second);
      if (e != entries_.end()) {
        auto& locs = e->second;
        locs.erase(std::remove_if(
                       locs.begin(), locs.end(),
                       [id](const blob::ChunkLocation& l) { return l.id == id; }),
                   locs.end());
        if (locs.empty()) entries_.erase(e);
      }
      by_chunk_.erase(it);
    }
  }

  std::size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<Key, std::vector<blob::ChunkLocation>, KeyHash> entries_;
  std::unordered_map<blob::ChunkId, Key> by_chunk_;
};

}  // namespace blobcr::reduce
