// ChunkDigestIndex: deployment-scoped content-addressed index over stored
// chunks (keyed on the FNV-1a content digest from common/digest.h via
// Buffer::digest, qualified by the raw chunk length). Shared by every
// mirroring module of a deployment — like the PrefetchBus — so a chunk one
// rank committed is a dedup hit for every other rank and for every later
// snapshot version.
//
// Entries are recorded only after a chunk reached all of its replicas
// (CommitReducer::committed), so the index never references in-flight data.
// The garbage collector invalidates entries whose chunks it reclaims through
// BlobStore's reclaim hooks; a stale hit after GC would silently resurrect a
// deleted chunk.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "blob/types.h"
#include "common/rng.h"

namespace blobcr::reduce {

class ChunkDigestIndex {
 public:
  struct Key {
    std::uint64_t digest = 0;
    std::uint32_t raw_size = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return static_cast<std::size_t>(
          common::mix64(k.digest ^ (static_cast<std::uint64_t>(k.raw_size)
                                    << 32)));
    }
  };

  /// Location of an already-stored chunk with this content, or nullptr.
  const blob::ChunkLocation* lookup(std::uint64_t digest,
                                    std::uint32_t raw_size) const {
    const auto it = entries_.find(Key{digest, raw_size});
    return it == entries_.end() ? nullptr : &it->second;
  }

  /// Records a stored chunk. First writer wins: concurrent ranks may store
  /// the same content twice; later lookups keep returning one location.
  void record(std::uint64_t digest, std::uint32_t raw_size,
              const blob::ChunkLocation& loc) {
    const Key key{digest, raw_size};
    const auto [it, fresh] = entries_.try_emplace(key, loc);
    if (fresh) by_chunk_.emplace(loc.id, key);
  }

  /// GC invalidation: drops every entry whose chunk was reclaimed.
  void forget_chunks(const std::vector<blob::ChunkId>& ids) {
    for (const blob::ChunkId id : ids) {
      const auto it = by_chunk_.find(id);
      if (it == by_chunk_.end()) continue;
      entries_.erase(it->second);
      by_chunk_.erase(it);
    }
  }

  std::size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<Key, blob::ChunkLocation, KeyHash> entries_;
  std::unordered_map<blob::ChunkId, Key> by_chunk_;
};

}  // namespace blobcr::reduce
