// ChunkDigestIndex: content-addressed index over stored chunks (keyed on
// the FNV-1a content digest from common/digest.h via Buffer::digest,
// qualified by the raw chunk length). Repository-scoped by default
// (ReductionConfig::shared_index, Cloud-owned) so a chunk one tenant
// committed is a dedup hit for every rank of every job and for every later
// snapshot version; shared_index = false gives each deployment a private
// index (the isolated-baseline ablation).
//
// The index is hash-sharded (ReductionConfig::index_shards): each shard
// owns its slice of the key space, its own per-shard stats, and — when a
// service is attached — its own fair request queue, so tenant counts in the
// hundreds do not serialize the commit path on one metadata lock. Shard
// routing depends only on (digest, raw_size): the same content always lands
// in the same shard no matter which tenant commits it, so cross-shard dedup
// needs no cross-shard communication. Mutations (record, forget_chunks)
// stay synchronous — commit guards invalidate entries from destructors
// during frame unwinding, where no co_await is possible; only the lookup
// path (the per-chunk hot path) goes through the shard queues.
//
// Entries are recorded only after a chunk reached all of its replicas
// (CommitReducer::committed), so the index never references in-flight data.
// The garbage collector invalidates entries whose chunks it reclaims through
// BlobStore's reclaim hooks; a stale hit after GC would silently resurrect a
// deleted chunk. While a concurrent GC epoch is open (open_gc_epoch), every
// lookup hit is logged: a dedup Ref taken mid-epoch is invisible both to the
// sweep's tree walk and — once its commit publishes and unpins — to the pin
// sources, so the epoch log is what keeps the concurrent sweep from
// reclaiming content referenced by a commit that raced the mark.
//
// Collision caveat: a cross-commit hit is trusted on (64-bit FNV-1a digest,
// raw length) equality alone — the indexed payload lives on remote
// providers, so byte verification would cost the very transfer dedup
// exists to avoid. FNV-1a is not collision-resistant; a colliding pair of
// same-length chunks would silently alias, corrupting one on read-back.
// That is accepted for this simulator (synthetic checkpoint content); a
// production store would key on a cryptographic digest. Intra-commit
// aliases, where both payloads are in memory, ARE byte-verified by
// BlobClient before collapsing.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "blob/types.h"
#include "common/rng.h"
#include "net/service.h"
#include "sim/sim.h"

namespace blobcr::reduce {

class ChunkDigestIndex {
 public:
  struct Key {
    std::uint64_t digest = 0;
    std::uint32_t raw_size = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return static_cast<std::size_t>(
          common::mix64(k.digest ^ (static_cast<std::uint64_t>(k.raw_size)
                                    << 32)));
    }
  };

  /// Per-shard traffic counters (tests assert shard confinement on these;
  /// the shard-sweep bench reports lookup throughput from them).
  struct ShardStats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t records = 0;
    std::uint64_t forgets = 0;
  };

  explicit ChunkDigestIndex(std::size_t shards = 1)
      : shards_(std::max<std::size_t>(1, shards)) {}

  std::size_t shard_count() const { return shards_.size(); }
  /// Shard routing is a pure function of content identity — never of the
  /// committing tenant or chunk id — so identical content always resolves
  /// in one shard.
  std::size_t shard_of(std::uint64_t digest, std::uint32_t raw_size) const {
    return KeyHash{}(Key{digest, raw_size}) % shards_.size();
  }
  const ShardStats& shard_stats(std::size_t shard) const {
    return shards_[shard].stats;
  }

  /// Attaches one simulated request queue per shard (1 worker each:
  /// a shard's lock). lookup_queued then charges `lookup_cost` per lookup
  /// at the owning shard's queue; with a registry the queues dispatch
  /// weighted-fair per tenant. Without attach (the default, cost 0) lookups
  /// stay free in-process — the pre-sharding timing model.
  void attach_service(sim::Simulation& sim, sim::Duration lookup_cost,
                      const net::TenantRegistry* fair_registry = nullptr) {
    if (!queues_.empty() || lookup_cost <= 0) return;
    queues_.reserve(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      queues_.push_back(std::make_unique<net::ServiceQueue>(
          sim, "digest-shard-" + std::to_string(s), lookup_cost));
      if (fair_registry != nullptr) queues_.back()->enable_fair(fair_registry);
    }
  }
  bool service_attached() const { return !queues_.empty(); }
  const net::ServiceQueue& shard_queue(std::size_t shard) const {
    return *queues_[shard];
  }

  /// Location of an already-stored chunk with this content, or nullptr.
  /// Serving is proximity-ordered: among the same-content copies on record,
  /// one in `preferred_zone` wins; otherwise the first recorded copy serves
  /// (the single-zone behavior). Federation correctness depends on this —
  /// a dedup Ref resolved to a remote-zone copy would turn every later
  /// restart fetch of that leaf into a wide-area pull even when the content
  /// also lives locally.
  const blob::ChunkLocation* lookup(std::uint64_t digest,
                                    std::uint32_t raw_size,
                                    std::uint32_t preferred_zone = 0) const {
    const Shard& shard = shards_[shard_of(digest, raw_size)];
    ++shard.stats.lookups;
    const auto it = shard.entries.find(Key{digest, raw_size});
    if (it == shard.entries.end()) return nullptr;
    ++shard.stats.hits;
    const blob::ChunkLocation* best = &it->second.front();
    for (const blob::ChunkLocation& l : it->second) {
      if (l.zone == preferred_zone) {
        best = &l;
        break;
      }
    }
    if (epoch_open_) epoch_hits_.insert(best->id);
    return best;
  }

  /// lookup() through the owning shard's request queue (when attached):
  /// the simulated cost of taking that shard's lock under contention. Only
  /// the calling tenant's shard queue is entered — other shards keep
  /// serving concurrently.
  sim::Task<const blob::ChunkLocation*> lookup_queued(
      net::TenantId tenant, std::uint64_t digest, std::uint32_t raw_size,
      std::uint32_t preferred_zone = 0) {
    if (!queues_.empty()) {
      co_await queues_[shard_of(digest, raw_size)]->process(tenant);
    }
    co_return lookup(digest, raw_size, preferred_zone);
  }

  /// Records a stored chunk. Lookups serve the first recorded location, but
  /// later same-content chunks (concurrent ranks can store the same content
  /// twice) are kept as fallbacks: forgetting one copy — a failed commit
  /// withdrawing its orphans, or the GC reclaiming — must not de-index
  /// content that still lives at another chunk.
  void record(std::uint64_t digest, std::uint32_t raw_size,
              const blob::ChunkLocation& loc) {
    const Key key{digest, raw_size};
    if (!by_chunk_.try_emplace(loc.id, key).second) return;  // known chunk
    Shard& shard = shards_[shard_of(digest, raw_size)];
    ++shard.stats.records;
    // Stamp the content digest on the indexed location: dedup Refs copy it
    // into their leaves, so the restart data plane can recognize identical
    // content across ChunkIds (peer exchange / decoded-chunk cache keys).
    blob::ChunkLocation stamped = loc;
    stamped.digest = digest;
    shard.entries[key].push_back(std::move(stamped));
  }

  /// Invalidation (GC reclaim, failed-commit withdrawal): drops every
  /// location whose chunk is gone; remaining same-content fallbacks keep
  /// serving lookups. Each id touches only its owning shard — a failed
  /// commit's withdrawal cannot disturb (or contend with) other shards.
  void forget_chunks(const std::vector<blob::ChunkId>& ids) {
    for (const blob::ChunkId id : ids) {
      const auto it = by_chunk_.find(id);
      if (it == by_chunk_.end()) continue;
      Shard& shard = shards_[shard_of(it->second.digest,
                                      it->second.raw_size)];
      ++shard.stats.forgets;
      const auto e = shard.entries.find(it->second);
      if (e != shard.entries.end()) {
        auto& locs = e->second;
        locs.erase(std::remove_if(
                       locs.begin(), locs.end(),
                       [id](const blob::ChunkLocation& l) { return l.id == id; }),
                   locs.end());
        if (locs.empty()) shard.entries.erase(e);
      }
      by_chunk_.erase(it);
    }
  }

  /// Distinct content keys indexed, across all shards.
  std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& s : shards_) total += s.entries.size();
    return total;
  }
  std::size_t shard_size(std::size_t shard) const {
    return shards_[shard].entries.size();
  }

  // --- concurrent-GC epoch log ---------------------------------------------
  // While an epoch is open every lookup hit's chunk id is logged. The sweep
  // folds the log into its live set before deciding what to reclaim: a Ref
  // taken during the incremental mark may publish (and release its pin)
  // before the sweep's final pin collection, leaving the log as the only
  // witness that the chunk is reachable again.

  void open_gc_epoch() {
    epoch_hits_.clear();
    epoch_open_ = true;
  }
  void close_gc_epoch() {
    epoch_open_ = false;
    epoch_hits_.clear();
  }
  bool gc_epoch_open() const { return epoch_open_; }
  void collect_epoch_hits(std::unordered_set<blob::ChunkId>& out) const {
    for (const blob::ChunkId id : epoch_hits_) out.insert(id);
  }

 private:
  struct Shard {
    std::unordered_map<Key, std::vector<blob::ChunkLocation>, KeyHash> entries;
    mutable ShardStats stats;
  };

  std::vector<Shard> shards_;
  /// Chunk -> content key directory (which shard, which entry): O(1) forget
  /// routing without probing every shard.
  std::unordered_map<blob::ChunkId, Key> by_chunk_;
  std::vector<std::unique_ptr<net::ServiceQueue>> queues_;
  bool epoch_open_ = false;
  mutable std::unordered_set<blob::ChunkId> epoch_hits_;
};

}  // namespace blobcr::reduce
