#include "reduce/reducer.h"

#include <cmath>
#include <utility>
#include <vector>

#include "reduce/rle.h"
#include "sim/time.h"

namespace blobcr::reduce {

Reducer::Reducer(blob::BlobStore& store, const ReductionConfig& cfg,
                 ChunkDigestIndex* shared_index, net::TenantId tenant)
    : store_(&store),
      cfg_(cfg),
      tenant_(tenant),
      own_index_(cfg.index_shards),
      index_(shared_index != nullptr ? shared_index : &own_index_) {
  if (!shares_index()) {
    // An isolated index is this reducer's own: hook GC reclaim and the
    // concurrent sweep's epoch open/close ourselves, and attach the shard
    // queues. A shared (repository-scoped) index outlives every deployment,
    // so its owner — the Cloud — holds the one set of hooks for it.
    own_index_.attach_service(
        store_->simulation(), cfg_.index_lookup_cost,
        store_->config().qos.enabled ? &store_->tenants() : nullptr);
    hook_id_ = store_->add_chunk_reclaim_hook(
        [this](const std::vector<blob::ChunkId>& ids) {
          index_->forget_chunks(ids);
        });
    gc_epoch_hook_id_ = store_->add_gc_epoch_hook([this](bool open) {
      if (open) {
        index_->open_gc_epoch();
      } else {
        index_->close_gc_epoch();
      }
    });
  }
  pin_source_id_ = store_->add_chunk_pin_source(
      [this](std::unordered_set<blob::ChunkId>& out) {
        for (const auto& [id, count] : pinned_) out.insert(id);
        // Lookup hits served during an open GC epoch count as live: the
        // pin of a Ref that published mid-epoch is already released, and
        // the sweep's mark may have passed its blob before the publish.
        if (!shares_index()) index_->collect_epoch_hits(out);
      });
}

Reducer::~Reducer() {
  if (hook_id_ != 0) store_->remove_chunk_reclaim_hook(hook_id_);
  if (gc_epoch_hook_id_ != 0) store_->remove_gc_epoch_hook(gc_epoch_hook_id_);
  store_->remove_chunk_pin_source(pin_source_id_);
}

void Reducer::begin_epoch() { epoch_base_ = stats_; }

sim::Task<blob::ReducedChunk> Reducer::reduce(net::NodeId node,
                                              std::uint64_t offset,
                                              common::Buffer payload) {
  (void)node;
  (void)offset;
  const std::uint32_t raw_size = static_cast<std::uint32_t>(payload.size());
  ++stats_.chunks_total;
  stats_.raw_bytes += raw_size;

  if (cfg_.digest_bps > 0) {
    co_await store_->simulation().delay(
        sim::transfer_time(raw_size, cfg_.digest_bps));
  }

  blob::ReducedChunk out;

  // 1. Zero suppression: an all-zero chunk becomes a metadata-only hole.
  if (cfg_.zero_suppression && payload.all_zero()) {
    out.kind = blob::ReducedChunk::Kind::Zero;
    ++stats_.zero_chunks;
    stats_.zero_bytes += raw_size;
    co_return out;
  }

  // 2. Content-addressed dedup (fully-real payloads only: phantom digests
  //    are length-derived, so matching them would fabricate savings). The
  //    digest is only computed here — it has no other consumer.
  const bool dedupable = cfg_.dedup && payload.fully_real();
  if (dedupable) {
    out.digest = payload.digest();
    // With shard queues attached the lookup pays its simulated cost at the
    // owning shard (per-tenant fair order); otherwise it is an in-process
    // peek, exactly the pre-sharding timing model.
    // Proximity-ordered serving: of the same-content copies on record,
    // prefer one in this store's own zone so dedup Refs (and the restart
    // fetches they later imply) stay zone-local when possible.
    const std::uint32_t zone = store_->config().zone;
    const blob::ChunkLocation* loc =
        index_->service_attached()
            ? co_await index_->lookup_queued(tenant_, out.digest, raw_size,
                                             zone)
            : index_->lookup(out.digest, raw_size, zone);
    // Dedup Refs stay zone-local: a Ref to a foreign zone's chunk would be
    // invisible to that zone's GC mark (liveness is computed per store), so
    // the owner could reclaim content this zone still needs. Cross-zone
    // sharing is the federation replicator's job, not dedup's.
    if (loc != nullptr && loc->zone != zone) loc = nullptr;
    if (loc != nullptr) {
      out.kind = blob::ReducedChunk::Kind::Ref;
      out.ref = *loc;
      // Pin until the referencing commit publishes (or fails): the GC
      // cannot see this reference in any tree yet.
      ++pinned_[out.ref.id];
      ++stats_.dedup_hits;
      stats_.dedup_bytes += raw_size;
      co_return out;
    }
  }
  out.index_on_commit = dedupable;

  // 3. Compression: real RLE transform, or the ratio model for pure-phantom
  //    payloads. Mixed chunks ship raw so real content survives bit-exactly.
  out.kind = blob::ReducedChunk::Kind::Store;
  if (cfg_.compression && payload.fully_real()) {
    if (cfg_.compress_bps > 0) {
      co_await store_->simulation().delay(
          sim::transfer_time(raw_size, cfg_.compress_bps));
    }
    std::vector<std::byte> encoded = rle_encode(payload.bytes());
    if (encoded.size() < raw_size) {
      ++stats_.compressed_chunks;
      stats_.compress_saved_bytes += raw_size - encoded.size();
      out.payload = common::Buffer::real(std::move(encoded));
      out.encoding = blob::ChunkEncoding::Rle;
      co_return out;
    }
  } else if (cfg_.compression && payload.fully_phantom() &&
             cfg_.phantom_compression_ratio < 1.0) {
    if (cfg_.compress_bps > 0) {
      co_await store_->simulation().delay(
          sim::transfer_time(raw_size, cfg_.compress_bps));
    }
    const auto stored = static_cast<std::size_t>(std::max(
        1.0, std::ceil(raw_size * cfg_.phantom_compression_ratio)));
    if (stored < raw_size) {
      ++stats_.compressed_chunks;
      stats_.compress_saved_bytes += raw_size - stored;
      out.payload = common::Buffer::phantom(stored);
      out.encoding = blob::ChunkEncoding::PhantomRatio;
      co_return out;
    }
  }
  out.payload = std::move(payload);
  out.encoding = blob::ChunkEncoding::Raw;
  co_return out;
}

void Reducer::committed(std::uint64_t digest, const blob::ChunkLocation& loc) {
  index_->record(digest, loc.logical(), loc);
}

void Reducer::account_stored(std::uint32_t raw_size,
                             std::uint32_t stored_size) {
  (void)raw_size;
  stats_.shipped_bytes += stored_size;
}

void Reducer::account_aliased(std::uint32_t raw_size) {
  ++stats_.dedup_hits;
  stats_.dedup_bytes += raw_size;
}

void Reducer::release_refs(const std::vector<blob::ChunkId>& ids) {
  for (const blob::ChunkId id : ids) {
    const auto it = pinned_.find(id);
    if (it == pinned_.end()) continue;
    if (--it->second == 0) pinned_.erase(it);
  }
}

void Reducer::forget_indexed(const std::vector<blob::ChunkId>& ids) {
  // forget_chunks only drops the withdrawn chunks' own locations; identical
  // content another commit stored stays indexed (fallback entries).
  index_->forget_chunks(ids);
}

}  // namespace blobcr::reduce
