#include "reduce/reducer.h"

#include <cmath>
#include <utility>
#include <vector>

#include "reduce/rle.h"
#include "sim/time.h"

namespace blobcr::reduce {

Reducer::Reducer(blob::BlobStore& store, const ReductionConfig& cfg,
                 ChunkDigestIndex* shared_index)
    : store_(&store),
      cfg_(cfg),
      index_(shared_index != nullptr ? shared_index : &own_index_) {
  if (!shares_index()) {
    // An isolated index is this reducer's own: hook GC reclaim ourselves.
    // A shared (repository-scoped) index outlives every deployment, so its
    // owner — the Cloud — holds the one reclaim hook for it.
    hook_id_ = store_->add_chunk_reclaim_hook(
        [this](const std::vector<blob::ChunkId>& ids) {
          index_->forget_chunks(ids);
        });
  }
  pin_source_id_ = store_->add_chunk_pin_source(
      [this](std::unordered_set<blob::ChunkId>& out) {
        for (const auto& [id, count] : pinned_) out.insert(id);
      });
}

Reducer::~Reducer() {
  if (hook_id_ != 0) store_->remove_chunk_reclaim_hook(hook_id_);
  store_->remove_chunk_pin_source(pin_source_id_);
}

void Reducer::begin_epoch() { epoch_base_ = stats_; }

sim::Task<blob::ReducedChunk> Reducer::reduce(net::NodeId node,
                                              std::uint64_t offset,
                                              common::Buffer payload) {
  (void)node;
  (void)offset;
  const std::uint32_t raw_size = static_cast<std::uint32_t>(payload.size());
  ++stats_.chunks_total;
  stats_.raw_bytes += raw_size;

  if (cfg_.digest_bps > 0) {
    co_await store_->simulation().delay(
        sim::transfer_time(raw_size, cfg_.digest_bps));
  }

  blob::ReducedChunk out;

  // 1. Zero suppression: an all-zero chunk becomes a metadata-only hole.
  if (cfg_.zero_suppression && payload.all_zero()) {
    out.kind = blob::ReducedChunk::Kind::Zero;
    ++stats_.zero_chunks;
    stats_.zero_bytes += raw_size;
    co_return out;
  }

  // 2. Content-addressed dedup (fully-real payloads only: phantom digests
  //    are length-derived, so matching them would fabricate savings). The
  //    digest is only computed here — it has no other consumer.
  const bool dedupable = cfg_.dedup && payload.fully_real();
  if (dedupable) {
    out.digest = payload.digest();
    if (const blob::ChunkLocation* loc =
            index_->lookup(out.digest, raw_size)) {
      out.kind = blob::ReducedChunk::Kind::Ref;
      out.ref = *loc;
      // Pin until the referencing commit publishes (or fails): the GC
      // cannot see this reference in any tree yet.
      ++pinned_[out.ref.id];
      ++stats_.dedup_hits;
      stats_.dedup_bytes += raw_size;
      co_return out;
    }
  }
  out.index_on_commit = dedupable;

  // 3. Compression: real RLE transform, or the ratio model for pure-phantom
  //    payloads. Mixed chunks ship raw so real content survives bit-exactly.
  out.kind = blob::ReducedChunk::Kind::Store;
  if (cfg_.compression && payload.fully_real()) {
    if (cfg_.compress_bps > 0) {
      co_await store_->simulation().delay(
          sim::transfer_time(raw_size, cfg_.compress_bps));
    }
    std::vector<std::byte> encoded = rle_encode(payload.bytes());
    if (encoded.size() < raw_size) {
      ++stats_.compressed_chunks;
      stats_.compress_saved_bytes += raw_size - encoded.size();
      out.payload = common::Buffer::real(std::move(encoded));
      out.encoding = blob::ChunkEncoding::Rle;
      co_return out;
    }
  } else if (cfg_.compression && payload.fully_phantom() &&
             cfg_.phantom_compression_ratio < 1.0) {
    if (cfg_.compress_bps > 0) {
      co_await store_->simulation().delay(
          sim::transfer_time(raw_size, cfg_.compress_bps));
    }
    const auto stored = static_cast<std::size_t>(std::max(
        1.0, std::ceil(raw_size * cfg_.phantom_compression_ratio)));
    if (stored < raw_size) {
      ++stats_.compressed_chunks;
      stats_.compress_saved_bytes += raw_size - stored;
      out.payload = common::Buffer::phantom(stored);
      out.encoding = blob::ChunkEncoding::PhantomRatio;
      co_return out;
    }
  }
  out.payload = std::move(payload);
  out.encoding = blob::ChunkEncoding::Raw;
  co_return out;
}

void Reducer::committed(std::uint64_t digest, const blob::ChunkLocation& loc) {
  index_->record(digest, loc.logical(), loc);
}

void Reducer::account_stored(std::uint32_t raw_size,
                             std::uint32_t stored_size) {
  (void)raw_size;
  stats_.shipped_bytes += stored_size;
}

void Reducer::account_aliased(std::uint32_t raw_size) {
  ++stats_.dedup_hits;
  stats_.dedup_bytes += raw_size;
}

void Reducer::release_refs(const std::vector<blob::ChunkId>& ids) {
  for (const blob::ChunkId id : ids) {
    const auto it = pinned_.find(id);
    if (it == pinned_.end()) continue;
    if (--it->second == 0) pinned_.erase(it);
  }
}

void Reducer::forget_indexed(const std::vector<blob::ChunkId>& ids) {
  // forget_chunks only drops the withdrawn chunks' own locations; identical
  // content another commit stored stays indexed (fallback entries).
  index_->forget_chunks(ids);
}

}  // namespace blobcr::reduce
