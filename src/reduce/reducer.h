// Reducer: the concrete chunk-reduction pipeline (zero suppression ->
// content-addressed dedup -> compression) that BlobClient consults on the
// commit path. One Reducer per deployment, shared by all of its mirroring
// modules — the same scoping as the PrefetchBus — so dedup works across
// ranks as well as across successive snapshot versions.
//
// Honesty rules (the simulator mixes real and phantom payloads):
//  * zero suppression and dedup apply only to fully-real payloads — phantom
//    content is unknowable, and a phantom digest is length-derived, so
//    "deduping" it would fabricate savings;
//  * compression really transforms real payloads (RLE, kept only when
//    strictly smaller) and applies a configured ratio model to pure-phantom
//    payloads; mixed real/phantom chunks ship raw so real content (file
//    system metadata, dump headers) always survives bit-exactly.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "blob/reducer.h"
#include "blob/store.h"
#include "reduce/digest_index.h"
#include "reduce/reduction.h"

namespace blobcr::reduce {

class Reducer final : public blob::CommitReducer {
 public:
  /// Registers with the store so GC invalidates the index on reclaim.
  /// With a `shared_index` (the repository-scoped index owned by the Cloud)
  /// this reducer records into and dedups against it — cross-job dedup —
  /// and its owner is responsible for the reclaim/epoch hooks; without one,
  /// the reducer owns an isolated per-deployment index and hooks it itself.
  /// `tenant` tags the reducer's index lookups for the shard queues' fair
  /// dispatch (the deployment's repository tenant).
  Reducer(blob::BlobStore& store, const ReductionConfig& cfg,
          ChunkDigestIndex* shared_index = nullptr,
          net::TenantId tenant = net::kDefaultTenant);
  ~Reducer() override;

  Reducer(const Reducer&) = delete;
  Reducer& operator=(const Reducer&) = delete;

  // --- CommitReducer ---
  sim::Task<blob::ReducedChunk> reduce(net::NodeId node, std::uint64_t offset,
                                       common::Buffer payload) override;
  void committed(std::uint64_t digest, const blob::ChunkLocation& loc) override;
  void account_stored(std::uint32_t raw_size,
                      std::uint32_t stored_size) override;
  void account_aliased(std::uint32_t raw_size) override;
  void release_refs(const std::vector<blob::ChunkId>& ids) override;
  void forget_indexed(const std::vector<blob::ChunkId>& ids) override;

  /// Opens a fresh stats epoch (one per coordinated global checkpoint; the
  /// epoch leader rank calls this through mpi::coordinated_checkpoint), so
  /// epoch_stats() covers exactly one global checkpoint.
  void begin_epoch();

  const ReductionConfig& config() const { return cfg_; }
  const ReductionStats& stats() const { return stats_; }
  /// Stats accumulated since the current epoch opened.
  ReductionStats epoch_stats() const { return stats_ - epoch_base_; }
  ChunkDigestIndex& index() { return *index_; }
  /// True when this reducer dedups against the repository-scoped index.
  bool shares_index() const { return index_ != &own_index_; }

 private:
  blob::BlobStore* store_;
  ReductionConfig cfg_;
  net::TenantId tenant_;
  ChunkDigestIndex own_index_;
  /// The index this pipeline dedups against: the Cloud's repository-scoped
  /// index (multi-tenant) or own_index_ (isolated).
  ChunkDigestIndex* index_;
  ReductionStats stats_;
  ReductionStats epoch_base_;
  std::uint64_t hook_id_ = 0;
  std::uint64_t pin_source_id_ = 0;
  std::uint64_t gc_epoch_hook_id_ = 0;
  /// Chunks referenced by in-flight commits (dedup Refs taken but not yet
  /// published), with a count per concurrent referencing commit. The GC
  /// treats them as live.
  std::unordered_map<blob::ChunkId, std::uint32_t> pinned_;
};

}  // namespace blobcr::reduce
