// Byte-level run-length codec used by the reduction pipeline's compression
// stage. Token stream:
//
//   t < 0x80  => literal run: the next (t + 1) bytes are copied verbatim;
//   t >= 0x80 => repeat run: the next byte repeats (t - 0x80 + kMinRun)
//                times (kMinRun..kMaxRun).
//
// Worst case (no runs) the output is input + input/128 + 1 bytes, so the
// pipeline only keeps an encoding that is strictly smaller than the raw
// payload. Decoding is exact: encode/decode round-trips bit-identically,
// which is what lets snapshot read-back verification stay end-to-end.
//
// Depends only on common/ so the blob read path can decode without pulling
// in the rest of the reduction subsystem.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace blobcr::reduce {

inline constexpr std::size_t kRleMinRun = 3;
inline constexpr std::size_t kRleMaxRun = 0x7f + kRleMinRun;  // 130
inline constexpr std::size_t kRleMaxLiteral = 0x80;           // 128

class RleError : public std::runtime_error {
 public:
  explicit RleError(const char* what) : std::runtime_error(what) {}
};

inline std::vector<std::byte> rle_encode(std::span<const std::byte> in) {
  std::vector<std::byte> out;
  out.reserve(in.size() / 4 + 16);
  std::size_t i = 0;
  std::size_t literal_start = 0;

  const auto flush_literals = [&](std::size_t end) {
    std::size_t at = literal_start;
    while (at < end) {
      const std::size_t n = std::min(kRleMaxLiteral, end - at);
      out.push_back(static_cast<std::byte>(n - 1));
      out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(at),
                 in.begin() + static_cast<std::ptrdiff_t>(at + n));
      at += n;
    }
  };

  while (i < in.size()) {
    std::size_t run = 1;
    while (i + run < in.size() && in[i + run] == in[i] && run < kRleMaxRun) {
      ++run;
    }
    if (run >= kRleMinRun) {
      flush_literals(i);
      out.push_back(static_cast<std::byte>(0x80 + (run - kRleMinRun)));
      out.push_back(in[i]);
      i += run;
      literal_start = i;
    } else {
      i += run;
    }
  }
  flush_literals(in.size());
  return out;
}

/// Decodes exactly `logical_size` bytes; throws RleError on any mismatch.
inline std::vector<std::byte> rle_decode(std::span<const std::byte> in,
                                         std::size_t logical_size) {
  std::vector<std::byte> out;
  out.reserve(logical_size);
  std::size_t i = 0;
  while (i < in.size()) {
    const auto t = std::to_integer<std::uint8_t>(in[i++]);
    if (t < 0x80) {
      const std::size_t n = static_cast<std::size_t>(t) + 1;
      if (i + n > in.size()) throw RleError("rle literal past end");
      out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(i),
                 in.begin() + static_cast<std::ptrdiff_t>(i + n));
      i += n;
    } else {
      if (i >= in.size()) throw RleError("rle run past end");
      const std::size_t n = static_cast<std::size_t>(t - 0x80) + kRleMinRun;
      out.insert(out.end(), n, in[i++]);
    }
    if (out.size() > logical_size) throw RleError("rle overflow");
  }
  if (out.size() != logical_size) throw RleError("rle size mismatch");
  return out;
}

}  // namespace blobcr::reduce
