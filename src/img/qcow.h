// QcowImage: a qcow2-style copy-on-write disk image.
//
// Reproduced behaviours that matter to the paper:
//  * cluster-granular COW over an optional read-only backing store (the raw
//    base image shared through PVFS);
//  * unallocated reads fall through to the backing store;
//  * partial-cluster first-writes do copy-up (read-modify-write);
//  * internal snapshots (`savevm`): the VM state blob is appended into the
//    container and all currently allocated clusters become frozen, so later
//    writes reallocate — the container only ever grows;
//  * the container file (header + tables + clusters + vm states) is what a
//    disk-snapshot copy ships to PVFS, so its length growth is the direct
//    cause of Figure 5's linear qcow2 checkpoint times.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/buffer.h"
#include "img/block_device.h"
#include "sim/sim.h"
#include "storage/byte_store.h"

namespace blobcr::img {

class QcowImage {
 public:
  struct Config {
    std::uint64_t cluster_size = 64 * 1024;  // qcow2 default
    std::uint64_t virtual_size = 0;          // guest-visible capacity
  };

  /// `container` holds the image file itself; `backing` (optional) is the
  /// read-only base. Neither is owned.
  QcowImage(storage::ByteStore& container, storage::ByteStore* backing,
            const Config& cfg);

  std::uint64_t virtual_size() const { return cfg_.virtual_size; }
  std::uint64_t cluster_size() const { return cfg_.cluster_size; }

  sim::Task<common::Buffer> read(std::uint64_t offset, std::uint64_t len);
  sim::Task<> write(std::uint64_t offset, common::Buffer data);

  /// savevm: appends the VM state and freezes the current disk mapping.
  sim::Task<> save_vm_state(common::Buffer state);
  /// loadvm: reads back the most recent VM state and rolls the disk mapping
  /// back to that snapshot.
  sim::Task<common::Buffer> load_vm_state();

  bool has_vm_state() const { return !snapshots_.empty(); }
  std::size_t snapshot_count() const { return snapshots_.size(); }

  struct Snapshot {
    std::map<std::uint64_t, std::uint64_t> l2;  // frozen disk mapping
    std::uint64_t vmstate_offset = 0;
    std::uint64_t vmstate_bytes = 0;
  };

  /// In-memory image of the qcow tables. A file-level snapshot copy
  /// transports it implicitly (it lives in the copied bytes); export/import
  /// model "qemu re-opens the copied file and parses its tables".
  struct State {
    std::map<std::uint64_t, std::uint64_t> l2;
    std::set<std::uint64_t> frozen;
    std::set<std::uint64_t> l2_covered;
    std::uint64_t l2_tables = 0;
    std::uint64_t host_end = 0;
    std::vector<Snapshot> snapshots;
    std::uint64_t guest_bytes_written = 0;
  };

  State export_state() const;
  void import_state(const State& state);

  /// Models opening an existing image file: reads the metadata region from
  /// the container and adopts the recorded state.
  sim::Task<> open_existing(const State& state);

  /// Length of the container file — what a file-level copy transfers.
  std::uint64_t container_bytes() const { return host_end_; }
  std::uint64_t allocated_clusters() const { return l2_.size(); }
  std::uint64_t metadata_bytes() const {
    return kHeaderClusters * cfg_.cluster_size +
           l2_tables_ * cfg_.cluster_size;
  }
  std::uint64_t guest_bytes_written() const { return guest_bytes_written_; }

 private:
  static constexpr std::uint64_t kHeaderClusters = 2;  // header + L1 + refcnt
  static constexpr std::uint64_t kL2Entries = 8192;    // cluster/8 bytes

  std::uint64_t alloc_cluster();
  sim::Task<> ensure_l2_table(std::uint64_t guest_cluster);
  sim::Task<common::Buffer> read_cluster_logical(std::uint64_t guest_cluster);

  storage::ByteStore* container_;
  storage::ByteStore* backing_;
  Config cfg_;
  std::map<std::uint64_t, std::uint64_t> l2_;  // guest cluster -> host offset
  std::set<std::uint64_t> frozen_;             // guest clusters owned by snapshots
  std::set<std::uint64_t> l2_covered_;         // which L2 tables exist
  std::uint64_t l2_tables_ = 0;
  std::uint64_t host_end_;
  std::vector<Snapshot> snapshots_;
  std::uint64_t guest_bytes_written_ = 0;
};

/// BlockDevice adapter for a QcowImage.
class QcowDevice : public BlockDevice {
 public:
  explicit QcowDevice(QcowImage& image) : image_(&image) {}
  std::uint64_t capacity() const override { return image_->virtual_size(); }
  sim::Task<> write(std::uint64_t offset, common::Buffer data) override {
    co_await image_->write(offset, std::move(data));
  }
  sim::Task<common::Buffer> read(std::uint64_t offset,
                                 std::uint64_t len) override {
    co_return co_await image_->read(offset, len);
  }

 private:
  QcowImage* image_;
};

/// BlockDevice over a flat ByteStore (a raw image).
class RawDevice : public BlockDevice {
 public:
  RawDevice(storage::ByteStore& store, std::uint64_t capacity)
      : store_(&store), capacity_(capacity) {}
  std::uint64_t capacity() const override { return capacity_; }
  sim::Task<> write(std::uint64_t offset, common::Buffer data) override {
    co_await store_->write(offset, std::move(data));
  }
  sim::Task<common::Buffer> read(std::uint64_t offset,
                                 std::uint64_t len) override {
    co_return co_await store_->read(offset, len);
  }

 private:
  storage::ByteStore* store_;
  std::uint64_t capacity_;
};

}  // namespace blobcr::img
