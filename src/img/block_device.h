// BlockDevice: what a hypervisor exposes to its guest as the virtual disk.
// Implementations: RawDevice (flat ByteStore), QcowDevice (copy-on-write
// image), and core's MirrorDevice (BlobCR's mirroring module).
#pragma once

#include <cstdint>

#include "common/buffer.h"
#include "sim/sim.h"

namespace blobcr::img {

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;
  virtual std::uint64_t capacity() const = 0;
  virtual sim::Task<> write(std::uint64_t offset, common::Buffer data) = 0;
  virtual sim::Task<common::Buffer> read(std::uint64_t offset,
                                         std::uint64_t len) = 0;
  /// Ensures all acknowledged writes are durable in the image container
  /// (the guest's `sync`).
  virtual sim::Task<> flush() { co_return; }
};

}  // namespace blobcr::img
