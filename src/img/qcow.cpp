#include "img/qcow.h"

#include <algorithm>
#include <cassert>

namespace blobcr::img {

QcowImage::QcowImage(storage::ByteStore& container,
                     storage::ByteStore* backing, const Config& cfg)
    : container_(&container),
      backing_(backing),
      cfg_(cfg),
      host_end_(kHeaderClusters * cfg.cluster_size) {
  assert(cfg_.virtual_size > 0);
}

std::uint64_t QcowImage::alloc_cluster() {
  const std::uint64_t off = host_end_;
  host_end_ += cfg_.cluster_size;
  return off;
}

sim::Task<> QcowImage::ensure_l2_table(std::uint64_t guest_cluster) {
  const std::uint64_t table = guest_cluster / kL2Entries;
  if (l2_covered_.count(table) != 0) co_return;
  l2_covered_.insert(table);
  ++l2_tables_;
  // A fresh L2 table is one cluster written into the container.
  const std::uint64_t off = alloc_cluster();
  co_await container_->write(off, common::Buffer::zeros(cfg_.cluster_size));
}

sim::Task<common::Buffer> QcowImage::read_cluster_logical(
    std::uint64_t guest_cluster) {
  const auto it = l2_.find(guest_cluster);
  if (it != l2_.end()) {
    co_return co_await container_->read(it->second, cfg_.cluster_size);
  }
  if (backing_ != nullptr) {
    const std::uint64_t base = guest_cluster * cfg_.cluster_size;
    co_return co_await backing_->read(base, cfg_.cluster_size);
  }
  co_return common::Buffer::zeros(cfg_.cluster_size);
}

sim::Task<common::Buffer> QcowImage::read(std::uint64_t offset,
                                          std::uint64_t len) {
  if (offset + len > cfg_.virtual_size)
    len = offset < cfg_.virtual_size ? cfg_.virtual_size - offset : 0;
  if (len == 0) co_return common::Buffer();
  const std::uint64_t cs = cfg_.cluster_size;

  // Gather cluster payloads in order; piecewise assembly preserves mixed
  // real/phantom content. Consecutive unallocated clusters are fetched from
  // the backing store in one batched read.
  common::Buffer out;
  for (std::uint64_t pos = offset; pos < offset + len;) {
    const std::uint64_t cluster = pos / cs;
    const std::uint64_t within = pos - cluster * cs;
    if (l2_.find(cluster) == l2_.end() && backing_ != nullptr) {
      // Extend over the run of unallocated clusters.
      std::uint64_t run_end_cluster = cluster + 1;
      while (run_end_cluster * cs < offset + len &&
             l2_.find(run_end_cluster) == l2_.end()) {
        ++run_end_cluster;
      }
      const std::uint64_t run_end = std::min(run_end_cluster * cs, offset + len);
      common::Buffer data =
          co_await backing_->read(pos, run_end - pos);
      if (data.size() < run_end - pos) data.resize(run_end - pos);
      out.append(data);
      pos = run_end;
      continue;
    }
    const std::uint64_t piece = std::min(cs - within, offset + len - pos);
    common::Buffer data = co_await read_cluster_logical(cluster);
    if (data.size() < within + piece) data.resize(within + piece);
    out.append(data.slice(within, piece));
    pos += piece;
  }
  co_return out;
}

sim::Task<> QcowImage::write(std::uint64_t offset, common::Buffer data) {
  const std::uint64_t cs = cfg_.cluster_size;
  const std::uint64_t len = data.size();
  if (len == 0) co_return;
  if (offset + len > cfg_.virtual_size)
    throw std::runtime_error("qcow write beyond virtual size");
  guest_bytes_written_ += len;

  for (std::uint64_t pos = offset; pos < offset + len;) {
    const std::uint64_t cluster = pos / cs;
    const std::uint64_t within = pos - cluster * cs;
    const std::uint64_t piece = std::min(cs - within, offset + len - pos);
    common::Buffer part = data.slice(pos - offset, piece);

    co_await ensure_l2_table(cluster);
    const auto it = l2_.find(cluster);
    const bool needs_alloc = (it == l2_.end()) || frozen_.count(cluster) != 0;
    if (!needs_alloc) {
      // In-place partial update of a writable cluster.
      co_await container_->write(it->second + within, std::move(part));
    } else {
      common::Buffer full;
      if (within == 0 && piece == cs) {
        full = std::move(part);
      } else {
        // Copy-up: fill the rest of the cluster from the old content.
        full = co_await read_cluster_logical(cluster);
        if (full.size() < cs) full.resize(cs);
        full.overwrite(within, part);
      }
      const std::uint64_t host = alloc_cluster();
      l2_[cluster] = host;
      frozen_.erase(cluster);
      co_await container_->write(host, std::move(full));
    }
    pos += piece;
  }
}

sim::Task<> QcowImage::save_vm_state(common::Buffer state) {
  Snapshot snap;
  snap.l2 = l2_;
  snap.vmstate_bytes = state.size();
  // VM state occupies whole clusters at the container tail.
  const std::uint64_t clusters =
      (state.size() + cfg_.cluster_size - 1) / cfg_.cluster_size;
  snap.vmstate_offset = host_end_;
  host_end_ += clusters * cfg_.cluster_size;
  co_await container_->write(snap.vmstate_offset, std::move(state));
  // Freeze: every allocated cluster now belongs to the snapshot.
  for (const auto& [guest, host] : l2_) frozen_.insert(guest);
  snapshots_.push_back(std::move(snap));
}

QcowImage::State QcowImage::export_state() const {
  State s;
  s.l2 = l2_;
  s.frozen = frozen_;
  s.l2_covered = l2_covered_;
  s.l2_tables = l2_tables_;
  s.host_end = host_end_;
  s.snapshots = snapshots_;
  s.guest_bytes_written = guest_bytes_written_;
  return s;
}

void QcowImage::import_state(const State& state) {
  l2_ = state.l2;
  frozen_ = state.frozen;
  l2_covered_ = state.l2_covered;
  l2_tables_ = state.l2_tables;
  host_end_ = state.host_end;
  snapshots_ = state.snapshots;
  guest_bytes_written_ = state.guest_bytes_written;
}

sim::Task<> QcowImage::open_existing(const State& state) {
  import_state(state);
  // qemu parses header + L1 + all present L2 tables when opening.
  (void)co_await container_->read(0, metadata_bytes());
}

sim::Task<common::Buffer> QcowImage::load_vm_state() {
  if (snapshots_.empty()) throw std::runtime_error("image has no vm state");
  const Snapshot& snap = snapshots_.back();
  common::Buffer state =
      co_await container_->read(snap.vmstate_offset, snap.vmstate_bytes);
  // Roll the disk mapping back to the snapshot.
  l2_ = snap.l2;
  for (const auto& [guest, host] : l2_) frozen_.insert(guest);
  co_return state;
}

}  // namespace blobcr::img
