// MemDevice: a BlockDevice with no simulated I/O cost, used for authoring
// base images "offline" (the cloud user prepares the image before uploading;
// that preparation is not part of any measured experiment).
#pragma once

#include "common/sparse.h"
#include "img/block_device.h"

namespace blobcr::img {

class MemDevice : public BlockDevice {
 public:
  explicit MemDevice(std::uint64_t capacity) : capacity_(capacity) {}

  std::uint64_t capacity() const override { return capacity_; }

  sim::Task<> write(std::uint64_t offset, common::Buffer data) override {
    content_.write(offset, std::move(data));
    co_return;
  }

  sim::Task<common::Buffer> read(std::uint64_t offset,
                                 std::uint64_t len) override {
    co_return content_.read(offset, len);
  }

  const common::SparseFile& content() const { return content_; }
  common::SparseFile& content() { return content_; }

 private:
  std::uint64_t capacity_;
  common::SparseFile content_;
};

}  // namespace blobcr::img
