#include "redundancy/manager.h"

#include <algorithm>
#include <utility>

namespace blobcr::redundancy {

void Manager::attach(net::NodeId node, core::DecodedChunkCache* cache) {
  if (cache == nullptr) return;
  if (caches_.find(node) == caches_.end()) nodes_.push_back(node);
  caches_[node] = cache;
}

void Manager::detach_cache(const core::DecodedChunkCache* cache) {
  std::vector<net::NodeId> gone;
  for (const auto& [node, c] : caches_) {
    if (c == cache) gone.push_back(node);
  }
  for (net::NodeId node : gone) {
    caches_.erase(node);
    std::erase(nodes_, node);
    std::vector<std::uint64_t> doomed;
    for (std::uint64_t gid : open_) {
      if (group_has_node(groups_.at(gid), node)) doomed.push_back(gid);
    }
    for (std::uint64_t gid : doomed) drop_group(gid);
  }
  // nodes_ shrank under the round-robin cursor: renormalize so holder
  // picking keeps cycling evenly instead of skipping the front nodes.
  holder_rr_ = nodes_.empty() ? 0 : holder_rr_ % nodes_.size();
}

void Manager::drop_node(net::NodeId node) {
  std::vector<std::uint64_t> doomed;
  for (std::uint64_t gid : open_) {
    if (group_has_node(groups_.at(gid), node)) doomed.push_back(gid);
  }
  // A sealed group whose parity *holder* died lost its parity blocks with
  // the node's cache: nothing is rebuildable through it anymore, so it must
  // stop counting as durable (and its surviving blocks on other holders
  // must not linger as orphans). Sealed groups where the node is only a
  // member stay — rebuilding those is what the tier is for.
  for (const auto& [gid, g] : groups_) {
    if (!g.sealed) continue;
    if (std::find(g.holders.begin(), g.holders.end(), node) !=
        g.holders.end()) {
      doomed.push_back(gid);
    }
  }
  std::sort(doomed.begin(), doomed.end());
  doomed.erase(std::unique(doomed.begin(), doomed.end()), doomed.end());
  for (std::uint64_t gid : doomed) drop_group(gid);
  // The dead node leaves the tier — new groups must not pick it as a member
  // or holder — until a replacement instance re-attaches its (cold) cache.
  caches_.erase(node);
  std::erase(nodes_, node);
  holder_rr_ = nodes_.empty() ? 0 : holder_rr_ % nodes_.size();
}

void Manager::drop_all() {
  stats_.groups_dropped += groups_.size();
  stats_.parity_blocks = 0;
  stats_.parity_bytes = 0;
  groups_.clear();
  open_.clear();
  member_gid_.clear();
  id_gid_.clear();
}

core::DecodedChunkCache* Manager::cache_for(net::NodeId node) const {
  const auto it = caches_.find(node);
  return it == caches_.end() ? nullptr : it->second;
}

bool Manager::group_has_node(const Group& g, net::NodeId node) const {
  if (std::find(g.holders.begin(), g.holders.end(), node) != g.holders.end())
    return true;
  for (const Member& m : g.members) {
    if (m.node == node) return true;
  }
  return false;
}

Manager::Group* Manager::pick_group(net::NodeId node) {
  for (std::uint64_t gid : open_) {
    Group& g = groups_.at(gid);
    if (g.members.size() < g.target && !group_has_node(g, node)) return &g;
  }
  // Open a new group: m parity holders round-robin over the other attached
  // nodes, then as many distinct member nodes as remain (capped at the
  // configured width).
  const std::size_t m = std::max<std::size_t>(1, cfg_.parity_blocks);
  if (nodes_.size() < 2 || nodes_.size() <= m) return nullptr;
  Group g;
  g.gid = next_gid_++;
  while (g.holders.size() < m) {
    const net::NodeId cand = nodes_[holder_rr_++ % nodes_.size()];
    if (cand == node) continue;
    if (std::find(g.holders.begin(), g.holders.end(), cand) !=
        g.holders.end())
      continue;
    g.holders.push_back(cand);
  }
  g.target = std::min(cfg_.group_size < 1 ? 1 : cfg_.group_size,
                      nodes_.size() - g.holders.size());
  const auto [it, ok] = groups_.emplace(g.gid, std::move(g));
  (void)ok;
  open_.push_back(it->first);
  return &it->second;
}

sim::Task<> Manager::encode_commit(net::NodeId node,
                                   std::vector<ChunkPayload> chunks) {
  if (!cfg_.enabled) co_return;
  for (ChunkPayload& cp : chunks) {
    if (cp.data.empty()) continue;
    // The committing node's resident copy is a tier asset regardless of
    // group membership: rebuilds of other members read it later.
    if (core::DecodedChunkCache* own = cache_for(node))
      own->put(cp.key, cp.data);
    if (member_gid_.find(cp.key) != member_gid_.end()) continue;
    Group* g = pick_group(node);
    if (g == nullptr) continue;
    const std::uint64_t gid = g->gid;
    // Ship the payload to every parity holder BEFORE touching group state:
    // a fail-stop that unwinds this frame mid-transfer must leave no
    // half-registered member.
    for (net::NodeId holder : g->holders) {
      co_await fabric_->transfer(node, holder, cp.data.size(), shape_);
      stats_.encode_bytes += cp.data.size();
    }
    // The group may have sealed, dropped, or gained a same-node member
    // while this coroutine was suspended — re-validate, re-pick if needed.
    const auto git = groups_.find(gid);
    if (git == groups_.end() || git->second.sealed ||
        git->second.members.size() >= git->second.target ||
        group_has_node(git->second, node)) {
      g = pick_group(node);
    } else {
      g = &git->second;
    }
    if (g == nullptr) continue;
    if (member_gid_.find(cp.key) != member_gid_.end()) continue;
    Member member{cp.key, cp.id, node,
                  static_cast<std::uint32_t>(cp.data.size()),
                  cp.data.is_phantom(), {}};
    if (!cp.data.fully_phantom()) member.truth = cp.data;
    g->members.push_back(std::move(member));
    member_gid_[cp.key] = g->gid;
    if (cp.id != 0) id_gid_[cp.id] = g->gid;
    g->accum = xor_combine(g->accum, cp.data);
    ++stats_.members_encoded;
    if (g->members.size() >= g->target) seal(*g);
  }
}

void Manager::seal(Group& g) {
  if (g.sealed || g.members.empty()) return;
  g.sealed = true;
  std::erase(open_, g.gid);
  std::uint64_t max_size = 0;
  for (const Member& m : g.members)
    max_size = std::max<std::uint64_t>(max_size, m.size);
  g.parity_block_size = max_size;
  for (std::size_t pi = 0; pi < g.holders.size(); ++pi) {
    // Block 0 is the XOR; extra blocks are modeled Reed-Solomon Q blocks
    // (size-only — bitwise recovery stays the XOR single-erasure case).
    common::Buffer block = pi == 0 ? g.accum : common::Buffer::phantom(
                                                   max_size);
    if (block.size() < max_size) block.resize(max_size);
    const std::uint64_t sz = block.size();
    if (core::DecodedChunkCache* c = cache_for(g.holders[pi]))
      c->put(parity_key(g.gid, pi), std::move(block));
    ++stats_.parity_blocks;
    stats_.parity_bytes += sz;
  }
  g.accum = common::Buffer();  // resident copy now lives in the holder cache
  ++stats_.groups_sealed;
}

void Manager::seal_open_groups() {
  const std::vector<std::uint64_t> snapshot = open_;
  for (std::uint64_t gid : snapshot) {
    const auto it = groups_.find(gid);
    if (it == groups_.end()) continue;
    if (it->second.members.empty()) {
      drop_group(gid);
    } else {
      seal(it->second);
    }
  }
}

bool Manager::protects(const core::ChunkKey& key) const {
  const auto it = member_gid_.find(key);
  if (it == member_gid_.end()) return false;
  const auto git = groups_.find(it->second);
  return git != groups_.end() && git->second.sealed;
}

sim::Task<std::optional<common::Buffer>> Manager::rebuild(core::ChunkKey key,
                                                          net::NodeId dst) {
  const auto it = member_gid_.find(key);
  if (it == member_gid_.end()) co_return std::nullopt;
  const auto git = groups_.find(it->second);
  if (git == groups_.end() || !git->second.sealed) co_return std::nullopt;
  const Group& g = git->second;

  const Member* target = nullptr;
  for (const Member& m : g.members) {
    if (m.key == key) target = &m;
  }
  if (target == nullptr) co_return std::nullopt;

  // Snapshot every needed payload BEFORE the first suspension point —
  // caches mutate freely while transfers run.
  struct Part {
    net::NodeId node;
    common::Buffer data;
  };
  std::vector<Part> parts;
  std::size_t lost = 1;  // the target itself
  bool lost_real = !target->phantom;
  for (const Member& m : g.members) {
    if (m.key == key) continue;
    const common::Buffer* hit = nullptr;
    if (core::DecodedChunkCache* c = cache_for(m.node)) hit = c->get(m.key);
    if (hit != nullptr) {
      parts.push_back(Part{m.node, *hit});
    } else {
      ++lost;
      lost_real = lost_real || !m.phantom;
    }
  }
  std::vector<Part> parity;
  for (std::size_t pi = 0; pi < g.holders.size(); ++pi) {
    if (core::DecodedChunkCache* c = cache_for(g.holders[pi])) {
      if (const common::Buffer* hit = c->get(parity_key(g.gid, pi)))
        parity.push_back(Part{g.holders[pi], *hit});
    }
  }

  // Exact XOR needs every other member plus block 0; the modeled RS path
  // tolerates up to |resident parity| lost members when all are size-only.
  const bool exact = lost == 1 && !parity.empty() &&
                     parity.front().node == g.holders.front();
  const bool modeled = !lost_real && lost <= parity.size();
  if (!exact && !modeled) {
    ++stats_.rebuild_failures;
    co_return std::nullopt;
  }

  std::uint64_t moved = 0;
  for (const Part& p : parts) {
    co_await fabric_->transfer(p.node, dst, p.data.size(), shape_);
    moved += p.data.size();
  }
  const std::size_t blocks_needed = exact ? 1 : lost;
  for (std::size_t i = 0; i < blocks_needed && i < parity.size(); ++i) {
    co_await fabric_->transfer(parity[i].node, dst, parity[i].data.size(),
                               shape_);
    moved += parity[i].data.size();
  }

  common::Buffer out;
  if (exact) {
    out = parity.front().data;
    for (const Part& p : parts) out = xor_combine(out, p.data);
    out.resize(target->size);
    // xor_combine degrades to phantom wherever ANY co-member byte is
    // phantom — a modeling artifact (the real parity block holds exact
    // bits). Restore the member's retained ground truth in that case.
    if (!out.fully_real() && !target->truth.empty()) {
      out = target->truth;
      out.resize(target->size);
    }
  } else {
    out = common::Buffer::phantom(target->size);
  }
  ++stats_.rebuilds;
  stats_.rebuild_bytes += out.size();
  (void)moved;
  co_return out;
}

sim::Task<std::optional<common::Buffer>> Manager::fetch_resident(
    core::ChunkKey key, net::NodeId dst) {
  if (!cfg_.enabled) co_return std::nullopt;
  for (net::NodeId node : nodes_) {
    if (node == dst) continue;
    core::DecodedChunkCache* c = cache_for(node);
    if (c == nullptr) continue;
    const common::Buffer* hit = c->get(key);
    if (hit == nullptr) continue;
    // Snapshot before suspending — the cache mutates while transfers run.
    common::Buffer data = *hit;
    co_await fabric_->transfer(node, dst, data.size(), shape_);
    ++stats_.resident_serves;
    stats_.resident_bytes += data.size();
    co_return data;
  }
  co_return std::nullopt;
}

void Manager::drop_group(std::uint64_t gid) {
  const auto it = groups_.find(gid);
  if (it == groups_.end()) return;
  Group& g = it->second;
  if (g.sealed) {
    for (std::size_t pi = 0; pi < g.holders.size(); ++pi) {
      if (core::DecodedChunkCache* c = cache_for(g.holders[pi])) {
        c->erase(parity_key(gid, pi));
      }
      // Account every sealed block, resident or not: a block that died with
      // its holder (or was evicted) must not keep counting as durable
      // parity bytes forever.
      stats_.parity_bytes -=
          std::min<std::uint64_t>(stats_.parity_bytes, g.parity_block_size);
      if (stats_.parity_blocks > 0) --stats_.parity_blocks;
    }
  }
  for (const Member& m : g.members) {
    member_gid_.erase(m.key);
    if (m.id != 0) id_gid_.erase(m.id);
  }
  std::erase(open_, gid);
  groups_.erase(it);
  ++stats_.groups_dropped;
}

void Manager::forget_chunks(const std::vector<blob::ChunkId>& ids) {
  std::vector<std::uint64_t> doomed;
  for (blob::ChunkId id : ids) {
    const auto it = id_gid_.find(id);
    if (it != id_gid_.end()) doomed.push_back(it->second);
  }
  std::sort(doomed.begin(), doomed.end());
  doomed.erase(std::unique(doomed.begin(), doomed.end()), doomed.end());
  for (std::uint64_t gid : doomed) drop_group(gid);
}

std::size_t Manager::resident_parity_blocks() const {
  std::size_t n = 0;
  for (const auto& [gid, g] : groups_) {
    if (!g.sealed) continue;
    for (std::size_t pi = 0; pi < g.holders.size(); ++pi) {
      if (core::DecodedChunkCache* c = cache_for(g.holders[pi])) {
        if (c->get(parity_key(gid, pi)) != nullptr) ++n;
      }
    }
  }
  return n;
}

}  // namespace blobcr::redundancy
