// Parity primitives for the SCR-style peer redundancy tier (src/redundancy/).
//
// Config-only + pure helpers: safe to include from core/cloud.h. The
// stateful side (group formation, encode, rebuild) lives in manager.h.
#pragma once

#include <cstddef>

#include "common/buffer.h"

namespace blobcr::redundancy {

/// Deployment knobs, wired through CloudConfig::redundancy.
struct RedundancyConfig {
  /// Master switch; off = PR-3 four-level restart hierarchy, byte-identical.
  bool enabled = false;
  /// Data members per parity group (the XOR width). Members of one group
  /// always come from DISTINCT compute nodes, so a single node failure
  /// costs at most one member per group — the single-erasure case XOR
  /// reconstructs exactly.
  std::size_t group_size = 4;
  /// Parity blocks per group (SCR's m). 1 = plain XOR. m > 1 models
  /// Reed-Solomon style extra blocks: they add encode traffic and let
  /// size-only (phantom) payloads survive up to m lost members; bitwise
  /// reconstruction of real payloads remains the XOR single-erasure case.
  std::size_t parity_blocks = 1;
};

/// Bytewise XOR of two payloads, zero-padded to the longer one. Honesty
/// rule (same as reduce/): phantom content is unknowable, so any phantom
/// byte in either operand poisons the result to a phantom of the combined
/// length — sizes, placement and transfer costs still flow, only the
/// memxor is skipped.
common::Buffer xor_combine(const common::Buffer& a, const common::Buffer& b);

}  // namespace blobcr::redundancy
