#include "redundancy/parity.h"

#include <algorithm>
#include <cstddef>
#include <vector>

namespace blobcr::redundancy {

common::Buffer xor_combine(const common::Buffer& a, const common::Buffer& b) {
  const std::size_t n = std::max(a.size(), b.size());
  if (n == 0) return {};
  if (!a.fully_real() || !b.fully_real()) return common::Buffer::phantom(n);
  std::vector<std::byte> out(n, std::byte{0});
  const auto sa = a.bytes();
  for (std::size_t i = 0; i < sa.size(); ++i) out[i] = sa[i];
  const auto sb = b.bytes();
  for (std::size_t i = 0; i < sb.size(); ++i) out[i] ^= sb[i];
  return common::Buffer::real(std::move(out));
}

}  // namespace blobcr::redundancy
