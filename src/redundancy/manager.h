// redundancy::Manager — the cloud-scoped parity tier that sits
// *between* the per-node decoded-chunk caches and the repository
// (SCR-style multi-level resilience, ROADMAP "peer redundancy + scavenge").
// Cloud-scoped like the repository itself: the FT runner's rollback builds
// a fresh Deployment on shifted nodes, and the groups encoded by the
// previous incarnation must survive to serve it.
//
// Commit path: once a node's staged generation has published, the flush
// agent hands the manager the committed chunks' content identities +
// decoded payloads (CommitStage::ParityEncode boundary). Each payload is
// folded into an open parity group whose members all live on DISTINCT
// compute nodes — a single node failure therefore costs at most one member
// per group, the single-erasure case XOR reconstructs exactly. The payload
// ships over the fabric's peer traffic class to the group's parity holder
// node(s); when a group reaches its width the parity block(s) seal into the
// holder nodes' decoded-chunk caches under reserved content keys (the b
// field tagged 2 — disjoint from both digest keys (odd b) and ChunkId keys
// (b == 0)).
//
// Restart path: MirrorDevice::materialize_chunk consults rebuild() between
// the peer-copy and repository-fetch levels. A lost member is recomputed as
// the XOR of the surviving members' cached payloads and the parity block,
// everything moving node->node over the peer class — the repository is not
// touched. With parity_blocks > 1, up to m lost size-only (phantom) members
// per group are still recoverable (modeled Reed-Solomon).
//
// Scavenge: cr::Session::scavenge() re-seeds a lost repository from this
// tier — survivors' cached copies first, parity rebuild second.
//
// Kill-safety contract (the flush crash harness kills drains at stage
// boundaries, unwinding coroutine frames mid-encode): group state mutates
// only *after* the holder transfers complete, so a fail-stop mid-transfer
// leaves no half-registered member; a registered member whose group never
// filled is closed by seal_open_groups() at the next checkpoint boundary.
// GC reclaim of any member chunk invalidates the whole group and erases its
// parity blocks from the holder caches (no orphaned parity).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "blob/types.h"
#include "common/buffer.h"
#include "core/chunk_cache.h"
#include "net/fabric.h"
#include "redundancy/parity.h"
#include "sim/sim.h"

namespace blobcr::redundancy {

class Manager {
 public:
  /// One committed chunk, as handed over by the flush drain.
  struct ChunkPayload {
    core::ChunkKey key;
    blob::ChunkId id = 0;  // storage identity (GC reclaim unprotects by id)
    common::Buffer data;   // decoded logical payload
  };

  struct Stats {
    std::uint64_t members_encoded = 0;
    std::uint64_t encode_bytes = 0;    // member bytes shipped to holders
    std::uint64_t groups_sealed = 0;
    std::uint64_t groups_dropped = 0;  // GC / failure invalidation
    std::uint64_t parity_blocks = 0;   // sealed blocks currently tracked
    std::uint64_t parity_bytes = 0;
    std::uint64_t rebuilds = 0;
    std::uint64_t rebuild_bytes = 0;   // reconstructed payload bytes
    std::uint64_t rebuild_failures = 0;  // fell through to the repository
    std::uint64_t resident_serves = 0;   // direct copies out of tier caches
    std::uint64_t resident_bytes = 0;
  };

  Manager(sim::Simulation& sim, net::Fabric& fabric,
          const RedundancyConfig& cfg, net::Fabric::Shape peer_shape)
      : sim_(&sim), fabric_(&fabric), cfg_(cfg), shape_(peer_shape) {}

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  const RedundancyConfig& config() const { return cfg_; }
  const Stats& stats() const { return stats_; }

  /// The reserved content key of group `gid`'s parity block `pi`.
  static core::ChunkKey parity_key(std::uint64_t gid, std::size_t pi) {
    return core::ChunkKey{gid, (static_cast<std::uint64_t>(pi) << 2) | 2};
  }

  // --- membership -----------------------------------------------------------

  /// Registers a compute node's decoded-chunk cache with the tier.
  /// Idempotent per node; a re-attach replaces the cache pointer.
  void attach(net::NodeId node, core::DecodedChunkCache* cache);
  /// Deregisters every node whose registered cache is `cache` (a mirroring
  /// module tearing down its privately-owned cache). Open groups touching
  /// those nodes are dropped; sealed groups survive and simply find the
  /// node's payloads missing at rebuild time.
  void detach_cache(const core::DecodedChunkCache* cache);
  /// Fail-stop: the node's cache contents are gone (cleared by the caller).
  /// Open groups touching the node are dropped. Sealed groups where the
  /// node is a *member* are kept — rebuilding the dead node's members is
  /// exactly what the tier is for. Sealed groups where the node is a parity
  /// *holder* lost their parity blocks with the cache and are invalidated
  /// (they can no longer rebuild anything; counting their parity bytes as
  /// durable would be a lie). The node itself leaves the tier until a
  /// replacement instance re-attaches.
  void drop_node(net::NodeId node);
  /// Cold restart / repository-outage drill: every cache was cleared, so
  /// every group's payloads and parity blocks are gone. Drops all state.
  void drop_all();

  // --- commit path ----------------------------------------------------------

  /// Folds `node`'s freshly committed chunks into parity groups (see file
  /// comment). Also seeds the committing node's own cache with the decoded
  /// payloads — that resident copy is what rebuilds of *other* members of
  /// the group will read later. No-op when disabled or < 2 nodes attached.
  sim::Task<> encode_commit(net::NodeId node,
                            std::vector<ChunkPayload> chunks);

  /// Seals every partially-filled open group (checkpoint boundary: a
  /// narrower group still protects its members). Safe to call repeatedly.
  void seal_open_groups();

  // --- restart path ---------------------------------------------------------

  /// True iff `key` is a member of a *sealed* group (rebuild may still fail
  /// if survivor payloads or parity blocks were evicted).
  bool protects(const core::ChunkKey& key) const;

  /// Reconstructs the payload of member `key`, delivering to `dst` over the
  /// peer traffic class. nullopt when the key is unprotected or too much of
  /// the group is gone — the caller falls through to the repository.
  sim::Task<std::optional<common::Buffer>> rebuild(core::ChunkKey key,
                                                   net::NodeId dst);

  /// Direct peer copy out of the tier's resident copies: the first attached
  /// node cache (attach order, deterministic) holding `key` ships it to
  /// `dst` over the peer class. The tier, like the repository, outlives a
  /// single deployment — this level serves a rollback onto a fresh
  /// Deployment whose prefetch bus has no holder registry yet, out of the
  /// previous deployment's surviving node caches. nullopt on a miss.
  sim::Task<std::optional<common::Buffer>> fetch_resident(core::ChunkKey key,
                                                          net::NodeId dst);

  // --- GC -------------------------------------------------------------------

  /// Chunk-reclaim hook body: any group holding a reclaimed member is
  /// invalidated and its parity blocks are erased from the holder caches.
  void forget_chunks(const std::vector<blob::ChunkId>& ids);

  std::size_t open_groups() const { return open_.size(); }
  std::size_t sealed_groups() const {
    return groups_.size() - open_.size();
  }
  /// Parity blocks still resident in attached holder caches (orphan check).
  std::size_t resident_parity_blocks() const;
  /// The group id protecting `key`, if any (tests probe parity residency).
  std::optional<std::uint64_t> group_of(const core::ChunkKey& key) const {
    const auto it = member_gid_.find(key);
    if (it == member_gid_.end()) return std::nullopt;
    return it->second;
  }
  /// Parity holder nodes of group `gid` (empty when unknown).
  std::vector<net::NodeId> holders_of(std::uint64_t gid) const {
    const auto it = groups_.find(gid);
    return it == groups_.end() ? std::vector<net::NodeId>{}
                               : it->second.holders;
  }

 private:
  struct Member {
    core::ChunkKey key;
    blob::ChunkId id = 0;
    net::NodeId node = 0;
    std::uint32_t size = 0;  // logical payload length
    bool phantom = false;
    /// Simulation ground truth for payloads with real content. The real
    /// parity block's bits reconstruct a lost member exactly, but the
    /// simulator cannot XOR phantom bytes — a co-member's phantom segment
    /// would degrade this member's real segments to phantom on rebuild.
    /// Kept only when the payload has real bytes; pure-phantom bulk
    /// payloads (the benchmark regime) stay O(1).
    common::Buffer truth;
  };
  struct Group {
    std::uint64_t gid = 0;
    bool sealed = false;
    std::size_t target = 0;  // member count that seals the group
    std::vector<Member> members;
    std::vector<net::NodeId> holders;  // parity holder nodes (size m)
    common::Buffer accum;              // running XOR (block 0)
    /// Sealed-block size (stats_ accounting stays honest when a block is
    /// evicted or dies with its holder before the group is dropped).
    std::uint64_t parity_block_size = 0;
  };

  core::DecodedChunkCache* cache_for(net::NodeId node) const;
  bool group_has_node(const Group& g, net::NodeId node) const;
  /// An open group node may join, or a freshly opened one. nullptr when no
  /// group can be formed (fewer than 2 attached nodes).
  Group* pick_group(net::NodeId node);
  void seal(Group& g);
  void drop_group(std::uint64_t gid);

  sim::Simulation* sim_;
  net::Fabric* fabric_;
  RedundancyConfig cfg_;
  net::Fabric::Shape shape_;
  Stats stats_;
  std::uint64_t next_gid_ = 1;
  std::size_t holder_rr_ = 0;  // round-robin cursor over nodes_
  std::vector<net::NodeId> nodes_;  // attach order
  std::unordered_map<net::NodeId, core::DecodedChunkCache*> caches_;
  std::unordered_map<std::uint64_t, Group> groups_;
  std::vector<std::uint64_t> open_;  // open group ids, oldest first
  std::unordered_map<core::ChunkKey, std::uint64_t, core::ChunkKeyHash>
      member_gid_;
  std::unordered_map<blob::ChunkId, std::uint64_t> id_gid_;
};

}  // namespace blobcr::redundancy
