#include "pfs/pvfs.h"

#include <algorithm>

#include "sim/when_all.h"

namespace blobcr::pfs {

sim::Task<> PvfsClient::meta_rpc() {
  co_await cluster_->fabric_->message(node_, cluster_->cfg_.meta_node);
  co_await cluster_->meta_service_.process();
  co_await cluster_->fabric_->message(cluster_->cfg_.meta_node, node_);
}

PvfsCluster::FileRec& PvfsClient::lookup(FileId file) {
  const auto it = cluster_->files_.find(file);
  if (it == cluster_->files_.end()) throw PvfsError("stale file handle");
  return it->second;
}

sim::Task<FileId> PvfsClient::create(const std::string& path) {
  co_await meta_rpc();
  if (cluster_->names_.count(path) != 0) throw PvfsError("file exists: " + path);
  const FileId id = cluster_->next_file_id_++;
  PvfsCluster::FileRec rec;
  rec.id = id;
  rec.path = path;
  rec.start_server =
      static_cast<std::size_t>(id % cluster_->cfg_.io_servers.size());
  cluster_->names_[path] = id;
  cluster_->files_[id] = std::move(rec);
  co_return id;
}

sim::Task<FileId> PvfsClient::open(const std::string& path) {
  co_await meta_rpc();
  const auto it = cluster_->names_.find(path);
  if (it == cluster_->names_.end()) throw PvfsError("no such file: " + path);
  co_return it->second;
}

sim::Task<std::uint64_t> PvfsClient::stat_size(const std::string& path) {
  co_await meta_rpc();
  const auto it = cluster_->names_.find(path);
  if (it == cluster_->names_.end()) throw PvfsError("no such file: " + path);
  co_return cluster_->files_.at(it->second).size;
}

sim::Task<> PvfsClient::remove(const std::string& path) {
  co_await meta_rpc();
  const auto it = cluster_->names_.find(path);
  if (it == cluster_->names_.end()) throw PvfsError("no such file: " + path);
  const FileId id = it->second;
  cluster_->stored_bytes_ -=
      cluster_->files_.at(id).content.allocated_bytes();
  cluster_->files_.erase(id);
  cluster_->names_.erase(it);
}

std::uint64_t PvfsClient::cached_size(FileId file) const {
  const auto it = cluster_->files_.find(file);
  return it == cluster_->files_.end() ? 0 : it->second.size;
}

PvfsClient::StripeTarget PvfsClient::target_of(
    const PvfsCluster::FileRec& rec, std::uint64_t unit) const {
  const std::size_t n = cluster_->cfg_.io_servers.size();
  const std::uint64_t s = cluster_->cfg_.stripe_size;
  StripeTarget t;
  t.server = (rec.start_server + static_cast<std::size_t>(unit)) % n;
  t.bstream_offset = (unit / n) * s;
  return t;
}

namespace {

/// One server's share of a striped operation: contiguous segments in that
/// server's per-file bstream.
struct ServerOp {
  std::uint64_t bytes = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> segments;  // off, len

  void add(std::uint64_t bstream_off, std::uint64_t len) {
    bytes += len;
    if (!segments.empty() &&
        segments.back().first + segments.back().second == bstream_off) {
      segments.back().second += len;  // coalesce sequential stripe units
      return;
    }
    segments.emplace_back(bstream_off, len);
  }
};

/// Disk stream id for (file, server): each file has its own bstream per
/// server — interleaved traffic to many files forces head movement.
std::uint64_t bstream_id(FileId file, std::size_t server) {
  return common::mix64(file * 1315423911ULL + server);
}

}  // namespace

sim::Task<> PvfsClient::write(FileId file, std::uint64_t offset,
                              common::Buffer data) {
  PvfsCluster::FileRec& rec = lookup(file);
  const std::uint64_t stripe = cluster_->cfg_.stripe_size;
  const std::uint64_t len = data.size();
  if (len == 0) co_return;

  std::unordered_map<std::size_t, ServerOp> ops;
  for (std::uint64_t pos = offset; pos < offset + len;) {
    const std::uint64_t unit = pos / stripe;
    const std::uint64_t unit_end = (unit + 1) * stripe;
    const std::uint64_t piece = std::min(unit_end, offset + len) - pos;
    const StripeTarget t = target_of(rec, unit);
    ops[t.server].add(t.bstream_offset + (pos - unit * stripe), piece);
    pos += piece;
  }

  std::vector<sim::Task<>> tasks;
  tasks.reserve(ops.size());
  for (const auto& [server, op] : ops) {
    const PvfsCluster::IoServer& io = cluster_->cfg_.io_servers[server];
    tasks.push_back(
        [](PvfsClient* self, PvfsCluster::IoServer srv, FileId fid,
           std::size_t server_index, ServerOp server_op,
           std::uint64_t buf) -> sim::Task<> {
          co_await self->cluster_->fabric_->transfer(self->node_, srv.node,
                                                     server_op.bytes);
          // The server services the request in flow-buffer-sized pieces, so
          // concurrent traffic to other files interleaves at the disk.
          for (const auto& [off, seg_len] : server_op.segments) {
            for (std::uint64_t done = 0; done < seg_len; done += buf) {
              const std::uint64_t piece = std::min(buf, seg_len - done);
              co_await srv.disk->write(bstream_id(fid, server_index),
                                       off + done, piece);
            }
          }
        }(this, io, file, server, op, cluster_->cfg_.stripe_size));
  }
  co_await sim::run_window(*cluster_->sim_, cluster_->cfg_.client_window,
                           std::move(tasks));

  cluster_->stored_bytes_ -= rec.content.allocated_bytes();
  rec.content.write(offset, std::move(data));
  cluster_->stored_bytes_ += rec.content.allocated_bytes();
  rec.size = std::max(rec.size, offset + len);
}

sim::Task<common::Buffer> PvfsClient::read(FileId file, std::uint64_t offset,
                                           std::uint64_t len) {
  PvfsCluster::FileRec& rec = lookup(file);
  if (offset >= rec.size) co_return common::Buffer();
  len = std::min(len, rec.size - offset);
  const std::uint64_t stripe = cluster_->cfg_.stripe_size;

  std::unordered_map<std::size_t, ServerOp> ops;
  for (std::uint64_t pos = offset; pos < offset + len;) {
    const std::uint64_t unit = pos / stripe;
    const std::uint64_t unit_end = (unit + 1) * stripe;
    const std::uint64_t piece = std::min(unit_end, offset + len) - pos;
    const StripeTarget t = target_of(rec, unit);
    ops[t.server].add(t.bstream_offset + (pos - unit * stripe), piece);
    pos += piece;
  }

  std::vector<sim::Task<>> tasks;
  tasks.reserve(ops.size());
  for (const auto& [server, op] : ops) {
    const PvfsCluster::IoServer& io = cluster_->cfg_.io_servers[server];
    tasks.push_back(
        [](PvfsClient* self, PvfsCluster::IoServer srv, FileId fid,
           std::size_t server_index, ServerOp server_op,
           std::uint64_t buf) -> sim::Task<> {
          for (const auto& [off, seg_len] : server_op.segments) {
            for (std::uint64_t done = 0; done < seg_len; done += buf) {
              const std::uint64_t piece = std::min(buf, seg_len - done);
              co_await srv.disk->read(bstream_id(fid, server_index),
                                      off + done, piece);
            }
          }
          co_await self->cluster_->fabric_->transfer(srv.node, self->node_,
                                                     server_op.bytes);
        }(this, io, file, server, op, cluster_->cfg_.stripe_size));
  }
  co_await sim::run_window(*cluster_->sim_, cluster_->cfg_.client_window,
                           std::move(tasks));
  co_return rec.content.read(offset, len);
}

}  // namespace blobcr::pfs
