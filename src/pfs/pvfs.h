// PvfsCluster / PvfsClient: the paper's baseline substrate — a PVFS-style
// parallel file system.
//
// Deliberately faithful properties (they drive the paper's comparisons):
//  * one metadata server; namespace operations are serialized RPCs;
//  * files striped round-robin over I/O servers with a static start server
//    derived from the file id — placement never adapts to load;
//  * every client reading the same file hits the same stripe servers;
//  * a server stores each file's stripes in its own local bstream, so
//    concurrent traffic to many files interleaves streams and pays disk
//    positioning costs (contrast: BlobSeer providers append to one log);
//  * no client-side caching.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/buffer.h"
#include "common/sparse.h"
#include "net/fabric.h"
#include "net/service.h"
#include "sim/sim.h"
#include "storage/disk.h"

namespace blobcr::pfs {

using FileId = std::uint64_t;

class PvfsError : public std::runtime_error {
 public:
  explicit PvfsError(const std::string& what) : std::runtime_error(what) {}
};

class PvfsCluster {
 public:
  struct IoServer {
    net::NodeId node = 0;
    storage::Disk* disk = nullptr;
  };
  struct Config {
    net::NodeId meta_node = 0;
    std::vector<IoServer> io_servers;
    std::uint64_t stripe_size = 256 * 1024;  // paper: 256 KB
    sim::Duration meta_request_cost = 300 * sim::kMicrosecond;
    std::size_t client_window = 8;  // outstanding stripe requests per op
  };

  PvfsCluster(sim::Simulation& sim, net::Fabric& fabric, const Config& cfg)
      : sim_(&sim),
        fabric_(&fabric),
        cfg_(cfg),
        meta_service_(sim, "pvfs-mds", cfg.meta_request_cost) {}

  const Config& config() const { return cfg_; }
  std::uint64_t total_stored_bytes() const { return stored_bytes_; }
  std::uint64_t meta_requests() const { return meta_service_.requests_served(); }
  std::size_t file_count() const { return files_.size(); }

 private:
  friend class PvfsClient;

  struct FileRec {
    FileId id = 0;
    std::string path;
    std::uint64_t size = 0;
    std::size_t start_server = 0;  // static stripe placement
    common::SparseFile content;
  };

  sim::Simulation* sim_;
  net::Fabric* fabric_;
  Config cfg_;
  net::ServiceQueue meta_service_;
  std::unordered_map<std::string, FileId> names_;
  std::unordered_map<FileId, FileRec> files_;
  FileId next_file_id_ = 1;
  std::uint64_t stored_bytes_ = 0;
};

class PvfsClient {
 public:
  PvfsClient(PvfsCluster& cluster, net::NodeId node)
      : cluster_(&cluster), node_(node) {}

  net::NodeId node() const { return node_; }

  sim::Task<FileId> create(const std::string& path);
  sim::Task<FileId> open(const std::string& path);
  sim::Task<std::uint64_t> stat_size(const std::string& path);
  sim::Task<> remove(const std::string& path);

  sim::Task<> write(FileId file, std::uint64_t offset, common::Buffer data);
  sim::Task<common::Buffer> read(FileId file, std::uint64_t offset,
                                 std::uint64_t len);

  /// Size without an RPC (the client tracks it from its own writes; for
  /// foreign files prefer stat_size).
  std::uint64_t cached_size(FileId file) const;

 private:
  sim::Task<> meta_rpc();
  PvfsCluster::FileRec& lookup(FileId file);

  /// Maps a stripe unit to (server, offset inside that server's bstream).
  struct StripeTarget {
    std::size_t server;
    std::uint64_t bstream_offset;
  };
  StripeTarget target_of(const PvfsCluster::FileRec& rec,
                         std::uint64_t unit) const;

  PvfsCluster* cluster_;
  net::NodeId node_;
};

}  // namespace blobcr::pfs
