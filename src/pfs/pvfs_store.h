// ByteStore adapter over a PVFS file — this is how hypervisor hosts see
// images "through the PVFS mount point" in the baselines.
#pragma once

#include <memory>
#include <string>

#include "pfs/pvfs.h"
#include "storage/byte_store.h"

namespace blobcr::pfs {

class PvfsFileStore : public storage::ByteStore {
 public:
  PvfsFileStore(PvfsCluster& cluster, net::NodeId node, FileId file)
      : client_(cluster, node), file_(file) {}

  /// Opens (or creates) `path` and wraps it.
  static sim::Task<std::unique_ptr<PvfsFileStore>> open(
      PvfsCluster& cluster, net::NodeId node, const std::string& path,
      bool create_if_missing) {
    PvfsClient client(cluster, node);
    FileId id = 0;
    bool found = true;
    try {
      id = co_await client.open(path);
    } catch (const PvfsError&) {
      if (!create_if_missing) throw;
      found = false;  // co_await is not allowed inside a catch handler
    }
    if (!found) id = co_await client.create(path);
    co_return std::make_unique<PvfsFileStore>(cluster, node, id);
  }

  sim::Task<> write(std::uint64_t offset, common::Buffer data) override {
    co_await client_.write(file_, offset, std::move(data));
  }
  sim::Task<common::Buffer> read(std::uint64_t offset,
                                 std::uint64_t len) override {
    co_return co_await client_.read(file_, offset, len);
  }
  std::uint64_t size() const override { return client_.cached_size(file_); }
  std::uint64_t allocated_bytes() const override {
    return client_.cached_size(file_);
  }
  FileId file() const { return file_; }

 private:
  PvfsClient client_;
  FileId file_;
};

}  // namespace blobcr::pfs
