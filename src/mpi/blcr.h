// Blcr: Berkeley Lab Checkpoint/Restart, modeled at the fidelity the paper
// uses it — dump every memory region of a process into a file in the guest
// file system (blcr "indiscriminately dumps all memory allocated by the
// process", which is why process-level checkpoints are bigger than
// application-level ones), and load them back on restart.
//
// File layout: a 4 KiB-aligned real header (region names, sizes, digests)
// followed by the raw region payloads. The header stays real even when the
// payloads are phantom, so restore can always decode it.
#pragma once

#include <cstdint>
#include <string>

#include "common/codec.h"
#include "guestfs/simplefs.h"
#include "vm/vm_instance.h"

namespace blobcr::mpi {

class Blcr {
 public:
  static constexpr std::uint64_t kHeaderAlign = 4096;

  static constexpr std::uint64_t align_up(std::uint64_t v) {
    return (v + kHeaderAlign - 1) / kHeaderAlign * kHeaderAlign;
  }

  /// Dumps `proc` (all registered regions + runtime overhead) to `path`.
  /// Returns the checkpoint file size.
  static sim::Task<std::uint64_t> dump(vm::GuestProcess& proc,
                                       const std::string& path) {
    guestfs::SimpleFs* fs = proc.vm().fs();
    if (fs == nullptr) throw std::runtime_error("guest fs not mounted");
    co_await proc.vm().gate();
    // blcr writes a fresh context file per checkpoint epoch.
    if (fs->exists(path)) fs->unlink(path);

    common::ByteWriter header;
    header.u32(static_cast<std::uint32_t>(proc.regions().size()));
    for (const auto& [name, buf] : proc.regions()) {
      header.str(name);
      header.u64(buf.size());
      header.u64(buf.digest());
    }
    // The runtime image (text, libs, stack) that blcr dumps besides data.
    const std::uint64_t overhead = proc.vm().config().process_overhead_bytes;
    header.u64(overhead);
    common::Buffer head = header.take();
    const std::uint64_t payload_at =
        (head.size() + kHeaderAlign - 1) / kHeaderAlign * kHeaderAlign;
    head.resize(payload_at);

    const guestfs::Fd fd = fs->open(path, /*create=*/true);
    co_await fs->pwrite(fd, 0, std::move(head));
    // Regions are page-aligned like real core/blcr dumps (also keeps real
    // and phantom payloads in distinct FS blocks).
    std::uint64_t at = payload_at;
    for (const auto& [name, buf] : proc.regions()) {
      co_await fs->pwrite(fd, at, buf);
      at = align_up(at + buf.size());
    }
    if (overhead > 0) {
      co_await fs->pwrite(fd, at, common::Buffer::phantom(overhead));
      at += overhead;
    }
    fs->close(fd);
    co_return at;
  }

  /// Restores regions from a dump into `proc`. Returns false if any
  /// region's digest does not match the header record.
  static sim::Task<bool> restore(vm::GuestProcess& proc,
                                 const std::string& path) {
    guestfs::SimpleFs* fs = proc.vm().fs();
    if (fs == nullptr) throw std::runtime_error("guest fs not mounted");
    co_await proc.vm().gate();

    const guestfs::Fd fd = fs->open(path);
    common::Buffer head = co_await fs->pread(fd, 0, kHeaderAlign);
    common::ByteReader r(head);
    const std::uint32_t n = r.u32();
    struct Rec {
      std::string name;
      std::uint64_t size;
      std::uint64_t digest;
    };
    std::vector<Rec> recs;
    recs.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      Rec rec;
      rec.name = r.str();
      rec.size = r.u64();
      rec.digest = r.u64();
      recs.push_back(std::move(rec));
    }
    const std::uint64_t overhead = r.u64();

    std::uint64_t at = kHeaderAlign;
    bool ok = true;
    for (const Rec& rec : recs) {
      common::Buffer data = co_await fs->pread(fd, at, rec.size);
      at = align_up(at + rec.size);
      ok = ok && data.size() == rec.size && data.digest() == rec.digest;
      proc.set_region(rec.name, std::move(data));
    }
    // Rehydrate the runtime image (uncharged: it is implicit in the read of
    // the remaining file content).
    common::Buffer runtime = co_await fs->pread(fd, at, overhead);
    (void)runtime;
    fs->close(fd);
    co_return ok;
  }
};

}  // namespace blobcr::mpi
