// The paper's extended coordinated checkpointing protocol (§3.3):
//   1. drain communication channels (marker messages => a barrier: no rank
//      proceeds until everyone stopped sending and received what was in
//      flight);
//   2. dump process state to guest files — either the application's own
//      writer or a BLCR dump;
//   3. sync(2) the guest file system so the virtual disk is consistent;
//   4. one rank per VM asks the node-local checkpointing proxy to snapshot
//      the virtual disk;
//   5. barrier, then resume application execution.
#pragma once

#include <functional>

#include "guestfs/simplefs.h"
#include "mpi/mpi.h"
#include "reduce/reducer.h"
#include "sim/sim.h"

namespace blobcr::mpi {

struct CoordinatedHooks {
  /// Writes this rank's state into the guest FS (app-level writer or Blcr).
  std::function<sim::Task<>()> dump;
  /// Issued by the VM leader rank only: ask the proxy for a disk snapshot.
  std::function<sim::Task<>()> request_disk_snapshot;
  /// True for exactly one rank per VM.
  bool vm_leader = false;
  /// The rank's guest file system (synced in step 3 by the leader).
  guestfs::SimpleFs* fs = nullptr;
  /// Deployment-wide snapshot reduction pipeline (optional). The epoch
  /// leader opens one dedup-index epoch covering every rank's disk
  /// snapshot, so the whole coordinated checkpoint shares per-epoch stats
  /// and cross-rank dedup is attributed to this checkpoint.
  reduce::Reducer* reducer = nullptr;
  /// True for exactly one rank of the whole communicator (e.g. rank 0).
  bool epoch_leader = false;
  /// Asynchronous commit pipeline: awaited by the VM leader after the
  /// snapshot barrier; resolves when this VM's staged snapshot has fully
  /// published (rethrows if the drain failed). Set it on every rank or on
  /// none — it adds one collective barrier. Leave unset for synchronous
  /// commits.
  std::function<sim::Task<>()> wait_drained;
  /// Checkpoint catalog control plane (cr::Session): the epoch leader
  /// durably stages the global checkpoint record once every rank's snapshot
  /// is captured (still provisional under the async pipeline), and — after
  /// the drain barrier — publishes it Complete, making the line selectable
  /// for restart. Each adds one collective barrier when set (set both on
  /// every rank or on none; only the epoch leader's are invoked). A drain
  /// that dies between the two leaves the record staged, never a torn
  /// "complete" checkpoint.
  std::function<sim::Task<>()> stage_record;
  std::function<sim::Task<>()> publish_record;
};

/// Runs one global coordinated checkpoint from the calling rank's
/// perspective. Every rank of the communicator must call this collectively.
inline sim::Task<> coordinated_checkpoint(MpiWorld::Comm comm,
                                          CoordinatedHooks hooks) {
  // 1. Drain: marker messages stop senders; in-flight traffic completes.
  co_await comm.barrier();
  // The drain barrier doubles as the epoch edge: every rank's snapshot
  // below belongs to the epoch opened here.
  if (hooks.epoch_leader && hooks.reducer != nullptr) {
    hooks.reducer->begin_epoch();
  }
  // 2. Dump process state into the guest file system.
  if (hooks.dump) co_await hooks.dump();
  // All ranks co-located on a VM must have finished dumping before the
  // leader syncs that VM's file system.
  co_await comm.barrier();
  // 3. Flush guest page cache to the virtual disk (avoids snapshotting a
  //    file system with unwritten dirty pages — see
  //    SimpleFsTest.UnsyncedDataLostOnRemount for why this matters).
  if (hooks.vm_leader && hooks.fs != nullptr) co_await hooks.fs->sync();
  // 4. Disk snapshot, one request per VM.
  if (hooks.vm_leader && hooks.request_disk_snapshot)
    co_await hooks.request_disk_snapshot();
  // 5. Everybody waits until all snapshots completed (synchronous commits)
  //    or staged (async pipeline — the VMs have already resumed), then the
  //    guest application resumes.
  co_await comm.barrier();
  // 6. Catalog staging: every rank's snapshot exists (possibly still
  //    provisional), so the epoch leader durably records the line's intent
  //    in the checkpoint catalog before the drains decide its fate.
  if (hooks.stage_record) {
    if (hooks.epoch_leader) co_await hooks.stage_record();
    co_await comm.barrier();
  }
  // 7. Async drain barrier: a "complete global checkpoint" means globally
  //    *published*, so each VM leader waits for its node's background drain
  //    before the final collective barrier. A drain failure surfaces here
  //    as a failed checkpoint, exactly like a failed synchronous commit in
  //    step 4 — and leaves the staged catalog record incomplete.
  if (hooks.wait_drained) {
    if (hooks.vm_leader) co_await hooks.wait_drained();
    co_await comm.barrier();
  }
  // 8. Catalog publication: the record flips to Complete — §3.2's "last
  //    complete global checkpoint" now durably names this line — before
  //    any rank resumes application work.
  if (hooks.publish_record) {
    if (hooks.epoch_leader) co_await hooks.publish_record();
    co_await comm.barrier();
  }
}

}  // namespace blobcr::mpi
