// Mini-MPI: message passing between guest processes across VMs, plus the
// coordinated checkpoint protocol of the paper's modified mpich2 (§3.3):
// drain channels with markers, dump process state, sync the guest FS,
// request a disk snapshot from the node-local proxy, resume.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/buffer.h"
#include "net/fabric.h"
#include "sim/sim.h"
#include "vm/vm_instance.h"

namespace blobcr::mpi {

class MpiError : public std::runtime_error {
 public:
  explicit MpiError(const std::string& what) : std::runtime_error(what) {}
};

class MpiWorld {
 public:
  MpiWorld(sim::Simulation& sim, net::Fabric& fabric,
           std::uint64_t header_bytes = 64)
      : sim_(&sim), fabric_(&fabric), header_bytes_(header_bytes),
        bind_wq_(sim) {}

  /// Fixes the communicator size. Must be called before any rank starts
  /// communicating (collectives consult size() — a lazily growing world
  /// would let early ranks run a barrier of one).
  void set_size(int n) {
    if (static_cast<std::size_t>(n) > ranks_.size())
      ranks_.resize(static_cast<std::size_t>(n));
  }

  /// Registers a rank running inside a guest process (MPI_Init). Senders to
  /// a not-yet-registered rank rendezvous until it appears.
  void register_rank(int rank, vm::GuestProcess* proc) {
    set_size(rank + 1);
    ranks_[static_cast<std::size_t>(rank)].proc = proc;
    bind_wq_.notify_all();
  }

  /// Re-binds a rank after restart (the process now lives in a new VM).
  void rebind_rank(int rank, vm::GuestProcess* proc) {
    ranks_.at(static_cast<std::size_t>(rank)).proc = proc;
  }

  /// Reconstructs the communicator after a rollback: drops every in-flight
  /// message and resets collective state, leaving all ranks unbound. The
  /// coordinated checkpoint drains channels before snapshotting (§3.3), so
  /// checkpointed process state expects empty channels; pre-failure traffic
  /// must not leak into the restarted world ("in-transit network traffic is
  /// discarded", §2.3). Only call with no live rank processes.
  void reset_for_restart() {
    for (auto& r : ranks_) {
      r.inbox.clear();
      r.proc = nullptr;
    }
    barrier_gens_.assign(barrier_gens_.size(), 0);
    coll_gens_.assign(coll_gens_.size(), 0);
  }

  /// Rebuilds the world at exactly `n` ranks across an elastic (N -> M)
  /// restart. set_size() only ever grows — register_rank must never shrink
  /// the world under its peers — so a rescaled job needs this explicit
  /// form: a shrink would otherwise leave collectives waiting on ranks
  /// that no longer exist. Only call with no live rank processes.
  void resize_world(int n) {
    ranks_.clear();
    ranks_.resize(static_cast<std::size_t>(n));
    barrier_gens_.assign(static_cast<std::size_t>(n), 0);
    coll_gens_.assign(static_cast<std::size_t>(n), 0);
  }

  int size() const { return static_cast<int>(ranks_.size()); }

  class Comm {
   public:
    Comm() = default;
    Comm(MpiWorld* world, int rank) : world_(world), rank_(rank) {}

    int rank() const { return rank_; }
    int size() const { return world_->size(); }

    sim::Task<> send(int to, int tag, common::Buffer data);
    sim::Task<common::Buffer> recv(int from, int tag);
    /// Classic halo-exchange primitive.
    sim::Task<common::Buffer> sendrecv(int to, int tag_out,
                                       common::Buffer data, int from,
                                       int tag_in);
    sim::Task<> barrier();

    // --- collectives (mpich2-style algorithms) -------------------------
    // All ranks must call each collective in the same order; tags derive
    // from a per-rank generation counter that stays aligned across ranks
    // exactly like the barrier's.

    /// Binomial-tree broadcast: log2(n) rounds from `root`.
    sim::Task<> bcast(common::Buffer& data, int root);
    /// Binomial-tree element-wise sum; the returned vector is the global
    /// sum at `root` and this rank's partial contribution elsewhere.
    sim::Task<std::vector<double>> reduce_sum(std::vector<double> values,
                                              int root);
    /// reduce_sum to rank 0 + bcast (mpich2's small-message allreduce).
    sim::Task<std::vector<double>> allreduce_sum(std::vector<double> values);
    /// Flat gather: every rank's payload, ordered by rank, at `root`
    /// (empty vector elsewhere).
    sim::Task<std::vector<common::Buffer>> gather(common::Buffer mine,
                                                  int root);
    /// Flat scatter: `parts[r]` (required only at `root`) to each rank r;
    /// returns this rank's part.
    sim::Task<common::Buffer> scatter(std::vector<common::Buffer> parts,
                                      int root);

   private:
    /// Per-collective tag block, disjoint from barrier and user tags.
    int coll_tag();

    MpiWorld* world_ = nullptr;
    int rank_ = 0;
  };

  Comm comm(int rank) { return Comm(this, rank); }

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  friend class Comm;

  struct RankState {
    vm::GuestProcess* proc = nullptr;
    // (src, tag) -> channel of payloads.
    std::map<std::pair<int, int>, std::unique_ptr<sim::Channel<common::Buffer>>>
        inbox;
  };

  sim::Channel<common::Buffer>& chan(int rank, int src, int tag) {
    auto& slot = ranks_.at(static_cast<std::size_t>(rank))
                     .inbox[std::make_pair(src, tag)];
    if (!slot) slot = std::make_unique<sim::Channel<common::Buffer>>(*sim_);
    return *slot;
  }

  vm::VmInstance& vm_of(int rank) {
    vm::GuestProcess* p = ranks_.at(static_cast<std::size_t>(rank)).proc;
    if (p == nullptr) throw MpiError("rank not bound");
    return p->vm();
  }

  /// Waits until `rank` has registered (start-up rendezvous).
  sim::Task<vm::VmInstance*> vm_of_async(int rank) {
    while (ranks_.at(static_cast<std::size_t>(rank)).proc == nullptr) {
      co_await bind_wq_.wait();
    }
    co_return &ranks_[static_cast<std::size_t>(rank)].proc->vm();
  }

  sim::Simulation* sim_;
  net::Fabric* fabric_;
  std::uint64_t header_bytes_;
  std::vector<RankState> ranks_;
  std::vector<std::uint64_t> barrier_gens_;
  std::vector<std::uint64_t> coll_gens_;
  sim::WaitQueue bind_wq_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

inline sim::Task<> MpiWorld::Comm::send(int to, int tag,
                                        common::Buffer data) {
  MpiWorld& w = *world_;
  vm::VmInstance& src_vm = w.vm_of(rank_);
  vm::VmInstance& dst_vm = *co_await w.vm_of_async(to);
  co_await src_vm.gate();
  ++w.messages_sent_;
  w.bytes_sent_ += data.size();
  co_await w.fabric_->transfer(src_vm.host(), dst_vm.host(),
                               data.size() + w.header_bytes_);
  w.chan(to, rank_, tag).push(std::move(data));
}

inline sim::Task<common::Buffer> MpiWorld::Comm::recv(int from, int tag) {
  MpiWorld& w = *world_;
  common::Buffer data = co_await w.chan(rank_, from, tag).recv();
  co_await w.vm_of(rank_).gate();  // delivery completes only while running
  co_return data;
}

inline sim::Task<common::Buffer> MpiWorld::Comm::sendrecv(
    int to, int tag_out, common::Buffer data, int from, int tag_in) {
  co_await send(to, tag_out, std::move(data));
  co_return co_await recv(from, tag_in);
}

inline int MpiWorld::Comm::coll_tag() {
  MpiWorld& w = *world_;
  if (w.coll_gens_.size() < static_cast<std::size_t>(size()))
    w.coll_gens_.resize(static_cast<std::size_t>(size()), 0);
  const std::uint64_t gen = w.coll_gens_[static_cast<std::size_t>(rank_)]++;
  // [5e8, 9e8): below the barrier's block, far above user tags.
  return 500'000'000 + static_cast<int>(gen % 400'000'000);
}

inline sim::Task<> MpiWorld::Comm::bcast(common::Buffer& data, int root) {
  const int n = size();
  if (n <= 1) co_return;
  const int tag = coll_tag();
  const int relative = (rank_ - root + n) % n;
  // Receive phase: find the peer one subtree up.
  int mask = 1;
  while (mask < n) {
    if (relative & mask) {
      const int src = (relative - mask + root) % n;
      data = co_await recv(src, tag);
      break;
    }
    mask <<= 1;
  }
  // Forward phase: relay to the subtrees below the bit we received at
  // (bits under the receive bit are zero, so relative + mask is a child).
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < n) {
      const int dst = (relative + mask + root) % n;
      co_await send(dst, tag, data);
    }
    mask >>= 1;
  }
}

inline sim::Task<std::vector<double>> MpiWorld::Comm::reduce_sum(
    std::vector<double> values, int root) {
  const int n = size();
  if (n <= 1) co_return values;
  const int tag = coll_tag();
  const int relative = (rank_ - root + n) % n;
  auto encode = [](const std::vector<double>& v) {
    std::vector<std::byte> bytes(v.size() * sizeof(double));
    std::memcpy(bytes.data(), v.data(), bytes.size());
    return common::Buffer::real(std::move(bytes));
  };
  int mask = 1;
  while (mask < n) {
    if ((relative & mask) == 0) {
      const int source = relative | mask;
      if (source < n) {
        const common::Buffer in = co_await recv((source + root) % n, tag);
        if (in.size() != values.size() * sizeof(double))
          throw MpiError("reduce_sum: element count mismatch");
        const double* other =
            reinterpret_cast<const double*>(in.bytes().data());
        for (std::size_t i = 0; i < values.size(); ++i) values[i] += other[i];
      }
    } else {
      const int dst = ((relative & ~mask) + root) % n;
      co_await send(dst, tag, encode(values));
      break;
    }
    mask <<= 1;
  }
  co_return values;
}

inline sim::Task<std::vector<double>> MpiWorld::Comm::allreduce_sum(
    std::vector<double> values) {
  std::vector<double> total = co_await reduce_sum(std::move(values), 0);
  if (size() <= 1) co_return total;
  std::vector<std::byte> bytes(total.size() * sizeof(double));
  std::memcpy(bytes.data(), total.data(), bytes.size());
  common::Buffer buf = common::Buffer::real(std::move(bytes));
  co_await bcast(buf, 0);
  std::vector<double> out(buf.size() / sizeof(double));
  std::memcpy(out.data(), buf.bytes().data(), buf.size());
  co_return out;
}

inline sim::Task<std::vector<common::Buffer>> MpiWorld::Comm::gather(
    common::Buffer mine, int root) {
  const int n = size();
  const int tag = coll_tag();
  std::vector<common::Buffer> out;
  if (rank_ == root) {
    out.resize(static_cast<std::size_t>(n));
    out[static_cast<std::size_t>(root)] = std::move(mine);
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      out[static_cast<std::size_t>(r)] = co_await recv(r, tag);
    }
  } else {
    co_await send(root, tag, std::move(mine));
  }
  co_return out;
}

inline sim::Task<common::Buffer> MpiWorld::Comm::scatter(
    std::vector<common::Buffer> parts, int root) {
  const int n = size();
  const int tag = coll_tag();
  if (rank_ == root) {
    if (parts.size() != static_cast<std::size_t>(n))
      throw MpiError("scatter: need one part per rank at the root");
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      co_await send(r, tag, std::move(parts[static_cast<std::size_t>(r)]));
    }
    co_return std::move(parts[static_cast<std::size_t>(root)]);
  }
  co_return co_await recv(root, tag);
}

inline sim::Task<> MpiWorld::Comm::barrier() {
  MpiWorld& w = *world_;
  const int n = size();
  if (n <= 1) co_return;
  // Each rank keeps its own barrier counter; all ranks reach barrier k with
  // the same count, so the generation-derived tags match up.
  if (w.barrier_gens_.size() < static_cast<std::size_t>(n))
    w.barrier_gens_.resize(static_cast<std::size_t>(n), 0);
  const std::uint64_t gen = w.barrier_gens_[static_cast<std::size_t>(rank_)]++;
  const int base = 1'000'000'000 + static_cast<int>(gen % 400'000'000) * 2;
  if (rank_ == 0) {
    for (int r = 1; r < n; ++r) (void)co_await recv(r, base);
    for (int r = 1; r < n; ++r) {
      co_await send(r, base + 1, common::Buffer());
    }
  } else {
    co_await send(0, base, common::Buffer());
    (void)co_await recv(0, base + 1);
  }
}

}  // namespace blobcr::mpi
