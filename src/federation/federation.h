// federation::Fabric: joins several BlobStores — one per availability zone —
// into one logical checkpoint repository (the "cross-repo federation" of
// BlobCR deployed across IaaS zones).
//
// Responsibilities:
//  - Zone directory: which store owns which blob (the high bits of every
//    BlobId encode its home zone), which compute nodes sit in which zone,
//    and which zones are still alive.
//  - Nearest-zone restart fetch: a chunk is served from the reader's own
//    zone when any copy lives there, then from a sibling zone's replica
//    over the shaped wide-area traffic class, then from the origin zone,
//    and finally — content-addressed fallback — from any live same-content
//    chunk the shared digest index knows about.
//  - Asynchronous replication, driven off the flush agent's drain (the same
//    place the peer-parity encode stage runs): every drained commit's new
//    chunks get one "floor" copy in the origin's buddy zone, and — within a
//    per-drain byte budget — hot chunks (most manifest references first,
//    the same popularity metric the restart prefetch scheduler sorts by)
//    are pushed to the remaining sibling zones.
//  - Zone-loss failover: the drain also registers a full leaf manifest per
//    published version with the federation. When a whole zone dies, a
//    surviving zone adopts the dead version metadata-only
//    (BlobClient::adopt_leaves) and restart reads resolve chunk-by-chunk
//    through the nearest-zone path above. Checkpoint-catalog records are
//    replicated as opaque frames so a fresh driver on a survivor can still
//    list and select checkpoints.
//
// Replica copies keep their origin ChunkId (ids are globally unique across
// zones — each store's id counters are seeded in a disjoint range), so the
// directory here is the only extra metadata. The origin store's GC sweeps
// only its own providers; this fabric hooks every store's reclaim
// notifications and erases the cross-zone copies (and directory entries)
// itself, so replicas neither leak nor dangle.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "blob/client.h"
#include "blob/store.h"
#include "blob/types.h"
#include "common/buffer.h"
#include "common/rangeset.h"
#include "net/fabric.h"
#include "qos/admission.h"
#include "sim/sim.h"

namespace blobcr::reduce {
class ChunkDigestIndex;
}

namespace blobcr::federation {

struct FederationConfig {
  /// Number of availability zones. 1 (default) = federation off: the cloud
  /// builds a single store and none of this machinery engages.
  std::size_t zones = 1;
  /// Wide-area traffic class between zones: one-way latency and a per-flow
  /// application rate cap layered on the NIC fair share (net::Fabric::Shape).
  sim::Duration wan_latency = 2 * sim::kMillisecond;
  double wan_bandwidth_bps = 50e6;
  /// Floor replication: copy every drained commit's new chunks once, to the
  /// origin's buddy zone (next live zone). Off = manifests only, no payload
  /// redundancy across zones.
  bool replicate = true;
  /// Per-drain byte budget for extra hot-chunk copies beyond the floor
  /// (pushed popularity-first to every remaining sibling zone). 0 = floor
  /// only. Only meaningful with 3+ zones.
  std::uint64_t hot_budget_bytes = 0;
  /// Wire size of one replicated manifest leaf tuple (control-plane cost of
  /// shipping the per-commit manifest delta to sibling zones).
  std::uint64_t manifest_record_bytes = 48;
};

class Fabric {
 public:
  /// BlobIds carry their home zone in bits [40, 64); ChunkIds in [48, 64).
  /// Zone 0 keeps the unseeded counters, so single-zone ids decode to 0.
  static constexpr unsigned kBlobZoneShift = 40;
  static constexpr unsigned kChunkZoneShift = 48;

  Fabric(sim::Simulation& sim, net::Fabric& net, FederationConfig cfg)
      : sim_(&sim), net_(&net), cfg_(cfg) {}
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Registers one zone: its store plus the contiguous compute-node block
  /// [compute_begin, compute_end) it hosts. Call once per zone, in zone-id
  /// order; hooks the store's chunk-reclaim notifications.
  void add_zone(blob::BlobStore* store, net::NodeId compute_begin,
                net::NodeId compute_end);

  std::size_t zones() const { return zones_.size(); }
  bool enabled() const { return zones_.size() > 1; }
  const FederationConfig& config() const { return cfg_; }
  bool replication_on() const { return enabled() && cfg_.replicate; }

  static std::uint32_t zone_of_blob(blob::BlobId id) {
    return static_cast<std::uint32_t>(id >> kBlobZoneShift);
  }
  /// Zone hosting a compute node (service nodes resolve to zone 0).
  std::uint32_t zone_of_node(net::NodeId node) const;
  blob::BlobStore* store(std::uint32_t zone) const {
    return zones_[zone].store;
  }
  /// The store owning a blob (decoded from the id; clamped to zone 0 for
  /// out-of-range ids so pre-federation callers always get a valid store).
  blob::BlobStore* store_of_blob(blob::BlobId id) const;

  bool alive(std::uint32_t zone) const {
    return zone < zones_.size() && !zones_[zone].dead;
  }
  std::uint32_t first_live_zone() const;
  /// Fail-stop of an entire zone: every data provider of its store dies and
  /// the zone stops being a fetch/replication candidate. The store's
  /// in-memory control plane is considered lost with it — survivors work
  /// from federated manifests and replicated catalog frames only.
  void fail_zone(std::uint32_t zone);

  net::Fabric::Shape wan_shape() const {
    return {cfg_.wan_latency, cfg_.wan_bandwidth_bps};
  }

  /// Shared digest index for the content-addressed last-resort fetch path
  /// (same content stored under another ChunkId in a live zone).
  void set_digest_index(reduce::ChunkDigestIndex* index) { index_ = index; }

  // --- drain-side replication ----------------------------------------------

  /// Called by the flush agent after a drained commit publishes (the
  /// CommitStage::Replicate boundary): registers the version's full leaf
  /// manifest (failover metadata, shipped to sibling zones over the WAN
  /// class), then copies the commit's new chunks — floor copy to the buddy
  /// zone, plus popularity-ordered hot copies within the per-drain budget.
  /// `dirty` is the commit's device byte ranges (what is new vs. inherited).
  sim::Task<> replicate_commit(blob::BlobClient& client, blob::BlobId blob,
                               blob::VersionId version,
                               const common::RangeSet& dirty);

  // --- nearest-zone fetch ---------------------------------------------------

  struct FetchResult {
    common::Buffer data;
    bool wan = false;  // served from outside the reader's zone
  };
  /// Fetches and decodes one leaf for a reader on `dst`, resolving to the
  /// nearest zone holding the content: local zone -> sibling-zone replica
  /// (WAN) -> origin zone (WAN) -> digest-index content fallback. Throws
  /// BlobError when no live zone holds it.
  /// `ctx` tags the pull with the restarting tenant; every provider touch
  /// (local or WAN) is admitted at that zone's provider-io gate under it.
  sim::Task<FetchResult> fetch_decoded(const blob::ChunkLocation& loc,
                                       net::NodeId dst, qos::IoContext ctx);

  // --- zone-loss restart failover ------------------------------------------

  /// Resolves a checkpoint image for restart on `node`. Owning zone alive:
  /// identity. Owning zone dead: adopts the version into a surviving zone's
  /// store (metadata-only rebuild over the federated manifest, leaf tuples
  /// verbatim) and returns the adopted (blob, version). Idempotent per
  /// (image, version). Throws when the zone is dead and no manifest was
  /// ever replicated (the version never drained).
  sim::Task<std::pair<blob::BlobId, blob::VersionId>> resolve_restart(
      blob::BlobId image, blob::VersionId version, net::NodeId node,
      net::TenantId tenant);

  bool has_manifest(blob::BlobId blob, blob::VersionId version) const {
    return manifests_.contains({blob, version});
  }

  // --- catalog record replication ------------------------------------------

  /// Replicates one encoded catalog frame (opaque bytes, keyed by catalog
  /// name and record id; latest write wins) to every sibling zone over the
  /// WAN class. A fresh Catalog opened on a survivor after zone loss
  /// recovers its record set from these.
  sim::Task<> replicate_catalog(const std::string& name,
                                std::uint64_t record_id, common::Buffer frame,
                                net::NodeId src);
  /// Replicated frames for one catalog, ordered by record id; nullptr when
  /// none were ever replicated.
  const std::map<std::uint64_t, common::Buffer>* catalog_records(
      const std::string& name) const {
    const auto it = catalog_.find(name);
    return it == catalog_.end() ? nullptr : &it->second;
  }

  // --- counters -------------------------------------------------------------

  std::uint64_t replicated_bytes() const { return replicated_bytes_; }
  std::uint64_t replicated_chunks() const { return replicated_chunks_; }
  std::uint64_t wan_fetch_bytes() const { return wan_fetch_bytes_; }
  std::uint64_t manifest_bytes() const { return manifest_bytes_; }
  std::uint64_t catalog_bytes() const { return catalog_bytes_; }
  /// Every byte that crossed a zone boundary on the federation's behalf.
  std::uint64_t cross_zone_bytes() const {
    return replicated_bytes_ + wan_fetch_bytes_ + manifest_bytes_ +
           catalog_bytes_;
  }
  std::size_t replica_entries() const { return replicas_.size(); }
  std::uint32_t popularity(blob::ChunkId id) const {
    const auto it = popular_.find(id);
    return it == popular_.end() ? 0 : it->second;
  }

 private:
  struct Zone {
    blob::BlobStore* store = nullptr;
    net::NodeId compute_begin = 0;
    net::NodeId compute_end = 0;
    bool dead = false;
    std::uint64_t reclaim_hook = 0;
  };
  struct Replica {
    std::uint32_t zone = 0;
    net::NodeId node = 0;
  };
  struct Manifest {
    std::uint64_t size = 0;
    std::uint64_t chunk_size = 0;
    std::vector<std::pair<std::uint64_t, blob::ChunkLocation>> leaves;
  };

  /// One WAN copy of `loc` into `dest` (skips if a copy already exists
  /// there, or no live source/target remains). True iff bytes moved.
  sim::Task<bool> replicate_chunk(blob::ChunkLocation loc, std::uint32_t dest);
  /// One fetch attempt over a fixed location, walking local-zone copies,
  /// then sibling-zone replicas (WAN), then the origin zone. nullopt when
  /// no live copy of this exact chunk remains.
  sim::Task<std::optional<FetchResult>> try_fetch(qos::IoContext ctx,
                                                  blob::ChunkLocation loc,
                                                  net::NodeId dst);
  /// A live provider currently holding `loc` (origin replicas first, then
  /// the cross-zone directory); sets *src_zone. nullptr when every copy is
  /// gone.
  blob::DataProvider* find_source(const blob::ChunkLocation& loc,
                                  std::uint32_t* src_zone) const;
  /// Next live zone after `origin` in ring order; zones() when none.
  std::uint32_t buddy_of(std::uint32_t origin) const;
  void drop_chunks(const std::vector<blob::ChunkId>& ids);

  sim::Simulation* sim_;
  net::Fabric* net_;
  FederationConfig cfg_;
  reduce::ChunkDigestIndex* index_ = nullptr;
  std::vector<Zone> zones_;
  /// ChunkId -> cross-zone copies (the origin's own replicas live in the
  /// leaf's ChunkLocation, not here). Survives the origin store's death.
  std::unordered_map<blob::ChunkId, std::vector<Replica>> replicas_;
  /// ChunkId -> manifest reference count: how many registered version
  /// manifests (across all instances and commits) point at this chunk. The
  /// hot-chunk replicator orders by this — the same most-shared-first
  /// metric the restart prefetch scheduler uses.
  std::unordered_map<blob::ChunkId, std::uint32_t> popular_;
  std::map<std::pair<blob::BlobId, blob::VersionId>, Manifest> manifests_;
  /// (dead image, version) -> adopted (blob, version): failover adoptions
  /// are cached so every restarting instance of a snapshot shares one
  /// metadata rebuild.
  std::map<std::pair<blob::BlobId, blob::VersionId>,
           std::pair<blob::BlobId, blob::VersionId>>
      adopted_;
  std::map<std::string, std::map<std::uint64_t, common::Buffer>> catalog_;

  std::uint64_t replicated_bytes_ = 0;
  std::uint64_t replicated_chunks_ = 0;
  std::uint64_t wan_fetch_bytes_ = 0;
  std::uint64_t manifest_bytes_ = 0;
  std::uint64_t catalog_bytes_ = 0;
};

}  // namespace blobcr::federation
