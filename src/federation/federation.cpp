#include "federation/federation.h"

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>

#include "reduce/digest_index.h"

namespace blobcr::federation {

Fabric::~Fabric() {
  for (Zone& z : zones_) {
    if (z.store != nullptr && z.reclaim_hook != 0) {
      z.store->remove_chunk_reclaim_hook(z.reclaim_hook);
    }
  }
}

void Fabric::add_zone(blob::BlobStore* store, net::NodeId compute_begin,
                      net::NodeId compute_end) {
  Zone z;
  z.store = store;
  z.compute_begin = compute_begin;
  z.compute_end = compute_end;
  z.reclaim_hook = store->add_chunk_reclaim_hook(
      [this](const std::vector<blob::ChunkId>& ids) { drop_chunks(ids); });
  zones_.push_back(z);
}

std::uint32_t Fabric::zone_of_node(net::NodeId node) const {
  for (std::size_t z = 0; z < zones_.size(); ++z) {
    if (node >= zones_[z].compute_begin && node < zones_[z].compute_end) {
      return static_cast<std::uint32_t>(z);
    }
  }
  return 0;
}

blob::BlobStore* Fabric::store_of_blob(blob::BlobId id) const {
  if (zones_.empty()) return nullptr;
  const std::uint32_t z = zone_of_blob(id);
  return zones_[z < zones_.size() ? z : 0].store;
}

std::uint32_t Fabric::first_live_zone() const {
  for (std::size_t z = 0; z < zones_.size(); ++z) {
    if (!zones_[z].dead) return static_cast<std::uint32_t>(z);
  }
  throw blob::BlobError("federation: no live zone remains");
}

void Fabric::fail_zone(std::uint32_t zone) {
  if (zone >= zones_.size() || zones_[zone].dead) return;
  zones_[zone].dead = true;
  for (const auto& p : zones_[zone].store->providers()) {
    if (p->alive()) p->fail();
  }
}

std::uint32_t Fabric::buddy_of(std::uint32_t origin) const {
  for (std::size_t k = 1; k < zones_.size(); ++k) {
    const auto z =
        static_cast<std::uint32_t>((origin + k) % zones_.size());
    if (alive(z)) return z;
  }
  return static_cast<std::uint32_t>(zones_.size());
}

void Fabric::drop_chunks(const std::vector<blob::ChunkId>& ids) {
  for (const blob::ChunkId id : ids) {
    popular_.erase(id);
    const auto it = replicas_.find(id);
    if (it == replicas_.end()) continue;
    for (const Replica& r : it->second) {
      if (blob::DataProvider* p = store(r.zone)->provider_at(r.node)) {
        p->erase(id);
      }
    }
    replicas_.erase(it);
  }
}

blob::DataProvider* Fabric::find_source(const blob::ChunkLocation& loc,
                                        std::uint32_t* src_zone) const {
  if (alive(loc.zone) && loc.zone < zones_.size()) {
    blob::BlobStore* st = store(loc.zone);
    for (const net::NodeId n : loc.replicas) {
      blob::DataProvider* p = st->provider_at(n);
      if (p != nullptr && p->has(loc.id)) {
        *src_zone = loc.zone;
        return p;
      }
    }
  }
  const auto it = replicas_.find(loc.id);
  if (it != replicas_.end()) {
    for (const Replica& r : it->second) {
      if (!alive(r.zone)) continue;
      blob::DataProvider* p = store(r.zone)->provider_at(r.node);
      if (p != nullptr && p->has(loc.id)) {
        *src_zone = r.zone;
        return p;
      }
    }
  }
  return nullptr;
}

sim::Task<bool> Fabric::replicate_chunk(blob::ChunkLocation loc,
                                        std::uint32_t dest) {
  if (loc.id == 0 || dest >= zones_.size() || !alive(dest)) co_return false;
  if (const auto it = replicas_.find(loc.id); it != replicas_.end()) {
    for (const Replica& r : it->second) {
      if (r.zone == dest) co_return false;  // copy already there
    }
  }
  std::uint32_t src_zone = 0;
  blob::DataProvider* src = find_source(loc, &src_zone);
  if (src == nullptr) co_return false;
  blob::DataProvider* target = nullptr;
  for (const auto& p : store(dest)->providers()) {
    if (!p->alive()) continue;
    if (target == nullptr || p->stored_bytes() < target->stored_bytes()) {
      target = p.get();
    }
  }
  if (target == nullptr) co_return false;
  // Background replication runs as the default tenant: it competes at the
  // provider-io gates like any other disk I/O, but no job is charged.
  const qos::IoContext ctx{net::kDefaultTenant, qos::GateClass::ProviderIo};
  common::Buffer data =
      co_await src->fetch_shaped(target->node(), loc.id, wan_shape(), ctx);
  co_await target->put_local(loc.id, std::move(data), ctx);
  // Re-lookup after the awaits: the directory may have rehashed, and a
  // racing copy of the same chunk may have landed first.
  std::vector<Replica>& entry = replicas_[loc.id];
  for (const Replica& r : entry) {
    if (r.zone == dest) co_return true;
  }
  entry.push_back({dest, target->node()});
  replicated_bytes_ += loc.size;
  ++replicated_chunks_;
  co_return true;
}

sim::Task<> Fabric::replicate_commit(blob::BlobClient& client,
                                     blob::BlobId blob,
                                     blob::VersionId version,
                                     const common::RangeSet& dirty) {
  if (!enabled() || version == 0) co_return;
  blob::BlobStore* home = store_of_blob(blob);
  const std::uint32_t origin = home->config().zone;
  if (!alive(origin)) co_return;

  // Full-version manifest: the failover metadata. Registered even with
  // payload replication off — metadata-only federation can still adopt a
  // dead zone's versions (fetches then resolve to whatever copies survive).
  const blob::BlobMeta meta = co_await client.stat(blob);
  if (version > meta.versions.size()) co_return;
  Manifest m;
  m.size = meta.version(version).size;
  m.chunk_size = meta.chunk_size;
  if (m.size > 0) {
    std::vector<blob::BlobClient::ChunkRef> refs =
        co_await client.resolve_chunks(blob, version, 0, m.size);
    m.leaves.reserve(refs.size());
    for (blob::BlobClient::ChunkRef& r : refs) {
      if (r.loc.id != 0) ++popular_[r.loc.id];
      m.leaves.emplace_back(r.index, std::move(r.loc));
    }
  }
  const Manifest& stored =
      manifests_[std::make_pair(blob, version)] = std::move(m);

  // Two working sets over the origin-owned payload leaves:
  //  - `floor_set`: EVERY leaf of the version. The floor pass walks all of
  //    them so the version is restorable from the buddy zone alone —
  //    including content inherited from the base image or earlier commits.
  //    The directory check in replicate_chunk makes this incremental: the
  //    first drain pays for the inherited content once, later drains skip
  //    straight past everything already copied.
  //  - `delta`: the leaves this commit's dirty ranges introduced — what the
  //    hot tier pushes to the remaining zones, and what sizes the manifest
  //    wire frames.
  std::uint64_t dirty_leaves = 0;
  std::vector<const blob::ChunkLocation*> floor_set;
  std::vector<const blob::ChunkLocation*> delta;
  std::unordered_set<blob::ChunkId> seen;
  for (const auto& [index, loc] : stored.leaves) {
    const std::uint64_t off = index * stored.chunk_size;
    const bool is_dirty = dirty.intersects(off, off + 1);
    if (is_dirty) ++dirty_leaves;
    if (loc.id == 0 || loc.encoding == blob::ChunkEncoding::Zero) continue;
    if (loc.zone != origin) continue;
    if (!seen.insert(loc.id).second) continue;
    floor_set.push_back(&loc);
    if (is_dirty) delta.push_back(&loc);
  }

  // Ship the manifest delta to every sibling (small control-plane frames
  // over the WAN class).
  const std::uint64_t manifest_wire =
      std::max<std::uint64_t>(dirty_leaves, 1) * cfg_.manifest_record_bytes;
  for (std::uint32_t z = 0; z < zones_.size(); ++z) {
    if (z == origin || !alive(z)) continue;
    co_await net_->transfer(client.node(),
                            store(z)->config().version_manager_node,
                            manifest_wire, wan_shape());
    manifest_bytes_ += manifest_wire;
  }

  if (!cfg_.replicate) co_return;
  const std::uint32_t buddy = buddy_of(origin);
  if (buddy >= zones_.size()) co_return;  // no live sibling

  // Floor: one copy of every leaf in the buddy zone. Sequential on
  // purpose — the replicator is one background WAN stream, not a fan-out.
  for (const blob::ChunkLocation* loc : floor_set) {
    co_await replicate_chunk(*loc, buddy);
  }

  // Hot tier: extra copies to the remaining zones, hottest first, until the
  // per-drain budget runs out.
  std::uint64_t budget = cfg_.hot_budget_bytes;
  if (budget == 0 || zones_.size() <= 2) co_return;
  std::stable_sort(delta.begin(), delta.end(),
                   [this](const blob::ChunkLocation* a,
                          const blob::ChunkLocation* b) {
                     return popularity(a->id) > popularity(b->id);
                   });
  for (const blob::ChunkLocation* loc : delta) {
    bool exhausted = false;
    for (std::uint32_t z = 0; z < zones_.size(); ++z) {
      if (z == origin || z == buddy || !alive(z)) continue;
      if (budget < loc->size) {
        exhausted = true;
        break;
      }
      if (co_await replicate_chunk(*loc, z)) budget -= loc->size;
    }
    if (exhausted) break;
  }
}

namespace {

/// One fetch attempt over a fixed location: local-zone copies, then
/// sibling-zone replicas over the WAN class, then the origin zone.
struct Candidate {
  blob::DataProvider* provider = nullptr;
  std::uint32_t zone = 0;
};

}  // namespace

sim::Task<std::optional<Fabric::FetchResult>> Fabric::try_fetch(
    qos::IoContext ctx, blob::ChunkLocation loc, net::NodeId dst) {
  if (loc.id == 0 || loc.encoding == blob::ChunkEncoding::Zero) {
    co_return FetchResult{common::Buffer::zeros(loc.logical()), false};
  }
  const std::uint32_t my = zone_of_node(dst);
  std::vector<Candidate> order;
  const auto add_origin = [&] {
    if (!alive(loc.zone) || loc.zone >= zones_.size()) return;
    blob::BlobStore* st = store(loc.zone);
    if (loc.replicas.empty()) return;
    const std::size_t start = loc.id % loc.replicas.size();
    for (std::size_t k = 0; k < loc.replicas.size(); ++k) {
      const net::NodeId n = loc.replicas[(start + k) % loc.replicas.size()];
      blob::DataProvider* p = st->provider_at(n);
      if (p != nullptr && p->has(loc.id)) order.push_back({p, loc.zone});
    }
  };
  const auto add_directory = [&](bool local) {
    const auto it = replicas_.find(loc.id);
    if (it == replicas_.end()) return;
    for (const Replica& r : it->second) {
      if ((r.zone == my) != local || !alive(r.zone)) continue;
      blob::DataProvider* p = store(r.zone)->provider_at(r.node);
      if (p != nullptr && p->has(loc.id)) order.push_back({p, r.zone});
    }
  };
  if (loc.zone == my) add_origin();
  add_directory(/*local=*/true);
  add_directory(/*local=*/false);
  if (loc.zone != my) add_origin();

  for (const Candidate& c : order) {
    const bool wan = c.zone != my;
    try {
      common::Buffer data;
      if (wan) {
        data = co_await c.provider->fetch_shaped(dst, loc.id, wan_shape(),
                                                 ctx);
      } else {
        data = co_await c.provider->fetch(dst, loc.id, ctx);
      }
      if (wan) wan_fetch_bytes_ += loc.size;
      co_return FetchResult{
          blob::BlobClient::decode_stored(loc, std::move(data)), wan};
    } catch (const blob::BlobError&) {
      // The provider died between candidate selection and the fetch; keep
      // walking outward.
    }
  }
  co_return std::nullopt;
}

sim::Task<Fabric::FetchResult> Fabric::fetch_decoded(
    const blob::ChunkLocation& loc, net::NodeId dst, qos::IoContext ctx) {
  std::optional<FetchResult> got = co_await try_fetch(ctx, loc, dst);
  if (got.has_value()) co_return std::move(*got);
  // Content-addressed last resort: the same bytes may live under another
  // ChunkId in a live zone (a sibling zone's rank committed identical
  // content). Proximity-ordered lookup, one hop — the alternate location
  // walks the same local -> replica -> origin ladder.
  if (index_ != nullptr && loc.digest != 0) {
    const blob::ChunkLocation* alt =
        index_->lookup(loc.digest, loc.logical(), zone_of_node(dst));
    if (alt != nullptr && alt->id != loc.id) {
      got = co_await try_fetch(ctx, *alt, dst);
      if (got.has_value()) co_return std::move(*got);
    }
  }
  throw blob::BlobError("federation: chunk " + std::to_string(loc.id) +
                        " (zone " + std::to_string(loc.zone) +
                        ") unreachable in every live zone");
}

sim::Task<std::pair<blob::BlobId, blob::VersionId>> Fabric::resolve_restart(
    blob::BlobId image, blob::VersionId version, net::NodeId node,
    net::TenantId tenant) {
  const std::uint32_t home = zone_of_blob(image);
  if (!enabled() || alive(home)) {
    co_return std::make_pair(image, version);
  }
  const auto key = std::make_pair(image, version);
  if (const auto it = adopted_.find(key); it != adopted_.end()) {
    co_return it->second;
  }
  const auto mit = manifests_.find(key);
  if (mit == manifests_.end() || mit->second.leaves.empty()) {
    throw blob::BlobError(
        "federation: zone " + std::to_string(home) +
        " is down and no manifest was replicated for blob " +
        std::to_string(image) + " v" + std::to_string(version) +
        " (the version never drained through the flush agent)");
  }
  const Manifest& m = mit->second;
  std::uint32_t sz = zone_of_node(node);
  if (!alive(sz)) sz = first_live_zone();
  blob::BlobClient client(*store(sz), node);
  client.set_tenant(tenant);
  const blob::BlobId adopted_blob = co_await client.create(m.chunk_size);
  const blob::VersionId adopted_version =
      co_await client.adopt_leaves(adopted_blob, m.size, m.leaves);
  // A concurrent resolve of the same snapshot may have published first;
  // latest check wins so every caller shares one adopted image.
  if (const auto again = adopted_.find(key); again != adopted_.end()) {
    co_return again->second;
  }
  adopted_[key] = std::make_pair(adopted_blob, adopted_version);
  co_return adopted_[key];
}

sim::Task<> Fabric::replicate_catalog(const std::string& name,
                                      std::uint64_t record_id,
                                      common::Buffer frame, net::NodeId src) {
  if (enabled()) {
    const std::uint32_t home = zone_of_node(src);
    for (std::uint32_t z = 0; z < zones_.size(); ++z) {
      if (z == home || !alive(z)) continue;
      co_await net_->transfer(src, store(z)->config().version_manager_node,
                              frame.size(), wan_shape());
      catalog_bytes_ += frame.size();
    }
  }
  catalog_[name][record_id] = std::move(frame);
}

}  // namespace blobcr::federation
