#include "flush/flush_agent.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "blob/spool.h"
#include "federation/federation.h"

namespace blobcr::flush {

FlushAgent::FlushAgent(blob::BlobStore& store, blob::BlobClient& client,
                       storage::Disk& disk, std::uint64_t disk_stream,
                       blob::CommitReducer* reducer, const FlushConfig& cfg,
                       redundancy::Manager* redundancy,
                       federation::Fabric* federation)
    : store_(&store),
      client_(&client),
      disk_(&disk),
      stream_(disk_stream),
      reducer_(reducer),
      redundancy_(redundancy),
      fed_(federation),
      cfg_(cfg),
      work_wq_(store.simulation()),
      done_wq_(store.simulation()) {
  if (cfg_.max_pending == 0) cfg_.max_pending = 1;
  loop_ = store.simulation().spawn("flush-agent", drain_loop());
}

FlushAgent::~FlushAgent() {
  if (loop_ && !loop_->finished()) loop_->kill();
}

sim::Task<blob::VersionId> FlushAgent::submit(blob::BlobId blob,
                                              common::SparseFile frozen,
                                              common::RangeSet ranges) {
  if (dead_) throw blob::BlobError("flush agent fail-stopped");
  const sim::Time t0 = store_->simulation().now();
  std::uint64_t payload = 0;
  for (const common::Range& r : ranges.to_vector()) payload += r.length();

  // Group commit: coalesce into a queued (not yet draining) generation.
  // The newer capture overwrites overlapping content — the merged version
  // reflects the image as of this (latest) capture over the union of both
  // dirty sets, which is exactly the image state right now.
  if (cfg_.policy == QueuePolicy::Merge && !queue_.empty() &&
      queue_.back().blob == blob) {
    StagedCommit& tail = queue_.back();
    for (auto& [off, piece] : frozen.read_extents(0, frozen.size())) {
      tail.data.write(off, std::move(piece));
    }
    for (const common::Range& r : ranges.to_vector()) {
      tail.ranges.insert(r.begin, r.end);
    }
    tail.payload_bytes = 0;
    for (const common::Range& r : tail.ranges.to_vector()) {
      tail.payload_bytes += r.length();
    }
    ++stats_.commits_merged;
    stats_.blocked_time += store_->simulation().now() - t0;
    co_return tail.reserved;
  }

  // Backpressure: bound the staged generations held on this node.
  while (pending() >= cfg_.max_pending) {
    ++stats_.backpressure_waits;
    co_await done_wq_.wait();
    if (dead_) throw blob::BlobError("flush agent fail-stopped");
  }

  StagedCommit c;
  c.blob = blob;
  c.data = std::move(frozen);
  c.ranges = std::move(ranges);
  c.payload_bytes = payload;
  c.staged_at = store_->simulation().now();
  // Reserve the version slot now: the provisional id handed back is the id
  // the drain will publish, and numbering reflects capture order.
  c.reserved = co_await store_->version_manager().reserve(
      client_->node(), blob, client_->tenant());
  if (dead_) throw blob::BlobError("flush agent fail-stopped");
  const blob::VersionId reserved = c.reserved;
  ++stats_.commits_staged;
  stats_.staged_bytes += payload;
  queue_.push_back(std::move(c));
  work_wq_.notify_all();
  stats_.blocked_time += store_->simulation().now() - t0;
  co_return reserved;
}

sim::Task<> FlushAgent::wait_drained() {
  while (!idle() && !dead_) co_await done_wq_.wait();
  if (error_ != nullptr) {
    std::exception_ptr e = std::exchange(error_, nullptr);
    std::rethrow_exception(e);
  }
  // Sticky failure: after the original error was delivered once, later
  // waiters must still see the agent as failed — a poisoned agent never
  // becomes healthy again (the node restarts with a fresh one).
  if (dead_) throw blob::BlobError("flush agent failed; restart the node");
}

void FlushAgent::fail_stop() {
  if (dead_) return;
  dead_ = true;
  if (loop_ && !loop_->finished()) loop_->kill();
  queue_.clear();
  draining_ = false;
  if (error_ == nullptr) {
    error_ = std::make_exception_ptr(
        blob::BlobError("flush agent fail-stopped mid-drain"));
  }
  done_wq_.notify_all();
  work_wq_.notify_all();
}

sim::Task<> FlushAgent::drain_loop() {
  for (;;) {
    while (queue_.empty()) co_await work_wq_.wait();
    StagedCommit c = std::move(queue_.front());
    queue_.pop_front();
    draining_ = true;
    try {
      co_await drain_one(std::move(c));
      ++stats_.drains_completed;
    } catch (...) {
      // A failed drain poisons the agent. Every queued generation is a
      // *delta* on top of the failed one, and a drain bases its tree on the
      // latest published version — publishing a later generation over the
      // failed one's hole would create a visible version silently missing
      // the failed dirty ranges. Drop the queue, go dead, surface the
      // error; the node rolls back and restarts with a fresh agent.
      ++stats_.drains_failed;
      if (error_ == nullptr) error_ = std::current_exception();
      dead_ = true;
      queue_.clear();
      draining_ = false;
      done_wq_.notify_all();
      work_wq_.notify_all();
      co_return;
    }
    draining_ = false;
    done_wq_.notify_all();
  }
}

sim::Task<> FlushAgent::drain_one(StagedCommit c) {
  if (probe_) co_await probe_(blob::CommitStage::Staged);

  std::vector<blob::BlobClient::ExtentSpec> specs;
  for (const common::Range& r : c.ranges.to_vector()) {
    specs.push_back({r.begin, r.length()});
  }

  // Spooled reads of the frozen generation: the difference log lives on the
  // local disk (readahead policy in blob/spool.h, shared with the
  // synchronous commit path).
  blob::SpooledCommitReader spool(
      *disk_, stream_, &c.ranges,
      [&c](std::uint64_t offset, std::uint64_t length) {
        return c.data.read(offset, length);
      });

  blob::CommitOptions opts;
  opts.reducer = reducer_;
  opts.reserved_version = c.reserved;
  opts.probe = probe_ ? &probe_ : nullptr;
  const blob::VersionId v = co_await client_->write_extents_via(
      c.blob, std::move(specs), spool.reader(), std::move(opts));
  last_published_ = v;
  last_drain_stored_ = client_->last_commit_stored_bytes();

  // Peer parity tier: the drained chunks fold into XOR groups across the
  // deployment (redundancy::Manager). Fired after publish — a kill at this
  // boundary leaves a published-but-unprotected version, never a torn one.
  if (probe_) co_await probe_(blob::CommitStage::ParityEncode);
  if (redundancy_ != nullptr && redundancy_->config().enabled) {
    std::uint64_t chunk = client_->known_chunk_size(c.blob);
    if (chunk == 0) chunk = store_->config().default_chunk_size;
    std::vector<redundancy::Manager::ChunkPayload> protect;
    for (const common::Range& r : c.ranges.to_vector()) {
      const auto refs =
          co_await client_->resolve_chunks(c.blob, v, r.begin, r.length());
      for (const blob::BlobClient::ChunkRef& ref : refs) {
        if (ref.loc.id == 0 || ref.loc.encoding == blob::ChunkEncoding::Zero)
          continue;
        const std::uint64_t off = ref.index * chunk;
        if (off < r.begin || off >= r.end) continue;
        protect.push_back(redundancy::Manager::ChunkPayload{
            core::ChunkKey::of(ref.loc), ref.loc.id,
            c.data.read(off, ref.loc.logical())});
      }
    }
    co_await redundancy_->encode_commit(client_->node(), std::move(protect));
  }

  // Cross-zone replication: the published version's manifest ships to every
  // sibling zone (so survivors can adopt it after a zone loss) and the
  // commit's chunks copy out floor-first, then popularity-ordered within
  // the hot budget. Also after publish: a kill here leaves a published-but-
  // unreplicated version, never a torn one.
  if (fed_ != nullptr && fed_->enabled()) {
    if (probe_) co_await probe_(blob::CommitStage::Replicate);
    co_await fed_->replicate_commit(*client_, c.blob, v, c.ranges);
  }
  stats_.drain_time += store_->simulation().now() - c.staged_at;
}

}  // namespace blobcr::flush
