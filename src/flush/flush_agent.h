// FlushAgent: the per-node drain of the asynchronous commit pipeline.
//
// MirrorDevice::ioctl_commit (async mode) freezes the dirty chunk set into
// a staged generation — a COW snapshot of the local difference log — and
// submits it here. submit() reserves the version slot (so the provisional
// id it returns is the id the drain will publish) and returns as soon as
// the generation is queued; the agent's single drain loop then ships staged
// generations FIFO through the regular commit path (reduction, placement,
// window-limited replica stores, metadata path-copy) and publishes each
// version atomically when its drain completes.
//
// Backpressure: at most max_pending generations are held; further submits
// block (the VM is still paused inside submit, so the pause absorbs the
// overload instead of unbounded staging memory). Under QueuePolicy::Merge a
// submit arriving while a generation is queued-but-not-draining coalesces
// into it (group commit): the newer capture overwrites, both submitters
// share one published version.
//
// Fail-stop: fail_stop() (node death) kills the drain mid-flight. The
// commit guard in BlobClient::write_extents_via unwinds with the coroutine
// frame, releasing dedup pins and withdrawing digest-index entries of the
// dead drain, so the repository keeps only fully-published versions.
#pragma once

#include <deque>
#include <exception>

#include "blob/client.h"
#include "blob/store.h"
#include "common/rangeset.h"
#include "common/sparse.h"
#include "flush/flush.h"
#include "redundancy/manager.h"
#include "sim/sim.h"
#include "storage/disk.h"

namespace blobcr::federation {
class Fabric;
}

namespace blobcr::flush {

class FlushAgent {
 public:
  /// `redundancy` (optional): after each drain publishes, its committed
  /// chunks fold into the deployment's peer parity tier — the
  /// CommitStage::ParityEncode boundary. `federation` (optional): after
  /// parity encode, the published version's manifest and hot chunks
  /// replicate asynchronously to sibling zones — CommitStage::Replicate.
  FlushAgent(blob::BlobStore& store, blob::BlobClient& client,
             storage::Disk& disk, std::uint64_t disk_stream,
             blob::CommitReducer* reducer, const FlushConfig& cfg,
             redundancy::Manager* redundancy = nullptr,
             federation::Fabric* federation = nullptr);
  ~FlushAgent();

  FlushAgent(const FlushAgent&) = delete;
  FlushAgent& operator=(const FlushAgent&) = delete;

  /// Stages one frozen generation and returns its provisional VersionId.
  /// Blocks only for the reservation round-trip and backpressure.
  sim::Task<blob::VersionId> submit(blob::BlobId blob,
                                    common::SparseFile frozen,
                                    common::RangeSet ranges);

  /// Waits until every submitted generation has published; rethrows the
  /// first drain failure (the caller's checkpoint did not complete).
  sim::Task<> wait_drained();

  /// Generations staged or draining right now.
  std::size_t pending() const { return queue_.size() + (draining_ ? 1u : 0u); }
  bool idle() const { return pending() == 0; }
  const FlushStats& stats() const { return stats_; }
  /// Post-reduction payload the most recent completed drain shipped.
  std::uint64_t last_drain_stored_bytes() const { return last_drain_stored_; }
  blob::VersionId last_published() const { return last_published_; }

  /// Test hook, awaited at every stage boundary of every drain.
  void set_stage_probe(blob::CommitProbe probe) { probe_ = std::move(probe); }

  /// Fail-stop (the node died): kills the in-flight drain, drops queued
  /// generations. Subsequent submits throw; waiters wake and fail.
  void fail_stop();
  bool failed() const { return dead_; }

 private:
  struct StagedCommit {
    blob::BlobId blob = 0;
    blob::VersionId reserved = 0;
    common::SparseFile data;   // frozen payload (the difference log)
    common::RangeSet ranges;   // chunk-rounded dirty extents
    std::uint64_t payload_bytes = 0;
    sim::Time staged_at = 0;
  };

  sim::Task<> drain_loop();
  sim::Task<> drain_one(StagedCommit c);

  blob::BlobStore* store_;
  blob::BlobClient* client_;
  storage::Disk* disk_;
  std::uint64_t stream_;
  blob::CommitReducer* reducer_;
  redundancy::Manager* redundancy_;
  federation::Fabric* fed_;
  FlushConfig cfg_;
  blob::CommitProbe probe_;

  std::deque<StagedCommit> queue_;
  bool draining_ = false;
  bool dead_ = false;
  std::exception_ptr error_;
  FlushStats stats_;
  std::uint64_t last_drain_stored_ = 0;
  blob::VersionId last_published_ = 0;
  sim::WaitQueue work_wq_;  // submit -> drain loop
  sim::WaitQueue done_wq_;  // drain loop -> wait_drained / backpressure
  sim::ProcessPtr loop_;
};

}  // namespace blobcr::flush
