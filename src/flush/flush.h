// Asynchronous commit pipeline: configuration and counters.
//
// BlobCR's paper model only requires the *local capture* of a disk snapshot
// to be synchronous — the transfer to the checkpoint repository can proceed
// in the background while the VM computes (stdchk and "Checkpointing as a
// Service" both drain this way). With the pipeline enabled, the COMMIT
// ioctl freezes the dirty chunk set into a staged generation and returns a
// provisional version id immediately; a per-node FlushAgent then drains
// staged generations through the regular commit path (reduction, placement,
// replication, metadata) and publishes each version atomically when its
// drain completes. The app-blocked interval shrinks from "ship everything"
// to "freeze the difference log", which shifts the Young/Daly optimum in
// ft/interval.h toward more frequent checkpoints.
//
// Failure semantics: a version is *provisional* until its drain publishes
// it. Readers never observe a provisional version (the version manager
// rejects reads of pending slots), so a node failure mid-drain simply
// abandons the staged generation — dedup pins and digest-index entries are
// withdrawn by the commit guard exactly as for failed synchronous commits,
// and the last fully-published version stays restorable bit for bit.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.h"

namespace blobcr::flush {

/// What happens to a commit submitted while earlier drains are in flight.
enum class QueuePolicy {
  /// Each commit becomes its own staged generation and publishes its own
  /// version, in submission order (bounded by max_pending; backpressure
  /// blocks the submitter once the bound is hit).
  Queue,
  /// A commit arriving while a *queued* (not yet draining) generation
  /// exists is coalesced into it: the frozen content is overwritten with
  /// the newer capture and both submitters share one published version
  /// (group commit). Falls back to Queue when nothing is queued.
  Merge,
};

struct FlushConfig {
  /// Master switch: when false, COMMIT is the fully synchronous path.
  bool enabled = false;
  QueuePolicy policy = QueuePolicy::Queue;
  /// Staged-but-undrained generations the agent holds before submit()
  /// blocks the caller (the VM is still paused during submit, so this is
  /// the backpressure knob bounding local staging memory).
  std::size_t max_pending = 2;
};

struct FlushStats {
  std::uint64_t commits_staged = 0;    // generations frozen
  std::uint64_t commits_merged = 0;    // submits coalesced (Merge policy)
  std::uint64_t drains_completed = 0;  // versions published
  std::uint64_t drains_failed = 0;
  std::uint64_t staged_bytes = 0;      // payload frozen at submit
  std::uint64_t backpressure_waits = 0;
  /// Time submit() held its callers (reservation RPC + backpressure): the
  /// app-blocked share of the pipeline.
  sim::Duration blocked_time = 0;
  /// Stage-to-publish latency, summed over completed drains.
  sim::Duration drain_time = 0;
};

}  // namespace blobcr::flush
