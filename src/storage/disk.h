// Disk: a seek-aware local disk model.
//
// Bandwidth is a fair-share fluid resource (the paper's nodes: SATA II,
// ~55 MB/s streaming). On top of that, every operation that is not strictly
// sequential with the previously issued operation charges a positioning
// cost, expressed as extra bytes (position_cost * bandwidth).
//
// This single knob is the mechanistic root of a key result in the paper:
// BlobSeer data providers append immutable chunks to a log (one stream, so
// heavy multi-client write traffic stays near streaming rate), while a PVFS
// I/O server interleaves writes into many per-file streams and degrades.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "sim/sim.h"

namespace blobcr::storage {

class Disk {
 public:
  struct Config {
    double bandwidth_bps = 55e6;                       // paper: ~55 MB/s
    sim::Duration position_cost = 6 * sim::kMillisecond;  // one head move
  };

  Disk(sim::Simulation& sim, std::string name, const Config& cfg)
      : cfg_(cfg), res_(sim, std::move(name), cfg.bandwidth_bps) {}

  /// `stream` identifies a logically contiguous byte sequence (a local file,
  /// an append log). Offsets are within the stream.
  sim::Task<> read(std::uint64_t stream, std::uint64_t offset,
                   std::uint64_t bytes) {
    return io(stream, offset, bytes, /*is_write=*/false);
  }
  sim::Task<> write(std::uint64_t stream, std::uint64_t offset,
                    std::uint64_t bytes) {
    return io(stream, offset, bytes, /*is_write=*/true);
  }

  /// Appends to a stream's current end (sequential if the stream was the
  /// last one served).
  sim::Task<> append(std::uint64_t stream, std::uint64_t bytes) {
    const std::uint64_t off = stream_end_[stream];
    return io(stream, off, bytes, /*is_write=*/true);
  }

  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t seeks() const { return seeks_; }
  sim::Duration busy_time() const { return res_.busy_time(); }
  const Config& config() const { return cfg_; }

 private:
  sim::Task<> io(std::uint64_t stream, std::uint64_t offset,
                 std::uint64_t bytes, bool is_write) {
    std::uint64_t charged = bytes;
    const bool sequential =
        stream == last_stream_ && offset == last_end_offset_;
    if (!sequential) {
      charged += position_bytes();
      ++seeks_;
    }
    last_stream_ = stream;
    last_end_offset_ = offset + bytes;
    auto& end = stream_end_[stream];
    if (offset + bytes > end) end = offset + bytes;
    if (is_write) {
      bytes_written_ += bytes;
    } else {
      bytes_read_ += bytes;
    }
    co_await res_.use(charged);
  }

  std::uint64_t position_bytes() const {
    return static_cast<std::uint64_t>(
        sim::to_seconds(cfg_.position_cost) * cfg_.bandwidth_bps);
  }

  Config cfg_;
  sim::SharedResource res_;
  std::unordered_map<std::uint64_t, std::uint64_t> stream_end_;
  std::uint64_t last_stream_ = ~0ULL;
  std::uint64_t last_end_offset_ = ~0ULL;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t seeks_ = 0;
};

/// Allocates distinct stream ids for Disk users on the same node.
class StreamIdAllocator {
 public:
  std::uint64_t next() { return next_++; }

 private:
  std::uint64_t next_ = 1;
};

}  // namespace blobcr::storage
