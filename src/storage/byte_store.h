// ByteStore: random-access byte container with simulated I/O cost.
// LocalFile is the host-local implementation (one Disk stream); the PVFS
// adapter lives in src/pfs.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/buffer.h"
#include "common/sparse.h"
#include "sim/sim.h"
#include "storage/disk.h"

namespace blobcr::storage {

class ByteStore {
 public:
  using Pieces = std::vector<std::pair<std::uint64_t, common::Buffer>>;

  virtual ~ByteStore() = default;
  virtual sim::Task<> write(std::uint64_t offset, common::Buffer data) = 0;
  virtual sim::Task<common::Buffer> read(std::uint64_t offset,
                                         std::uint64_t len) = 0;
  /// One past the highest written byte.
  virtual std::uint64_t size() const = 0;
  virtual std::uint64_t allocated_bytes() const = 0;

  /// Reads [offset, offset+len) preserving the boundary between real and
  /// phantom content (a flat read would phantomize everything it touches).
  /// Default: one flat piece.
  virtual sim::Task<Pieces> read_extents(std::uint64_t offset,
                                         std::uint64_t len) {
    Pieces out;
    common::Buffer data = co_await read(offset, len);
    if (data.size() > 0) out.emplace_back(offset, std::move(data));
    co_return out;
  }
};

/// A file on a node's local disk.
class LocalFile : public ByteStore {
 public:
  LocalFile(Disk& disk, std::uint64_t stream) : disk_(&disk), stream_(stream) {}

  sim::Task<> write(std::uint64_t offset, common::Buffer data) override {
    const std::uint64_t n = data.size();
    content_.write(offset, std::move(data));
    co_await disk_->write(stream_, offset, n);
  }

  sim::Task<common::Buffer> read(std::uint64_t offset,
                                 std::uint64_t len) override {
    co_await disk_->read(stream_, offset, len);
    co_return content_.read(offset, len);
  }

  std::uint64_t size() const override { return content_.size(); }
  std::uint64_t allocated_bytes() const override {
    return content_.allocated_bytes();
  }

  sim::Task<Pieces> read_extents(std::uint64_t offset,
                                 std::uint64_t len) override {
    Pieces out = content_.read_extents(offset, len);
    std::uint64_t total = 0;
    for (const auto& [off, buf] : out) total += buf.size();
    if (total > 0) co_await disk_->read(stream_, offset, total);
    co_return out;
  }

 private:
  Disk* disk_;
  std::uint64_t stream_;
  common::SparseFile content_;
};

}  // namespace blobcr::storage
