// ChunkStore: an append-log store of immutable chunks on a local Disk.
// Chunks are written sequentially at the log tail (BlobSeer-provider style);
// reads address the offset recorded at put time, so scans over consecutive
// puts remain sequential.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/buffer.h"
#include "storage/disk.h"

namespace blobcr::storage {

class ChunkStore {
 public:
  ChunkStore(Disk& disk, std::uint64_t stream_id)
      : disk_(&disk), stream_(stream_id) {}

  /// Appends a chunk to the log. Overwriting an existing id replaces the
  /// payload but still consumes new log space (immutability).
  sim::Task<> put(std::uint64_t chunk_id, common::Buffer data) {
    const std::uint64_t size = data.size();
    entries_[chunk_id] = Entry{log_end_, std::move(data)};
    log_end_ += size;
    stored_bytes_ += size;
    co_await disk_->append(stream_, size);
  }

  /// Reads a chunk back (charges disk time at the recorded log offset).
  sim::Task<common::Buffer> get(std::uint64_t chunk_id) {
    const auto it = entries_.find(chunk_id);
    if (it == entries_.end()) throw std::out_of_range("chunk not found");
    const std::uint64_t off = it->second.log_offset;
    const std::uint64_t size = it->second.data.size();
    co_await disk_->read(stream_, off, size);
    co_return entries_.at(chunk_id).data;
  }

  bool has(std::uint64_t chunk_id) const {
    return entries_.find(chunk_id) != entries_.end();
  }

  /// Payload size of a stored chunk (0 when absent) — the admission cost a
  /// fetch charges before the disk read runs.
  std::uint64_t size_of(std::uint64_t chunk_id) const {
    const auto it = entries_.find(chunk_id);
    return it == entries_.end() ? 0 : it->second.data.size();
  }

  /// Drops a chunk's payload (garbage collection). Space accounting shrinks;
  /// the log hole is assumed reusable after compaction.
  bool erase(std::uint64_t chunk_id) {
    const auto it = entries_.find(chunk_id);
    if (it == entries_.end()) return false;
    stored_bytes_ -= it->second.data.size();
    entries_.erase(it);
    return true;
  }

  /// Drops every chunk (a wiped disk after fail-stop). The log restarts at
  /// offset 0 — the store is indistinguishable from a fresh one.
  void clear() {
    entries_.clear();
    stored_bytes_ = 0;
    log_end_ = 0;
  }

  std::uint64_t stored_bytes() const { return stored_bytes_; }
  std::size_t chunk_count() const { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t log_offset = 0;
    common::Buffer data;
  };

  Disk* disk_;
  std::uint64_t stream_;
  std::uint64_t log_end_ = 0;
  std::uint64_t stored_bytes_ = 0;
  std::unordered_map<std::uint64_t, Entry> entries_;
};

}  // namespace blobcr::storage
