// KmerRank: a bioinformatics-style k-mer counting scan (another of the
// paper's §1 motivating domains). A large read-only reference sequence is
// baked into the base VM image and shared by every instance (§2.2: input
// data is shared through the VM's local file system, not a separate
// repository access API). Each rank streams a slice of the reference in
// windows, folding k-mer counts into an in-memory sketch table.
//
// The workload exists to exercise lazy transfer (§3.1.4) *during runtime*,
// not just at boot: the mirror device fetches reference chunks from the
// repository only as the scan reaches them, so a restart on fresh nodes
// re-fetches only the unscanned remainder plus the checkpointed state.
#pragma once

#include <cstdint>
#include <string>

#include "common/buffer.h"
#include "common/units.h"
#include "sim/sim.h"
#include "vm/guest_os.h"
#include "vm/vm_instance.h"

namespace blobcr::apps {

struct KmerConfig {
  /// Size of the shared reference baked into the base image.
  std::uint64_t reference_bytes = 24 * common::kMB;
  std::string reference_path = "/usr/share/ref/genome.seq";
  /// Streaming window per read request.
  std::uint64_t window_bytes = 1 * common::kMB;
  /// Scan throughput (bytes of sequence digested per second of compute).
  double scan_bps = 200e6;
  /// In-memory count-sketch table (the process state).
  std::uint64_t table_bytes = 2 * common::kMB;
  /// Ranks sharing the reference; each scans slice `rank` of `ranks`.
  int ranks = 1;
  /// Real windows folded into a real table with digest checks (tests) vs
  /// phantom sizes/timing only (benchmarks).
  bool real_data = false;
  std::string data_dir = "/data";

  /// Registers the reference file in the base-image recipe. Call on the
  /// CloudConfig's GuestOsConfig before constructing the Cloud.
  void add_reference_to(vm::GuestOsConfig& os) const {
    os.files.push_back({reference_path, reference_bytes, /*hot=*/false});
  }

  /// This rank's slice of the reference: [begin, end).
  std::uint64_t slice_begin(int rank) const {
    return reference_bytes * static_cast<std::uint64_t>(rank) /
           static_cast<std::uint64_t>(ranks);
  }
  std::uint64_t slice_end(int rank) const {
    return reference_bytes * static_cast<std::uint64_t>(rank + 1) /
           static_cast<std::uint64_t>(ranks);
  }
};

class KmerRank {
 public:
  KmerRank(vm::GuestProcess& proc, KmerConfig cfg, int rank);

  int rank() const { return rank_; }
  /// Absolute reference offset the scan has reached.
  std::uint64_t offset() const { return offset_; }
  std::uint64_t slice_end() const { return cfg_.slice_end(rank_); }
  bool done() const { return offset_ >= slice_end(); }
  std::uint64_t state_digest() const;

  /// Allocates the sketch table and positions the cursor at the slice start.
  sim::Task<> init();

  /// Streams windows until the scan offset reaches `target` (clamped to the
  /// slice end). Every window is a guest FS read — on a BlobCR mirror
  /// device, a lazy remote fetch the first time the chunk is touched.
  sim::Task<> scan_until(std::uint64_t target);

  sim::Task<> scan_all() { return scan_until(slice_end()); }

  /// Application-level checkpoint: offset header + sketch table.
  sim::Task<std::uint64_t> write_checkpoint();

  /// Restores offset + table; false on digest mismatch.
  sim::Task<bool> restore_checkpoint();

  std::string cursor_path() const {
    return cfg_.data_dir + "/kmer_cursor.txt";
  }
  std::string state_path() const { return cfg_.data_dir + "/kmer_table.bin"; }

 private:
  void fold_window(const common::Buffer& window);

  vm::GuestProcess* proc_;
  KmerConfig cfg_;
  int rank_;
  std::uint64_t offset_ = 0;
};

}  // namespace blobcr::apps
