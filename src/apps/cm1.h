// Cm1Rank: a CM1-like 3D finite-difference atmospheric code (paper §4.4).
//
// Each MPI rank owns an nx*ny*nz subdomain of `nvars` prognostic fields.
// Every iteration it exchanges subdomain borders with its 2D-grid neighbors
// and advances the fields (a damped 6-point diffusion stencil stands in for
// the compressible-flow equations — the paper's evaluation depends on the
// state size, communication pattern and file I/O, not the meteorology).
// Every `summary_interval` iterations each rank dumps a summary file;
// application-level checkpoints serialize all fields to a per-rank file,
// like CM1's restart files.
#pragma once

#include <cstdint>
#include <string>

#include "common/buffer.h"
#include "common/units.h"
#include "mpi/mpi.h"
#include "sim/sim.h"
#include "vm/vm_instance.h"

namespace blobcr::apps {

struct Cm1Config {
  // Per-rank subdomain: the paper weak-scales at 50x50 horizontal points.
  int nx = 50;
  int ny = 50;
  int nz = 40;
  int nvars = 15;
  int px = 1;  // process grid (px * py == ranks)
  int py = 1;
  /// Real mode allocates and advances actual double fields (tests /
  /// examples); phantom mode models sizes and timing only (benchmarks).
  bool real_data = false;
  sim::Duration iteration_compute = 400 * sim::kMillisecond;
  int summary_interval = 10;
  std::uint64_t summary_bytes = 128 * 1024;
  /// Every `diag_interval` iterations all ranks allreduce a stability
  /// diagnostic (CM1 computes global CFL maxima the same way). 0 disables.
  int diag_interval = 5;
  std::string data_dir = "/data";

  std::uint64_t field_bytes() const {
    return static_cast<std::uint64_t>(nx) * static_cast<std::uint64_t>(ny) *
           static_cast<std::uint64_t>(nz) *
           static_cast<std::uint64_t>(nvars) * sizeof(double);
  }
};

class Cm1Rank {
 public:
  Cm1Rank(vm::GuestProcess& proc, mpi::MpiWorld::Comm comm, Cm1Config cfg,
          int rank);

  int rank() const { return rank_; }
  std::uint64_t field_bytes() const { return cfg_.field_bytes(); }
  std::uint64_t state_digest() const;
  int current_iteration() const { return iteration_; }
  /// Globally-agreed stability diagnostic from the last allreduce round
  /// (sum of per-rank field means; 0 before the first round).
  double last_global_diag() const { return last_diag_; }

  /// Allocates the fields (registers the process memory region) and fills
  /// the initial condition.
  sim::Task<> init();

  /// One timestep: halo exchange with up to four neighbors, stencil update,
  /// periodic summary dump.
  sim::Task<> step();

  sim::Task<> run(int iterations);

  /// CM1-style application-level checkpoint: all fields into one file.
  /// Returns the file size.
  sim::Task<std::uint64_t> write_checkpoint();

  /// Restores fields + iteration counter; false if the digest mismatches.
  sim::Task<bool> restore_checkpoint();

  std::string checkpoint_path() const;

 private:
  static constexpr std::uint64_t kHeaderAlign = 4096;

  // Neighbor ranks in the px*py grid; -1 at domain edges.
  int neighbor(int dx, int dy) const;
  std::uint64_t x_face_bytes() const {
    return static_cast<std::uint64_t>(cfg_.ny) * cfg_.nz * cfg_.nvars *
           sizeof(double);
  }
  std::uint64_t y_face_bytes() const {
    return static_cast<std::uint64_t>(cfg_.nx) * cfg_.nz * cfg_.nvars *
           sizeof(double);
  }

  common::Buffer pack_face(int dx, int dy) const;
  void apply_face(int dx, int dy, const common::Buffer& face);
  void advance_fields();

  double* field_data();
  const double* field_data() const;
  std::size_t cell_count() const {
    return static_cast<std::size_t>(cfg_.nx) * cfg_.ny * cfg_.nz * cfg_.nvars;
  }

  double local_diag() const;

  vm::GuestProcess* proc_;
  mpi::MpiWorld::Comm comm_;
  Cm1Config cfg_;
  int rank_;
  int gx_ = 0;  // grid coordinates
  int gy_ = 0;
  int iteration_ = 0;
  double last_diag_ = 0;
};

}  // namespace blobcr::apps
