#include "apps/hep.h"

#include <algorithm>
#include <charconv>

#include "common/rng.h"
#include "common/strutil.h"
#include "guestfs/simplefs.h"

namespace blobcr::apps {

HepRank::HepRank(vm::GuestProcess& proc, HepConfig cfg, int rank)
    : proc_(&proc), cfg_(std::move(cfg)), rank_(rank) {}

std::uint64_t HepRank::state_digest() const {
  return proc_->regions().at("hist").digest();
}

bool HepRank::is_hit(std::uint64_t e) const {
  const std::uint64_t h = common::mix64(
      cfg_.seed ^ (static_cast<std::uint64_t>(rank_) << 32) ^ e);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < cfg_.hit_probability;
}

std::uint64_t HepRank::expected_hits(std::uint64_t upto) const {
  std::uint64_t n = 0;
  for (std::uint64_t e = 0; e < upto; ++e) n += is_hit(e) ? 1 : 0;
  return n;
}

sim::Task<> HepRank::init() {
  proc_->set_region("hist",
                    cfg_.real_data
                        ? common::Buffer::zeros(cfg_.histogram_bytes)
                        : common::Buffer::phantom(cfg_.histogram_bytes));
  cursor_ = 0;
  unsynced_hits_ = 0;
  guestfs::SimpleFs* fs = proc_->vm().fs();
  co_await proc_->vm().gate();
  // Truncate-create the result log.
  co_await fs->write_file(log_path(), common::Buffer());
}

void HepRank::bump_histogram(std::uint64_t e) {
  if (!cfg_.real_data) return;
  auto bytes = proc_->region("hist").mutable_bytes();
  const std::size_t bin = static_cast<std::size_t>(common::mix64(e * 31 + 7)) %
                          bytes.size();
  bytes[bin] = static_cast<std::byte>(std::to_integer<unsigned>(bytes[bin]) + 1);
}

sim::Task<> HepRank::process_until(std::uint64_t target) {
  target = std::min(target, cfg_.total_events);
  guestfs::SimpleFs* fs = proc_->vm().fs();
  const guestfs::Fd log = fs->open(log_path(), /*create=*/true,
                                   /*append_mode=*/true);
  while (cursor_ < target) {
    const std::uint64_t e = cursor_;
    co_await proc_->compute(cfg_.per_event_compute);
    bump_histogram(e);
    if (is_hit(e)) {
      const std::uint64_t rec_seed = common::mix64(
          cfg_.seed ^ 0xa9a9ULL ^ (static_cast<std::uint64_t>(rank_) << 40) ^
          e);
      common::Buffer rec =
          cfg_.real_data
              ? common::Buffer::pattern(cfg_.hit_record_bytes, rec_seed)
              : common::Buffer::phantom(cfg_.hit_record_bytes);
      co_await proc_->vm().gate();
      co_await fs->write(log, std::move(rec));
      if (cfg_.sync_every_hits > 0 &&
          ++unsynced_hits_ >= cfg_.sync_every_hits) {
        co_await fs->sync();
        unsynced_hits_ = 0;
      }
    }
    ++cursor_;
  }
  fs->close(log);
}

sim::Task<std::uint64_t> HepRank::write_checkpoint() {
  guestfs::SimpleFs* fs = proc_->vm().fs();
  co_await proc_->vm().gate();
  // Header: cursor and the histogram digest the restore must reproduce.
  const std::string header = common::strf(
      "cursor=%llu digest=%llu\n", static_cast<unsigned long long>(cursor_),
      static_cast<unsigned long long>(
          cfg_.real_data ? state_digest() : 0));
  co_await fs->write_file(cursor_path(), common::Buffer::from_string(header));
  co_await fs->write_file(state_path(), proc_->region("hist"));
  co_return header.size() + cfg_.histogram_bytes;
}

namespace {

/// Parses "key=value" out of the header line; 0 when absent.
std::uint64_t parse_field(const std::string& text, const std::string& key) {
  const std::size_t at = text.find(key + "=");
  if (at == std::string::npos) return 0;
  const char* begin = text.data() + at + key.size() + 1;
  std::uint64_t value = 0;
  (void)std::from_chars(begin, text.data() + text.size(), value);
  return value;
}

}  // namespace

sim::Task<bool> HepRank::restore_checkpoint() {
  guestfs::SimpleFs* fs = proc_->vm().fs();
  co_await proc_->vm().gate();
  const common::Buffer header_buf = co_await fs->read_file(cursor_path());
  const std::string header = header_buf.to_string();
  cursor_ = parse_field(header, "cursor");
  unsynced_hits_ = 0;
  common::Buffer hist = co_await fs->read_file(state_path());
  const bool size_ok = hist.size() == cfg_.histogram_bytes;
  bool digest_ok = true;
  if (cfg_.real_data) {
    digest_ok = hist.digest() == parse_field(header, "digest");
  }
  proc_->set_region("hist", std::move(hist));
  co_return size_ok && digest_ok;
}

sim::Task<std::uint64_t> HepRank::count_log_records() {
  guestfs::SimpleFs* fs = proc_->vm().fs();
  co_await proc_->vm().gate();
  if (!fs->exists(log_path())) co_return 0;
  co_return fs->stat(log_path()).size / cfg_.hit_record_bytes;
}

}  // namespace blobcr::apps
