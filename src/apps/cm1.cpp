#include "apps/cm1.h"

#include <cassert>
#include <cstring>

#include "common/codec.h"
#include "common/strutil.h"
#include "guestfs/simplefs.h"

namespace blobcr::apps {

Cm1Rank::Cm1Rank(vm::GuestProcess& proc, mpi::MpiWorld::Comm comm,
                 Cm1Config cfg, int rank)
    : proc_(&proc), comm_(comm), cfg_(cfg), rank_(rank) {
  assert(cfg_.px * cfg_.py >= rank + 1);
  gx_ = rank % cfg_.px;
  gy_ = rank / cfg_.px;
}

int Cm1Rank::neighbor(int dx, int dy) const {
  const int nx = gx_ + dx;
  const int ny = gy_ + dy;
  if (nx < 0 || nx >= cfg_.px || ny < 0 || ny >= cfg_.py) return -1;
  return ny * cfg_.px + nx;
}

double* Cm1Rank::field_data() {
  return reinterpret_cast<double*>(
      proc_->region("fields").mutable_bytes().data());
}

const double* Cm1Rank::field_data() const {
  auto bytes = proc_->regions().at("fields").bytes();
  return reinterpret_cast<const double*>(bytes.data());
}

std::uint64_t Cm1Rank::state_digest() const {
  return proc_->regions().at("fields").digest();
}

double Cm1Rank::local_diag() const {
  if (!cfg_.real_data) return 0.0;
  const double* f = field_data();
  double sum = 0;
  const std::size_t n = cell_count();
  for (std::size_t i = 0; i < n; ++i) sum += f[i];
  return sum / static_cast<double>(n);
}

sim::Task<> Cm1Rank::init() {
  if (cfg_.real_data) {
    common::Buffer fields = common::Buffer::zeros(cfg_.field_bytes());
    proc_->set_region("fields", std::move(fields));
    // Bryan–Rotunno-style initial bubble: a smooth perturbation around the
    // subdomain center, distinct per variable and per rank.
    double* f = field_data();
    const int nx = cfg_.nx;
    const int ny = cfg_.ny;
    const int nz = cfg_.nz;
    for (int v = 0; v < cfg_.nvars; ++v) {
      for (int z = 0; z < nz; ++z) {
        for (int y = 0; y < ny; ++y) {
          for (int x = 0; x < nx; ++x) {
            const double cx = (x - nx / 2.0) / nx;
            const double cy = (y - ny / 2.0) / ny;
            const double cz = (z - nz / 2.0) / nz;
            const std::size_t at =
                (((static_cast<std::size_t>(v) * nz + z) * ny + y) * nx + x);
            f[at] = (v + 1) * (1.0 - (cx * cx + cy * cy + cz * cz)) +
                    0.01 * rank_;
          }
        }
      }
    }
  } else {
    proc_->set_region("fields", common::Buffer::phantom(cfg_.field_bytes()));
  }
  // Touching all that memory costs time.
  co_await proc_->compute(sim::transfer_time(cfg_.field_bytes(), 4e9));
}

common::Buffer Cm1Rank::pack_face(int dx, int dy) const {
  const std::uint64_t bytes = dx != 0 ? x_face_bytes() : y_face_bytes();
  if (!cfg_.real_data) return common::Buffer::phantom(bytes);
  common::Buffer face = common::Buffer::zeros(bytes);
  double* out = reinterpret_cast<double*>(face.mutable_bytes().data());
  const double* f = field_data();
  const int nx = cfg_.nx;
  const int ny = cfg_.ny;
  const int nz = cfg_.nz;
  std::size_t o = 0;
  for (int v = 0; v < cfg_.nvars; ++v) {
    for (int z = 0; z < nz; ++z) {
      if (dx != 0) {
        const int x = dx < 0 ? 0 : nx - 1;
        for (int y = 0; y < ny; ++y) {
          out[o++] =
              f[(((static_cast<std::size_t>(v) * nz + z) * ny + y) * nx + x)];
        }
      } else {
        const int y = dy < 0 ? 0 : ny - 1;
        for (int x = 0; x < nx; ++x) {
          out[o++] =
              f[(((static_cast<std::size_t>(v) * nz + z) * ny + y) * nx + x)];
        }
      }
    }
  }
  return face;
}

void Cm1Rank::apply_face(int dx, int dy, const common::Buffer& face) {
  if (!cfg_.real_data || face.is_phantom()) return;
  const double* in = reinterpret_cast<const double*>(face.bytes().data());
  double* f = field_data();
  const int nx = cfg_.nx;
  const int ny = cfg_.ny;
  const int nz = cfg_.nz;
  std::size_t o = 0;
  // Neighbor boundary values relax this rank's edge layer toward them.
  for (int v = 0; v < cfg_.nvars; ++v) {
    for (int z = 0; z < nz; ++z) {
      if (dx != 0) {
        const int x = dx < 0 ? 0 : nx - 1;
        for (int y = 0; y < ny; ++y) {
          auto& cell =
              f[(((static_cast<std::size_t>(v) * nz + z) * ny + y) * nx + x)];
          cell = 0.5 * (cell + in[o++]);
        }
      } else {
        const int y = dy < 0 ? 0 : ny - 1;
        for (int x = 0; x < nx; ++x) {
          auto& cell =
              f[(((static_cast<std::size_t>(v) * nz + z) * ny + y) * nx + x)];
          cell = 0.5 * (cell + in[o++]);
        }
      }
    }
  }
}

void Cm1Rank::advance_fields() {
  if (!cfg_.real_data) return;
  double* f = field_data();
  const int nx = cfg_.nx;
  const int ny = cfg_.ny;
  const int nz = cfg_.nz;
  constexpr double kAlpha = 0.05;
  for (int v = 0; v < cfg_.nvars; ++v) {
    double* g = f + static_cast<std::size_t>(v) * nz * ny * nx;
    for (int z = 1; z < nz - 1; ++z) {
      for (int y = 1; y < ny - 1; ++y) {
        for (int x = 1; x < nx - 1; ++x) {
          const std::size_t at =
              (static_cast<std::size_t>(z) * ny + y) * nx + x;
          const double lap = g[at - 1] + g[at + 1] + g[at - nx] + g[at + nx] +
                             g[at - static_cast<std::size_t>(nx) * ny] +
                             g[at + static_cast<std::size_t>(nx) * ny] -
                             6.0 * g[at];
          g[at] += kAlpha * lap;
        }
      }
    }
  }
}

sim::Task<> Cm1Rank::step() {
  // Halo exchange: paired sendrecv with each existing neighbor, one axis at
  // a time (the classic CM1/MPI pattern). Tags encode the travel direction,
  // so both peers of a pair agree: I send travel_tag(d) and receive the
  // message that traveled -d.
  struct Dir {
    int dx, dy, out_tag, in_tag;
  };
  static constexpr Dir kDirs[] = {{-1, 0, 101, 102},
                                  {1, 0, 102, 101},
                                  {0, -1, 103, 104},
                                  {0, 1, 104, 103}};
  for (const Dir& d : kDirs) {
    const int other = neighbor(d.dx, d.dy);
    if (other < 0) continue;
    common::Buffer incoming = co_await comm_.sendrecv(
        other, d.out_tag + iteration_ * 10, pack_face(d.dx, d.dy), other,
        d.in_tag + iteration_ * 10);
    apply_face(d.dx, d.dy, incoming);
  }
  advance_fields();
  co_await proc_->compute(cfg_.iteration_compute);
  ++iteration_;

  if (cfg_.diag_interval > 0 && iteration_ % cfg_.diag_interval == 0) {
    // Global stability diagnostic, like CM1's CFL checks: every rank
    // contributes its subdomain mean and all agree on the sum.
    std::vector<double> diag(1, local_diag());
    diag = co_await comm_.allreduce_sum(std::move(diag));
    last_diag_ = diag[0];
  }

  if (cfg_.summary_interval > 0 && iteration_ % cfg_.summary_interval == 0) {
    guestfs::SimpleFs* fs = proc_->vm().fs();
    const std::string path = common::strf("%s/summary_r%03d_i%05d.bin",
                                          cfg_.data_dir.c_str(), rank_,
                                          iteration_);
    common::Buffer summary =
        cfg_.real_data
            ? common::Buffer::pattern(cfg_.summary_bytes,
                                      state_digest() ^ iteration_)
            : common::Buffer::phantom(cfg_.summary_bytes);
    co_await proc_->vm().gate();
    co_await fs->write_file(path, std::move(summary));
  }
}

sim::Task<> Cm1Rank::run(int iterations) {
  for (int i = 0; i < iterations; ++i) co_await step();
}

std::string Cm1Rank::checkpoint_path() const {
  return common::strf("%s/cm1_restart_r%03d.bin", cfg_.data_dir.c_str(),
                      rank_);
}

sim::Task<std::uint64_t> Cm1Rank::write_checkpoint() {
  guestfs::SimpleFs* fs = proc_->vm().fs();
  co_await proc_->vm().gate();
  common::ByteWriter header;
  header.u32(static_cast<std::uint32_t>(iteration_));
  header.u64(cfg_.field_bytes());
  header.u64(state_digest());
  common::Buffer head = header.take();
  head.resize(kHeaderAlign);

  const guestfs::Fd fd = fs->open(checkpoint_path(), /*create=*/true);
  co_await fs->pwrite(fd, 0, std::move(head));
  co_await fs->pwrite(fd, kHeaderAlign, proc_->regions().at("fields"));
  const std::uint64_t total = fs->file_size(fd);
  fs->close(fd);
  co_return total;
}

sim::Task<bool> Cm1Rank::restore_checkpoint() {
  guestfs::SimpleFs* fs = proc_->vm().fs();
  co_await proc_->vm().gate();
  const guestfs::Fd fd = fs->open(checkpoint_path());
  common::Buffer head = co_await fs->pread(fd, 0, kHeaderAlign);
  common::ByteReader r(head);
  iteration_ = static_cast<int>(r.u32());
  const std::uint64_t bytes = r.u64();
  const std::uint64_t digest = r.u64();
  common::Buffer fields = co_await fs->pread(fd, kHeaderAlign, bytes);
  fs->close(fd);
  const bool ok = fields.size() == bytes && fields.digest() == digest;
  proc_->set_region("fields", std::move(fields));
  co_return ok;
}

}  // namespace blobcr::apps
