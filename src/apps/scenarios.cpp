#include "apps/scenarios.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

#include "common/strutil.h"
#include "cr/remap.h"
#include "cr/session.h"
#include "guestfs/simplefs.h"
#include "mpi/blcr.h"
#include "mpi/coordinated.h"
#include "sim/when_all.h"

namespace blobcr::apps {

using core::Backend;
using core::Cloud;
using core::Deployment;
using sim::Task;


namespace {

/// Usage baseline, captured after provisioning (the base-image upload runs
/// as the default tenant and must not leak into a default-tenant job's
/// numbers). Zero-valued on the PVFS baselines.
blob::BlobStore::TenantUsage capture_usage(Cloud& cloud,
                                           net::TenantId tenant) {
  return cloud.blob_store() != nullptr
             ? cloud.blob_store()->tenant_usage_snapshot(tenant)
             : blob::BlobStore::TenantUsage{};
}

/// Copies the deployment tenant's repository usage since `base` into the
/// result (BlobCR backend; the PVFS baselines have no shared repository
/// accounting).
void fill_tenant_counters(Cloud& cloud, Deployment& dep,
                          const blob::BlobStore::TenantUsage& base,
                          RunResult* result) {
  if (cloud.blob_store() == nullptr) return;
  const blob::BlobStore::TenantUsage u =
      cloud.blob_store()->tenant_usage_snapshot(dep.tenant());
  result->tenant_raw_bytes = u.raw_bytes - base.raw_bytes;
  result->tenant_shipped_bytes = u.shipped_bytes - base.shipped_bytes;
  result->tenant_commit_wait = u.commit_wait - base.commit_wait;
  result->tenant_provider_wait = u.provider_wait - base.provider_wait;
  result->tenant_prefetch_wait = u.prefetch_wait - base.prefetch_wait;
}

}  // namespace

const char* mode_name(CkptMode mode) {
  switch (mode) {
    case CkptMode::AppLevel:
      return "app";
    case CkptMode::ProcessBlcr:
      return "blcr";
    case CkptMode::FullVm:
      return "full";
  }
  return "?";
}

namespace {

/// Memory-fill rate for "fill the buffer with random data".
constexpr double kMemFillBps = 4e9;

struct SyntheticShared {
  std::vector<std::uint64_t> digests;
  std::vector<bool> restore_ok;
};

Task<> synthetic_worker(Deployment* dep, std::size_t index,
                        SyntheticRun run, CkptMode mode,
                        sim::Barrier* start_bar, sim::Barrier* end_bar,
                        std::shared_ptr<SyntheticShared> shared,
                        vm::GuestProcess* gp) {
  for (int round = 0; round < run.rounds; ++round) {
    // (Re)fill the buffer with fresh random data. The leading
    // shared_fraction of every rank's buffer is the same deployment-wide
    // content (a common input dataset), the tail is rank-private.
    const std::uint64_t seed =
        0xf111ULL * (index + 1) + static_cast<std::uint64_t>(round);
    if (run.real_data) {
      std::uint64_t shared = static_cast<std::uint64_t>(
          static_cast<double>(run.buffer_bytes) * run.shared_fraction);
      shared = std::min(shared, run.buffer_bytes);
      const std::uint64_t shared_seed =
          0x5a1dULL + static_cast<std::uint64_t>(round);
      common::Buffer buf = common::Buffer::pattern(shared, shared_seed);
      buf.append(common::Buffer::pattern(run.buffer_bytes - shared, seed));
      gp->set_region("buffer", std::move(buf));
    } else {
      gp->set_region("buffer", common::Buffer::phantom(run.buffer_bytes));
    }
    co_await gp->compute(sim::transfer_time(run.buffer_bytes, kMemFillBps));
    shared->digests[index] = gp->region("buffer").digest();

    co_await start_bar->arrive_and_wait();
    if (mode == CkptMode::AppLevel) {
      guestfs::SimpleFs* fs = gp->vm().fs();
      co_await gp->vm().gate();
      co_await fs->write_file("/data/buffer.bin", gp->region("buffer"));
      co_await fs->sync();
      (void)co_await dep->snapshot_instance(index);
    } else if (mode == CkptMode::ProcessBlcr) {
      co_await mpi::Blcr::dump(*gp, "/data/proc.blcr");
      co_await gp->vm().fs()->sync();
      (void)co_await dep->snapshot_instance(index);
    }
    // FullVm: the external driver snapshots whole VMs between the barriers.
    co_await end_bar->arrive_and_wait();
  }
}

Task<> synthetic_restore_worker(std::size_t index, SyntheticRun run,
                                CkptMode mode,
                                std::shared_ptr<SyntheticShared> shared,
                                vm::GuestProcess* gp) {
  if (mode == CkptMode::AppLevel) {
    guestfs::SimpleFs* fs = gp->vm().fs();
    co_await gp->vm().gate();
    common::Buffer data = co_await fs->read_file("/data/buffer.bin");
    const bool ok = data.size() == run.buffer_bytes &&
                    data.digest() == shared->digests[index];
    gp->set_region("buffer", std::move(data));
    shared->restore_ok[index] = ok;
  } else {
    const bool ok = co_await mpi::Blcr::restore(*gp, "/data/proc.blcr");
    shared->restore_ok[index] =
        ok && gp->region("buffer").digest() == shared->digests[index];
  }
}

Task<> synthetic_driver(Cloud* cloud, SyntheticRun run, CkptMode mode,
                        RunResult* result) {
  sim::Simulation& sim = cloud->simulation();
  co_await cloud->provision_base_image();
  Deployment dep(*cloud, run.instances);
  const blob::BlobStore::TenantUsage usage_base =
      capture_usage(*cloud, dep.tenant());
  cr::Session session(dep);  // checkpoint identity lives in the catalog
  sim::Time t0 = sim.now();
  co_await dep.deploy_and_boot();
  result->deploy_time = sim.now() - t0;
  const std::uint64_t repo_baseline = cloud->repository_bytes();

  auto shared = std::make_shared<SyntheticShared>();
  shared->digests.resize(run.instances);
  shared->restore_ok.assign(run.instances, true);
  sim::Barrier start_bar(sim, run.instances + 1);
  sim::Barrier end_bar(sim, run.instances + 1);

  for (std::size_t i = 0; i < run.instances; ++i) {
    Deployment* dp = &dep;
    dep.vm(i).start_guest(
        "worker", [dp, i, run, mode, &start_bar, &end_bar,
                   shared](vm::GuestProcess& gp) -> Task<> {
          co_await synthetic_worker(dp, i, run, mode, &start_bar, &end_bar,
                                    shared, &gp);
        });
  }

  for (int round = 0; round < run.rounds; ++round) {
    co_await start_bar.arrive_and_wait();
    t0 = sim.now();
    if (mode == CkptMode::FullVm) {
      (void)co_await dep.checkpoint_all();
    }
    co_await end_bar.arrive_and_wait();
    // Commit the round's line to the catalog. commit_last waits out every
    // instance's drain first (async pipeline: the round completes when
    // every staged snapshot has *published*), so the round's record is a
    // complete global checkpoint.
    const cr::CheckpointRecord rec = co_await session.commit_last();
    result->checkpoint_times.push_back(sim.now() - t0);
    sim::Duration blocked = 0;
    for (const core::InstanceSnapshot& s : rec.snapshots) {
      blocked = std::max(blocked, s.vm_downtime);
    }
    result->checkpoint_blocked_times.push_back(blocked);
    result->snapshot_bytes_per_vm.push_back(rec.total_bytes() /
                                            run.instances);
    result->repo_growth.push_back(cloud->repository_bytes() - repo_baseline);
  }
  for (std::size_t i = 0; i < run.instances; ++i) {
    co_await dep.vm(i).join_guests();
  }

  if (run.do_restart) {
    dep.destroy_all();
    t0 = sim.now();
    // §4.3.1 restarts on different nodes with no local state left behind:
    // cold caches (every byte comes from the repository or from peers
    // restarting alongside), and the restart target is whatever the
    // catalog says was the last complete global checkpoint.
    (void)co_await session.restart(cr::Selector::latest(), run.restart_shift,
                                   /*cold_caches=*/true);
    if (mode != CkptMode::FullVm) {
      for (std::size_t i = 0; i < run.instances; ++i) {
        dep.vm(i).start_guest(
            "restore", [i, run, mode, shared](vm::GuestProcess& gp) -> Task<> {
              co_await synthetic_restore_worker(i, run, mode, shared, &gp);
            });
      }
      for (std::size_t i = 0; i < run.instances; ++i) {
        co_await dep.vm(i).join_guests();
      }
    }
    result->restart_time = sim.now() - t0;
    // The restarted mirrors are fresh objects, so their counters cover
    // exactly the restart's lazy-fetch traffic.
    result->restart_repo_bytes = dep.boot_repo_bytes();
    result->restart_peer_bytes = dep.boot_peer_bytes();
    result->restart_parity_bytes = dep.boot_parity_bytes();
    if (run.real_data) {
      for (const bool ok : shared->restore_ok) {
        result->verified = result->verified && ok;
      }
    }
  }
  fill_tenant_counters(*cloud, dep, usage_base, result);
}

}  // namespace

RunResult run_synthetic(Cloud& cloud, const SyntheticRun& run,
                        CkptMode mode) {
  assert((mode == CkptMode::FullVm) ==
             (cloud.config().backend == Backend::Qcow2Full) &&
         "FullVm mode pairs with the Qcow2Full backend");
  RunResult result;
  cloud.run(synthetic_driver(&cloud, run, mode, &result));
  return result;
}

// --- elastic restart ---------------------------------------------------------

namespace {

struct ElasticShared {
  std::vector<std::uint64_t> digests;
  std::vector<bool> restore_ok;
};

/// One pre-rescale instance's state: a distinct data buffer written to disk
/// and synced, its digest recorded for the union verification.
Task<> elastic_writer(std::size_t index, ElasticRun run,
                      std::shared_ptr<ElasticShared> shared,
                      vm::GuestProcess* gp) {
  const std::uint64_t seed = 0xe1a5ULL * (index + 1);
  gp->set_region("buffer",
                 run.real_data
                     ? common::Buffer::pattern(run.buffer_bytes, seed)
                     : common::Buffer::phantom(run.buffer_bytes));
  co_await gp->compute(sim::transfer_time(run.buffer_bytes, kMemFillBps));
  shared->digests[index] = gp->region("buffer").digest();
  guestfs::SimpleFs* fs = gp->vm().fs();
  co_await gp->vm().gate();
  co_await fs->write_file("/data/buffer.bin", gp->region("buffer"));
  co_await fs->sync();
}

/// New instance `index`'s boot device must hold source `source`'s state.
Task<> elastic_verify_boot(std::size_t index, std::size_t source,
                           ElasticRun run,
                           std::shared_ptr<ElasticShared> shared,
                           vm::GuestProcess* gp) {
  guestfs::SimpleFs* fs = gp->vm().fs();
  co_await gp->vm().gate();
  common::Buffer data = co_await fs->read_file("/data/buffer.bin");
  bool ok = data.size() == run.buffer_bytes;
  if (run.real_data) ok = ok && data.digest() == shared->digests[source];
  shared->restore_ok[index] = shared->restore_ok[index] && ok;
}

Task<> elastic_driver(Cloud* cloud, ElasticRun run, ElasticResult* result) {
  sim::Simulation& sim = cloud->simulation();
  co_await cloud->provision_base_image();
  Deployment dep(*cloud, run.instances);
  cr::Session session(dep);
  sim::Time t0 = sim.now();
  co_await dep.deploy_and_boot();
  result->deploy_time = sim.now() - t0;

  auto shared = std::make_shared<ElasticShared>();
  shared->digests.resize(run.instances);
  for (std::size_t i = 0; i < run.instances; ++i) {
    dep.vm(i).start_guest(
        "writer", [i, run, shared](vm::GuestProcess& gp) -> Task<> {
          co_await elastic_writer(i, run, shared, &gp);
        });
  }
  for (std::size_t i = 0; i < run.instances; ++i) {
    co_await dep.vm(i).join_guests();
  }

  t0 = sim.now();
  (void)co_await session.checkpoint("pre-rescale");
  result->checkpoint_time = sim.now() - t0;

  dep.destroy_all();
  t0 = sim.now();
  cr::Session::RestartOptions opts;
  opts.node_offset = run.restart_shift;
  opts.cold_caches = run.cold_caches;
  opts.instances = run.restart_instances;
  (void)co_await session.restart(cr::Selector::latest(), opts);

  // Union verification: every new boot device against its remap source,
  // every attached volume against the shard it adopted, and every one of
  // the N sources covered by some new shard.
  const std::size_t n = run.instances;
  const std::size_t m = dep.size();
  shared->restore_ok.assign(m, true);
  std::vector<bool> covered(n, false);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t source = cr::remap_source(i, n, m);
    covered[source] = true;
    dep.vm(i).start_guest(
        "verify", [i, source, run, shared](vm::GuestProcess& gp) -> Task<> {
          co_await elastic_verify_boot(i, source, run, shared, &gp);
        });
  }
  for (std::size_t i = 0; i < m; ++i) co_await dep.vm(i).join_guests();
  bool attached_ok = true;
  std::size_t attached_checked = 0;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t k = 0; k < dep.attached_count(i); ++k) {
      core::Deployment::AttachedVolume& vol = dep.attached_volume(i, k);
      const std::size_t source = vol.source.instance;
      if (source < n) covered[source] = true;
      const auto fs = co_await guestfs::SimpleFs::mount(vol.device());
      common::Buffer data = co_await fs->read_file("/data/buffer.bin");
      bool ok = data.size() == run.buffer_bytes;
      if (run.real_data) ok = ok && data.digest() == shared->digests[source];
      attached_ok = attached_ok && ok;
      ++attached_checked;
    }
  }
  result->restart_time = sim.now() - t0;
  result->restart_repo_bytes = dep.boot_repo_bytes();
  result->restart_peer_bytes = dep.boot_peer_bytes();
  result->restart_parity_bytes = dep.boot_parity_bytes();
  for (const bool ok : shared->restore_ok) {
    result->verified = result->verified && ok;
  }
  result->verified = result->verified && attached_ok;
  for (const bool c : covered) result->verified = result->verified && c;
  result->shards_verified = m + attached_checked;

  if (run.recheckpoint) {
    // Catalog invariant: the next checkpoint from the M-instance deployment
    // records M tuples, with `parent` still the pre-rescale record.
    const cr::CheckpointRecord rec =
        co_await session.checkpoint("post-rescale");
    result->tuples_after = rec.snapshots.size();
  }
}

}  // namespace

ElasticResult run_elastic(Cloud& cloud, const ElasticRun& run) {
  assert(cloud.config().backend != Backend::Qcow2Full &&
         "qcow2-full resumes full VM state and cannot rescale");
  ElasticResult result;
  cloud.run(elastic_driver(&cloud, run, &result));
  return result;
}

// --- CM1 ----------------------------------------------------------------------

namespace {

struct Cm1Shared {
  std::vector<std::uint64_t> digests;
  std::vector<bool> restore_ok;
};

/// Picks px*py == n with px as close to sqrt(n) as possible.
std::pair<int, int> process_grid(int n) {
  int px = static_cast<int>(std::sqrt(static_cast<double>(n)));
  while (px > 1 && n % px != 0) --px;
  return {px, n / px};
}

Task<> cm1_rank_body(Deployment* dep, cr::Session* session, Cm1Run run,
                     Cm1Config cfg, CkptMode mode, std::size_t vm_index,
                     int rank, sim::Barrier* start_bar, sim::Barrier* end_bar,
                     std::shared_ptr<Cm1Shared> shared,
                     vm::GuestProcess* gp) {
  dep->mpi().register_rank(rank, gp);
  Cm1Rank cm1(*gp, dep->mpi().comm(rank), cfg, rank);
  co_await cm1.init();
  co_await cm1.run(run.iterations);

  co_await start_bar->arrive_and_wait();
  shared->digests[static_cast<std::size_t>(rank)] = cm1.state_digest();

  mpi::CoordinatedHooks hooks;
  hooks.vm_leader = (rank % run.ranks_per_vm == 0);
  hooks.fs = gp->vm().fs();
  hooks.reducer = dep->reducer();
  hooks.epoch_leader = (rank == 0);
  Cm1Rank* cm1p = &cm1;
  if (mode == CkptMode::AppLevel) {
    hooks.dump = [cm1p]() -> Task<> { (void)co_await cm1p->write_checkpoint(); };
  } else {
    hooks.dump = [gp, rank]() -> Task<> {
      co_await mpi::Blcr::dump(
          *gp, common::strf("/data/rank%03d.blcr", rank));
    };
  }
  hooks.request_disk_snapshot = [dep, vm_index]() -> Task<> {
    (void)co_await dep->snapshot_instance(vm_index);
  };
  if (dep->flush_enabled()) {
    hooks.wait_drained = [dep, vm_index]() -> Task<> {
      co_await dep->wait_drained(vm_index);
    };
  }
  // The protocol itself publishes the checkpoint to the catalog (stage
  // after the snapshot barrier, Complete after the drains).
  hooks.stage_record = [session]() -> Task<> {
    co_await session->stage_last();
  };
  hooks.publish_record = [session]() -> Task<> {
    (void)co_await session->publish_staged();
  };
  co_await mpi::coordinated_checkpoint(dep->mpi().comm(rank), hooks);
  co_await end_bar->arrive_and_wait();
}

Task<> cm1_restore_body(Deployment* dep, Cm1Config cfg, CkptMode mode,
                        int rank, std::shared_ptr<Cm1Shared> shared,
                        vm::GuestProcess* gp) {
  dep->mpi().rebind_rank(rank, gp);
  if (mode == CkptMode::AppLevel) {
    Cm1Rank cm1(*gp, dep->mpi().comm(rank), cfg, rank);
    const bool ok = co_await cm1.restore_checkpoint();
    shared->restore_ok[static_cast<std::size_t>(rank)] =
        ok && cm1.state_digest() ==
                  shared->digests[static_cast<std::size_t>(rank)];
  } else {
    const bool ok = co_await mpi::Blcr::restore(
        *gp, common::strf("/data/rank%03d.blcr", rank));
    shared->restore_ok[static_cast<std::size_t>(rank)] =
        ok && gp->region("fields").digest() ==
                  shared->digests[static_cast<std::size_t>(rank)];
  }
}

Task<> cm1_driver(Cloud* cloud, Cm1Run run, CkptMode mode,
                  RunResult* result) {
  sim::Simulation& sim = cloud->simulation();
  co_await cloud->provision_base_image();
  Deployment dep(*cloud, run.vms);
  const blob::BlobStore::TenantUsage usage_base =
      capture_usage(*cloud, dep.tenant());
  cr::Session session(dep);
  sim::Time t0 = sim.now();
  co_await dep.deploy_and_boot();
  result->deploy_time = sim.now() - t0;
  const std::uint64_t repo_baseline = cloud->repository_bytes();

  const int nranks = static_cast<int>(run.vms) * run.ranks_per_vm;
  dep.mpi().set_size(nranks);
  Cm1Config cfg = run.app;
  const auto [px, py] = process_grid(nranks);
  cfg.px = px;
  cfg.py = py;

  auto shared = std::make_shared<Cm1Shared>();
  shared->digests.resize(static_cast<std::size_t>(nranks));
  shared->restore_ok.assign(static_cast<std::size_t>(nranks), true);
  sim::Barrier start_bar(sim, static_cast<std::size_t>(nranks) + 1);
  sim::Barrier end_bar(sim, static_cast<std::size_t>(nranks) + 1);

  for (std::size_t i = 0; i < run.vms; ++i) {
    for (int k = 0; k < run.ranks_per_vm; ++k) {
      const int rank = static_cast<int>(i) * run.ranks_per_vm + k;
      Deployment* dp = &dep;
      cr::Session* sp = &session;
      dep.vm(i).start_guest(
          common::strf("rank%d", rank),
          [dp, sp, run, cfg, mode, i, rank, &start_bar, &end_bar,
           shared](vm::GuestProcess& gp) -> Task<> {
            co_await cm1_rank_body(dp, sp, run, cfg, mode, i, rank,
                                   &start_bar, &end_bar, shared, &gp);
          });
    }
  }

  co_await start_bar.arrive_and_wait();
  t0 = sim.now();
  co_await end_bar.arrive_and_wait();
  result->checkpoint_times.push_back(sim.now() - t0);
  // The coordinated protocol's epoch leader committed the round's catalog
  // record before any rank passed the final barrier.
  const cr::CheckpointRecord rec = session.last_committed().value();
  sim::Duration blocked = 0;
  for (const core::InstanceSnapshot& s : rec.snapshots) {
    blocked = std::max(blocked, s.vm_downtime);
  }
  result->checkpoint_blocked_times.push_back(blocked);
  result->snapshot_bytes_per_vm.push_back(rec.total_bytes() / run.vms);
  result->repo_growth.push_back(cloud->repository_bytes() - repo_baseline);
  for (std::size_t i = 0; i < run.vms; ++i) co_await dep.vm(i).join_guests();

  if (run.do_restart) {
    dep.destroy_all();
    t0 = sim.now();
    // Cold restart on different nodes (§4.4), selected from the catalog.
    (void)co_await session.restart(cr::Selector::latest(), run.restart_shift,
                                   /*cold_caches=*/true);
    for (std::size_t i = 0; i < run.vms; ++i) {
      for (int k = 0; k < run.ranks_per_vm; ++k) {
        const int rank = static_cast<int>(i) * run.ranks_per_vm + k;
        Deployment* dp = &dep;
        dep.vm(i).start_guest(
            common::strf("restore%d", rank),
            [dp, cfg, mode, rank, shared](vm::GuestProcess& gp) -> Task<> {
              co_await cm1_restore_body(dp, cfg, mode, rank, shared, &gp);
            });
      }
    }
    for (std::size_t i = 0; i < run.vms; ++i) {
      co_await dep.vm(i).join_guests();
    }
    result->restart_time = sim.now() - t0;
    result->restart_repo_bytes = dep.boot_repo_bytes();
    result->restart_peer_bytes = dep.boot_peer_bytes();
    result->restart_parity_bytes = dep.boot_parity_bytes();
    if (run.app.real_data) {
      for (const bool ok : shared->restore_ok) {
        result->verified = result->verified && ok;
      }
    }
  }
  fill_tenant_counters(*cloud, dep, usage_base, result);
}

}  // namespace

RunResult run_cm1(Cloud& cloud, const Cm1Run& run, CkptMode mode) {
  assert(mode != CkptMode::FullVm && "the paper omits qcow2-full for CM1");
  RunResult result;
  cloud.run(cm1_driver(&cloud, run, mode, &result));
  return result;
}

}  // namespace blobcr::apps
