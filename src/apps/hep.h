// HepRank: a high-energy-physics-style event-processing code (one of the
// paper's §1 motivating HPC domains). Each rank owns an independent stream
// of collision events; per event it burns compute, updates an in-memory
// histogram, and — for the deterministic fraction that "hit" — appends a
// fixed-size record to an append-only result log in the guest file system.
//
// The workload exists to exercise BlobCR's headline property: rolling back
// file-system I/O. The result log is output, not state — after a failure,
// restoring the disk snapshot rewinds the log to the checkpoint, and
// re-processing the lost events appends each hit exactly once. Conventional
// checkpointing on shared storage would leave duplicate records behind
// (§2.2: "lines appended to a log file between the last checkpoint and the
// occurrence of a failure are difficult to detect and delete on restart").
#pragma once

#include <cstdint>
#include <string>

#include "common/buffer.h"
#include "common/units.h"
#include "sim/sim.h"
#include "vm/vm_instance.h"

namespace blobcr::apps {

struct HepConfig {
  /// Events assigned to each rank for the whole job.
  std::uint64_t total_events = 4'000;
  sim::Duration per_event_compute = 1 * sim::kMillisecond;
  /// Deterministic fraction of events that produce a log record.
  double hit_probability = 0.15;
  std::uint64_t hit_record_bytes = 256;
  /// In-memory histogram updated by every event (the process state).
  std::uint64_t histogram_bytes = 1 * common::kMB;
  /// Physics stream seed: hit decisions replay identically after rollback.
  std::uint64_t seed = 0x4e9'c0de;
  /// fsync the guest FS after this many appended records (0 = never).
  int sync_every_hits = 32;
  /// Real histogram bytes + digest checks (tests) vs phantom (benchmarks).
  bool real_data = false;
  std::string data_dir = "/data";
};

class HepRank {
 public:
  HepRank(vm::GuestProcess& proc, HepConfig cfg, int rank);

  int rank() const { return rank_; }
  std::uint64_t cursor() const { return cursor_; }
  std::uint64_t state_digest() const;

  /// True iff event `e` of this rank produces a log record. Pure function
  /// of (seed, rank, e): replays after a rollback make identical decisions.
  bool is_hit(std::uint64_t e) const;

  /// Hits among events [0, upto) — the exactly-once ground truth.
  std::uint64_t expected_hits(std::uint64_t upto) const;

  /// Allocates the histogram region and creates the (empty) result log.
  sim::Task<> init();

  /// Processes events until the cursor reaches `target` (clamped to
  /// total_events): compute, histogram update, hit append + periodic sync.
  sim::Task<> process_until(std::uint64_t target);

  /// Application-level checkpoint: cursor to a small header file, histogram
  /// to a state file. Returns total bytes written.
  sim::Task<std::uint64_t> write_checkpoint();

  /// Restores cursor + histogram from the checkpoint files; false if the
  /// state digest does not match what the header recorded.
  sim::Task<bool> restore_checkpoint();

  /// Records currently in the result log (fixed-size records, so the count
  /// is the file size over the record size).
  sim::Task<std::uint64_t> count_log_records();

  std::string log_path() const { return cfg_.data_dir + "/hep_hits.log"; }
  std::string cursor_path() const { return cfg_.data_dir + "/hep_cursor.txt"; }
  std::string state_path() const { return cfg_.data_dir + "/hep_hist.bin"; }

 private:
  void bump_histogram(std::uint64_t e);

  vm::GuestProcess* proc_;
  HepConfig cfg_;
  int rank_;
  std::uint64_t cursor_ = 0;
  int unsynced_hits_ = 0;
};

}  // namespace blobcr::apps
