#include "apps/kmer.h"

#include <algorithm>
#include <charconv>

#include "common/rng.h"
#include "common/strutil.h"
#include "guestfs/simplefs.h"

namespace blobcr::apps {

KmerRank::KmerRank(vm::GuestProcess& proc, KmerConfig cfg, int rank)
    : proc_(&proc), cfg_(std::move(cfg)), rank_(rank) {
  if (rank_ < 0 || rank_ >= cfg_.ranks)
    throw std::invalid_argument("KmerRank: rank outside [0, ranks)");
}

std::uint64_t KmerRank::state_digest() const {
  return proc_->regions().at("table").digest();
}

sim::Task<> KmerRank::init() {
  proc_->set_region("table",
                    cfg_.real_data
                        ? common::Buffer::zeros(cfg_.table_bytes)
                        : common::Buffer::phantom(cfg_.table_bytes));
  offset_ = cfg_.slice_begin(rank_);
  co_return;
}

void KmerRank::fold_window(const common::Buffer& window) {
  if (!cfg_.real_data || window.is_phantom()) return;
  // A count-sketch-flavored fold: every 8-byte word of sequence bumps one
  // table cell chosen by its hash. Content-dependent, so the table digest
  // genuinely witnesses which bytes were scanned.
  auto table = proc_->region("table").mutable_bytes();
  const auto bytes = window.bytes();
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    word = (word << 8) | std::to_integer<std::uint64_t>(bytes[i]);
    if ((i & 7u) == 7u) {
      const std::size_t cell =
          static_cast<std::size_t>(common::mix64(word)) % table.size();
      table[cell] =
          static_cast<std::byte>(std::to_integer<unsigned>(table[cell]) + 1);
      word = 0;
    }
  }
}

sim::Task<> KmerRank::scan_until(std::uint64_t target) {
  target = std::min(target, slice_end());
  guestfs::SimpleFs* fs = proc_->vm().fs();
  const guestfs::Fd ref = fs->open(cfg_.reference_path);
  while (offset_ < target) {
    const std::uint64_t len = std::min(cfg_.window_bytes, target - offset_);
    co_await proc_->vm().gate();
    common::Buffer window = co_await fs->pread(ref, offset_, len);
    fold_window(window);
    co_await proc_->compute(
        sim::transfer_time(window.size(), cfg_.scan_bps));
    offset_ += len;
  }
  fs->close(ref);
}

sim::Task<std::uint64_t> KmerRank::write_checkpoint() {
  guestfs::SimpleFs* fs = proc_->vm().fs();
  co_await proc_->vm().gate();
  const std::string header = common::strf(
      "offset=%llu digest=%llu\n", static_cast<unsigned long long>(offset_),
      static_cast<unsigned long long>(cfg_.real_data ? state_digest() : 0));
  co_await fs->write_file(cursor_path(), common::Buffer::from_string(header));
  co_await fs->write_file(state_path(), proc_->region("table"));
  co_return header.size() + cfg_.table_bytes;
}

namespace {

std::uint64_t parse_field(const std::string& text, const std::string& key) {
  const std::size_t at = text.find(key + "=");
  if (at == std::string::npos) return 0;
  const char* begin = text.data() + at + key.size() + 1;
  std::uint64_t value = 0;
  (void)std::from_chars(begin, text.data() + text.size(), value);
  return value;
}

}  // namespace

sim::Task<bool> KmerRank::restore_checkpoint() {
  guestfs::SimpleFs* fs = proc_->vm().fs();
  co_await proc_->vm().gate();
  const common::Buffer header_buf = co_await fs->read_file(cursor_path());
  const std::string header = header_buf.to_string();
  offset_ = parse_field(header, "offset");
  common::Buffer table = co_await fs->read_file(state_path());
  const bool size_ok = table.size() == cfg_.table_bytes;
  bool digest_ok = true;
  if (cfg_.real_data) {
    digest_ok = table.digest() == parse_field(header, "digest");
  }
  proc_->set_region("table", std::move(table));
  co_return size_ok && digest_ok;
}

}  // namespace blobcr::apps
