#include "apps/multi_job.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

#include "common/rng.h"
#include "cr/session.h"
#include "guestfs/simplefs.h"
#include "sim/when_all.h"

namespace blobcr::apps {

using core::Cloud;
using core::Deployment;
using sim::Task;

namespace {

/// Seed of the cross-job shared dataset: identical in every job, rank and
/// round, so overlapping content dedups repository-wide.
constexpr std::uint64_t kSharedSeed = 0x7e4a57ULL;

std::uint64_t private_seed(std::size_t job, std::size_t instance, int round) {
  return common::mix64(0x9e3779b97f4a7c15ULL * (job + 1) +
                       0x100000001b3ULL * (instance + 1) +
                       static_cast<std::uint64_t>(round));
}

/// Fill + dump + snapshot of one instance for one round. Records the
/// buffer digest (restore verification) and the VM pause the guest saw.
Task<> instance_round(Deployment* dep, const MultiJobRun* run,
                      const TenantJobSpec* spec, std::size_t job_index,
                      std::size_t instance, int round,
                      std::uint64_t* digest_out, sim::Duration* downtime_out) {
  std::uint64_t shared = static_cast<std::uint64_t>(
      static_cast<double>(spec->buffer_bytes) * run->shared_fraction);
  shared = std::min(shared, spec->buffer_bytes);
  common::Buffer buf = common::Buffer::pattern(shared, kSharedSeed);
  buf.append(common::Buffer::pattern(
      spec->buffer_bytes - shared, private_seed(job_index, instance, round)));
  *digest_out = buf.digest();

  guestfs::SimpleFs* fs = dep->vm(instance).fs();
  co_await fs->write_file("/data/buffer.bin", std::move(buf));
  co_await fs->sync();
  const core::InstanceSnapshot snap =
      co_await dep->snapshot_instance(instance);
  *downtime_out = snap.vm_downtime;
}

Task<> job_body(Cloud* cloud, const MultiJobRun* run, std::size_t job_index,
                std::size_t node_offset, std::size_t restart_offset,
                JobResult* out) {
  const TenantJobSpec& spec = run->jobs[job_index];
  sim::Simulation& sim = cloud->simulation();
  co_await sim.delay(spec.stagger);

  Deployment::Options dopts;
  dopts.node_offset = node_offset;
  dopts.tenant = out->tenant;
  if (spec.async_flush) {
    flush::FlushConfig fcfg;
    fcfg.enabled = true;
    dopts.flush = fcfg;
  }
  Deployment dep(*cloud, spec.instances, dopts);

  cr::Session::Config scfg;
  scfg.job = spec.name;
  scfg.retention.keep_last = spec.keep_last;
  cr::Session session(dep, scfg);

  co_await dep.deploy_and_boot();

  std::vector<std::uint64_t> digests(spec.instances, 0);
  std::vector<sim::Duration> downtimes(spec.instances, 0);
  for (int round = 0; round < spec.rounds; ++round) {
    const sim::Time t0 = sim.now();
    std::vector<Task<>> work;
    work.reserve(spec.instances);
    for (std::size_t i = 0; i < spec.instances; ++i) {
      work.push_back(instance_round(&dep, run, &spec, job_index, i, round,
                                    &digests[i], &downtimes[i]));
    }
    co_await sim::when_all(sim, std::move(work));
    // Commit the round's line to this job's catalog; with the async
    // pipeline this also waits out the drains, so the record is Complete.
    (void)co_await session.commit_last();
    out->checkpoint_times.push_back(sim.now() - t0);
    out->blocked_times.push_back(
        *std::max_element(downtimes.begin(), downtimes.end()));

    // Mid-job rollback cycle: tear down and cold-restart from the round
    // just committed, back onto the job's own node range, then keep
    // computing. Bulk jobs on the same cadence form the mass-rollback
    // storm the restart-prefetch gate admits against live commits.
    if (spec.restart_every > 0 && (round + 1) % spec.restart_every == 0 &&
        round + 1 < spec.rounds) {
      dep.destroy_all();
      const sim::Time r0 = sim.now();
      (void)co_await session.restart(cr::Selector::latest(), node_offset,
                                     /*cold_caches=*/true);
      for (std::size_t i = 0; i < spec.instances; ++i) {
        const common::Buffer back =
            co_await dep.vm(i).fs()->read_file("/data/buffer.bin");
        out->verified = out->verified && back.size() == spec.buffer_bytes &&
                        back.digest() == digests[i];
      }
      out->restart_times.push_back(sim.now() - r0);
    }
    if (spec.think_time > 0) co_await sim.delay(spec.think_time);
  }

  if (spec.do_restart) {
    dep.destroy_all();
    const sim::Time t0 = sim.now();
    (void)co_await session.restart(cr::Selector::latest(), restart_offset,
                                   /*cold_caches=*/true);
    for (std::size_t i = 0; i < spec.instances; ++i) {
      const common::Buffer back =
          co_await dep.vm(i).fs()->read_file("/data/buffer.bin");
      out->verified = out->verified && back.size() == spec.buffer_bytes &&
                      back.digest() == digests[i];
    }
    out->restart_time = sim.now() - t0;
    out->restart_times.push_back(out->restart_time);
  }

  out->records = co_await session.list();
  out->gc_reclaimed_bytes = session.gc_reclaimed_bytes();
  if (cloud->blob_store() != nullptr) {
    // Full admission wait: commit gate plus the fair manager queues. A
    // fresh per-job tenant has no pre-job usage to subtract.
    const blob::BlobStore::TenantUsage u =
        cloud->blob_store()->tenant_usage_snapshot(out->tenant);
    out->raw_bytes = u.raw_bytes;
    out->shipped_bytes = u.shipped_bytes;
    out->commit_wait = u.commit_wait;
    out->provider_wait = u.provider_wait;
    out->prefetch_wait = u.prefetch_wait;
  }
}

Task<> multi_job_driver(Cloud* cloud, const MultiJobRun* run,
                        MultiJobResult* result) {
  co_await cloud->provision_base_image();
  std::size_t total = 0;
  for (const TenantJobSpec& spec : run->jobs) total += spec.instances;
  assert(cloud->config().compute_nodes >= 2 * total &&
         "need node room for every job plus its restart range");

  std::vector<Task<>> jobs;
  jobs.reserve(run->jobs.size());
  std::size_t offset = 0;
  for (std::size_t k = 0; k < run->jobs.size(); ++k) {
    JobResult& out = result->jobs[k];
    out.name = run->jobs[k].name;
    out.tenant = cloud->register_tenant(run->jobs[k].name, run->jobs[k].weight);
    // Jobs live on disjoint node ranges; a job's restart lands past every
    // job's live range so restarted instances come up on fresh machines.
    jobs.push_back(job_body(cloud, run, k, offset, total + offset, &out));
    offset += run->jobs[k].instances;
  }
  co_await sim::when_all(cloud->simulation(), std::move(jobs));
  result->repository_bytes = cloud->repository_bytes();
}

}  // namespace

MultiJobResult run_multi_job(Cloud& cloud, const MultiJobRun& run) {
  assert(cloud.config().backend == core::Backend::BlobCR &&
         "the multi-tenant repository is the BlobCR backend");
  MultiJobResult result;
  result.jobs.resize(run.jobs.size());
  cloud.run(multi_job_driver(&cloud, &run, &result));
  return result;
}

}  // namespace blobcr::apps
