// Scenarios: reusable end-to-end experiment drivers matching the paper's
// methodology (§4.2/§4.3/§4.4). Benchmarks, examples and integration tests
// all run through these, so every figure regenerates from the same code
// paths a library user would call. Checkpoints commit to — and restarts
// select from — the cr::Session control plane (src/cr/), exactly like the
// FT runner.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/cm1.h"
#include "core/cloud.h"
#include "sim/sim.h"

namespace blobcr::apps {

/// How process state reaches the virtual disk (paper §4.2's three settings).
enum class CkptMode {
  AppLevel,     // the application dumps its own files
  ProcessBlcr,  // BLCR dump driven by the MPI library
  FullVm        // no dump; full VM snapshot (qcow2-full only)
};

const char* mode_name(CkptMode mode);

/// The synthetic benchmarking application (§4.3): one process per VM fills
/// a data buffer with random data, synchronizes, dumps it and requests a
/// disk snapshot.
struct SyntheticRun {
  std::size_t instances = 1;
  std::uint64_t buffer_bytes = 50 * common::kMB;
  bool real_data = false;
  /// Fraction of each rank's buffer filled with deployment-shared content
  /// (a common input dataset every rank loads); the rest is rank-private.
  /// With the reduction pipeline enabled the shared part collapses to one
  /// stored copy across ranks — the dedup-heavy restart workload where the
  /// content-addressed data plane pays off most. Shared content needs
  /// real_data (phantom payloads are honest about being un-dedupable).
  double shared_fraction = 0.0;
  int rounds = 1;          // successive checkpoints (§4.3.2)
  bool do_restart = false; // kill everything and restart (§4.3.1)
  std::size_t restart_shift = 7;  // re-deploy on different nodes
};

/// The CM1 case study (§4.4): 4 ranks per quad-core VM, weak scaling.
struct Cm1Run {
  std::size_t vms = 1;
  int ranks_per_vm = 4;
  Cm1Config app;
  int iterations = 20;  // pre-checkpoint execution
  bool do_restart = false;
  std::size_t restart_shift = 7;
};

struct RunResult {
  sim::Duration deploy_time = 0;
  /// Global checkpoint completion time per round (Fig 2 / Fig 5a / Fig 6).
  /// With the async commit pipeline this is end-to-end *publish* time.
  std::vector<sim::Duration> checkpoint_times;
  /// Longest VM pause per round: the app-blocked share of a checkpoint
  /// (synchronous commits block for the whole transfer; the async pipeline
  /// blocks only for the local staging capture).
  std::vector<sim::Duration> checkpoint_blocked_times;
  /// Average per-VM snapshot size per round (Fig 4 / Table 1).
  std::vector<std::uint64_t> snapshot_bytes_per_vm;
  /// Cumulative checkpoint bytes in the repository per round (Fig 5b).
  std::vector<std::uint64_t> repo_growth;
  /// Restart completion time: redeploy + reboot + state restore (Fig 3).
  sim::Duration restart_time = 0;
  /// Restart transfer split (BlobCR): wire bytes pulled from the
  /// repository vs decoded bytes copied between deployment peers vs bytes
  /// reconstructed from peer parity groups (the redundancy tier) — the
  /// content-addressed data plane's transfer classes.
  std::uint64_t restart_repo_bytes = 0;
  std::uint64_t restart_peer_bytes = 0;
  std::uint64_t restart_parity_bytes = 0;
  /// Digest verification outcome (real-data runs; true in phantom mode).
  bool verified = true;
  /// Per-tenant repository accounting for this job (BlobCR backend),
  /// measured from a post-provisioning baseline so it covers exactly this
  /// job's commits: raw commit payload vs post-reduction bytes actually
  /// shipped, and the time this tenant's requests spent queued at the
  /// shared admission points (commit gate + fair manager queues).
  std::uint64_t tenant_raw_bytes = 0;
  std::uint64_t tenant_shipped_bytes = 0;
  sim::Duration tenant_commit_wait = 0;
  /// Queueing at the admission plane's data-path gates (provider-io and
  /// restart-prefetch), same baseline-diff convention as above.
  sim::Duration tenant_provider_wait = 0;
  sim::Duration tenant_prefetch_wait = 0;
};

/// Elastic (N -> M) restart scenario: N workers each write a distinct data
/// buffer to disk, the line commits as one global checkpoint, and the job
/// restarts as M instances through cr::Session's elastic path (shrink on a
/// spot reclaim, grow on a queue drain). Verification covers the *union* of
/// device images across the remap: every new boot device and every attached
/// volume digest-checks against its source instance's pre-checkpoint state,
/// and all N sources must be covered by the M shards.
struct ElasticRun {
  std::size_t instances = 4;          // N, before the rescale
  std::size_t restart_instances = 2;  // M, after
  std::uint64_t buffer_bytes = 50 * common::kMB;
  bool real_data = true;
  /// Cold restart semantics (machines reclaimed, caches gone) vs warm
  /// (surviving caches keep serving peer copies across the rescale).
  bool cold_caches = true;
  std::size_t restart_shift = 7;
  /// Commit a post-rescale checkpoint and report its tuple count
  /// (ElasticResult::tuples_after) — the catalog's M-tuple invariant.
  bool recheckpoint = false;
};

struct ElasticResult {
  sim::Duration deploy_time = 0;
  /// Pre-rescale global checkpoint completion time.
  sim::Duration checkpoint_time = 0;
  /// Rescaled restart makespan: teardown + remap + boot + state restore
  /// and union verification reads.
  sim::Duration restart_time = 0;
  /// Restart transfer split across the rescale (boot devices + attached
  /// volumes; BlobCR backend).
  std::uint64_t restart_repo_bytes = 0;
  std::uint64_t restart_peer_bytes = 0;
  std::uint64_t restart_parity_bytes = 0;
  /// Every shard digest-verified AND every source covered (real-data runs;
  /// size checks only in phantom mode).
  bool verified = true;
  /// Boot devices + attached volumes checked (== N when coverage is full).
  std::size_t shards_verified = 0;
  /// Tuple count of the post-rescale checkpoint (0 when recheckpoint off).
  std::size_t tuples_after = 0;
};

/// Runs the synthetic workload on an already-constructed cloud. The cloud's
/// backend decides BlobCR vs qcow2-disk; CkptMode::FullVm requires the
/// Qcow2Full backend.
RunResult run_synthetic(core::Cloud& cloud, const SyntheticRun& run,
                        CkptMode mode);

/// Runs the elastic restart scenario (BlobCR or qcow2-disk backend;
/// qcow2-full cannot rescale and is refused by the session).
ElasticResult run_elastic(core::Cloud& cloud, const ElasticRun& run);

/// Runs the CM1 case study (AppLevel or ProcessBlcr).
RunResult run_cm1(core::Cloud& cloud, const Cm1Run& run, CkptMode mode);

}  // namespace blobcr::apps
