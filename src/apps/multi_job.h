// Multi-job scenario driver: K concurrent jobs (distinct tenants, distinct
// cr::Sessions, disjoint compute nodes) checkpointing into ONE shared
// repository. This is the multi-tenant operating mode the checkpointing-as-
// a-service literature targets: cross-job content overlap (a shared input
// dataset every job loads) dedups through the repository-scoped digest
// index, per-tenant QoS keeps a bulk job from starving a small one at the
// shared service queues, and every job restarts bit-exactly from its own
// catalog lineage.
//
// Each job runs the synthetic workload shape of §4.3 (fill a buffer, dump
// it to the virtual disk, request a snapshot, commit the line to the job's
// catalog), staggered in time, with per-job knobs for size, cadence, QoS
// weight, retention and the async commit pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cloud.h"
#include "cr/checkpoint.h"
#include "flush/flush.h"
#include "sim/sim.h"

namespace blobcr::apps {

/// One tenant's job in a multi-job run.
struct TenantJobSpec {
  /// Job id: names the tenant and namespaces the job's checkpoint catalog.
  std::string name;
  /// Relative share at the QoS-controlled shared queues.
  double weight = 1.0;
  std::size_t instances = 1;
  std::uint64_t buffer_bytes = 4 * common::kMB;
  /// Successive checkpoint rounds.
  int rounds = 2;
  /// Launch delay relative to the run start (staggered job arrivals).
  sim::Duration stagger = 0;
  /// Compute time between rounds (0 = back-to-back bulk checkpointing).
  sim::Duration think_time = 0;
  /// Per-job retention (keep-last-N through the job's own session; 0 off).
  std::size_t keep_last = 0;
  /// Run this job's commits through the async pipeline (per-job override of
  /// CloudConfig::flush).
  bool async_flush = false;
  /// Tear down and restart from the job's own catalog at the end, verifying
  /// every instance's restored buffer bit for bit.
  bool do_restart = true;
  /// Mid-job rollback cadence: after every `restart_every`-th round the job
  /// tears down and cold-restarts from its latest checkpoint before
  /// continuing (0 = off). Several bulk jobs on the same cadence form the
  /// mass-rollback storm the restart-prefetch gate arbitrates.
  int restart_every = 0;
};

struct MultiJobRun {
  std::vector<TenantJobSpec> jobs;
  /// Fraction of every rank's buffer that is the cross-job shared dataset
  /// (identical content in every job, every rank, every round — the "same
  /// input data" overlap the shared digest index collapses to one stored
  /// copy repository-wide). The rest is job-, rank- and round-private.
  double shared_fraction = 0.0;
};

/// What one job observed, plus its slice of the repository's per-tenant
/// accounting.
struct JobResult {
  std::string name;
  net::TenantId tenant = net::kDefaultTenant;
  /// Per-round commit completion time and app-blocked time (max over the
  /// job's instances — the pause a guest actually saw).
  std::vector<sim::Duration> checkpoint_times;
  std::vector<sim::Duration> blocked_times;
  sim::Duration restart_time = 0;
  /// Every cold-restart makespan the job saw: the mid-job rollback cycles
  /// (TenantJobSpec::restart_every) plus the final do_restart one.
  std::vector<sim::Duration> restart_times;
  bool verified = true;
  /// Per-tenant repository accounting (see BlobStore::TenantUsage).
  std::uint64_t raw_bytes = 0;
  std::uint64_t shipped_bytes = 0;
  sim::Duration commit_wait = 0;
  sim::Duration provider_wait = 0;
  sim::Duration prefetch_wait = 0;
  std::uint64_t gc_reclaimed_bytes = 0;
  /// The job's own catalog lineage as its session lists it.
  std::vector<cr::CheckpointRecord> records;
};

struct MultiJobResult {
  std::vector<JobResult> jobs;
  /// Payload + metadata resident in the shared repository after all jobs.
  std::uint64_t repository_bytes = 0;

  bool all_verified() const {
    for (const JobResult& j : jobs) {
      if (!j.verified) return false;
    }
    return true;
  }
};

/// Runs all jobs concurrently on an already-constructed (BlobCR) cloud.
/// Jobs get disjoint compute-node ranges; restarts land on the range shifted
/// past every job, so the cloud needs >= 2 * sum(instances) compute nodes.
MultiJobResult run_multi_job(core::Cloud& cloud, const MultiJobRun& run);

}  // namespace blobcr::apps
