#include "sim/simulation.h"

#include <algorithm>
#include <cassert>

#include "sim/process.h"

namespace blobcr::sim {

void TimerHandle::cancel() {
  if (rec_) {
    rec_->cancelled = true;
    rec_.reset();
  }
}

struct Simulation::Cmp {
  bool operator()(const std::shared_ptr<TimerHandle::Rec>& a,
                  const std::shared_ptr<TimerHandle::Rec>& b) const {
    if (a->t != b->t) return a->t > b->t;  // min-heap on time
    return a->seq > b->seq;                // FIFO among simultaneous events
  }
};

Simulation::Simulation() = default;

Simulation::~Simulation() { shutdown(); }

void Simulation::shutdown() {
  for (auto it = processes_.rbegin(); it != processes_.rend(); ++it) {
    if (*it && !(*it)->finished()) (*it)->kill();
  }
  processes_.clear();
  heap_.clear();
}

TimerHandle Simulation::call_at(Time t, std::function<void()> fn) {
  assert(t >= now_);
  auto rec = std::make_shared<TimerHandle::Rec>();
  rec->t = t;
  rec->seq = next_seq_++;
  rec->fn = std::move(fn);
  push_event(rec);
  return TimerHandle(rec);
}

void Simulation::push_event(std::shared_ptr<TimerHandle::Rec> rec) {
  heap_.push_back(std::move(rec));
  std::push_heap(heap_.begin(), heap_.end(), [](const auto& a, const auto& b) {
    return Cmp{}(a, b);
  });
}

bool Simulation::step() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(),
                  [](const auto& a, const auto& b) { return Cmp{}(a, b); });
    auto rec = std::move(heap_.back());
    heap_.pop_back();
    if (rec->cancelled) continue;
    assert(rec->t >= now_);
    now_ = rec->t;
    ++events_processed_;
    auto fn = std::move(rec->fn);
    fn();
    return true;
  }
  return false;
}

void Simulation::run() {
  while (step()) {
  }
}

bool Simulation::run_until(Time t) {
  while (!heap_.empty()) {
    // Peek (skip cancelled heads lazily).
    if (heap_.front()->cancelled) {
      std::pop_heap(heap_.begin(), heap_.end(),
                    [](const auto& a, const auto& b) { return Cmp{}(a, b); });
      heap_.pop_back();
      continue;
    }
    if (heap_.front()->t > t) {
      now_ = t;
      return true;
    }
    step();
  }
  now_ = std::max(now_, t);
  return false;
}

std::size_t Simulation::live_process_count() const {
  std::size_t n = 0;
  for (const auto& p : processes_) {
    if (p && !p->finished()) ++n;
  }
  return n;
}

void Simulation::reap_finished() {
  std::erase_if(processes_, [](const ProcessPtr& p) {
    return !p || p->finished();
  });
}

ProcessPtr Simulation::spawn(std::string name, Task<> body) {
  assert(body.valid());
  ProcessPtr p(new Process(*this, std::move(name)));
  p->root_ = std::move(body);
  p->parent_ = current_;
  if (current_) current_->children_.push_back(p);
  p->root_.handle().promise().on_done = [raw = p.get()] {
    raw->on_root_done();
  };
  processes_.push_back(p);
  call_at(now_, [wp = std::weak_ptr<Process>(p)] {
    if (auto sp = wp.lock(); sp && !sp->finished()) sp->start();
  });
  return p;
}

}  // namespace blobcr::sim
