// Task<T>: a lazily-started coroutine task used for all simulated activities.
//
// Semantics:
//  * `co_await some_task` starts the child and suspends the parent until the
//    child finishes (symmetric transfer, no stack growth on completion
//    chains).
//  * Exceptions propagate from child to awaiting parent.
//  * The Task object owns the coroutine frame. Destroying a Task destroys the
//    frame, which (because child Task objects live inside parent frames)
//    recursively destroys the entire sub-tree of in-flight coroutines — this
//    is how fail-stop `Process::kill()` unwinds a VM's activities while RAII
//    releases any held simulated resources.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <functional>
#include <optional>
#include <utility>

namespace blobcr::sim {

template <class T = void>
class Task;

namespace detail {

struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }

  template <class Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    auto& promise = h.promise();
    if (promise.continuation) return promise.continuation;
    if (promise.on_done) promise.on_done();  // root-task completion hook
    return std::noop_coroutine();
  }

  void await_resume() const noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation{};
  std::function<void()> on_done{};  // set only on process root tasks
  std::exception_ptr error{};

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { error = std::current_exception(); }
};

}  // namespace detail

template <class T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value{};

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value.emplace(std::move(v)); }
    T take() {
      if (this->error) std::rethrow_exception(this->error);
      return std::move(*value);
    }
  };

  Task() noexcept = default;
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : h_(h) {}
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { reset(); }

  bool valid() const noexcept { return static_cast<bool>(h_); }
  bool done() const noexcept { return h_ && h_.done(); }
  std::coroutine_handle<promise_type> handle() const noexcept { return h_; }
  void reset() noexcept {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }

  // Awaiter interface: starts the child coroutine.
  bool await_ready() const noexcept {
    assert(h_ && "awaiting an empty Task");
    return false;
  }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    h_.promise().continuation = cont;
    return h_;
  }
  T await_resume() { return h_.promise().take(); }

 private:
  std::coroutine_handle<promise_type> h_{};
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() noexcept {}
    void take() {
      if (error) std::rethrow_exception(error);
    }
  };

  Task() noexcept = default;
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : h_(h) {}
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { reset(); }

  bool valid() const noexcept { return static_cast<bool>(h_); }
  bool done() const noexcept { return h_ && h_.done(); }
  std::coroutine_handle<promise_type> handle() const noexcept { return h_; }
  void reset() noexcept {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }

  bool await_ready() const noexcept {
    assert(h_ && "awaiting an empty Task");
    return false;
  }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    h_.promise().continuation = cont;
    return h_;
  }
  void await_resume() { h_.promise().take(); }

 private:
  std::coroutine_handle<promise_type> h_{};
};

}  // namespace blobcr::sim
