// Virtual time. All simulation timestamps are int64 nanoseconds so that event
// ordering is exact and runs are bit-reproducible.
#pragma once

#include <cmath>
#include <cstdint>

namespace blobcr::sim {

using Time = std::int64_t;      // nanoseconds since simulation start
using Duration = std::int64_t;  // nanoseconds

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1000;
inline constexpr Duration kMillisecond = 1000 * 1000;
inline constexpr Duration kSecond = 1000 * 1000 * 1000;

constexpr Duration microseconds(std::int64_t n) { return n * kMicrosecond; }
constexpr Duration milliseconds(std::int64_t n) { return n * kMillisecond; }
constexpr Duration seconds(std::int64_t n) { return n * kSecond; }

constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / 1e9;
}

constexpr Duration from_seconds(double s) {
  return static_cast<Duration>(s * 1e9);
}

/// Time to move `bytes` at `bytes_per_sec`, rounded up to whole nanoseconds.
inline Duration transfer_time(std::uint64_t bytes, double bytes_per_sec) {
  if (bytes == 0) return 0;
  const double secs = static_cast<double>(bytes) / bytes_per_sec;
  return static_cast<Duration>(std::ceil(secs * 1e9));
}

}  // namespace blobcr::sim
