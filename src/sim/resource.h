// SharedResource: a fluid-model resource (disk head, bus, CPU share) whose
// capacity is divided equally among concurrently active flows. A flow's
// completion time is recomputed whenever the set of active flows changes.
#pragma once

#include <cassert>
#include <cstdint>
#include <list>
#include <string>

#include "sim/process.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace blobcr::sim {

class SharedResource {
 public:
  SharedResource(Simulation& sim, std::string name, double capacity_bps)
      : sim_(&sim), name_(std::move(name)), cap_(capacity_bps) {}
  SharedResource(const SharedResource&) = delete;
  SharedResource& operator=(const SharedResource&) = delete;

  class UseAwaiter;

  /// co_await res.use(bytes): completes once `bytes` have moved through this
  /// resource at its fair-share rate.
  UseAwaiter use(std::uint64_t bytes);

  double capacity() const { return cap_; }
  void set_capacity(double bps);

  std::size_t active_flows() const { return flows_.size(); }
  std::uint64_t total_bytes() const { return total_bytes_; }
  /// Total virtual time during which at least one flow was active.
  Duration busy_time() const { return busy_time_; }
  const std::string& name() const { return name_; }

 private:
  friend class UseAwaiter;

  void settle();
  void reschedule_all();

  Simulation* sim_;
  std::string name_;
  double cap_;
  std::list<UseAwaiter*> flows_;
  Time last_settle_ = 0;
  double rate_per_flow_ = 0;
  std::uint64_t total_bytes_ = 0;
  Duration busy_time_ = 0;
};

class SharedResource::UseAwaiter : public Blocker {
 public:
  UseAwaiter(SharedResource& r, std::uint64_t bytes)
      : res_(&r), remaining_(static_cast<double>(bytes)), bytes_(bytes) {}

  bool await_ready() const noexcept { return bytes_ == 0; }

  void await_suspend(std::coroutine_handle<> h) {
    proc_ = res_->sim_->current_process();
    assert(proc_ != nullptr && "resource use outside a process");
    h_ = h;
    proc_->set_blocker(this);
    res_->settle();
    it_ = res_->flows_.insert(res_->flows_.end(), this);
    res_->total_bytes_ += bytes_;
    res_->reschedule_all();
  }

  void await_resume() const noexcept {}

  void cancel() noexcept override {
    res_->settle();
    res_->flows_.erase(it_);
    done_ev_.cancel();
    res_->reschedule_all();
  }

 private:
  friend class SharedResource;

  void complete() {
    SharedResource* r = res_;
    r->settle();
    r->flows_.erase(it_);
    Process* p = proc_;
    std::coroutine_handle<> h = h_;
    p->clear_blocker(this);
    r->reschedule_all();
    // May destroy `this` (the frame advances past the co_await).
    p->resume_leaf(h);
  }

  SharedResource* res_;
  double remaining_;
  std::uint64_t bytes_;
  Process* proc_ = nullptr;
  std::coroutine_handle<> h_{};
  std::list<UseAwaiter*>::iterator it_{};
  TimerHandle done_ev_;
};

inline SharedResource::UseAwaiter SharedResource::use(std::uint64_t bytes) {
  return UseAwaiter(*this, bytes);
}

inline void SharedResource::set_capacity(double bps) {
  settle();
  cap_ = bps;
  reschedule_all();
}

inline void SharedResource::settle() {
  const Time now = sim_->now();
  const Duration dt = now - last_settle_;
  if (dt > 0 && !flows_.empty()) {
    const double moved = rate_per_flow_ * to_seconds(dt);
    for (UseAwaiter* f : flows_) {
      f->remaining_ -= moved;
      if (f->remaining_ < 0) f->remaining_ = 0;
    }
    busy_time_ += dt;
  }
  last_settle_ = now;
}

inline void SharedResource::reschedule_all() {
  rate_per_flow_ =
      flows_.empty() ? 0.0 : cap_ / static_cast<double>(flows_.size());
  for (UseAwaiter* f : flows_) {
    f->done_ev_.cancel();
    const Duration eta =
        transfer_time(static_cast<std::uint64_t>(f->remaining_ + 0.5),
                      rate_per_flow_);
    f->done_ev_ = sim_->call_in(eta, [f] { f->complete(); });
  }
}

}  // namespace blobcr::sim
