// Structured concurrency helpers: run a batch of tasks as child processes of
// the current process (so kill() propagates) and wait for all of them.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "sim/process.h"
#include "sim/task.h"

namespace blobcr::sim {

/// Runs all tasks concurrently; completes when every one has finished.
/// Rethrows the first failure (after all tasks finished).
inline Task<> when_all(Simulation& s, std::vector<Task<>> tasks) {
  std::vector<ProcessPtr> procs;
  procs.reserve(tasks.size());
  for (auto& t : tasks) {
    procs.push_back(s.spawn("par", std::move(t)));
  }
  for (const auto& p : procs) co_await p->join();
  for (const auto& p : procs) {
    if (p->error()) std::rethrow_exception(p->error());
  }
}

namespace detail {

struct WindowState {
  std::vector<Task<>> tasks;
  std::size_t next = 0;
};

inline Task<> window_worker(std::shared_ptr<WindowState> st) {
  while (st->next < st->tasks.size()) {
    const std::size_t i = st->next++;
    co_await std::move(st->tasks[i]);
  }
}

}  // namespace detail

/// Runs tasks with at most `window` in flight at once (models a bounded
/// number of outstanding requests per client, e.g. parallel TCP streams).
inline Task<> run_window(Simulation& s, std::size_t window,
                         std::vector<Task<>> tasks) {
  if (tasks.empty()) co_return;
  auto st = std::make_shared<detail::WindowState>();
  st->tasks = std::move(tasks);
  const std::size_t workers = window < st->tasks.size() ? window : st->tasks.size();
  std::vector<Task<>> drivers;
  drivers.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    drivers.push_back(detail::window_worker(st));
  }
  co_await when_all(s, std::move(drivers));
}

}  // namespace blobcr::sim
