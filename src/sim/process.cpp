#include "sim/process.h"

#include <utility>

namespace blobcr::sim {

Process::Process(Simulation& sim, std::string name)
    : sim_(&sim), name_(std::move(name)) {}

void Process::start() { resume_leaf(root_.handle()); }

void Process::resume_leaf(std::coroutine_handle<> h) {
  Process* prev = sim_->current_;
  sim_->current_ = this;
  h.resume();
  sim_->current_ = prev;
}

void Process::on_root_done() {
  error_ = root_.handle().promise().error;
  finish(error_ ? State::Failed : State::Done);
}

void Process::kill() {
  if (finished()) return;
  assert(sim_->current_ != this && "a process must not kill itself");
  // Children first: they are independent root frames whose resources may
  // derive from ours.
  auto children = std::move(children_);
  for (auto& weak_child : children) {
    if (auto child = weak_child.lock()) child->kill();
  }
  if (blocker_ != nullptr) {
    blocker_->cancel();
    blocker_ = nullptr;
  }
  // Destroying the root frame cascades through nested Task members and
  // releases held RAII guards (locks, resource flows).
  root_.reset();
  finish(State::Killed);
}

void Process::finish(State s) {
  state_ = s;
  auto joiners = std::move(joiners_);
  joiners_.clear();
  for (Joiner* j : joiners) j->notify();
}

}  // namespace blobcr::sim
