// Process: a spawned root coroutine plus the machinery needed to kill it.
//
// Fail-stop semantics: a simulated machine failure destroys, at an arbitrary
// virtual time, every process running on it. `Process::kill()` implements
// this: it recursively kills child processes, cancels the process's single
// outstanding Blocker (a suspended timer / wait-queue node / resource flow),
// and destroys the root coroutine frame. Frame destruction runs destructors
// of everything in flight, so RAII guards (locks, resource flows) release
// cleanly and the rest of the simulation observes a consistent world.
#pragma once

#include <cassert>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulation.h"
#include "sim/task.h"

namespace blobcr::sim {

/// One suspended wait of a process. At most one Blocker is outstanding per
/// process (a process is a single thread of execution); concurrency within a
/// process is expressed by spawning child processes.
class Blocker {
 public:
  /// Deregisters this blocker from whatever structure holds it (event queue,
  /// wait queue, resource flow list). Called exactly once, and only while the
  /// owning process is being killed. Must not resume the coroutine.
  virtual void cancel() noexcept = 0;

 protected:
  ~Blocker() = default;
};

class Process : public std::enable_shared_from_this<Process> {
 public:
  enum class State { Running, Done, Failed, Killed };

  const std::string& name() const { return name_; }
  State state() const { return state_; }
  bool finished() const { return state_ != State::Running; }
  /// Exception that escaped the root task, if state() == Failed.
  std::exception_ptr error() const { return error_; }

  /// Fail-stop terminate. No-op when already finished. Must not be called
  /// from within the process itself (use a normal return or throw instead).
  void kill();

  /// co_await p->join(): waits until the process finishes (by any means).
  struct JoinAwaiter;
  JoinAwaiter join();

  Simulation& simulation() const { return *sim_; }

  // --- used by awaitable implementations ---
  void set_blocker(Blocker* b) {
    assert(blocker_ == nullptr);
    blocker_ = b;
  }
  void clear_blocker(Blocker* b) {
    assert(blocker_ == b);
    (void)b;
    blocker_ = nullptr;
  }
  /// Resumes the process's suspended leaf coroutine with current-process
  /// tracking. Only call from event callbacks.
  void resume_leaf(std::coroutine_handle<> h);

 private:
  friend class Simulation;

  Process(Simulation& sim, std::string name);

  void start();
  void on_root_done();
  void finish(State s);

  Simulation* sim_;
  std::string name_;
  Task<> root_;
  State state_ = State::Running;
  std::exception_ptr error_;
  Blocker* blocker_ = nullptr;
  Process* parent_ = nullptr;
  std::vector<std::weak_ptr<Process>> children_;
  // Joiners are woken via scheduled events; see JoinAwaiter.
  struct Joiner;
  std::vector<Joiner*> joiners_;
};

/// Wait node used by join(). Lives inside the joining coroutine's frame.
struct Process::Joiner : Blocker {
  Process* target = nullptr;
  Process* waiter = nullptr;
  std::coroutine_handle<> h{};
  TimerHandle resume_ev;
  bool notified = false;

  void notify() {
    notified = true;
    resume_ev = target->sim_->call_at(target->sim_->now(), [this] {
      waiter->clear_blocker(this);
      waiter->resume_leaf(h);
    });
  }
  void cancel() noexcept override {
    if (notified) {
      resume_ev.cancel();
    } else {
      std::erase(target->joiners_, this);
    }
  }
};

struct Process::JoinAwaiter {
  Process* target;
  Joiner node{};

  bool await_ready() const noexcept { return target->finished(); }
  void await_suspend(std::coroutine_handle<> h) {
    node.target = target;
    node.waiter = target->sim_->current_process();
    assert(node.waiter != nullptr && "join() outside a process");
    node.h = h;
    node.waiter->set_blocker(&node);
    target->joiners_.push_back(&node);
  }
  void await_resume() const noexcept {}
};

inline Process::JoinAwaiter Process::join() { return JoinAwaiter{this}; }

/// Awaiter for Simulation::delay()/yield().
struct Simulation::DelayAwaiter : Blocker {
  Simulation* sim;
  Duration d;
  Process* proc = nullptr;
  std::coroutine_handle<> h{};
  TimerHandle timer;

  DelayAwaiter(Simulation& s, Duration dd) : sim(&s), d(dd) {}
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle) {
    proc = sim->current_process();
    assert(proc != nullptr && "delay() outside a process");
    h = handle;
    proc->set_blocker(this);
    timer = sim->call_in(d, [this] {
      proc->clear_blocker(this);
      proc->resume_leaf(h);
    });
  }
  void await_resume() const noexcept {}
  void cancel() noexcept override { timer.cancel(); }
};

inline Simulation::DelayAwaiter Simulation::delay(Duration d) {
  return DelayAwaiter(*this, d);
}

inline Simulation::DelayAwaiter Simulation::yield() { return delay(0); }

}  // namespace blobcr::sim
