// Virtual-time synchronization primitives: WaitQueue, Event, Semaphore,
// Mutex, Barrier, Channel<T>.
//
// All wakeups are *scheduled* (events at the current virtual time), never
// inline resumes, so no process ever runs re-entrantly inside another
// process's stack. Every wait node implements Blocker so a killed process
// detaches cleanly; nodes that were already handed a semaphore permit return
// it on cancellation.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <list>
#include <optional>

#include "sim/process.h"
#include "sim/simulation.h"

namespace blobcr::sim {

class WaitQueue {
 public:
  explicit WaitQueue(Simulation& sim) : sim_(&sim) {}
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  class Awaiter;

  Awaiter wait();
  std::size_t waiting() const { return list_.size(); }
  bool empty() const { return list_.empty(); }

  /// Wakes the oldest waiter; returns false if none.
  bool notify_one();
  std::size_t notify_all();

  Simulation& simulation() const { return *sim_; }

 private:
  friend class Awaiter;
  Simulation* sim_;
  std::list<Awaiter*> list_;
};

class WaitQueue::Awaiter : public Blocker {
 public:
  explicit Awaiter(WaitQueue& q) : q_(&q) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    proc_ = q_->sim_->current_process();
    assert(proc_ != nullptr && "wait() outside a process");
    h_ = h;
    proc_->set_blocker(this);
    it_ = q_->list_.insert(q_->list_.end(), this);
  }
  void await_resume() const noexcept {}

  void cancel() noexcept override {
    if (notified_) {
      resume_ev_.cancel();
    } else {
      q_->list_.erase(it_);
    }
  }

 private:
  friend class WaitQueue;

  void notify() {
    notified_ = true;
    resume_ev_ = q_->sim_->call_at(q_->sim_->now(), [this] {
      proc_->clear_blocker(this);
      proc_->resume_leaf(h_);
    });
  }

  WaitQueue* q_;
  Process* proc_ = nullptr;
  std::coroutine_handle<> h_{};
  std::list<Awaiter*>::iterator it_{};
  bool notified_ = false;
  TimerHandle resume_ev_;
};

inline WaitQueue::Awaiter WaitQueue::wait() { return Awaiter(*this); }

inline bool WaitQueue::notify_one() {
  if (list_.empty()) return false;
  Awaiter* a = list_.front();
  list_.pop_front();
  a->notify();
  return true;
}

inline std::size_t WaitQueue::notify_all() {
  std::size_t n = 0;
  while (notify_one()) ++n;
  return n;
}

/// One-shot (resettable) broadcast event.
class Event {
 public:
  explicit Event(Simulation& sim) : q_(sim) {}

  bool is_set() const { return set_; }
  void set() {
    if (!set_) {
      set_ = true;
      q_.notify_all();
    }
  }
  void reset() { set_ = false; }

  struct Awaiter {
    Event* ev;
    WaitQueue::Awaiter inner;
    bool await_ready() const noexcept { return ev->set_; }
    void await_suspend(std::coroutine_handle<> h) { inner.await_suspend(h); }
    void await_resume() const noexcept {}
  };

  Awaiter wait() { return Awaiter{this, q_.wait()}; }

 private:
  bool set_ = false;
  WaitQueue q_;
};

/// Counting semaphore with FIFO hand-off.
class Semaphore {
 public:
  Semaphore(Simulation& sim, std::int64_t count) : sim_(&sim), count_(count) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  std::int64_t available() const { return count_; }
  std::size_t waiting() const { return list_.size(); }

  class Awaiter : public Blocker {
   public:
    explicit Awaiter(Semaphore& s) : sem_(&s) {}

    bool await_ready() noexcept {
      if (sem_->count_ > 0) {
        --sem_->count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      proc_ = sem_->sim_->current_process();
      assert(proc_ != nullptr && "acquire() outside a process");
      h_ = h;
      proc_->set_blocker(this);
      it_ = sem_->list_.insert(sem_->list_.end(), this);
    }
    void await_resume() const noexcept {}

    void cancel() noexcept override {
      if (notified_) {
        // A permit was handed to us but we died before using it: return it.
        resume_ev_.cancel();
        sem_->release();
      } else {
        sem_->list_.erase(it_);
      }
    }

   private:
    friend class Semaphore;
    void notify() {
      notified_ = true;
      resume_ev_ = sem_->sim_->call_at(sem_->sim_->now(), [this] {
        proc_->clear_blocker(this);
        proc_->resume_leaf(h_);
      });
    }
    Semaphore* sem_;
    Process* proc_ = nullptr;
    std::coroutine_handle<> h_{};
    std::list<Awaiter*>::iterator it_{};
    bool notified_ = false;
    TimerHandle resume_ev_;
  };

  Awaiter acquire() { return Awaiter(*this); }

  void release(std::int64_t n = 1) {
    while (n > 0) {
      if (list_.empty()) {
        count_ += n;
        return;
      }
      Awaiter* a = list_.front();
      list_.pop_front();
      a->notify();  // hand-off: count unchanged
      --n;
    }
  }

 private:
  friend class Awaiter;
  Simulation* sim_;
  std::int64_t count_;
  std::list<Awaiter*> list_;
};

/// FIFO mutex whose guard releases on destruction — including during
/// kill-unwind of the owning process.
class Mutex {
 public:
  explicit Mutex(Simulation& sim) : sem_(sim, 1) {}

  class Guard {
   public:
    Guard() = default;
    explicit Guard(Mutex* m) : m_(m) {}
    Guard(Guard&& o) noexcept : m_(std::exchange(o.m_, nullptr)) {}
    Guard& operator=(Guard&& o) noexcept {
      if (this != &o) {
        release();
        m_ = std::exchange(o.m_, nullptr);
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { release(); }
    void release() {
      if (m_ != nullptr) {
        m_->sem_.release();
        m_ = nullptr;
      }
    }

   private:
    Mutex* m_ = nullptr;
  };

  struct Awaiter {
    Mutex* m;
    Semaphore::Awaiter inner;
    bool await_ready() noexcept { return inner.await_ready(); }
    void await_suspend(std::coroutine_handle<> h) { inner.await_suspend(h); }
    Guard await_resume() noexcept { return Guard(m); }
  };

  /// Usage: `auto guard = co_await mutex.lock();`
  Awaiter lock() { return Awaiter{this, sem_.acquire()}; }

  bool locked() const { return sem_.available() == 0; }

 private:
  Semaphore sem_;
};

/// Cyclic barrier for a fixed number of parties.
class Barrier {
 public:
  Barrier(Simulation& sim, std::size_t parties)
      : parties_(parties), q_(sim) {}

  struct Awaiter {
    Barrier* b;
    WaitQueue::Awaiter inner;
    bool await_ready() noexcept {
      if (++b->arrived_ == b->parties_) {
        b->arrived_ = 0;
        b->q_.notify_all();
        return true;  // last arriver passes straight through
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { inner.await_suspend(h); }
    void await_resume() const noexcept {}
  };

  Awaiter arrive_and_wait() { return Awaiter{this, q_.wait()}; }
  std::size_t parties() const { return parties_; }

 private:
  friend struct Awaiter;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  WaitQueue q_;
};

/// Unbounded FIFO message channel. A value pushed while receivers wait is
/// delivered directly to the oldest waiter (a killed waiter's in-flight
/// message is lost with it — fail-stop semantics).
template <class T>
class Channel {
 public:
  explicit Channel(Simulation& sim) : q_(sim) {}

  class RecvAwaiter : public Blocker {
   public:
    explicit RecvAwaiter(Channel& c) : ch_(&c) {}

    bool await_ready() noexcept {
      if (!ch_->buf_.empty() && ch_->waiters_.empty()) {
        payload_.emplace(std::move(ch_->buf_.front()));
        ch_->buf_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      proc_ = ch_->q_.simulation().current_process();
      assert(proc_ != nullptr && "recv() outside a process");
      h_ = h;
      proc_->set_blocker(this);
      it_ = ch_->waiters_.insert(ch_->waiters_.end(), this);
    }
    T await_resume() { return std::move(*payload_); }

    void cancel() noexcept override {
      if (notified_) {
        resume_ev_.cancel();  // the delivered payload dies with the process
      } else {
        ch_->waiters_.erase(it_);
      }
    }

   private:
    friend class Channel;
    void deliver(T v) {
      payload_.emplace(std::move(v));
      notified_ = true;
      Simulation& sim = ch_->q_.simulation();
      resume_ev_ = sim.call_at(sim.now(), [this] {
        proc_->clear_blocker(this);
        proc_->resume_leaf(h_);
      });
    }
    Channel* ch_;
    Process* proc_ = nullptr;
    std::coroutine_handle<> h_{};
    typename std::list<RecvAwaiter*>::iterator it_{};
    std::optional<T> payload_;
    bool notified_ = false;
    TimerHandle resume_ev_;
  };

  void push(T v) {
    if (!waiters_.empty()) {
      RecvAwaiter* w = waiters_.front();
      waiters_.pop_front();
      w->deliver(std::move(v));
      return;
    }
    buf_.push_back(std::move(v));
  }

  RecvAwaiter recv() { return RecvAwaiter(*this); }

  std::size_t queued() const { return buf_.size(); }

 private:
  friend class RecvAwaiter;
  std::deque<T> buf_;
  std::list<RecvAwaiter*> waiters_;
  WaitQueue q_;  // supplies the Simulation reference
};

}  // namespace blobcr::sim
