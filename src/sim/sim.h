// Umbrella header for the discrete-event simulation engine.
#pragma once

#include "sim/process.h"    // IWYU pragma: export
#include "sim/resource.h"   // IWYU pragma: export
#include "sim/simulation.h" // IWYU pragma: export
#include "sim/sync.h"       // IWYU pragma: export
#include "sim/task.h"       // IWYU pragma: export
#include "sim/time.h"       // IWYU pragma: export
