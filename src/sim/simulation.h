// Simulation: the discrete-event core. Single-threaded, deterministic:
// events are ordered by (time, sequence number) and all randomness in the
// wider system flows from explicitly seeded RNGs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/task.h"
#include "sim/time.h"

namespace blobcr::sim {

class Process;
using ProcessPtr = std::shared_ptr<Process>;

/// Cancellable handle to a scheduled callback.
class TimerHandle {
 public:
  TimerHandle() = default;
  bool valid() const { return static_cast<bool>(rec_); }
  void cancel();

 private:
  friend class Simulation;
  struct Rec;
  explicit TimerHandle(std::shared_ptr<Rec> rec) : rec_(std::move(rec)) {}
  std::shared_ptr<Rec> rec_;
};

class Simulation {
 public:
  Simulation();
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time now() const { return now_; }

  TimerHandle call_at(Time t, std::function<void()> fn);
  TimerHandle call_in(Duration d, std::function<void()> fn) {
    return call_at(now_ + d, std::move(fn));
  }

  /// Runs until the event queue is empty.
  void run();
  /// Runs events with timestamp <= t; afterwards now() == t if any event ran
  /// past or the queue drained. Returns false if the queue drained.
  bool run_until(Time t);

  /// Spawns a root process executing `body`. The process starts at the
  /// current time (via a scheduled event, never inline).
  ProcessPtr spawn(std::string name, Task<> body);

  /// Process currently executing (nullptr outside process context).
  Process* current_process() const { return current_; }

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t live_process_count() const;

  /// All spawned processes (finished ones included until reaped) — for
  /// stall diagnostics: dump the unfinished ones to see who deadlocked.
  const std::vector<ProcessPtr>& debug_processes() const { return processes_; }

  /// Drops bookkeeping references to finished processes.
  void reap_finished();

  /// Kills every live process (reverse spawn order) and clears the event
  /// queue. Owners whose members (channels, stores...) are destroyed before
  /// the Simulation must call this first so coroutine frames unwind while
  /// the structures they reference are still alive.
  void shutdown();

  /// co_await sim.delay(d): suspends the calling process for d virtual time.
  struct DelayAwaiter;
  DelayAwaiter delay(Duration d);

  /// co_await sim.yield(): reschedules the calling process at the current
  /// time (runs after already-queued events).
  DelayAwaiter yield();

 private:
  friend class Process;
  friend class TimerHandle;

  struct Cmp;

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::vector<std::shared_ptr<TimerHandle::Rec>> heap_;
  std::vector<ProcessPtr> processes_;
  Process* current_ = nullptr;

  void push_event(std::shared_ptr<TimerHandle::Rec> rec);
  bool step();  // executes one event; false if queue empty
};

struct TimerHandle::Rec {
  Time t = 0;
  std::uint64_t seq = 0;
  std::function<void()> fn;
  bool cancelled = false;
};

}  // namespace blobcr::sim
