// Ablation A8: the peer parity redundancy tier vs repository-side
// durability (SCR-style multi-level resilience grafted onto the paper's
// repository, ROADMAP item "multi-level peer redundancy + scavenge").
//
// Two experiments:
//
//  1. restart-bytes: the same tightly-coupled job suffers one fail-stop
//     node loss under three equal-durability configurations — all three
//     survive a single node failure:
//       parity  replication=1, XOR parity groups across the peer tier
//       repl2   replication=2 in the repository
//       repair  replication=2 + a re-replication scrub after the rollback
//     The headline claim, gated by `verified`: with parity the rollback
//     reconstructs the dead node's chunks from surviving peers' caches +
//     parity blocks and fetches STRICTLY fewer repository bytes than both
//     baselines, while storing half their repository footprint.
//
//  2. scavenge: a full repository outage (every data provider's disk dies)
//     on the parity configuration; cr::Session::scavenge() rebuilds blob +
//     catalog state from the surviving peer tier, and a subsequent restart
//     with cleared caches — every read forced through the scavenged
//     repository — must restore guest state bit-exactly.
#include "bench_common.h"

#include "cr/session.h"
#include "ft/failure.h"
#include "ft/runner.h"
#include "guestfs/simplefs.h"

namespace blobcr::bench {
namespace {

using common::Buffer;
using core::Cloud;
using core::CloudConfig;
using core::Deployment;
using sim::Task;

// ---------------------------------------------------------------------------
// Experiment 1: restart repository bytes after one fail-stop, three modes.
// ---------------------------------------------------------------------------

enum class Mode { Parity, Repl2, Repair };

ft::FtReport run_mode(Mode mode, std::size_t instances,
                      std::uint64_t state_bytes) {
  CloudConfig cfg = paper_cloud(Backend::BlobCR);
  // Equal durability, different mechanism: one repository copy + peer
  // parity vs two repository copies (with or without post-failure repair).
  cfg.replication = mode == Mode::Parity ? 1 : 2;
  cfg.flush.enabled = true;  // parity encodes on the async drain
  cfg.redundancy.enabled = mode == Mode::Parity;
  Cloud cloud(cfg);

  ft::FtJobConfig job;
  job.instances = instances;
  job.total_work = 600 * sim::kSecond;
  job.checkpoint_interval = 120 * sim::kSecond;
  job.step = 15 * sim::kSecond;
  job.state_bytes = state_bytes;
  job.real_data = true;  // digest-verify every restored rank state
  job.max_restarts = 8;
  job.repair_after_restart = mode == Mode::Repair;
  // Retire old checkpoint lines as the job runs: the GC reclaim also drops
  // their parity groups, bounding the tier's resident state (and the
  // ground-truth buffers real_data runs pin behind it).
  job.retention.keep_last = 2;
  // One deterministic fail-stop mid-run: instance 0's node (VM + its
  // co-located data provider) dies after two checkpoints have committed.
  std::vector<ft::FailureEvent> events;
  events.push_back({290 * sim::kSecond, 0});
  job.failures = ft::FailureSchedule::fixed(std::move(events));
  return ft::run_ft_job(cloud, job);
}

// ---------------------------------------------------------------------------
// Experiment 2: repository outage + scavenge on the parity configuration.
// ---------------------------------------------------------------------------

struct ScavengeOutcome {
  cr::ScavengeReport report;
  sim::Duration rebuild = 0;
  sim::Duration restart = 0;
  std::size_t records_listed = 0;
  bool restored_ok = false;
};

ScavengeOutcome run_scavenge_drill(std::size_t vms,
                                   std::uint64_t state_bytes) {
  CloudConfig cfg = paper_cloud(Backend::BlobCR);
  cfg.replication = 1;
  cfg.flush.enabled = true;
  cfg.redundancy.enabled = true;
  Cloud cloud(cfg);
  ScavengeOutcome out;

  cloud.run([](Cloud* cl, std::size_t vms, std::uint64_t state_bytes,
               ScavengeOutcome* out) -> Task<> {
    co_await cl->provision_base_image();
    Deployment dep(*cl, vms);
    cr::Session session(dep);
    co_await dep.deploy_and_boot();
    for (std::size_t i = 0; i < vms; ++i) {
      guestfs::SimpleFs* fs = dep.vm(i).fs();
      co_await fs->write_file("/data/state.bin",
                              Buffer::pattern(state_bytes, 100 + i));
      co_await fs->sync();
    }
    (void)co_await session.checkpoint("drill");

    // Repository outage: every data provider fail-stops at once. Only the
    // compute nodes' decoded-chunk caches and parity groups survive.
    for (const auto& provider : cl->blob_store()->providers())
      provider->fail();

    const sim::Time t0 = cl->simulation().now();
    out->report = co_await session.scavenge();
    out->rebuild = cl->simulation().now() - t0;
    out->records_listed = (co_await session.list()).size();

    // Clear every node cache so the restart cannot lean on the peer tier:
    // each lazy fetch must come out of the scavenged repository. Restart on
    // shifted nodes so no stale mirror state helps either.
    cl->reset_chunk_caches();
    const sim::Time t1 = cl->simulation().now();
    (void)co_await session.restart(cr::Selector::latest(),
                                   /*node_offset=*/vms);
    out->restart = cl->simulation().now() - t1;
    bool ok = true;
    for (std::size_t i = 0; i < vms; ++i) {
      const Buffer state =
          co_await dep.vm(i).fs()->read_file("/data/state.bin");
      ok = ok && state == Buffer::pattern(state_bytes, 100 + i);
    }
    out->restored_ok = ok;
  }(&cloud, vms, state_bytes, &out));
  return out;
}

void register_all() {
  const std::size_t instances = fast_mode() ? 4 : 8;
  const std::uint64_t state_bytes =
      (fast_mode() ? 20 : 50) * common::kMB;

  benchmark::RegisterBenchmark(
      "AblationRedundancy/restart-bytes",
      [instances, state_bytes](benchmark::State& state) {
        const ft::FtReport parity =
            run_mode(Mode::Parity, instances, state_bytes);
        const ft::FtReport repl2 =
            run_mode(Mode::Repl2, instances, state_bytes);
        const ft::FtReport repair =
            run_mode(Mode::Repair, instances, state_bytes);

        // The gate: parity must beat BOTH repository-side baselines on
        // restart-path repository bytes, with every restored rank state
        // digest-verified in all three runs.
        const bool fewer_repo_bytes =
            parity.restart_repo_bytes < repl2.restart_repo_bytes &&
            parity.restart_repo_bytes < repair.restart_repo_bytes;
        const bool all_ok = parity.completed && parity.verified &&
                            repl2.completed && repl2.verified &&
                            repair.completed && repair.verified;

        report_seconds(state, parity.restart_overhead);
        const double n = static_cast<double>(instances);
        state.counters["repo_mb_per_inst"] =
            mb(parity.restart_repo_bytes) / n;
        state.counters["repl2_repo_mb_per_inst"] =
            mb(repl2.restart_repo_bytes) / n;
        state.counters["repair_repo_mb_per_inst"] =
            mb(repair.restart_repo_bytes) / n;
        state.counters["parity_rebuilt_mb"] = mb(parity.parity_bytes_rebuilt);
        state.counters["peer_mb"] = mb(parity.restart_peer_bytes);
        state.counters["repair_copied_mb"] = mb(repair.repair_bytes);
        state.counters["verified"] = (fewer_repo_bytes && all_ok) ? 1 : 0;
      })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kSecond);

  const std::size_t drill_vms = fast_mode() ? 4 : 8;
  benchmark::RegisterBenchmark(
      "AblationRedundancy/scavenge",
      [drill_vms, state_bytes](benchmark::State& state) {
        const ScavengeOutcome out =
            run_scavenge_drill(drill_vms, state_bytes);
        const bool ok = out.restored_ok && out.report.chunks_restored > 0 &&
                        out.records_listed > 0;
        report_seconds(state, out.rebuild);
        state.counters["rebuild_s"] = sim::to_seconds(out.rebuild);
        state.counters["restart_s"] = sim::to_seconds(out.restart);
        state.counters["scavenged_mb"] = mb(out.report.bytes_restored);
        state.counters["chunks_restored"] =
            static_cast<double>(out.report.chunks_restored);
        state.counters["unrecoverable"] =
            static_cast<double>(out.report.unrecoverable);
        state.counters["catalog_records"] =
            static_cast<double>(out.report.catalog_records);
        state.counters["verified"] = ok ? 1 : 0;
      })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kSecond);
}

}  // namespace
}  // namespace blobcr::bench

int main(int argc, char** argv) {
  blobcr::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
