// Ablation A3: chunk replication factor. Replication buys failure
// survivability (see FailureInjectionTest) at the cost of extra write
// volume at checkpoint time and extra repository space.
#include "bench_common.h"

namespace blobcr::bench {
namespace {

void run_point(benchmark::State& state, int replication) {
  core::CloudConfig cfg = paper_cloud(Backend::BlobCR);
  cfg.replication = replication;
  core::Cloud cloud(cfg);
  apps::SyntheticRun run;
  run.instances = fast_mode() ? 4 : 40;
  run.buffer_bytes = 50 * common::kMB;
  const apps::RunResult result =
      apps::run_synthetic(cloud, run, CkptMode::AppLevel);
  report_seconds(state, result.checkpoint_times.at(0));
  state.counters["ckpt_s"] = sim::to_seconds(result.checkpoint_times.at(0));
  state.counters["repo_MB"] = mb(result.repo_growth.at(0));
}

void register_all() {
  for (const int r : {1, 2, 3}) {
    const std::string name = "AblationReplication/replicas:" + std::to_string(r);
    benchmark::RegisterBenchmark(name.c_str(),
                                 [r](benchmark::State& state) {
                                   run_point(state, r);
                                 })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
}

}  // namespace
}  // namespace blobcr::bench

int main(int argc, char** argv) {
  blobcr::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
