// Ablation: metadata-plane sharding under tenant scale.
//
// T concurrent tenants share ONE BlobStore and ONE repository-scoped
// ChunkDigestIndex. Each tenant commits a snapshot through the reduction
// pipeline (part shared content — cross-tenant dedup hits — part unique),
// binds and resolves a named-blob entry, and a sample of tenants reads its
// snapshot back bit-exactly. The sweep runs every tenant count against two
// metadata-plane configurations with identical hardware and request costs:
//
//  * shards=1  — the pre-sharding plane: one version-manager queue, one
//    digest-index lock. Every create/reserve/publish/name-bind and every
//    per-chunk dedup lookup of every tenant serializes behind them.
//  * shards=16 — the sharded plane: the version-slot table and named-blob
//    registry partition by blob/name hash, the digest index by content
//    hash, one fair queue per shard.
//
// Reported per row:
//  * commit_p95_s         — p95 of per-tenant commit completion time;
//  * index_lookups_per_s  — digest-index lookups served per second of
//    repository makespan (first commit start -> last commit end).
//
// `verified` encodes the headline claim at the largest tenant count:
// sharded commit p95 is flat-or-better (<= 1.05x single-shard) AND sharded
// lookup throughput scales (>= 1.5x single-shard) — plus, for every row:
// all sampled read-backs bit-exact, every tenant committed, cross-tenant
// dedup actually hit, and (sharded rows) lookups really spread over
// multiple shards. The CI gate refuses a flip to 0.
//
// BLOBCR_BENCH_FAST=1 trims the sweep to {10, 1000} tenants; the largest
// point stays — the acceptance claim is about tenant scale.
#include "bench_common.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "blob/client.h"
#include "blob/store.h"
#include "common/strutil.h"
#include "net/fabric.h"
#include "reduce/reducer.h"
#include "reduce/reduction.h"
#include "storage/disk.h"

namespace blobcr::bench {
namespace {

using common::Buffer;

constexpr std::uint64_t kChunk = 4 * 1024;
constexpr std::size_t kChunksPerCommit = 8;   // 4 shared + 4 unique
constexpr std::size_t kSharedPool = 32;       // distinct shared contents
constexpr std::size_t kShardedConfig = 16;

double p95(std::vector<sim::Duration> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t idx = static_cast<std::size_t>(std::max(
      0.0, std::ceil(0.95 * static_cast<double>(samples.size())) - 1.0));
  return sim::to_seconds(samples[idx]);
}

struct Row {
  double commit_p95_s = 0;
  double lookups_per_s = 0;
  double dedup_hits = 0;
  double shards_touched = 0;
  bool ok = false;
};

Buffer pool_chunk(std::size_t pool) {
  return Buffer::pattern(kChunk, 7 + static_cast<int>(pool));
}

/// One tenant's snapshot: a rotating slice of the shared pool (identical
/// content across tenants -> dedup hits resolved by whichever shard owns
/// that content) followed by tenant-unique chunks (index misses, stored).
Buffer tenant_payload(std::size_t tenant) {
  Buffer data;
  for (std::size_t i = 0; i < kChunksPerCommit / 2; ++i) {
    data.append(
        pool_chunk((tenant * (kChunksPerCommit / 2) + i) % kSharedPool));
  }
  for (std::size_t i = kChunksPerCommit / 2; i < kChunksPerCommit; ++i) {
    data.append(Buffer::pattern(
        kChunk, 1000 + static_cast<int>(tenant * kChunksPerCommit + i)));
  }
  return data;
}

struct SweepState {
  sim::Simulation* sim = nullptr;
  blob::BlobStore* store = nullptr;
  std::vector<std::unique_ptr<reduce::Reducer>> reducers;
  std::vector<net::TenantId> tenant_ids;
  net::NodeId first_client_node = 0;
  std::size_t tenants = 0;

  std::vector<sim::Duration> commit_times;
  sim::Time first_start = 0;
  sim::Time last_end = 0;
  std::size_t committed = 0;
  bool payload_ok = true;
};

sim::Task<> tenant_task(SweepState* st, std::size_t i) {
  // Staggered arrivals: tenants pile onto the shared plane, not in lockstep.
  co_await st->sim->delay(static_cast<sim::Duration>(i) *
                          20 * sim::kMicrosecond);
  blob::BlobClient client(
      *st->store, st->first_client_node + static_cast<net::NodeId>(i));
  client.set_tenant(st->tenant_ids[i]);
  const blob::BlobId blob = co_await client.create();
  const Buffer data = tenant_payload(i);

  const sim::Time t0 = st->sim->now();
  if (st->commit_times.empty() || t0 < st->first_start) st->first_start = t0;
  std::vector<blob::BlobClient::ExtentSpec> specs;
  specs.push_back({0, data.size()});
  blob::BlobClient::ExtentReader reader =
      [&data](std::uint64_t off, std::uint64_t len) -> sim::Task<Buffer> {
    co_return data.slice(off, len);
  };
  const blob::VersionId v = co_await client.write_extents_via(
      blob, std::move(specs), &reader, st->reducers[i].get());
  const sim::Time t1 = st->sim->now();
  st->commit_times.push_back(t1 - t0);
  st->last_end = std::max(st->last_end, t1);
  ++st->committed;

  // The named-blob registry (name-hash sharded) is on the measured path too.
  const std::string name = common::strf("ckpt/job%zu", i);
  co_await client.bind_name(name, blob);
  if (co_await client.lookup_name(name) != blob) st->payload_ok = false;

  // Sampled restore: dedup'd + stored chunks must read back bit-exactly.
  if (i % 97 == 0 || i + 1 == st->tenants) {
    const Buffer back = co_await client.read(blob, v, 0, data.size());
    if (!(back == data)) st->payload_ok = false;
  }
}

/// One sweep point: T tenants against an S-shard metadata plane.
Row run_config(std::size_t tenants, std::size_t shards) {
  sim::Simulation sim;
  const std::size_t n_meta = 16;
  const std::size_t n_data = 8;
  const std::size_t total = 2 + n_meta + n_data + tenants + 1;  // +1: seeder
  net::Fabric::Config fcfg;
  fcfg.node_count = total;
  fcfg.nic_bandwidth_bps = 1e9;
  fcfg.latency = 100 * sim::kMicrosecond;
  net::Fabric fabric(sim, fcfg);

  blob::BlobStore::Config cfg;
  cfg.version_manager_node = 0;
  cfg.provider_manager_node = 1;
  for (std::size_t i = 0; i < n_meta; ++i) {
    cfg.metadata_nodes.push_back(static_cast<net::NodeId>(2 + i));
  }
  storage::Disk::Config dcfg;
  dcfg.bandwidth_bps = 1e9;
  dcfg.position_cost = 0;  // metadata plane, not the disks, under test
  std::vector<std::unique_ptr<storage::Disk>> disks;
  for (std::size_t i = 0; i < n_data; ++i) {
    const net::NodeId node = static_cast<net::NodeId>(2 + n_meta + i);
    disks.push_back(std::make_unique<storage::Disk>(
        sim, common::strf("disk%u", node), dcfg));
    cfg.data_providers.push_back({node, disks.back().get(), 1});
  }
  cfg.default_chunk_size = kChunk;
  cfg.tree_depth = 5;  // 32 leaves: fits the seeder's full-pool snapshot
  cfg.replication = 1;
  cfg.meta_request_cost = 10 * sim::kMicrosecond;
  cfg.manager_request_cost = 20 * sim::kMicrosecond;
  cfg.version_shards = shards;
  cfg.qos.enabled = true;  // fair dispatch at every shard queue
  // Effectively unbounded commit gate (> max tenant count in the sweep):
  // the shard queues stay the bottleneck under test while qos::Config's
  // validation — enabled needs at least one bounded gate — is satisfied.
  cfg.qos.commit_slots = 1024;
  blob::BlobStore store(sim, fabric, cfg);

  // The repository-scoped digest index, content-hash sharded, one fair
  // queue (= one lock) per shard charging the per-lookup cost.
  reduce::ReductionConfig rcfg;
  rcfg.enabled = true;
  rcfg.dedup = true;
  rcfg.zero_suppression = false;
  rcfg.compression = false;
  rcfg.index_shards = shards;
  reduce::ChunkDigestIndex index(shards);
  index.attach_service(sim, 100 * sim::kMicrosecond, &store.tenants());

  SweepState st;
  st.sim = &sim;
  st.store = &store;
  st.first_client_node = static_cast<net::NodeId>(2 + n_meta + n_data);
  st.tenants = tenants;
  for (std::size_t i = 0; i < tenants; ++i) {
    st.tenant_ids.push_back(
        store.tenants().register_tenant(common::strf("job%zu", i)));
    st.reducers.push_back(std::make_unique<reduce::Reducer>(
        store, rcfg, &index, st.tenant_ids.back()));
  }

  // Warmup: one seed commit indexes the whole shared pool, so every
  // tenant's shared-content lookups hit steady-state in BOTH configurations
  // (in the single-shard plane the queue backlog would otherwise serve all
  // lookups before the first commit records anything — zero hits by
  // accident of queueing, not by content).
  reduce::Reducer seed_reducer(store, rcfg, &index);
  {
    sim::ProcessPtr seed = sim.spawn(
        "seed",
        [](blob::BlobStore* bs, reduce::Reducer* red) -> sim::Task<> {
          blob::BlobClient client(*bs, 0);  // co-located with the managers
          const blob::BlobId blob = co_await client.create();
          Buffer pool;
          for (std::size_t i = 0; i < kSharedPool; ++i) {
            pool.append(pool_chunk(i));
          }
          std::vector<blob::BlobClient::ExtentSpec> specs;
          specs.push_back({0, pool.size()});
          blob::BlobClient::ExtentReader reader =
              [&pool](std::uint64_t off,
                      std::uint64_t len) -> sim::Task<Buffer> {
            co_return pool.slice(off, len);
          };
          co_await client.write_extents_via(blob, std::move(specs), &reader,
                                            red);
        }(&store, &seed_reducer));
    sim.run();
    if (seed->error()) std::rethrow_exception(seed->error());
  }
  // Warmup traffic is not part of the measured sweep.
  std::uint64_t seed_lookups = 0;
  for (std::size_t s = 0; s < index.shard_count(); ++s) {
    seed_lookups += index.shard_stats(s).lookups;
  }

  std::vector<sim::ProcessPtr> procs;
  for (std::size_t i = 0; i < tenants; ++i) {
    procs.push_back(
        sim.spawn(common::strf("tenant%zu", i), tenant_task(&st, i)));
  }
  sim.run();
  for (const auto& p : procs) {
    if (p->error()) std::rethrow_exception(p->error());
  }

  Row row;
  row.commit_p95_s = p95(st.commit_times);
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::size_t touched = 0;
  for (std::size_t s = 0; s < index.shard_count(); ++s) {
    const reduce::ChunkDigestIndex::ShardStats& stats = index.shard_stats(s);
    lookups += stats.lookups;
    hits += stats.hits;
    if (stats.lookups > 0) ++touched;
  }
  lookups -= seed_lookups;
  const double makespan = sim::to_seconds(st.last_end - st.first_start);
  row.lookups_per_s =
      makespan > 0 ? static_cast<double>(lookups) / makespan : 0.0;
  row.dedup_hits = static_cast<double>(hits);
  row.shards_touched = static_cast<double>(touched);
  row.ok = st.payload_ok && st.committed == tenants && hits > 0 &&
           (shards == 1 || touched >= 2);
  return row;
}

void register_all() {
  std::vector<std::size_t> tenant_counts =
      fast_mode() ? std::vector<std::size_t>{10, 1000}
                  : std::vector<std::size_t>{10, 100, 1000};
  std::vector<std::size_t> shard_counts =
      fast_mode() ? std::vector<std::size_t>{1, kShardedConfig}
                  : std::vector<std::size_t>{1, 4, kShardedConfig};
  const std::size_t max_tenants =
      *std::max_element(tenant_counts.begin(), tenant_counts.end());

  // Rows are computed lazily, one sweep point per (tenants, shards), and
  // cached so the cross-configuration `verified` inequality can compare the
  // sharded row with its single-shard sibling.
  auto rows = std::make_shared<std::map<std::pair<std::size_t, std::size_t>,
                                        Row>>();
  auto ensure = [rows](std::size_t tenants, std::size_t shards) -> Row& {
    auto [it, fresh] = rows->try_emplace({tenants, shards});
    if (fresh) it->second = run_config(tenants, shards);
    return it->second;
  };

  for (const std::size_t tenants : tenant_counts) {
    for (const std::size_t shards : shard_counts) {
      const std::string name =
          common::strf("ShardSweep/t%zu/s%zu", tenants, shards);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [tenants, shards, max_tenants, ensure](benchmark::State& state) {
            const Row row = ensure(tenants, shards);
            report_seconds(state, static_cast<sim::Duration>(
                                      row.commit_p95_s * sim::kSecond));
            state.counters["commit_p95_s"] = row.commit_p95_s;
            state.counters["index_lookups_per_s"] = row.lookups_per_s;
            state.counters["dedup_hits"] = row.dedup_hits;
            state.counters["shards_touched"] = row.shards_touched;
            // The acceptance inequality binds at the largest tenant count:
            // the sharded plane must keep commit p95 flat-or-better AND
            // scale lookup throughput vs the single-shard plane.
            bool verified = row.ok;
            if (tenants == max_tenants) {
              const Row& single = ensure(tenants, 1);
              const Row& sharded = ensure(tenants, kShardedConfig);
              verified = verified && single.ok && sharded.ok &&
                         sharded.commit_p95_s <= single.commit_p95_s * 1.05 &&
                         sharded.lookups_per_s >= single.lookups_per_s * 1.5;
            }
            state.counters["verified"] = verified ? 1 : 0;
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
}

}  // namespace
}  // namespace blobcr::bench

int main(int argc, char** argv) {
  blobcr::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
