// Ablation A6: repository repair cost after fail-stop node losses.
//
// Checkpoints from a fleet of VMs populate the replicated repository, then
// `failed` compute nodes die (taking their data providers with them). The
// repair service re-replicates every under-replicated chunk; we report the
// scrub duration, the bytes moved, and the chunks that could not be saved.
// This quantifies the §3.1.1 design point: replication pays a write-time
// cost (see ablation_replication) and a repair-time cost, in exchange for
// surviving the next failure too.
#include "bench_common.h"

#include "blob/repair.h"

namespace blobcr::bench {
namespace {

struct RepairOutcome {
  blob::RepairService::Report report;
  std::uint64_t repo_bytes = 0;
};

RepairOutcome run_repair(int replication, std::size_t failed_nodes) {
  core::CloudConfig cfg = paper_cloud(Backend::BlobCR);
  cfg.replication = replication;
  core::Cloud cloud(cfg);
  const std::size_t vms = fast_mode() ? 4 : 16;

  auto outcome = std::make_shared<RepairOutcome>();
  cloud.run([](core::Cloud* cl, std::size_t n_vms, std::size_t n_fail,
               int target,
               std::shared_ptr<RepairOutcome> out) -> sim::Task<> {
    co_await cl->provision_base_image();
    core::Deployment dep(*cl, n_vms);
    co_await dep.deploy_and_boot();
    for (std::size_t i = 0; i < dep.size(); ++i) {
      guestfs::SimpleFs* fs = dep.vm(i).fs();
      co_await fs->write_file("/data/state.bin",
                              common::Buffer::phantom(50 * common::kMB));
      co_await fs->sync();
      (void)co_await dep.snapshot_instance(i);
    }
    out->repo_bytes = cl->repository_bytes();
    // Fail nodes that do NOT host the surviving VMs (pure provider loss),
    // starting from the top of the node range.
    for (std::size_t k = 0; k < n_fail; ++k) {
      cl->fail_node(static_cast<net::NodeId>(cl->config().compute_nodes - 1 -
                                             k));
    }
    blob::RepairService repair(*cl->blob_store());
    out->report = co_await repair.repair(target);
  }(&cloud, vms, failed_nodes, replication, outcome));
  return *outcome;
}

void register_all() {
  struct Point {
    int replication;
    std::size_t failed;
  };
  const std::vector<Point> points = fast_mode()
                                        ? std::vector<Point>{{2, 1}, {2, 4}}
                                        : std::vector<Point>{{2, 1},
                                                             {2, 4},
                                                             {2, 12},
                                                             {3, 4},
                                                             {3, 12}};
  for (const Point& p : points) {
    const std::string name = "AblationRepair/replication:" +
                             std::to_string(p.replication) +
                             "/failed_nodes:" + std::to_string(p.failed);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [p](benchmark::State& state) {
          const RepairOutcome out = run_repair(p.replication, p.failed);
          report_seconds(state, out.report.duration);
          state.counters["copied_MB"] = mb(out.report.bytes_copied);
          state.counters["copies"] =
              static_cast<double>(out.report.copies_made);
          state.counters["lost_chunks"] =
              static_cast<double>(out.report.lost);
          state.counters["repo_MB"] = mb(out.repo_bytes);
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
}

}  // namespace
}  // namespace blobcr::bench

int main(int argc, char** argv) {
  blobcr::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
