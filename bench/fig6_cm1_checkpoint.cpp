// Figure 6: CM1 checkpoint performance for an increasing number of
// processes — weak scaling with 50x50 horizontal subdomains per rank, four
// ranks per quad-core VM, checkpoint taken after a period of execution.
// Paper expectations: all approaches grow with process count (coordination
// cost); BlobCR-app >10% faster than qcow2-disk-app at 400 processes;
// BlobCR-blcr >2x faster than qcow2-disk-blcr.
#include "bench_common.h"

namespace blobcr::bench {
namespace {

/// Per-rank runtime image: Table 1 shows blcr dumps ~127 MB per VM vs
/// ~52 MB app-level for 4 ranks => ~19 MB of non-application memory per
/// rank (libraries, MPI buffers, stack).
constexpr std::uint64_t kCm1ProcessOverhead = 19 * common::kMB;

apps::Cm1Run make_run(std::size_t vms) {
  apps::Cm1Run run;
  run.vms = vms;
  run.ranks_per_vm = 4;
  run.app.nx = 50;
  run.app.ny = 50;
  run.app.nz = 40;
  run.app.nvars = 15;  // ~12 MB of prognostic state per rank
  run.app.real_data = false;
  run.app.iteration_compute = 400 * sim::kMillisecond;
  run.app.summary_interval = 3;
  run.app.summary_bytes = 256 * 1024;
  run.iterations = fast_mode() ? 3 : 6;
  return run;
}

void run_point(benchmark::State& state, const Approach& approach,
               std::size_t vms) {
  core::Cloud& cloud = CloudCache::instance().get(approach.backend, "fig6",
                                                  kCm1ProcessOverhead);
  const apps::RunResult result =
      apps::run_cm1(cloud, make_run(vms), approach.mode);
  report_seconds(state, result.checkpoint_times.at(0));
  state.counters["ckpt_s"] = sim::to_seconds(result.checkpoint_times.at(0));
  state.counters["snap_MB_per_vm"] = mb(result.snapshot_bytes_per_vm.at(0));
}

void register_all() {
  for (const Approach& approach : four_approaches()) {
    for (const std::size_t vms : cm1_vm_sweep()) {
      const std::string name = "Fig6/" + std::string(approach.name) +
                               "/procs:" + std::to_string(vms * 4);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [approach, vms](benchmark::State& state) {
            run_point(state, approach, vms);
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
}

}  // namespace
}  // namespace blobcr::bench

int main(int argc, char** argv) {
  blobcr::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
