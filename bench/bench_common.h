// Shared benchmark plumbing: the paper-calibrated testbed (Grid'5000
// graphene, §4.1), the five evaluated approaches (§4.2), and google-benchmark
// registration helpers that report *simulated* completion time as manual
// time.
//
// Set BLOBCR_BENCH_FAST=1 to run reduced sweeps (CI smoke).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/scenarios.h"
#include "core/blobcr.h"

namespace blobcr::bench {

using apps::CkptMode;
using core::Backend;

struct Approach {
  const char* name;
  Backend backend;
  CkptMode mode;
};

/// The five configurations of §4.2 in the paper's order.
inline const std::vector<Approach>& five_approaches() {
  static const std::vector<Approach> kAll = {
      {"BlobCR-app", Backend::BlobCR, CkptMode::AppLevel},
      {"qcow2-disk-app", Backend::Qcow2Disk, CkptMode::AppLevel},
      {"BlobCR-blcr", Backend::BlobCR, CkptMode::ProcessBlcr},
      {"qcow2-disk-blcr", Backend::Qcow2Disk, CkptMode::ProcessBlcr},
      {"qcow2-full", Backend::Qcow2Full, CkptMode::FullVm},
  };
  return kAll;
}

/// The four approaches evaluated for CM1 (qcow2-full omitted, §4.4).
inline const std::vector<Approach>& four_approaches() {
  static const std::vector<Approach> kAll = {
      {"BlobCR-app", Backend::BlobCR, CkptMode::AppLevel},
      {"qcow2-disk-app", Backend::Qcow2Disk, CkptMode::AppLevel},
      {"BlobCR-blcr", Backend::BlobCR, CkptMode::ProcessBlcr},
      {"qcow2-disk-blcr", Backend::Qcow2Disk, CkptMode::ProcessBlcr},
  };
  return kAll;
}

inline bool fast_mode() {
  const char* v = std::getenv("BLOBCR_BENCH_FAST");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Instance-count sweep for Figures 2/3 (paper: up to 120 nodes).
inline std::vector<std::size_t> instance_sweep() {
  if (fast_mode()) return {4, 12};
  return {10, 60, 120};
}

/// VM sweep for Figure 6 (4 ranks per VM; paper: up to 400 processes).
inline std::vector<std::size_t> cm1_vm_sweep() {
  if (fast_mode()) return {2, 4};
  return {4, 25, 64};
}

/// The graphene testbed (§4.1): 120 compute nodes, 55 MB/s SATA disks,
/// 117.5 MB/s GbE at 0.1 ms, 2 GB Debian image, 256 KB BlobSeer stripes,
/// 20 metadata providers.
inline core::CloudConfig paper_cloud(Backend backend,
                                     std::uint64_t process_overhead =
                                         2 * common::kMB) {
  core::CloudConfig cfg;
  cfg.compute_nodes = 120;
  cfg.metadata_nodes = 20;
  cfg.backend = backend;
  cfg.os = vm::GuestOsConfig::debian_like();
  cfg.vm.os_ram_bytes = 118 * common::kMB;  // measured full-snapshot overhead
  cfg.vm.process_overhead_bytes = process_overhead;
  return cfg;
}

/// Cloud cache: reuse one provisioned cloud per (backend, tag) so a sweep
/// pays image upload once.
class CloudCache {
 public:
  core::Cloud& get(Backend backend, const std::string& tag,
                   std::uint64_t process_overhead = 2 * common::kMB) {
    const std::string key = std::string(core::backend_name(backend)) + "/" + tag;
    auto it = clouds_.find(key);
    if (it == clouds_.end()) {
      it = clouds_
               .emplace(key, std::make_unique<core::Cloud>(
                                 paper_cloud(backend, process_overhead)))
               .first;
    }
    return *it->second;
  }

  static CloudCache& instance() {
    static CloudCache cache;
    return cache;
  }

 private:
  std::map<std::string, std::unique_ptr<core::Cloud>> clouds_;
};

/// Reports a simulated duration as the benchmark's manual time.
inline void report_seconds(benchmark::State& state, sim::Duration d) {
  for (auto _ : state) {
    state.SetIterationTime(sim::to_seconds(d));
  }
}

inline double mb(std::uint64_t bytes) {
  return static_cast<double>(bytes) / 1e6;
}

}  // namespace blobcr::bench
