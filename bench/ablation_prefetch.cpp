// Ablation A2: the content-addressed restart data plane (§3.1.4 evolved)
// on/off for concurrent restart.
//
// "adaptive" = the full PrefetchBus: content-keyed hints, peer chunk
// exchange, deployment-wide single-flight repository fetches and the
// popularity-ordered restart scheduler. "demand-only" disables the bus, so
// every instance fetches everything from the repository on demand.
//
// Two workloads per mode:
//  * uniform: each rank checkpoints private (phantom) state — instances
//    still share the clone-derived base image chunks;
//  * dedup-heavy: every rank checkpoints the same real input dataset
//    through the reduction pipeline, so rank state collapses to one stored
//    copy — the stdchk-style scenario where per-instance repository bytes
//    should drop superlinearly with deployment size.
#include "bench_common.h"

namespace blobcr::bench {
namespace {

void run_point(benchmark::State& state, bool prefetch, bool dedup_heavy,
               std::size_t instances) {
  core::CloudConfig cfg = paper_cloud(Backend::BlobCR);
  cfg.adaptive_prefetch = prefetch;
  apps::SyntheticRun run;
  run.instances = instances;
  run.do_restart = true;
  if (dedup_heavy) {
    cfg.reduction.enabled = true;
    run.buffer_bytes = 2 * common::kMB;  // real buffers: keep RAM bounded
    run.real_data = true;
    run.shared_fraction = 1.0;
  } else {
    run.buffer_bytes = 50 * common::kMB;
  }
  core::Cloud cloud(cfg);
  const apps::RunResult result =
      apps::run_synthetic(cloud, run, CkptMode::AppLevel);
  report_seconds(state, result.restart_time);
  state.counters["restart_s"] = sim::to_seconds(result.restart_time);
  state.counters["deploy_s"] = sim::to_seconds(result.deploy_time);
  state.counters["repo_mb_per_inst"] =
      mb(result.restart_repo_bytes) / static_cast<double>(instances);
  state.counters["peer_mb_per_inst"] =
      mb(result.restart_peer_bytes) / static_cast<double>(instances);
  // Bit-exact restore check (1 = every restored digest matched; phantom
  // runs verify trivially). The CI bench gate fails on any 0.
  state.counters["verified"] = result.verified ? 1.0 : 0.0;
}

void register_all() {
  const std::vector<std::size_t> sweep =
      fast_mode() ? std::vector<std::size_t>{4, 12}
                  : std::vector<std::size_t>{30, 90};
  for (const bool prefetch : {true, false}) {
    for (const bool dedup : {false, true}) {
      for (const std::size_t n : sweep) {
        const std::string name =
            std::string("AblationPrefetch/") +
            (prefetch ? "adaptive" : "demand-only") + "/" +
            (dedup ? "dedup-heavy" : "uniform") + "/hosts:" +
            std::to_string(n);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [prefetch, dedup, n](benchmark::State& state) {
              run_point(state, prefetch, dedup, n);
            })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kSecond);
      }
    }
  }
}

}  // namespace
}  // namespace blobcr::bench

int main(int argc, char** argv) {
  blobcr::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
