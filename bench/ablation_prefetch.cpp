// Ablation A2: adaptive prefetching (§3.1.4) on/off for concurrent restart.
// With many instances booting from snapshots that share most content, the
// first instance to touch a chunk pushes it to the others; disabling the
// prefetch bus forces every instance to fetch everything on demand.
#include "bench_common.h"

namespace blobcr::bench {
namespace {

void run_point(benchmark::State& state, bool prefetch, std::size_t instances) {
  core::CloudConfig cfg = paper_cloud(Backend::BlobCR);
  cfg.adaptive_prefetch = prefetch;
  core::Cloud cloud(cfg);
  apps::SyntheticRun run;
  run.instances = instances;
  run.buffer_bytes = 50 * common::kMB;
  run.do_restart = true;
  const apps::RunResult result =
      apps::run_synthetic(cloud, run, CkptMode::AppLevel);
  report_seconds(state, result.restart_time);
  state.counters["restart_s"] = sim::to_seconds(result.restart_time);
  state.counters["deploy_s"] = sim::to_seconds(result.deploy_time);
}

void register_all() {
  const std::vector<std::size_t> sweep =
      fast_mode() ? std::vector<std::size_t>{4}
                  : std::vector<std::size_t>{30, 90};
  for (const bool prefetch : {true, false}) {
    for (const std::size_t n : sweep) {
      const std::string name =
          std::string("AblationPrefetch/") +
          (prefetch ? "adaptive" : "demand-only") + "/hosts:" +
          std::to_string(n);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [prefetch, n](benchmark::State& state) {
            run_point(state, prefetch, n);
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
}

}  // namespace
}  // namespace blobcr::bench

int main(int argc, char** argv) {
  blobcr::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
