// Ablation: the snapshot data-reduction pipeline (content-addressed dedup +
// zero suppression + compression) on successive checkpoints — a Fig.4/5-style
// snapshot-size curve with reduction on vs. off.
//
// Four instances each commit the same four-region working set every round:
//   * a region identical across ranks (cross-rank dedup),
//   * a region identical across rounds (cross-version dedup),
//   * an all-zero region (zero suppression),
//   * a unique region (incompressible; ships at full cost either way).
// Ranks reach the proxy with a little skew (checkpoint arrival jitter), so
// the first commit of identical content lands before its peers digest —
// exactly the window in which the shared digest index pays off.
//
// Expectation: with reduction ON, shipped + stored bytes per round collapse
// to roughly the unique region (plus one copy of anything shared); OFF
// ships all four regions from every rank, every round.
#include "bench_common.h"
#include "reduce/reducer.h"
#include "sim/when_all.h"

namespace blobcr::bench {
namespace {

constexpr int kRounds = 4;

std::size_t instance_count() { return fast_mode() ? 2 : 4; }
std::uint64_t region_bytes() {
  return fast_mode() ? 1 * common::kMB : 4 * common::kMB;
}

struct SeriesResult {
  std::vector<sim::Duration> times;       // per-round global checkpoint time
  std::vector<std::uint64_t> shipped;     // per-round snapshot bytes (all VMs)
  std::vector<std::uint64_t> repo;        // cumulative repository growth
  reduce::ReductionStats stats;           // zeroes when reduction is off
  bool ran = false;
};

sim::Task<> driver(core::Cloud* cloud, SeriesResult* out) {
  co_await cloud->provision_base_image();
  core::Deployment dep(*cloud, instance_count());
  co_await dep.deploy_and_boot();
  const std::uint64_t baseline = cloud->repository_bytes();
  const std::uint64_t region = region_bytes();
  const std::uint64_t base_off = 512 * common::kMB;

  for (int round = 0; round < kRounds; ++round) {
    if (dep.reducer() != nullptr) dep.reducer()->begin_epoch();
    const sim::Time t0 = cloud->simulation().now();
    std::vector<sim::Task<>> snaps;
    for (std::size_t i = 0; i < dep.size(); ++i) {
      snaps.push_back(
          [](core::Cloud* cloud, core::Deployment* dp, std::size_t idx,
             int r, std::uint64_t off, std::uint64_t reg) -> sim::Task<> {
            co_await cloud->simulation().delay(
                static_cast<sim::Duration>(idx) * 250 * sim::kMillisecond);
            core::MirrorDevice& m = *dp->instance(idx).mirror;
            // Shared across ranks (fresh content each round).
            co_await m.write(off, common::Buffer::pattern(reg, 9000 + r));
            // Stable across rounds (unique per rank).
            co_await m.write(off + reg,
                             common::Buffer::pattern(reg, 100 + idx));
            // Freed pages: all zeros.
            co_await m.write(off + 2 * reg, common::Buffer::zeros(reg));
            // Unique per (rank, round).
            co_await m.write(
                off + 3 * reg,
                common::Buffer::pattern(reg, 7000 + idx * 131 + r));
            (void)co_await dp->snapshot_instance(idx);
          }(cloud, &dep, i, round, base_off, region));
    }
    co_await sim::when_all(cloud->simulation(), std::move(snaps));
    out->times.push_back(cloud->simulation().now() - t0);
    out->shipped.push_back(dep.collect_last_snapshots().total_bytes());
    out->repo.push_back(cloud->repository_bytes() - baseline);
  }
  if (dep.reducer() != nullptr) out->stats = dep.reducer()->stats();
}

SeriesResult run_series(bool reduced) {
  core::CloudConfig cfg;
  cfg.compute_nodes = 16;
  cfg.metadata_nodes = 4;
  cfg.backend = core::Backend::BlobCR;
  cfg.os = vm::GuestOsConfig::debian_like();
  cfg.reduction.enabled = reduced;
  cfg.reduction.compression = true;  // RLE falls back to raw on random data
  core::Cloud cloud(cfg);
  SeriesResult result;
  cloud.run(driver(&cloud, &result));
  result.ran = true;
  return result;
}

void register_all() {
  for (const bool reduced : {false, true}) {
    auto series = std::make_shared<SeriesResult>();
    for (int round = 1; round <= kRounds; ++round) {
      const std::string name =
          std::string("AblationReduction/") + (reduced ? "on" : "off") +
          "/checkpoint:" + std::to_string(round);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [reduced, round, series](benchmark::State& state) {
            if (!series->ran) *series = run_series(reduced);
            report_seconds(state, series->times.at(round - 1));
            state.counters["shipped_MB"] = mb(series->shipped.at(round - 1));
            state.counters["repo_MB"] = mb(series->repo.at(round - 1));
            if (reduced) {
              state.counters["dedup_hit_pct"] =
                  100.0 * series->stats.dedup_hit_rate();
              state.counters["shipped_over_raw_pct"] =
                  100.0 * series->stats.shipped_ratio();
            }
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
}

}  // namespace
}  // namespace blobcr::bench

int main(int argc, char** argv) {
  blobcr::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
