// Ablation A9: elastic (N -> M) restart through the content-addressed
// plane (ROADMAP item "elastic restart", cr/remap.h).
//
// One synthetic job checkpoints at width N and restarts at width M through
// cr::Session's elastic path. Three remap shapes on the BlobCR backend —
// shrink (spot reclaim, M < N: trailing shards ride along as attached
// volumes), equal (M == N: degenerates to the classic 1:1 path) and grow
// (queue drain, M > N: clones derive fresh checkpoint images) — each with
// cold caches (machines reclaimed, every byte re-fetched) plus a warm-cache
// shrink (survivor caches keep serving peer copies across the rescale), and
// a qcow2-disk shrink baseline for comparison.
//
// The `verified` gate requires every run to digest-check the *union* of
// device images across the remap (each of the N sources covered by exactly
// one boot device or attached volume) and the post-rescale checkpoint to
// record exactly M tuples. Headline counters: rescale restart makespan and
// repository MB pulled per new instance.
#include "bench_common.h"

namespace blobcr::bench {
namespace {

using apps::ElasticResult;
using apps::ElasticRun;
using core::Cloud;
using core::CloudConfig;

ElasticResult run_shape(Backend backend, std::size_t n, std::size_t m,
                        std::uint64_t buffer_bytes, bool cold) {
  CloudConfig cfg = paper_cloud(backend);
  Cloud cloud(cfg);
  ElasticRun run;
  run.instances = n;
  run.restart_instances = m;
  run.buffer_bytes = buffer_bytes;
  run.real_data = true;  // digest-verify the union of device images
  run.cold_caches = cold;
  run.recheckpoint = true;  // assert the M-tuple catalog invariant too
  return apps::run_elastic(cloud, run);
}

void register_all() {
  const std::size_t n = fast_mode() ? 4 : 8;
  const std::uint64_t buffer_bytes = (fast_mode() ? 20 : 50) * common::kMB;

  benchmark::RegisterBenchmark(
      "AblationElastic/rescale-restart",
      [n, buffer_bytes](benchmark::State& state) {
        const std::size_t m_small = n / 2;
        const ElasticResult shrink =
            run_shape(Backend::BlobCR, n, m_small, buffer_bytes, true);
        const ElasticResult equal =
            run_shape(Backend::BlobCR, n, n, buffer_bytes, true);
        const ElasticResult grow =
            run_shape(Backend::BlobCR, m_small, n, buffer_bytes, true);
        const ElasticResult warm =
            run_shape(Backend::BlobCR, n, m_small, buffer_bytes, false);
        const ElasticResult qcow =
            run_shape(Backend::Qcow2Disk, n, m_small, buffer_bytes, true);
        const bool all_verified = shrink.verified && equal.verified &&
                                  grow.verified && warm.verified &&
                                  qcow.verified;
        const bool tuples_ok = shrink.tuples_after == m_small &&
                               equal.tuples_after == n &&
                               grow.tuples_after == n &&
                               warm.tuples_after == m_small &&
                               qcow.tuples_after == m_small;
        // Warm survivor caches must not pull more repository bytes than the
        // cold rescale — the peer tier keeps working across a remap.
        const bool warm_cheaper =
            warm.restart_repo_bytes <= shrink.restart_repo_bytes;

        report_seconds(state, shrink.restart_time);
        state.counters["rescale_restart_s"] =
            sim::to_seconds(shrink.restart_time);
        state.counters["equal_restart_s"] = sim::to_seconds(equal.restart_time);
        state.counters["grow_restart_s"] = sim::to_seconds(grow.restart_time);
        state.counters["warm_restart_s"] = sim::to_seconds(warm.restart_time);
        state.counters["qcow_restart_s"] = sim::to_seconds(qcow.restart_time);
        state.counters["repo_mb_per_inst"] =
            mb(shrink.restart_repo_bytes) / static_cast<double>(m_small);
        state.counters["warm_repo_mb_per_inst"] =
            mb(warm.restart_repo_bytes) / static_cast<double>(m_small);
        state.counters["grow_repo_mb_per_inst"] =
            mb(grow.restart_repo_bytes) / static_cast<double>(n);
        state.counters["warm_peer_mb"] = mb(warm.restart_peer_bytes);
        state.counters["verified"] =
            (all_verified && tuples_ok && warm_cheaper) ? 1 : 0;
      })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kSecond);
}

}  // namespace
}  // namespace blobcr::bench

int main(int argc, char** argv) {
  blobcr::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
