// Figure 2: completion time to checkpoint an increasing number of processes
// (synthetic benchmark, one process per VM, data buffers of 50 MB and
// 200 MB). Paper expectations: qcow2-full worst by far; BlobCR-blcr beats
// qcow2-disk-blcr (~40% at 50 MB/120 procs, ~2x at 200 MB); BlobCR-app
// roughly matches qcow2-disk-app at 50 MB, ~60% faster at 200 MB/120 procs.
#include "bench_common.h"

namespace blobcr::bench {
namespace {

void run_point(benchmark::State& state, const Approach& approach,
               std::size_t instances, std::uint64_t buffer_bytes) {
  core::Cloud& cloud = CloudCache::instance().get(
      approach.backend,
      "fig2-buf" + std::to_string(buffer_bytes / common::kMB));
  apps::SyntheticRun run;
  run.instances = instances;
  run.buffer_bytes = buffer_bytes;
  const apps::RunResult result =
      apps::run_synthetic(cloud, run, approach.mode);
  report_seconds(state, result.checkpoint_times.at(0));
  state.counters["ckpt_s"] = sim::to_seconds(result.checkpoint_times.at(0));
  state.counters["snap_MB_per_vm"] = mb(result.snapshot_bytes_per_vm.at(0));
  // App-blocked share of the checkpoint (the longest VM pause) — gated in
  // CI alongside the shipped-bytes counter above.
  state.counters["blocked_s"] =
      sim::to_seconds(result.checkpoint_blocked_times.at(0));
}

void register_all() {
  for (const std::uint64_t buf : {50 * common::kMB, 200 * common::kMB}) {
    for (const Approach& approach : five_approaches()) {
      for (const std::size_t n : instance_sweep()) {
        const std::string name =
            "Fig2/" + std::string(approach.name) + "/buf_mb:" +
            std::to_string(buf / common::kMB) + "/procs:" + std::to_string(n);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [approach, n, buf](benchmark::State& state) {
              run_point(state, approach, n, buf);
            })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kSecond);
      }
    }
  }
}

}  // namespace
}  // namespace blobcr::bench

int main(int argc, char** argv) {
  blobcr::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
