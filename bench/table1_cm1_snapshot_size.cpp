// Table 1: CM1 per disk-snapshot size. Paper measurements:
//   BlobCR-app      52 MB      qcow2-disk-app   45 MB
//   BlobCR-blcr    127 MB      qcow2-disk-blcr 120 MB
// Four ranks per VM at ~12 MB of application state each; blcr additionally
// dumps each rank's runtime image; BlobCR carries a ~5-15% granularity
// overhead (256 KB chunks vs qcow2's 64 KB clusters).
#include "bench_common.h"

namespace blobcr::bench {
namespace {

constexpr std::uint64_t kCm1ProcessOverhead = 19 * common::kMB;

void run_point(benchmark::State& state, const Approach& approach) {
  core::Cloud& cloud = CloudCache::instance().get(approach.backend, "table1",
                                                  kCm1ProcessOverhead);
  apps::Cm1Run run;
  run.vms = fast_mode() ? 2 : 4;
  run.ranks_per_vm = 4;
  run.app.real_data = false;
  run.app.summary_interval = 3;
  run.app.summary_bytes = 256 * 1024;
  run.iterations = fast_mode() ? 3 : 6;
  const apps::RunResult result = apps::run_cm1(cloud, run, approach.mode);
  report_seconds(state, result.checkpoint_times.at(0));
  state.counters["snapshot_MB_per_vm"] =
      mb(result.snapshot_bytes_per_vm.at(0));
}

void register_all() {
  for (const Approach& approach : four_approaches()) {
    const std::string name = "Table1/" + std::string(approach.name);
    benchmark::RegisterBenchmark(name.c_str(),
                                 [approach](benchmark::State& state) {
                                   run_point(state, approach);
                                 })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
}

}  // namespace
}  // namespace blobcr::bench

int main(int argc, char** argv) {
  blobcr::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
