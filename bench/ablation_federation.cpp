// Ablation: cross-repo federation — zone count x replication aggressiveness
// (ROADMAP item "cross-repo federation", the multi-zone BlobStore fabric).
//
// Each row runs the zone-loss drill: a job checkpoints in zone 0 through the
// async drain (manifests, catalog frames and floor chunk copies replicate to
// the buddy zone; with a hot budget, popularity-ordered extra copies land in
// the remaining zones), then zone 0's store dies wholesale and a FRESH
// driver restarts the lineage in the highest surviving zone with cold
// caches. The measured makespan covers restart + reading every instance's
// full state back (time to a warm, verified working set); `verified` gates
// bit-exactness of every restored state.
//
//  fed_z2_floor  2 zones, floor-only replication; restart lands in the buddy
//                zone, every fetch is already local.
//  fed_z3_floor  3 zones, floor-only; restart lands in zone 2 while the
//                floor copies live in buddy zone 1 — the whole working set
//                rides the WAN class during restart.
//  fed_z3_hot    3 zones + hot budget; the dirty working set was pushed to
//                zone 2 ahead of the failure, so the same restart serves it
//                locally and only the cold remainder crosses the WAN.
//
// The headline claim, gated by `verified` on the z3-hot row: hot-chunk
// replication makes the zone-loss restart strictly faster and lighter on
// the WAN than floor-only replication at the same zone count.
#include "bench_common.h"

#include <memory>
#include <utility>

#include "cr/session.h"
#include "federation/federation.h"
#include "guestfs/simplefs.h"

namespace blobcr::bench {
namespace {

using common::Buffer;
using core::Cloud;
using core::CloudConfig;
using core::Deployment;
using sim::Task;

struct Drill {
  std::size_t zones = 2;
  std::uint64_t hot_budget = 0;
  std::size_t nodes_per_zone = 8;
  std::size_t instances = 4;
  std::uint64_t state_bytes = 24 * common::kMB;
};

struct Outcome {
  sim::Duration restart = 0;          // zone-loss restart -> warm state
  std::uint64_t cross_zone_bytes = 0; // all federation WAN traffic, lifetime
  std::uint64_t restart_wan_bytes = 0;  // WAN share of the restart path
  bool ok = false;
};

Outcome run_drill(const Drill& d) {
  CloudConfig cfg;
  cfg.compute_nodes = d.zones * d.nodes_per_zone;
  cfg.metadata_nodes = 4;
  cfg.backend = Backend::BlobCR;
  cfg.flush.enabled = true;  // zone failover needs drained manifests
  cfg.federation.zones = d.zones;
  cfg.federation.hot_budget_bytes = d.hot_budget;
  // Geo-distributed zones: the default WAN shape is close enough to the
  // LAN NIC that fan-out washes it out. The drill models a real inter-zone
  // link — tens of ms RTT, ~0.25 MB/s per flow — so pre-positioning the hot
  // working set has something to buy.
  cfg.federation.wan_latency = 50 * sim::kMillisecond;
  cfg.federation.wan_bandwidth_bps = 2e6;
  cfg.os = vm::GuestOsConfig::test_tiny();
  cfg.vm.os_ram_bytes = 20 * common::kMB;
  Cloud cloud(cfg);
  Outcome out;

  cloud.run([](Cloud* cl, const Drill* d, Outcome* out) -> Task<> {
    co_await cl->provision_base_image();
    {
      // The job lives entirely in zone 0; its checkpoints commit there and
      // the drain replicates them outward.
      auto dep = std::make_unique<Deployment>(*cl, d->instances);
      auto session = std::make_unique<cr::Session>(*dep);
      co_await dep->deploy_and_boot();
      for (std::size_t i = 0; i < d->instances; ++i) {
        guestfs::SimpleFs* fs = dep->vm(i).fs();
        co_await fs->write_file("/data/state.bin",
                                Buffer::pattern(d->state_bytes, 300 + i));
        co_await fs->sync();
      }
      (void)co_await session->checkpoint("pre-loss");
      dep->destroy_all();
      // Total driver loss: nothing in-memory survives this block.
    }

    // The whole of zone 0 dies; restart into the HIGHEST surviving zone —
    // with 3 zones that is NOT the buddy holding the floor copies, so the
    // row isolates what hot replication buys.
    cl->federation()->fail_zone(0);
    const std::size_t target_zone = d->zones - 1;
    const std::uint64_t wan_before = cl->federation()->wan_fetch_bytes();

    Deployment dep2(*cl, d->instances);
    cr::Session session2(dep2);
    const sim::Time t0 = cl->simulation().now();
    (void)co_await session2.restart(
        cr::Selector::latest(),
        /*node_offset=*/target_zone * d->nodes_per_zone,
        /*cold_caches=*/true);
    bool ok = true;
    for (std::size_t i = 0; i < d->instances; ++i) {
      const Buffer state =
          co_await dep2.vm(i).fs()->read_file("/data/state.bin");
      ok = ok && state == Buffer::pattern(d->state_bytes, 300 + i);
    }
    out->restart = cl->simulation().now() - t0;
    out->restart_wan_bytes = cl->federation()->wan_fetch_bytes() - wan_before;
    out->cross_zone_bytes = cl->federation()->cross_zone_bytes();
    out->ok = ok;
  }(&cloud, &d, &out));
  return out;
}

void register_all() {
  Drill base;
  base.nodes_per_zone = fast_mode() ? 4 : 8;
  base.instances = fast_mode() ? 2 : 4;
  base.state_bytes = (fast_mode() ? 8 : 24) * common::kMB;

  Drill z2_floor = base;
  z2_floor.zones = 2;
  Drill z3_floor = base;
  z3_floor.zones = 3;
  Drill z3_hot = z3_floor;
  z3_hot.hot_budget = 512 * common::kMB;  // covers the whole working set

  // Rows are computed lazily and cached so the z3-hot row can state its
  // speedup against the floor-only sibling without re-running it.
  struct Rows {
    bool have[3] = {false, false, false};
    Outcome out[3];
  };
  auto rows = std::make_shared<Rows>();
  auto ensure = [rows](std::size_t idx, const Drill& d) -> const Outcome& {
    if (!rows->have[idx]) {
      rows->out[idx] = run_drill(d);
      rows->have[idx] = true;
    }
    return rows->out[idx];
  };

  const std::pair<const char*, Drill> configs[3] = {
      {"AblationFederation/fed_z2_floor", z2_floor},
      {"AblationFederation/fed_z3_floor", z3_floor},
      {"AblationFederation/fed_z3_hot", z3_hot},
  };
  for (std::size_t idx = 0; idx < 3; ++idx) {
    const Drill drill = configs[idx].second;
    benchmark::RegisterBenchmark(
        configs[idx].first,
        [idx, drill, ensure, z3_floor](benchmark::State& state) {
          const Outcome& out = ensure(idx, drill);
          report_seconds(state, out.restart);
          state.counters["zone_loss_restart_s"] = sim::to_seconds(out.restart);
          state.counters["cross_zone_mb"] = mb(out.cross_zone_bytes);
          state.counters["restart_wan_mb"] = mb(out.restart_wan_bytes);
          bool verified = out.ok;
          // Counters must be uniform across rows (the CSV reporter aborts
          // otherwise); floor rows report the identity speedup.
          double speedup = 1.0;
          if (idx == 2) {
            // The acceptance inequality: hot replication must beat the
            // floor-only drill at the same zone count on BOTH restart
            // makespan and restart-path WAN bytes.
            const Outcome& floor = ensure(1, z3_floor);
            verified = verified && floor.ok &&
                       out.restart < floor.restart &&
                       out.restart_wan_bytes < floor.restart_wan_bytes;
            speedup = sim::to_seconds(out.restart) > 0
                          ? sim::to_seconds(floor.restart) /
                                sim::to_seconds(out.restart)
                          : 0.0;
          }
          state.counters["zone_loss_speedup"] = speedup;
          state.counters["verified"] = verified ? 1 : 0;
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
}

}  // namespace
}  // namespace blobcr::bench

int main(int argc, char** argv) {
  blobcr::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
