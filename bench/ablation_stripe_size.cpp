// Ablation A1: the BlobSeer stripe (chunk) size trade-off the paper tuned
// to 256 KB — small stripes reduce per-provider contention but add
// fragmentation and metadata overhead; large stripes amplify partial-chunk
// copy-up in commits.
#include "bench_common.h"

namespace blobcr::bench {
namespace {

void run_point(benchmark::State& state, std::uint64_t chunk_size) {
  core::CloudConfig cfg = paper_cloud(Backend::BlobCR);
  cfg.chunk_size = chunk_size;
  core::Cloud cloud(cfg);
  apps::SyntheticRun run;
  run.instances = fast_mode() ? 4 : 40;
  run.buffer_bytes = 200 * common::kMB;
  run.do_restart = true;
  const apps::RunResult result =
      apps::run_synthetic(cloud, run, CkptMode::AppLevel);
  report_seconds(state, result.checkpoint_times.at(0));
  state.counters["ckpt_s"] = sim::to_seconds(result.checkpoint_times.at(0));
  state.counters["restart_s"] = sim::to_seconds(result.restart_time);
  state.counters["snap_MB_per_vm"] = mb(result.snapshot_bytes_per_vm.at(0));
}

void register_all() {
  for (const std::uint64_t kb : {64, 256, 1024, 4096}) {
    const std::string name = "AblationStripe/chunk_kb:" + std::to_string(kb);
    benchmark::RegisterBenchmark(name.c_str(),
                                 [kb](benchmark::State& state) {
                                   run_point(state, kb * 1024);
                                 })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
}

}  // namespace
}  // namespace blobcr::bench

int main(int argc, char** argv) {
  blobcr::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
