// Ablation A4: snapshot garbage collection (the paper's §6 future work).
// After several checkpoint rounds, reclaim the space of versions obsoleted
// by newer checkpoints while keeping everything shared with the base image
// or other snapshots alive.
#include "bench_common.h"

#include "blob/gc.h"

namespace blobcr::bench {
namespace {

struct GcOutcome {
  std::uint64_t repo_before = 0;
  std::uint64_t repo_after = 0;
  std::uint64_t reclaimed = 0;
  sim::Duration run_time = 0;
};

GcOutcome run_gc(int rounds, int keep_last) {
  core::Cloud cloud(paper_cloud(Backend::BlobCR));
  auto outcome = std::make_shared<GcOutcome>();
  cloud.run([](core::Cloud* cl, int n_rounds, int keep,
               std::shared_ptr<GcOutcome> out) -> sim::Task<> {
    co_await cl->provision_base_image();
    core::Deployment dep(*cl, 4);
    co_await dep.deploy_and_boot();
    const sim::Time t0 = cl->simulation().now();
    for (int round = 0; round < n_rounds; ++round) {
      for (std::size_t i = 0; i < dep.size(); ++i) {
        guestfs::SimpleFs* fs = dep.vm(i).fs();
        co_await fs->write_file(
            "/data/state.bin",
            common::Buffer::phantom(50 * common::kMB));
        co_await fs->sync();
        (void)co_await dep.snapshot_instance(i);
      }
    }
    out->repo_before = cl->repository_bytes();
    blob::GarbageCollector gc(*cl->blob_store());
    for (std::size_t i = 0; i < dep.size(); ++i) {
      const core::InstanceSnapshot& snap = dep.instance(i).last_snapshot;
      // Keep only the last `keep` versions of each checkpoint image.
      if (snap.version > static_cast<blob::VersionId>(keep)) {
        const auto result = gc.collect(
            snap.image, snap.version - static_cast<blob::VersionId>(keep) + 1);
        out->reclaimed += result.reclaimed_bytes;
      }
    }
    out->repo_after = cl->repository_bytes();
    out->run_time = cl->simulation().now() - t0;
  }(&cloud, rounds, keep_last, outcome));
  return *outcome;
}

void register_all() {
  for (const int keep : {1, 2, 4}) {
    const std::string name = "AblationGc/rounds:4/keep_last:" +
                             std::to_string(keep);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [keep](benchmark::State& state) {
          const GcOutcome out = run_gc(4, keep);
          report_seconds(state, out.run_time);
          state.counters["repo_before_MB"] = mb(out.repo_before);
          state.counters["repo_after_MB"] = mb(out.repo_after);
          state.counters["reclaimed_MB"] = mb(out.reclaimed);
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
}

}  // namespace
}  // namespace blobcr::bench

int main(int argc, char** argv) {
  blobcr::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
