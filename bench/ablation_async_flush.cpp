// Ablation: the asynchronous commit pipeline (src/flush/) on the Figure 5
// successive-checkpoints workload — one VM, a data buffer refilled and
// checkpointed four times in a row.
//
// Reported per round and per mode (sync / async):
//   blocked_s  — app-blocked time: how long the VM sat paused for the
//                snapshot request (synchronous commits hold the pause
//                through reduce/ship/publish; the async pipeline only
//                through the local staging capture);
//   publish_s  — end-to-end time from the snapshot request until the
//                version is fully published (what Fig 5a plots);
//   plus a summary row with the blocked-time speedup and a digest match
//   flag: both modes restart from their last checkpoint and must restore
//   the identical buffer, bit for bit.
//
// BLOBCR_BENCH_FAST=1 shrinks the buffer for CI smoke runs.
#include "bench_common.h"

#include "blob/client.h"

namespace blobcr::bench {
namespace {

constexpr int kRounds = 4;

struct SeriesResult {
  std::vector<sim::Duration> blocked;
  std::vector<sim::Duration> publish;
  std::uint64_t restored_digest = 0;
  bool restore_verified = false;
};

SeriesResult run_series(bool async) {
  core::CloudConfig cfg = paper_cloud(Backend::BlobCR, 1500 * 1000);
  cfg.flush.enabled = async;
  core::Cloud cloud(cfg);
  const std::uint64_t buf =
      fast_mode() ? 8 * common::kMB : 64 * common::kMB;

  SeriesResult out;
  cloud.run([](core::Cloud* cl, std::uint64_t buf,
               SeriesResult* out) -> sim::Task<> {
    co_await cl->provision_base_image();
    core::Deployment dep(*cl, 1);
    co_await dep.deploy_and_boot();

    std::uint64_t written_digest = 0;
    for (int round = 0; round < kRounds; ++round) {
      // Refill the buffer with fresh (real) data, dump, sync.
      common::Buffer data =
          common::Buffer::pattern(buf, 0xf11e + static_cast<unsigned>(round));
      written_digest = data.digest();
      guestfs::SimpleFs* fs = dep.vm(0).fs();
      co_await fs->write_file("/data/buffer.bin", std::move(data));
      co_await fs->sync();

      const sim::Time t0 = cl->simulation().now();
      const core::InstanceSnapshot snap = co_await dep.snapshot_instance(0);
      out->blocked.push_back(snap.vm_downtime);
      co_await dep.wait_drained(0);
      out->publish.push_back(cl->simulation().now() - t0);
    }

    // Restart from the last checkpoint on fresh nodes; the restored buffer
    // must be the bit-exact final round.
    const core::GlobalCheckpoint ckpt = dep.collect_last_snapshots();
    dep.destroy_all();
    co_await dep.restart_from(ckpt, 7);
    const common::Buffer back =
        co_await dep.vm(0).fs()->read_file("/data/buffer.bin");
    out->restored_digest = back.digest();
    out->restore_verified = back.digest() == written_digest;
  }(&cloud, buf, &out));
  return out;
}

void register_all() {
  auto sync_res = std::make_shared<SeriesResult>();
  auto async_res = std::make_shared<SeriesResult>();
  auto ensure = [sync_res, async_res] {
    if (sync_res->blocked.empty()) *sync_res = run_series(false);
    if (async_res->blocked.empty()) *async_res = run_series(true);
  };

  // Every row carries the same counter set (the CSV reporter requires it):
  // its own blocked/publish times, the per-round blocked-time speedup
  // (sync blocked / async blocked of the same round) and the cross-mode
  // restored-digest match flag.
  for (const bool async : {false, true}) {
    for (int round = 1; round <= kRounds; ++round) {
      const std::string name =
          std::string("AsyncFlush/") + (async ? "pipeline" : "sync") +
          "/checkpoint:" + std::to_string(round);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [async, round, sync_res, async_res, ensure](benchmark::State& state) {
            ensure();
            const SeriesResult& r = async ? *async_res : *sync_res;
            report_seconds(state, r.publish.at(round - 1));
            state.counters["blocked_s"] =
                sim::to_seconds(r.blocked.at(round - 1));
            state.counters["publish_s"] =
                sim::to_seconds(r.publish.at(round - 1));
            const double a = sim::to_seconds(async_res->blocked.at(round - 1));
            const double s = sim::to_seconds(sync_res->blocked.at(round - 1));
            state.counters["blocked_speedup"] = a > 0 ? s / a : 0;
            state.counters["digests_match"] =
                (sync_res->restore_verified && async_res->restore_verified &&
                 sync_res->restored_digest == async_res->restored_digest)
                    ? 1
                    : 0;
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
}

}  // namespace
}  // namespace blobcr::bench

int main(int argc, char** argv) {
  blobcr::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
