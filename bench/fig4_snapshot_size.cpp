// Figure 4: snapshot size per VM instance for 50 MB and 200 MB data
// buffers. Paper expectations: app-level ~= buffer + FS noise (BlobCR
// carries a few MB more than qcow2 because differences are kept at 256 KB
// chunk granularity vs 64 KB clusters); blcr adds a small constant over
// app-level for this synthetic workload; qcow2-full adds ~118 MB of RAM
// and device state regardless of buffer size.
#include "bench_common.h"

namespace blobcr::bench {
namespace {

void run_point(benchmark::State& state, const Approach& approach,
               std::uint64_t buffer_bytes) {
  core::Cloud& cloud = CloudCache::instance().get(
      approach.backend,
      "fig4-buf" + std::to_string(buffer_bytes / common::kMB),
      /*process_overhead=*/1500 * 1000);  // blcr adds <2 MB here (paper)
  apps::SyntheticRun run;
  run.instances = fast_mode() ? 2 : 8;
  run.buffer_bytes = buffer_bytes;
  const apps::RunResult result =
      apps::run_synthetic(cloud, run, approach.mode);
  report_seconds(state, result.checkpoint_times.at(0));
  state.counters["snapshot_MB_per_vm"] =
      mb(result.snapshot_bytes_per_vm.at(0));
}

void register_all() {
  for (const std::uint64_t buf : {50 * common::kMB, 200 * common::kMB}) {
    for (const Approach& approach : five_approaches()) {
      const std::string name = "Fig4/" + std::string(approach.name) +
                               "/buf_mb:" + std::to_string(buf / common::kMB);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [approach, buf](benchmark::State& state) {
            run_point(state, approach, buf);
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
}

}  // namespace
}  // namespace blobcr::bench

int main(int argc, char** argv) {
  blobcr::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
