// Ablation: the multi-tenant repository (src/apps/multi_job.h).
//
// Two experiments on K concurrent jobs sharing ONE BlobStore:
//
//  * dedup — an overlapping workload (every job loads the same input
//    dataset, shared_fraction of each rank's buffer) runs once with the
//    repository-scoped digest index (cross-job dedup) and once with
//    isolated per-deployment indices. Reported: post-reduction repository
//    bytes shipped per job. The shared index must ship strictly less —
//    overlapping content stores once repository-wide instead of once per
//    job.
//
//  * qos — a bulk tenant (many instances, back-to-back rounds) runs beside
//    a small interactive tenant, with the commit gate bounded either
//    weighted-fair (QoS on) or FIFO (QoS off; identical capacity).
//    Reported: the small job's p95 commit blocked-time. Fairness must keep
//    the small tenant's pause below the FIFO value — its single commit
//    overtakes the bulk backlog at the gate.
//
// Every row carries `verified`: all jobs of all runs restored bit-exactly
// AND the row's headline inequality holds (shared < isolated, fair <=
// fifo) — the CI gate refuses a flip to 0.
//
// BLOBCR_BENCH_FAST=1 shrinks buffers and rounds for CI smoke runs.
#include "bench_common.h"

#include <algorithm>
#include <cmath>

#include "apps/multi_job.h"

namespace blobcr::bench {
namespace {

double p95(std::vector<sim::Duration> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t idx = static_cast<std::size_t>(std::max(
      0.0, std::ceil(0.95 * static_cast<double>(samples.size())) - 1.0));
  return sim::to_seconds(samples[idx]);
}

core::CloudConfig tenant_cloud() {
  core::CloudConfig cfg = paper_cloud(Backend::BlobCR);
  cfg.reduction.enabled = true;
  return cfg;
}

// --- dedup: shared vs isolated digest index --------------------------------

struct DedupResult {
  double repo_mb_per_job = 0;   // post-reduction shipped bytes per job
  double ckpt_s = 0;            // mean commit completion time
  bool verified = false;
};

DedupResult run_dedup(bool shared_index) {
  const std::uint64_t buf = fast_mode() ? 4 * common::kMB : 32 * common::kMB;
  apps::MultiJobRun run;
  run.shared_fraction = 0.6;
  for (int k = 0; k < 3; ++k) {
    apps::TenantJobSpec spec;
    spec.name = "job" + std::to_string(k);
    spec.instances = fast_mode() ? 1 : 2;
    spec.buffer_bytes = buf;
    spec.rounds = 2;
    spec.stagger = k * 3 * sim::kSecond;  // staggered arrivals
    run.jobs.push_back(spec);
  }

  core::CloudConfig cfg = tenant_cloud();
  cfg.reduction.shared_index = shared_index;
  core::Cloud cloud(cfg);
  const apps::MultiJobResult result = apps::run_multi_job(cloud, run);

  DedupResult out;
  std::uint64_t shipped = 0;
  sim::Duration ckpt = 0;
  std::size_t rounds = 0;
  for (const apps::JobResult& job : result.jobs) {
    shipped += job.shipped_bytes;
    for (const sim::Duration d : job.checkpoint_times) {
      ckpt += d;
      ++rounds;
    }
  }
  out.repo_mb_per_job =
      mb(shipped) / static_cast<double>(result.jobs.size());
  out.ckpt_s = rounds > 0 ? sim::to_seconds(ckpt) / rounds : 0.0;
  out.verified = result.all_verified();
  return out;
}

// --- qos: weighted-fair vs FIFO commit admission ---------------------------

struct QosResult {
  double blocked_p95_s = 0;   // small job's p95 commit blocked-time
  double blocked_mean_s = 0;
  bool verified = false;
};

QosResult run_qos(bool fair) {
  apps::MultiJobRun run;
  apps::TenantJobSpec bulk;
  bulk.name = "bulk";
  bulk.weight = 1.0;
  bulk.instances = 4;
  bulk.buffer_bytes = fast_mode() ? 4 * common::kMB : 32 * common::kMB;
  bulk.rounds = fast_mode() ? 3 : 4;
  apps::TenantJobSpec small;
  small.name = "small";
  small.weight = 1.0;
  small.instances = 1;
  small.buffer_bytes = 1 * common::kMB;
  small.rounds = 6;
  small.stagger = 1 * sim::kSecond;  // arrive while the bulk job commits
  small.think_time = 200 * sim::kMillisecond;
  run.jobs = {bulk, small};

  core::CloudConfig cfg = tenant_cloud();
  cfg.qos.enabled = fair;
  cfg.qos.commit_slots = 2;  // identical capacity in both modes
  core::Cloud cloud(cfg);
  const apps::MultiJobResult result = apps::run_multi_job(cloud, run);

  QosResult out;
  const apps::JobResult& sj = result.jobs[1];
  out.blocked_p95_s = p95(sj.blocked_times);
  sim::Duration total = 0;
  for (const sim::Duration d : sj.blocked_times) total += d;
  out.blocked_mean_s =
      sj.blocked_times.empty()
          ? 0.0
          : sim::to_seconds(total) / static_cast<double>(sj.blocked_times.size());
  out.verified = result.all_verified();
  return out;
}

void register_all() {
  auto shared = std::make_shared<DedupResult>();
  auto isolated = std::make_shared<DedupResult>();
  auto ensure_dedup = [shared, isolated] {
    if (!shared->verified && shared->repo_mb_per_job == 0) {
      *shared = run_dedup(true);
      *isolated = run_dedup(false);
    }
  };
  for (const bool is_shared : {true, false}) {
    const std::string name = std::string("Multitenant/dedup/") +
                             (is_shared ? "shared-index" : "isolated-index");
    benchmark::RegisterBenchmark(
        name.c_str(),
        [is_shared, shared, isolated, ensure_dedup](benchmark::State& state) {
          ensure_dedup();
          const DedupResult& r = is_shared ? *shared : *isolated;
          report_seconds(state, static_cast<sim::Duration>(
                                    r.ckpt_s * sim::kSecond));
          state.counters["repo_mb_per_job"] = r.repo_mb_per_job;
          state.counters["ckpt_s"] = r.ckpt_s;
          state.counters["verified"] =
              (shared->verified && isolated->verified &&
               shared->repo_mb_per_job < isolated->repo_mb_per_job)
                  ? 1
                  : 0;
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }

  auto fair = std::make_shared<QosResult>();
  auto fifo = std::make_shared<QosResult>();
  auto ensure_qos = [fair, fifo] {
    if (!fair->verified && fair->blocked_p95_s == 0) {
      *fair = run_qos(true);
      *fifo = run_qos(false);
    }
  };
  for (const bool is_fair : {true, false}) {
    const std::string name =
        std::string("Multitenant/qos/") + (is_fair ? "fair" : "fifo");
    benchmark::RegisterBenchmark(
        name.c_str(),
        [is_fair, fair, fifo, ensure_qos](benchmark::State& state) {
          ensure_qos();
          const QosResult& r = is_fair ? *fair : *fifo;
          report_seconds(state, static_cast<sim::Duration>(
                                    r.blocked_p95_s * sim::kSecond));
          state.counters["blocked_p95_s"] = r.blocked_p95_s;
          state.counters["blocked_s"] = r.blocked_mean_s;
          state.counters["qos_gain"] =
              fair->blocked_p95_s > 0
                  ? fifo->blocked_p95_s / fair->blocked_p95_s
                  : 0;
          state.counters["verified"] =
              (fair->verified && fifo->verified &&
               fair->blocked_p95_s <= fifo->blocked_p95_s)
                  ? 1
                  : 0;
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
}

}  // namespace
}  // namespace blobcr::bench

int main(int argc, char** argv) {
  blobcr::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
