// Capstone ablation: end-to-end QoS through the unified admission plane
// (src/qos/admission.h).
//
// One small interactive tenant (1 instance, 1 MB commits, mid-job rollback
// cycles) shares the repository with K bulk tenants that checkpoint
// back-to-back AND cycle cold restarts on the same cadence — a concurrent
// mass-rollback storm. Every repository touch is admitted at the plane:
// commits at the commit gate, chunk stores/fetches at the provider-io gate,
// restart prefetch at the restart-prefetch gate. The sweep runs each K once
// with weighted-fair ordering (qos on) and once FIFO at identical per-gate
// capacity (qos off).
//
// Reported per row (QosE2E/bulk{K}/{fair|fifo}):
//   small_job_p99_commit_s  — small tenant's p99 commit blocked-time
//   small_job_p99_restart_s — small tenant's p99 cold-restart makespan
//   qos_commit_gain / qos_restart_gain — fifo/fair ratios at this K
//   provider_wait_s / prefetch_wait_s — small tenant's data-path queueing
//   verified — every job of both runs restored bit-exactly AND fairness
//   held the small tenant's p99 at or below FIFO on BOTH axes (commit and
//   restart) at equal capacity. The CI gate refuses a flip to 0.
//
// BLOBCR_BENCH_FAST=1 shrinks the sweep, buffers and rounds for CI smoke.
#include "bench_common.h"

#include <algorithm>
#include <cmath>

#include "apps/multi_job.h"

namespace blobcr::bench {
namespace {

double p99(std::vector<sim::Duration> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t idx = static_cast<std::size_t>(std::max(
      0.0, std::ceil(0.99 * static_cast<double>(samples.size())) - 1.0));
  return sim::to_seconds(samples[idx]);
}

std::vector<std::size_t> bulk_sweep() {
  if (fast_mode()) return {1, 2};
  return {1, 2, 4};
}

struct E2eResult {
  double commit_p99_s = 0;   // small job's p99 commit blocked-time
  double restart_p99_s = 0;  // small job's p99 cold-restart makespan
  double provider_wait_s = 0;
  double prefetch_wait_s = 0;
  bool verified = false;
  bool done = false;
};

E2eResult run_e2e(std::size_t bulk_jobs, bool fair) {
  apps::MultiJobRun run;
  run.shared_fraction = 0.3;  // a common input dataset across tenants

  for (std::size_t k = 0; k < bulk_jobs; ++k) {
    apps::TenantJobSpec bulk;
    bulk.name = "bulk" + std::to_string(k);
    bulk.instances = 3;
    bulk.buffer_bytes = fast_mode() ? 4 * common::kMB : 16 * common::kMB;
    bulk.rounds = fast_mode() ? 4 : 6;
    bulk.restart_every = 2;  // the concurrent mass-rollback storm
    bulk.stagger = k * 500 * sim::kMillisecond;
    run.jobs.push_back(bulk);
  }

  apps::TenantJobSpec small;
  small.name = "small";
  // The interactive tenant pays for priority: weighted-fair ordering can
  // honor the 4x share, the FIFO baseline structurally cannot — that gap
  // is exactly what the ablation measures.
  small.weight = 4.0;
  small.instances = 1;
  small.buffer_bytes = 1 * common::kMB;
  small.rounds = fast_mode() ? 6 : 8;
  small.restart_every = 2;  // interactive tenant rolls back too
  // Land after the storm's cold-start transient so the tail measures the
  // steady-state ordering policy, not one startup alignment.
  small.stagger = 2 * sim::kSecond;
  small.think_time = 200 * sim::kMillisecond;
  run.jobs.push_back(small);

  core::CloudConfig cfg = paper_cloud(Backend::BlobCR);
  cfg.reduction.enabled = true;
  cfg.qos.enabled = fair;
  // Identical capacity in both modes: only the ordering policy differs.
  // The commit gate is left wide (no tenant ever queues there) so
  // arbitration happens at the provider gate's per-chunk granularity —
  // a narrow commit gate measures slot residency of whichever multi-MB
  // commit is mid-flight (unpreemptible in both modes), not ordering.
  cfg.qos.commit_slots = 8;
  cfg.qos.provider_slots = 2;
  cfg.qos.prefetch_slots = 2;
  core::Cloud cloud(cfg);
  const apps::MultiJobResult result = apps::run_multi_job(cloud, run);

  E2eResult out;
  const apps::JobResult& sj = result.jobs.back();  // the small tenant
  out.commit_p99_s = p99(sj.blocked_times);
  out.restart_p99_s = p99(sj.restart_times);
  out.provider_wait_s = sim::to_seconds(sj.provider_wait);
  out.prefetch_wait_s = sim::to_seconds(sj.prefetch_wait);
  out.verified = result.all_verified();
  out.done = true;
  return out;
}

void register_all() {
  for (const std::size_t k : bulk_sweep()) {
    auto fair = std::make_shared<E2eResult>();
    auto fifo = std::make_shared<E2eResult>();
    auto ensure = [k, fair, fifo] {
      if (!fair->done) {
        *fair = run_e2e(k, true);
        *fifo = run_e2e(k, false);
      }
    };
    for (const bool is_fair : {true, false}) {
      const std::string name = "QosE2E/bulk" + std::to_string(k) +
                               (is_fair ? "/fair" : "/fifo");
      benchmark::RegisterBenchmark(
          name.c_str(),
          [is_fair, fair, fifo, ensure](benchmark::State& state) {
            ensure();
            const E2eResult& r = is_fair ? *fair : *fifo;
            report_seconds(state, static_cast<sim::Duration>(
                                      r.restart_p99_s * sim::kSecond));
            state.counters["small_job_p99_commit_s"] = r.commit_p99_s;
            state.counters["small_job_p99_restart_s"] = r.restart_p99_s;
            state.counters["provider_wait_s"] = r.provider_wait_s;
            state.counters["prefetch_wait_s"] = r.prefetch_wait_s;
            state.counters["qos_commit_gain"] =
                fair->commit_p99_s > 0
                    ? fifo->commit_p99_s / fair->commit_p99_s
                    : 0;
            state.counters["qos_restart_gain"] =
                fair->restart_p99_s > 0
                    ? fifo->restart_p99_s / fair->restart_p99_s
                    : 0;
            state.counters["verified"] =
                (fair->verified && fifo->verified &&
                 fair->commit_p99_s <= fifo->commit_p99_s &&
                 fair->restart_p99_s <= fifo->restart_p99_s)
                    ? 1
                    : 0;
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
}

}  // namespace
}  // namespace blobcr::bench

int main(int argc, char** argv) {
  blobcr::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
