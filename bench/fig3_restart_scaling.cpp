// Figure 3: completion time to restart an increasing number of processes
// from the previously saved snapshots, re-deployed on different compute
// nodes (redeploy + reboot + state restore; qcow2-full resumes without
// reboot but must pull the much larger full snapshot). Paper expectations:
// BlobCR >25% faster than qcow2-disk at 50 MB, ~2x at 200 MB; qcow2-full
// worst despite skipping the reboot.
#include "bench_common.h"

namespace blobcr::bench {
namespace {

void run_point(benchmark::State& state, const Approach& approach,
               std::size_t instances, std::uint64_t buffer_bytes) {
  core::Cloud& cloud = CloudCache::instance().get(
      approach.backend,
      "fig3-buf" + std::to_string(buffer_bytes / common::kMB));
  apps::SyntheticRun run;
  run.instances = instances;
  run.buffer_bytes = buffer_bytes;
  run.do_restart = true;
  run.restart_shift = instances / 2 + 1;  // fresh nodes, no local cache
  const apps::RunResult result =
      apps::run_synthetic(cloud, run, approach.mode);
  report_seconds(state, result.restart_time);
  state.counters["restart_s"] = sim::to_seconds(result.restart_time);
  // The content-addressed data plane's transfer split (zero for the qcow
  // baselines): repository wire bytes vs intra-deployment peer copies.
  state.counters["repo_mb_per_inst"] =
      mb(result.restart_repo_bytes) / static_cast<double>(instances);
  state.counters["peer_mb_per_inst"] =
      mb(result.restart_peer_bytes) / static_cast<double>(instances);
}

void register_all() {
  for (const std::uint64_t buf : {50 * common::kMB, 200 * common::kMB}) {
    for (const Approach& approach : five_approaches()) {
      for (const std::size_t n : instance_sweep()) {
        const std::string name =
            "Fig3/" + std::string(approach.name) + "/buf_mb:" +
            std::to_string(buf / common::kMB) + "/hosts:" + std::to_string(n);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [approach, n, buf](benchmark::State& state) {
              run_point(state, approach, n, buf);
            })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kSecond);
      }
    }
  }
}

}  // namespace
}  // namespace blobcr::bench

int main(int argc, char** argv) {
  blobcr::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
