// Figure 5: four successive checkpoints of the same single VM instance
// (200 MB buffer refilled before each round).
//  (a) completion time per checkpoint: BlobCR flat (incremental commits);
//      qcow2-disk and qcow2-full grow linearly (the whole, growing,
//      container file is re-copied every time).
//  (b) total storage space: BlobCR and qcow2-full linear (the latter keeps
//      only the latest copy, which grows), qcow2-disk superlinear (every
//      copy of a growing file is kept).
#include "bench_common.h"

namespace blobcr::bench {
namespace {

constexpr int kRounds = 4;

struct SeriesResult {
  std::vector<sim::Duration> times;
  std::vector<sim::Duration> blocked;
  std::vector<std::uint64_t> repo;
};

SeriesResult run_series(const Approach& approach) {
  // Fresh cloud per series so repository growth is attributable.
  core::Cloud cloud(paper_cloud(approach.backend, 1500 * 1000));
  apps::SyntheticRun run;
  run.instances = 1;
  run.buffer_bytes = 200 * common::kMB;
  run.rounds = kRounds;
  const apps::RunResult result =
      apps::run_synthetic(cloud, run, approach.mode);
  return SeriesResult{result.checkpoint_times, result.checkpoint_blocked_times,
                      result.repo_growth};
}

void register_all() {
  for (const Approach& approach : five_approaches()) {
    // One registration per round so the series prints as rows.
    auto series = std::make_shared<SeriesResult>();
    for (int round = 1; round <= kRounds; ++round) {
      const std::string name = "Fig5/" + std::string(approach.name) +
                               "/checkpoint:" + std::to_string(round);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [approach, round, series](benchmark::State& state) {
            if (series->times.empty()) *series = run_series(approach);
            report_seconds(state, series->times.at(round - 1));
            state.counters["ckpt_s"] =
                sim::to_seconds(series->times.at(round - 1));
            state.counters["repo_MB"] = mb(series->repo.at(round - 1));
            // App-blocked share per round — gated in CI with repo_MB.
            state.counters["blocked_s"] =
                sim::to_seconds(series->blocked.at(round - 1));
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
}

}  // namespace
}  // namespace blobcr::bench

int main(int argc, char** argv) {
  blobcr::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
