// Ablation A5: checkpoint interval vs makespan under failures — the paper's
// core motivation quantified ("it is crucial to ... checkpoint the
// application frequently with minimal overhead", §1).
//
// A fixed job runs under an exponential fail-stop failure process while the
// FT runner checkpoints it every tau of useful work; we sweep tau around the
// Young/Daly optimum for BlobCR and the qcow2-disk baseline and report the
// measured (simulated) makespan next to the analytic renewal-model
// expectation. BlobCR's cheaper snapshots both lower the optimum interval
// and flatten the penalty for checkpointing often.
#include "bench_common.h"

#include <algorithm>
#include <cmath>

#include "ft/failure.h"
#include "ft/interval.h"
#include "ft/runner.h"

namespace blobcr::bench {
namespace {

struct IntervalPoint {
  ft::FtReport report;
  double analytic_makespan_s = 0;
  double daly_tau_s = 0;
};

/// Two-level (peer / repository) cadence sweep: one measured BlobCR run
/// grounds the cost model — the app-blocked share of a checkpoint is the
/// cheap peer-tier level (C1: staging + parity encode, survivable for
/// single-node failures via the redundancy tier), the rest of the overhead
/// is the repository-durability level (C2: drain + publish). M1 is the
/// system MTBF; repository-scale losses (M2) are modeled an order of
/// magnitude rarer. We report the analytic overhead across level ratios k
/// next to the jointly optimal (tau*, k*) and the single-level optimum.
struct TwoLevelPoint {
  double c1_s = 0, c2_s = 0;
  double overhead = 0;        // at this k, tau optimal for this k
  double tau_s = 0;           // cheap-level interval used at this k
  double k_opt = 1;           // jointly optimal level ratio
  double tau_opt_s = 0;       // jointly optimal cheap-level interval
  double tau_repo_opt_s = 0;  // k*·tau*: the durable-level interval
  double single_overhead = 0; // best single-level (k = 1) overhead
};

TwoLevelPoint two_level_point(const ft::FtReport& report, double k,
                              double node_mtbf_s, std::size_t instances) {
  TwoLevelPoint p;
  const double n = std::max<double>(1.0, report.checkpoints);
  const double total_s = sim::to_seconds(report.checkpoint_overhead) / n;
  p.c1_s = std::max(1e-3, sim::to_seconds(report.ckpt_blocked) / n);
  p.c2_s = std::max(1e-3, total_s - p.c1_s);
  const double m1 = ft::system_mtbf(node_mtbf_s, instances);
  const double m2 = 10.0 * m1;
  // Optimal tau for the *given* k (stationarity in tau alone).
  p.tau_s = std::sqrt((p.c1_s + p.c2_s / k) /
                      (1.0 / (2.0 * m1) + k / (2.0 * m2)));
  p.overhead = ft::two_level_overhead(p.tau_s, k, p.c1_s, p.c2_s, m1, m2);
  const ft::TwoLevelPlan plan = ft::two_level_optimum(p.c1_s, p.c2_s, m1, m2);
  p.k_opt = plan.k;
  p.tau_opt_s = plan.tau;
  p.tau_repo_opt_s = plan.k * plan.tau;
  p.single_overhead =
      ft::two_level_overhead(std::sqrt((p.c1_s + p.c2_s) /
                                       (1.0 / (2.0 * m1) + 1.0 / (2.0 * m2))),
                             1.0, p.c1_s, p.c2_s, m1, m2);
  return p;
}

/// Job shape: a few minutes of work across a handful of VMs so that the
/// sweep completes quickly while still spanning several failures.
ft::FtJobConfig job_for(double tau_s, std::uint64_t state_bytes,
                        double node_mtbf_s, std::uint64_t seed) {
  ft::FtJobConfig job;
  job.instances = fast_mode() ? 2 : 4;
  job.total_work = fast_mode() ? 600 * sim::kSecond : 1800 * sim::kSecond;
  job.checkpoint_interval = sim::from_seconds(tau_s);
  job.step = 15 * sim::kSecond;
  job.state_bytes = state_bytes;
  job.max_restarts = 400;
  job.failures = ft::FailureSchedule::sample(
      ft::FailureLaw::exponential(node_mtbf_s), job.instances,
      100 * 3600 * sim::kSecond, seed);
  return job;
}

IntervalPoint run_point(Backend backend, double tau_s, double node_mtbf_s,
                        bool redundancy = false) {
  const std::uint64_t state_bytes = 50 * common::kMB;
  // A failed node takes its co-located data provider down with it, so the
  // checkpoint repository must be replicated to survive (§3.1.1) — each
  // sweep point gets a fresh replicated cloud.
  core::CloudConfig cfg = paper_cloud(backend);
  cfg.replication = 2;
  // The redundancy tier encodes on the async drain, so it implies flush.
  cfg.flush.enabled = cfg.flush.enabled || redundancy;
  cfg.redundancy.enabled = redundancy;
  core::Cloud cloud(cfg);
  IntervalPoint point;
  const ft::FtJobConfig job = job_for(tau_s, state_bytes, node_mtbf_s, 4242);
  point.report = ft::run_ft_job(cloud, job);

  // Analytic overlay: per-checkpoint cost measured from the run itself,
  // restart cost likewise, system MTBF from the law.
  const double ckpt_cost_s =
      point.report.checkpoints > 0
          ? sim::to_seconds(point.report.checkpoint_overhead) /
                static_cast<double>(point.report.checkpoints)
          : 1.0;
  const double restart_cost_s =
      point.report.restarts > 0
          ? sim::to_seconds(point.report.restart_overhead) /
                static_cast<double>(point.report.restarts)
          : 60.0;
  const double mtbf =
      ft::system_mtbf(node_mtbf_s, static_cast<std::size_t>(job.instances));
  point.analytic_makespan_s = ft::expected_makespan(
      sim::to_seconds(job.total_work), tau_s, ckpt_cost_s, restart_cost_s,
      mtbf);
  point.daly_tau_s = ft::daly_interval(ckpt_cost_s, mtbf);
  return point;
}

void register_all() {
  const double node_mtbf_s = fast_mode() ? 1800.0 : 3600.0;
  const std::vector<double> taus =
      fast_mode() ? std::vector<double>{60, 150}
                  : std::vector<double>{30, 60, 120, 240, 480};
  const std::vector<Approach> approaches = {
      {"BlobCR-app", Backend::BlobCR, CkptMode::AppLevel},
      {"qcow2-disk-app", Backend::Qcow2Disk, CkptMode::AppLevel},
  };
  // Two-level cadence sweep: BlobCR with the peer redundancy tier on.
  // Every checkpoint pays the cheap peer level; only each k-th pays the
  // repository drain. Measured costs ground the analytic model; counters
  // report the overhead at each k next to the joint optimum (tau*, k*).
  const std::vector<double> ks =
      fast_mode() ? std::vector<double>{1, 4} : std::vector<double>{1, 2, 4, 8};
  for (const double k : ks) {
    const std::string name =
        std::string("AblationDalyInterval/BlobCR-two-level/k:") +
        std::to_string(static_cast<int>(k));
    const double tau = fast_mode() ? 60.0 : 120.0;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [k, tau, node_mtbf_s](benchmark::State& state) {
          const IntervalPoint p =
              run_point(Backend::BlobCR, tau, node_mtbf_s, true);
          const std::size_t instances = fast_mode() ? 2 : 4;
          const TwoLevelPoint tl =
              two_level_point(p.report, k, node_mtbf_s, instances);
          report_seconds(state, p.report.makespan);
          state.counters["c1_s"] = tl.c1_s;
          state.counters["c2_s"] = tl.c2_s;
          state.counters["tau_s"] = tl.tau_s;
          state.counters["overhead"] = tl.overhead;
          state.counters["k_opt"] = tl.k_opt;
          state.counters["tau_opt_s"] = tl.tau_opt_s;
          state.counters["tau_repo_opt_s"] = tl.tau_repo_opt_s;
          state.counters["single_overhead"] = tl.single_overhead;
          state.counters["daly_tau_s"] = p.daly_tau_s;
          state.counters["parity_rebuilt_mb"] = mb(p.report.parity_bytes_rebuilt);
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  for (const Approach& ap : approaches) {
    for (const double tau : taus) {
      const std::string name = std::string("AblationDalyInterval/") +
                               ap.name + "/tau_s:" +
                               std::to_string(static_cast<int>(tau));
      benchmark::RegisterBenchmark(
          name.c_str(),
          [ap, tau, node_mtbf_s](benchmark::State& state) {
            const IntervalPoint p = run_point(ap.backend, tau, node_mtbf_s);
            report_seconds(state, p.report.makespan);
            state.counters["analytic_s"] = p.analytic_makespan_s;
            state.counters["daly_tau_s"] = p.daly_tau_s;
            state.counters["efficiency"] = p.report.efficiency();
            state.counters["failures"] =
                static_cast<double>(p.report.failures);
            state.counters["restarts"] =
                static_cast<double>(p.report.restarts);
            state.counters["ckpts"] =
                static_cast<double>(p.report.checkpoints);
            state.counters["wasted_s"] =
                sim::to_seconds(p.report.wasted_compute);
            state.counters["ckpt_ovh_s"] =
                sim::to_seconds(p.report.checkpoint_overhead);
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kSecond);
    }
  }
}

}  // namespace
}  // namespace blobcr::bench

int main(int argc, char** argv) {
  blobcr::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
