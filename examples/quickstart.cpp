// Quickstart: the smallest end-to-end BlobCR run.
//
// Provisions a small cloud, deploys two VM instances from a base image,
// runs a guest workload that writes files, takes a global checkpoint
// through the cr::Session control plane (node-local proxies underneath),
// destroys everything (simulated failure), restarts from the cataloged
// checkpoint on different nodes, and verifies that
//   (a) the checkpointed state is back, bit for bit, and
//   (b) file-system writes made after the checkpoint were rolled back.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/blobcr.h"

using namespace blobcr;
using common::Buffer;
using sim::Task;

namespace {

void banner(const core::Cloud& cloud, const char* msg) {
  std::printf("[t=%8.3fs] %s\n", sim::to_seconds(cloud.now()), msg);
}

}  // namespace

int main() {
  core::CloudConfig cfg;
  cfg.compute_nodes = 4;
  cfg.metadata_nodes = 2;
  cfg.backend = core::Backend::BlobCR;
  cfg.os = vm::GuestOsConfig::test_tiny();  // small image with real content
  cfg.vm.os_ram_bytes = 32 * common::kMB;
  core::Cloud cloud(cfg);

  bool state_ok = false;
  std::string log_after;

  cloud.run([](core::Cloud* cl, bool* ok, std::string* log) -> Task<> {
    banner(*cl, "provisioning base image (build + upload to BlobSeer)");
    co_await cl->provision_base_image();

    core::Deployment dep(*cl, 2);
    cr::Session session(dep);
    banner(*cl, "multi-deploying 2 VM instances (lazy fetch + boot)");
    co_await dep.deploy_and_boot();
    banner(*cl, "booted");

    // Guest workload: one state file + a log line, synced to the disk.
    for (std::size_t i = 0; i < dep.size(); ++i) {
      guestfs::SimpleFs* fs = dep.vm(i).fs();
      co_await fs->write_file("/data/state.bin", Buffer::pattern(1'000'000, i));
      const guestfs::Fd fd = fs->open("/data/app.log", true, true);
      co_await fs->write(fd, Buffer::from_string("committed work\n"));
      fs->close(fd);
      co_await fs->sync();
    }
    banner(*cl, "guest state written and synced");

    const cr::CheckpointRecord rec = co_await session.checkpoint("quickstart");
    std::printf("             checkpoint %llu committed: %zu instances, "
                "%.2f MB total (incremental snapshots)\n",
                static_cast<unsigned long long>(rec.id), rec.snapshots.size(),
                static_cast<double>(rec.total_bytes()) / 1e6);

    // Post-checkpoint I/O that the restore must roll back.
    for (std::size_t i = 0; i < dep.size(); ++i) {
      guestfs::SimpleFs* fs = dep.vm(i).fs();
      const guestfs::Fd fd = fs->open("/data/app.log", false, true);
      co_await fs->write(fd, Buffer::from_string("UNCOMMITTED work\n"));
      fs->close(fd);
      co_await fs->sync();
    }
    banner(*cl, "post-checkpoint writes made (will be rolled back)");

    dep.destroy_all();
    banner(*cl, "all instances failed (fail-stop)");

    // The catalog — repository state, not driver memory — names the last
    // complete global checkpoint; restart selects it.
    (void)co_await session.restart(cr::Selector::latest(), /*node_offset=*/2);
    banner(*cl, "restarted from the cataloged checkpoint on different nodes");

    const Buffer state = co_await dep.vm(0).fs()->read_file("/data/state.bin");
    *ok = (state == Buffer::pattern(1'000'000, 0));
    const Buffer logbuf = co_await dep.vm(0).fs()->read_file("/data/app.log");
    *log = logbuf.to_string();
  }(&cloud, &state_ok, &log_after));

  std::printf("\nstate restored intact: %s\n", state_ok ? "YES" : "NO");
  std::printf("log after restart: \"%s\" (the uncommitted line is gone: %s)\n",
              log_after.c_str(),
              log_after == "committed work\n" ? "YES" : "NO");
  return state_ok && log_after == "committed work\n" ? 0 : 1;
}
