// cm1_hurricane: the paper's real-life case study as a library user would
// run it — a CM1-style 3D atmospheric simulation (idealized hurricane,
// §4.4) on four VMs with four MPI ranks each, with periodic coordinated
// checkpoints, a mid-run node failure, and recovery from the last
// checkpoint. Real numerics (small grid), digest-verified restore.
//
// Build & run:  ./build/examples/cm1_hurricane
#include <cstdio>
#include <memory>
#include <vector>

#include "apps/cm1.h"
#include "core/blobcr.h"

using namespace blobcr;
using sim::Task;

namespace {

constexpr std::size_t kVms = 2;
constexpr int kRanksPerVm = 2;
constexpr int kRanks = static_cast<int>(kVms) * kRanksPerVm;
constexpr int kSegment = 4;   // iterations between checkpoints
constexpr int kSegments = 2;  // checkpoints before the failure

apps::Cm1Config hurricane_cfg() {
  apps::Cm1Config cfg;
  cfg.nx = 12;
  cfg.ny = 12;
  cfg.nz = 6;
  cfg.nvars = 4;
  cfg.px = 2;
  cfg.py = 2;
  cfg.real_data = true;
  cfg.iteration_compute = 200 * sim::kMillisecond;
  cfg.summary_interval = 4;
  cfg.summary_bytes = 64 * 1024;
  return cfg;
}

Task<> rank_body(core::Deployment* dep, std::size_t vm_index, int rank,
                 std::vector<std::uint64_t>* digests,
                 vm::GuestProcess* gp) {
  dep->mpi().register_rank(rank, gp);
  apps::Cm1Rank cm1(*gp, dep->mpi().comm(rank), hurricane_cfg(), rank);
  co_await cm1.init();
  for (int seg = 0; seg < kSegments; ++seg) {
    co_await cm1.run(kSegment);
    mpi::CoordinatedHooks hooks;
    hooks.vm_leader = (rank % kRanksPerVm == 0);
    hooks.fs = gp->vm().fs();
    apps::Cm1Rank* cm1p = &cm1;
    hooks.dump = [cm1p]() -> Task<> {
      (void)co_await cm1p->write_checkpoint();
    };
    hooks.request_disk_snapshot = [dep, vm_index]() -> Task<> {
      (void)co_await dep->snapshot_instance(vm_index);
    };
    co_await mpi::coordinated_checkpoint(dep->mpi().comm(rank), hooks);
    if (rank == 0) {
      std::printf("[t=%8.3fs] checkpoint %d done (iteration %d)\n",
                  sim::to_seconds(gp->vm().simulation().now()), seg + 1,
                  cm1.current_iteration());
    }
  }
  (*digests)[static_cast<std::size_t>(rank)] = cm1.state_digest();
}

Task<> recovery_body(core::Deployment* dep, int rank,
                     std::vector<std::uint64_t>* digests, bool* all_ok,
                     vm::GuestProcess* gp) {
  dep->mpi().rebind_rank(rank, gp);
  apps::Cm1Rank cm1(*gp, dep->mpi().comm(rank), hurricane_cfg(), rank);
  const bool ok = co_await cm1.restore_checkpoint();
  const bool digest_ok =
      cm1.state_digest() == (*digests)[static_cast<std::size_t>(rank)];
  if (!(ok && digest_ok)) *all_ok = false;
  // Science continues from the restored iteration.
  co_await cm1.run(2);
}

}  // namespace

int main() {
  core::CloudConfig cfg;
  cfg.compute_nodes = 6;
  cfg.metadata_nodes = 2;
  cfg.backend = core::Backend::BlobCR;
  cfg.replication = 2;  // survive the node failure below
  cfg.os = vm::GuestOsConfig::test_tiny();
  cfg.vm.os_ram_bytes = 32 * common::kMB;
  core::Cloud cloud(cfg);

  bool recovered = true;

  cloud.run([](core::Cloud* cl, bool* ok) -> Task<> {
    co_await cl->provision_base_image();
    core::Deployment dep(*cl, kVms);
    cr::Session session(dep);
    co_await dep.deploy_and_boot();
    dep.mpi().set_size(kRanks);
    std::printf("[t=%8.3fs] %d CM1 ranks on %zu VMs booted\n",
                sim::to_seconds(cl->simulation().now()), kRanks, kVms);

    auto digests = std::make_shared<std::vector<std::uint64_t>>(kRanks, 0);
    for (std::size_t i = 0; i < kVms; ++i) {
      for (int k = 0; k < kRanksPerVm; ++k) {
        const int rank = static_cast<int>(i) * kRanksPerVm + k;
        core::Deployment* dp = &dep;
        dep.vm(i).start_guest(
            "cm1", [dp, i, rank, digests](vm::GuestProcess& gp) -> Task<> {
              co_await rank_body(dp, i, rank, digests.get(), &gp);
            });
      }
    }
    for (std::size_t i = 0; i < kVms; ++i) co_await dep.vm(i).join_guests();

    (void)co_await session.commit_last("iteration-20");
    std::printf("[t=%8.3fs] NODE FAILURE: losing instance 0's machine "
                "(VM + its data provider)\n",
                sim::to_seconds(cl->simulation().now()));
    dep.fail_instance(0);
    dep.destroy_all();

    (void)co_await session.restart(cr::Selector::latest(),
                                   /*node_offset=*/kVms + 1);
    std::printf("[t=%8.3fs] restarted from checkpoint on fresh nodes\n",
                sim::to_seconds(cl->simulation().now()));

    for (std::size_t i = 0; i < kVms; ++i) {
      for (int k = 0; k < kRanksPerVm; ++k) {
        const int rank = static_cast<int>(i) * kRanksPerVm + k;
        core::Deployment* dp = &dep;
        dep.vm(i).start_guest(
            "recover", [dp, rank, digests, ok](vm::GuestProcess& gp)
                           -> Task<> {
              co_await recovery_body(dp, rank, digests.get(), ok, &gp);
            });
      }
    }
    for (std::size_t i = 0; i < kVms; ++i) co_await dep.vm(i).join_guests();
    std::printf("[t=%8.3fs] recovery segment completed\n",
                sim::to_seconds(cl->simulation().now()));
  }(&cloud, &recovered));

  std::printf("\nall ranks restored with matching digests and resumed: %s\n",
              recovered ? "YES" : "NO");
  return recovered ? 0 : 1;
}
