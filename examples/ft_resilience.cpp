// Fault-tolerant job run: the whole BlobCR loop under real failures.
//
// A tightly-coupled 4-rank job (30 minutes of useful compute) runs under an
// exponential fail-stop failure process. The FT runner checkpoints it at the
// Young/Daly-optimal interval for each storage backend, rolls back to the
// last complete global checkpoint whenever a node dies (taking its data
// provider down with it), re-replicates what the dead provider held, and
// garbage-collects snapshots the job can no longer roll back to.
//
// The output shows the paper's core argument end to end: BlobCR's cheaper
// incremental snapshots lower the optimal checkpoint interval and raise
// machine efficiency compared to qcow2-over-PVFS checkpointing of the same
// job under the same failure schedule.
//
// Build & run:  ./build/examples/ft_resilience
#include <cstdio>

#include "core/blobcr.h"
#include "ft/failure.h"
#include "ft/interval.h"
#include "ft/runner.h"

using namespace blobcr;

namespace {

core::CloudConfig cloud_config(core::Backend backend) {
  core::CloudConfig cfg;
  cfg.compute_nodes = 24;
  cfg.metadata_nodes = 2;
  cfg.backend = backend;
  cfg.replication = 2;  // survive provider loss (§3.1.1)
  cfg.os = vm::GuestOsConfig::test_tiny();
  cfg.vm.os_ram_bytes = 32 * common::kMB;
  return cfg;
}

ft::FtReport run_backend(core::Backend backend, double tau_s) {
  core::Cloud cloud(cloud_config(backend));
  ft::FtJobConfig job;
  job.instances = 4;
  job.total_work = 1800 * sim::kSecond;
  job.checkpoint_interval = sim::from_seconds(tau_s);
  job.step = 15 * sim::kSecond;
  job.state_bytes = 24 * common::kMB;
  job.repair_after_restart = backend == core::Backend::BlobCR;
  // Catalog retention: keep only the rollback target; older checkpoints
  // retire and their snapshot versions (BlobCR) / PVFS copies (qcow2-disk)
  // are reclaimed.
  job.retention.keep_last = 1;
  // Same failure schedule for both backends: node MTBF of one hour.
  job.failures = ft::FailureSchedule::sample(
      ft::FailureLaw::exponential(3600.0), job.instances,
      24 * 3600 * sim::kSecond, /*seed=*/20260610);
  return ft::run_ft_job(cloud, job);
}

}  // namespace

int main() {
  struct Row {
    const char* name;
    core::Backend backend;
  };
  const Row rows[] = {
      {"BlobCR-app", core::Backend::BlobCR},
      {"qcow2-disk-app", core::Backend::Qcow2Disk},
  };

  std::printf("job: 4 ranks x 1800 s useful compute, 24 MB state/rank, "
              "node MTBF 1 h, replication 2\n\n");
  std::printf("%-16s %8s %8s %6s %6s %9s %9s %10s %8s\n", "backend",
              "tau*(s)", "span(s)", "fails", "ckpts", "waste(s)",
              "ovh(s)", "repair(MB)", "eff");

  bool all_ok = true;
  for (const Row& row : rows) {
    // Pilot run at a neutral interval to measure this backend's checkpoint
    // cost, then the real run at its own Daly-optimal interval.
    const ft::FtReport pilot = run_backend(row.backend, 300.0);
    const double ckpt_cost_s =
        sim::to_seconds(pilot.checkpoint_overhead) /
        static_cast<double>(pilot.checkpoints);
    const double mtbf_s = ft::system_mtbf(3600.0, 4);
    const double tau = ft::daly_interval(ckpt_cost_s, mtbf_s);

    const ft::FtReport rep = run_backend(row.backend, tau);
    all_ok = all_ok && rep.completed && rep.verified;
    std::printf("%-16s %8.1f %8.0f %6zu %6zu %9.1f %9.1f %10.1f %7.1f%%\n",
                row.name, tau, sim::to_seconds(rep.makespan), rep.failures,
                rep.checkpoints, sim::to_seconds(rep.wasted_compute),
                sim::to_seconds(rep.checkpoint_overhead),
                static_cast<double>(rep.repair_bytes) / 1e6,
                100.0 * rep.efficiency());
  }

  std::printf("\nall runs completed with verified state: %s\n",
              all_ok ? "YES" : "NO");
  return all_ok ? 0 : 1;
}
