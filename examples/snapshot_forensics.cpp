// snapshot_forensics: the paper's §3.2 side feature — because checkpoint
// images are first-class blobs (clone + shadowing) *and* checkpoints are
// first-class catalog records, a user can list every checkpoint a
// repository holds (even ones this driver never took), mount any version
// OFFLINE (no VM), inspect the guest's files, and diff two checkpoint
// generations of the same instance.
//
// Build & run:  ./build/examples/snapshot_forensics
#include <cstdio>
#include <string>

#include "core/blobcr.h"

using namespace blobcr;
using common::Buffer;
using sim::Task;

namespace {

/// Mounts one snapshot version read-only through a fresh mirror device.
Task<std::unique_ptr<guestfs::SimpleFs>> mount_snapshot(
    core::Cloud* cl, core::MirrorDevice** out_dev, blob::BlobId image,
    blob::VersionId version) {
  core::MirrorDevice::Config mcfg;
  mcfg.capacity = cl->image_size();
  auto* dev = new core::MirrorDevice(*cl->blob_store(), cl->compute_node(3),
                                     cl->disk(cl->compute_node(3)),
                                     cl->next_disk_stream(3), image, version,
                                     mcfg);
  *out_dev = dev;
  co_return co_await guestfs::SimpleFs::mount(*dev);
}

}  // namespace

int main() {
  core::CloudConfig cfg;
  cfg.compute_nodes = 4;
  cfg.metadata_nodes = 2;
  cfg.backend = core::Backend::BlobCR;
  cfg.os = vm::GuestOsConfig::test_tiny();
  core::Cloud cloud(cfg);

  cloud.run([](core::Cloud* cl) -> Task<> {
    co_await cl->provision_base_image();
    core::Deployment dep(*cl, 1);
    cr::Session session(dep);
    co_await dep.deploy_and_boot();

    // Two application generations -> two cataloged checkpoints.
    guestfs::SimpleFs* fs = dep.vm(0).fs();
    co_await fs->write_file("/data/results.txt",
                            Buffer::from_string("generation 1 results\n"));
    co_await fs->sync();
    (void)co_await session.checkpoint("gen1");

    co_await fs->write_file("/data/results.txt",
                            Buffer::from_string("generation 2 results\n"));
    co_await fs->write_file("/data/extra.dat", Buffer::pattern(64 * 1024, 7));
    co_await fs->sync();
    (void)co_await session.checkpoint("gen2");

    // Forensic listing through a FRESH catalog — only repository state, as
    // a new driver (or an auditor) after total loss would see it.
    cr::Catalog catalog(*cl);
    const std::vector<cr::CheckpointRecord> records =
        co_await catalog.list();
    std::printf("checkpoint catalog (%zu records):\n", records.size());
    for (const cr::CheckpointRecord& rec : records) {
      std::printf("  #%llu  parent=%llu  state=%-10s tag=%-6s %zu "
                  "instance(s), %.1f KB\n",
                  static_cast<unsigned long long>(rec.id),
                  static_cast<unsigned long long>(rec.parent),
                  cr::record_state_name(rec.state),
                  rec.tag.empty() ? "-" : rec.tag.c_str(),
                  rec.snapshots.size(),
                  static_cast<double>(rec.total_bytes()) / 1e3);
    }
    std::printf("\n");

    // Offline inspection: no VM involved, snapshots mounted like disks.
    for (const cr::CheckpointRecord& rec : records) {
      const core::InstanceSnapshot& snap = rec.snapshots.at(0);
      core::MirrorDevice* dev = nullptr;
      auto snap_fs = co_await mount_snapshot(cl, &dev, snap.image,
                                             snap.version);
      const Buffer results = co_await snap_fs->read_file("/data/results.txt");
      std::printf("#%llu (%s) :/data/results.txt -> %s",
                  static_cast<unsigned long long>(rec.id), rec.tag.c_str(),
                  results.to_string().c_str());
      std::printf("#%llu :/data contains:",
                  static_cast<unsigned long long>(rec.id));
      for (const std::string& name : snap_fs->readdir("/data")) {
        std::printf(" %s", name.c_str());
      }
      std::printf("\n\n");
      snap_fs.reset();
      delete dev;
    }

    std::printf("note: the running VM kept executing; offline mounts read "
                "shadowed versions,\nnever disturbing the instance or later "
                "checkpoints.\n");
  }(&cloud));
  return 0;
}
