// snapshot_forensics: the paper's §3.2 side feature — because checkpoint
// images are first-class blobs (clone + shadowing), a user can take any
// snapshot version, mount it OFFLINE (no VM), inspect the guest's files,
// even diff two checkpoint generations of the same instance.
//
// Build & run:  ./build/examples/snapshot_forensics
#include <cstdio>
#include <string>

#include "core/blobcr.h"

using namespace blobcr;
using common::Buffer;
using sim::Task;

namespace {

/// Mounts one snapshot version read-only through a fresh mirror device.
Task<std::unique_ptr<guestfs::SimpleFs>> mount_snapshot(
    core::Cloud* cl, core::MirrorDevice** out_dev, blob::BlobId image,
    blob::VersionId version) {
  core::MirrorDevice::Config mcfg;
  mcfg.capacity = cl->image_size();
  auto* dev = new core::MirrorDevice(*cl->blob_store(), cl->compute_node(3),
                                     cl->disk(cl->compute_node(3)),
                                     cl->next_disk_stream(3), image, version,
                                     mcfg);
  *out_dev = dev;
  co_return co_await guestfs::SimpleFs::mount(*dev);
}

}  // namespace

int main() {
  core::CloudConfig cfg;
  cfg.compute_nodes = 4;
  cfg.metadata_nodes = 2;
  cfg.backend = core::Backend::BlobCR;
  cfg.os = vm::GuestOsConfig::test_tiny();
  core::Cloud cloud(cfg);

  cloud.run([](core::Cloud* cl) -> Task<> {
    co_await cl->provision_base_image();
    core::Deployment dep(*cl, 1);
    co_await dep.deploy_and_boot();

    // Two application generations -> two snapshot versions.
    guestfs::SimpleFs* fs = dep.vm(0).fs();
    co_await fs->write_file("/data/results.txt",
                            Buffer::from_string("generation 1 results\n"));
    co_await fs->sync();
    const core::InstanceSnapshot s1 = co_await dep.snapshot_instance(0);

    co_await fs->write_file("/data/results.txt",
                            Buffer::from_string("generation 2 results\n"));
    co_await fs->write_file("/data/extra.dat", Buffer::pattern(64 * 1024, 7));
    co_await fs->sync();
    const core::InstanceSnapshot s2 = co_await dep.snapshot_instance(0);

    std::printf("checkpoint image blob id %llu, versions v%u and v%u\n\n",
                static_cast<unsigned long long>(s1.image), s1.version,
                s2.version);

    // Offline inspection: no VM involved, snapshots mounted like disks.
    for (const core::InstanceSnapshot& snap : {s1, s2}) {
      core::MirrorDevice* dev = nullptr;
      auto snap_fs = co_await mount_snapshot(cl, &dev, snap.image,
                                             snap.version);
      const Buffer results = co_await snap_fs->read_file("/data/results.txt");
      std::printf("v%u:/data/results.txt -> %s", snap.version,
                  results.to_string().c_str());
      std::printf("v%u:/data contains:", snap.version);
      for (const std::string& name : snap_fs->readdir("/data")) {
        std::printf(" %s", name.c_str());
      }
      std::printf("\n\n");
      snap_fs.reset();
      delete dev;
    }

    std::printf("note: the running VM kept executing; offline mounts read "
                "shadowed versions,\nnever disturbing the instance or later "
                "checkpoints.\n");
  }(&cloud));
  return 0;
}
