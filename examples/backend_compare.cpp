// backend_compare: a miniature of the paper's evaluation — run the same
// synthetic checkpoint-restart workload on all three backends (BlobCR,
// qcow2-disk over PVFS, qcow2-full over PVFS) and print a comparison table.
//
// Build & run:  ./build/examples/backend_compare
#include <cstdio>

#include "apps/scenarios.h"
#include "core/blobcr.h"

using namespace blobcr;

namespace {

struct Row {
  const char* name;
  core::Backend backend;
  apps::CkptMode mode;
};

}  // namespace

int main() {
  constexpr std::size_t kInstances = 6;
  constexpr std::uint64_t kBuffer = 20 * common::kMB;

  const Row rows[] = {
      {"BlobCR-app", core::Backend::BlobCR, apps::CkptMode::AppLevel},
      {"BlobCR-blcr", core::Backend::BlobCR, apps::CkptMode::ProcessBlcr},
      {"qcow2-disk-app", core::Backend::Qcow2Disk, apps::CkptMode::AppLevel},
      {"qcow2-disk-blcr", core::Backend::Qcow2Disk,
       apps::CkptMode::ProcessBlcr},
      {"qcow2-full", core::Backend::Qcow2Full, apps::CkptMode::FullVm},
  };

  std::printf("%zu instances, %.0f MB buffer each, checkpoint + restart\n\n",
              kInstances, static_cast<double>(kBuffer) / 1e6);
  std::printf("%-18s %12s %12s %16s %12s\n", "approach", "ckpt (s)",
              "restart (s)", "snapshot MB/VM", "verified");

  for (const Row& row : rows) {
    core::CloudConfig cfg;
    cfg.compute_nodes = 12;
    cfg.metadata_nodes = 3;
    cfg.backend = row.backend;
    cfg.os = vm::GuestOsConfig::test_tiny();
    cfg.vm.os_ram_bytes = 40 * common::kMB;
    core::Cloud cloud(cfg);

    apps::SyntheticRun run;
    run.instances = kInstances;
    run.buffer_bytes = kBuffer;
    run.real_data = (row.mode != apps::CkptMode::FullVm);
    run.do_restart = true;
    const apps::RunResult result = apps::run_synthetic(cloud, run, row.mode);

    std::printf("%-18s %12.2f %12.2f %16.2f %12s\n", row.name,
                sim::to_seconds(result.checkpoint_times.at(0)),
                sim::to_seconds(result.restart_time),
                static_cast<double>(result.snapshot_bytes_per_vm.at(0)) / 1e6,
                result.verified ? "yes" : "NO");
  }
  std::printf(
      "\nExpected shape (paper, Figs 2-4): qcow2-full pays the ~RAM-sized\n"
      "snapshot; the disk-snapshot approaches ship only files + FS noise;\n"
      "BlobCR restarts faster thanks to lazy fetch + prefetching.\n");
  return 0;
}
