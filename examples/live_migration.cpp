// VM migration through disk snapshots (§3.1.3: incremental snapshots "are
// much easier to migrate").
//
// A VM accumulates state on one compute node, then hops across three nodes.
// Each hop is a guest-triggered disk snapshot followed by a redeploy of the
// snapshot on the target node; the incremental checkpoint chain continues
// across hops, and synced data survives every move. The run compares the
// three backends: BlobCR ships only deltas, qcow2-disk re-ships its whole
// container, and qcow2-full additionally drags the guest RAM along.
//
// Build & run:  ./build/examples/live_migration
#include <cstdio>

#include "core/blobcr.h"
#include "sim/sim.h"

using namespace blobcr;
using common::Buffer;
using sim::Task;

namespace {

struct HopStats {
  sim::Duration downtime = 0;
  std::uint64_t snapshot_bytes = 0;
};

struct Outcome {
  std::vector<HopStats> hops;
  bool data_ok = false;
};

Outcome run_backend(core::Backend backend) {
  core::CloudConfig cfg;
  cfg.compute_nodes = 8;
  cfg.metadata_nodes = 2;
  cfg.backend = backend;
  cfg.os = vm::GuestOsConfig::test_tiny();
  cfg.vm.os_ram_bytes = 32 * common::kMB;
  core::Cloud cloud(cfg);

  Outcome out;
  cloud.run([](core::Cloud* cl, Outcome* out) -> Task<> {
    co_await cl->provision_base_image();
    core::Deployment dep(*cl, 1);
    co_await dep.deploy_and_boot();

    // Accumulate application state before the first hop.
    guestfs::SimpleFs* fs = dep.vm(0).fs();
    co_await fs->write_file("/data/model.bin", Buffer::pattern(3'000'000, 1));
    co_await fs->sync();

    for (int hop = 0; hop < 3; ++hop) {
      // A bit of fresh dirty state per hop (what the next snapshot ships
      // incrementally).
      guestfs::SimpleFs* cur = dep.vm(0).fs();
      co_await cur->write_file(
          "/data/hop" + std::to_string(hop) + ".bin",
          Buffer::pattern(400'000, 100 + static_cast<std::uint64_t>(hop)));
      co_await cur->sync();

      const net::NodeId target = (dep.instance(0).node + 2) % 8;
      HopStats stats;
      stats.downtime = co_await dep.migrate_instance(0, target);
      stats.snapshot_bytes = dep.instance(0).last_snapshot.bytes;
      out->hops.push_back(stats);
    }

    // Everything synced before the hops must have survived all of them.
    guestfs::SimpleFs* end = dep.vm(0).fs();
    const Buffer model = co_await end->read_file("/data/model.bin");
    bool ok = (model == Buffer::pattern(3'000'000, 1));
    for (int hop = 0; hop < 3; ++hop) {
      const Buffer h = co_await end->read_file("/data/hop" +
                                               std::to_string(hop) + ".bin");
      ok = ok &&
           (h == Buffer::pattern(400'000, 100 + static_cast<std::uint64_t>(hop)));
    }
    out->data_ok = ok;
  }(&cloud, &out));
  return out;
}

}  // namespace

int main() {
  struct Row {
    const char* name;
    core::Backend backend;
  };
  const Row rows[] = {
      {"BlobCR", core::Backend::BlobCR},
      {"qcow2-disk", core::Backend::Qcow2Disk},
      {"qcow2-full", core::Backend::Qcow2Full},
  };

  std::printf("3 migration hops of one VM (3.4 MB app state, tiny guest)\n\n");
  std::printf("%-12s %26s %30s %6s\n", "backend", "hop downtime (s)",
              "snapshot shipped (MB)", "data");
  bool all_ok = true;
  for (const Row& row : rows) {
    const Outcome out = run_backend(row.backend);
    all_ok = all_ok && out.data_ok;
    std::printf("%-12s    %6.2f  %6.2f  %6.2f      %8.2f %8.2f %8.2f   %4s\n",
                row.name, sim::to_seconds(out.hops[0].downtime),
                sim::to_seconds(out.hops[1].downtime),
                sim::to_seconds(out.hops[2].downtime),
                static_cast<double>(out.hops[0].snapshot_bytes) / 1e6,
                static_cast<double>(out.hops[1].snapshot_bytes) / 1e6,
                static_cast<double>(out.hops[2].snapshot_bytes) / 1e6,
                out.data_ok ? "OK" : "BAD");
  }
  std::printf("\nBlobCR ships per-hop deltas; the baselines re-ship "
              "their whole container every hop.\n");
  return all_ok ? 0 : 1;
}
