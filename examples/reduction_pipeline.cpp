// Reduction pipeline demo: successive checkpoints with content-addressed
// dedup, zero suppression and compression on the commit path.
//
// Two VM instances write the same application state (plus some zero pages
// and some rank-private data), checkpoint, mutate a little, checkpoint
// again. With the reduction pipeline on, the second rank's identical state
// dedups against the first rank's chunks, the second round dedups against
// the first round, zero pages never ship — and a restart still restores
// every byte.
//
// Build & run:  ./build/example_reduction_pipeline
#include <cstdio>

#include "core/blobcr.h"
#include "reduce/reducer.h"

using namespace blobcr;
using common::Buffer;
using sim::Task;

int main() {
  core::CloudConfig cfg;
  cfg.compute_nodes = 4;
  cfg.metadata_nodes = 2;
  cfg.backend = core::Backend::BlobCR;
  cfg.os = vm::GuestOsConfig::test_tiny();
  cfg.vm.os_ram_bytes = 32 * common::kMB;
  cfg.reduction.enabled = true;
  cfg.reduction.compression = true;
  core::Cloud cloud(cfg);

  bool ok = false;
  reduce::ReductionStats stats;

  cloud.run([](core::Cloud* cl, bool* ok,
               reduce::ReductionStats* stats) -> Task<> {
    co_await cl->provision_base_image();
    core::Deployment dep(*cl, 2);
    cr::Session session(dep);
    co_await dep.deploy_and_boot();

    const Buffer shared = Buffer::pattern(2'000'000, 7);  // same on both VMs
    for (int round = 0; round < 2; ++round) {
      dep.reducer()->begin_epoch();
      for (std::size_t i = 0; i < dep.size(); ++i) {
        guestfs::SimpleFs* fs = dep.vm(i).fs();
        if (round == 0) {
          co_await fs->write_file("/data/shared.bin", shared);
          co_await fs->write_file("/data/freed.bin",
                                  Buffer::zeros(1'000'000));
          co_await fs->write_file(
              "/data/private.bin",
              Buffer::pattern(500'000, 100 + i * 10 + round));
        } else {
          // In-place rewrites keep the on-disk layout stable, so the
          // unchanged shared state dedups against the previous snapshot
          // version (write_file would re-allocate blocks and shift the
          // chunk contents — the fixed-block dedup alignment problem).
          const guestfs::Fd sfd = fs->open("/data/shared.bin");
          co_await fs->pwrite(sfd, 0, shared);
          fs->close(sfd);
          const guestfs::Fd pfd = fs->open("/data/private.bin");
          co_await fs->pwrite(
              pfd, 0, Buffer::pattern(500'000, 100 + i * 10 + round));
          fs->close(pfd);
        }
        co_await fs->sync();
      }
      // Snapshot the ranks one after the other: the first rank's commit
      // populates the shared digest index, the second rank's identical
      // dirty chunks dedup against it (cross-rank reduction).
      for (std::size_t i = 0; i < dep.size(); ++i) {
        (void)co_await dep.snapshot_instance(i);
      }
      (void)co_await session.commit_last();
      const reduce::ReductionStats ep = dep.reducer()->epoch_stats();
      std::printf(
          "checkpoint %d: %.2f MB raw -> %.2f MB shipped "
          "(%zu dedup hits, %zu zero chunks)\n",
          round + 1, static_cast<double>(ep.raw_bytes) / 1e6,
          static_cast<double>(ep.shipped_bytes) / 1e6,
          static_cast<std::size_t>(ep.dedup_hits),
          static_cast<std::size_t>(ep.zero_chunks));
      if (round == 1) {
        *stats = dep.reducer()->stats();
        // Full restart from the reduced snapshots: every byte must be back.
        dep.destroy_all();
        (void)co_await session.restart(cr::Selector::latest(),
                                       /*node_offset=*/2);
        const Buffer back =
            co_await dep.vm(1).fs()->read_file("/data/shared.bin");
        const Buffer zero_back =
            co_await dep.vm(1).fs()->read_file("/data/freed.bin");
        *ok = (back == shared) && zero_back.all_zero() &&
              zero_back.size() == 1'000'000;
      }
    }
  }(&cloud, &ok, &stats));

  std::printf("\noverall: %.2f MB raw, %.2f MB shipped (%.0f%%), "
              "dedup hit rate %.0f%%\n",
              static_cast<double>(stats.raw_bytes) / 1e6,
              static_cast<double>(stats.shipped_bytes) / 1e6,
              100.0 * stats.shipped_ratio(),
              100.0 * stats.dedup_hit_rate());
  std::printf("restart from reduced snapshots restored state: %s\n",
              ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
