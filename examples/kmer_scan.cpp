// k-mer scan: lazy transfer of a shared read-only reference at runtime.
//
// A reference sequence is baked into the base VM image once; every instance
// shares it through its own virtual disk, and the mirror device fetches
// reference chunks from the checkpoint repository only when the scan reaches
// them (§3.1.4's lazy transfer, applied to application data rather than just
// boot files). The run checkpoints halfway, fail-stops, restarts on fresh
// nodes and finishes the scan — the final sketch table is bit-identical to
// an uninterrupted run's, and the fetch counters show that neither the
// original boot nor the restart ever shipped the whole image.
//
// Build & run:  ./build/examples/kmer_scan
#include <cstdio>

#include "apps/kmer.h"
#include "core/blobcr.h"
#include "sim/sim.h"

using namespace blobcr;
using sim::Task;

namespace {

void banner(core::Cloud& cloud, const char* msg) {
  std::printf("[t=%8.3fs] %s\n", sim::to_seconds(cloud.simulation().now()),
              msg);
}

apps::KmerConfig kmer_config() {
  apps::KmerConfig cfg;
  cfg.reference_bytes = 8 * common::kMB;
  cfg.window_bytes = 512 * 1024;
  cfg.table_bytes = 256 * 1024;
  cfg.ranks = 2;
  cfg.real_data = true;
  return cfg;
}

}  // namespace

int main() {
  const apps::KmerConfig kcfg = kmer_config();
  core::CloudConfig cfg;
  cfg.compute_nodes = 6;
  cfg.metadata_nodes = 2;
  cfg.backend = core::Backend::BlobCR;
  cfg.os = vm::GuestOsConfig::test_tiny();
  kcfg.add_reference_to(cfg.os);  // the shared input ships with the image
  cfg.vm.os_ram_bytes = 32 * common::kMB;
  core::Cloud cloud(cfg);

  struct Out {
    std::uint64_t boot_fetch = 0;
    std::uint64_t half_fetch = 0;
    std::uint64_t restart_fetch = 0;
    std::uint64_t image_size = 0;
    bool restore_ok = true;
    std::uint64_t digests[2] = {0, 0};
  } out;

  cloud.run([](core::Cloud* cl, apps::KmerConfig kcfg, Out* out) -> Task<> {
    co_await cl->provision_base_image();
    out->image_size = cl->image_size();
    core::Deployment dep(*cl, 2);
    cr::Session session(dep);
    banner(*cl, "deploying 2 VMs; the 8 MB reference ships with the image");
    co_await dep.deploy_and_boot();
    out->boot_fetch = dep.boot_remote_bytes();

    sim::Barrier phase(cl->simulation(), 3);
    for (std::size_t i = 0; i < 2; ++i) {
      dep.vm(i).start_guest("kmer", [&dep, i, kcfg,
                                     &phase](vm::GuestProcess& gp) -> Task<> {
        apps::KmerRank scan(gp, kcfg, static_cast<int>(i));
        co_await scan.init();
        const std::uint64_t half =
            (kcfg.slice_begin(static_cast<int>(i)) + scan.slice_end()) / 2;
        co_await scan.scan_until(half);
        (void)co_await scan.write_checkpoint();
        co_await gp.vm().fs()->sync();
        (void)co_await dep.snapshot_instance(i);
        co_await phase.arrive_and_wait();
      });
    }
    co_await phase.arrive_and_wait();
    for (std::size_t i = 0; i < 2; ++i) co_await dep.vm(i).join_guests();
    out->half_fetch = dep.boot_remote_bytes();
    banner(*cl, "half-scan done, checkpointed (sketch table + scan cursor)");

    (void)co_await session.commit_last("half-scan");
    dep.destroy_all();
    banner(*cl, "fail-stop");
    (void)co_await session.restart(cr::Selector::latest(), /*node_offset=*/2);
    banner(*cl, "restarted on fresh nodes (lazy fetch, no full image copy)");

    sim::Barrier phase2(cl->simulation(), 3);
    for (std::size_t i = 0; i < 2; ++i) {
      dep.vm(i).start_guest("kmer2", [i, kcfg, out,
                                      &phase2](vm::GuestProcess& gp) -> Task<> {
        apps::KmerRank scan(gp, kcfg, static_cast<int>(i));
        co_await scan.init();
        out->restore_ok =
            out->restore_ok && co_await scan.restore_checkpoint();
        co_await scan.scan_all();
        out->digests[i] = scan.state_digest();
        co_await phase2.arrive_and_wait();
      });
    }
    co_await phase2.arrive_and_wait();
    for (std::size_t i = 0; i < 2; ++i) co_await dep.vm(i).join_guests();
    out->restart_fetch = dep.boot_remote_bytes();
    banner(*cl, "scan finished after restart");
  }(&cloud, kcfg, &out));

  std::printf("\nimage size:                  %8.1f MB\n",
              static_cast<double>(out.image_size) / 1e6);
  std::printf("remote bytes at boot:        %8.1f MB per run\n",
              static_cast<double>(out.boot_fetch) / 1e6);
  std::printf("remote bytes after half-scan:%8.1f MB\n",
              static_cast<double>(out.half_fetch) / 1e6);
  std::printf("remote bytes after restart:  %8.1f MB\n",
              static_cast<double>(out.restart_fetch) / 1e6);
  const bool lazy = out.half_fetch < 2 * out.image_size &&
                    out.restart_fetch < 2 * out.image_size;
  std::printf("\nrestore verified: %s; scan resumed and finished: %s\n",
              out.restore_ok ? "YES" : "NO",
              (out.digests[0] != 0 && out.digests[1] != 0) ? "YES" : "NO");
  std::printf("never shipped the full image (2 VMs x %zu MB): %s\n",
              static_cast<std::size_t>(out.image_size / 1'000'000),
              lazy ? "YES" : "NO");
  return out.restore_ok && lazy ? 0 : 1;
}
