// HEP event loop: exactly-once output through disk-snapshot I/O rollback.
//
// Two VM instances each process a stream of collision events, appending a
// record to an append-only result log for every "hit". Midway, the ranks
// checkpoint (state dump + disk snapshot). The run then continues — and the
// cloud fail-stops, losing everything since the checkpoint, *including log
// records that were already synced to the virtual disks*. After the restart,
// the restored disks hold the logs exactly as of the checkpoint, so replaying
// the lost events appends each hit exactly once: no duplicates, no holes.
// With checkpoints on a shared parallel file system, the post-checkpoint
// records would have survived the rollback and appeared twice (§2.2).
//
// Build & run:  ./build/examples/hep_eventloop
#include <cstdio>

#include "apps/hep.h"
#include "core/blobcr.h"
#include "sim/sim.h"

using namespace blobcr;
using sim::Task;

namespace {

void banner(core::Cloud& cloud, const char* msg) {
  std::printf("[t=%8.3fs] %s\n", sim::to_seconds(cloud.simulation().now()),
              msg);
}

constexpr std::size_t kVms = 2;
constexpr std::uint64_t kCkptAt = 800;

apps::HepConfig hep_config() {
  apps::HepConfig cfg;
  cfg.total_events = 1'600;
  cfg.per_event_compute = 200 * sim::kMicrosecond;
  cfg.hit_probability = 0.2;
  cfg.histogram_bytes = 512 * 1024;
  cfg.real_data = true;
  return cfg;
}

}  // namespace

int main() {
  core::CloudConfig cfg;
  cfg.compute_nodes = 6;
  cfg.metadata_nodes = 2;
  cfg.backend = core::Backend::BlobCR;
  cfg.os = vm::GuestOsConfig::test_tiny();
  cfg.vm.os_ram_bytes = 32 * common::kMB;
  core::Cloud cloud(cfg);

  struct PerVm {
    std::uint64_t expect_ckpt = 0, expect_final = 0;
    std::uint64_t at_ckpt = 0, before_crash = 0, after_restore = 0, final = 0;
    bool restore_ok = false;
  };
  std::vector<PerVm> out(kVms);

  cloud.run([](core::Cloud* cl, std::vector<PerVm>* out) -> Task<> {
    co_await cl->provision_base_image();
    core::Deployment dep(*cl, kVms);
    cr::Session session(dep);
    banner(*cl, "deploying 2 VMs, one event-processing rank each");
    co_await dep.deploy_and_boot();

    sim::Barrier phase(cl->simulation(), kVms + 1);
    for (std::size_t i = 0; i < kVms; ++i) {
      dep.vm(i).start_guest("hep", [&dep, i, out,
                                    &phase](vm::GuestProcess& gp) -> Task<> {
        apps::HepRank hep(gp, hep_config(), static_cast<int>(i));
        PerVm& my = (*out)[i];
        co_await hep.init();
        co_await hep.process_until(kCkptAt);
        (void)co_await hep.write_checkpoint();
        co_await gp.vm().fs()->sync();
        (void)co_await dep.snapshot_instance(i);
        my.expect_ckpt = hep.expected_hits(kCkptAt);
        my.at_ckpt = co_await hep.count_log_records();
        // Keep processing past the checkpoint; sync so the records really
        // reach the virtual disk before the crash.
        co_await hep.process_until(hep_config().total_events);
        co_await gp.vm().fs()->sync();
        my.before_crash = co_await hep.count_log_records();
        my.expect_final = hep.expected_hits(hep_config().total_events);
        co_await phase.arrive_and_wait();
      });
    }
    co_await phase.arrive_and_wait();
    for (std::size_t i = 0; i < kVms; ++i) co_await dep.vm(i).join_guests();
    banner(*cl, "checkpoint taken at event 800; run continued to 1600");

    (void)co_await session.commit_last("event-800");
    dep.destroy_all();
    banner(*cl, "fail-stop: all instances and their disks are gone");

    (void)co_await session.restart(cr::Selector::latest(),
                                   /*node_offset=*/kVms);
    banner(*cl, "restarted from disk snapshots on fresh nodes");

    sim::Barrier phase2(cl->simulation(), kVms + 1);
    for (std::size_t i = 0; i < kVms; ++i) {
      dep.vm(i).start_guest("hep-replay",
                            [i, out, &phase2](vm::GuestProcess& gp) -> Task<> {
        apps::HepRank hep(gp, hep_config(), static_cast<int>(i));
        PerVm& my = (*out)[i];
        my.restore_ok = co_await hep.restore_checkpoint();
        my.after_restore = co_await hep.count_log_records();
        co_await hep.process_until(hep_config().total_events);
        co_await gp.vm().fs()->sync();
        my.final = co_await hep.count_log_records();
        co_await phase2.arrive_and_wait();
      });
    }
    co_await phase2.arrive_and_wait();
    for (std::size_t i = 0; i < kVms; ++i) co_await dep.vm(i).join_guests();
    banner(*cl, "lost events replayed");
  }(&cloud, &out));

  std::printf("\n%-4s %12s %14s %14s %12s %10s\n", "vm", "log@ckpt",
              "log@crash", "log@restore", "log final", "expected");
  bool ok = true;
  for (std::size_t i = 0; i < kVms; ++i) {
    const PerVm& my = out[i];
    std::printf("%-4zu %12llu %14llu %14llu %12llu %10llu\n", i,
                static_cast<unsigned long long>(my.at_ckpt),
                static_cast<unsigned long long>(my.before_crash),
                static_cast<unsigned long long>(my.after_restore),
                static_cast<unsigned long long>(my.final),
                static_cast<unsigned long long>(my.expect_final));
    ok = ok && my.restore_ok && my.at_ckpt == my.expect_ckpt &&
         my.after_restore == my.expect_ckpt && my.final == my.expect_final;
  }
  std::printf("\nexactly-once output after rollback + replay: %s\n",
              ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
