// Tests for the VM layer: image build + boot, pause/resume gating, guest
// processes, RAM accounting, destroy semantics.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "img/mem_device.h"
#include "sim/sim.h"
#include "vm/guest_os.h"
#include "vm/vm_instance.h"

namespace blobcr::vm {
namespace {

using common::Buffer;
using sim::Simulation;
using sim::Task;
using sim::Time;

struct TestVm {
  Simulation sim;
  img::MemDevice dev{64 * 1024 * 1024};
  std::unique_ptr<VmInstance> vm;

  TestVm() {
    VmConfig cfg;
    cfg.name = "vm0";
    cfg.os_ram_bytes = 100 * common::kMB;
    vm = std::make_unique<VmInstance>(sim, /*host=*/0, dev, cfg);
  }

  void run(Task<> t) {
    auto p = sim.spawn("test", std::move(t));
    sim.run();
    if (p->error()) std::rethrow_exception(p->error());
  }
};

TEST(GuestOsTest, BuildAndBoot) {
  TestVm t;
  t.run([](TestVm& tv) -> Task<> {
    const GuestOsConfig cfg = GuestOsConfig::test_tiny();
    co_await GuestOs::build_image(tv.dev, cfg);
    co_await GuestOs::boot(*tv.vm, cfg);
  }(t));
  ASSERT_NE(t.vm->fs(), nullptr);
  EXPECT_TRUE(t.vm->fs()->exists("/boot/vmlinuz"));
  EXPECT_TRUE(t.vm->fs()->exists("/var/log/boot000.log"));
  // Boot consumed CPU time.
  EXPECT_GE(t.sim.now(), sim::kSecond);
}

TEST(GuestOsTest, BootReadsHotSet) {
  TestVm t;
  t.run([](TestVm& tv) -> Task<> {
    const GuestOsConfig cfg = GuestOsConfig::test_tiny();
    co_await GuestOs::build_image(tv.dev, cfg);
    co_await GuestOs::boot(*tv.vm, cfg);
  }(t));
  // Hot files were read with real content (test_tiny is non-phantom).
  const GuestOsConfig cfg = GuestOsConfig::test_tiny();
  EXPECT_GT(cfg.hot_set_bytes(), 0u);
}

TEST(GuestOsTest, ImageContentIsReadableByFreshMount) {
  TestVm t;
  bool ok = false;
  t.run([](TestVm& tv, bool& result) -> Task<> {
    const GuestOsConfig cfg = GuestOsConfig::test_tiny();
    co_await GuestOs::build_image(tv.dev, cfg);
    auto fs = co_await guestfs::SimpleFs::mount(tv.dev);
    const Buffer kernel = co_await fs->read_file("/boot/vmlinuz");
    result = kernel.size() == 2 * common::kMB && !kernel.is_phantom();
  }(t, ok));
  EXPECT_TRUE(ok);
}

Task<> gated_worker(VmInstance& vm, std::vector<Time>& progress) {
  for (int i = 0; i < 4; ++i) {
    co_await vm.guest_compute(100);
    progress.push_back(vm.simulation().now());
  }
}

TEST(GuestOsTest, CustomFilesGetParentDirectoriesCreated) {
  // Applications may add files anywhere in the image tree (e.g. the k-mer
  // scan's reference dataset); build_image must create missing parents.
  TestVm t;
  bool ok = false;
  t.run([](TestVm& tv, bool& result) -> Task<> {
    GuestOsConfig cfg = GuestOsConfig::test_tiny();
    cfg.files.push_back({"/srv/refdata/deep/genome.seq", 128 * 1024, false});
    co_await GuestOs::build_image(tv.dev, cfg);
    auto fs = co_await guestfs::SimpleFs::mount(tv.dev);
    const Buffer ref = co_await fs->read_file("/srv/refdata/deep/genome.seq");
    result = ref.size() == 128 * 1024 && fs->stat("/srv").is_dir &&
             fs->stat("/srv/refdata").is_dir &&
             fs->stat("/srv/refdata/deep").is_dir;
  }(t, ok));
  EXPECT_TRUE(ok);
}

TEST(VmInstanceTest, PauseStallsGuestCompute) {
  TestVm t;
  std::vector<Time> progress;
  auto p = t.sim.spawn("guest", gated_worker(*t.vm, progress));
  t.sim.call_at(150, [&] { t.vm->pause(); });
  t.sim.call_at(1000, [&] { t.vm->resume(); });
  t.sim.run();
  ASSERT_FALSE(p->error());
  ASSERT_EQ(progress.size(), 4u);
  EXPECT_EQ(progress[0], 100);
  EXPECT_EQ(progress[1], 200);  // in flight when pause hit: completes
  // Next compute was gated until resume at t=1000.
  EXPECT_EQ(progress[2], 1100);
  EXPECT_EQ(progress[3], 1200);
}

TEST(VmInstanceTest, RamAccountingIncludesGuestRegions) {
  TestVm t;
  const std::uint64_t base = t.vm->ram_state_bytes();
  EXPECT_EQ(base, 100 * common::kMB);
  t.vm->start_guest("proc", [](GuestProcess& gp) -> Task<> {
    gp.set_region("buffer", Buffer::phantom(50 * common::kMB));
    co_return;
  });
  t.sim.run();
  EXPECT_EQ(t.vm->ram_state_bytes(),
            100 * common::kMB + 50 * common::kMB +
                t.vm->config().process_overhead_bytes);
}

TEST(VmInstanceTest, DestroyKillsGuests) {
  TestVm t;
  bool finished = false;
  t.vm->start_guest("proc", [&finished](GuestProcess& gp) -> Task<> {
    co_await gp.compute(1'000'000);
    finished = true;
  });
  t.sim.call_at(100, [&] { t.vm->destroy(); });
  t.sim.run();
  EXPECT_FALSE(finished);
  EXPECT_TRUE(t.vm->destroyed());
  EXPECT_EQ(t.vm->guest_procs()[0]->state(), sim::Process::State::Killed);
}

TEST(VmInstanceTest, JoinGuestsPropagatesCompletion) {
  TestVm t;
  int done = 0;
  t.run([](TestVm& tv, int& count) -> Task<> {
    tv.vm->start_guest("a", [&count](GuestProcess& gp) -> Task<> {
      co_await gp.compute(10);
      ++count;
    });
    tv.vm->start_guest("b", [&count](GuestProcess& gp) -> Task<> {
      co_await gp.compute(20);
      ++count;
    });
    co_await tv.vm->join_guests();
  }(t, done));
  EXPECT_EQ(done, 2);
}

}  // namespace
}  // namespace blobcr::vm
