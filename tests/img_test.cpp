// Tests for the qcow2-style image: COW semantics, backing files, copy-up,
// internal snapshots (savevm/loadvm), container growth accounting.
#include <gtest/gtest.h>

#include <memory>

#include "img/qcow.h"
#include "sim/sim.h"
#include "storage/byte_store.h"
#include "storage/disk.h"

namespace blobcr::img {
namespace {

using common::Buffer;
using sim::Simulation;
using sim::Task;

constexpr std::uint64_t kCluster = 1024;

struct TestImg {
  Simulation sim;
  std::unique_ptr<storage::Disk> disk;
  std::unique_ptr<storage::LocalFile> base_file;
  std::unique_ptr<storage::LocalFile> container;
  std::unique_ptr<QcowImage> image;

  explicit TestImg(std::uint64_t virtual_size = 16 * kCluster,
                   bool with_backing = true) {
    storage::Disk::Config dcfg;
    dcfg.bandwidth_bps = 1e9;
    dcfg.position_cost = 0;
    disk = std::make_unique<storage::Disk>(sim, "d", dcfg);
    container = std::make_unique<storage::LocalFile>(*disk, 1);
    QcowImage::Config cfg;
    cfg.cluster_size = kCluster;
    cfg.virtual_size = virtual_size;
    if (with_backing) {
      base_file = std::make_unique<storage::LocalFile>(*disk, 2);
    }
    image = std::make_unique<QcowImage>(*container, base_file.get(), cfg);
  }

  /// Fills the backing store with a pattern (simulating the base OS image).
  void fill_backing(std::uint64_t bytes, std::uint64_t seed) {
    run([](TestImg& t, std::uint64_t n, std::uint64_t s) -> Task<> {
      co_await t.base_file->write(0, Buffer::pattern(n, s));
    }(*this, bytes, seed));
  }

  void run(Task<> t) {
    auto p = sim.spawn("test", std::move(t));
    sim.run();
    if (p->error()) std::rethrow_exception(p->error());
  }
};

TEST(QcowTest, UnallocatedReadsFallThroughToBacking) {
  TestImg t;
  t.fill_backing(8 * kCluster, 1);
  bool ok = false;
  t.run([](TestImg& ti, bool& result) -> Task<> {
    const Buffer b = co_await ti.image->read(kCluster, 2 * kCluster);
    result = (b == Buffer::pattern(8 * kCluster, 1).slice(kCluster, 2 * kCluster));
  }(t, ok));
  EXPECT_TRUE(ok);
  EXPECT_EQ(t.image->allocated_clusters(), 0u);
}

TEST(QcowTest, ReadsWithoutBackingAreZeros) {
  TestImg t(16 * kCluster, /*with_backing=*/false);
  bool ok = false;
  t.run([](TestImg& ti, bool& result) -> Task<> {
    const Buffer b = co_await ti.image->read(0, 100);
    result = (b == Buffer::zeros(100));
  }(t, ok));
  EXPECT_TRUE(ok);
}

TEST(QcowTest, WriteThenReadHitsLocalCluster) {
  TestImg t;
  t.fill_backing(8 * kCluster, 1);
  bool ok = false;
  t.run([](TestImg& ti, bool& result) -> Task<> {
    co_await ti.image->write(0, Buffer::pattern(kCluster, 2));
    const Buffer b = co_await ti.image->read(0, kCluster);
    result = (b == Buffer::pattern(kCluster, 2));
  }(t, ok));
  EXPECT_TRUE(ok);
  EXPECT_EQ(t.image->allocated_clusters(), 1u);
}

TEST(QcowTest, PartialWriteCopiesUpFromBacking) {
  TestImg t;
  t.fill_backing(8 * kCluster, 1);
  bool ok = false;
  t.run([](TestImg& ti, bool& result) -> Task<> {
    // Write 100 bytes mid-cluster: the rest must come from backing.
    co_await ti.image->write(kCluster + 200, Buffer::pattern(100, 3));
    const Buffer b = co_await ti.image->read(kCluster, kCluster);
    Buffer expect = Buffer::pattern(8 * kCluster, 1).slice(kCluster, kCluster);
    expect.overwrite(200, Buffer::pattern(100, 3));
    result = (b == expect);
  }(t, ok));
  EXPECT_TRUE(ok);
}

TEST(QcowTest, InPlaceUpdateDoesNotGrowContainer) {
  TestImg t;
  t.fill_backing(8 * kCluster, 1);
  std::uint64_t after_first = 0;
  std::uint64_t after_second = 0;
  t.run([](TestImg& ti, std::uint64_t& a, std::uint64_t& b) -> Task<> {
    co_await ti.image->write(0, Buffer::pattern(kCluster, 2));
    a = ti.image->container_bytes();
    co_await ti.image->write(100, Buffer::pattern(50, 3));
    b = ti.image->container_bytes();
  }(t, after_first, after_second));
  EXPECT_EQ(after_first, after_second);
}

TEST(QcowTest, SnapshotFreezesClustersCowOnNextWrite) {
  TestImg t;
  t.fill_backing(8 * kCluster, 1);
  std::uint64_t before = 0;
  std::uint64_t after = 0;
  t.run([](TestImg& ti, std::uint64_t& b, std::uint64_t& a) -> Task<> {
    co_await ti.image->write(0, Buffer::pattern(kCluster, 2));
    co_await ti.image->save_vm_state(Buffer::pattern(100, 9));
    b = ti.image->container_bytes();
    // Rewriting the frozen cluster must allocate a new one.
    co_await ti.image->write(0, Buffer::pattern(kCluster, 4));
    a = ti.image->container_bytes();
  }(t, before, after));
  EXPECT_EQ(after - before, kCluster);
}

TEST(QcowTest, LoadVmStateRollsDiskBack) {
  TestImg t;
  t.fill_backing(8 * kCluster, 1);
  bool state_ok = false;
  bool disk_ok = false;
  t.run([](TestImg& ti, bool& s_ok, bool& d_ok) -> Task<> {
    co_await ti.image->write(0, Buffer::pattern(kCluster, 2));
    co_await ti.image->save_vm_state(Buffer::pattern(500, 9));
    // Post-snapshot damage that must be rolled back.
    co_await ti.image->write(0, Buffer::pattern(kCluster, 5));
    const Buffer state = co_await ti.image->load_vm_state();
    s_ok = (state == Buffer::pattern(500, 9));
    const Buffer disk = co_await ti.image->read(0, kCluster);
    d_ok = (disk == Buffer::pattern(kCluster, 2));
  }(t, state_ok, disk_ok));
  EXPECT_TRUE(state_ok);
  EXPECT_TRUE(disk_ok);
}

TEST(QcowTest, ContainerOnlyGrows) {
  TestImg t;
  t.fill_backing(8 * kCluster, 1);
  std::vector<std::uint64_t> sizes;
  t.run([](TestImg& ti, std::vector<std::uint64_t>& out) -> Task<> {
    for (int round = 0; round < 4; ++round) {
      co_await ti.image->write(0, Buffer::pattern(2 * kCluster, 10 + round));
      co_await ti.image->save_vm_state(Buffer::pattern(3 * kCluster, 50 + round));
      out.push_back(ti.image->container_bytes());
    }
  }(t, sizes));
  ASSERT_EQ(sizes.size(), 4u);
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_GT(sizes[i], sizes[i - 1]);
  }
  EXPECT_EQ(t.image->snapshot_count(), 4u);
}

TEST(QcowTest, MetadataBytesGrowWithL2Tables) {
  TestImg t(/*virtual=*/3 * 8192 * kCluster);
  std::uint64_t meta0 = t.image->metadata_bytes();
  t.run([](TestImg& ti) -> Task<> {
    co_await ti.image->write(0, Buffer::pattern(kCluster, 1));
    // Far-away cluster: needs a second L2 table.
    co_await ti.image->write(2 * 8192 * kCluster, Buffer::pattern(kCluster, 2));
  }(t));
  EXPECT_EQ(t.image->metadata_bytes() - meta0, 2 * kCluster);
}

TEST(QcowTest, WriteBeyondVirtualSizeThrows) {
  TestImg t(4 * kCluster);
  bool threw = false;
  t.run([](TestImg& ti, bool& result) -> Task<> {
    try {
      co_await ti.image->write(4 * kCluster, Buffer::pattern(10, 1));
    } catch (const std::runtime_error&) {
      result = true;
    }
  }(t, threw));
  EXPECT_TRUE(threw);
}

TEST(QcowTest, PhantomWritesKeepAccounting) {
  TestImg t;
  bool ok = false;
  t.run([](TestImg& ti, bool& result) -> Task<> {
    co_await ti.image->write(0, Buffer::phantom(4 * kCluster));
    const Buffer b = co_await ti.image->read(0, 4 * kCluster);
    result = b.is_phantom();
  }(t, ok));
  EXPECT_TRUE(ok);
  EXPECT_EQ(t.image->allocated_clusters(), 4u);
  EXPECT_EQ(t.image->guest_bytes_written(), 4 * kCluster);
}

TEST(QcowTest, RawDevicePassThrough) {
  TestImg t;
  bool ok = false;
  t.run([](TestImg& ti, bool& result) -> Task<> {
    RawDevice dev(*ti.container, 16 * kCluster);
    co_await dev.write(10, Buffer::pattern(100, 1));
    const Buffer b = co_await dev.read(10, 100);
    result = (b == Buffer::pattern(100, 1)) && dev.capacity() == 16 * kCluster;
  }(t, ok));
  EXPECT_TRUE(ok);
}

TEST(QcowTest, QcowDeviceAdapter) {
  TestImg t;
  t.fill_backing(8 * kCluster, 1);
  bool ok = false;
  t.run([](TestImg& ti, bool& result) -> Task<> {
    QcowDevice dev(*ti.image);
    co_await dev.write(0, Buffer::pattern(100, 6));
    const Buffer b = co_await dev.read(0, 100);
    result = (b == Buffer::pattern(100, 6)) &&
             dev.capacity() == ti.image->virtual_size();
  }(t, ok));
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace blobcr::img
