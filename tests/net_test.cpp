// Tests for the network fabric: latency, fair sharing at tx/rx ports,
// incast, cancellation, RPC service serialization.
#include <gtest/gtest.h>

#include <vector>

#include "net/fabric.h"
#include "net/service.h"
#include "sim/sim.h"

namespace blobcr::net {
namespace {

using sim::Duration;
using sim::Simulation;
using sim::Task;
using sim::Time;
using sim::seconds;
using sim::to_seconds;

Fabric::Config test_cfg(std::size_t nodes, double bw = 100.0,
                        Duration lat = 0) {
  Fabric::Config cfg;
  cfg.node_count = nodes;
  cfg.nic_bandwidth_bps = bw;
  cfg.latency = lat;
  return cfg;
}

Task<> do_transfer(Simulation& s, Fabric& f, NodeId src, NodeId dst,
                   std::uint64_t bytes, std::vector<Time>& done) {
  co_await f.transfer(src, dst, bytes);
  done.push_back(s.now());
}

TEST(FabricTest, SingleTransferLatencyPlusBandwidth) {
  Simulation s;
  Fabric f(s, test_cfg(2, 100.0, sim::milliseconds(5)));
  std::vector<Time> done;
  s.spawn("t", do_transfer(s, f, 0, 1, 200, done));
  s.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(to_seconds(done[0]), 0.005 + 2.0, 1e-6);
}

TEST(FabricTest, LoopbackPaysLatencyOnly) {
  Simulation s;
  Fabric f(s, test_cfg(2, 100.0, sim::milliseconds(5)));
  std::vector<Time> done;
  s.spawn("t", do_transfer(s, f, 0, 0, 1'000'000, done));
  s.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(to_seconds(done[0]), 0.005, 1e-9);
}

TEST(FabricTest, TwoFlowsShareTxPort) {
  Simulation s;
  Fabric f(s, test_cfg(3));
  std::vector<Time> done;
  s.spawn("t1", do_transfer(s, f, 0, 1, 100, done));
  s.spawn("t2", do_transfer(s, f, 0, 2, 100, done));
  s.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(to_seconds(done[0]), 2.0, 1e-6);
  EXPECT_NEAR(to_seconds(done[1]), 2.0, 1e-6);
}

TEST(FabricTest, DisjointPairsRunAtFullRate) {
  Simulation s;
  Fabric f(s, test_cfg(4));
  std::vector<Time> done;
  s.spawn("t1", do_transfer(s, f, 0, 1, 100, done));
  s.spawn("t2", do_transfer(s, f, 2, 3, 100, done));
  s.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(to_seconds(done[0]), 1.0, 1e-6);
  EXPECT_NEAR(to_seconds(done[1]), 1.0, 1e-6);
}

TEST(FabricTest, IncastSharesRxPort) {
  Simulation s;
  Fabric f(s, test_cfg(5));
  std::vector<Time> done;
  // 4 senders, one receiver: each gets rx_cap/4.
  for (NodeId n = 1; n <= 4; ++n) {
    s.spawn("t", do_transfer(s, f, n, 0, 100, done));
  }
  s.run();
  ASSERT_EQ(done.size(), 4u);
  for (const Time t : done) EXPECT_NEAR(to_seconds(t), 4.0, 1e-6);
}

TEST(FabricTest, BottleneckIsMinOfPorts) {
  Simulation s;
  Fabric f(s, test_cfg(4));
  std::vector<Time> done;
  // Flows: A(0->2), B(1->2) contend at rx of 2. C(0->3) contends with A at
  // tx of 0. A's rate = min(100/2, 100/2) = 50. C's = min(50, 100) = 50.
  s.spawn("A", do_transfer(s, f, 0, 2, 100, done));
  s.spawn("B", do_transfer(s, f, 1, 2, 100, done));
  s.spawn("C", do_transfer(s, f, 0, 3, 100, done));
  s.run();
  ASSERT_EQ(done.size(), 3u);
  // A and B and C all at 50 B/s initially; total 100 bytes each -> all ~2s.
  for (const Time t : done) EXPECT_NEAR(to_seconds(t), 2.0, 0.05);
}

Task<> transfer_after(Simulation& s, Fabric& f, Duration start, NodeId src,
                      NodeId dst, std::uint64_t bytes, std::vector<Time>& done) {
  co_await s.delay(start);
  co_await f.transfer(src, dst, bytes);
  done.push_back(s.now());
}

TEST(FabricTest, DepartureSpeedsUpRemaining) {
  Simulation s;
  Fabric f(s, test_cfg(3));
  std::vector<Time> done;
  s.spawn("small", do_transfer(s, f, 0, 1, 50, done));
  s.spawn("large", do_transfer(s, f, 0, 2, 150, done));
  s.run();
  ASSERT_EQ(done.size(), 2u);
  // Both at 50 B/s. Small finishes at t=1 (50 bytes). Large then speeds to
  // 100 B/s with 100 bytes left -> finishes at t=2.
  EXPECT_NEAR(to_seconds(done[0]), 1.0, 1e-6);
  EXPECT_NEAR(to_seconds(done[1]), 2.0, 1e-3);
}

TEST(FabricTest, LateArrivalSlowsExistingFlow) {
  Simulation s;
  Fabric f(s, test_cfg(3));
  std::vector<Time> done;
  s.spawn("a", do_transfer(s, f, 0, 1, 200, done));
  s.spawn("b", transfer_after(s, f, seconds(1), 0, 2, 100, done));
  s.run();
  ASSERT_EQ(done.size(), 2u);
  // a: 100 bytes alone in [0,1], then 100 bytes at 50 B/s -> t=3.
  // b: 100 bytes at 50 B/s from t=1 -> t=3.
  EXPECT_NEAR(to_seconds(done[0]), 3.0, 1e-3);
  EXPECT_NEAR(to_seconds(done[1]), 3.0, 1e-3);
}

TEST(FabricTest, KillCancelsFlowAndFreesBandwidth) {
  Simulation s;
  Fabric f(s, test_cfg(3));
  std::vector<Time> done;
  auto hog = s.spawn("hog", do_transfer(s, f, 0, 1, 10'000, done));
  s.spawn("small", do_transfer(s, f, 0, 2, 100, done));
  s.call_at(seconds(1), [&] { hog->kill(); });
  s.run();
  ASSERT_EQ(done.size(), 1u);
  // small: 50 bytes in [0,1], then 50 bytes at full 100 B/s -> 1.5 s.
  EXPECT_NEAR(to_seconds(done[0]), 1.5, 1e-3);
  EXPECT_EQ(f.active_flows(), 0u);
}

TEST(FabricTest, TracksTotalBytes) {
  Simulation s;
  Fabric f(s, test_cfg(2));
  std::vector<Time> done;
  s.spawn("t", do_transfer(s, f, 0, 1, 123, done));
  s.run();
  EXPECT_EQ(f.total_bytes(), 123u);
}

Task<> do_shaped(Simulation& s, Fabric& f, NodeId src, NodeId dst,
                 std::uint64_t bytes, Fabric::Shape shape,
                 std::vector<Time>& done) {
  co_await f.transfer(src, dst, bytes, shape);
  done.push_back(s.now());
}

// A shaped flow pays its traffic class's one-way latency instead of the
// fabric default, and its rate never exceeds the class cap even when the
// NIC fair share is larger (the WAN class the federation replicator uses).
TEST(FabricShapeTest, ShapedTransferPaysClassLatencyAndRateCap) {
  Simulation s;
  Fabric f(s, test_cfg(2, 100.0, sim::milliseconds(5)));
  std::vector<Time> done;
  Fabric::Shape wan;
  wan.latency = sim::milliseconds(100);
  wan.rate_cap_bps = 10.0;
  s.spawn("wan", do_shaped(s, f, 0, 1, 100, wan, done));
  s.run();
  ASSERT_EQ(done.size(), 1u);
  // 100 ms class latency (not the 5 ms fabric default) + 100 B at 10 B/s.
  EXPECT_NEAR(to_seconds(done[0]), 0.100 + 10.0, 1e-6);
}

// A zero class latency falls back to the fabric default; a cap above the
// fair share is inert — the flow is NIC-limited as if unshaped.
TEST(FabricShapeTest, ShapeDefaultsFallBackToFabricBehaviour) {
  Simulation s;
  Fabric f(s, test_cfg(2, 100.0, sim::milliseconds(5)));
  std::vector<Time> done;
  Fabric::Shape loose;
  loose.rate_cap_bps = 1000.0;  // above the 100 B/s NIC: never binds
  s.spawn("t", do_shaped(s, f, 0, 1, 200, loose, done));
  s.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(to_seconds(done[0]), 0.005 + 2.0, 1e-6);
}

// Two asymmetric traffic classes on disjoint node pairs: a high-latency,
// tightly capped WAN class and a low-latency peer class finish at the times
// their own shapes dictate — neither inherits the other's parameters.
TEST(FabricShapeTest, AsymmetricTrafficClassesCompleteIndependently) {
  Simulation s;
  Fabric f(s, test_cfg(5, 100.0, 0));
  std::vector<Time> done_wan, done_peer;
  Fabric::Shape wan;
  wan.latency = sim::milliseconds(100);
  wan.rate_cap_bps = 10.0;
  Fabric::Shape peer;
  peer.latency = sim::milliseconds(1);
  peer.rate_cap_bps = 50.0;
  s.spawn("wan", do_shaped(s, f, 0, 1, 100, wan, done_wan));
  s.spawn("peer", do_shaped(s, f, 2, 3, 100, peer, done_peer));
  s.run();
  ASSERT_EQ(done_wan.size(), 1u);
  ASSERT_EQ(done_peer.size(), 1u);
  EXPECT_NEAR(to_seconds(done_wan[0]), 0.100 + 10.0, 1e-6);
  EXPECT_NEAR(to_seconds(done_peer[0]), 0.001 + 2.0, 1e-6);
}

// Non-starvation: a long capped WAN flow sharing a tx port with an uncapped
// local flow neither starves it nor is starved. The local flow keeps its
// count-based fair share (cap/2) and finishes on schedule; the WAN flow
// crawls along at its cap the whole time.
TEST(FabricShapeTest, CappedWanFlowDoesNotStarveUncappedPeer) {
  Simulation s;
  Fabric f(s, test_cfg(3, 100.0, 0));
  std::vector<Time> done_wan, done_local;
  Fabric::Shape wan;
  wan.rate_cap_bps = 10.0;
  s.spawn("wan", do_shaped(s, f, 0, 1, 1000, wan, done_wan));
  s.spawn("local", do_transfer(s, f, 0, 2, 100, done_local));
  s.run();
  ASSERT_EQ(done_wan.size(), 1u);
  ASSERT_EQ(done_local.size(), 1u);
  // Local: 100 B at the 50 B/s fair share -> 2 s, unaffected by the cap.
  EXPECT_NEAR(to_seconds(done_local[0]), 2.0, 1e-3);
  // WAN: 1000 B pinned at 10 B/s even after the port frees up -> 100 s.
  EXPECT_NEAR(to_seconds(done_wan[0]), 100.0, 1e-2);
}

Task<> one_rpc(Simulation& s, Fabric& f, ServiceQueue& svc, NodeId client,
               std::vector<Time>& done) {
  co_await rpc(f, svc, client, 0, 100, 100);
  done.push_back(s.now());
}

TEST(ServiceQueueTest, SerializesRequests) {
  Simulation s;
  Fabric f(s, test_cfg(3, 1e9, 0));  // effectively instant network
  ServiceQueue svc(s, "meta", sim::milliseconds(10));
  std::vector<Time> done;
  s.spawn("c1", one_rpc(s, f, svc, 1, done));
  s.spawn("c2", one_rpc(s, f, svc, 2, done));
  s.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(to_seconds(done[0]), 0.010, 1e-3);
  EXPECT_NEAR(to_seconds(done[1]), 0.020, 1e-3);
  EXPECT_EQ(svc.requests_served(), 2u);
}

TEST(ServiceQueueTest, MultipleWorkersOverlap) {
  Simulation s;
  Fabric f(s, test_cfg(3, 1e9, 0));
  ServiceQueue svc(s, "meta", sim::milliseconds(10), /*workers=*/2);
  std::vector<Time> done;
  s.spawn("c1", one_rpc(s, f, svc, 1, done));
  s.spawn("c2", one_rpc(s, f, svc, 2, done));
  s.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(to_seconds(done[1]), 0.010, 1e-3);
}

}  // namespace
}  // namespace blobcr::net
