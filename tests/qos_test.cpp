// End-to-end QoS tests for the repository admission plane (qos/admission.h):
// the unified qos::Config validates as a unit and absorbs the deprecated
// CloudConfig knob; the provider-io gate holds weighted fairness when the
// data-provider pool (not the commit gate) is the bottleneck; admission is
// kill-safe at every gate class; a mass-rollback storm and live commits
// share the plane without starving each other in either direction; and
// restart-prefetch workers killed at deployment teardown release their
// admission permits (the leak that would wedge the next restart).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "apps/multi_job.h"
#include "blob/data_provider.h"
#include "blob/store.h"
#include "common/strutil.h"
#include "core/blobcr.h"
#include "cr/session.h"
#include "qos/admission.h"
#include "sim/sim.h"

namespace blobcr {
namespace {

using common::Buffer;
using core::Backend;
using core::Cloud;
using core::CloudConfig;
using core::Deployment;
using sim::Task;

// ---------------------------------------------------------------------------
// qos::Config — one validated knob set, with the deprecated CloudConfig
// alias forwarding for exactly one release.
// ---------------------------------------------------------------------------

TEST(QosConfigTest, ValidateRejectsFairnessWithEveryGateUnbounded) {
  qos::Config cfg;
  EXPECT_NO_THROW(cfg.validate());  // disabled + unbounded is the default
  cfg.enabled = true;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.commit_slots = 2;
  EXPECT_NO_THROW(cfg.validate());
  cfg.commit_slots = 0;
  cfg.prefetch_slots = 1;
  EXPECT_NO_THROW(cfg.validate());

  // The plane itself refuses to be built around an incoherent config...
  sim::Simulation sim;
  qos::Config bad;
  bad.enabled = true;
  EXPECT_THROW(qos::AdmissionPlane(sim, bad), std::invalid_argument);

  // ...and so does a Cloud, at construction rather than mid-run.
  CloudConfig ccfg;
  ccfg.compute_nodes = 4;
  ccfg.backend = Backend::BlobCR;
  ccfg.qos.enabled = true;
  EXPECT_THROW(Cloud cloud(ccfg), std::invalid_argument);
}

TEST(QosConfigTest, DeprecatedBudgetAliasForwardsUnlessNewKnobSet) {
  CloudConfig base;
  base.compute_nodes = 4;
  base.backend = Backend::BlobCR;
  base.os = vm::GuestOsConfig::test_tiny();

  // Old knob alone: forwards into the unified config.
  CloudConfig old_only = base;
  old_only.restart_prefetch_budget = 1 * common::kMB;
  Cloud c1(old_only);
  EXPECT_EQ(c1.config().qos.restart_prefetch_budget, 1 * common::kMB);

  // Both set: the new knob wins; the alias is ignored.
  CloudConfig both = base;
  both.restart_prefetch_budget = 1 * common::kMB;
  both.qos.restart_prefetch_budget = 2 * common::kMB;
  Cloud c2(both);
  EXPECT_EQ(c2.config().qos.restart_prefetch_budget, 2 * common::kMB);
}

// ---------------------------------------------------------------------------
// Provider-io gate: weighted fairness where the disk, not the commit gate,
// is the bottleneck. One provider, one admission slot, a slow disk: a small
// tenant's single store overtakes a bulk tenant's backlog in fair mode and
// waits it out in FIFO mode at identical capacity.
// ---------------------------------------------------------------------------

struct ProviderCluster {
  sim::Simulation sim;
  std::unique_ptr<net::Fabric> fabric;
  std::vector<std::unique_ptr<storage::Disk>> disks;
  std::unique_ptr<blob::BlobStore> store;
  net::NodeId client_node = 0;

  explicit ProviderCluster(bool fair) {
    net::Fabric::Config fcfg;
    fcfg.node_count = 6;
    fcfg.nic_bandwidth_bps = 1e9;
    fcfg.latency = 100 * sim::kMicrosecond;
    fabric = std::make_unique<net::Fabric>(sim, fcfg);

    blob::BlobStore::Config cfg;
    cfg.version_manager_node = 0;
    cfg.provider_manager_node = 1;
    cfg.metadata_nodes = {2, 3};
    storage::Disk::Config dcfg;
    dcfg.bandwidth_bps = 2e7;  // 20 MB/s: the disk is the bottleneck
    dcfg.position_cost = sim::kMillisecond;
    disks.push_back(std::make_unique<storage::Disk>(sim, "disk4", dcfg));
    cfg.data_providers.push_back({4, disks.back().get(), 1});
    cfg.qos.enabled = fair;
    cfg.qos.provider_slots = 1;  // identical capacity in both modes
    store = std::make_unique<blob::BlobStore>(sim, *fabric, cfg);
    client_node = 5;
  }
};

Task<> store_one(ProviderCluster* tc, net::TenantId tenant, blob::ChunkId id,
                 std::uint64_t bytes, sim::Duration pre_delay,
                 sim::Time* done) {
  if (pre_delay > 0) co_await tc->sim.delay(pre_delay);
  blob::DataProvider* p = tc->store->provider_at(4);
  co_await p->store(tc->client_node, id, Buffer::pattern(bytes, id),
                    qos::IoContext{tenant, qos::GateClass::ProviderIo});
  if (done != nullptr) *done = tc->sim.now();
}

TEST(QosProviderGateTest, SmallStoreOvertakesBulkBacklogOnlyUnderFairness) {
  sim::Time small_done_fair = 0;
  sim::Time small_done_fifo = 0;
  for (const bool fair : {true, false}) {
    ProviderCluster tc(fair);
    const net::TenantId bulk = tc.store->tenants().register_tenant("bulk");
    const net::TenantId small = tc.store->tenants().register_tenant("small");

    sim::Time small_done = 0;
    std::vector<sim::Time> bulk_done(4, 0);
    for (std::size_t i = 0; i < bulk_done.size(); ++i) {
      tc.sim.spawn("bulk", store_one(&tc, bulk, 100 + i, 256 * 1024, 0,
                                     &bulk_done[i]));
    }
    tc.sim.spawn("small", store_one(&tc, small, 200, 64 * 1024,
                                    5 * sim::kMillisecond, &small_done));
    tc.sim.run();

    const net::FairGate& gate =
        tc.store->admission().gate(qos::GateClass::ProviderIo);
    EXPECT_EQ(gate.admitted(small), 1u);
    EXPECT_EQ(gate.admitted(bulk), 4u);
    EXPECT_EQ(gate.in_use(), 0u);
    EXPECT_EQ(gate.pending(), 0u);

    const sim::Time bulk_last =
        *std::max_element(bulk_done.begin(), bulk_done.end());
    if (fair) {
      // Admitted right after the in-flight bulk store drains, ahead of the
      // backlog: the small tenant has no accumulated normalized service.
      EXPECT_LT(small_done, bulk_last)
          << "fair provider gate kept the small store behind the backlog";
      EXPECT_LT(tc.store->admission().wait(qos::GateClass::ProviderIo, small),
                tc.store->admission().wait(qos::GateClass::ProviderIo, bulk));
      small_done_fair = small_done;
    } else {
      EXPECT_GT(small_done, bulk_last)
          << "FIFO baseline should drain arrivals in order";
      small_done_fifo = small_done;
    }
  }
  // Same capacity, different ordering policy: fairness is strictly better
  // for the small tenant's latency.
  EXPECT_LT(small_done_fair, small_done_fifo);
}

// ---------------------------------------------------------------------------
// Kill-safety at every gate class, through AdmissionPlane::admit: a waiter
// killed in the queue unlinks, a holder killed mid-service releases through
// the RAII permit, and the survivor is admitted the moment the slot frees.
// ---------------------------------------------------------------------------

Task<> admit_and_hold(sim::Simulation* sim, qos::AdmissionPlane* plane,
                      qos::IoContext ctx, sim::Duration pre_delay,
                      sim::Duration hold_time, sim::Time* admitted) {
  if (pre_delay > 0) co_await sim->delay(pre_delay);
  net::FairGate::Permit permit = co_await plane->admit(ctx, 1.0);
  (void)permit;
  if (admitted != nullptr) *admitted = sim->now();
  if (hold_time > 0) co_await sim->delay(hold_time);
}

Task<> kill_two(sim::Simulation* sim, sim::Duration d, sim::ProcessPtr a,
                sim::ProcessPtr b) {
  co_await sim->delay(d);
  a->kill();
  b->kill();
}

TEST(QosPlaneTest, KilledWaiterAndHolderReleaseEveryGateClass) {
  for (const qos::GateClass gc :
       {qos::GateClass::Commit, qos::GateClass::ProviderIo,
        qos::GateClass::RestartPrefetch}) {
    sim::Simulation sim;
    qos::Config cfg;
    cfg.enabled = true;
    cfg.commit_slots = 1;
    cfg.provider_slots = 1;
    cfg.prefetch_slots = 1;
    qos::AdmissionPlane plane(sim, cfg);
    const net::TenantId t1 = plane.tenants().register_tenant("t1");
    const net::TenantId t2 = plane.tenants().register_tenant("t2");

    sim::Time survivor_admitted = 0;
    auto holder = sim.spawn(
        "holder", admit_and_hold(&sim, &plane, {t1, gc}, 0, 10 * sim::kSecond,
                                 nullptr));
    auto waiter = sim.spawn(
        "waiter", admit_and_hold(&sim, &plane, {t1, gc},
                                 100 * sim::kMillisecond, 10 * sim::kSecond,
                                 nullptr));
    sim.spawn("survivor",
              admit_and_hold(&sim, &plane, {t2, gc}, 200 * sim::kMillisecond,
                             0, &survivor_admitted));
    sim.spawn("killer", kill_two(&sim, 1 * sim::kSecond, waiter, holder));
    sim.run();

    EXPECT_EQ(survivor_admitted, 1 * sim::kSecond)
        << "gate " << qos::gate_class_name(gc);
    EXPECT_EQ(plane.gate(gc).in_use(), 0u) << qos::gate_class_name(gc);
    EXPECT_EQ(plane.gate(gc).pending(), 0u) << qos::gate_class_name(gc);
  }
}

// ---------------------------------------------------------------------------
// Rollback storm vs live commits, both directions, through the full stack:
// with every gate bounded, a mass-rollback tenant cycling cold restarts and
// a tenant checkpointing live share the plane — both finish bit-exact, and
// the storm's prefetches actually queue at the restart-prefetch gate.
// ---------------------------------------------------------------------------

CloudConfig qos_cloud_cfg(std::size_t compute_nodes) {
  CloudConfig cfg;
  cfg.compute_nodes = compute_nodes;
  cfg.metadata_nodes = 2;
  cfg.backend = Backend::BlobCR;
  cfg.reduction.enabled = true;
  cfg.os = vm::GuestOsConfig::test_tiny();
  cfg.vm.os_ram_bytes = 20 * common::kMB;
  cfg.qos.enabled = true;
  cfg.qos.commit_slots = 2;
  cfg.qos.provider_slots = 2;
  cfg.qos.prefetch_slots = 2;
  return cfg;
}

TEST(QosStormTest, RollbackStormAndLiveCommitsFinishInBothDirections) {
  // storm_is_bulk=true: two bulk instances cycle rollbacks against a small
  // live committer; false swaps the roles (live bulk committer, small
  // tenant cycling restarts). Neither side may starve the other.
  for (const bool storm_is_bulk : {true, false}) {
    Cloud cloud(qos_cloud_cfg(8));
    apps::MultiJobRun run;
    run.shared_fraction = 0.25;

    apps::TenantJobSpec storm;
    storm.name = "storm";
    storm.instances = storm_is_bulk ? 2 : 1;
    storm.buffer_bytes = (storm_is_bulk ? 1024 : 256) * common::kKiB;
    storm.rounds = 3;
    storm.restart_every = 1;  // rollback after every committed round

    apps::TenantJobSpec live;
    live.name = "live";
    live.weight = 2.0;
    live.instances = storm_is_bulk ? 1 : 2;
    live.buffer_bytes = (storm_is_bulk ? 256 : 1024) * common::kKiB;
    live.rounds = 3;
    live.stagger = 500 * sim::kMillisecond;
    live.think_time = 100 * sim::kMillisecond;

    run.jobs = {storm, live};
    const apps::MultiJobResult result = apps::run_multi_job(cloud, run);

    ASSERT_EQ(result.jobs.size(), 2u);
    EXPECT_TRUE(result.all_verified())
        << "storm_is_bulk=" << storm_is_bulk
        << ": a restore was not bit-exact under contention";
    for (const apps::JobResult& job : result.jobs) {
      ASSERT_EQ(job.records.size(), 3u) << job.name;
      for (const cr::CheckpointRecord& r : job.records) {
        EXPECT_EQ(r.state, cr::RecordState::Complete) << job.name;
      }
    }
    // Two mid-job rollbacks plus the final restart for the storm tenant.
    EXPECT_EQ(result.jobs[0].restart_times.size(), 3u);
    EXPECT_EQ(result.jobs[1].restart_times.size(), 1u);

    // The storm really went through the restart-prefetch gate, and nothing
    // is left admitted or queued anywhere on the plane.
    const qos::AdmissionPlane& plane = cloud.blob_store()->admission();
    EXPECT_GT(
        plane.gate(qos::GateClass::RestartPrefetch).admitted(
            result.jobs[0].tenant),
        0u)
        << "rollback cycles never admitted at the restart-prefetch gate";
    for (const qos::GateClass gc :
         {qos::GateClass::Commit, qos::GateClass::ProviderIo,
          qos::GateClass::RestartPrefetch}) {
      EXPECT_EQ(plane.gate(gc).in_use(), 0u) << qos::gate_class_name(gc);
      EXPECT_EQ(plane.gate(gc).pending(), 0u) << qos::gate_class_name(gc);
    }
  }
}

// ---------------------------------------------------------------------------
// Regression: prefetch workers killed at deployment teardown must release
// their admission state — the permit a holder carries and the queue entry a
// waiter occupies. With prefetch_slots=1 a leaked permit would wedge every
// later restart's prefetch against this repository.
// ---------------------------------------------------------------------------

TEST(QosTeardownTest, KilledPrefetchWorkersReleaseAdmissionPermits) {
  CloudConfig cfg = qos_cloud_cfg(12);
  cfg.qos.prefetch_slots = 1;  // a single leak wedges the gate
  Cloud cloud(cfg);
  bool verified = false;
  std::size_t in_use_after_kill = 1, pending_after_kill = 1;
  std::size_t in_use_final = 1, pending_final = 1;

  cloud.run([](Cloud* cl, bool* verified, std::size_t* in_use_after_kill,
               std::size_t* pending_after_kill, std::size_t* in_use_final,
               std::size_t* pending_final) -> Task<> {
    sim::Simulation& sim = cl->simulation();
    co_await cl->provision_base_image();
    const net::TenantId tenant = cl->register_tenant("t");
    cr::Session::Config scfg;
    scfg.job = "t";

    std::vector<std::uint64_t> digests(2, 0);
    {
      // Driver generation 1: checkpoint, cold-restart, then die while one
      // prefetch worker holds the plane's only prefetch permit and another
      // is queued behind it (teardown kills the workers mid-flight; the
      // permit must release and the waiter must unlink as frames unwind).
      Deployment::Options opts{0, tenant, std::nullopt};
      Deployment dep(*cl, 2, opts);
      cr::Session session(dep, scfg);
      co_await dep.deploy_and_boot();
      for (std::size_t i = 0; i < 2; ++i) {
        Buffer buf = Buffer::pattern(2 * common::kMB, 0xbeef + i);
        digests[i] = buf.digest();
        co_await dep.vm(i).fs()->write_file("/data/buf.bin", std::move(buf));
        co_await dep.vm(i).fs()->sync();
      }
      (void)co_await session.checkpoint();
      dep.destroy_all();
      (void)co_await session.restart(cr::Selector::latest(),
                                     /*node_offset=*/4,
                                     /*cold_caches=*/true);
      for (std::size_t i = 0; i < 2; ++i) {
        core::MirrorDevice* m = dep.instance(i).mirror.get();
        m->hint(0, m->capacity());
      }
      co_await sim.delay(1 * sim::kMillisecond);
      // Total driver loss mid-prefetch: ~Deployment kills every worker.
    }

    const net::FairGate& gate =
        cl->blob_store()->admission().gate(qos::GateClass::RestartPrefetch);
    *in_use_after_kill = gate.in_use();
    *pending_after_kill = gate.pending();

    // Driver generation 2: the gate must still dispatch — a fresh
    // deployment's cold restart (whose scheduler prefetches through the
    // same single slot) restores bit-exactly.
    Deployment::Options opts2{8, tenant, std::nullopt};
    Deployment dep2(*cl, 2, opts2);
    cr::Session session2(dep2, scfg);
    (void)co_await session2.restart(cr::Selector::latest(),
                                    /*node_offset=*/8,
                                    /*cold_caches=*/true);
    bool ok = true;
    for (std::size_t i = 0; i < 2; ++i) {
      const Buffer back =
          co_await dep2.vm(i).fs()->read_file("/data/buf.bin");
      ok = ok && back.size() == 2 * common::kMB && back.digest() == digests[i];
    }
    *verified = ok;
    co_await sim.delay(30 * sim::kSecond);  // let background prefetch drain
    *in_use_final = gate.in_use();
    *pending_final = gate.pending();
  }(&cloud, &verified, &in_use_after_kill, &pending_after_kill, &in_use_final,
    &pending_final));

  EXPECT_EQ(in_use_after_kill, 0u)
      << "a killed prefetch holder leaked its admission permit";
  EXPECT_EQ(pending_after_kill, 0u)
      << "a killed queued prefetch worker never unlinked from the gate";
  EXPECT_TRUE(verified);
  EXPECT_EQ(in_use_final, 0u);
  EXPECT_EQ(pending_final, 0u);
}

}  // namespace
}  // namespace blobcr
