// Multi-tenant repository tests: K concurrent jobs (distinct tenants,
// sessions and catalogs) checkpoint/restart bit-exactly through ONE shared
// BlobStore; the repository-scoped digest index dedups cross-job content;
// one tenant's retention/GC never reclaims chunks another tenant's versions
// reference (including with a drain killed at a commit stage boundary); each
// tenant's catalog lists only its own lineage; and the weighted-fair gate
// admits a small tenant past a bulk tenant's backlog.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "apps/multi_job.h"
#include "blob/client.h"
#include "core/blobcr.h"
#include "cr/session.h"
#include "flush/flush_agent.h"
#include "net/qos.h"
#include "sim/sim.h"

namespace blobcr {
namespace {

using common::Buffer;
using core::Backend;
using core::Cloud;
using core::CloudConfig;
using core::Deployment;
using sim::Task;

CloudConfig repo_cfg(std::size_t compute_nodes = 24) {
  CloudConfig cfg;
  cfg.compute_nodes = compute_nodes;
  cfg.metadata_nodes = 2;
  cfg.backend = Backend::BlobCR;
  cfg.reduction.enabled = true;  // shared_index defaults to repository scope
  cfg.os = vm::GuestOsConfig::test_tiny();
  cfg.vm.os_ram_bytes = 20 * common::kMB;
  return cfg;
}

apps::MultiJobRun three_jobs() {
  apps::MultiJobRun run;
  run.shared_fraction = 0.5;
  apps::TenantJobSpec a;
  a.name = "jobA";
  a.weight = 2.0;
  a.instances = 2;
  a.buffer_bytes = 1 * common::kMB;
  a.rounds = 2;
  apps::TenantJobSpec b = a;
  b.name = "jobB";
  b.weight = 1.0;
  b.instances = 1;
  b.stagger = 2 * sim::kSecond;
  apps::TenantJobSpec c = b;
  c.name = "jobC";
  c.stagger = 4 * sim::kSecond;
  c.async_flush = true;  // one tenant on the async pipeline
  run.jobs = {a, b, c};
  return run;
}

// ---------------------------------------------------------------------------
// K=3 concurrent jobs through one repository: bit-exact restores, per-tenant
// accounting, and per-tenant catalogs that list only their own lineage.
// ---------------------------------------------------------------------------

TEST(MultiTenantTest, ConcurrentJobsRestoreBitExactThroughOneRepository) {
  CloudConfig cfg = repo_cfg();
  cfg.qos.enabled = true;
  cfg.qos.commit_slots = 2;
  Cloud cloud(cfg);
  const apps::MultiJobRun run = three_jobs();
  const apps::MultiJobResult result = apps::run_multi_job(cloud, run);

  ASSERT_EQ(result.jobs.size(), 3u);
  EXPECT_TRUE(result.all_verified()) << "a tenant's restore was not bit-exact";
  for (std::size_t k = 0; k < result.jobs.size(); ++k) {
    const apps::JobResult& job = result.jobs[k];
    EXPECT_NE(job.tenant, net::kDefaultTenant);
    // Own lineage only: exactly this job's rounds, every record Complete,
    // ids dense from 1 (each catalog is its own named blob).
    ASSERT_EQ(job.records.size(),
              static_cast<std::size_t>(run.jobs[k].rounds))
        << job.name << " sees foreign catalog records";
    for (std::size_t r = 0; r < job.records.size(); ++r) {
      EXPECT_EQ(job.records[r].id, r + 1);
      EXPECT_EQ(job.records[r].state, cr::RecordState::Complete);
      EXPECT_EQ(job.records[r].snapshots.size(), run.jobs[k].instances);
    }
    EXPECT_GT(job.raw_bytes, 0u) << job.name;
    EXPECT_GT(job.shipped_bytes, 0u) << job.name;
    EXPECT_LE(job.shipped_bytes, job.raw_bytes) << job.name;
  }
  // Distinct tenants, distinct identities.
  EXPECT_NE(result.jobs[0].tenant, result.jobs[1].tenant);
  EXPECT_NE(result.jobs[1].tenant, result.jobs[2].tenant);

  // The staggered jobs (B, C) replay the first job's image layout with the
  // shared dataset already in the repository: cross-job dedup collapses a
  // large share of what they would otherwise ship. (The FIRST job has no
  // one to dedup against — that asymmetry is the multi-tenant win.)
  for (std::size_t k : {1u, 2u}) {
    const apps::JobResult& job = result.jobs[k];
    EXPECT_LT(static_cast<double>(job.shipped_bytes),
              0.75 * static_cast<double>(job.raw_bytes))
        << "cross-job dedup did not bite for staggered job " << job.name;
  }
}

// ---------------------------------------------------------------------------
// The acceptance comparison: the repository-scoped digest index stores the
// cross-job shared dataset once repository-wide; isolated per-deployment
// indices store it once per job. Shipped bytes must be strictly lower with
// the shared index on an overlapping workload.
// ---------------------------------------------------------------------------

TEST(MultiTenantTest, SharedIndexShipsLessThanIsolatedOnOverlappingJobs) {
  apps::MultiJobRun run;
  run.shared_fraction = 0.8;
  for (const char* name : {"j1", "j2"}) {
    apps::TenantJobSpec spec;
    spec.name = name;
    spec.instances = 1;
    spec.buffer_bytes = 1 * common::kMB;
    spec.rounds = 1;
    spec.do_restart = false;
    spec.stagger = (run.jobs.empty() ? 0 : 3) * sim::kSecond;
    run.jobs.push_back(spec);
  }

  auto total_shipped = [&](bool shared_index) {
    CloudConfig cfg = repo_cfg(8);
    cfg.reduction.shared_index = shared_index;
    Cloud cloud(cfg);
    const apps::MultiJobResult r = apps::run_multi_job(cloud, run);
    std::uint64_t shipped = 0;
    for (const apps::JobResult& j : r.jobs) shipped += j.shipped_bytes;
    return shipped;
  };

  const std::uint64_t isolated = total_shipped(false);
  const std::uint64_t shared = total_shipped(true);
  EXPECT_LT(shared, isolated)
      << "repository-scoped index did not dedup across jobs";
}

// ---------------------------------------------------------------------------
// Cross-tenant GC isolation: tenant A's retention sweep reclaims A's own
// retired versions but never a chunk tenant B's published version references
// through cross-job dedup — including when a third tenant's drain died at a
// commit stage boundary just before the sweep.
// ---------------------------------------------------------------------------

TEST(MultiTenantTest, RetentionSweepNeverReclaimsAnotherTenantsChunks) {
  Cloud cloud(repo_cfg(24));
  bool b_restored = false, c_restored = false, c_ckpt_threw = false;
  std::uint64_t a_reclaimed = 0;
  std::uint64_t b_shipped = 0, b_raw = 0;

  cloud.run([](Cloud* cl, bool* b_restored, bool* c_restored,
               bool* c_ckpt_threw, std::uint64_t* a_reclaimed,
               std::uint64_t* b_shipped, std::uint64_t* b_raw) -> Task<> {
    sim::Event never(cl->simulation());
    co_await cl->provision_base_image();
    const Buffer dataset = Buffer::pattern(1 * common::kMB, 0xda7a);

    // Tenant A at nodes [0,1), B at [1,2), C (async pipeline) at [2,3).
    Deployment::Options ao{0, cl->register_tenant("A"), std::nullopt};
    Deployment::Options bo{1, cl->register_tenant("B"), std::nullopt};
    flush::FlushConfig async_cfg;
    async_cfg.enabled = true;
    Deployment::Options co_opts{2, cl->register_tenant("C"), async_cfg};
    Deployment dep_a(*cl, 1, ao);
    Deployment dep_b(*cl, 1, bo);
    Deployment dep_c(*cl, 1, co_opts);
    cr::Session::Config sa, sb, sc;
    sa.job = "A";
    sa.retention.keep_last = 1;
    sa.auto_retention = false;  // swept explicitly below
    sb.job = "B";
    sc.job = "C";
    cr::Session ses_a(dep_a, sa);
    cr::Session ses_b(dep_b, sb);
    cr::Session ses_c(dep_c, sc);
    co_await dep_a.deploy_and_boot();
    co_await dep_b.deploy_and_boot();
    co_await dep_c.deploy_and_boot();

    // A publishes the dataset first; B commits the same content and dedups
    // against A's chunks — B's only physical copy of the shared content is
    // the one A stored.
    co_await dep_a.vm(0).fs()->write_file("/data/d.bin", dataset);
    co_await dep_a.vm(0).fs()->sync();
    (void)co_await ses_a.checkpoint("a1");
    co_await dep_b.vm(0).fs()->write_file("/data/d.bin", dataset);
    co_await dep_b.vm(0).fs()->sync();
    (void)co_await ses_b.checkpoint("b1");
    {
      const blob::BlobStore::TenantUsage& u =
          cl->blob_store()->tenant_usage(dep_b.tenant());
      *b_shipped = u.shipped_bytes;
      *b_raw = u.raw_bytes;
    }

    // C completes one checkpoint, then its drain dies at the Putting stage
    // boundary of the next one: pins and index entries of the dead drain
    // unwind right before A's sweep runs.
    co_await dep_c.vm(0).fs()->write_file("/data/d.bin", dataset);
    co_await dep_c.vm(0).fs()->sync();
    (void)co_await ses_c.checkpoint("c1");
    core::MirrorDevice* cm = dep_c.instance(0).mirror.get();
    EXPECT_NE(cm->flush_agent(), nullptr);
    if (cm->flush_agent() == nullptr) co_return;
    bool armed = true;
    cm->flush_agent()->set_stage_probe(
        [cl, cm, &armed, &never](blob::CommitStage s) -> Task<> {
          if (armed && s == blob::CommitStage::Putting) {
            armed = false;
            cl->simulation().call_in(0,
                                     [cm] { cm->flush_agent()->fail_stop(); });
            co_await never.wait();
          }
        });
    co_await dep_c.vm(0).fs()->write_file(
        "/data/extra.bin", Buffer::pattern(300'000, 0xc0de));
    co_await dep_c.vm(0).fs()->sync();
    try {
      (void)co_await ses_c.checkpoint("doomed");
    } catch (const blob::BlobError&) {
      *c_ckpt_threw = true;
    }

    // A churns two more checkpoints and sweeps: everything but A's newest
    // record retires, and its exclusive chunks are reclaimed.
    for (const std::uint64_t seed : {0xa2ULL, 0xa3ULL}) {
      co_await dep_a.vm(0).fs()->write_file(
          "/data/churn.bin", Buffer::pattern(1 * common::kMB, seed));
      co_await dep_a.vm(0).fs()->sync();
      (void)co_await ses_a.checkpoint();
    }
    *a_reclaimed = co_await ses_a.apply_retention();

    // B and C restart cold on fresh nodes from their own catalogs: the
    // shared dataset both published must still be there, bit for bit.
    dep_b.destroy_all();
    (void)co_await ses_b.restart(cr::Selector::latest(), /*node_offset=*/10,
                                 /*cold_caches=*/true);
    const Buffer b_back = co_await dep_b.vm(0).fs()->read_file("/data/d.bin");
    *b_restored = b_back == dataset;

    dep_c.destroy_all();
    (void)co_await ses_c.restart(cr::Selector::latest(), /*node_offset=*/12,
                                 /*cold_caches=*/true);
    const Buffer c_back = co_await dep_c.vm(0).fs()->read_file("/data/d.bin");
    *c_restored = c_back == dataset;
  }(&cloud, &b_restored, &c_restored, &c_ckpt_threw, &a_reclaimed, &b_shipped,
    &b_raw));

  EXPECT_LT(b_shipped, b_raw) << "B never deduped against A's chunks, so the "
                                 "sweep had nothing cross-tenant to spare";
  EXPECT_TRUE(c_ckpt_threw) << "drain kill never surfaced";
  EXPECT_GT(a_reclaimed, 0u) << "A's sweep reclaimed nothing";
  EXPECT_TRUE(b_restored)
      << "A's retention sweep reclaimed chunks B's version references";
  EXPECT_TRUE(c_restored)
      << "GC after the killed drain damaged C's last complete checkpoint";
}

// ---------------------------------------------------------------------------
// Per-tenant capacity ceilings: a resident-bytes quota refuses the commit
// that would cross it (typed error, checked at admission before the commit
// gate) and a catalog-records quota refuses staging past the record cap.
// An unquota'd tenant sharing the repository is never affected.
// ---------------------------------------------------------------------------

TEST(MultiTenantTest, CapacityQuotasRefuseCommitAndCatalogOverage) {
  Cloud cloud(repo_cfg(8));
  bool bytes_quota_threw = false, catalog_quota_threw = false;
  bool free_tenant_ok = false;
  std::size_t rcap_records = 0;

  cloud.run([](Cloud* cl, bool* bytes_quota_threw, bool* catalog_quota_threw,
               bool* free_tenant_ok, std::size_t* rcap_records) -> Task<> {
    co_await cl->provision_base_image();

    // Three tenants: "bcap" with a resident-bytes ceiling, "rcap" with a
    // catalog-records ceiling, "free" with none. (A checkpoint stages its
    // catalog record before committing data, so the two ceilings are
    // exercised on separate tenants to keep each refusal unambiguous.)
    Deployment::Options bcap_opts{0, cl->register_tenant("bcap"),
                                  std::nullopt};
    Deployment::Options rcap_opts{1, cl->register_tenant("rcap"),
                                  std::nullopt};
    Deployment::Options free_opts{2, cl->register_tenant("free"),
                                  std::nullopt};
    cl->set_tenant_quota(bcap_opts.tenant, {/*max_resident_bytes=*/
                                            2 * common::kMB,
                                            /*max_catalog_records=*/0});
    cl->set_tenant_quota(rcap_opts.tenant, {0, /*max_catalog_records=*/2});
    Deployment dep_bcap(*cl, 1, bcap_opts);
    Deployment dep_rcap(*cl, 1, rcap_opts);
    Deployment dep_free(*cl, 1, free_opts);
    cr::Session::Config sb, sr, sf;
    sb.job = "bcap";
    sr.job = "rcap";
    sf.job = "free";
    cr::Session ses_bcap(dep_bcap, sb);
    cr::Session ses_rcap(dep_rcap, sr);
    cr::Session ses_free(dep_free, sf);
    co_await dep_bcap.deploy_and_boot();
    co_await dep_rcap.deploy_and_boot();
    co_await dep_free.deploy_and_boot();

    // bcap: a small checkpoint fits; the commit that would push resident
    // bytes past the ceiling is refused with the typed error at admission.
    co_await dep_bcap.vm(0).fs()->write_file(
        "/data/small.bin", Buffer::pattern(200'000, 0x51));
    co_await dep_bcap.vm(0).fs()->sync();
    (void)co_await ses_bcap.checkpoint();
    co_await dep_bcap.vm(0).fs()->write_file(
        "/data/big.bin", Buffer::pattern(4 * common::kMB, 0xb16));
    co_await dep_bcap.vm(0).fs()->sync();
    try {
      (void)co_await ses_bcap.checkpoint("over-bytes");
    } catch (const blob::QuotaExceededError&) {
      *bytes_quota_threw = true;
    }

    // rcap: two records fit; the third stage is refused before any durable
    // write, leaving the catalog untouched.
    for (const std::uint64_t seed : {0x61ULL, 0x62ULL, 0x63ULL}) {
      co_await dep_rcap.vm(0).fs()->write_file(
          "/data/r.bin", Buffer::pattern(150'000, seed));
      co_await dep_rcap.vm(0).fs()->sync();
      try {
        (void)co_await ses_rcap.checkpoint();
      } catch (const blob::QuotaExceededError&) {
        *catalog_quota_threw = true;
      }
    }
    *rcap_records = (co_await ses_rcap.catalog().list()).size();

    // The unquota'd tenant commits a dataset far past both ceilings
    // without friction.
    co_await dep_free.vm(0).fs()->write_file(
        "/data/huge.bin", Buffer::pattern(4 * common::kMB, 0xf4ee));
    co_await dep_free.vm(0).fs()->sync();
    (void)co_await ses_free.checkpoint();
    *free_tenant_ok = true;
  }(&cloud, &bytes_quota_threw, &catalog_quota_threw, &free_tenant_ok,
    &rcap_records));

  EXPECT_TRUE(bytes_quota_threw)
      << "resident-bytes ceiling never refused the oversized commit";
  EXPECT_TRUE(catalog_quota_threw)
      << "catalog-records ceiling never refused the third stage";
  EXPECT_EQ(rcap_records, 2u)
      << "a refused stage must leave the catalog untouched";
  EXPECT_TRUE(free_tenant_ok);
}

// ---------------------------------------------------------------------------
// Weighted-fair admission: a small tenant's single request overtakes a bulk
// tenant's backlog at a fair gate; at a FIFO gate it waits out the backlog.
// ---------------------------------------------------------------------------

Task<> hold_slot(sim::Simulation* sim, net::FairGate* gate, net::TenantId t,
                 sim::Duration pre_delay, sim::Duration hold_time,
                 sim::Time* admitted) {
  if (pre_delay > 0) co_await sim->delay(pre_delay);
  net::FairGate::Permit permit = co_await gate->enter(t, 1.0);
  (void)permit;
  if (admitted != nullptr) *admitted = sim->now();
  if (hold_time > 0) co_await sim->delay(hold_time);
}

Task<> kill_after(sim::Simulation* sim, sim::Duration d, sim::ProcessPtr a,
                  sim::ProcessPtr b) {
  co_await sim->delay(d);
  a->kill();
  b->kill();
}

TEST(FairGateTest, SmallTenantOvertakesBulkBacklogUnderFairness) {
  for (const bool fair : {true, false}) {
    sim::Simulation sim;
    net::TenantRegistry reg;
    const net::TenantId bulk = reg.register_tenant("bulk");
    const net::TenantId small = reg.register_tenant("small");
    net::FairGate gate(sim, /*slots=*/1, &reg, fair);

    sim::Time small_admitted = 0;
    for (int i = 0; i < 4; ++i) {
      sim.spawn("bulk",
                hold_slot(&sim, &gate, bulk, 0, 1 * sim::kSecond, nullptr));
    }
    sim.spawn("small", hold_slot(&sim, &gate, small, 100 * sim::kMillisecond,
                                 1 * sim::kSecond, &small_admitted));
    sim.run();

    if (fair) {
      // Admitted as soon as the first bulk hold releases (1s), ahead of the
      // remaining backlog: the small tenant's normalized usage is zero.
      EXPECT_EQ(small_admitted, 1 * sim::kSecond);
      EXPECT_LT(gate.wait_time(small), gate.wait_time(bulk));
    } else {
      // FIFO: behind all four bulk holds.
      EXPECT_EQ(small_admitted, 4 * sim::kSecond);
    }
    EXPECT_EQ(gate.admitted(small), 1u);
    EXPECT_EQ(gate.admitted(bulk), 4u);
  }
}

// A killed waiter unlinks; a killed holder's permit releases; the gate keeps
// dispatching afterwards (the crash-consistency property the commit path
// relies on when a drain dies while queued at the gate).
TEST(FairGateTest, KilledWaiterAndHolderReleaseTheirSlots) {
  sim::Simulation sim;
  net::TenantRegistry reg;
  const net::TenantId t1 = reg.register_tenant("t1");
  const net::TenantId t2 = reg.register_tenant("t2");
  net::FairGate gate(sim, /*slots=*/1, &reg, /*fair=*/true);

  sim::Time survivor_admitted = 0;
  // Holder admits immediately and would hold for 10s; the waiter queues
  // behind it; the survivor queues last. At t=1s the killer kills the
  // queued waiter (must unlink) and the holder (its permit must release),
  // which must hand the slot to the survivor.
  auto holder =
      sim.spawn("holder", hold_slot(&sim, &gate, t1, 0, 10 * sim::kSecond,
                                    nullptr));
  auto waiter =
      sim.spawn("waiter", hold_slot(&sim, &gate, t1, 100 * sim::kMillisecond,
                                    10 * sim::kSecond, nullptr));
  sim.spawn("survivor",
            hold_slot(&sim, &gate, t2, 200 * sim::kMillisecond, 0,
                      &survivor_admitted));
  sim.spawn("killer", kill_after(&sim, 1 * sim::kSecond, waiter, holder));
  sim.run();

  EXPECT_EQ(survivor_admitted, 1 * sim::kSecond);
  EXPECT_EQ(gate.in_use(), 0u);
  EXPECT_EQ(gate.pending(), 0u);
}

}  // namespace
}  // namespace blobcr
