// Tests for the application layer: the CM1-like stencil (numerics
// determinism, halo exchange, checkpoint round-trips) and the end-to-end
// scenario drivers with real-data digest verification.
#include <gtest/gtest.h>

#include <memory>

#include "apps/cm1.h"
#include "apps/scenarios.h"
#include "core/blobcr.h"
#include "img/mem_device.h"
#include "sim/sim.h"

namespace blobcr::apps {
namespace {

using common::Buffer;
using sim::Task;

Cm1Config tiny_cm1(int px, int py) {
  Cm1Config cfg;
  cfg.nx = 8;
  cfg.ny = 8;
  cfg.nz = 4;
  cfg.nvars = 3;
  cfg.px = px;
  cfg.py = py;
  cfg.real_data = true;
  cfg.iteration_compute = 10 * sim::kMillisecond;
  cfg.summary_interval = 5;
  cfg.summary_bytes = 4096;
  return cfg;
}

/// Rig with N VMs (MemDevice disks, mounted FS) and an MPI world.
struct Cm1Rig {
  sim::Simulation sim;
  std::unique_ptr<net::Fabric> fabric;
  std::vector<std::unique_ptr<img::MemDevice>> devs;
  std::vector<std::unique_ptr<vm::VmInstance>> vms;
  std::unique_ptr<mpi::MpiWorld> world;

  explicit Cm1Rig(std::size_t n_vms) {
    net::Fabric::Config fcfg;
    fcfg.node_count = n_vms;
    fcfg.nic_bandwidth_bps = 117.5e6;
    fcfg.latency = 100 * sim::kMicrosecond;
    fabric = std::make_unique<net::Fabric>(sim, fcfg);
    world = std::make_unique<mpi::MpiWorld>(sim, *fabric);
    for (std::size_t i = 0; i < n_vms; ++i) {
      devs.push_back(std::make_unique<img::MemDevice>(64u * 1024 * 1024));
      vm::VmConfig cfg;
      cfg.name = "vm" + std::to_string(i);
      vms.push_back(std::make_unique<vm::VmInstance>(
          sim, static_cast<net::NodeId>(i), *devs.back(), cfg));
      auto p = sim.spawn("mkfs", [](img::MemDevice* d,
                                    vm::VmInstance* v) -> Task<> {
        guestfs::FsConfig fscfg;
        co_await guestfs::SimpleFs::mkfs(*d, fscfg);
        auto fs = co_await guestfs::SimpleFs::mount(*d);
        fs->mkdir("/data");
        v->adopt_fs(std::move(fs));
      }(devs.back().get(), vms.back().get()));
      sim.run();
      if (p->error()) std::rethrow_exception(p->error());
    }
  }

  ~Cm1Rig() { sim.shutdown(); }

  void run_all() {
    sim.run();
    for (const auto& v : vms) {
      for (const auto& p : v->guest_procs()) {
        if (p->error()) std::rethrow_exception(p->error());
      }
    }
  }
};

TEST(Cm1Test, SingleRankRunsDeterministically) {
  auto digest_of_run = [] {
    Cm1Rig rig(1);
    std::uint64_t digest = 0;
    rig.vms[0]->start_guest("r0", [&rig, &digest](vm::GuestProcess& gp)
                                       -> Task<> {
      rig.world->register_rank(0, &gp);
      Cm1Rank cm1(gp, rig.world->comm(0), tiny_cm1(1, 1), 0);
      co_await cm1.init();
      co_await cm1.run(8);
      digest = cm1.state_digest();
    });
    rig.run_all();
    return digest;
  };
  const std::uint64_t a = digest_of_run();
  const std::uint64_t b = digest_of_run();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 0u);
}

TEST(Cm1Test, FieldsEvolveOverIterations) {
  Cm1Rig rig(1);
  std::uint64_t d0 = 0;
  std::uint64_t d1 = 0;
  rig.vms[0]->start_guest("r0", [&rig, &d0, &d1](vm::GuestProcess& gp)
                                     -> Task<> {
    rig.world->register_rank(0, &gp);
    Cm1Rank cm1(gp, rig.world->comm(0), tiny_cm1(1, 1), 0);
    co_await cm1.init();
    d0 = cm1.state_digest();
    co_await cm1.run(3);
    d1 = cm1.state_digest();
  });
  rig.run_all();
  EXPECT_NE(d0, d1);
}

TEST(Cm1Test, HaloExchangeCouplesNeighbors) {
  // With 2 ranks side by side, rank 1's evolution must differ from what it
  // would be in isolation (the boundary relaxes toward rank 0's values).
  std::uint64_t coupled = 0;
  {
    Cm1Rig rig(2);
    for (int r = 0; r < 2; ++r) {
      rig.vms[static_cast<std::size_t>(r)]->start_guest(
          "rank", [&rig, r, &coupled](vm::GuestProcess& gp) -> Task<> {
            rig.world->register_rank(r, &gp);
            Cm1Rank cm1(gp, rig.world->comm(r), tiny_cm1(2, 1), r);
            co_await cm1.init();
            co_await cm1.run(4);
            if (r == 1) coupled = cm1.state_digest();
          });
    }
    rig.run_all();
  }
  std::uint64_t isolated = 0;
  {
    Cm1Rig rig(1);
    rig.vms[0]->start_guest("r0", [&rig, &isolated](vm::GuestProcess& gp)
                                       -> Task<> {
      rig.world->register_rank(0, &gp);
      // Same configuration but alone in a 1x1 grid with rank id 1's seed.
      Cm1Config cfg = tiny_cm1(1, 1);
      Cm1Rank cm1(gp, rig.world->comm(0), cfg, 0);
      co_await cm1.init();
      co_await cm1.run(4);
      isolated = cm1.state_digest();
    });
    rig.run_all();
  }
  EXPECT_NE(coupled, isolated);
}

TEST(Cm1Test, CheckpointRestoreRoundTrip) {
  Cm1Rig rig(1);
  bool ok = false;
  std::uint64_t before = 0;
  std::uint64_t after = 0;
  rig.vms[0]->start_guest("r0", [&](vm::GuestProcess& gp) -> Task<> {
    rig.world->register_rank(0, &gp);
    Cm1Rank cm1(gp, rig.world->comm(0), tiny_cm1(1, 1), 0);
    co_await cm1.init();
    co_await cm1.run(5);
    before = cm1.state_digest();
    (void)co_await cm1.write_checkpoint();
    // Fresh object (as after a restart), restore and compare.
    Cm1Rank cm2(gp, rig.world->comm(0), tiny_cm1(1, 1), 0);
    ok = co_await cm2.restore_checkpoint();
    after = cm2.state_digest();
    EXPECT_EQ(cm2.current_iteration(), 5);
  });
  rig.run_all();
  EXPECT_TRUE(ok);
  EXPECT_EQ(before, after);
}

TEST(Cm1Test, SummariesAppearOnSchedule) {
  Cm1Rig rig(1);
  rig.vms[0]->start_guest("r0", [&rig](vm::GuestProcess& gp) -> Task<> {
    rig.world->register_rank(0, &gp);
    Cm1Rank cm1(gp, rig.world->comm(0), tiny_cm1(1, 1), 0);
    co_await cm1.init();
    co_await cm1.run(10);  // summary_interval = 5 -> 2 summaries
  });
  rig.run_all();
  int summaries = 0;
  for (const auto& name : rig.vms[0]->fs()->readdir("/data")) {
    if (name.rfind("summary_", 0) == 0) ++summaries;
  }
  EXPECT_EQ(summaries, 2);
}

TEST(Cm1Test, PhantomModeModelsSizesOnly) {
  Cm1Rig rig(1);
  std::uint64_t ckpt_bytes = 0;
  rig.vms[0]->start_guest("r0", [&](vm::GuestProcess& gp) -> Task<> {
    rig.world->register_rank(0, &gp);
    Cm1Config cfg = tiny_cm1(1, 1);
    cfg.real_data = false;
    Cm1Rank cm1(gp, rig.world->comm(0), cfg, 0);
    co_await cm1.init();
    co_await cm1.run(2);
    ckpt_bytes = co_await cm1.write_checkpoint();
  });
  rig.run_all();
  const Cm1Config cfg = tiny_cm1(1, 1);
  EXPECT_GE(ckpt_bytes, cfg.field_bytes());
}

TEST(Cm1Test, GlobalDiagnosticAgreesAcrossRanks) {
  // The allreduce-based stability diagnostic (CM1's CFL-check pattern):
  // after any step that triggered it, every rank holds the same global sum,
  // and it equals the sum of the per-rank subdomain means.
  Cm1Rig rig(4);
  rig.world->set_size(4);
  std::vector<double> diags(4, -1);
  std::vector<double> locals(4, 0);
  for (int r = 0; r < 4; ++r) {
    rig.vms[static_cast<std::size_t>(r)]->start_guest(
        "rank", [&rig, &diags, &locals, r](vm::GuestProcess& gp) -> Task<> {
          rig.world->register_rank(r, &gp);
          Cm1Config cfg = tiny_cm1(2, 2);
          cfg.diag_interval = 5;
          Cm1Rank cm1(gp, rig.world->comm(r), cfg, r);
          co_await cm1.init();
          co_await cm1.run(5);
          diags[static_cast<std::size_t>(r)] = cm1.last_global_diag();
          locals[static_cast<std::size_t>(r)] = cm1.state_digest() != 0;
        });
  }
  rig.run_all();
  EXPECT_NE(diags[0], 0.0);
  for (int r = 1; r < 4; ++r) EXPECT_DOUBLE_EQ(diags[r], diags[0]);
}

TEST(Cm1Test, DiagnosticDisabledLeavesZero) {
  Cm1Rig rig(1);
  double diag = -1;
  rig.vms[0]->start_guest("r0", [&](vm::GuestProcess& gp) -> Task<> {
    rig.world->register_rank(0, &gp);
    Cm1Config cfg = tiny_cm1(1, 1);
    cfg.diag_interval = 0;
    Cm1Rank cm1(gp, rig.world->comm(0), cfg, 0);
    co_await cm1.init();
    co_await cm1.run(6);
    diag = cm1.last_global_diag();
  });
  rig.run_all();
  EXPECT_EQ(diag, 0.0);
}

// --- scenario drivers over a real (tiny) cloud --------------------------------

core::CloudConfig scenario_cloud(core::Backend backend) {
  core::CloudConfig cfg;
  cfg.compute_nodes = 4;
  cfg.metadata_nodes = 2;
  cfg.backend = backend;
  cfg.os = vm::GuestOsConfig::test_tiny();
  cfg.vm.os_ram_bytes = 20 * common::kMB;
  return cfg;
}

TEST(ScenarioTest, SyntheticAppLevelVerifiedRoundTrip) {
  core::Cloud cloud(scenario_cloud(core::Backend::BlobCR));
  SyntheticRun run;
  run.instances = 2;
  run.buffer_bytes = 2 * common::kMB;
  run.real_data = true;
  run.do_restart = true;
  const RunResult r = run_synthetic(cloud, run, CkptMode::AppLevel);
  EXPECT_TRUE(r.verified);
  ASSERT_EQ(r.checkpoint_times.size(), 1u);
  EXPECT_GT(r.checkpoint_times[0], 0);
  EXPECT_GT(r.restart_time, 0);
  EXPECT_GE(r.snapshot_bytes_per_vm[0], 2 * common::kMB);
}

TEST(ScenarioTest, SyntheticBlcrVerifiedRoundTrip) {
  core::Cloud cloud(scenario_cloud(core::Backend::BlobCR));
  SyntheticRun run;
  run.instances = 2;
  run.buffer_bytes = 2 * common::kMB;
  run.real_data = true;
  run.do_restart = true;
  const RunResult r = run_synthetic(cloud, run, CkptMode::ProcessBlcr);
  EXPECT_TRUE(r.verified);
  // blcr dumps more than the buffer (runtime overhead).
  EXPECT_GT(r.snapshot_bytes_per_vm[0], 2 * common::kMB);
}

TEST(ScenarioTest, SyntheticQcowDiskVerifiedRoundTrip) {
  core::Cloud cloud(scenario_cloud(core::Backend::Qcow2Disk));
  SyntheticRun run;
  run.instances = 2;
  run.buffer_bytes = 2 * common::kMB;
  run.real_data = true;
  run.do_restart = true;
  const RunResult r = run_synthetic(cloud, run, CkptMode::AppLevel);
  EXPECT_TRUE(r.verified);
}

TEST(ScenarioTest, SyntheticFullVmCompletes) {
  core::Cloud cloud(scenario_cloud(core::Backend::Qcow2Full));
  SyntheticRun run;
  run.instances = 2;
  run.buffer_bytes = 2 * common::kMB;
  run.do_restart = true;
  const RunResult r = run_synthetic(cloud, run, CkptMode::FullVm);
  ASSERT_EQ(r.checkpoint_times.size(), 1u);
  EXPECT_GT(r.checkpoint_times[0], 0);
  EXPECT_GT(r.restart_time, 0);
  // Full snapshots include the VM RAM: far bigger than the buffer.
  EXPECT_GT(r.snapshot_bytes_per_vm[0], 20 * common::kMB);
}

TEST(ScenarioTest, SuccessiveCheckpointsBlobcrStaysFlat) {
  core::Cloud cloud(scenario_cloud(core::Backend::BlobCR));
  SyntheticRun run;
  run.instances = 1;
  run.buffer_bytes = 4 * common::kMB;
  run.rounds = 3;
  const RunResult r = run_synthetic(cloud, run, CkptMode::AppLevel);
  ASSERT_EQ(r.checkpoint_times.size(), 3u);
  // Rounds 2..3 re-ship only the rewritten buffer: times stay in the same
  // ballpark as round 1 (no cumulative growth).
  EXPECT_LT(r.checkpoint_times[2],
            r.checkpoint_times[0] + r.checkpoint_times[1]);
  // Repository grows by deltas.
  EXPECT_GT(r.repo_growth[2], r.repo_growth[1]);
}

TEST(ScenarioTest, Cm1AppLevelVerifiedRoundTrip) {
  core::Cloud cloud(scenario_cloud(core::Backend::BlobCR));
  Cm1Run run;
  run.vms = 2;
  run.ranks_per_vm = 2;
  run.app = tiny_cm1(2, 2);
  run.iterations = 6;
  run.do_restart = true;
  const RunResult r = run_cm1(cloud, run, CkptMode::AppLevel);
  EXPECT_TRUE(r.verified);
  ASSERT_EQ(r.checkpoint_times.size(), 1u);
  EXPECT_GT(r.checkpoint_times[0], 0);
  EXPECT_GT(r.restart_time, 0);
}

TEST(ScenarioTest, Cm1BlcrVerifiedRoundTrip) {
  core::Cloud cloud(scenario_cloud(core::Backend::BlobCR));
  Cm1Run run;
  run.vms = 2;
  run.ranks_per_vm = 2;
  run.app = tiny_cm1(2, 2);
  run.iterations = 4;
  run.do_restart = true;
  const RunResult r = run_cm1(cloud, run, CkptMode::ProcessBlcr);
  EXPECT_TRUE(r.verified);
  // blcr snapshots are bigger than app-level ones for the same state.
}

TEST(ScenarioTest, Cm1BlcrSnapshotsBiggerThanAppLevel) {
  std::uint64_t app_bytes = 0;
  std::uint64_t blcr_bytes = 0;
  for (const CkptMode mode : {CkptMode::AppLevel, CkptMode::ProcessBlcr}) {
    core::Cloud cloud(scenario_cloud(core::Backend::BlobCR));
    Cm1Run run;
    run.vms = 1;
    run.ranks_per_vm = 2;
    run.app = tiny_cm1(2, 1);
    run.iterations = 4;
    const RunResult r = run_cm1(cloud, run, mode);
    (mode == CkptMode::AppLevel ? app_bytes : blcr_bytes) =
        r.snapshot_bytes_per_vm[0];
  }
  EXPECT_GT(blcr_bytes, app_bytes);
}

}  // namespace
}  // namespace blobcr::apps
