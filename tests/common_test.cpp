// Unit + property tests for common: Buffer, RangeSet, Rng, digests, strutil.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/buffer.h"
#include "common/digest.h"
#include "common/rangeset.h"
#include "common/rng.h"
#include "common/strutil.h"
#include "common/units.h"

namespace blobcr::common {
namespace {

TEST(BufferTest, EmptyByDefault) {
  Buffer b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(b.is_phantom());
}

TEST(BufferTest, PatternIsDeterministic) {
  const Buffer a = Buffer::pattern(1000, 42);
  const Buffer b = Buffer::pattern(1000, 42);
  const Buffer c = Buffer::pattern(1000, 43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.digest(), c.digest());
}

TEST(BufferTest, PatternNonAlignedTail) {
  const Buffer a = Buffer::pattern(13, 7);
  EXPECT_EQ(a.size(), 13u);
  const Buffer b = Buffer::pattern(13, 7);
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(BufferTest, SliceRoundTrip) {
  const Buffer a = Buffer::pattern(100, 1);
  const Buffer s = a.slice(10, 20);
  EXPECT_EQ(s.size(), 20u);
  Buffer whole = Buffer::zeros(100);
  whole.overwrite(0, a);
  EXPECT_EQ(whole.slice(10, 20), s);
}

TEST(BufferTest, OverwriteGrows) {
  Buffer b = Buffer::zeros(10);
  b.overwrite(8, Buffer::pattern(6, 9));
  EXPECT_EQ(b.size(), 14u);
  EXPECT_EQ(b.slice(8, 6), Buffer::pattern(6, 9));
}

TEST(BufferTest, OverwritePreservesSurroundings) {
  Buffer b = Buffer::pattern(30, 3);
  const Buffer before = b.slice(0, 10);
  const Buffer after = b.slice(20, 10);
  b.overwrite(10, Buffer::pattern(10, 4));
  EXPECT_EQ(b.slice(0, 10), before);
  EXPECT_EQ(b.slice(20, 10), after);
  EXPECT_EQ(b.slice(10, 10), Buffer::pattern(10, 4));
}

TEST(BufferTest, PhantomBasics) {
  const Buffer p = Buffer::phantom(500);
  EXPECT_TRUE(p.is_phantom());
  EXPECT_EQ(p.size(), 500u);
  EXPECT_TRUE(p.bytes().empty());
  EXPECT_EQ(p.digest(), Buffer::phantom(500).digest());
  EXPECT_NE(p.digest(), Buffer::phantom(501).digest());
}

TEST(BufferTest, PhantomIsContagious) {
  Buffer b = Buffer::pattern(100, 5);
  b.overwrite(50, Buffer::phantom(10));
  EXPECT_TRUE(b.is_phantom());
  EXPECT_EQ(b.size(), 100u);
}

TEST(BufferTest, PhantomSliceStaysPhantom) {
  const Buffer p = Buffer::phantom(100);
  const Buffer s = p.slice(10, 50);
  EXPECT_TRUE(s.is_phantom());
  EXPECT_EQ(s.size(), 50u);
}

TEST(BufferTest, EqualityDistinguishesPhantomFromReal) {
  EXPECT_NE(Buffer::phantom(10), Buffer::zeros(10));
  EXPECT_EQ(Buffer::phantom(10), Buffer::phantom(10));
}

TEST(BufferTest, FromStringRoundTrip) {
  const Buffer b = Buffer::from_string("hello world");
  EXPECT_EQ(b.to_string(), "hello world");
  EXPECT_EQ(b.size(), 11u);
}

TEST(BufferTest, ResizeZeroExtends) {
  Buffer b = Buffer::from_string("ab");
  b.resize(4);
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(b.bytes()[2], std::byte{0});
  b.resize(1);
  EXPECT_EQ(b.to_string(), "a");
}

TEST(RangeSetTest, InsertCoalescesAdjacent) {
  RangeSet rs;
  rs.insert(0, 10);
  rs.insert(10, 20);
  EXPECT_EQ(rs.piece_count(), 1u);
  EXPECT_TRUE(rs.contains(0, 20));
  EXPECT_EQ(rs.total_length(), 20u);
}

TEST(RangeSetTest, InsertMergesOverlapping) {
  RangeSet rs;
  rs.insert(0, 10);
  rs.insert(20, 30);
  rs.insert(5, 25);
  EXPECT_EQ(rs.piece_count(), 1u);
  EXPECT_EQ(rs.total_length(), 30u);
}

TEST(RangeSetTest, EraseSplits) {
  RangeSet rs;
  rs.insert(0, 30);
  rs.erase(10, 20);
  EXPECT_EQ(rs.piece_count(), 2u);
  EXPECT_TRUE(rs.contains(0, 10));
  EXPECT_TRUE(rs.contains(20, 30));
  EXPECT_FALSE(rs.intersects(10, 20));
}

TEST(RangeSetTest, GapsOfPartiallyCovered) {
  RangeSet rs;
  rs.insert(10, 20);
  rs.insert(30, 40);
  const auto gaps = rs.gaps(0, 50);
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0], (Range{0, 10}));
  EXPECT_EQ(gaps[1], (Range{20, 30}));
  EXPECT_EQ(gaps[2], (Range{40, 50}));
}

TEST(RangeSetTest, IntersectionClips) {
  RangeSet rs;
  rs.insert(10, 20);
  const auto xs = rs.intersection(15, 50);
  ASSERT_EQ(xs.size(), 1u);
  EXPECT_EQ(xs[0], (Range{15, 20}));
}

TEST(RangeSetTest, EmptyRangeInsertIgnored) {
  RangeSet rs;
  rs.insert(5, 5);
  EXPECT_TRUE(rs.empty());
}

TEST(RangeSetTest, ContainsEmptyRangeTrue) {
  RangeSet rs;
  EXPECT_TRUE(rs.contains(3, 3));
}

// Property test: RangeSet behaves exactly like a reference bit set under a
// random operation sequence.
class RangeSetPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RangeSetPropertyTest, MatchesReferenceBitset) {
  Rng rng(GetParam());
  constexpr std::uint64_t kUniverse = 256;
  RangeSet rs;
  std::vector<bool> ref(kUniverse, false);
  for (int step = 0; step < 300; ++step) {
    const std::uint64_t a = rng.uniform(kUniverse);
    const std::uint64_t b = a + rng.uniform(kUniverse - a + 1);
    if (rng.chance(0.6)) {
      rs.insert(a, b);
      for (std::uint64_t i = a; i < b; ++i) ref[i] = true;
    } else {
      rs.erase(a, b);
      for (std::uint64_t i = a; i < b; ++i) ref[i] = false;
    }
    // Invariant: coverage matches, coalescing holds.
    std::uint64_t ref_total = 0;
    for (bool v : ref) ref_total += v ? 1 : 0;
    ASSERT_EQ(rs.total_length(), ref_total);
    const std::uint64_t q1 = rng.uniform(kUniverse);
    const std::uint64_t q2 = q1 + rng.uniform(kUniverse - q1 + 1);
    bool all = true;
    bool any = false;
    for (std::uint64_t i = q1; i < q2; ++i) {
      all = all && ref[i];
      any = any || ref[i];
    }
    if (q1 == q2) {
      all = true;
      any = false;
    }
    ASSERT_EQ(rs.contains(q1, q2), all) << "q=[" << q1 << "," << q2 << ")";
    ASSERT_EQ(rs.intersects(q1, q2), any);
    // Pieces are disjoint, sorted, coalesced.
    const auto pieces = rs.to_vector();
    for (std::size_t i = 1; i < pieces.size(); ++i) {
      ASSERT_GT(pieces[i].begin, pieces[i - 1].end);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeSetPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 1234));

TEST(RngTest, DeterministicFromSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, ForkedStreamsDiffer) {
  Rng root(7);
  Rng a = root.fork(1);
  Rng b = root.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, Uniform01InUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(DigestTest, KnownFnvVector) {
  // FNV-1a("a") = 0xaf63dc4c8601ec8c
  EXPECT_EQ(fnv1a(std::string_view("a")), 0xaf63dc4c8601ec8cULL);
}

TEST(DigestTest, OrderSensitive) {
  EXPECT_NE(fnv1a(std::string_view("ab")), fnv1a(std::string_view("ba")));
}

TEST(StrutilTest, Strf) {
  EXPECT_EQ(strf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strf("%s", ""), "");
}

TEST(StrutilTest, HumanBytes) {
  EXPECT_EQ(human_bytes(500), "500 B");
  EXPECT_EQ(human_bytes(1500), "1.50 KB");
  EXPECT_EQ(human_bytes(52 * kMB), "52.00 MB");
  EXPECT_EQ(human_bytes(2'000'000'000ULL), "2.00 GB");
}

TEST(StrutilTest, Split) {
  const auto parts = split("a/b//c", '/');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(UnitsTest, Conversions) {
  EXPECT_EQ(kib(4), 4096u);
  EXPECT_EQ(mb(50), 50'000'000u);
  EXPECT_EQ(mib(2), 2u * 1024 * 1024);
  EXPECT_DOUBLE_EQ(mb_per_s(117.5), 117.5e6);
}

}  // namespace
}  // namespace blobcr::common
